package lzwtc

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"lzwtc/internal/dictstore"
)

// dictDiffConfig maps a conformance configuration onto the dictionary
// tier's contract: preloads are meaningless under FullReset (the
// dictionary is discarded mid-stream), so those corpus entries exercise
// the same corner under FullFreeze instead.
func dictDiffConfig(cfg Config) Config {
	if cfg.Full == FullReset {
		cfg.Full = FullFreeze
	}
	return cfg
}

// fatalTrain is a TrainFunc for paths that must already be warm: any
// call means the store failed to serve from cache.
func fatalTrain(t *testing.T, path string) dictstore.TrainFunc {
	return func(context.Context) (*Preload, error) {
		t.Fatalf("%s resolution invoked the training function", path)
		return nil, nil
	}
}

// cubesText renders a test set in canonical cube-text form for
// byte-level equality checks between decompression paths.
func cubesText(t *testing.T, ts *TestSet) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := ts.WriteCubes(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestDictDifferentialCompression proves the store is transparent: for
// every conformance-corpus case, compressing with a dictionary resolved
// cold (trained through the store), warm (memory LRU hit) or
// disk-rehydrated (fresh process over the same directory) produces a
// container byte-identical to compressing with a freshly trained
// in-process preload.
func TestDictDifferentialCompression(t *testing.T) {
	ctx := context.Background()
	for _, c := range conformanceCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cfg := dictDiffConfig(c.cfg)
			ts := c.build()

			// Baseline: train and compress entirely in-process, no store.
			basePre, err := Train(ts, cfg, 0)
			if err != nil {
				t.Fatal(err)
			}
			base, err := CompressPreloaded(ts, cfg, basePre)
			if err != nil {
				t.Fatal(err)
			}
			want := base.Encode()

			compressVia := func(pre *Preload) []byte {
				t.Helper()
				res, err := CompressPreloaded(ts, cfg, pre)
				if err != nil {
					t.Fatal(err)
				}
				return res.Encode()
			}

			dir := t.TempDir()
			store, err := OpenDictStore(DictStoreConfig{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			defer store.Close()
			key := DictKeyFor(ts, cfg)

			// Cold: first resolution trains through the store.
			trains := 0
			cold, src, err := store.GetOrTrain(ctx, key, cfg, func(context.Context) (*Preload, error) {
				trains++
				return Train(ts, cfg, 0)
			})
			if err != nil {
				t.Fatal(err)
			}
			if src != dictstore.SourceTrained || trains != 1 {
				t.Fatalf("cold resolve: source %v, %d trains", src, trains)
			}
			if got := compressVia(cold.Pre); !bytes.Equal(got, want) {
				t.Fatal("cold-store dictionary compressed differently from the in-process baseline")
			}

			// Warm: the memory LRU serves the entry; training must not run.
			warm, src, err := store.GetOrTrain(ctx, key, cfg, fatalTrain(t, "warm"))
			if err != nil {
				t.Fatal(err)
			}
			if src != dictstore.SourceMem {
				t.Fatalf("warm resolve came from %v, want memory", src)
			}
			if got := compressVia(warm.Pre); !bytes.Equal(got, want) {
				t.Fatal("warm-hit dictionary compressed differently from the in-process baseline")
			}

			// Disk: a fresh store over the same directory rehydrates the
			// blob; the digest proves it is bit-identical to what was stored.
			if err := store.Close(); err != nil {
				t.Fatal(err)
			}
			reopened, err := OpenDictStore(DictStoreConfig{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			defer reopened.Close()
			rehydrated, src, err := reopened.GetOrTrain(ctx, key, cfg, fatalTrain(t, "disk"))
			if err != nil {
				t.Fatal(err)
			}
			if src != dictstore.SourceDisk {
				t.Fatalf("rehydrated resolve came from %v, want disk", src)
			}
			if rehydrated.Digest != cold.Digest {
				t.Fatal("disk rehydration changed the dictionary digest")
			}
			if got := compressVia(rehydrated.Pre); !bytes.Equal(got, want) {
				t.Fatal("disk-rehydrated dictionary compressed differently from the in-process baseline")
			}
		})
	}
}

// TestDictDifferentialWireRoundTrip proves the 'D'-frame container
// closes the loop for every conformance case: a receiver holding only
// the store reconstructs the same fully specified set the sender's
// in-process decompression produces, in both the single-frame and the
// sharded container forms.
func TestDictDifferentialWireRoundTrip(t *testing.T) {
	ctx := context.Background()
	for _, c := range conformanceCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cfg := dictDiffConfig(c.cfg)
			ts := c.build()
			store, err := OpenDictStore(DictStoreConfig{})
			if err != nil {
				t.Fatal(err)
			}
			defer store.Close()
			ent, _, err := store.GetOrTrain(ctx, DictKeyFor(ts, cfg), cfg,
				func(context.Context) (*Preload, error) { return Train(ts, cfg, 0) })
			if err != nil {
				t.Fatal(err)
			}
			ref := DictEntryRef(ent)

			res, err := CompressPreloaded(ts, cfg, ent.Pre)
			if err != nil {
				t.Fatal(err)
			}
			wantSet, err := DecompressPreloaded(res, ent.Pre)
			if err != nil {
				t.Fatal(err)
			}
			want := cubesText(t, wantSet)

			// Single-frame 'D' container.
			var buf bytes.Buffer
			if err := res.WriteWireDictResult(&buf, ref); err != nil {
				t.Fatal(err)
			}
			got, err := DecompressWireDict(bytes.NewReader(buf.Bytes()), store)
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(ts, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(cubesText(t, got), want) {
				t.Fatal("wire 'D'-frame decompression diverged from in-process decompression")
			}

			// Sharded 'D' container: every frame reinstalls the preload, so
			// the in-process reference is the sharded decompressor (per-shard
			// dictionary restarts fill don't-cares differently from the
			// continuous stream).
			sharded, err := CompressShardedPreloaded(ctx, ts, cfg, ent.Pre, 5, BatchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			wantShardSet, err := DecompressShardedPreloaded(ctx, sharded, ent.Pre, BatchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			wantShard := cubesText(t, wantShardSet)
			buf.Reset()
			if err := WriteWireDict(&buf, sharded, ref); err != nil {
				t.Fatal(err)
			}
			got, err = DecompressWireDict(bytes.NewReader(buf.Bytes()), store)
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(ts, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(cubesText(t, got), wantShard) {
				t.Fatal("sharded 'D'-frame decompression diverged from in-process sharded decompression")
			}

			// A container naming a dictionary nobody has fails typed, and a
			// resolver-less receiver reports the same class.
			if _, err := DecompressWireDict(bytes.NewReader(buf.Bytes()), nil); !errors.Is(err, ErrDictNotFound) {
				t.Fatalf("resolver-less decode: got %v, want ErrDictNotFound", err)
			}
			empty, err := OpenDictStore(DictStoreConfig{})
			if err != nil {
				t.Fatal(err)
			}
			defer empty.Close()
			if _, err := DecompressWireDict(bytes.NewReader(buf.Bytes()), empty); !errors.Is(err, ErrDictNotFound) {
				t.Fatalf("empty-store decode: got %v, want ErrDictNotFound", err)
			}
		})
	}
}
