// warm_start demonstrates the dictionary-preloading extension: a
// dictionary trained on one test session is written into the embedded
// memory (through the Figure 6 port) before the next session, so the
// LZW compressor starts warm — the amortization the paper's conclusion
// suggests when the decompression engine becomes part of normal
// operation. The session's responses are compacted into a MISR
// signature, closing the Figure 2 loop on the output side.
package main

import (
	"fmt"
	"log"

	"lzwtc"
	"lzwtc/internal/bench"
	"lzwtc/internal/bitvec"
	"lzwtc/internal/core"
	"lzwtc/internal/decomp"
	"lzwtc/internal/mem"
	"lzwtc/internal/signature"
)

func main() {
	p, err := bench.ByName("s13207")
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{CharBits: 7, DictSize: p.DictSize, EntryBits: 63}
	cs := p.Generate()
	half := len(cs.Cubes) / 2
	session1 := &bitvec.CubeSet{Width: cs.Width, Cubes: cs.Cubes[:half]}
	session2 := &bitvec.CubeSet{Width: cs.Width, Cubes: cs.Cubes[half:]}
	fmt.Printf("%s: two test sessions of %d and %d patterns\n", p.Name, half, len(cs.Cubes)-half)

	// Session 1 runs cold and trains the dictionary.
	train := session1.SerializeAligned(cfg.CharBits)
	pre, err := core.Train(train, cfg, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session 1 trained %d dictionary strings\n", pre.Entries())

	// Session 2, cold vs warm.
	payload := session2.SerializeAligned(cfg.CharBits)
	orig := session2.TotalBits()
	cold, err := core.Compress(payload, cfg)
	if err != nil {
		log.Fatal(err)
	}
	warm, err := core.CompressWithPreload(payload, cfg, pre)
	if err != nil {
		log.Fatal(err)
	}
	ratio := func(r *core.Result) float64 { return 100 * (1 - float64(r.Stats.CompressedBits)/float64(orig)) }
	fmt.Printf("session 2 compression: cold %.2f%%, warm %.2f%%\n", ratio(cold), ratio(warm))

	// The decompressor receives the same preload through the shared
	// memory port before the warm session starts.
	words, width := decomp.MemoryGeometry(cfg)
	shared := mem.NewShared(mem.New(words, width))
	shared.Select(mem.SrcLZW)
	hw, err := decomp.New(cfg, 10, shared)
	if err != nil {
		log.Fatal(err)
	}
	if err := hw.Preload(pre); err != nil {
		log.Fatal(err)
	}
	stream, stats, err := hw.Run(warm.Pack(), len(warm.Codes), warm.InputBits)
	if err != nil {
		log.Fatal(err)
	}
	filled, err := bitvec.DeserializeAligned(stream, cs.Width, cfg.CharBits)
	if err != nil {
		log.Fatal(err)
	}
	if err := lzwtc.Verify(session2, filled); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm hardware decompression: %d codes in %d tester cycles (raw would take %d), verified\n",
		stats.CodesDecoded, stats.TesterCycles, orig)

	// Response side: fold the delivered vectors into a MISR signature
	// (in a real flow these would be the captured responses).
	misr, err := signature.NewMISR(32, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range filled.Cubes {
		if err := misr.Capture(c); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("MISR signature over %d capture words: %#010x (aliasing probability %.2g)\n",
		misr.Cycles(), misr.Signature(), misr.AliasingProbability())
}
