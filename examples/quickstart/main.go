// Quickstart: compress a small scan test set with don't-care-aware LZW,
// decompress it, and verify every specified bit survived.
package main

import (
	"fmt"
	"log"

	"lzwtc"
)

func main() {
	// A test set is patterns of 0 / 1 / X (don't-care). Real sets come
	// from ATPG (see examples/soc_flow); here we write one by hand.
	ts := lzwtc.NewTestSet(16)
	for _, p := range []string{
		"01XX10XXXXXX01XX",
		"X1XX10X0XXXXXXXX",
		"01XX1XXXXXXX01X0",
		"XXXX10X0XX1X01XX",
		"01XX10XXXXXX01XX",
		"X1XX1XX0XXXX0XXX",
	} {
		if err := ts.Add(lzwtc.MustPattern(p)); err != nil {
			log.Fatal(err)
		}
	}

	// The paper's headline configuration: 7-bit characters, a 1024-code
	// dictionary, 64-bit dictionary entries. Small sets work better with
	// a small dictionary.
	cfg := lzwtc.Config{CharBits: 4, DictSize: 64, EntryBits: 32}
	res, err := lzwtc.Compress(ts, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed %d patterns x %d bits: %d -> %d bits (%.2f%% compression)\n",
		res.Patterns, res.Width, res.OriginalBits, res.CompressedBits(), 100*res.Ratio())
	st := res.Stats()
	fmt.Printf("codes: %d (%d literals, %d dictionary hits), %d dictionary entries built\n",
		st.CodesEmitted, st.LiteralCodes, st.StringCodes, st.DictEntries)

	// Decompression yields the fully specified stream the scan chain
	// would receive: the compressor chose every X bit.
	filled, err := lzwtc.Decompress(res)
	if err != nil {
		log.Fatal(err)
	}
	for i, c := range filled.Cubes {
		fmt.Printf("pattern %d: %s -> %s\n", i, ts.Cubes[i], c)
	}

	// Every specified bit of the original cubes is preserved.
	if err := lzwtc.Verify(ts, filled); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified: all care bits preserved")
}
