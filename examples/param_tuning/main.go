// param_tuning reproduces the paper's Section 6 engineering-tradeoff
// exercise: given an embedded-memory budget, sweep the LZW configurator
// parameters (N, C_C, C_MDATA) for one core's test set and pick the
// configuration with the best compression whose dictionary fits.
//
// The paper's example: for s13207 with N=1024 and C_C=7, optimal
// compression wants C_MDATA >= 483, i.e. a 1024 x 490-bit memory.
package main

import (
	"fmt"
	"log"

	"lzwtc"
	"lzwtc/internal/bench"
	"lzwtc/internal/core"
)

func main() {
	p, err := bench.ByName("s13207")
	if err != nil {
		log.Fatal(err)
	}
	cubes := p.Generate()
	fmt.Printf("%s: %d patterns x %d bits, %.1f%% don't-cares\n",
		p.Name, len(cubes.Cubes), cubes.Width, 100*cubes.XDensity())

	// The longest-string demand (Table 6): compress once with unbounded
	// entries to see how much C_MDATA the test set could use.
	unbounded := lzwtc.Config{CharBits: 7, DictSize: 1024, EntryBits: 0}
	ur, err := lzwtc.Compress(cubes, unbounded)
	if err != nil {
		log.Fatal(err)
	}
	longest := ur.Stats().MaxEntryChars * 7
	fmt.Printf("longest uncompressed string demand: %d bits (paper's sizing example: 483)\n\n", longest)

	budgets := []int{1 << 16, 1 << 18, 1 << 20} // memory budgets in bits
	for _, budget := range budgets {
		best, bestRatio := core.Config{}, -1.0
		for _, n := range []int{256, 512, 1024, 2048} {
			for _, cc := range []int{4, 7, 8} {
				if n <= 1<<uint(cc) {
					continue // no code space left
				}
				for _, entry := range []int{63, 127, 255, 511} {
					cfg := lzwtc.Config{CharBits: cc, DictSize: n, EntryBits: entry}
					if cfg.MemoryBits() > budget {
						continue
					}
					res, err := lzwtc.Compress(cubes, cfg)
					if err != nil {
						log.Fatal(err)
					}
					if r := res.Ratio(); r > bestRatio {
						best, bestRatio = cfg, r
					}
				}
			}
		}
		if bestRatio < 0 {
			fmt.Printf("budget %7d bits: no configuration fits\n", budget)
			continue
		}
		fmt.Printf("budget %7d bits: best N=%-4d C_C=%d C_MDATA=%-3d -> %dx%d memory (%d bits), compression %.2f%%\n",
			budget, best.DictSize, best.CharBits, best.EntryBits,
			best.DictSize, best.LenBits()+best.EntryBits, best.MemoryBits(), 100*bestRatio)
	}

	// The paper's exact sizing example.
	paper := lzwtc.Config{CharBits: 7, DictSize: 1024, EntryBits: 483}
	res, err := lzwtc.Compress(cubes, paper)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npaper's s13207 sizing (N=1024, C_C=7, C_MDATA=483): %dx%d memory, compression %.2f%%\n",
		paper.DictSize, paper.LenBits()+paper.EntryBits, 100*res.Ratio())
}
