// bist_reuse demonstrates the paper's Figure 6: the LZW decompressor
// borrows an existing embedded memory through the same input-mux layer
// memory BIST already uses, so the production-test circuitry adds almost
// no dedicated RAM.
package main

import (
	"fmt"
	"log"

	"lzwtc"
	"lzwtc/internal/core"
	"lzwtc/internal/decomp"
	"lzwtc/internal/mem"
)

func main() {
	cfg := core.Config{CharBits: 7, DictSize: 256, EntryBits: 63}
	words, width := decomp.MemoryGeometry(cfg)
	shared := mem.NewShared(mem.New(words, width))
	fmt.Printf("embedded memory: %d x %d bits (%d bits), port owner: %v\n",
		words, width, shared.RAM().Bits(), shared.Owner())

	// 1. In mission mode the test logic is locked out.
	if _, err := shared.Read(mem.SrcLZW, 0, nil); err != nil {
		fmt.Println("mission mode: LZW port access rejected ✔")
	}

	// 2. Production test starts with memory BIST (March C-).
	shared.Select(mem.SrcBIST)
	res, err := mem.MarchCMinus(shared)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("memory BIST: %v\n", res)

	// 2b. A faulty die: the BIST localizes the bad cell, and the part is
	// rejected before the scan test even starts.
	shared.RAM().InjectStuckAt(123, 17, 1)
	res, err = mem.MarchCMinus(shared)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("memory BIST with injected stuck-at: %v\n", res)
	shared.RAM().ClearFaults()

	// 3. The same memory now holds the LZW dictionary for scan-test
	// decompression.
	shared.Select(mem.SrcLZW)
	ts := lzwtc.NewTestSet(28)
	for _, p := range []string{
		"0101XXXX10XX0101XXXX10XXXXXX",
		"X101XXXX10XX01XXXXXX10XX01XX",
		"0101XXXX1XXX0101XXXX10XXXXXX",
		"01XXXXXX10XX0101XXXX1XXX01XX",
	} {
		if err := ts.Add(lzwtc.MustPattern(p)); err != nil {
			log.Fatal(err)
		}
	}
	cres, err := lzwtc.Compress(ts, cfg)
	if err != nil {
		log.Fatal(err)
	}
	hw, err := decomp.New(cfg, 8, shared)
	if err != nil {
		log.Fatal(err)
	}
	stream, stats, err := hw.Run(cres.Stream.Pack(), len(cres.Stream.Codes), cres.Stream.InputBits)
	if err != nil {
		log.Fatal(err)
	}
	filled, err := lzwtc.DecompressedSetFromStream(stream, cres)
	if err != nil {
		log.Fatal(err)
	}
	if err := lzwtc.Verify(ts, filled); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LZW decompression through the shared memory: %d codes, %d dictionary reads, %d writes ✔\n",
		stats.CodesDecoded, stats.MemReads, stats.MemWrites)

	// 4. Back to mission mode; the functional logic owns the port again.
	shared.Select(mem.SrcFunctional)
	fmt.Printf("port returned to %v mode\n", shared.Owner())
}
