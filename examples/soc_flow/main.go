// soc_flow runs the paper's Figures 1 and 2 end to end on a synthetic
// embedded core:
//
//	test insertion -> ATPG (PODEM) -> LZW compression with dynamic
//	don't-care assignment -> ATE download -> cycle-accurate hardware
//	decompression on the core's embedded memory -> scan application ->
//	response verification against the good machine.
package main

import (
	"fmt"
	"log"

	"lzwtc"
	"lzwtc/internal/ate"
	"lzwtc/internal/atpg"
	"lzwtc/internal/circuit"
	"lzwtc/internal/compact"
	"lzwtc/internal/decomp"
	"lzwtc/internal/fault"
	"lzwtc/internal/mem"
	"lzwtc/internal/scan"
)

func main() {
	// --- Test generation workstation (Figure 1) -------------------------
	core0, err := circuit.Generate(circuit.GenConfig{
		Name: "core0", Inputs: 24, Outputs: 12, DFFs: 96, Comb: 900, Seed: 2003,
	})
	if err != nil {
		log.Fatal(err)
	}
	n := core0.Count()
	fmt.Printf("embedded core: %d gates (%d PI / %d PO / %d FF)\n", n.Gates, n.Inputs, n.Outputs, n.DFFs)

	design, err := scan.Insert(core0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full-scan inserted: 1 chain, %d scan cells, pattern width %d\n",
		design.ScanCycles(), design.PatternWidth())

	ares, err := atpg.Run(design.Comb, atpg.Options{Collapse: true, RandomPatterns: 32, Seed: 2003})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ATPG: %d faults, %.1f%% test coverage, %d cubes, %.1f%% don't-cares\n",
		ares.Total, 100*ares.TestCoverage(), len(ares.Cubes.Cubes), 100*ares.Cubes.XDensity())

	// Static compaction, as commercial flows run after ATPG: merge
	// compatible cubes, drop patterns made redundant.
	faults := fault.Collapse(core0, fault.All(core0))
	cubes, cst, err := compact.Compact(design.Comb, ares.Cubes, faults)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compaction: %d -> %d patterns (%d merges, %d dropped)\n",
		cst.PatternsIn, cst.PatternsOut, cst.Merges, cst.Dropped)
	uncompacted := ares.Cubes.TotalBits()

	// --- LZW compression with dynamic don't-care assignment -------------
	cfg := lzwtc.Config{CharBits: 7, DictSize: 512, EntryBits: 63}
	res, err := lzwtc.Compress(cubes, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compression: %d -> %d bits (%.2f%%), dictionary entries %d\n",
		res.OriginalBits, res.CompressedBits(), 100*res.Ratio(), res.Stats().DictEntries)
	fmt.Printf("combined test-data reduction (compaction + compression): %d -> %d bits (%.2f%%)\n",
		uncompacted, res.CompressedBits(), 100*(1-float64(res.CompressedBits())/float64(uncompacted)))

	// --- Test application (Figure 2) -------------------------------------
	// The decompressor borrows the core's embedded memory through the
	// BIST-style muxes and runs from an internal clock 8x the tester's.
	words, width := decomp.MemoryGeometry(cfg)
	shared := mem.NewShared(mem.New(words, width))
	shared.Select(mem.SrcLZW)
	hw, err := decomp.New(cfg, 8, shared)
	if err != nil {
		log.Fatal(err)
	}
	stream, stats, err := hw.Run(res.Stream.Pack(), len(res.Stream.Codes), res.Stream.InputBits)
	if err != nil {
		log.Fatal(err)
	}
	tester := ate.DefaultTester()
	raw := res.OriginalBits
	fmt.Printf("download @%.0f MHz tester, 8x internal clock:\n", tester.ClockHz/1e6)
	fmt.Printf("  raw scan-in:  %d cycles (%v)\n", raw, tester.DownloadTime(raw))
	fmt.Printf("  compressed:   %d cycles (%v), improvement %.2f%%\n",
		stats.TesterCycles, tester.DownloadTime(stats.TesterCycles),
		100*ate.Improvement(raw, stats.TesterCycles))

	// --- Verification -----------------------------------------------------
	filled, err := lzwtc.DecompressedSetFromStream(stream, res)
	if err != nil {
		log.Fatal(err)
	}
	if err := lzwtc.Verify(cubes, filled); err != nil {
		log.Fatal(err)
	}
	cubeResp, err := design.ApplySet(cubes)
	if err != nil {
		log.Fatal(err)
	}
	filledResp, err := design.ApplySet(filled)
	if err != nil {
		log.Fatal(err)
	}
	if err := scan.ResponsesCompatible(cubeResp, filledResp); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified: decompressed vectors preserve every care bit and every specified capture response")
}
