package lzwtc

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benchmarks for the design choices called out in DESIGN.md.
// Each benchmark regenerates its experiment through the same runners
// cmd/experiments uses and reports the headline quantity as a custom
// metric, so `go test -bench=. -benchmem` reproduces the entire
// evaluation. Absolute rows are printed by `go run ./cmd/experiments`.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"lzwtc/internal/bench"
	"lzwtc/internal/bitvec"
	"lzwtc/internal/core"
	"lzwtc/internal/experiments"
	"lzwtc/internal/report"
)

func benchTable(b *testing.B, run func() (*report.Table, error), metricCol int, metric string) {
	b.Helper()
	var last *report.Table
	for i := 0; i < b.N; i++ {
		t, err := run()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	if last == nil || len(last.Rows) == 0 {
		b.Fatal("empty table")
	}
	// Report the mean of the metric column across circuits.
	sum, n := 0.0, 0
	for _, row := range last.Rows {
		var v float64
		if _, err := sscanfPct(row[metricCol], &v); err == nil {
			sum += v
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(sum/float64(n), metric)
	}
}

func BenchmarkTable1CompressionComparison(b *testing.B) {
	benchTable(b, experiments.Table1, 1, "mean_lzw_%")
}

func BenchmarkTable2DownloadImprovement(b *testing.B) {
	benchTable(b, experiments.Table2, 4, "mean_improvement_10x_%")
}

func BenchmarkTable3BenchmarkResults(b *testing.B) {
	benchTable(b, experiments.Table3, 3, "mean_compression_%")
}

func BenchmarkTable4CharacterSizeSweep(b *testing.B) {
	benchTable(b, experiments.Table4, 3, "mean_cc7_%")
}

func BenchmarkTable5EntrySizeSweep(b *testing.B) {
	benchTable(b, experiments.Table5, 4, "mean_entry511_%")
}

func BenchmarkTable6PerformanceVsEntry(b *testing.B) {
	benchTable(b, experiments.Table6, 5, "mean_perf_entry511_%")
}

func BenchmarkFigure3CompressionTrace(b *testing.B) {
	benchTable(b, experiments.Figure3, 0, "")
}

func BenchmarkFigure4DecompressionTrace(b *testing.B) {
	benchTable(b, experiments.Figure4, 0, "")
}

func BenchmarkFigure5HardwareCycleTrace(b *testing.B) {
	benchTable(b, experiments.Figure5, 0, "")
}

func BenchmarkFigure6MemoryReuse(b *testing.B) {
	benchTable(b, experiments.Figure6, 0, "")
}

// --- Ablations -----------------------------------------------------------

// s13207 under the paper configuration is the ablation workload.
func ablationWorkload(b *testing.B) (*bitvec.Vector, core.Config, int) {
	b.Helper()
	p, err := bench.ByName("s13207")
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.LZWConfig(p)
	return p.Generate().SerializeAligned(cfg.CharBits), cfg, p.TotalBits()
}

func ratioOf(b *testing.B, stream *bitvec.Vector, cfg core.Config, orig int) float64 {
	b.Helper()
	res, err := core.Compress(stream, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return 100 * (1 - float64(res.Stats.CompressedBits)/float64(orig))
}

// BenchmarkAblationXFill compares the paper's dynamic (during-LZW)
// don't-care assignment against assigning the X bits before compression
// (Section 5: the pre-processing approaches the authors discarded).
func BenchmarkAblationXFill(b *testing.B) {
	stream, cfg, orig := ablationWorkload(b)
	rng := rand.New(rand.NewSource(1))
	randomFilled := stream.Clone()
	for i := 0; i < randomFilled.Len(); i++ {
		if randomFilled.Get(i) == bitvec.X {
			randomFilled.Set(i, bitvec.Bit(rng.Intn(2)))
		}
	}
	var dyn, zero, rep, rnd float64
	for i := 0; i < b.N; i++ {
		dyn = ratioOf(b, stream, cfg, orig)
		zero = ratioOf(b, stream.Filled(bitvec.FillZero), cfg, orig)
		rep = ratioOf(b, stream.Filled(bitvec.FillRepeat), cfg, orig)
		rnd = ratioOf(b, randomFilled, cfg, orig)
	}
	b.ReportMetric(dyn, "dynamic_%")
	b.ReportMetric(zero, "prefill_zero_%")
	b.ReportMetric(rep, "prefill_repeat_%")
	b.ReportMetric(rnd, "prefill_random_%")
}

// BenchmarkAblationTieBreak compares child tie-break policies.
func BenchmarkAblationTieBreak(b *testing.B) {
	stream, cfg, orig := ablationWorkload(b)
	var oldest, newest, widest float64
	for i := 0; i < b.N; i++ {
		c := cfg
		c.Tie = core.TieOldest
		oldest = ratioOf(b, stream, c, orig)
		c.Tie = core.TieNewest
		newest = ratioOf(b, stream, c, orig)
		c.Tie = core.TieWidest
		widest = ratioOf(b, stream, c, orig)
	}
	b.ReportMetric(oldest, "tie_oldest_%")
	b.ReportMetric(newest, "tie_newest_%")
	b.ReportMetric(widest, "tie_widest_%")
}

// BenchmarkAblationEntryBound compares the paper's single-memory-word
// bounded entries against an unbounded software dictionary.
func BenchmarkAblationEntryBound(b *testing.B) {
	stream, cfg, orig := ablationWorkload(b)
	var bounded, unbounded float64
	for i := 0; i < b.N; i++ {
		bounded = ratioOf(b, stream, cfg, orig)
		c := cfg
		c.EntryBits = 0
		unbounded = ratioOf(b, stream, c, orig)
	}
	b.ReportMetric(bounded, "bounded_63b_%")
	b.ReportMetric(unbounded, "unbounded_%")
}

// BenchmarkAblationDictFull compares freezing the full dictionary (the
// paper's hardware policy) against resetting it.
func BenchmarkAblationDictFull(b *testing.B) {
	stream, cfg, orig := ablationWorkload(b)
	var freeze, reset float64
	for i := 0; i < b.N; i++ {
		c := cfg
		c.Full = core.FullFreeze
		freeze = ratioOf(b, stream, c, orig)
		c.Full = core.FullReset
		reset = ratioOf(b, stream, c, orig)
	}
	b.ReportMetric(freeze, "full_freeze_%")
	b.ReportMetric(reset, "full_reset_%")
}

// sscanfPct parses "80.69%" into 80.69. Non-percentage cells return an
// error and are skipped by benchTable.
func sscanfPct(s string, v *float64) (int, error) {
	var pct float64
	n, err := fmtSscan(s, &pct)
	if err == nil {
		*v = pct
	}
	return n, err
}

func fmtSscan(s string, v *float64) (int, error) {
	if !strings.HasSuffix(s, "%") {
		return 0, fmt.Errorf("not a percentage: %q", s)
	}
	return fmt.Sscanf(strings.TrimSuffix(s, "%"), "%f", v)
}

// BenchmarkAblationPreload measures the warm-start extension: a
// dictionary trained on the first half of the s13207 test set and
// preloaded (through the Figure 6 memory port) before compressing the
// second half, against a cold-start dictionary.
func BenchmarkAblationPreload(b *testing.B) {
	p, err := bench.ByName("s13207")
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.LZWConfig(p)
	cs := p.Generate()
	half := len(cs.Cubes) / 2
	trainSet := &bitvec.CubeSet{Width: cs.Width, Cubes: cs.Cubes[:half]}
	paySet := &bitvec.CubeSet{Width: cs.Width, Cubes: cs.Cubes[half:]}
	train := trainSet.SerializeAligned(cfg.CharBits)
	payload := paySet.SerializeAligned(cfg.CharBits)
	orig := paySet.TotalBits()

	var cold, warm float64
	for i := 0; i < b.N; i++ {
		pre, err := core.Train(train, cfg, 0)
		if err != nil {
			b.Fatal(err)
		}
		c, err := core.Compress(payload, cfg)
		if err != nil {
			b.Fatal(err)
		}
		w, err := core.CompressWithPreload(payload, cfg, pre)
		if err != nil {
			b.Fatal(err)
		}
		cold = 100 * (1 - float64(c.Stats.CompressedBits)/float64(orig))
		warm = 100 * (1 - float64(w.Stats.CompressedBits)/float64(orig))
	}
	b.ReportMetric(cold, "cold_%")
	b.ReportMetric(warm, "warm_preloaded_%")
}
