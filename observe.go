package lzwtc

import (
	"context"
	"fmt"

	"lzwtc/internal/ate"
	"lzwtc/internal/core"
	"lzwtc/internal/decomp"
	"lzwtc/internal/mem"
	"lzwtc/internal/telemetry"
)

// Recorder re-exports the telemetry recorder so instrumented entry
// points are usable from the public API (the same in-module aliasing as
// DownloadStats).
type Recorder = telemetry.Recorder

// CompressObserved is Compress instrumented through a telemetry
// recorder: per-code histograms into its registry and a compress.run
// event record to its sinks. A nil recorder reduces to Compress.
func CompressObserved(ts *TestSet, cfg Config, rec *Recorder) (*Result, error) {
	return CompressObservedCtx(context.Background(), ts, cfg, rec)
}

// CompressObservedCtx is CompressObserved threaded through a context:
// when ctx carries a trace span, serialization and the core phases are
// recorded as child spans, so a request trace attributes the whole
// single-stream pipeline. A nil recorder reduces to Compress.
func CompressObservedCtx(ctx context.Context, ts *TestSet, cfg Config, rec *Recorder) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(ts.Cubes) == 0 {
		return nil, fmt.Errorf("lzwtc: empty test set")
	}
	_, ssp := rec.StartSpan(ctx, core.SpanSerialize)
	stream := ts.SerializeAligned(cfg.CharBits)
	ssp.End(telemetry.F("bits", stream.Len()))
	res, err := core.CompressObservedCtx(ctx, stream, cfg, rec)
	if err != nil {
		return nil, err
	}
	return &Result{Stream: res, Width: ts.Width, OriginalBits: ts.TotalBits(), Patterns: len(ts.Cubes)}, nil
}

// SimulateDownloadObserved is SimulateDownload instrumented through a
// telemetry recorder: the decompressor model charges cycles, memory
// reads and load stalls to individual scan patterns (decomp.pattern
// events) and folds its run totals into the recorder's registry. A nil
// recorder reduces to SimulateDownload.
func SimulateDownloadObserved(r *Result, clockRatio int, rec *Recorder) (*TestSet, *DownloadStats, float64, error) {
	cfg := r.Stream.Cfg
	words, width := decomp.MemoryGeometry(cfg)
	shared := mem.NewShared(mem.New(words, width))
	shared.Select(mem.SrcLZW)
	hw, err := decomp.New(cfg, clockRatio, shared)
	if err != nil {
		return nil, nil, 0, err
	}
	hw.SetRecorder(rec)
	// Pattern boundaries in the scan stream fall on the aligned width
	// (each pattern is padded to a character boundary).
	cc := cfg.CharBits
	hw.SetPatternBits((r.Width + cc - 1) / cc * cc)
	stream, stats, err := hw.Run(r.Stream.Pack(), len(r.Stream.Codes), r.Stream.InputBits)
	if err != nil {
		return nil, nil, 0, err
	}
	ts, err := DecompressedSetFromStream(stream, r)
	if err != nil {
		return nil, nil, 0, err
	}
	return ts, stats, ate.Improvement(r.OriginalBits, stats.TesterCycles), nil
}
