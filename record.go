package lzwtc

import (
	"lzwtc/internal/ate"
	"lzwtc/internal/core"
	"lzwtc/internal/telemetry"
)

// RunRecord is the single-document JSON schema shared by `lzwtc stats`
// and `lzwtc info -json`: both render the same field names, so scripts
// consuming one can consume the other. Fields a compressed container
// cannot reconstruct (fill counts, histograms, the decompressor run)
// are zero or omitted in the info rendering.
type RunRecord struct {
	Empty        bool                `json:"empty"`
	Patterns     int                 `json:"patterns"`
	Width        int                 `json:"width"`
	OriginalBits int                 `json:"original_bits"`
	Config       ConfigRecord        `json:"config"`
	Compress     CompressRecord      `json:"compress"`
	Decompressor *DecompressorRecord `json:"decompressor,omitempty"`
	// Shards is present for sharded compressions: one entry per
	// pattern-group shard, in order. The Compress section then carries
	// the aggregate (counts summed, maxima taken across shards).
	Shards []ShardRecord `json:"shards,omitempty"`
}

// ShardRecord summarizes one shard of a sharded compression.
type ShardRecord struct {
	Patterns       int     `json:"patterns"`
	CompressedBits int     `json:"compressed_bits"`
	Ratio          float64 `json:"ratio"`
}

// ConfigRecord renders the LZW parameters under their paper names.
type ConfigRecord struct {
	CharBits  int    `json:"char_bits"`  // C_C
	DictSize  int    `json:"dict_size"`  // N
	CodeBits  int    `json:"code_bits"`  // C_E
	EntryBits int    `json:"entry_bits"` // C_MDATA (0 = unbounded)
	Fill      string `json:"fill"`
	Tie       string `json:"tie"`
	Full      string `json:"full"`
}

// CompressRecord renders one compression run's statistics. Ratio is
// against the original (unpadded) test-set volume, as everywhere in
// the paper's tables.
type CompressRecord struct {
	Ratio          float64                      `json:"ratio"`
	InputBits      int                          `json:"input_bits"`
	Chars          int                          `json:"chars"`
	CodesEmitted   int                          `json:"codes_emitted"`
	CompressedBits int                          `json:"compressed_bits"`
	LiteralCodes   int                          `json:"literal_codes"`
	StringCodes    int                          `json:"string_codes"`
	DictEntries    int                          `json:"dict_entries"`
	DictResets     int                          `json:"dict_resets"`
	MaxMatchChars  int                          `json:"max_match_chars"`
	MaxEntryChars  int                          `json:"max_entry_chars"`
	ResidualFills  int                          `json:"residual_fills"`
	DynamicFills   int                          `json:"dynamic_fills"`
	MatchLenHist   *telemetry.HistogramSnapshot `json:"match_len_hist,omitempty"`
	OccupancyHist  *telemetry.HistogramSnapshot `json:"dict_occupancy_hist,omitempty"`

	// Dictionary-arena effectiveness: how many dictionaries this run
	// recycled from the pool versus allocated fresh. Only populated from
	// a registry snapshot (AttachHistograms); zero values are omitted.
	DictPoolRecycles int64 `json:"dict_pool_recycles,omitempty"`
	DictPoolMisses   int64 `json:"dict_pool_misses,omitempty"`
}

// DecompressorRecord renders one cycle-accurate download simulation.
type DecompressorRecord struct {
	ClockRatio     int     `json:"clock_ratio"`
	InternalCycles int     `json:"internal_cycles"`
	TesterCycles   int     `json:"tester_cycles"`
	LoadStalls     int     `json:"load_stalls"`
	DecodeCycles   int     `json:"decode_cycles"`
	WriteCycles    int     `json:"write_cycles"`
	ShiftCycles    int     `json:"shift_cycles"`
	MemReads       int     `json:"mem_reads"`
	MemWrites      int     `json:"mem_writes"`
	OutputBits     int     `json:"output_bits"`
	CodesDecoded   int     `json:"codes_decoded"`
	Utilization    float64 `json:"utilization"`
	Improvement    float64 `json:"improvement"`
	MemoryWords    int     `json:"memory_words"`
	MemoryWidth    int     `json:"memory_width"`
}

// NewRunRecord builds the record for a compressed result. The compress
// section carries whatever the Result's Stats hold — complete after a
// live compression, partial after decoding a container.
func NewRunRecord(r *Result) RunRecord {
	cfg := r.Stream.Cfg
	st := r.Stream.Stats
	return RunRecord{
		Empty:        r.OriginalBits == 0 || st.Empty(),
		Patterns:     r.Patterns,
		Width:        r.Width,
		OriginalBits: r.OriginalBits,
		Config: ConfigRecord{
			CharBits:  cfg.CharBits,
			DictSize:  cfg.DictSize,
			CodeBits:  cfg.CodeBits(),
			EntryBits: cfg.EntryBits,
			Fill:      cfg.Fill.String(),
			Tie:       cfg.Tie.String(),
			Full:      cfg.Full.String(),
		},
		Compress: CompressRecord{
			Ratio:          r.Ratio(),
			InputBits:      st.InputBits,
			Chars:          st.Chars,
			CodesEmitted:   st.CodesEmitted,
			CompressedBits: st.CompressedBits,
			LiteralCodes:   st.LiteralCodes,
			StringCodes:    st.StringCodes,
			DictEntries:    st.DictEntries,
			DictResets:     st.DictResets,
			MaxMatchChars:  st.MaxMatchChars,
			MaxEntryChars:  st.MaxEntryChars,
			ResidualFills:  st.ResidualFills,
			DynamicFills:   st.DynamicFills,
		},
	}
}

// NewShardedRunRecord builds the record for a sharded compression: the
// compress section aggregates across shards (counts summed, maxima
// taken) and Shards carries the per-shard breakdown.
func NewShardedRunRecord(s *ShardedResult) RunRecord {
	cfg := s.Cfg
	rec := RunRecord{
		Empty:        s.OriginalBits == 0,
		Patterns:     s.Patterns,
		Width:        s.Width,
		OriginalBits: s.OriginalBits,
		Config: ConfigRecord{
			CharBits:  cfg.CharBits,
			DictSize:  cfg.DictSize,
			CodeBits:  cfg.CodeBits(),
			EntryBits: cfg.EntryBits,
			Fill:      cfg.Fill.String(),
			Tie:       cfg.Tie.String(),
			Full:      cfg.Full.String(),
		},
		Shards: make([]ShardRecord, len(s.Shards)),
	}
	c := &rec.Compress
	for i, sh := range s.Shards {
		st := sh.Stats
		c.InputBits += st.InputBits
		c.Chars += st.Chars
		c.CodesEmitted += st.CodesEmitted
		c.CompressedBits += st.CompressedBits
		c.LiteralCodes += st.LiteralCodes
		c.StringCodes += st.StringCodes
		c.DictEntries += st.DictEntries
		c.DictResets += st.DictResets
		c.ResidualFills += st.ResidualFills
		c.DynamicFills += st.DynamicFills
		if st.MaxMatchChars > c.MaxMatchChars {
			c.MaxMatchChars = st.MaxMatchChars
		}
		if st.MaxEntryChars > c.MaxEntryChars {
			c.MaxEntryChars = st.MaxEntryChars
		}
		shardBits := s.ShardPatterns[i] * s.Width
		shardRatio := 0.0
		if shardBits > 0 {
			shardRatio = 1 - float64(st.CompressedBits)/float64(shardBits)
		}
		rec.Shards[i] = ShardRecord{
			Patterns:       s.ShardPatterns[i],
			CompressedBits: st.CompressedBits,
			Ratio:          shardRatio,
		}
	}
	c.Ratio = s.Ratio()
	return rec
}

// AttachHistograms copies the compressor's match-length and
// dictionary-occupancy histograms — and the dictionary-arena counters —
// out of a registry snapshot into the record (no-ops for metrics the
// snapshot lacks).
func (r *RunRecord) AttachHistograms(snap telemetry.Snapshot) {
	if h, ok := snap.HistogramNamed(core.MetricCompressMatchLen); ok {
		r.Compress.MatchLenHist = &h
	}
	if h, ok := snap.HistogramNamed(core.MetricCompressOccupancy); ok {
		r.Compress.OccupancyHist = &h
	}
	r.Compress.DictPoolRecycles = snap.CounterValue(core.MetricDictPoolRecycles)
	r.Compress.DictPoolMisses = snap.CounterValue(core.MetricDictPoolMisses)
}

// AttachDownload records a download simulation's cycle accounting.
func (r *RunRecord) AttachDownload(clockRatio int, st *DownloadStats) {
	cfg := r.coreConfig()
	r.Decompressor = &DecompressorRecord{
		ClockRatio:     clockRatio,
		InternalCycles: st.InternalCycles,
		TesterCycles:   st.TesterCycles,
		LoadStalls:     st.LoadStalls,
		DecodeCycles:   st.DecodeCycles,
		WriteCycles:    st.WriteCycles,
		ShiftCycles:    st.ShiftCycles,
		MemReads:       st.MemReads,
		MemWrites:      st.MemWrites,
		OutputBits:     st.OutputBits,
		CodesDecoded:   st.CodesDecoded,
		Utilization:    st.Utilization(),
		Improvement:    ate.Improvement(r.OriginalBits, st.TesterCycles),
		MemoryWords:    cfg.DictSize,
		MemoryWidth:    cfg.LenBits() + cfg.EntryBits,
	}
}

// coreConfig rebuilds the core Config the record describes, for sizing
// derived quantities.
func (r *RunRecord) coreConfig() Config {
	return Config{CharBits: r.Config.CharBits, DictSize: r.Config.DictSize, EntryBits: r.Config.EntryBits}
}
