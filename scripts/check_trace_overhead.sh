#!/bin/sh
# Trace-overhead gate: the disabled-tracing compression path
# (CompressObservedCtx with a span context in ctx and a nil recorder)
# must stay within TOLERANCE_PCT of the disabled-telemetry baseline
# (BenchmarkCompressTelemetryDisabled, the PR 6 acceptance benchmark),
# and must allocate exactly as much per op. Both benchmarks run
# interleaved COUNT times; the minimum of each side is compared, which
# filters scheduler noise better than means on shared runners.
set -eu

COUNT=${COUNT:-3}
BENCHTIME=${BENCHTIME:-0.5s}
TOLERANCE_PCT=${TOLERANCE_PCT:-3}

OUT=$(mktemp)
trap 'rm -f "$OUT"' EXIT

go test -run '^$' \
    -bench 'BenchmarkCompressTelemetryDisabled$|BenchmarkCompressTraceDisabled$' \
    -benchtime "$BENCHTIME" -benchmem -count "$COUNT" ./internal/core | tee "$OUT"

awk -v tol="$TOLERANCE_PCT" '
/^BenchmarkCompressTelemetryDisabled/ {
    if (base_ns == 0 || $3 < base_ns) base_ns = $3
    for (i = 1; i <= NF; i++) if ($i == "allocs/op" && (base_allocs == "" || $(i-1) < base_allocs)) base_allocs = $(i-1)
}
/^BenchmarkCompressTraceDisabled/ {
    if (trace_ns == 0 || $3 < trace_ns) trace_ns = $3
    for (i = 1; i <= NF; i++) if ($i == "allocs/op" && (trace_allocs == "" || $(i-1) < trace_allocs)) trace_allocs = $(i-1)
}
END {
    if (base_ns == 0 || trace_ns == 0) {
        print "trace-overhead: benchmarks did not run"; exit 1
    }
    ratio = (trace_ns - base_ns) * 100.0 / base_ns
    printf "trace-overhead: base %d ns/op (%s allocs), traced %d ns/op (%s allocs), delta %+.2f%% (gate %+d%%)\n", \
        base_ns, base_allocs, trace_ns, trace_allocs, ratio, tol
    if (trace_allocs + 0 > base_allocs + 0) {
        print "trace-overhead: FAIL - disabled tracing allocates extra per op"; exit 1
    }
    if (ratio > tol) {
        print "trace-overhead: FAIL - disabled tracing exceeds the latency gate"; exit 1
    }
}' "$OUT"
