#!/bin/sh
# lzwtcd smoke: build the server and CLI, start the service on an
# ephemeral port (with the debug listener up), push one traced
# compress/decompress round trip through `lzwtc remote`, check
# /healthz, /v1/stats, /metrics SLO series, and /debug/trace/recent,
# render the client-side trace with `lzwtc trace`, then SIGTERM the
# server and require a clean (exit 0) graceful drain.
set -eu

WORK=$(mktemp -d)
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/lzwtcd" ./cmd/lzwtcd
go build -o "$WORK/lzwtc" ./cmd/lzwtc

"$WORK/lzwtcd" -addr 127.0.0.1:0 -debug-addr 127.0.0.1:0 \
    -telemetry-out "$WORK/server-spans.jsonl" >"$WORK/lzwtcd.log" 2>&1 &
SERVER_PID=$!

# The server prints "lzwtcd: listening on ADDR" once the listener is up,
# and "lzwtcd: debug listening on ADDR" for the debug listener.
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(awk '/^lzwtcd: listening on/ {print $NF; exit}' "$WORK/lzwtcd.log" 2>/dev/null || true)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "lzwtcd never started"; cat "$WORK/lzwtcd.log"; exit 1; }
DEBUG_ADDR=$(awk '/debug listening on/ {print $NF; exit}' "$WORK/lzwtcd.log")
[ -n "$DEBUG_ADDR" ] || { echo "debug listener never started"; cat "$WORK/lzwtcd.log"; exit 1; }
SERVER="http://$ADDR"
DEBUG="http://$DEBUG_ADDR"
echo "smoke: server at $SERVER, debug at $DEBUG"

"$WORK/lzwtc" remote health -server "$SERVER"

IN=testdata/conformance/paper-slice.cubes
"$WORK/lzwtc" remote compress -server "$SERVER" -in "$IN" -out "$WORK/out.lzw" \
    -char 7 -dict 1024 -entry 63 \
    -telemetry jsonl -telemetry-out "$WORK/spans.jsonl"
"$WORK/lzwtc" remote decompress -server "$SERVER" -in "$WORK/out.lzw" -out "$WORK/filled.txt"
"$WORK/lzwtc" verify -cubes "$IN" -filled "$WORK/filled.txt"
"$WORK/lzwtc" remote stats -server "$SERVER"

# The traced compress must render as a span tree with the client span
# at the root.
"$WORK/lzwtc" trace -in "$WORK/spans.jsonl" >"$WORK/trace.txt"
grep -q "client.request" "$WORK/trace.txt" || {
    echo "trace render missing client.request"; cat "$WORK/trace.txt"; exit 1; }

# Merging the client's and the server's span streams must yield ONE
# connected trace for the compress request: client and server spans
# share the propagated trace ID, and the tree descends through the
# handler and the pool into the core phases (>= 6 spans).
cat "$WORK/spans.jsonl" "$WORK/server-spans.jsonl" >"$WORK/merged.jsonl"
"$WORK/lzwtc" trace -in "$WORK/merged.jsonl" >"$WORK/merged-trace.txt"
COMPRESS_BLOCK=$(awk -v RS= '/client\.request/' "$WORK/merged-trace.txt")
for span in "client.request \[lzwtc\]" "server.compress \[lzwtcd\]" "core.match_loop \[lzwtcd\]"; do
    echo "$COMPRESS_BLOCK" | grep -q "$span" || {
        echo "merged trace block missing $span"
        cat "$WORK/merged-trace.txt"; exit 1; }
done
SPAN_LINES=$(echo "$COMPRESS_BLOCK" | grep -c "total .*µs" || true)
[ "$SPAN_LINES" -ge 6 ] || {
    echo "merged compress trace has $SPAN_LINES spans, want >= 6"
    cat "$WORK/merged-trace.txt"; exit 1; }
echo "smoke: merged trace spans=$SPAN_LINES"

# SLO accounting: the compress round trip must show up in the
# span-derived success-latency series on /metrics.
curl -fsS -o "$WORK/metrics.txt" "$SERVER/metrics"
grep -q "lzwtcd_slo_compress_seconds_ok" "$WORK/metrics.txt" || {
    echo "metrics missing SLO series"; exit 1; }

# Live introspection: the ring buffer behind /debug/trace/recent (on
# both the service and the debug listener) holds the server's trace of
# the request we just sent.
curl -fsS -o "$WORK/recent.json" "$SERVER/debug/trace/recent"
grep -q "server.compress" "$WORK/recent.json" || {
    echo "/debug/trace/recent missing server.compress span"; exit 1; }
curl -fsS -o "$WORK/recent-debug.json" "$DEBUG/debug/trace/recent"
grep -q "server.compress" "$WORK/recent-debug.json" || {
    echo "debug listener trace endpoint missing server.compress span"; exit 1; }

# Shared-dictionary flow: train a dictionary into a local store, push
# it to the service, compress by dictionary ID (the container carries a
# 'D' frame naming it), decompress remotely (the server resolves its
# own store) and locally (the CLI resolves the pushed local store).
DICTS="$WORK/dicts"
KEY=$("$WORK/lzwtc" dict train -store "$DICTS" -in "$IN" -char 7 -dict 1024 -entry 63)
[ -n "$KEY" ] || { echo "dict train printed no key"; exit 1; }
"$WORK/lzwtc" dict ls -store "$DICTS" | grep -q "$KEY" || {
    echo "dict ls does not list the trained key"; exit 1; }
"$WORK/lzwtc" dict push -store "$DICTS" -id "$KEY" -server "$SERVER"
"$WORK/lzwtc" remote compress -server "$SERVER" -in "$IN" -out "$WORK/warm.lzw" \
    -char 7 -dict 1024 -entry 63 -dict-id "$KEY"
"$WORK/lzwtc" remote decompress -server "$SERVER" -in "$WORK/warm.lzw" -out "$WORK/warm-filled.txt"
"$WORK/lzwtc" verify -cubes "$IN" -filled "$WORK/warm-filled.txt"
"$WORK/lzwtc" decompress -in "$WORK/warm.lzw" -out "$WORK/warm-local.txt" -dict-store "$DICTS"
"$WORK/lzwtc" verify -cubes "$IN" -filled "$WORK/warm-local.txt"
cmp -s "$WORK/warm-filled.txt" "$WORK/warm-local.txt" || {
    echo "remote and local dict decompression disagree"; exit 1; }
echo "smoke: dict round trip ok (key $KEY)"

kill -TERM "$SERVER_PID"
WAIT_STATUS=0
wait "$SERVER_PID" || WAIT_STATUS=$?
if [ "$WAIT_STATUS" -ne 0 ]; then
    echo "lzwtcd did not drain cleanly (exit $WAIT_STATUS)"
    cat "$WORK/lzwtcd.log"
    exit 1
fi
grep -q "drained, shutting down" "$WORK/lzwtcd.log" || {
    echo "missing drain message"; cat "$WORK/lzwtcd.log"; exit 1; }
echo "smoke: clean drain"
