#!/bin/sh
# lzwtcd smoke: build the server and CLI, start the service on an
# ephemeral port, push one compress/decompress round trip through
# `lzwtc remote`, check /healthz and /v1/stats, then SIGTERM the server
# and require a clean (exit 0) graceful drain.
set -eu

WORK=$(mktemp -d)
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/lzwtcd" ./cmd/lzwtcd
go build -o "$WORK/lzwtc" ./cmd/lzwtc

"$WORK/lzwtcd" -addr 127.0.0.1:0 >"$WORK/lzwtcd.log" 2>&1 &
SERVER_PID=$!

# The server prints "lzwtcd: listening on ADDR" once the listener is up.
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(awk '/listening on/ {print $NF; exit}' "$WORK/lzwtcd.log" 2>/dev/null || true)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "lzwtcd never started"; cat "$WORK/lzwtcd.log"; exit 1; }
SERVER="http://$ADDR"
echo "smoke: server at $SERVER"

"$WORK/lzwtc" remote health -server "$SERVER"

IN=testdata/conformance/paper-slice.cubes
"$WORK/lzwtc" remote compress -server "$SERVER" -in "$IN" -out "$WORK/out.lzw" \
    -char 7 -dict 1024 -entry 63
"$WORK/lzwtc" remote decompress -server "$SERVER" -in "$WORK/out.lzw" -out "$WORK/filled.txt"
"$WORK/lzwtc" verify -cubes "$IN" -filled "$WORK/filled.txt"
"$WORK/lzwtc" remote stats -server "$SERVER"

kill -TERM "$SERVER_PID"
WAIT_STATUS=0
wait "$SERVER_PID" || WAIT_STATUS=$?
if [ "$WAIT_STATUS" -ne 0 ]; then
    echo "lzwtcd did not drain cleanly (exit $WAIT_STATUS)"
    cat "$WORK/lzwtcd.log"
    exit 1
fi
grep -q "drained, shutting down" "$WORK/lzwtcd.log" || {
    echo "missing drain message"; cat "$WORK/lzwtcd.log"; exit 1; }
echo "smoke: clean drain"
