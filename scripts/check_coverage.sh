#!/bin/sh
# Coverage gate: total statement coverage across every package must not
# fall below the committed floor (the level the suite had when the gate
# was introduced). Raise the floor as coverage grows; never lower it to
# make a PR pass.
set -eu

FLOOR="${COVER_FLOOR:-72.5}"
PROFILE="${COVER_PROFILE:-/tmp/lzwtc-cover.out}"

go test -coverprofile="$PROFILE" -coverpkg=./... ./... >/dev/null
TOTAL=$(go tool cover -func="$PROFILE" | awk '/^total:/ {sub(/%/, "", $NF); print $NF}')
echo "coverage: total ${TOTAL}% (floor ${FLOOR}%)"
awk -v total="$TOTAL" -v floor="$FLOOR" 'BEGIN {
    if (total + 0 < floor + 0) {
        printf "coverage gate FAILED: %.1f%% < %.1f%%\n", total, floor
        exit 1
    }
}'
