#!/bin/sh
# Coverage gate: total statement coverage across every package must not
# fall below the committed floor (the level the suite had when the gate
# was introduced). Raise the floor as coverage grows; never lower it to
# make a PR pass.
set -eu

FLOOR="${COVER_FLOOR:-72.5}"
PROFILE="${COVER_PROFILE:-/tmp/lzwtc-cover.out}"

go test -coverprofile="$PROFILE" -coverpkg=./... ./... >/dev/null
TOTAL=$(go tool cover -func="$PROFILE" | awk '/^total:/ {sub(/%/, "", $NF); print $NF}')
echo "coverage: total ${TOTAL}% (floor ${FLOOR}%)"
awk -v total="$TOTAL" -v floor="$FLOOR" 'BEGIN {
    if (total + 0 < floor + 0) {
        printf "coverage gate FAILED: %.1f%% < %.1f%%\n", total, floor
        exit 1
    }
}'

# Per-package floor for the shared-dictionary tier: its blob decoder is
# a hostile-input surface, so it carries a higher bar than the total.
DICT_FLOOR="${DICT_COVER_FLOOR:-80.0}"
DICT_PROFILE="${DICT_COVER_PROFILE:-/tmp/lzwtc-dictstore-cover.out}"
go test -coverprofile="$DICT_PROFILE" ./internal/dictstore >/dev/null
DICT=$(go tool cover -func="$DICT_PROFILE" | awk '/^total:/ {sub(/%/, "", $NF); print $NF}')
echo "coverage: internal/dictstore ${DICT}% (floor ${DICT_FLOOR}%)"
awk -v total="$DICT" -v floor="$DICT_FLOOR" 'BEGIN {
    if (total + 0 < floor + 0) {
        printf "dictstore coverage gate FAILED: %.1f%% < %.1f%%\n", total, floor
        exit 1
    }
}'
