#!/bin/sh
# Load-generator smoke: start lzwtcd with a deliberately undersized
# per-tenant submission quota, slam it with 200 concurrent async
# clients through cmd/lzwtcload, and require that (a) every operation
# eventually succeeds byte-identically — the 429s are absorbed by the
# client's Retry-After backoff, never surfaced as failures — and
# (b) the quota actually bit: at least one throttle was observed.
# Finishes with a SIGTERM graceful drain, which must exit 0.
set -eu

CLIENTS=${CLIENTS:-200}
RATE=${RATE:-50}
BURST=${BURST:-50}

WORK=$(mktemp -d)
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/lzwtcd" ./cmd/lzwtcd
go build -o "$WORK/lzwtcload" ./cmd/lzwtcload

# Quota sized so a 200-client burst must overflow it (burst < clients)
# but refill lets every retry wave through well inside the client's
# retry budget.
"$WORK/lzwtcd" -addr 127.0.0.1:0 \
    -jobs-rate "$RATE" -jobs-burst "$BURST" -jobs-concurrent 8 -jobs-queue 256 \
    >"$WORK/lzwtcd.log" 2>&1 &
SERVER_PID=$!

ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(awk '/^lzwtcd: listening on/ {print $NF; exit}' "$WORK/lzwtcd.log" 2>/dev/null || true)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "lzwtcd never started"; cat "$WORK/lzwtcd.log"; exit 1; }
SERVER="http://$ADDR"
echo "loadgen smoke: server at $SERVER ($CLIENTS clients vs rate=$RATE burst=$BURST)"

"$WORK/lzwtcload" -server "$SERVER" -clients "$CLIENTS" -requests 1 \
    -mode async -patterns 32 -width 32 -retries 10 -timeout 2m \
    | tee "$WORK/loadgen.out"

# Zero failed, zero corrupted — the run itself exits non-zero otherwise,
# but assert on the report too so a silent tally bug cannot pass.
grep -q "operations: $CLIENTS ok, 0 failed, 0 corrupted" "$WORK/loadgen.out" || {
    echo "loadgen report does not show $CLIENTS clean operations"
    cat "$WORK/lzwtcd.log"; exit 1; }

# The undersized quota must have produced at least one 429.
THROTTLED=$(awk '/^throttled:/ {print $2; exit}' "$WORK/loadgen.out")
[ -n "$THROTTLED" ] && [ "$THROTTLED" -ge 1 ] || {
    echo "expected >=1 throttled operation, got '$THROTTLED' — quota never engaged"
    exit 1; }

# Server-side SLO series must be present after the burst.
curl -fsS -o "$WORK/metrics.txt" "$SERVER/metrics"
grep -q "lzwtc_jobs_duration_seconds" "$WORK/metrics.txt" || {
    echo "metrics missing job duration histogram"; exit 1; }

kill -TERM "$SERVER_PID"
WAIT_STATUS=0
wait "$SERVER_PID" || WAIT_STATUS=$?
if [ "$WAIT_STATUS" -ne 0 ]; then
    echo "lzwtcd did not drain cleanly (exit $WAIT_STATUS)"
    cat "$WORK/lzwtcd.log"
    exit 1
fi
echo "loadgen smoke: $CLIENTS ops clean, $THROTTLED throttled, clean drain"
