#!/bin/sh
# Baseline gate for the repo's static-analysis suite: lzwtcvet findings
# are compared against the committed ledger and only NEW findings fail
# the run. Stale ledger entries (fixed findings that nobody removed) are
# reported on stderr without failing, so the baseline shrinks instead of
# rotting.
#
# The committed baseline is intentionally empty: every historical
# finding was fixed at the source. Keep it that way — regenerate with
#
#     go run ./cmd/lzwtcvet -json ./... > lzwtcvet_baseline.json
#
# only when a finding is consciously accepted, and record why in
# internal/analysis/README.md alongside the suppression ledger.
set -eu

BASELINE="${VET_BASELINE:-lzwtcvet_baseline.json}"

if [ ! -f "$BASELINE" ]; then
    echo "check_vet_baseline: missing baseline file $BASELINE" >&2
    exit 2
fi

go run ./cmd/lzwtcvet -baseline "$BASELINE" ./...
echo "lzwtcvet baseline: clean (no findings beyond $BASELINE)"
