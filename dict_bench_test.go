package lzwtc

import (
	"context"
	"testing"

	"lzwtc/internal/dictstore"
)

// Cold-vs-warm dictionary benchmarks: the repeated-corpus workload the
// store exists for. Cold pays Train on every request; warm resolves
// the same dictionary through the store's memory LRU. The measured
// table lives in EXPERIMENTS.md ("Shared-dictionary store").

func dictBenchWorkload() (*TestSet, Config) {
	return conformanceSet(900, 200, 64, 0.5),
		Config{CharBits: 8, DictSize: 1024, EntryBits: 64}
}

func dictBenchChars(b *testing.B, ts *TestSet, cfg Config) int {
	b.Helper()
	pre, err := Train(ts, cfg, 0)
	if err != nil {
		b.Fatal(err)
	}
	res, err := CompressPreloaded(ts, cfg, pre)
	if err != nil {
		b.Fatal(err)
	}
	return res.Stream.InputBits / cfg.CharBits
}

// BenchmarkDictColdTrain is the no-store baseline: every request
// trains from scratch before compressing.
func BenchmarkDictColdTrain(b *testing.B) {
	ts, cfg := dictBenchWorkload()
	chars := dictBenchChars(b, ts, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pre, err := Train(ts, cfg, 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := CompressPreloaded(ts, cfg, pre); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*chars), "ns/char")
}

// BenchmarkDictWarmStore is the repeat-traffic path: the dictionary
// resolves out of the store's memory LRU (allocation-free hit) and
// only compression remains.
func BenchmarkDictWarmStore(b *testing.B) {
	ts, cfg := dictBenchWorkload()
	chars := dictBenchChars(b, ts, cfg)
	store, err := OpenDictStore(DictStoreConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	ctx := context.Background()
	key := DictKeyFor(ts, cfg)
	if _, _, err := store.GetOrTrain(ctx, key, cfg, func(context.Context) (*Preload, error) {
		return Train(ts, cfg, 0)
	}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ent, src, err := store.GetOrTrain(ctx, key, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if src != dictstore.SourceMem {
			b.Fatalf("resolved from %v mid-benchmark", src)
		}
		if _, err := CompressPreloaded(ts, cfg, ent.Pre); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*chars), "ns/char")
}

// BenchmarkDictWarmResolve isolates the store's own hot path: one warm
// memory-LRU resolution, no compression.
func BenchmarkDictWarmResolve(b *testing.B) {
	ts, cfg := dictBenchWorkload()
	store, err := OpenDictStore(DictStoreConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	ctx := context.Background()
	key := DictKeyFor(ts, cfg)
	if _, _, err := store.GetOrTrain(ctx, key, cfg, func(context.Context) (*Preload, error) {
		return Train(ts, cfg, 0)
	}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := store.GetOrTrain(ctx, key, cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}
