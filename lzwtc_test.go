package lzwtc

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"lzwtc/internal/atpg"
	"lzwtc/internal/circuit"
	"lzwtc/internal/decomp"
	"lzwtc/internal/mem"
	"lzwtc/internal/scan"
)

func sampleSet(t *testing.T) *TestSet {
	t.Helper()
	ts, err := ReadTestSet(strings.NewReader(`# sample
01XX10XX
X1XX10X0
0XXX1XXX
01XX10XX
`))
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestCompressDecompressVerify(t *testing.T) {
	ts := sampleSet(t)
	cfg := Config{CharBits: 2, DictSize: 16, EntryBits: 8}
	res, err := Compress(ts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decompress(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Cubes) != 4 || back.Width != 8 {
		t.Fatalf("shape %dx%d", len(back.Cubes), back.Width)
	}
	for _, c := range back.Cubes {
		if c.XCount() != 0 {
			t.Fatal("decompressed pattern not fully specified")
		}
	}
	if err := Verify(ts, back); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	ts := sampleSet(t)
	res, err := Compress(ts, Config{CharBits: 2, DictSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decompress(res)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a specified bit.
	back.Cubes[0].Set(0, One) // original bit 0 of pattern 0 is '0'
	if err := Verify(ts, back); err == nil {
		t.Fatal("corruption not detected")
	}
	if err := Verify(ts, NewTestSet(8)); err == nil {
		t.Fatal("shape mismatch not detected")
	}
}

func TestCompressErrors(t *testing.T) {
	if _, err := Compress(NewTestSet(4), DefaultConfig()); err == nil {
		t.Fatal("empty set accepted")
	}
	ts := sampleSet(t)
	if _, err := Compress(ts, Config{CharBits: 0, DictSize: 4}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestContainerRoundTrip(t *testing.T) {
	ts := sampleSet(t)
	cfg := Config{CharBits: 3, DictSize: 32, EntryBits: 9}
	res, err := Compress(ts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	enc := res.Encode()
	dec, err := DecodeResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Width != res.Width || dec.Patterns != res.Patterns || dec.OriginalBits != res.OriginalBits {
		t.Fatalf("geometry changed: %+v vs %+v", dec, res)
	}
	back, err := Decompress(dec)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(ts, back); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeResult(enc[:4]); err == nil {
		t.Fatal("truncated container accepted")
	}
	if _, err := DecodeResult([]byte("xxxxxxxxxxxx")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestRatioAccounting(t *testing.T) {
	ts := sampleSet(t)
	cfg := Config{CharBits: 2, DictSize: 16}
	res, err := Compress(ts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OriginalBits != 32 {
		t.Fatalf("OriginalBits = %d", res.OriginalBits)
	}
	want := 1 - float64(res.CompressedBits())/32
	if got := res.Ratio(); got != want {
		t.Fatalf("Ratio = %v, want %v", got, want)
	}
}

// Property: arbitrary random test sets round-trip with care bits
// preserved under the default configuration.
func TestQuickFacadeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		width := rng.Intn(60) + 1
		ts := NewTestSet(width)
		for p := 0; p < rng.Intn(20)+1; p++ {
			pat := MustPattern(strings.Repeat("X", width))
			for b := 0; b < width; b++ {
				if rng.Float64() < 0.4 {
					pat.Set(b, Bit(rng.Intn(2)))
				}
			}
			if err := ts.Add(pat); err != nil {
				return false
			}
		}
		cfg := Config{CharBits: 4, DictSize: 64, EntryBits: 16}
		res, err := Compress(ts, cfg)
		if err != nil {
			return false
		}
		back, err := Decompress(res)
		if err != nil {
			return false
		}
		return Verify(ts, back) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestEndToEndSoCFlow runs the Figures 1+2 pipeline on a synthetic core:
// netlist -> scan insertion -> PODEM cubes -> LZW compression -> cycle-
// accurate hardware decompression on shared embedded memory -> scan
// application -> response check against the cube-level good machine.
func TestEndToEndSoCFlow(t *testing.T) {
	gen, err := circuit.Generate(circuit.GenConfig{Name: "core0", Inputs: 16, Outputs: 8, DFFs: 48, Comb: 350, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	design, err := scan.Insert(gen, 1)
	if err != nil {
		t.Fatal(err)
	}
	ares, err := atpg.Run(design.Comb, atpg.Options{Collapse: true, Seed: 42, RandomPatterns: 16})
	if err != nil {
		t.Fatal(err)
	}
	cubes := ares.Cubes
	if len(cubes.Cubes) == 0 || cubes.XDensity() < 0.1 {
		t.Fatalf("implausible cube set: %d patterns, X %.3f", len(cubes.Cubes), cubes.XDensity())
	}

	cfg := Config{CharBits: 7, DictSize: 512, EntryBits: 63}
	res, err := Compress(cubes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio() <= 0 {
		t.Fatalf("no compression on ATPG cubes: %.4f", res.Ratio())
	}

	// Hardware decompression into the scan stream.
	words, width := decomp.MemoryGeometry(cfg)
	sh := mem.NewShared(mem.New(words, width))
	sh.Select(mem.SrcLZW)
	hw, err := decomp.New(cfg, 8, sh)
	if err != nil {
		t.Fatal(err)
	}
	stream, _, err := hw.Run(res.Stream.Pack(), len(res.Stream.Codes), res.Stream.InputBits)
	if err != nil {
		t.Fatal(err)
	}
	filled, err := DecompressedSetFromStream(stream, res)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(cubes, filled); err != nil {
		t.Fatal(err)
	}

	// Scan application: filled responses must agree with every specified
	// cube response.
	cubeResp, err := design.ApplySet(cubes)
	if err != nil {
		t.Fatal(err)
	}
	filledResp, err := design.ApplySet(filled)
	if err != nil {
		t.Fatal(err)
	}
	if err := scan.ResponsesCompatible(cubeResp, filledResp); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateDownload(t *testing.T) {
	ts := sampleSet(t)
	cfg := Config{CharBits: 2, DictSize: 16, EntryBits: 8}
	res, err := Compress(ts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	filled, stats, imp, err := SimulateDownload(res, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(ts, filled); err != nil {
		t.Fatal(err)
	}
	if stats.CodesDecoded != len(res.Stream.Codes) {
		t.Fatalf("decoded %d codes", stats.CodesDecoded)
	}
	if imp <= -1 || imp >= 1 {
		t.Fatalf("improvement = %v", imp)
	}
	// Closed-form prediction matches the simulation.
	tc, err := PredictDownloadCycles(res, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tc != stats.TesterCycles {
		t.Fatalf("predicted %d cycles, simulated %d", tc, stats.TesterCycles)
	}
	// Unbounded configurations have no hardware realization.
	res2, err := Compress(ts, Config{CharBits: 2, DictSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := SimulateDownload(res2, 8); err == nil {
		t.Fatal("unbounded config accepted")
	}
}
