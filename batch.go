package lzwtc

import (
	"context"

	"lzwtc/internal/parallel"
)

// BatchOptions configures a concurrent batch run (the same in-module
// aliasing as Recorder): a worker bound, an error policy and an
// optional telemetry recorder.
type BatchOptions = parallel.Options

// ErrorPolicy selects how a batch reacts to a failing job.
type ErrorPolicy = parallel.ErrorPolicy

// Batch error policies.
const (
	// FailFast cancels the remaining queue on the first job error.
	FailFast = parallel.FailFast
	// CollectAll runs every job and reports per-job errors.
	CollectAll = parallel.CollectAll
)

// ErrSkipped marks a job that never ran because an earlier failure
// canceled the batch under FailFast.
var ErrSkipped = parallel.ErrSkipped

// PanicError is a batch worker panic converted to that job's error,
// carrying the recovered value and stack.
type PanicError = parallel.PanicError

// BatchJob is one unit of a concurrent batch: a test set under a
// configuration. Jobs only read their sets, so one set may back many
// jobs (a parameter sweep).
type BatchJob struct {
	Name string
	Set  *TestSet
	Cfg  Config
}

// BatchResult is one finished batch job: the job, its Result (nil on
// failure) and its error.
type BatchResult struct {
	Job    BatchJob
	Result *Result
	Err    error
}

// CompressBatch compresses jobs across a bounded worker pool. Results
// land in job order and each is byte-identical to what Compress returns
// for the same (set, config) pair — the batch engine only supplies the
// outer loop. The context cancels the batch; the overall error is the
// context's error, or (under FailFast) the first job error.
func CompressBatch(ctx context.Context, jobs []BatchJob, opts BatchOptions) ([]BatchResult, error) {
	pjobs := make([]parallel.Job, len(jobs))
	for i, j := range jobs {
		pjobs[i] = parallel.Job{Name: j.Name, Set: j.Set, Cfg: j.Cfg}
	}
	results, err := parallel.CompressJobs(ctx, pjobs, opts)
	out := make([]BatchResult, len(jobs))
	for i, r := range results {
		out[i] = BatchResult{Job: jobs[i], Err: r.Err}
		if r.Err == nil {
			out[i].Result = &Result{
				Stream:       r.Res,
				Width:        jobs[i].Set.Width,
				OriginalBits: r.OriginalBits,
				Patterns:     len(jobs[i].Set.Cubes),
			}
		}
	}
	return out, err
}

// ShardedResult is one large test set compressed as independent
// pattern-group shards; see CompressSharded.
type ShardedResult = parallel.ShardedResult

// CompressSharded splits one test set into shards of at most
// patternsPerShard consecutive patterns and compresses them
// concurrently, each with a fresh dictionary. A shard boundary is
// semantically a FullReset — decompression is exact — at a measured
// ratio cost (each shard re-learns its dictionary). patternsPerShard
// <= 0 compresses the whole set as one shard.
func CompressSharded(ctx context.Context, ts *TestSet, cfg Config, patternsPerShard int, opts BatchOptions) (*ShardedResult, error) {
	return parallel.CompressSharded(ctx, ts, cfg, patternsPerShard, opts)
}

// DecompressSharded inverts CompressSharded: shards decompress
// concurrently and concatenate in order into the fully specified set.
func DecompressSharded(ctx context.Context, s *ShardedResult, opts BatchOptions) (*TestSet, error) {
	return parallel.DecompressSharded(ctx, s, opts)
}
