package lzwtc

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
)

// TestWireRoundTripConformance runs every conformance case through the
// wire format with no out-of-band Config: DecodeWireResult(EncodeWire(r))
// must reproduce the Result exactly — config, geometry and every code —
// and decompressing the decoded container must match decompressing the
// original.
func TestWireRoundTripConformance(t *testing.T) {
	for _, c := range conformanceCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			ts := c.build()
			res, err := Compress(ts, c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			data, err := res.EncodeWire()
			if err != nil {
				t.Fatal(err)
			}
			if !IsWireContainer(data) {
				t.Fatal("EncodeWire output not recognized as a wire container")
			}
			back, err := DecodeWireResult(data)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if back.Stream.Cfg != res.Stream.Cfg {
				t.Fatalf("config: got %+v, want %+v", back.Stream.Cfg, res.Stream.Cfg)
			}
			if back.Width != res.Width || back.Patterns != res.Patterns {
				t.Fatalf("geometry: got %dx%d, want %dx%d", back.Patterns, back.Width, res.Patterns, res.Width)
			}
			if back.Stream.InputBits != res.Stream.InputBits {
				t.Fatalf("input bits: got %d, want %d", back.Stream.InputBits, res.Stream.InputBits)
			}
			if len(back.Stream.Codes) != len(res.Stream.Codes) {
				t.Fatalf("codes: got %d, want %d", len(back.Stream.Codes), len(res.Stream.Codes))
			}
			for i := range back.Stream.Codes {
				if back.Stream.Codes[i] != res.Stream.Codes[i] {
					t.Fatalf("code %d: got %d, want %d", i, back.Stream.Codes[i], res.Stream.Codes[i])
				}
			}

			wantSet, err := Decompress(res)
			if err != nil {
				t.Fatal(err)
			}
			gotSet, err := DecompressWire(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("streaming decompress: %v", err)
			}
			assertSetsEqual(t, wantSet, gotSet)

			gotSet2, err := Decompress(back)
			if err != nil {
				t.Fatalf("decoded-result decompress: %v", err)
			}
			assertSetsEqual(t, wantSet, gotSet2)
			if err := Verify(ts, gotSet); err != nil {
				t.Fatalf("care bits: %v", err)
			}
		})
	}
}

// TestWireShardedRoundTrip streams a sharded compression into one
// container and decompresses it frame by frame, matching the parallel
// engine's DecompressSharded output exactly.
func TestWireShardedRoundTrip(t *testing.T) {
	for _, c := range conformanceCases()[:6] {
		c := c
		t.Run(c.name, func(t *testing.T) {
			ts := c.build()
			sr, err := CompressSharded(context.Background(), ts, c.cfg, 5, BatchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := WriteWireSharded(&buf, sr); err != nil {
				t.Fatal(err)
			}
			want, err := DecompressSharded(context.Background(), sr, BatchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecompressWire(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			assertSetsEqual(t, want, got)

			// A multi-frame container is not one Result.
			if _, err := ReadWireResult(bytes.NewReader(buf.Bytes())); err == nil {
				t.Fatal("multi-frame container decoded as a single Result")
			}
		})
	}
}

// TestWireTypedErrorsAtRoot pins the re-exported error identities.
func TestWireTypedErrorsAtRoot(t *testing.T) {
	ts := conformanceSet(42, 6, 12, 0.5)
	res, err := Compress(ts, Config{CharBits: 4, DictSize: 32, EntryBits: 16})
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.EncodeWire()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := DecodeWireResult([]byte("XXXX")); !errors.Is(err, ErrWireBadMagic) {
		t.Fatalf("magic: %v", err)
	}
	ver := bytes.Clone(data)
	ver[4] = 0x7f
	if _, err := DecodeWireResult(ver); !errors.Is(err, ErrWireVersion) {
		t.Fatalf("version: %v", err)
	}
	if _, err := DecodeWireResult(data[:len(data)-1]); !errors.Is(err, ErrWireTruncated) {
		t.Fatalf("truncated: %v", err)
	}
	flip := bytes.Clone(data)
	flip[len(flip)-10] ^= 0x10
	if _, err := DecodeWireResult(flip); !errors.Is(err, ErrWireChecksum) && !errors.Is(err, ErrWireTruncated) {
		t.Fatalf("corrupt: %v", err)
	}
}

func assertSetsEqual(t *testing.T, want, got *TestSet) {
	t.Helper()
	var wb, gb bytes.Buffer
	if err := want.WriteCubes(&wb); err != nil {
		t.Fatal(err)
	}
	if err := got.WriteCubes(&gb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wb.Bytes(), gb.Bytes()) {
		t.Fatal("test sets differ")
	}
}

// TestWireStreamingWriterReader drives the root streaming entry points
// over an io.Pipe: frames written on one side decompress on the other
// without the whole container ever being in memory.
func TestWireStreamingPipe(t *testing.T) {
	ts := conformanceSet(77, 9, 18, 0.7)
	cfg := Config{CharBits: 2, DictSize: 16, EntryBits: 8}
	res, err := Compress(ts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pr, pw := io.Pipe()
	go func() {
		pw.CloseWithError(res.WriteWire(pw))
	}()
	got, err := DecompressWire(pr)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Decompress(res)
	if err != nil {
		t.Fatal(err)
	}
	assertSetsEqual(t, want, got)
}
