// Package lzwtc is a test-data-compression library reproducing
// "A Technique for High Ratio LZW Compression" (Knieser, Wolff,
// Papachristou, Weyer, McIntyre — DATE 2003): LZW compression of scan
// test vectors with dynamic don't-care assignment, a cycle-accurate
// model of the paper's hardware decompressor on reused embedded memory,
// the LZ77 and run-length baselines it is compared against, and a
// complete test-generation substrate (netlists, scan insertion, PODEM
// ATPG, fault simulation) for producing realistic test cubes.
//
// # Quick start
//
//	ts := lzwtc.NewTestSet(8)
//	ts.Add(lzwtc.MustPattern("01XX10XX"))
//	ts.Add(lzwtc.MustPattern("X1XX10X0"))
//	res, err := lzwtc.Compress(ts, lzwtc.DefaultConfig())
//	// res.Ratio(), res.Encode(), ...
//	back, err := lzwtc.Decompress(res)
//	err = lzwtc.Verify(ts, back) // every specified bit preserved
//
// The don't-care bits (X) are assigned during compression so that the
// LZW dictionary walk keeps extending existing strings; the decompressed
// stream is fully specified and compatible with every care bit of the
// original cubes.
package lzwtc

import (
	"fmt"
	"io"

	"lzwtc/internal/bitvec"
	"lzwtc/internal/core"
)

// Bit is a three-valued test-data bit: Zero, One or X (don't-care).
type Bit = bitvec.Bit

// Three-valued bit constants.
const (
	Zero = bitvec.Zero
	One  = bitvec.One
	X    = bitvec.X
)

// Pattern is one scan test pattern: a fixed-width three-valued vector.
type Pattern = bitvec.Vector

// ParsePattern builds a pattern from a '0'/'1'/'X' string.
func ParsePattern(s string) (*Pattern, error) { return bitvec.Parse(s) }

// MustPattern is ParsePattern that panics on error.
func MustPattern(s string) *Pattern { return bitvec.MustParse(s) }

// TestSet is an ordered set of equal-width test patterns (the test data
// for one core).
type TestSet = bitvec.CubeSet

// NewTestSet returns an empty test set of the given pattern width.
func NewTestSet(width int) *TestSet { return bitvec.NewCubeSet(width) }

// ReadTestSet parses a text test set: one pattern of '0'/'1'/'X' per
// line, '#' comments and blank lines ignored.
func ReadTestSet(r io.Reader) (*TestSet, error) { return bitvec.ReadCubes(r) }

// Config carries the LZW configurator parameters, named as in the
// paper: CharBits is C_C, DictSize is N, EntryBits is C_MDATA.
type Config = core.Config

// Policy re-exports.
const (
	FillZero   = core.FillZero
	FillOne    = core.FillOne
	FillRepeat = core.FillRepeat

	TieOldest = core.TieOldest
	TieNewest = core.TieNewest
	TieWidest = core.TieWidest

	FullFreeze = core.FullFreeze
	FullReset  = core.FullReset
)

// DefaultConfig returns the paper's headline configuration: 7-bit
// characters, a 1024-code dictionary and 64-bit dictionary entries.
func DefaultConfig() Config { return core.DefaultConfig() }

// Stats summarizes a compression run.
type Stats = core.Stats

// Code is one compressed LZW code.
type Code = core.Code

// Result is a compressed test set.
type Result struct {
	// Stream is the underlying compressed bit-stream result.
	Stream *core.Result
	// Width is the pattern width of the original set.
	Width int
	// OriginalBits is the unpadded test-set volume; compression ratios
	// are computed against it.
	OriginalBits int
	// Patterns is the original pattern count.
	Patterns int
}

// Ratio returns the compression ratio against the original volume.
func (r *Result) Ratio() float64 {
	if r.OriginalBits == 0 {
		return 0
	}
	return 1 - float64(r.Stream.Stats.CompressedBits)/float64(r.OriginalBits)
}

// CompressedBits returns the compressed volume in bits.
func (r *Result) CompressedBits() int { return r.Stream.Stats.CompressedBits }

// Stats returns the detailed compression statistics.
func (r *Result) Stats() Stats { return r.Stream.Stats }

// Compress compresses a test set under the given configuration.
//
// Patterns are serialized in order with each pattern padded (with X
// bits) to the next character boundary — the hardware decompressor
// flushes its output shifter at the capture cycle between patterns —
// and the stream is compressed with dynamic don't-care assignment.
func Compress(ts *TestSet, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(ts.Cubes) == 0 {
		return nil, fmt.Errorf("lzwtc: empty test set")
	}
	stream := ts.SerializeAligned(cfg.CharBits)
	res, err := core.Compress(stream, cfg)
	if err != nil {
		return nil, err
	}
	return &Result{Stream: res, Width: ts.Width, OriginalBits: ts.TotalBits(), Patterns: len(ts.Cubes)}, nil
}

// Decompress reconstructs the fully specified test set a decompressor
// would deliver to the scan chain: every original care bit preserved,
// every don't-care concretized.
func Decompress(r *Result) (*TestSet, error) {
	stream, err := core.Decompress(r.Stream.Codes, r.Stream.Cfg, r.Stream.InputBits)
	if err != nil {
		return nil, err
	}
	return bitvec.DeserializeAligned(stream, r.Width, r.Stream.Cfg.CharBits)
}

// DecompressedSetFromStream splits a concrete scan stream — e.g. the
// output of the cycle-accurate hardware decompressor model — back into
// the test set's patterns, dropping per-pattern alignment padding.
func DecompressedSetFromStream(stream *Pattern, r *Result) (*TestSet, error) {
	return bitvec.DeserializeAligned(stream, r.Width, r.Stream.Cfg.CharBits)
}

// Verify checks that a decompressed (fully specified) test set preserves
// every specified bit of the original cubes.
func Verify(orig, filled *TestSet) error {
	if orig.Width != filled.Width || len(orig.Cubes) != len(filled.Cubes) {
		return fmt.Errorf("lzwtc: test-set shapes differ: %dx%d vs %dx%d",
			len(orig.Cubes), orig.Width, len(filled.Cubes), filled.Width)
	}
	for i := range orig.Cubes {
		if !orig.Cubes[i].CompatibleWith(filled.Cubes[i]) {
			return fmt.Errorf("lzwtc: pattern %d violates its care bits", i)
		}
	}
	return nil
}

// Encode serializes a Result into a self-describing byte container
// (configuration + original geometry + packed code stream).
func (r *Result) Encode() []byte {
	var hdr [8]byte
	hdr[0] = 'T'
	hdr[1] = 'S'
	putUint24(hdr[2:5], uint32(r.Width))
	putUint24(hdr[5:8], uint32(r.Patterns))
	return append(hdr[:], r.Stream.Encode()...)
}

// DecodeResult parses a container produced by Encode.
func DecodeResult(data []byte) (*Result, error) {
	if len(data) < 8 || data[0] != 'T' || data[1] != 'S' {
		return nil, fmt.Errorf("lzwtc: not a test-set container")
	}
	width := int(getUint24(data[2:5]))
	patterns := int(getUint24(data[5:8]))
	stream, err := core.Decode(data[8:])
	if err != nil {
		return nil, err
	}
	if width <= 0 || patterns <= 0 {
		return nil, fmt.Errorf("lzwtc: corrupt geometry %dx%d", patterns, width)
	}
	return &Result{Stream: stream, Width: width, OriginalBits: width * patterns, Patterns: patterns}, nil
}

func putUint24(b []byte, v uint32) {
	b[0] = byte(v >> 16)
	b[1] = byte(v >> 8)
	b[2] = byte(v)
}

func getUint24(b []byte) uint32 {
	return uint32(b[0])<<16 | uint32(b[1])<<8 | uint32(b[2])
}
