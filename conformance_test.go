package lzwtc

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"lzwtc/internal/bench"
	"lzwtc/internal/bitvec"
)

var updateConformance = flag.Bool("update", false, "regenerate the conformance corpus under testdata/conformance")

// conformanceCase is one golden corpus entry: a deterministic test-set
// builder and the configuration it is compressed under. Three files are
// committed per case: <name>.cubes (the input cubes), <name>.lzw (the
// encoded container — pins the compressor's exact output) and
// <name>.expected (the fully specified decompressed set).
type conformanceCase struct {
	name  string
	cfg   Config
	build func() *TestSet
}

// conformanceSet builds a deterministic cube set with the given
// don't-care density; independent of the bench generators so corpus
// inputs do not move when workload calibration does.
func conformanceSet(seed int64, patterns, width int, xDensity float64) *TestSet {
	rng := rand.New(rand.NewSource(seed))
	cs := bitvec.NewCubeSet(width)
	for p := 0; p < patterns; p++ {
		v := bitvec.New(width)
		for i := 0; i < width; i++ {
			if rng.Float64() >= xDensity {
				v.Set(i, bitvec.Bit(rng.Intn(2)))
			}
		}
		if err := cs.Add(v); err != nil {
			panic(err)
		}
	}
	return cs
}

// conformanceCases spans the configuration corners the decompressor
// hardware and the PR-1 fuzz findings care about: C_C in {2, 4, 8},
// dictionary sizes including the all-literal DictSize == 2^CharBits
// edge, both dictionary-full policies, every fill/tie policy, all-X and
// fully-specified sets, a width that does not divide the character
// size, and a paper-workload slice.
func conformanceCases() []conformanceCase {
	return []conformanceCase{
		{"cc2-minimal-dict", Config{CharBits: 2, DictSize: 4, EntryBits: 8, Full: FullReset},
			func() *TestSet { return conformanceSet(101, 12, 10, 0.6) }},
		{"cc2-reset", Config{CharBits: 2, DictSize: 32, EntryBits: 8, Full: FullReset},
			func() *TestSet { return conformanceSet(102, 20, 16, 0.7) }},
		{"cc2-freeze", Config{CharBits: 2, DictSize: 32, EntryBits: 8},
			func() *TestSet { return conformanceSet(103, 20, 16, 0.7) }},
		{"cc4-freeze", Config{CharBits: 4, DictSize: 128, EntryBits: 16},
			func() *TestSet { return conformanceSet(104, 24, 32, 0.8) }},
		{"cc4-reset", Config{CharBits: 4, DictSize: 128, EntryBits: 16, Full: FullReset},
			func() *TestSet { return conformanceSet(105, 24, 32, 0.8) }},
		{"cc4-edge-dict", Config{CharBits: 4, DictSize: 16, EntryBits: 16},
			func() *TestSet { return conformanceSet(106, 16, 20, 0.5) }},
		{"cc8-default", Config{CharBits: 8, DictSize: 1024, EntryBits: 64},
			func() *TestSet { return conformanceSet(107, 30, 64, 0.85) }},
		{"cc8-edge-dict", Config{CharBits: 8, DictSize: 256, EntryBits: 64, Full: FullReset},
			func() *TestSet { return conformanceSet(108, 16, 40, 0.6) }},
		{"all-x", Config{CharBits: 4, DictSize: 64, EntryBits: 16},
			func() *TestSet { return conformanceSet(109, 10, 24, 1.0) }},
		{"no-x", Config{CharBits: 4, DictSize: 64, EntryBits: 16},
			func() *TestSet { return conformanceSet(110, 10, 24, 0.0) }},
		{"fill-one-tie-newest", Config{CharBits: 4, DictSize: 64, EntryBits: 16, Fill: FillOne, Tie: TieNewest},
			func() *TestSet { return conformanceSet(111, 18, 28, 0.75) }},
		{"fill-repeat-tie-widest", Config{CharBits: 4, DictSize: 64, EntryBits: 16, Fill: FillRepeat, Tie: TieWidest},
			func() *TestSet { return conformanceSet(112, 18, 28, 0.75) }},
		{"unaligned-width", Config{CharBits: 8, DictSize: 512, EntryBits: 32},
			func() *TestSet { return conformanceSet(113, 14, 27, 0.7) }},
		{"paper-slice", Config{CharBits: 7, DictSize: 1024, EntryBits: 63},
			func() *TestSet {
				p, err := bench.ByName("s5378")
				if err != nil {
					panic(err)
				}
				full := p.Generate()
				return &bitvec.CubeSet{Width: full.Width, Cubes: full.Cubes[:20]}
			}},
	}
}

func conformancePath(name, ext string) string {
	return filepath.Join("testdata", "conformance", name+ext)
}

// TestConformance round-trips every committed corpus entry and pins the
// compressor's exact bit stream: the builder must reproduce the
// committed cubes, compressing them must reproduce the committed
// container byte for byte, and decoding + decompressing the container
// must reproduce the committed fully specified set while preserving
// every care bit. Run `go test -run TestConformance -update` after an
// intentional compressor change to regenerate the corpus.
func TestConformance(t *testing.T) {
	if *updateConformance {
		if err := regenerateConformance(); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range conformanceCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			ts := c.build()
			var cubesBuf bytes.Buffer
			if err := ts.WriteCubes(&cubesBuf); err != nil {
				t.Fatal(err)
			}
			wantCubes := readConformance(t, c.name, ".cubes")
			if !bytes.Equal(cubesBuf.Bytes(), wantCubes) {
				t.Fatalf("builder output differs from %s — the deterministic generator moved.\n%s", conformancePath(c.name, ".cubes"), regenHint)
			}

			res, err := Compress(ts, c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			wantLzw := readConformance(t, c.name, ".lzw")
			if !bytes.Equal(res.Encode(), wantLzw) {
				t.Fatalf("compressed container differs from %s — the compressor's output changed.\n%s", conformancePath(c.name, ".lzw"), regenHint)
			}

			decoded, err := DecodeResult(wantLzw)
			if err != nil {
				t.Fatalf("decoding committed container: %v", err)
			}
			filled, err := Decompress(decoded)
			if err != nil {
				t.Fatalf("decompressing committed container: %v", err)
			}
			var filledBuf bytes.Buffer
			if err := filled.WriteCubes(&filledBuf); err != nil {
				t.Fatal(err)
			}
			wantFilled := readConformance(t, c.name, ".expected")
			if !bytes.Equal(filledBuf.Bytes(), wantFilled) {
				t.Fatalf("decompressed set differs from %s — the decompressor's output changed.\n%s", conformancePath(c.name, ".expected"), regenHint)
			}
			if err := Verify(ts, filled); err != nil {
				t.Fatalf("care bits not preserved: %v", err)
			}
		})
	}
}

const regenHint = "if the change is intentional, regenerate with: go test -run TestConformance -update"

func readConformance(t *testing.T, name, ext string) []byte {
	t.Helper()
	data, err := os.ReadFile(conformancePath(name, ext))
	if err != nil {
		t.Fatalf("%v\n%s", err, regenHint)
	}
	return data
}

// regenerateConformance rewrites the whole corpus from the case table.
func regenerateConformance() error {
	if err := os.MkdirAll(filepath.Join("testdata", "conformance"), 0o755); err != nil {
		return err
	}
	for _, c := range conformanceCases() {
		ts := c.build()
		var cubesBuf bytes.Buffer
		if err := ts.WriteCubes(&cubesBuf); err != nil {
			return err
		}
		if err := os.WriteFile(conformancePath(c.name, ".cubes"), cubesBuf.Bytes(), 0o644); err != nil {
			return err
		}
		res, err := Compress(ts, c.cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		if err := os.WriteFile(conformancePath(c.name, ".lzw"), res.Encode(), 0o644); err != nil {
			return err
		}
		filled, err := Decompress(res)
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		var filledBuf bytes.Buffer
		if err := filled.WriteCubes(&filledBuf); err != nil {
			return err
		}
		if err := os.WriteFile(conformancePath(c.name, ".expected"), filledBuf.Bytes(), 0o644); err != nil {
			return err
		}
	}
	return nil
}
