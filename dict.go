package lzwtc

import (
	"bytes"
	"context"
	"fmt"
	"io"

	"lzwtc/internal/bitvec"
	"lzwtc/internal/core"
	"lzwtc/internal/dictstore"
	"lzwtc/internal/parallel"
	"lzwtc/internal/telemetry"
	"lzwtc/internal/wire"
)

// Preload is a warm-start dictionary: strings installed before
// compression begins, so repeat traffic skips the cold-start ramp the
// paper's ratio curves pay on every session.
type Preload = core.Preload

// DictStore is the shared-dictionary cache tier: a content-addressed
// store of trained dictionaries (memory LRU + optional disk index).
type DictStore = dictstore.Store

// DictStoreConfig configures OpenDictStore.
type DictStoreConfig = dictstore.Config

// DictKey is a content address in the dictionary store: SHA-256 of the
// canonicalized training input and configuration.
type DictKey = dictstore.Key

// DictRef names a stored dictionary inside a wire container: the store
// key plus the canonical blob digest that proves the resolved
// dictionary is the one the compressor used.
type DictRef = wire.DictRef

// ParseDictKey parses the 64-char hex form of a store key (the form
// the CLI and the HTTP API speak).
func ParseDictKey(s string) (DictKey, error) { return dictstore.ParseKey(s) }

// Dictionary-store typed errors, re-exported for callers that never
// import internal packages. Test with errors.Is.
var (
	ErrDictNotFound       = dictstore.ErrNotFound
	ErrDictChecksum       = dictstore.ErrDictChecksum
	ErrDictTruncated      = dictstore.ErrDictTruncated
	ErrDictDigestMismatch = dictstore.ErrDigestMismatch
	ErrWireDictFrame      = wire.ErrDictFrame
)

// OpenDictStore opens a dictionary store. The zero config is a
// memory-only store with default budgets; set Dir for persistence.
func OpenDictStore(cfg DictStoreConfig) (*DictStore, error) { return dictstore.Open(cfg) }

// Train builds a preload dictionary from a training test set: the set
// is compressed once and the dictionary state it built becomes the
// preload. maxEntries <= 0 keeps every entry the run created.
func Train(ts *TestSet, cfg Config, maxEntries int) (*Preload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(ts.Cubes) == 0 {
		return nil, fmt.Errorf("lzwtc: empty training set")
	}
	return core.Train(ts.SerializeAligned(cfg.CharBits), cfg, maxEntries)
}

// DictKeyFor derives the content address a training set compresses
// under: SHA-256 over the canonical text form of the patterns (width
// plus one '0'/'1'/'X' line per pattern) and the configuration. The
// same patterns under the same config always map to the same key, no
// matter how they were parsed or transported.
func DictKeyFor(ts *TestSet, cfg Config) DictKey {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%d\n", ts.Width)
	for _, c := range ts.Cubes {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return dictstore.KeyFor(b.Bytes(), cfg)
}

// EncodeDictBlob renders a trained dictionary as a portable LZWD blob
// (the form `lzwtc dict push` uploads and /v1/dict serves).
func EncodeDictBlob(cfg Config, pre *Preload) ([]byte, error) {
	return dictstore.EncodeBlob(cfg, pre)
}

// DecodeDictBlob parses and fully validates an LZWD blob.
func DecodeDictBlob(data []byte) (Config, *Preload, error) {
	return dictstore.DecodeBlob(data)
}

// CompressPreloaded is Compress starting from a warm dictionary. The
// decompressor must resolve the same preload — pair it with
// WriteWireDict / DecompressWireDict so the container itself names the
// dictionary.
func CompressPreloaded(ts *TestSet, cfg Config, pre *Preload) (*Result, error) {
	return CompressPreloadedObservedCtx(context.Background(), ts, cfg, pre, nil)
}

// CompressPreloadedObservedCtx is CompressPreloaded instrumented for
// request tracing, mirroring the service compression path.
func CompressPreloadedObservedCtx(ctx context.Context, ts *TestSet, cfg Config, pre *Preload, rec *Recorder) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(ts.Cubes) == 0 {
		return nil, fmt.Errorf("lzwtc: empty test set")
	}
	stream := ts.SerializeAligned(cfg.CharBits)
	res, err := core.CompressWithPreloadObservedCtx(ctx, stream, cfg, pre, rec)
	if err != nil {
		return nil, err
	}
	return &Result{Stream: res, Width: ts.Width, OriginalBits: ts.TotalBits(), Patterns: len(ts.Cubes)}, nil
}

// DecompressPreloaded inverts CompressPreloaded given the same preload.
func DecompressPreloaded(r *Result, pre *Preload) (*TestSet, error) {
	stream, err := core.DecompressWithPreload(r.Stream.Codes, r.Stream.Cfg, pre, r.Stream.InputBits)
	if err != nil {
		return nil, err
	}
	return bitvec.DeserializeAligned(stream, r.Width, r.Stream.Cfg.CharBits)
}

// CompressShardedPreloaded is CompressSharded with every shard starting
// from the same warm dictionary — the multi-frame form of a 'D'-frame
// container (each frame reinstalls the preload).
func CompressShardedPreloaded(ctx context.Context, ts *TestSet, cfg Config, pre *Preload, patternsPerShard int, opts BatchOptions) (*ShardedResult, error) {
	return parallel.CompressShardedPreloaded(ctx, ts, cfg, pre, patternsPerShard, opts)
}

// DecompressShardedPreloaded inverts CompressShardedPreloaded.
func DecompressShardedPreloaded(ctx context.Context, s *ShardedResult, pre *Preload, opts BatchOptions) (*TestSet, error) {
	return parallel.DecompressShardedPreloaded(ctx, s, pre, opts)
}

// WriteWireDict streams a preloaded compression as a wire container
// whose 'D' frame names the dictionary: header, dictionary reference,
// one frame per shard, EOS. The receiver resolves ref through its own
// store and verifies the digest before decompressing.
func WriteWireDict(w io.Writer, s *ShardedResult, ref DictRef) error {
	ww, err := wire.NewWriter(w, wire.Header{Cfg: s.Cfg, Width: s.Width})
	if err != nil {
		return err
	}
	if err := ww.WriteDictRef(ref); err != nil {
		return err
	}
	for i, sh := range s.Shards {
		if err := ww.WriteResult(sh, s.ShardPatterns[i]); err != nil {
			return err
		}
	}
	return ww.Close()
}

// WriteWireDictResult is WriteWireDict for a single-frame Result.
func (r *Result) WriteWireDictResult(w io.Writer, ref DictRef) error {
	ww, err := wire.NewWriter(w, wire.Header{Cfg: r.Stream.Cfg, Width: r.Width})
	if err != nil {
		return err
	}
	if err := ww.WriteDictRef(ref); err != nil {
		return err
	}
	if err := ww.WriteResult(r.Stream, r.Patterns); err != nil {
		return err
	}
	return ww.Close()
}

// DictEntryRef derives the container reference for a store entry.
func DictEntryRef(ent *dictstore.Entry) DictRef {
	return DictRef{Key: ent.Key, Digest: ent.Digest}
}

// DictResolver resolves a container's dictionary reference into the
// preload it names. *DictStore implements it; a test double or a
// remote-fetching resolver fits the same seam.
type DictResolver interface {
	ResolveDict(ctx context.Context, ref DictRef) (*Preload, error)
}

// DecompressWireDict is DecompressWire for containers that may carry a
// dictionary reference: when a 'D' frame is present the resolver is
// asked for the preload (nil resolver → ErrDictNotFound) and every
// frame decompresses with it installed; plain containers fall through
// to the cold path unchanged.
func DecompressWireDict(r io.Reader, res DictResolver) (*TestSet, error) {
	return DecompressWireDictObserved(context.Background(), r, res, nil)
}

// DecompressWireDictObserved is DecompressWireDict under a
// SpanWireDecode trace span (the store's own dict.resolve span nests
// inside it when the resolver is a *DictStore).
func DecompressWireDictObserved(ctx context.Context, r io.Reader, res DictResolver, rec *Recorder) (*TestSet, error) {
	wctx, sp := rec.StartSpan(ctx, SpanWireDecode)
	out, frames, err := decompressWireDict(wctx, r, res, rec)
	sp.End(telemetry.F("frames", frames), telemetry.F("ok", err == nil))
	return out, err
}

func decompressWireDict(ctx context.Context, r io.Reader, res DictResolver, rec *Recorder) (*TestSet, int, error) {
	wr, err := wire.NewReader(r)
	if err != nil {
		return nil, 0, err
	}
	hdr := wr.Header()
	out := NewTestSet(hdr.Width)
	var pre *Preload
	for {
		f, err := wr.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, wr.Frames(), err
		}
		// The 'D' frame precedes all data frames, so the reference is
		// final by the time the first data frame arrives.
		if ref, ok := wr.DictRef(); ok && pre == nil {
			if res == nil {
				return nil, wr.Frames(), fmt.Errorf("lzwtc: container references dictionary %x but no resolver given: %w",
					ref.Key, ErrDictNotFound)
			}
			if pre, err = res.ResolveDict(ctx, ref); err != nil {
				return nil, wr.Frames(), fmt.Errorf("lzwtc: resolving container dictionary: %w", err)
			}
		}
		var stream *Pattern
		if pre != nil {
			stream, err = core.DecompressWithPreloadObservedCtx(ctx, f.Codes, hdr.Cfg, pre, f.InputBits, rec)
		} else {
			stream, err = core.DecompressObservedCtx(ctx, f.Codes, hdr.Cfg, f.InputBits, rec)
		}
		if err != nil {
			return nil, wr.Frames(), fmt.Errorf("lzwtc: wire frame %d: %w", wr.Frames()-1, err)
		}
		group, err := bitvec.DeserializeAligned(stream, hdr.Width, hdr.Cfg.CharBits)
		if err != nil {
			return nil, wr.Frames(), fmt.Errorf("lzwtc: wire frame %d: %w", wr.Frames()-1, err)
		}
		if len(group.Cubes) != f.Patterns {
			return nil, wr.Frames(), fmt.Errorf("lzwtc: wire frame %d decompressed to %d patterns, want %d",
				wr.Frames()-1, len(group.Cubes), f.Patterns)
		}
		out.Cubes = append(out.Cubes, group.Cubes...)
	}
	return out, wr.Frames(), nil
}
