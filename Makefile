GO ?= go
FUZZTIME ?= 10s
BENCHTIME ?= 1x

.PHONY: build vet test race lzwtcvet fuzz telemetry-overhead batch-bench verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race path covers the library packages; cmd/ and examples/ are
# thin drivers over them.
race:
	$(GO) test -race ./internal/...

# Repo-specific static analysis (bitwidth / droppederror / panicpolicy /
# configbeforeuse). Non-zero exit on any finding.
lzwtcvet:
	$(GO) run ./cmd/lzwtcvet ./...

# Bounded fuzz smoke: each target gets FUZZTIME of coverage-guided
# input on top of its checked-in seed corpus.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzBitio -fuzztime=$(FUZZTIME) ./internal/bitio
	$(GO) test -run='^$$' -fuzz=FuzzRoundTrip -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzUnpackCodes -fuzztime=$(FUZZTIME) ./internal/core

# Overhead smoke: the disabled-telemetry and metrics-enabled compression
# benchmarks must run clean. Raise BENCHTIME (e.g. 5s) for real numbers
# when comparing against a baseline.
telemetry-overhead:
	$(GO) test -run='^$$' -bench='BenchmarkCompressTelemetry' -benchtime=$(BENCHTIME) ./internal/core

# Batch pool smoke: the parallel engine's throughput benchmarks must run
# clean at every worker count. Raise BENCHTIME for real scaling numbers
# on a multicore machine (patterns/s at 1, 4 and NumCPU workers).
batch-bench:
	$(GO) test -run='^$$' -bench='BenchmarkBatchCompress' -benchtime=$(BENCHTIME) ./internal/parallel

verify: build vet test race lzwtcvet fuzz telemetry-overhead batch-bench
