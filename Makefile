GO ?= go
FUZZTIME ?= 10s
BENCHTIME ?= 1x

.PHONY: build vet vet-concurrency test race lzwtcvet lzwtcvet-baseline dict-oracle fuzz telemetry-overhead trace-overhead batch-bench kernel-bench bench-json bench-gate cover lzwtcd-smoke loadgen-smoke verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race path covers the library packages; cmd/ and examples/ are
# thin drivers over them.
race:
	$(GO) test -race ./internal/...

# Repo-specific static analysis (bitwidth / droppederror / panicpolicy /
# configbeforeuse / allocbound / goctx / lockhygiene / metricname /
# staleignore). Non-zero exit on any finding.
lzwtcvet:
	$(GO) run ./cmd/lzwtcvet ./...

# Baseline gate: fail only on findings absent from the committed
# lzwtcvet_baseline.json ledger; stale ledger entries warn on stderr.
lzwtcvet-baseline:
	sh scripts/check_vet_baseline.sh

# Focused pass over the two stock analyzers the lzwtcvet concurrency
# checks complement: copylocks (mutexes passed by value anywhere, not
# just in LockPaths) and lostcancel (path-sensitive cancel-func leaks
# that goctx's any-mention heuristic deliberately leaves to vet).
vet-concurrency:
	$(GO) vet -copylocks -lostcancel ./...

# Differential dictionary oracle: under this build tag every dict keeps
# the historical map-based matcher as a shadow and cross-checks every
# findChild, so the whole core test suite doubles as an equivalence
# proof for the flat child index.
dict-oracle:
	$(GO) test -tags=lzwtc_dictoracle ./internal/core ./internal/parallel

# Bounded fuzz smoke: each target gets FUZZTIME of coverage-guided
# input on top of its checked-in seed corpus.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzBitio -fuzztime=$(FUZZTIME) ./internal/bitio
	$(GO) test -run='^$$' -fuzz=FuzzRoundTrip -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzUnpackCodes -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzFindChildEquivalence -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzWireDecode -fuzztime=$(FUZZTIME) ./internal/wire
	$(GO) test -run='^$$' -fuzz=FuzzWireRoundTrip -fuzztime=$(FUZZTIME) ./internal/wire
	$(GO) test -run='^$$' -fuzz=FuzzDictBlobDecode -fuzztime=$(FUZZTIME) ./internal/dictstore
	$(GO) test -run='^$$' -fuzz=FuzzDictStoreRoundTrip -fuzztime=$(FUZZTIME) ./internal/dictstore

# Overhead smoke: the disabled-telemetry and metrics-enabled compression
# benchmarks must run clean. Raise BENCHTIME (e.g. 5s) for real numbers
# when comparing against a baseline.
telemetry-overhead:
	$(GO) test -run='^$$' -bench='BenchmarkCompressTelemetry' -benchtime=$(BENCHTIME) ./internal/core

# Trace-overhead gate: the disabled-tracing ctx path must stay within
# 3% of the disabled-telemetry baseline and allocate identically
# (min-of-3 interleaved runs; COUNT/BENCHTIME/TOLERANCE_PCT env vars
# override).
trace-overhead:
	sh scripts/check_trace_overhead.sh

# Batch pool smoke: the parallel engine's throughput benchmarks must run
# clean at every worker count. Raise BENCHTIME for real scaling numbers
# on a multicore machine (patterns/s at 1, 4 and NumCPU workers).
batch-bench:
	$(GO) test -run='^$$' -bench='BenchmarkBatchCompress' -benchtime=$(BENCHTIME) ./internal/parallel

# Match-kernel smoke: the bit-sliced findChildMasked microbenchmarks
# (Gosper-favored, chain-favored, all-X, TieWidest shapes) must run
# clean. Regression gating for the kernel rides the grid gate below —
# the chain-heavy grid cases are built from the same shapes.
kernel-bench:
	$(GO) test -run='^$$' -bench='BenchmarkFindChildMasked' -benchtime=$(BENCHTIME) ./internal/core

# Coverage gate: total statement coverage must stay at or above the
# floor in scripts/check_coverage.sh (raise it as coverage grows).
cover:
	sh scripts/check_coverage.sh

# Service smoke: start lzwtcd on an ephemeral port, round-trip a
# conformance case through `lzwtc remote`, and require a clean graceful
# drain on SIGTERM.
lzwtcd-smoke:
	sh scripts/smoke_lzwtcd.sh

# Load smoke: 200 concurrent async clients against an undersized
# per-tenant quota. Every operation must succeed byte-identically (the
# 429s are absorbed by Retry-After backoff) and at least one throttle
# must have fired, then the server must drain cleanly.
loadgen-smoke:
	sh scripts/smoke_loadgen.sh

# Benchmark trajectory: run the single-stream perf grid (compress and
# decompress ns/char, MB/s, allocs/op across C_C x X-density) and write
# the committed trajectory point for this PR.
bench-json:
	$(GO) run ./cmd/benchgen -bench -benchtime=1s -out BENCH_9.json

# Regression gate: re-run the grid and fail if any case's compress
# ns/char regresses more than 10% against the committed baseline.
bench-gate:
	$(GO) run ./cmd/benchgen -bench -benchtime=1s -check BENCH_9.json -tolerance=0.10

verify: build vet vet-concurrency test race lzwtcvet lzwtcvet-baseline dict-oracle fuzz telemetry-overhead trace-overhead batch-bench kernel-bench cover lzwtcd-smoke loadgen-smoke
