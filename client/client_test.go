package client_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lzwtc/client"
)

// errJSON is the service's structured error envelope, written by hand so
// these tests exercise the client's decoding path.
func errJSON(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write([]byte(`{"error":{"code":"` + code + `","message":"` + msg + `"}}`))
}

// TestRetryRecoversFromTransientFailure pins the happy retry path: one
// 503 followed by a 200 succeeds without surfacing the transient error.
func TestRetryRecoversFromTransientFailure(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			errJSON(w, http.StatusServiceUnavailable, "draining", "try again")
			return
		}
		_, _ = w.Write([]byte(`{"status":"ok"}`))
	}))
	defer srv.Close()

	c := client.New(srv.URL, client.Options{Retries: 2, Backoff: time.Millisecond})
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("Health after one 503: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2 (initial + one retry)", got)
	}
}

// TestBackoffHonorsContextCancel cancels the context while the client
// is sleeping between attempts: the backoff select must return the
// context error promptly instead of finishing the sleep.
func TestBackoffHonorsContextCancel(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		errJSON(w, http.StatusServiceUnavailable, "draining", "try again")
	}))
	defer srv.Close()

	// The first retry would sleep 30s; the cancel fires 20ms in.
	c := client.New(srv.URL, client.Options{Retries: 3, Backoff: 30 * time.Second, MaxBackoff: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(20*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()

	start := time.Now()
	err := c.Health(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Health under canceled context: err = %v, want context.Canceled", err)
	}
	if elapsed >= 5*time.Second {
		t.Fatalf("cancel mid-backoff took %v; the sleep was not interrupted", elapsed)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (cancel must preempt the retry)", got)
	}
}

// TestNonRetryableStatusStopsRetrying flips the failure class mid-flight:
// a retryable 503 followed by a 404 must surface the 404 immediately —
// application errors are never retried, even with budget left.
func TestNonRetryableStatusStopsRetrying(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			errJSON(w, http.StatusServiceUnavailable, "draining", "try again")
			return
		}
		errJSON(w, http.StatusNotFound, "not_found", "no such resource")
	}))
	defer srv.Close()

	c := client.New(srv.URL, client.Options{Retries: 5, Backoff: time.Millisecond})
	err := c.Health(context.Background())
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("Health: err = %v, want *APIError", err)
	}
	if apiErr.Status != http.StatusNotFound || apiErr.Code != "not_found" {
		t.Fatalf("APIError = %+v, want status 404 code not_found", apiErr)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2 (404 must stop the retry loop)", got)
	}
}

// TestRetriesExhaustedWrapsLastError keeps failing retryably until the
// budget runs out: the final error must carry the last attempt's cause.
func TestRetriesExhaustedWrapsLastError(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		errJSON(w, http.StatusBadGateway, "upstream", "bad gateway")
	}))
	defer srv.Close()

	c := client.New(srv.URL, client.Options{Retries: 2, Backoff: time.Millisecond})
	err := c.Health(context.Background())
	if err == nil {
		t.Fatal("Health against an always-502 server succeeded")
	}
	// The terminal attempt's 502 surfaces directly as the API error.
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadGateway {
		t.Fatalf("err = %v, want *APIError with status 502", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (initial + 2 retries)", got)
	}
}

// TestRateLimitedRetryHonorsRetryAfter pins the 429 contract: the
// status is retryable, the server's Retry-After steers the wait (not
// the exponential schedule), the wait is capped by MaxBackoff so a
// hostile header cannot park the client, and OnBackpressure observes
// the throttle. One 429 followed by a 200 must succeed.
func TestRateLimitedRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "30")
			errJSON(w, http.StatusTooManyRequests, "rate_limited", "slow down")
			return
		}
		_, _ = w.Write([]byte(`{"status":"ok"}`))
	}))
	defer srv.Close()

	var waits []time.Duration
	c := client.New(srv.URL, client.Options{
		Retries: 2, Backoff: time.Millisecond, MaxBackoff: 100 * time.Millisecond,
		OnBackpressure: func(d time.Duration) { waits = append(waits, d) },
	})
	start := time.Now()
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("Health after one 429: %v", err)
	}
	elapsed := time.Since(start)
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2", got)
	}
	// Retry-After (30s, capped to 100ms) must win over the 1ms
	// exponential step, and the cap must win over the raw header.
	if elapsed < 80*time.Millisecond {
		t.Fatalf("retry fired after %v; Retry-After was ignored", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("retry waited %v; MaxBackoff cap was ignored", elapsed)
	}
	if len(waits) != 1 || waits[0] != 100*time.Millisecond {
		t.Fatalf("OnBackpressure saw %v, want one capped 100ms wait", waits)
	}
}

// TestRetryAfterCancelMidWait cancels the context while the client is
// parked on a long Retry-After: the wait must end promptly with the
// context error and no further attempt.
func TestRetryAfterCancelMidWait(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "30")
		errJSON(w, http.StatusTooManyRequests, "rate_limited", "slow down")
	}))
	defer srv.Close()

	c := client.New(srv.URL, client.Options{Retries: 3, Backoff: time.Second, MaxBackoff: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(20*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()

	start := time.Now()
	err := c.Health(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Health under canceled context: err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed >= 5*time.Second {
		t.Fatalf("cancel mid-Retry-After took %v; the wait was not interrupted", elapsed)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1", got)
	}
}

// TestRetryAfterGarbageHeader: an unparseable Retry-After is treated
// as absent — the exponential schedule applies and RetryAfter is zero
// on the surfaced error.
func TestRetryAfterGarbageHeader(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "soon-ish")
		errJSON(w, http.StatusTooManyRequests, "rate_limited", "slow down")
	}))
	defer srv.Close()

	c := client.New(srv.URL, client.Options{Retries: 0})
	err := c.Health(context.Background())
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if apiErr.Status != http.StatusTooManyRequests || apiErr.RetryAfter != 0 {
		t.Fatalf("APIError = %+v, want 429 with zero RetryAfter", apiErr)
	}
}

// TestResponseBodyCap pins the hostile-service bound: a body larger
// than Options.MaxResponseBytes is an error, not an unbounded buffer.
func TestResponseBodyCap(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(strings.Repeat("lzwtcd_metric 1\n", 64)))
	}))
	defer srv.Close()

	c := client.New(srv.URL, client.Options{MaxResponseBytes: 128})
	_, err := c.Metrics(context.Background())
	if err == nil || !strings.Contains(err.Error(), "client cap") {
		t.Fatalf("Metrics with a 1KiB body over a 128-byte cap: err = %v, want the cap error", err)
	}

	c = client.New(srv.URL, client.Options{MaxResponseBytes: 1 << 20})
	body, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatalf("Metrics under the cap: %v", err)
	}
	if !strings.Contains(body, "lzwtcd_metric 1") {
		t.Fatalf("Metrics body missing exposition content: %q", body)
	}
}
