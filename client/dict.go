package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"lzwtc"
	"lzwtc/internal/server"
)

// Shared-dictionary verbs over lzwtcd's /v1/dict endpoints. TrainDict
// asks the service to train (or re-find, content-addressed) a
// dictionary from cube text; PushDict uploads a locally trained LZWD
// blob; FetchDict pulls a blob down for local storage; DeleteDict
// evicts one. The returned DictInfo's Key is what CompressOptions.
// DictID and the dictid query parameter expect.

// DictInfo is one stored dictionary's identity document
// (server.DictResponse re-exported, so callers need not import
// internal packages).
type DictInfo = server.DictResponse

// TrainDict submits a test set for server-side dictionary training and
// returns the stored dictionary's identity. Training is idempotent:
// the same cubes and config always map to the same key, and a repeat
// call is a store hit (Source "mem" or "disk" instead of "trained").
// maxEntries <= 0 lets the dictionary grow to the config's code-width
// capacity.
func (c *Client) TrainDict(ctx context.Context, ts *lzwtc.TestSet, cfg lzwtc.Config, maxEntries int) (*DictInfo, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var body bytes.Buffer
	if err := ts.WriteCubes(&body); err != nil {
		return nil, err
	}
	q := server.EncodeCompressQuery(cfg, 0)
	if maxEntries > 0 {
		q.Set(server.ParamEntries, strconv.Itoa(maxEntries))
	}
	resp, err := c.do(ctx, http.MethodPut, server.PathDict, q, "text/plain; charset=utf-8", body.Bytes())
	if err != nil {
		return nil, err
	}
	return decodeDictInfo(resp)
}

// FetchDict downloads one stored dictionary's canonical LZWD blob.
func (c *Client) FetchDict(ctx context.Context, key string) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, server.PathDictKey+key, nil, "", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //nolint:errcheck // fully drained below
	return c.readBounded(resp.Body)
}

// PushDict uploads a locally produced LZWD blob under its store key.
// The service validates, re-encodes canonically, and persists it; the
// response carries the canonical digest.
func (c *Client) PushDict(ctx context.Context, key string, blob []byte) (*DictInfo, error) {
	resp, err := c.do(ctx, http.MethodPut, server.PathDictKey+key, nil, "application/octet-stream", blob)
	if err != nil {
		return nil, err
	}
	return decodeDictInfo(resp)
}

// DeleteDict evicts one stored dictionary from the service's memory
// tier and disk index. Unknown keys surface as an *APIError with code
// dict_not_found.
func (c *Client) DeleteDict(ctx context.Context, key string) error {
	resp, err := c.do(ctx, http.MethodDelete, server.PathDictKey+key, nil, "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close() //nolint:errcheck // fully drained below
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

// decodeDictInfo drains a 2xx response into a dictionary identity.
func decodeDictInfo(resp *http.Response) (*DictInfo, error) {
	defer resp.Body.Close() //nolint:errcheck // fully drained below
	var info DictInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("lzwtcd: decoding dictionary response: %w", err)
	}
	return &info, nil
}
