package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"lzwtc"
	"lzwtc/internal/server"
)

// Async job verbs over lzwtcd's /v1/jobs tier. SubmitCompressJob /
// JobStatus / JobResult / CancelJob map one-to-one onto the HTTP
// endpoints; WaitJob and CompressJob compose them into the common
// submit-poll-fetch flow. All of them ride the same retry/backoff loop
// as the synchronous verbs, so quota 429s are absorbed up to
// Options.Retries before surfacing as an *APIError.

// JobStatus is one job's status document (server.JobStatusResponse
// re-exported, so callers need not import internal packages).
type JobStatus = server.JobStatusResponse

// ErrJobFailed wraps a job that reached the failed state; the job's
// own message is in the error string.
var ErrJobFailed = errors.New("lzwtcd: job failed")

// ErrJobCanceled is a wait or fetch against a canceled job.
var ErrJobCanceled = errors.New("lzwtcd: job canceled")

// SubmitCompressJob submits a test set for asynchronous compression
// and returns the job's initial (queued) status. The result is fetched
// separately with JobResult once WaitJob (or polling JobStatus)
// reports the job done.
func (c *Client) SubmitCompressJob(ctx context.Context, ts *lzwtc.TestSet, cfg lzwtc.Config, opts CompressOptions) (*JobStatus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var body bytes.Buffer
	if err := ts.WriteCubes(&body); err != nil {
		return nil, err
	}
	resp, err := c.do(ctx, http.MethodPost, server.PathJobsCompress,
		compressQuery(cfg, opts), "text/plain; charset=utf-8", body.Bytes())
	if err != nil {
		return nil, err
	}
	return decodeJobStatus(resp)
}

// JobStatus fetches one job's current status document.
func (c *Client) JobStatus(ctx context.Context, id string) (*JobStatus, error) {
	resp, err := c.do(ctx, http.MethodGet, server.PathJobs+id, nil, "", nil)
	if err != nil {
		return nil, err
	}
	return decodeJobStatus(resp)
}

// JobResult fetches a finished job's wire container. A job that is not
// done yet surfaces as an *APIError with code job_not_done (status
// 409); expired or unknown jobs as 404s with their typed codes.
func (c *Client) JobResult(ctx context.Context, id string) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, server.PathJobs+id+server.JobResultSuffix, nil, "", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //nolint:errcheck // fully drained below
	return c.readBounded(resp.Body)
}

// CancelJob requests cancellation and returns the job's status after
// the request (canceled for queued jobs; still running jobs transition
// once the pool observes the canceled context).
func (c *Client) CancelJob(ctx context.Context, id string) (*JobStatus, error) {
	resp, err := c.do(ctx, http.MethodDelete, server.PathJobs+id, nil, "", nil)
	if err != nil {
		return nil, err
	}
	return decodeJobStatus(resp)
}

// WaitJob polls a job until it reaches a terminal state or ctx ends.
// pollInterval <= 0 means 50ms. Done returns the final status; failed
// and canceled jobs return it alongside ErrJobFailed / ErrJobCanceled.
func (c *Client) WaitJob(ctx context.Context, id string, pollInterval time.Duration) (*JobStatus, error) {
	if pollInterval <= 0 {
		pollInterval = 50 * time.Millisecond
	}
	t := time.NewTicker(pollInterval)
	defer t.Stop()
	for {
		st, err := c.JobStatus(ctx, id)
		if err != nil {
			return nil, err
		}
		switch st.State {
		case "done":
			return st, nil
		case "failed":
			return st, fmt.Errorf("%w: %s", ErrJobFailed, st.Error)
		case "canceled":
			return st, ErrJobCanceled
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// CompressJob is the asynchronous analogue of Compress: submit, wait,
// fetch. The returned container is byte-identical to what the
// synchronous endpoint would produce for the same input.
func (c *Client) CompressJob(ctx context.Context, ts *lzwtc.TestSet, cfg lzwtc.Config, opts CompressOptions) ([]byte, error) {
	st, err := c.SubmitCompressJob(ctx, ts, cfg, opts)
	if err != nil {
		return nil, err
	}
	if _, err := c.WaitJob(ctx, st.ID, 0); err != nil {
		return nil, err
	}
	return c.JobResult(ctx, st.ID)
}

// decodeJobStatus drains a 2xx response into a status document.
func decodeJobStatus(resp *http.Response) (*JobStatus, error) {
	defer resp.Body.Close() //nolint:errcheck // fully drained below
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("lzwtcd: decoding job status: %w", err)
	}
	return &st, nil
}
