package client_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"lzwtc/client"
	"lzwtc/internal/server"
	"lzwtc/internal/telemetry"
)

// TestRequestIDAndTracePropagation: the request ID in ctx travels out
// in X-Request-Id and comes back in the error envelope; the client's
// span identity travels in X-Lzwtc-Trace.
func TestRequestIDAndTracePropagation(t *testing.T) {
	var gotReqID, gotTrace string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotReqID = r.Header.Get(server.HeaderRequestID)
		gotTrace = r.Header.Get(server.HeaderTrace)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		_, _ = w.Write([]byte(`{"error":{"code":"bad_request","message":"nope","request_id":"` + gotReqID + `"}}`))
	}))
	defer srv.Close()

	buf := telemetry.NewTraceBuffer(4)
	rec := telemetry.New(telemetry.NewRegistry(), buf)
	c := client.New(srv.URL, client.Options{Retries: 0, Recorder: rec})
	ctx := telemetry.ContextWithRequestID(context.Background(), "cli-req-7")
	err := c.Health(ctx)
	if err == nil {
		t.Fatal("400 response did not error")
	}
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error %T is not an APIError: %v", err, err)
	}
	// The envelope's request ID surfaces on the error, joinable to the
	// server-side trace of the failing request.
	if apiErr.RequestID != "cli-req-7" {
		t.Fatalf("APIError.RequestID = %q, want cli-req-7", apiErr.RequestID)
	}
	if gotReqID != "cli-req-7" {
		t.Fatalf("server saw request ID %q, want cli-req-7", gotReqID)
	}
	sc, ok := telemetry.ParseSpanContext(gotTrace)
	if !ok {
		t.Fatalf("trace header %q is not a valid span context", gotTrace)
	}
	// The identity on the wire is the client.request span now sitting
	// in the recorder's trace buffer.
	recent := buf.Recent(1)
	if len(recent) != 1 || len(recent[0].Spans) != 1 {
		t.Fatalf("trace buffer holds %+v, want the one client span", recent)
	}
	span := recent[0].Spans[0]
	if span.Name != client.SpanClientRequest {
		t.Fatalf("recorded span %q, want %q", span.Name, client.SpanClientRequest)
	}
	if span.TraceID != sc.String()[:16] || span.SpanID != sc.String()[17:] {
		t.Fatalf("wire identity %s does not match recorded span %s-%s", gotTrace, span.TraceID, span.SpanID)
	}
	if span.RequestID != "cli-req-7" {
		t.Fatalf("client span request_id = %q, want cli-req-7", span.RequestID)
	}
}

// TestContextSpanPropagatesWithoutRecorder: a span context carried by
// ctx still reaches the wire when the client has no recorder.
func TestContextSpanPropagatesWithoutRecorder(t *testing.T) {
	var gotTrace string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotTrace = r.Header.Get(server.HeaderTrace)
		_, _ = w.Write([]byte(`{"status":"ok"}`))
	}))
	defer srv.Close()

	c := client.New(srv.URL, client.Options{Retries: 0})
	want := telemetry.SpanContext{TraceID: 0xabc, SpanID: 0xdef}
	ctx := telemetry.ContextWithSpan(context.Background(), want)
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	got, ok := telemetry.ParseSpanContext(gotTrace)
	if !ok || got != want {
		t.Fatalf("server saw trace header %q (parsed %+v ok=%v), want %v", gotTrace, got, ok, want)
	}
}
