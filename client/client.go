// Package client is the Go client for the lzwtcd compression service:
// context-aware wrappers over the /v1 HTTP API with bounded
// retry/backoff for transient failures.
//
// Requests are replayable by construction (bodies are buffered before
// the first attempt), so the client retries connection errors,
// gateway-class statuses (502/503/504) and backpressure (429) with
// exponential backoff, honoring the context between attempts. A 429's
// Retry-After header overrides the computed delay (capped at
// Options.MaxBackoff). Other application errors (4xx) are never
// retried; their structured error body surfaces as an *APIError.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"lzwtc"
	"lzwtc/internal/server"
	"lzwtc/internal/telemetry"
)

// Options tunes a Client. The zero value is usable.
type Options struct {
	// HTTPClient is the transport; nil means http.DefaultClient.
	HTTPClient *http.Client
	// Retries is the number of re-attempts after the first try on a
	// retryable failure; negative means 0. Default 2.
	Retries int
	// Backoff is the first retry delay, doubling per attempt; <= 0
	// means 100ms.
	Backoff time.Duration
	// MaxBackoff caps the delay growth; <= 0 means 2s.
	MaxBackoff time.Duration
	// MaxResponseBytes caps how much of a response body Compress and
	// Metrics will buffer; a larger body is an error, not an unbounded
	// allocation. <= 0 means 1 GiB.
	MaxResponseBytes int64
	// Recorder receives client-side telemetry: one SpanClientRequest
	// trace span per call (not per attempt), whose identity is also
	// propagated to the server in the X-Lzwtc-Trace header so client
	// and server spans merge into one trace. nil disables client spans;
	// a span context already carried by the call's ctx still propagates.
	Recorder *telemetry.Recorder
	// APIKey identifies this client's tenant to the job tier (sent as
	// X-Api-Key on every request). Empty shares the anonymous tenant.
	APIKey string
	// OnBackpressure, when set, observes every 429 the retry loop sees,
	// with the delay the client is about to honor. Load generators and
	// adaptive callers hook throttling accounting here.
	OnBackpressure func(retryAfter time.Duration)
}

// Client talks to one lzwtcd instance.
type Client struct {
	base string
	http *http.Client
	opts Options
}

// New builds a client for the service at baseURL (e.g.
// "http://127.0.0.1:8077").
func New(baseURL string, opts Options) *Client {
	if opts.HTTPClient == nil {
		opts.HTTPClient = http.DefaultClient
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 100 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 2 * time.Second
	}
	if opts.MaxResponseBytes <= 0 {
		opts.MaxResponseBytes = 1 << 30
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: opts.HTTPClient, opts: opts}
}

// NewWithRetries is New with an explicit retry count (a convenience for
// callers configuring nothing else).
func NewWithRetries(baseURL string, retries int) *Client {
	return New(baseURL, Options{Retries: retries})
}

// SpanClientRequest is the trace span each instrumented client call
// records, covering every retry attempt of one logical request.
const SpanClientRequest = "client.request"

// APIError is a non-2xx response carrying the service's structured
// error envelope.
type APIError struct {
	Status  int    // HTTP status code
	Code    string // stable machine-readable code ("bad_request", ...)
	Message string
	// RequestID is the server-assigned (or echoed) request identifier
	// from the error envelope, joinable to the server-side trace.
	RequestID string
	// RetryAfter is the response's Retry-After header as a duration, 0
	// when absent. The retry loop prefers it over computed backoff.
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("lzwtcd: %d %s: %s (request %s)", e.Status, e.Code, e.Message, e.RequestID)
	}
	return fmt.Sprintf("lzwtcd: %d %s: %s", e.Status, e.Code, e.Message)
}

// retryable reports whether a response status is worth re-attempting.
// 429 is backpressure, not failure: the service wants the same request
// later, and says how much later in Retry-After.
func retryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// do runs one replayable request with retry/backoff. body is the full
// request body; it is re-sent from the start on every attempt. One
// client.request trace span covers all attempts; the span identity in
// ctx (started here, or supplied by the caller even with no recorder)
// travels to the server in the X-Lzwtc-Trace header, and any request
// ID in ctx in X-Request-Id.
func (c *Client) do(ctx context.Context, method, path string, query url.Values, contentType string, body []byte) (resp *http.Response, err error) {
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	var sp *telemetry.TraceSpan
	ctx, sp = c.opts.Recorder.StartSpan(ctx, SpanClientRequest)
	attempts := 0
	defer func() {
		status := 0
		if resp != nil {
			status = resp.StatusCode
		}
		sp.End(telemetry.F("path", path), telemetry.F("attempts", attempts), telemetry.F("status", status))
	}()
	delay := c.opts.Backoff
	var retryAfter time.Duration // server-directed delay from the last 429/503
	var lastErr error
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		attempts = attempt + 1
		if attempt > 0 {
			wait := delay
			delay *= 2
			if delay > c.opts.MaxBackoff {
				delay = c.opts.MaxBackoff
			}
			if retryAfter > 0 {
				// Retry-After overrides the computed backoff but never
				// exceeds the configured cap: a hostile or confused server
				// must not park the client for minutes.
				wait = retryAfter
				if wait > c.opts.MaxBackoff {
					wait = c.opts.MaxBackoff
				}
				retryAfter = 0
			}
			timer := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				timer.Stop()
				return nil, ctx.Err()
			case <-timer.C:
			}
		}
		req, err := http.NewRequestWithContext(ctx, method, u, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		if c.opts.APIKey != "" {
			req.Header.Set(server.HeaderAPIKey, c.opts.APIKey)
		}
		if sc, ok := telemetry.SpanFromContext(ctx); ok {
			req.Header.Set(server.HeaderTrace, sc.String())
		}
		if id := telemetry.RequestIDFromContext(ctx); id != "" {
			req.Header.Set(server.HeaderRequestID, id)
		}
		resp, err := c.http.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = err
			continue // connection-level failure: retry
		}
		if retryable(resp.StatusCode) && attempt < c.opts.Retries {
			apiErr := decodeAPIError(resp)
			lastErr = apiErr
			var ae *APIError
			if errors.As(apiErr, &ae) {
				retryAfter = ae.RetryAfter
				if resp.StatusCode == http.StatusTooManyRequests && c.opts.OnBackpressure != nil {
					wait := retryAfter
					if wait <= 0 {
						wait = delay
					}
					if wait > c.opts.MaxBackoff {
						wait = c.opts.MaxBackoff
					}
					c.opts.OnBackpressure(wait)
				}
			}
			continue
		}
		if resp.StatusCode/100 != 2 {
			return nil, decodeAPIError(resp)
		}
		return resp, nil
	}
	return nil, fmt.Errorf("lzwtcd: request failed after %d attempts: %w", c.opts.Retries+1, lastErr)
}

// decodeAPIError drains a non-2xx response into an *APIError. The
// request ID comes from the envelope, falling back to the echoed
// X-Request-Id header for bodies the server never wrote.
func decodeAPIError(resp *http.Response) error {
	defer resp.Body.Close() //nolint:errcheck // error body already read
	reqID := resp.Header.Get(server.HeaderRequestID)
	retryAfter := parseRetryAfter(resp.Header.Get(server.HeaderRetryAfter))
	var envelope server.ErrorBody
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return &APIError{Status: resp.StatusCode, Code: "unreadable_body",
			Message: fmt.Sprintf("reading error body: %v", err), RequestID: reqID, RetryAfter: retryAfter}
	}
	if err := json.Unmarshal(data, &envelope); err != nil || envelope.Error.Code == "" {
		return &APIError{Status: resp.StatusCode, Code: "unknown",
			Message: strings.TrimSpace(string(data)), RequestID: reqID, RetryAfter: retryAfter}
	}
	if envelope.Error.RequestID != "" {
		reqID = envelope.Error.RequestID
	}
	return &APIError{Status: resp.StatusCode, Code: envelope.Error.Code,
		Message: envelope.Error.Message, RequestID: reqID, RetryAfter: retryAfter}
}

// parseRetryAfter reads the delay-seconds form of Retry-After (the only
// form lzwtcd emits); HTTP-date or garbage values parse as 0.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// CompressOptions tunes one remote compression.
type CompressOptions struct {
	// ShardPatterns > 0 asks the service for a sharded compression of
	// at most this many patterns per frame.
	ShardPatterns int
	// DictID names a stored shared dictionary (64-char hex store key)
	// to warm-start from: the service compresses with that preload and
	// the returned container carries a 'D' frame referencing it. The
	// dictionary must already be stored (TrainDict or PushDict).
	DictID string
}

// compressQuery renders the compression query parameters, including
// the optional dictionary reference.
func compressQuery(cfg lzwtc.Config, opts CompressOptions) url.Values {
	v := server.EncodeCompressQuery(cfg, opts.ShardPatterns)
	if opts.DictID != "" {
		v.Set(server.ParamDictID, opts.DictID)
	}
	return v
}

// Compress sends a test set for remote compression and returns the
// wire-format container bytes.
func (c *Client) Compress(ctx context.Context, ts *lzwtc.TestSet, cfg lzwtc.Config, opts CompressOptions) ([]byte, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var body bytes.Buffer
	if err := ts.WriteCubes(&body); err != nil {
		return nil, err
	}
	resp, err := c.do(ctx, http.MethodPost, server.PathCompress,
		compressQuery(cfg, opts), "text/plain; charset=utf-8", body.Bytes())
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //nolint:errcheck // fully drained below
	return c.readBounded(resp.Body)
}

// readBounded buffers r up to Options.MaxResponseBytes and errors
// loudly past it: a misbehaving (or impersonated) service must not be
// able to grow the client's heap without limit.
func (c *Client) readBounded(r io.Reader) ([]byte, error) {
	limit := c.opts.MaxResponseBytes
	data, err := io.ReadAll(io.LimitReader(r, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > limit {
		return nil, fmt.Errorf("lzwtcd: response body exceeds the %d-byte client cap; raise Options.MaxResponseBytes if intended", limit)
	}
	return data, nil
}

// CompressResult is Compress followed by a local decode into a Result.
// Only valid for unsharded compressions (a sharded container holds
// multiple frames); sharded callers keep the raw container.
func (c *Client) CompressResult(ctx context.Context, ts *lzwtc.TestSet, cfg lzwtc.Config) (*lzwtc.Result, error) {
	data, err := c.Compress(ctx, ts, cfg, CompressOptions{})
	if err != nil {
		return nil, err
	}
	return lzwtc.DecodeWireResult(data)
}

// Decompress sends a wire container for remote decompression and
// returns the fully specified test set.
func (c *Client) Decompress(ctx context.Context, container []byte) (*lzwtc.TestSet, error) {
	resp, err := c.do(ctx, http.MethodPost, server.PathDecompress, nil, "application/octet-stream", container)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //nolint:errcheck // fully drained below
	return lzwtc.ReadTestSet(resp.Body)
}

// Stats fetches the service counter document.
func (c *Client) Stats(ctx context.Context) (*server.StatsResponse, error) {
	resp, err := c.do(ctx, http.MethodGet, server.PathStats, nil, "", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //nolint:errcheck // fully drained below
	var stats server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return nil, fmt.Errorf("lzwtcd: decoding stats: %w", err)
	}
	return &stats, nil
}

// Metrics fetches the raw Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	resp, err := c.do(ctx, http.MethodGet, server.PathMetrics, nil, "", nil)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close() //nolint:errcheck // fully drained below
	data, err := c.readBounded(resp.Body)
	return string(data), err
}

// Health probes /healthz; nil means the service answered ok.
func (c *Client) Health(ctx context.Context) error {
	resp, err := c.do(ctx, http.MethodGet, server.PathHealth, nil, "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close() //nolint:errcheck // fully drained below
	var status struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		return fmt.Errorf("lzwtcd: decoding health: %w", err)
	}
	if status.Status != "ok" {
		return errors.New("lzwtcd: health status " + status.Status)
	}
	return nil
}
