package lzwtc

import (
	"lzwtc/internal/decomp"
)

// DownloadStats is the cycle accounting of a simulated test download
// through the hardware decompressor.
type DownloadStats = decomp.Stats

// SimulateDownload runs the compressed test set through the
// cycle-accurate hardware decompressor model (Figure 5 of the paper) at
// the given internal-to-tester clock ratio, on a dedicated dictionary
// memory sized from the configuration. It returns the fully specified
// test set delivered to the scan chain, the cycle statistics, and the
// download-time improvement over raw scan-in
// (1 - compressedCycles/rawCycles).
//
// The configuration must be hardware-realizable: bounded entries
// (EntryBits > 0) and the freeze dictionary-full policy.
func SimulateDownload(r *Result, clockRatio int) (*TestSet, *DownloadStats, float64, error) {
	return SimulateDownloadObserved(r, clockRatio, nil)
}

// PredictDownloadCycles computes the download time in tester cycles in
// closed form, without running the cycle simulation — useful for
// parameter sweeps. It agrees exactly with SimulateDownload.
func PredictDownloadCycles(r *Result, clockRatio int) (int, error) {
	tc, _, err := decomp.Predict(r.Stream.Codes, r.Stream.Cfg, clockRatio)
	return tc, err
}
