package lzwtc

import (
	"bytes"
	"context"
	"fmt"
	"io"

	"lzwtc/internal/bitvec"
	"lzwtc/internal/core"
	"lzwtc/internal/telemetry"
	"lzwtc/internal/wire"
)

// Wire-format typed errors, re-exported for callers that never import
// internal packages. Test with errors.Is.
var (
	ErrWireBadMagic  = wire.ErrBadMagic
	ErrWireVersion   = wire.ErrVersion
	ErrWireChecksum  = wire.ErrChecksum
	ErrWireTruncated = wire.ErrTruncated
)

// IsWireContainer reports whether data begins with the wire-format
// magic — the dispatch test file and service handlers use to tell the
// framed format from the legacy Encode container.
func IsWireContainer(data []byte) bool {
	return len(data) >= len(wire.Magic) && bytes.Equal(data[:len(wire.Magic)], wire.Magic[:])
}

// WriteWire streams a Result to w in the versioned wire format: a
// CRC-protected header carrying the full Config and pattern width, one
// data frame with the code stream, and an explicit EOS frame. Unlike
// Encode, the output is tamper-evident (per-region CRC32C) and
// truncation-evident (missing EOS).
func (r *Result) WriteWire(w io.Writer) error {
	ww, err := wire.NewWriter(w, wire.Header{Cfg: r.Stream.Cfg, Width: r.Width})
	if err != nil {
		return err
	}
	if err := ww.WriteResult(r.Stream, r.Patterns); err != nil {
		return err
	}
	return ww.Close()
}

// Trace span names for wire-container framing, recorded by the
// *Observed wire entry points.
const (
	SpanWireEncode = "wire.encode" // frame + CRC a container
	SpanWireDecode = "wire.decode" // parse + verify + decompress a container
)

// WriteWireObserved is WriteWire wrapped in a SpanWireEncode trace
// span: when ctx carries a span and rec has sinks, the container
// framing (header, CRC, frame writes) is attributed in the request
// trace. A nil recorder reduces to WriteWire.
func (r *Result) WriteWireObserved(ctx context.Context, w io.Writer, rec *Recorder) error {
	_, sp := rec.StartSpan(ctx, SpanWireEncode)
	err := r.WriteWire(w)
	sp.End(telemetry.F("frames", 1), telemetry.F("ok", err == nil))
	return err
}

// WriteWireShardedObserved is WriteWireSharded wrapped in a
// SpanWireEncode trace span carrying the frame count.
func WriteWireShardedObserved(ctx context.Context, w io.Writer, s *ShardedResult, rec *Recorder) error {
	_, sp := rec.StartSpan(ctx, SpanWireEncode)
	err := WriteWireSharded(w, s)
	sp.End(telemetry.F("frames", len(s.Shards)), telemetry.F("ok", err == nil))
	return err
}

// EncodeWire renders the Result as one in-memory wire container.
func (r *Result) EncodeWire() ([]byte, error) {
	var buf bytes.Buffer
	if err := r.WriteWire(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteWireSharded streams a sharded compression as one container with
// a frame per shard. Each frame is independently decompressible (a
// frame boundary is a FullReset), so a streaming reader can decompress
// shard by shard in constant memory.
func WriteWireSharded(w io.Writer, s *ShardedResult) error {
	ww, err := wire.NewWriter(w, wire.Header{Cfg: s.Cfg, Width: s.Width})
	if err != nil {
		return err
	}
	for i, sh := range s.Shards {
		if err := ww.WriteResult(sh, s.ShardPatterns[i]); err != nil {
			return err
		}
	}
	return ww.Close()
}

// ReadWireResult parses a single-frame wire container back into a
// Result. Multi-frame (sharded) containers are rejected — their frames
// have independent dictionary states and cannot merge into one code
// stream; use DecompressWire for those.
func ReadWireResult(r io.Reader) (*Result, error) {
	wr, err := wire.NewReader(r)
	if err != nil {
		return nil, err
	}
	hdr := wr.Header()
	f, err := wr.ReadFrame()
	if err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("lzwtc: wire container has no data frames")
		}
		return nil, err
	}
	if _, err := wr.ReadFrame(); err != io.EOF {
		if err == nil {
			return nil, fmt.Errorf("lzwtc: wire container has multiple frames; use DecompressWire")
		}
		return nil, err
	}
	res := &core.Result{Cfg: hdr.Cfg, Codes: f.Codes, InputBits: f.InputBits}
	res.Stats.InputBits = f.InputBits
	res.Stats.CodesEmitted = len(f.Codes)
	res.Stats.CompressedBits = len(f.Codes) * hdr.Cfg.CodeBits()
	return &Result{
		Stream:       res,
		Width:        hdr.Width,
		OriginalBits: hdr.Width * f.Patterns,
		Patterns:     f.Patterns,
	}, nil
}

// DecodeWireResult is ReadWireResult over an in-memory container.
func DecodeWireResult(data []byte) (*Result, error) {
	return ReadWireResult(bytes.NewReader(data))
}

// DecompressWire streams any wire container — single-frame or sharded —
// into the fully specified test set, decompressing frame by frame. The
// whole container is verified: a corrupt or truncated stream returns a
// typed error before (or instead of) partial output.
func DecompressWire(r io.Reader) (*TestSet, error) {
	return DecompressWireObserved(context.Background(), r, nil)
}

// DecompressWireObserved is DecompressWire instrumented for request
// tracing: the whole container parse runs under a SpanWireDecode span
// and each frame's software decompression is a nested core.decode
// span, so sharded downloads show per-frame cost. A nil recorder
// reduces to DecompressWire.
func DecompressWireObserved(ctx context.Context, r io.Reader, rec *Recorder) (*TestSet, error) {
	wctx, sp := rec.StartSpan(ctx, SpanWireDecode)
	out, frames, err := decompressWire(wctx, r, rec)
	sp.End(telemetry.F("frames", frames), telemetry.F("ok", err == nil))
	return out, err
}

func decompressWire(ctx context.Context, r io.Reader, rec *Recorder) (*TestSet, int, error) {
	wr, err := wire.NewReader(r)
	if err != nil {
		return nil, 0, err
	}
	hdr := wr.Header()
	out := NewTestSet(hdr.Width)
	for {
		f, err := wr.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, wr.Frames(), err
		}
		stream, err := core.DecompressObservedCtx(ctx, f.Codes, hdr.Cfg, f.InputBits, rec)
		if err != nil {
			return nil, wr.Frames(), fmt.Errorf("lzwtc: wire frame %d: %w", wr.Frames()-1, err)
		}
		group, err := bitvec.DeserializeAligned(stream, hdr.Width, hdr.Cfg.CharBits)
		if err != nil {
			return nil, wr.Frames(), fmt.Errorf("lzwtc: wire frame %d: %w", wr.Frames()-1, err)
		}
		if len(group.Cubes) != f.Patterns {
			return nil, wr.Frames(), fmt.Errorf("lzwtc: wire frame %d decompressed to %d patterns, want %d",
				wr.Frames()-1, len(group.Cubes), f.Patterns)
		}
		out.Cubes = append(out.Cubes, group.Cubes...)
	}
	return out, wr.Frames(), nil
}
