// Command lzwtcvet runs the repo-specific static-analysis suite over
// the module.
//
//	lzwtcvet [-checks bitwidth,droppederror,panicpolicy,configbeforeuse] [-list] [packages]
//
// With no package patterns it analyzes ./... relative to the current
// directory. It prints one `file:line:col: [check] message` line per
// finding and exits 1 when any survive //lzwtcvet:ignore suppressions,
// 2 on load or usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lzwtc/internal/analysis"
)

func main() {
	checksFlag := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "print the check catalog and exit")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: lzwtcvet [-checks c1,c2] [-list] [packages]")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, c := range analysis.Checks() {
			fmt.Printf("%-16s %s\n", c.Name(), c.Doc())
		}
		return
	}

	var names []string
	if *checksFlag != "" {
		names = strings.Split(*checksFlag, ",")
	}

	pkgs, err := analysis.Load(".", flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lzwtcvet: %v\n", err)
		os.Exit(2)
	}
	cfg := analysis.DefaultConfig()
	diags, err := analysis.Run(&cfg, pkgs, names...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lzwtcvet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lzwtcvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
