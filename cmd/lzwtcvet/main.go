// Command lzwtcvet runs the repo-specific static-analysis suite over
// the module.
//
//	lzwtcvet [-checks c1,c2] [-list] [-json] [-baseline file] [packages]
//
// With no package patterns it analyzes ./... relative to the current
// directory. It prints one `file:line:col: [check] message` line per
// finding and exits 1 when any survive //lzwtcvet:ignore suppressions,
// 2 on load or usage errors.
//
// -json emits the findings as a JSON array (the baseline format).
// -baseline compares the findings against a committed baseline file:
// only findings absent from the baseline fail the run, so CI catches
// regressions while the accepted ledger stays reviewable; baseline
// entries that no longer fire are reported as stale on stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lzwtc/internal/analysis"
)

func main() {
	checksFlag := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "print the check catalog and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (baseline format)")
	baseline := flag.String("baseline", "", "compare findings against this baseline file; fail only on new findings")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: lzwtcvet [-checks c1,c2] [-list] [-json] [-baseline file] [packages]")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, c := range analysis.Checks() {
			fmt.Printf("%-16s %s\n", c.Name(), c.Doc())
		}
		return
	}

	var names []string
	if *checksFlag != "" {
		names = strings.Split(*checksFlag, ",")
	}

	pkgs, err := analysis.Load(".", flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lzwtcvet: %v\n", err)
		os.Exit(2)
	}
	cfg := analysis.DefaultConfig()
	diags, err := analysis.Run(&cfg, pkgs, names...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lzwtcvet: %v\n", err)
		os.Exit(2)
	}

	root, err := os.Getwd()
	if err != nil {
		root = ""
	}
	findings := analysis.ToJSON(root, diags)

	if *baseline != "" {
		base, err := analysis.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lzwtcvet: %v\n", err)
			os.Exit(2)
		}
		fresh, stale := analysis.DiffBaseline(findings, base)
		for _, f := range stale {
			fmt.Fprintf(os.Stderr, "lzwtcvet: stale baseline entry: %s: [%s] %s\n", f.File, f.Check, f.Message)
		}
		if *jsonOut {
			if err := analysis.WriteJSON(os.Stdout, fresh); err != nil {
				fmt.Fprintf(os.Stderr, "lzwtcvet: %v\n", err)
				os.Exit(2)
			}
		} else {
			for _, f := range fresh {
				fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Check, f.Message)
			}
		}
		if len(fresh) > 0 {
			fmt.Fprintf(os.Stderr, "lzwtcvet: %d new finding(s) not in baseline %s\n", len(fresh), *baseline)
			os.Exit(1)
		}
		return
	}

	if *jsonOut {
		if err := analysis.WriteJSON(os.Stdout, findings); err != nil {
			fmt.Fprintf(os.Stderr, "lzwtcvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lzwtcvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
