package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"lzwtc"
	"lzwtc/client"
)

// dictCmd manages the local shared-dictionary store and syncs it with
// a lzwtcd instance:
//
//	lzwtc dict train -in cubes.txt [-store DIR] [-entries N] [config flags]
//	lzwtc dict ls    [-store DIR]
//	lzwtc dict rm    -id KEY [-store DIR]
//	lzwtc dict push  -id KEY -server URL [-store DIR]
//	lzwtc dict pull  -id KEY -server URL [-store DIR]
//
// train prints the new dictionary's store key on stdout (scriptable as
// K=$(lzwtc dict train ...)); push uploads a local blob to the
// service, pull downloads one into the local store. The local store
// defaults to ./.lzwtcdicts and is the same content-addressed layout
// lzwtcd's -dict-dir uses, so a directory can be shared directly.
func dictCmd(ctx context.Context, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: lzwtc dict {train|ls|rm|push|pull} [flags]")
	}
	verb, rest := args[0], args[1:]

	fs := flag.NewFlagSet("dict "+verb, flag.ExitOnError)
	storeDir := fs.String("store", ".lzwtcdicts", "local dictionary store directory")
	var in, id, serverURL *string
	var entries *int
	var cfg *lzwtc.Config
	switch verb {
	case "train":
		in = fs.String("in", "-", "training cube file (- for stdin)")
		entries = fs.Int("entries", 0, "cap on preload entries (0 = code-width capacity)")
		cfg = configFlags(fs)
	case "ls":
	case "rm":
		id = fs.String("id", "", "dictionary store key (64-char hex)")
	case "push", "pull":
		id = fs.String("id", "", "dictionary store key (64-char hex)")
		serverURL = fs.String("server", "http://127.0.0.1:8077", "lzwtcd base URL")
	default:
		return fmt.Errorf("dict: unknown verb %q (want train, ls, rm, push or pull)", verb)
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if id != nil && *id == "" {
		return fmt.Errorf("dict %s: -id is required", verb)
	}

	store, err := lzwtc.OpenDictStore(lzwtc.DictStoreConfig{Dir: *storeDir})
	if err != nil {
		return err
	}
	defer store.Close()

	switch verb {
	case "train":
		return dictTrain(ctx, store, *in, *cfg, *entries)
	case "ls":
		return dictList(store)
	case "rm":
		return dictRemove(store, *id)
	case "push":
		return dictPush(ctx, store, *id, *serverURL)
	case "pull":
		return dictPull(ctx, store, *id, *serverURL)
	}
	return nil
}

// dictTrain trains a dictionary from cube text into the local store
// and prints its content address. Re-training the same corpus under
// the same config is a store hit, not a second training.
func dictTrain(ctx context.Context, store *lzwtc.DictStore, in string, cfg lzwtc.Config, entries int) error {
	r, err := openIn(in)
	if err != nil {
		return err
	}
	defer r.Close()
	ts, err := lzwtc.ReadTestSet(r)
	if err != nil {
		return err
	}
	key := lzwtc.DictKeyFor(ts, cfg)
	ent, src, err := store.GetOrTrain(ctx, key, cfg, func(context.Context) (*lzwtc.Preload, error) {
		return lzwtc.Train(ts, cfg, entries)
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dict %s: %d entries, %d blob bytes, digest %s (%s)\n",
		verbPast(src.String()), ent.Pre.Entries(), ent.BlobBytes, ent.Digest, src)
	fmt.Println(ent.Key)
	return nil
}

// verbPast maps a resolution source onto the verb for the human line.
func verbPast(src string) string {
	if src == "trained" {
		return "trained"
	}
	return "found"
}

func dictList(store *lzwtc.DictStore) error {
	infos := store.List()
	if len(infos) == 0 {
		fmt.Fprintln(os.Stderr, "dict store is empty")
		return nil
	}
	for _, info := range infos {
		where := "disk"
		// Entries is -1 for a disk-only entry (the blob is not decoded
		// just to list it).
		entries := "      ?"
		if info.InMem {
			where = "mem"
			entries = fmt.Sprintf("%7d", info.Entries)
		}
		fmt.Printf("%s  %s entries  %8d bytes  %s\n", info.Key, entries, info.BlobBytes, where)
	}
	return nil
}

func dictRemove(store *lzwtc.DictStore, id string) error {
	key, err := lzwtc.ParseDictKey(id)
	if err != nil {
		return err
	}
	removed, err := store.Delete(key)
	if err != nil {
		return err
	}
	if !removed {
		return fmt.Errorf("dict rm: no stored dictionary %s", key)
	}
	fmt.Fprintf(os.Stderr, "dict removed %s\n", key)
	return nil
}

// dictPush uploads one local blob to the service's store.
func dictPush(ctx context.Context, store *lzwtc.DictStore, id, serverURL string) error {
	key, err := lzwtc.ParseDictKey(id)
	if err != nil {
		return err
	}
	blob, ent, err := store.Blob(ctx, key)
	if err != nil {
		return err
	}
	c := client.New(serverURL, client.Options{Retries: 2})
	ctx, cancel := context.WithTimeout(ctx, time.Minute)
	defer cancel()
	info, err := c.PushDict(ctx, key.String(), blob)
	if err != nil {
		return err
	}
	if info.Digest != ent.Digest.String() {
		return fmt.Errorf("dict push: server re-encoded %s to digest %s, local digest %s", key, info.Digest, ent.Digest)
	}
	fmt.Fprintf(os.Stderr, "dict pushed %s (%d bytes) to %s\n", key, len(blob), serverURL)
	return nil
}

// dictPull downloads one blob from the service into the local store.
func dictPull(ctx context.Context, store *lzwtc.DictStore, id, serverURL string) error {
	key, err := lzwtc.ParseDictKey(id)
	if err != nil {
		return err
	}
	c := client.New(serverURL, client.Options{Retries: 2})
	ctx, cancel := context.WithTimeout(ctx, time.Minute)
	defer cancel()
	blob, err := c.FetchDict(ctx, key.String())
	if err != nil {
		return err
	}
	ent, err := store.PutBlob(key, blob)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dict pulled %s (%d entries, %d bytes) from %s\n",
		key, ent.Pre.Entries(), ent.BlobBytes, serverURL)
	return nil
}
