package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"lzwtc/internal/telemetry"
)

// traceCmd renders a JSONL telemetry stream (written with
// -telemetry jsonl, by lzwtcd's JSONL sink, or saved from
// /debug/trace/recent spans) as per-request span trees:
//
//	lzwtc trace -in spans.jsonl [-n 5]
//
// Every trace prints its span tree with total and self time per span
// and a critical-path summary — the chain of longest children that
// bounds the request's wall-clock time. Events of other kinds mixed
// into the stream are skipped, so a full -telemetry jsonl capture
// renders without preprocessing.
func traceCmd(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	in := fs.String("in", "-", "JSONL event stream (- for stdin)")
	n := fs.Int("n", 0, "render at most this many traces, file order (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	r, err := openIn(*in)
	if err != nil {
		return err
	}
	defer r.Close()
	recs, err := telemetry.ReadSpansJSONL(r)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("trace: no trace.span records in %s (was the run recorded with -telemetry jsonl?)", *in)
	}
	traces := telemetry.CollectTraces(recs)
	if *n > 0 && len(traces) > *n {
		traces = traces[:*n]
	}
	renderTraces(os.Stdout, traces)
	return nil
}

// renderTraces writes one block per trace: a header (trace ID, span
// count, root duration, request ID when present), the span tree with
// total/self microseconds, and the critical path.
func renderTraces(w io.Writer, traces []*telemetry.Trace) {
	for i, t := range traces {
		if i > 0 {
			fmt.Fprintln(w)
		}
		spans := t.Spans()
		var rootDur int64
		reqID := ""
		for _, r := range t.Roots {
			if r.DurUS > rootDur {
				rootDur = r.DurUS
			}
			if reqID == "" {
				reqID = r.RequestID
			}
		}
		fmt.Fprintf(w, "trace %s  spans %d  %dµs", t.TraceID, len(spans), rootDur)
		if reqID != "" {
			fmt.Fprintf(w, "  request %s", reqID)
		}
		fmt.Fprintln(w)

		// First pass sizes the label column so total/self align across
		// all depths of the tree.
		width := 0
		var measure func(n *telemetry.SpanNode, depth int)
		measure = func(n *telemetry.SpanNode, depth int) {
			if l := 2*depth + len(spanLabel(n)); l > width {
				width = l
			}
			for _, c := range n.Children {
				measure(c, depth+1)
			}
		}
		for _, r := range t.Roots {
			measure(r, 1)
		}
		var render func(n *telemetry.SpanNode, depth int)
		render = func(n *telemetry.SpanNode, depth int) {
			label := strings.Repeat("  ", depth) + spanLabel(n)
			fmt.Fprintf(w, "%-*s  total %8dµs  self %8dµs\n", width, label, n.DurUS, n.Self())
			for _, c := range n.Children {
				render(c, depth+1)
			}
		}
		for _, r := range t.Roots {
			render(r, 1)
		}

		if cp := t.CriticalPath(); len(cp) > 0 {
			names := make([]string, len(cp))
			for j, n := range cp {
				names[j] = n.Name
			}
			leaf := cp[len(cp)-1]
			fmt.Fprintf(w, "  critical path: %s  (%dµs in %s)\n",
				strings.Join(names, " > "), leaf.DurUS, leaf.Name)
		}
	}
}

// spanLabel is the tree label for one span: its name, tagged with the
// emitting process when recorded.
func spanLabel(n *telemetry.SpanNode) string {
	if n.Process != "" {
		return n.Name + " [" + n.Process + "]"
	}
	return n.Name
}
