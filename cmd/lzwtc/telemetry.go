package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"lzwtc/internal/telemetry"
)

// cliProcess stamps trace spans recorded by this binary, so a merged
// client+server trace attributes each span to its process.
const cliProcess = "lzwtc"

// telemetryOpts is the shared observability flag set: an event stream
// (-telemetry text|jsonl, to stderr or -telemetry-out), a Prometheus
// metrics dump (-metrics-out), and pprof capture (-cpuprofile,
// -memprofile).
type telemetryOpts struct {
	mode       string
	eventsOut  string
	metricsOut string
	cpuProfile string
	memProfile string
}

func telemetryFlags(fs *flag.FlagSet) *telemetryOpts {
	o := &telemetryOpts{}
	fs.StringVar(&o.mode, "telemetry", "", "event stream format: text or jsonl (off when empty)")
	fs.StringVar(&o.eventsOut, "telemetry-out", "", "event stream destination (default stderr)")
	fs.StringVar(&o.metricsOut, "metrics-out", "", "write Prometheus text exposition here on exit (- for stdout)")
	fs.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile here")
	fs.StringVar(&o.memProfile, "memprofile", "", "write a heap profile here")
	return o
}

// enabled reports whether any observability output was requested.
func (o *telemetryOpts) enabled() bool {
	return o.mode != "" || o.metricsOut != "" || o.cpuProfile != "" || o.memProfile != ""
}

// start builds the recorder (nil when nothing was requested, keeping
// the hot paths uninstrumented) and returns a finish function that
// flushes metrics and profiles. Call finish exactly once, on success
// paths; it reports the first flush error.
func (o *telemetryOpts) start() (*telemetry.Recorder, func() error, error) {
	return o.startWith(telemetry.NewRegistry())
}

// startWith is start with a caller-provided registry, for subcommands
// that read histograms back out of it.
func (o *telemetryOpts) startWith(reg *telemetry.Registry) (*telemetry.Recorder, func() error, error) {
	if !o.enabled() {
		return nil, func() error { return nil }, nil
	}

	var sinks []telemetry.Sink
	var eventFile *os.File
	var sinkErr func() error
	switch o.mode {
	case "":
	case "text", "jsonl":
		w := os.Stderr
		if o.eventsOut != "" && o.eventsOut != "-" {
			f, err := os.Create(o.eventsOut)
			if err != nil {
				return nil, nil, err
			}
			eventFile, w = f, f
		}
		if o.mode == "text" {
			s := telemetry.NewTextSink(w)
			sinks, sinkErr = append(sinks, s), s.Err
		} else {
			s := telemetry.NewJSONLSink(w)
			sinks, sinkErr = append(sinks, s), s.Err
		}
	default:
		return nil, nil, fmt.Errorf("unknown -telemetry format %q (want text or jsonl)", o.mode)
	}

	var cpuFile *os.File
	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			return nil, nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			if cerr := f.Close(); cerr != nil {
				err = fmt.Errorf("%w (also closing %s: %v)", err, o.cpuProfile, cerr)
			}
			return nil, nil, err
		}
		cpuFile = f
	}

	rec := telemetry.New(reg, sinks...).WithProcess(cliProcess)
	finish := func() error {
		var firstErr error
		keep := func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if cpuFile != nil {
			pprof.StopCPUProfile()
			keep(cpuFile.Close())
		}
		if o.memProfile != "" {
			f, err := os.Create(o.memProfile)
			keep(err)
			if err == nil {
				runtime.GC()
				keep(pprof.WriteHeapProfile(f))
				keep(f.Close())
			}
		}
		if o.metricsOut != "" {
			w, err := openOut(o.metricsOut)
			keep(err)
			if err == nil {
				keep(reg.Snapshot().WritePrometheus(w))
				keep(w.Close())
			}
		}
		if sinkErr != nil {
			keep(sinkErr())
		}
		if eventFile != nil {
			keep(eventFile.Close())
		}
		return firstErr
	}
	return rec, finish, nil
}
