package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"lzwtc"
)

// batchManifestJob is one parsed manifest line: a cube file and its
// (possibly overridden) configuration.
type batchManifestJob struct {
	Path string
	Name string
	Cfg  lzwtc.Config
}

// batchJobRecord is one job's row in the aggregate batch report.
type batchJobRecord struct {
	Name           string  `json:"name"`
	Input          string  `json:"input"`
	Error          string  `json:"error,omitempty"`
	Patterns       int     `json:"patterns,omitempty"`
	OriginalBits   int     `json:"original_bits,omitempty"`
	CompressedBits int     `json:"compressed_bits,omitempty"`
	Ratio          float64 `json:"ratio,omitempty"`
	Shards         int     `json:"shards,omitempty"`
}

// batchRecord is the aggregate report written as batch.json.
type batchRecord struct {
	Jobs           int              `json:"jobs"`
	OK             int              `json:"ok"`
	Failed         int              `json:"failed"`
	Workers        int              `json:"workers"`
	Policy         string           `json:"policy"`
	ShardPatterns  int              `json:"shard_patterns,omitempty"`
	WallMs         int64            `json:"wall_ms"`
	OriginalBits   int              `json:"original_bits"`
	CompressedBits int              `json:"compressed_bits"`
	Ratio          float64          `json:"ratio"`
	Results        []batchJobRecord `json:"results"`
}

// batch compresses every cube file of a manifest concurrently through
// the batch pool, writing one container and one run record per job plus
// an aggregate report. A manifest line is
//
//	path [char=N] [dict=N] [entry=N] [fill=zero|one|repeat]
//	     [tie=oldest|newest|widest] [full=freeze|reset]
//
// with '#' comments and blank lines ignored; relative paths resolve
// against the manifest's directory. Defaults come from the usual
// configuration flags. SIGINT cancels the batch cleanly mid-run.
func batch(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("batch", flag.ExitOnError)
	manifest := fs.String("manifest", "-", "manifest file (- for stdin)")
	outDir := fs.String("out-dir", ".", "output directory for per-job containers and records")
	workers := fs.Int("workers", 0, "concurrent jobs (0 = GOMAXPROCS)")
	policyName := fs.String("policy", "collect", "error policy: failfast (cancel batch on first error) or collect (run everything)")
	shardPatterns := fs.Int("shard-patterns", 0, "compress each set as shards of at most this many patterns (0 = unsharded)")
	raw := fs.Bool("raw", false, "write legacy LZWTC1 containers (no CRC framing) instead of the wire format")
	cfg := configFlags(fs)
	opts := telemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	policy, err := parseBatchPolicy(*policyName)
	if err != nil {
		return err
	}
	rec, finish, err := opts.start()
	if err != nil {
		return err
	}

	manifestJobs, err := readManifest(*manifest, *cfg)
	if err != nil {
		return err
	}
	if len(manifestJobs) == 0 {
		return fmt.Errorf("batch: empty manifest")
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	// Load every test set up front so a missing file fails before any
	// compression starts.
	jobs := make([]lzwtc.BatchJob, len(manifestJobs))
	for i, mj := range manifestJobs {
		f, err := os.Open(mj.Path)
		if err != nil {
			return fmt.Errorf("batch: %w", err)
		}
		ts, err := lzwtc.ReadTestSet(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("batch: %s: %w", mj.Path, err)
		}
		jobs[i] = lzwtc.BatchJob{Name: mj.Name, Set: ts, Cfg: mj.Cfg}
	}

	bopts := lzwtc.BatchOptions{Workers: *workers, Policy: policy, Recorder: rec}
	resolvedWorkers := *workers
	if resolvedWorkers <= 0 {
		resolvedWorkers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	agg := batchRecord{
		Jobs:          len(jobs),
		Workers:       resolvedWorkers,
		Policy:        policy.String(),
		ShardPatterns: *shardPatterns,
		Results:       make([]batchJobRecord, len(jobs)),
	}
	if *shardPatterns > 0 {
		err = runShardedBatch(ctx, jobs, *shardPatterns, bopts, *outDir, *raw, &agg)
	} else {
		err = runBatch(ctx, jobs, bopts, *outDir, *raw, &agg)
	}
	agg.WallMs = time.Since(start).Milliseconds()
	if err != nil {
		return err
	}

	for i := range agg.Results {
		agg.Results[i].Input = manifestJobs[i].Path
		if agg.Results[i].Error == "" {
			agg.OK++
			agg.OriginalBits += agg.Results[i].OriginalBits
			agg.CompressedBits += agg.Results[i].CompressedBits
		} else {
			agg.Failed++
		}
	}
	if agg.OriginalBits > 0 {
		agg.Ratio = 1 - float64(agg.CompressedBits)/float64(agg.OriginalBits)
	}
	if err := writeJSON(filepath.Join(*outDir, "batch.json"), agg); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "batch: %d ok, %d failed in %dms (%.2f%% aggregate compression)\n",
		agg.OK, agg.Failed, agg.WallMs, 100*agg.Ratio)
	if ferr := finish(); ferr != nil {
		return ferr
	}
	if agg.Failed > 0 {
		return fmt.Errorf("batch: %d of %d jobs failed", agg.Failed, agg.Jobs)
	}
	return nil
}

// runBatch is the unsharded path: one container + run record per job.
// The container is the versioned wire format (self-describing, CRC32C
// per region, explicit EOS) unless -raw asked for the legacy dump.
func runBatch(ctx context.Context, jobs []lzwtc.BatchJob, opts lzwtc.BatchOptions, outDir string, raw bool, agg *batchRecord) error {
	results, err := lzwtc.CompressBatch(ctx, jobs, opts)
	if err != nil {
		return err
	}
	for i, r := range results {
		agg.Results[i] = batchJobRecord{Name: r.Job.Name}
		if r.Err != nil {
			agg.Results[i].Error = r.Err.Error()
			continue
		}
		record := lzwtc.NewRunRecord(r.Result)
		base := filepath.Join(outDir, r.Job.Name)
		container, err := encodeContainer(r.Result, raw)
		if err != nil {
			return err
		}
		if err := os.WriteFile(base+".lzw", container, 0o644); err != nil {
			return err
		}
		if err := writeJSON(base+".json", record); err != nil {
			return err
		}
		agg.Results[i].Patterns = r.Result.Patterns
		agg.Results[i].OriginalBits = r.Result.OriginalBits
		agg.Results[i].CompressedBits = r.Result.CompressedBits()
		agg.Results[i].Ratio = r.Result.Ratio()
	}
	return nil
}

// runShardedBatch compresses each set as pattern-group shards. The
// default output is one wire container per job with one frame per shard
// (each frame independently decompressible — a frame boundary is a
// FullReset); -raw falls back to the legacy one-file-per-shard layout
// (<name>.shardK.lzw) plus the job's sharded run record.
func runShardedBatch(ctx context.Context, jobs []lzwtc.BatchJob, per int, opts lzwtc.BatchOptions, outDir string, raw bool, agg *batchRecord) error {
	for i, j := range jobs {
		agg.Results[i] = batchJobRecord{Name: j.Name}
		sr, err := lzwtc.CompressSharded(ctx, j.Set, j.Cfg, per, opts)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if opts.Policy == lzwtc.FailFast {
				return fmt.Errorf("batch: job %q: %w", j.Name, err)
			}
			agg.Results[i].Error = err.Error()
			continue
		}
		base := filepath.Join(outDir, j.Name)
		if raw {
			for k, sh := range sr.Shards {
				shardRes := &lzwtc.Result{
					Stream:       sh,
					Width:        sr.Width,
					OriginalBits: sr.ShardPatterns[k] * sr.Width,
					Patterns:     sr.ShardPatterns[k],
				}
				if err := os.WriteFile(fmt.Sprintf("%s.shard%d.lzw", base, k), shardRes.Encode(), 0o644); err != nil {
					return err
				}
			}
		} else if err := writeShardedContainer(base+".lzw", sr); err != nil {
			return err
		}
		if err := writeJSON(base+".json", lzwtc.NewShardedRunRecord(sr)); err != nil {
			return err
		}
		agg.Results[i].Patterns = sr.Patterns
		agg.Results[i].OriginalBits = sr.OriginalBits
		agg.Results[i].CompressedBits = sr.CompressedBits()
		agg.Results[i].Ratio = sr.Ratio()
		agg.Results[i].Shards = len(sr.Shards)
	}
	return nil
}

// encodeContainer renders one job's container: wire format by default,
// the legacy LZWTC1 dump under -raw.
func encodeContainer(res *lzwtc.Result, raw bool) ([]byte, error) {
	if raw {
		return res.Encode(), nil
	}
	return res.EncodeWire()
}

// writeShardedContainer streams a sharded result into one wire
// container, one frame per shard.
func writeShardedContainer(path string, sr *lzwtc.ShardedResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := lzwtc.WriteWireSharded(f, sr); err != nil {
		if cerr := f.Close(); cerr != nil {
			err = fmt.Errorf("%w (also closing %s: %v)", err, path, cerr)
		}
		return err
	}
	return f.Close()
}

// readManifest parses the manifest into jobs with unique names.
func readManifest(path string, defaults lzwtc.Config) ([]batchManifestJob, error) {
	r, err := openIn(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	baseDir := ""
	if path != "" && path != "-" {
		baseDir = filepath.Dir(path)
	}

	var jobs []batchManifestJob
	names := map[string]int{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		cubePath := fields[0]
		if baseDir != "" && !filepath.IsAbs(cubePath) {
			cubePath = filepath.Join(baseDir, cubePath)
		}
		cfg := defaults
		for _, kv := range fields[1:] {
			if err := applyManifestOption(&cfg, kv); err != nil {
				return nil, fmt.Errorf("batch: manifest line %d: %w", lineNo, err)
			}
		}
		name := strings.TrimSuffix(filepath.Base(fields[0]), filepath.Ext(fields[0]))
		names[name]++
		if n := names[name]; n > 1 {
			name = fmt.Sprintf("%s-%d", name, n)
		}
		jobs = append(jobs, batchManifestJob{Path: cubePath, Name: name, Cfg: cfg})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return jobs, nil
}

// applyManifestOption applies one key=value configuration override.
func applyManifestOption(cfg *lzwtc.Config, kv string) error {
	key, val, ok := strings.Cut(kv, "=")
	if !ok {
		return fmt.Errorf("malformed option %q (want key=value)", kv)
	}
	switch key {
	case "char", "dict", "entry":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("option %s: %w", key, err)
		}
		switch key {
		case "char":
			cfg.CharBits = n
		case "dict":
			cfg.DictSize = n
		case "entry":
			cfg.EntryBits = n
		}
	case "fill":
		switch val {
		case "zero":
			cfg.Fill = lzwtc.FillZero
		case "one":
			cfg.Fill = lzwtc.FillOne
		case "repeat":
			cfg.Fill = lzwtc.FillRepeat
		default:
			return fmt.Errorf("unknown fill policy %q (want zero, one or repeat)", val)
		}
	case "tie":
		switch val {
		case "oldest":
			cfg.Tie = lzwtc.TieOldest
		case "newest":
			cfg.Tie = lzwtc.TieNewest
		case "widest":
			cfg.Tie = lzwtc.TieWidest
		default:
			return fmt.Errorf("unknown tie policy %q (want oldest, newest or widest)", val)
		}
	case "full":
		switch val {
		case "freeze":
			cfg.Full = lzwtc.FullFreeze
		case "reset":
			cfg.Full = lzwtc.FullReset
		default:
			return fmt.Errorf("unknown full policy %q (want freeze or reset)", val)
		}
	default:
		return fmt.Errorf("unknown option %q (want char, dict, entry, fill, tie or full)", key)
	}
	return nil
}

// parseBatchPolicy maps the -policy flag onto the pool's error policy.
func parseBatchPolicy(s string) (lzwtc.ErrorPolicy, error) {
	switch s {
	case "failfast":
		return lzwtc.FailFast, nil
	case "collect":
		return lzwtc.CollectAll, nil
	}
	return 0, fmt.Errorf("batch: unknown -policy %q (want failfast or collect)", s)
}

// writeJSON writes v as indented JSON.
func writeJSON(path string, v interface{}) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		if cerr := f.Close(); cerr != nil {
			err = fmt.Errorf("%w (also closing %s: %v)", err, path, cerr)
		}
		return err
	}
	return f.Close()
}
