package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lzwtc"
	"lzwtc/internal/telemetry"
)

// Trace span names for the stats pipeline. Each phase runs as a child
// of SpanStatsRun, so a -telemetry jsonl capture renders as one tree
// through `lzwtc trace`; the names match the pre-trace phase metrics,
// keeping lzwtc_phase_seconds_* series stable.
const (
	SpanStatsRun        = "stats.run"
	SpanStatsParse      = "parse"
	SpanStatsCompress   = "compress"
	SpanStatsPack       = "pack"
	SpanStatsDecompress = "decompress"
	SpanStatsVerify     = "verify"
)

// stats runs the whole pipeline — parse, compress, pack, decompress,
// verify — on a cube file, under one connected trace of telemetry
// spans, and prints one run record: the Table 1–3 quantities (ratio,
// code/char/dict-reset counts, the match-length histogram) plus the
// decompressor cycle totals when the configuration is
// hardware-realizable. The context is checked between pipeline phases,
// so SIGINT stops the run at the next phase boundary.
func stats(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "-", "input cube file (- for stdin)")
	cfg := configFlags(fs)
	ratio := fs.Int("ratio", 8, "internal-to-tester clock ratio for the decompressor model")
	jsonOut := fs.Bool("json", false, "emit the run record as a single JSON document")
	opts := telemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// stats always records into a registry (the report needs the
	// histograms); the flags only add event sinks and profiles on top.
	reg := telemetry.NewRegistry()
	rec, finish, err := opts.startWith(reg)
	if err != nil {
		return err
	}
	if rec == nil {
		rec = telemetry.New(reg).WithProcess(cliProcess)
	}

	// The run span is the trace root; each phase span below starts from
	// rctx, so the whole pipeline shares one trace ID.
	rctx, runSp := rec.StartSpan(ctx, SpanStatsRun)
	defer runSp.End()

	if err := ctx.Err(); err != nil {
		return err
	}
	_, sp := rec.StartSpan(rctx, SpanStatsParse)
	r, err := openIn(*in)
	if err != nil {
		return err
	}
	defer r.Close()
	ts, err := lzwtc.ReadTestSet(r)
	sp.End()
	if err != nil {
		return err
	}

	if err := ctx.Err(); err != nil {
		return err
	}
	cctx, sp := rec.StartSpan(rctx, SpanStatsCompress)
	res, err := lzwtc.CompressObservedCtx(cctx, ts, *cfg, rec)
	sp.End()
	if err != nil {
		return err
	}

	_, sp = rec.StartSpan(rctx, SpanStatsPack)
	packed := res.Stream.Pack()
	sp.End(telemetry.F("bytes", len(packed)))

	record := lzwtc.NewRunRecord(res)

	if err := ctx.Err(); err != nil {
		return err
	}
	// Decompress through the cycle-accurate hardware model when the
	// configuration has a hardware realization; otherwise through the
	// software decoder (no cycle record either way the bits are checked).
	var filled *lzwtc.TestSet
	_, sp = rec.StartSpan(rctx, SpanStatsDecompress)
	if cfg.EntryBits > 0 && cfg.Full == lzwtc.FullFreeze {
		var st *lzwtc.DownloadStats
		filled, st, _, err = lzwtc.SimulateDownloadObserved(res, *ratio, rec)
		if err == nil {
			record.AttachDownload(*ratio, st)
		}
	} else {
		filled, err = lzwtc.Decompress(res)
	}
	sp.End()
	if err != nil {
		return err
	}

	_, sp = rec.StartSpan(rctx, SpanStatsVerify)
	err = lzwtc.Verify(ts, filled)
	sp.End()
	if err != nil {
		return err
	}

	record.AttachHistograms(reg.Snapshot())
	// End the root before finish() flushes and closes the event sinks;
	// the deferred End (error paths) is then a no-op.
	runSp.End()

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(record); err != nil {
			return err
		}
	} else {
		printStatsText(record)
	}
	return finish()
}

func printStatsText(rec lzwtc.RunRecord) {
	c := rec.Compress
	fmt.Printf("patterns:        %d x %d bits (%d bits total)\n", rec.Patterns, rec.Width, rec.OriginalBits)
	fmt.Printf("configuration:   C_C=%d  N=%d (C_E=%d)  C_MDATA=%d  fill=%s tie=%s full=%s\n",
		rec.Config.CharBits, rec.Config.DictSize, rec.Config.CodeBits, rec.Config.EntryBits,
		rec.Config.Fill, rec.Config.Tie, rec.Config.Full)
	fmt.Printf("compressed:      %d codes, %d bits (%.2f%% compression)\n",
		c.CodesEmitted, c.CompressedBits, 100*c.Ratio)
	fmt.Printf("codes:           %d literal, %d string; longest match %d chars\n",
		c.LiteralCodes, c.StringCodes, c.MaxMatchChars)
	fmt.Printf("dictionary:      %d entries, %d resets; longest entry %d chars\n",
		c.DictEntries, c.DictResets, c.MaxEntryChars)
	fmt.Printf("don't-cares:     %d residual fills, %d dynamic fills\n",
		c.ResidualFills, c.DynamicFills)
	if c.DictPoolRecycles+c.DictPoolMisses > 0 {
		fmt.Printf("dict arena:      %d recycled, %d fresh\n",
			c.DictPoolRecycles, c.DictPoolMisses)
	}
	if h := c.MatchLenHist; h != nil {
		fmt.Printf("match lengths:   ")
		prev := int64(0)
		for _, b := range h.Buckets {
			n := b.Count - prev
			prev = b.Count
			if n == 0 {
				continue
			}
			fmt.Printf("le%s:%d ", formatLe(b.UpperBound), n)
		}
		fmt.Println()
	}
	if d := rec.Decompressor; d != nil {
		fmt.Printf("decompressor:    %dx internal clock: %d tester cycles (%.2f%% improvement)\n",
			d.ClockRatio, d.TesterCycles, 100*d.Improvement)
		fmt.Printf("cycles:          %d internal = %d stall + %d decode + %d write + %d shift\n",
			d.InternalCycles, d.LoadStalls, d.DecodeCycles, d.WriteCycles, d.ShiftCycles)
		fmt.Printf("memory:          %d x %d bits, %d reads, %d writes; utilization %.1f%%\n",
			d.MemoryWords, d.MemoryWidth, d.MemReads, d.MemWrites, 100*d.Utilization)
	}
}

func formatLe(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// infoJSON renders a decoded container through the same RunRecord
// schema as stats, so the two subcommands agree on field names.
func infoJSON(res *lzwtc.Result) error {
	record := lzwtc.NewRunRecord(res)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(record)
}
