package main

import (
	"bytes"
	"strings"
	"testing"

	"lzwtc/internal/telemetry"
)

// fixtureTrace is a two-process trace shaped like a real remote
// compress: client request wrapping a server handler wrapping two core
// phases.
func fixtureTrace() []*telemetry.Trace {
	recs := []telemetry.SpanRecord{
		{TraceID: "t1", SpanID: "a", Name: "client.request", Process: "lzwtc",
			RequestID: "req-9", StartUnixUS: 0, DurUS: 1000},
		{TraceID: "t1", SpanID: "b", ParentID: "a", Name: "server.compress",
			Process: "lzwtcd", StartUnixUS: 100, DurUS: 700},
		{TraceID: "t1", SpanID: "c", ParentID: "b", Name: "core.dict_build",
			Process: "lzwtcd", StartUnixUS: 120, DurUS: 100},
		{TraceID: "t1", SpanID: "d", ParentID: "b", Name: "core.match_loop",
			Process: "lzwtcd", StartUnixUS: 240, DurUS: 500},
	}
	return telemetry.CollectTraces(recs)
}

func TestRenderTracesTreeAndCriticalPath(t *testing.T) {
	var buf bytes.Buffer
	renderTraces(&buf, fixtureTrace())
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")

	if !strings.HasPrefix(lines[0], "trace t1  spans 4  1000µs  request req-9") {
		t.Fatalf("header = %q", lines[0])
	}
	// Tree order is depth-first with indentation by depth; process tags
	// ride each label.
	wantLabels := []string{
		"  client.request [lzwtc]",
		"    server.compress [lzwtcd]",
		"      core.dict_build [lzwtcd]",
		"      core.match_loop [lzwtcd]",
	}
	for i, want := range wantLabels {
		if !strings.HasPrefix(lines[1+i], want) {
			t.Fatalf("tree line %d = %q, want prefix %q", i, lines[1+i], want)
		}
	}
	// Total/self accounting: the server span's self time is its total
	// minus both core phases.
	if !strings.Contains(lines[2], "total      700µs") || !strings.Contains(lines[2], "self      100µs") {
		t.Fatalf("server line timing = %q", lines[2])
	}
	// Alignment: every total column starts at the same offset.
	first := strings.Index(lines[1], "total")
	for i := 2; i <= 4; i++ {
		if strings.Index(lines[i], "total") != first {
			t.Fatalf("total column misaligned on line %d:\n%s", i, out)
		}
	}
	cp := lines[len(lines)-1]
	if !strings.Contains(cp, "critical path: client.request > server.compress > core.match_loop") ||
		!strings.Contains(cp, "(500µs in core.match_loop)") {
		t.Fatalf("critical path line = %q", cp)
	}
}

func TestRenderTracesMultipleBlocks(t *testing.T) {
	recs := []telemetry.SpanRecord{
		{TraceID: "t1", SpanID: "a", Name: "one.root", DurUS: 10},
		{TraceID: "t2", SpanID: "b", Name: "two.root", DurUS: 20},
	}
	var buf bytes.Buffer
	renderTraces(&buf, telemetry.CollectTraces(recs))
	out := buf.String()
	if strings.Count(out, "trace t") != 2 {
		t.Fatalf("expected two trace blocks:\n%s", out)
	}
	// Blocks are separated by a blank line.
	if !strings.Contains(out, "\n\ntrace t2") {
		t.Fatalf("no blank line between traces:\n%s", out)
	}
	// A root with no request ID renders no request column.
	if strings.Contains(strings.Split(out, "\n")[0], "request") {
		t.Fatalf("header grew a request column without an ID:\n%s", out)
	}
}
