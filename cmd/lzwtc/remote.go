package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"lzwtc"
	"lzwtc/client"
	"lzwtc/internal/telemetry"
)

// SpanRemoteRun is the root trace span one `lzwtc remote` invocation
// records: the client.request span (and through header propagation the
// whole server-side subtree) nests under it, so a -telemetry jsonl
// capture replays as one connected trace via `lzwtc trace`.
const SpanRemoteRun = "remote.run"

// remote drives a running lzwtcd instance through the client package:
//
//	lzwtc remote compress   -server URL -in cubes.txt -out cubes.lzw [-shard N] [config flags]
//	lzwtc remote decompress -server URL -in cubes.lzw -out filled.txt
//	lzwtc remote stats      -server URL
//	lzwtc remote health     -server URL
//
// All verbs accept the shared observability flags; with -telemetry
// jsonl the run records a remote.run root span plus the client.request
// span for each HTTP call.
func remote(ctx context.Context, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: lzwtc remote {compress|decompress|stats|health} [flags]")
	}
	verb, rest := args[0], args[1:]

	fs := flag.NewFlagSet("remote "+verb, flag.ExitOnError)
	serverURL := fs.String("server", "http://127.0.0.1:8077", "lzwtcd base URL")
	retries := fs.Int("retries", 2, "retry attempts for transient failures")
	timeout := fs.Duration("timeout", 2*time.Minute, "overall deadline for the operation")
	topts := telemetryFlags(fs)
	var in, out *string
	var shard *int
	var cfg *lzwtc.Config
	switch verb {
	case "compress":
		in = fs.String("in", "-", "input cube file (- for stdin)")
		out = fs.String("out", "-", "output container (- for stdout)")
		shard = fs.Int("shard", 0, "patterns per shard frame (0 = single frame)")
		cfg = configFlags(fs)
	case "decompress":
		in = fs.String("in", "-", "input container (- for stdin)")
		out = fs.String("out", "-", "output cube file (- for stdout)")
	case "stats", "health":
	default:
		return fmt.Errorf("remote: unknown verb %q (want compress, decompress, stats or health)", verb)
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}

	rec, finish, err := topts.start()
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()
	c := client.New(*serverURL, client.Options{Retries: *retries, Recorder: rec})

	rctx, sp := rec.StartSpan(ctx, SpanRemoteRun)
	switch verb {
	case "compress":
		err = remoteCompress(rctx, c, *in, *out, *cfg, *shard)
	case "decompress":
		err = remoteDecompress(rctx, c, *in, *out)
	case "stats":
		err = remoteStats(rctx, c)
	case "health":
		err = remoteHealth(rctx, c)
	}
	sp.End(telemetry.F("verb", verb), telemetry.F("ok", err == nil))
	if err != nil {
		return err
	}
	return finish()
}

func remoteStats(ctx context.Context, c *client.Client) error {
	stats, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("uptime:        %.1fs\n", stats.UptimeSeconds)
	fmt.Printf("in flight:     %d\n", stats.InFlight)
	fmt.Printf("requests:      %d (errors %d)\n", stats.Requests["total"], stats.Errors)
	fmt.Printf("bytes:         %d in, %d out\n", stats.BytesIn, stats.BytesOut)
	fmt.Printf("patterns:      %d compressed, %d decompressed\n",
		stats.PatternsCompressed, stats.PatternsDecompressed)
	fmt.Printf("dict arena:    %d recycled, %d fresh\n",
		stats.DictPoolRecycles, stats.DictPoolMisses)
	return nil
}

func remoteHealth(ctx context.Context, c *client.Client) error {
	if err := c.Health(ctx); err != nil {
		return err
	}
	fmt.Println("ok")
	return nil
}

func remoteCompress(ctx context.Context, c *client.Client, in, out string, cfg lzwtc.Config, shard int) error {
	r, err := openIn(in)
	if err != nil {
		return err
	}
	defer r.Close()
	ts, err := lzwtc.ReadTestSet(r)
	if err != nil {
		return err
	}
	container, err := c.Compress(ctx, ts, cfg, client.CompressOptions{ShardPatterns: shard})
	if err != nil {
		return err
	}
	w, err := openOut(out)
	if err != nil {
		return err
	}
	defer w.Close()
	if _, err := w.Write(container); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "remote compressed %d patterns into %d container bytes\n", len(ts.Cubes), len(container))
	return nil
}

func remoteDecompress(ctx context.Context, c *client.Client, in, out string) error {
	r, err := openIn(in)
	if err != nil {
		return err
	}
	defer r.Close()
	container, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	ts, err := c.Decompress(ctx, container)
	if err != nil {
		return err
	}
	w, err := openOut(out)
	if err != nil {
		return err
	}
	defer w.Close()
	if err := ts.WriteCubes(w); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "remote decompressed %d patterns x %d bits\n", len(ts.Cubes), ts.Width)
	return nil
}
