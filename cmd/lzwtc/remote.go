package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"lzwtc"
	"lzwtc/client"
	"lzwtc/internal/telemetry"
)

// SpanRemoteRun is the root trace span one `lzwtc remote` invocation
// records: the client.request span (and through header propagation the
// whole server-side subtree) nests under it, so a -telemetry jsonl
// capture replays as one connected trace via `lzwtc trace`.
const SpanRemoteRun = "remote.run"

// remote drives a running lzwtcd instance through the client package:
//
//	lzwtc remote compress   -server URL -in cubes.txt -out cubes.lzw [-shard N] [-dict-id K] [config flags]
//	lzwtc remote decompress -server URL -in cubes.lzw -out filled.txt
//	lzwtc remote stats      -server URL
//	lzwtc remote health     -server URL
//	lzwtc remote submit     -server URL -in cubes.txt [-shard N] [-dict-id K] [-key K] [config flags]
//	lzwtc remote poll       -server URL -job ID [-key K] [-wait]
//	lzwtc remote fetch      -server URL -job ID [-key K] -out cubes.lzw [-wait]
//	lzwtc remote cancel     -server URL -job ID [-key K]
//
// The job verbs drive the asynchronous tier: submit prints the job ID
// on stdout (scriptable as J=$(lzwtc remote submit ...)), poll prints
// the status document, fetch writes the finished container, cancel
// requests cancellation. -key sets the X-Api-Key tenant.
//
// All verbs accept the shared observability flags; with -telemetry
// jsonl the run records a remote.run root span plus the client.request
// span for each HTTP call.
func remote(ctx context.Context, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: lzwtc remote {compress|decompress|stats|health|submit|poll|fetch|cancel} [flags]")
	}
	verb, rest := args[0], args[1:]

	fs := flag.NewFlagSet("remote "+verb, flag.ExitOnError)
	serverURL := fs.String("server", "http://127.0.0.1:8077", "lzwtcd base URL")
	retries := fs.Int("retries", 2, "retry attempts for transient failures")
	timeout := fs.Duration("timeout", 2*time.Minute, "overall deadline for the operation")
	apiKey := fs.String("key", "", "API key identifying the job-tier tenant (X-Api-Key)")
	topts := telemetryFlags(fs)
	var in, out, jobID, dictID *string
	var shard *int
	var wait *bool
	var cfg *lzwtc.Config
	switch verb {
	case "compress":
		in = fs.String("in", "-", "input cube file (- for stdin)")
		out = fs.String("out", "-", "output container (- for stdout)")
		shard = fs.Int("shard", 0, "patterns per shard frame (0 = single frame)")
		dictID = fs.String("dict-id", "", "stored dictionary key to warm-start from (train or push it first)")
		cfg = configFlags(fs)
	case "decompress":
		in = fs.String("in", "-", "input container (- for stdin)")
		out = fs.String("out", "-", "output cube file (- for stdout)")
	case "stats", "health":
	case "submit":
		in = fs.String("in", "-", "input cube file (- for stdin)")
		shard = fs.Int("shard", 0, "patterns per shard frame (0 = single frame)")
		dictID = fs.String("dict-id", "", "stored dictionary key to warm-start from (train or push it first)")
		cfg = configFlags(fs)
	case "poll":
		jobID = fs.String("job", "", "job ID to poll")
		wait = fs.Bool("wait", false, "block until the job reaches a terminal state")
	case "fetch":
		jobID = fs.String("job", "", "job ID to fetch")
		out = fs.String("out", "-", "output container (- for stdout)")
		wait = fs.Bool("wait", false, "wait for the job to finish before fetching")
	case "cancel":
		jobID = fs.String("job", "", "job ID to cancel")
	default:
		return fmt.Errorf("remote: unknown verb %q (want compress, decompress, stats, health, submit, poll, fetch or cancel)", verb)
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if jobID != nil && *jobID == "" {
		return fmt.Errorf("remote %s: -job is required", verb)
	}

	rec, finish, err := topts.start()
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()
	c := client.New(*serverURL, client.Options{Retries: *retries, Recorder: rec, APIKey: *apiKey})

	rctx, sp := rec.StartSpan(ctx, SpanRemoteRun)
	switch verb {
	case "compress":
		err = remoteCompress(rctx, c, *in, *out, *cfg, *shard, *dictID)
	case "decompress":
		err = remoteDecompress(rctx, c, *in, *out)
	case "stats":
		err = remoteStats(rctx, c)
	case "health":
		err = remoteHealth(rctx, c)
	case "submit":
		err = remoteSubmit(rctx, c, *in, *cfg, *shard, *dictID)
	case "poll":
		err = remotePoll(rctx, c, *jobID, *wait)
	case "fetch":
		err = remoteFetch(rctx, c, *jobID, *out, *wait)
	case "cancel":
		err = remoteCancel(rctx, c, *jobID)
	}
	sp.End(telemetry.F("verb", verb), telemetry.F("ok", err == nil))
	if err != nil {
		return err
	}
	return finish()
}

func remoteStats(ctx context.Context, c *client.Client) error {
	stats, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("uptime:        %.1fs\n", stats.UptimeSeconds)
	fmt.Printf("in flight:     %d\n", stats.InFlight)
	fmt.Printf("requests:      %d (errors %d)\n", stats.Requests["total"], stats.Errors)
	fmt.Printf("bytes:         %d in, %d out\n", stats.BytesIn, stats.BytesOut)
	fmt.Printf("patterns:      %d compressed, %d decompressed\n",
		stats.PatternsCompressed, stats.PatternsDecompressed)
	fmt.Printf("dict arena:    %d recycled, %d fresh\n",
		stats.DictPoolRecycles, stats.DictPoolMisses)
	j := stats.Jobs
	fmt.Printf("jobs:          %d submitted (%d done, %d failed, %d canceled, %d expired, %d rejected); %d queued, %d running\n",
		j.Submitted, j.Completed, j.Failed, j.Canceled, j.Expired, j.Rejected, j.Queued, j.Running)
	return nil
}

// remoteSubmit queues an async compression and prints the job ID on
// stdout (everything else goes to stderr, keeping the ID scriptable).
func remoteSubmit(ctx context.Context, c *client.Client, in string, cfg lzwtc.Config, shard int, dictID string) error {
	r, err := openIn(in)
	if err != nil {
		return err
	}
	defer r.Close()
	ts, err := lzwtc.ReadTestSet(r)
	if err != nil {
		return err
	}
	st, err := c.SubmitCompressJob(ctx, ts, cfg, client.CompressOptions{ShardPatterns: shard, DictID: dictID})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "remote submitted %d patterns as job %s (%s)\n", len(ts.Cubes), st.ID, st.State)
	fmt.Println(st.ID)
	return nil
}

func printJobStatus(st *client.JobStatus) {
	fmt.Printf("job:       %s\n", st.ID)
	fmt.Printf("state:     %s\n", st.State)
	fmt.Printf("frames:    %d/%d\n", st.FramesDone, st.FramesTotal)
	if st.State == "done" {
		fmt.Printf("patterns:  %d\n", st.Patterns)
		fmt.Printf("ratio:     %.4f\n", st.Ratio)
		fmt.Printf("result:    %d bytes\n", st.ResultBytes)
	}
	if st.Error != "" {
		fmt.Printf("error:     %s\n", st.Error)
	}
}

func remotePoll(ctx context.Context, c *client.Client, id string, wait bool) error {
	var st *client.JobStatus
	var err error
	if wait {
		st, err = c.WaitJob(ctx, id, 0)
		// A failed or canceled job still has a status worth printing;
		// the error propagates after.
		if st != nil {
			printJobStatus(st)
		}
		return err
	}
	st, err = c.JobStatus(ctx, id)
	if err != nil {
		return err
	}
	printJobStatus(st)
	return nil
}

func remoteFetch(ctx context.Context, c *client.Client, id, out string, wait bool) error {
	if wait {
		if _, err := c.WaitJob(ctx, id, 0); err != nil {
			return err
		}
	}
	container, err := c.JobResult(ctx, id)
	if err != nil {
		return err
	}
	w, err := openOut(out)
	if err != nil {
		return err
	}
	defer w.Close()
	if _, err := w.Write(container); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "remote fetched %d container bytes from job %s\n", len(container), id)
	return nil
}

func remoteCancel(ctx context.Context, c *client.Client, id string) error {
	st, err := c.CancelJob(ctx, id)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "remote canceled job %s (now %s)\n", id, st.State)
	return nil
}

func remoteHealth(ctx context.Context, c *client.Client) error {
	if err := c.Health(ctx); err != nil {
		return err
	}
	fmt.Println("ok")
	return nil
}

func remoteCompress(ctx context.Context, c *client.Client, in, out string, cfg lzwtc.Config, shard int, dictID string) error {
	r, err := openIn(in)
	if err != nil {
		return err
	}
	defer r.Close()
	ts, err := lzwtc.ReadTestSet(r)
	if err != nil {
		return err
	}
	container, err := c.Compress(ctx, ts, cfg, client.CompressOptions{ShardPatterns: shard, DictID: dictID})
	if err != nil {
		return err
	}
	w, err := openOut(out)
	if err != nil {
		return err
	}
	defer w.Close()
	if _, err := w.Write(container); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "remote compressed %d patterns into %d container bytes\n", len(ts.Cubes), len(container))
	return nil
}

func remoteDecompress(ctx context.Context, c *client.Client, in, out string) error {
	r, err := openIn(in)
	if err != nil {
		return err
	}
	defer r.Close()
	container, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	ts, err := c.Decompress(ctx, container)
	if err != nil {
		return err
	}
	w, err := openOut(out)
	if err != nil {
		return err
	}
	defer w.Close()
	if err := ts.WriteCubes(w); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "remote decompressed %d patterns x %d bits\n", len(ts.Cubes), ts.Width)
	return nil
}
