package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lzwtc"
)

// writeBatchFixture lays out two small cube files and a manifest that
// compresses them under different configurations.
func writeBatchFixture(t *testing.T) (dir, manifest string) {
	t.Helper()
	dir = t.TempDir()
	a := "01XX10XX\nX1XX10X0\n0X101XX1\n"
	b := strings.Repeat("0011XX0011XX\n", 8)
	if err := os.WriteFile(filepath.Join(dir, "a.cubes"), []byte(a), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "b.cubes"), []byte(b), 0o644); err != nil {
		t.Fatal(err)
	}
	manifest = filepath.Join(dir, "jobs.txt")
	lines := "# comment\na.cubes char=2 dict=16 entry=8\nb.cubes char=4 dict=64 entry=16 full=reset tie=newest\n"
	if err := os.WriteFile(manifest, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir, manifest
}

func TestBatchSubcommandEndToEnd(t *testing.T) {
	dir, manifest := writeBatchFixture(t)
	outDir := filepath.Join(dir, "out")
	err := batch(context.Background(), []string{"-manifest", manifest, "-out-dir", outDir, "-workers", "2"})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}

	var agg struct {
		Jobs    int     `json:"jobs"`
		OK      int     `json:"ok"`
		Failed  int     `json:"failed"`
		Ratio   float64 `json:"ratio"`
		Results []struct {
			Name  string `json:"name"`
			Error string `json:"error"`
		} `json:"results"`
	}
	data, err := os.ReadFile(filepath.Join(outDir, "batch.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &agg); err != nil {
		t.Fatal(err)
	}
	if agg.Jobs != 2 || agg.OK != 2 || agg.Failed != 0 {
		t.Fatalf("aggregate = %+v", agg)
	}

	// Each job got a wire-format container and a run record; the
	// container round-trips against its source cubes with no
	// out-of-band Config.
	for _, name := range []string{"a", "b"} {
		raw, err := os.ReadFile(filepath.Join(outDir, name+".lzw"))
		if err != nil {
			t.Fatal(err)
		}
		if !lzwtc.IsWireContainer(raw) {
			t.Fatalf("%s.lzw is not a wire container", name)
		}
		filled, err := lzwtc.DecompressWire(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s.lzw decompress: %v", name, err)
		}
		f, err := os.Open(filepath.Join(dir, name+".cubes"))
		if err != nil {
			t.Fatal(err)
		}
		orig, err := lzwtc.ReadTestSet(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if err := lzwtc.Verify(orig, filled); err != nil {
			t.Fatalf("%s round-trip: %v", name, err)
		}
		if _, err := os.Stat(filepath.Join(outDir, name+".json")); err != nil {
			t.Fatalf("missing run record: %v", err)
		}
	}
}

func TestBatchSubcommandSharded(t *testing.T) {
	dir, manifest := writeBatchFixture(t)
	outDir := filepath.Join(dir, "out")
	err := batch(context.Background(), []string{"-manifest", manifest, "-out-dir", outDir, "-shard-patterns", "3"})
	if err != nil {
		t.Fatalf("sharded batch: %v", err)
	}
	// b has 8 patterns -> 3 shards of <= 3 patterns, each its own
	// independently decompressible container.
	var rec lzwtc.RunRecord
	data, err := os.ReadFile(filepath.Join(outDir, "b.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.Shards) != 3 {
		t.Fatalf("b.json has %d shards, want 3", len(rec.Shards))
	}
	// The default layout is one wire container with one frame per
	// shard, streaming-decompressible as a whole.
	raw, err := os.ReadFile(filepath.Join(outDir, "b.lzw"))
	if err != nil {
		t.Fatal(err)
	}
	ts, err := lzwtc.DecompressWire(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("b.lzw decompress: %v", err)
	}
	if len(ts.Cubes) != 8 {
		t.Fatalf("sharded container decompresses to %d patterns, want 8", len(ts.Cubes))
	}
}

// TestBatchSubcommandShardedRaw pins the -raw legacy layout: one
// LZWTC1 container per shard.
func TestBatchSubcommandShardedRaw(t *testing.T) {
	dir, manifest := writeBatchFixture(t)
	outDir := filepath.Join(dir, "out")
	err := batch(context.Background(), []string{"-manifest", manifest, "-out-dir", outDir, "-shard-patterns", "3", "-raw"})
	if err != nil {
		t.Fatalf("sharded raw batch: %v", err)
	}
	total := 0
	for k := 0; k < 3; k++ {
		raw, err := os.ReadFile(filepath.Join(outDir, "b.shard"+string(rune('0'+k))+".lzw"))
		if err != nil {
			t.Fatal(err)
		}
		res, err := lzwtc.DecodeResult(raw)
		if err != nil {
			t.Fatalf("shard %d: %v", k, err)
		}
		ts, err := lzwtc.Decompress(res)
		if err != nil {
			t.Fatalf("shard %d decompress: %v", k, err)
		}
		total += len(ts.Cubes)
	}
	if total != 8 {
		t.Fatalf("shards decompress to %d patterns, want 8", total)
	}
}

// TestBatchMismatchedConfigFailsLoudly is the regression test for the
// headerless-dump hazard: corrupting the configuration region of a
// batch-written wire container makes decode fail with a typed checksum
// error, where the legacy container silently decompresses to garbage
// that still parses as a test set.
func TestBatchMismatchedConfigFailsLoudly(t *testing.T) {
	dir, manifest := writeBatchFixture(t)
	outDir := filepath.Join(dir, "out")
	if err := batch(context.Background(), []string{"-manifest", manifest, "-out-dir", outDir}); err != nil {
		t.Fatalf("batch: %v", err)
	}
	raw, err := os.ReadFile(filepath.Join(outDir, "a.lzw"))
	if err != nil {
		t.Fatal(err)
	}
	// Byte 5 is the first header config field (CharBits uvarint):
	// flipping it is exactly a "decoded under the wrong Config" setup.
	mut := bytes.Clone(raw)
	mut[5] ^= 0x01
	_, err = lzwtc.DecompressWire(bytes.NewReader(mut))
	if !errors.Is(err, lzwtc.ErrWireChecksum) {
		t.Fatalf("mismatched config decode: got %v, want ErrWireChecksum", err)
	}

	// The legacy container demonstrates the hazard this PR closes: the
	// same single-byte config mutation still "decodes" — no error, just
	// a differently-shaped test set.
	legacy := filepath.Join(dir, "legacy-out")
	if err := batch(context.Background(), []string{"-manifest", manifest, "-out-dir", legacy, "-raw"}); err != nil {
		t.Fatalf("raw batch: %v", err)
	}
	lraw, err := os.ReadFile(filepath.Join(legacy, "a.lzw"))
	if err != nil {
		t.Fatal(err)
	}
	// Scan the legacy header region for a single-byte config mutation
	// that still decodes cleanly — to a different set.
	orig, err := lzwtc.DecodeResult(lraw)
	if err != nil {
		t.Fatal(err)
	}
	silent := false
	for pos := 8; pos < 20 && pos < len(lraw); pos++ {
		m := bytes.Clone(lraw)
		m[pos] ^= 0x01
		res, err := lzwtc.DecodeResult(m)
		if err != nil {
			continue
		}
		if res.Stream.Cfg == orig.Stream.Cfg && res.Width == orig.Width {
			continue
		}
		if _, err := lzwtc.Decompress(res); err == nil {
			silent = true
			break
		}
	}
	if !silent {
		t.Log("legacy container rejected every single-byte config mutation here; hazard not reproduced on this fixture")
	}
}

// TestBatchCanceledContext: a canceled context fails the batch with the
// cancellation, before any output is written.
func TestBatchCanceledContext(t *testing.T) {
	dir, manifest := writeBatchFixture(t)
	outDir := filepath.Join(dir, "out")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := batch(ctx, []string{"-manifest", manifest, "-out-dir", outDir})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := os.Stat(filepath.Join(outDir, "batch.json")); !os.IsNotExist(err) {
		t.Fatal("canceled batch still wrote batch.json")
	}
}

// TestStatsCanceledContext: stats honors a pre-canceled context at its
// first phase boundary.
func TestStatsCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := stats(ctx, []string{"-in", "does-not-matter"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestReadManifestOptionsAndDedup(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "m.txt")
	content := "x.cubes char=3 dict=8 entry=9 fill=repeat tie=widest full=reset\nsub/x.cubes\n"
	if err := os.WriteFile(manifest, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	jobs, err := readManifest(manifest, lzwtc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("%d jobs, want 2", len(jobs))
	}
	cfg := jobs[0].Cfg
	if cfg.CharBits != 3 || cfg.DictSize != 8 || cfg.EntryBits != 9 ||
		cfg.Fill != lzwtc.FillRepeat || cfg.Tie != lzwtc.TieWidest || cfg.Full != lzwtc.FullReset {
		t.Fatalf("options not applied: %+v", cfg)
	}
	if jobs[0].Name == jobs[1].Name {
		t.Fatalf("duplicate base names not deduplicated: %q vs %q", jobs[0].Name, jobs[1].Name)
	}
	if jobs[1].Name != "x-2" {
		t.Fatalf("second x named %q, want x-2", jobs[1].Name)
	}

	if _, err := readManifest(manifest, lzwtc.Config{}); err != nil {
		t.Fatalf("defaults pass through unvalidated: %v", err)
	}
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("x.cubes fill=purple\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readManifest(bad, lzwtc.DefaultConfig()); err == nil {
		t.Fatal("bad fill policy accepted")
	}
}
