package main

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lzwtc"
)

// writeBatchFixture lays out two small cube files and a manifest that
// compresses them under different configurations.
func writeBatchFixture(t *testing.T) (dir, manifest string) {
	t.Helper()
	dir = t.TempDir()
	a := "01XX10XX\nX1XX10X0\n0X101XX1\n"
	b := strings.Repeat("0011XX0011XX\n", 8)
	if err := os.WriteFile(filepath.Join(dir, "a.cubes"), []byte(a), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "b.cubes"), []byte(b), 0o644); err != nil {
		t.Fatal(err)
	}
	manifest = filepath.Join(dir, "jobs.txt")
	lines := "# comment\na.cubes char=2 dict=16 entry=8\nb.cubes char=4 dict=64 entry=16 full=reset tie=newest\n"
	if err := os.WriteFile(manifest, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir, manifest
}

func TestBatchSubcommandEndToEnd(t *testing.T) {
	dir, manifest := writeBatchFixture(t)
	outDir := filepath.Join(dir, "out")
	err := batch(context.Background(), []string{"-manifest", manifest, "-out-dir", outDir, "-workers", "2"})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}

	var agg struct {
		Jobs    int     `json:"jobs"`
		OK      int     `json:"ok"`
		Failed  int     `json:"failed"`
		Ratio   float64 `json:"ratio"`
		Results []struct {
			Name  string `json:"name"`
			Error string `json:"error"`
		} `json:"results"`
	}
	data, err := os.ReadFile(filepath.Join(outDir, "batch.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &agg); err != nil {
		t.Fatal(err)
	}
	if agg.Jobs != 2 || agg.OK != 2 || agg.Failed != 0 {
		t.Fatalf("aggregate = %+v", agg)
	}

	// Each job got a container and a run record; the container
	// round-trips against its source cubes.
	for _, name := range []string{"a", "b"} {
		raw, err := os.ReadFile(filepath.Join(outDir, name+".lzw"))
		if err != nil {
			t.Fatal(err)
		}
		res, err := lzwtc.DecodeResult(raw)
		if err != nil {
			t.Fatalf("%s.lzw: %v", name, err)
		}
		filled, err := lzwtc.Decompress(res)
		if err != nil {
			t.Fatalf("%s.lzw decompress: %v", name, err)
		}
		f, err := os.Open(filepath.Join(dir, name+".cubes"))
		if err != nil {
			t.Fatal(err)
		}
		orig, err := lzwtc.ReadTestSet(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if err := lzwtc.Verify(orig, filled); err != nil {
			t.Fatalf("%s round-trip: %v", name, err)
		}
		if _, err := os.Stat(filepath.Join(outDir, name+".json")); err != nil {
			t.Fatalf("missing run record: %v", err)
		}
	}
}

func TestBatchSubcommandSharded(t *testing.T) {
	dir, manifest := writeBatchFixture(t)
	outDir := filepath.Join(dir, "out")
	err := batch(context.Background(), []string{"-manifest", manifest, "-out-dir", outDir, "-shard-patterns", "3"})
	if err != nil {
		t.Fatalf("sharded batch: %v", err)
	}
	// b has 8 patterns -> 3 shards of <= 3 patterns, each its own
	// independently decompressible container.
	var rec lzwtc.RunRecord
	data, err := os.ReadFile(filepath.Join(outDir, "b.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.Shards) != 3 {
		t.Fatalf("b.json has %d shards, want 3", len(rec.Shards))
	}
	total := 0
	for k := range rec.Shards {
		raw, err := os.ReadFile(filepath.Join(outDir, "b.shard"+string(rune('0'+k))+".lzw"))
		if err != nil {
			t.Fatal(err)
		}
		res, err := lzwtc.DecodeResult(raw)
		if err != nil {
			t.Fatalf("shard %d: %v", k, err)
		}
		ts, err := lzwtc.Decompress(res)
		if err != nil {
			t.Fatalf("shard %d decompress: %v", k, err)
		}
		total += len(ts.Cubes)
	}
	if total != 8 {
		t.Fatalf("shards decompress to %d patterns, want 8", total)
	}
}

// TestBatchCanceledContext: a canceled context fails the batch with the
// cancellation, before any output is written.
func TestBatchCanceledContext(t *testing.T) {
	dir, manifest := writeBatchFixture(t)
	outDir := filepath.Join(dir, "out")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := batch(ctx, []string{"-manifest", manifest, "-out-dir", outDir})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := os.Stat(filepath.Join(outDir, "batch.json")); !os.IsNotExist(err) {
		t.Fatal("canceled batch still wrote batch.json")
	}
}

// TestStatsCanceledContext: stats honors a pre-canceled context at its
// first phase boundary.
func TestStatsCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := stats(ctx, []string{"-in", "does-not-matter"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestReadManifestOptionsAndDedup(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "m.txt")
	content := "x.cubes char=3 dict=8 entry=9 fill=repeat tie=widest full=reset\nsub/x.cubes\n"
	if err := os.WriteFile(manifest, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	jobs, err := readManifest(manifest, lzwtc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("%d jobs, want 2", len(jobs))
	}
	cfg := jobs[0].Cfg
	if cfg.CharBits != 3 || cfg.DictSize != 8 || cfg.EntryBits != 9 ||
		cfg.Fill != lzwtc.FillRepeat || cfg.Tie != lzwtc.TieWidest || cfg.Full != lzwtc.FullReset {
		t.Fatalf("options not applied: %+v", cfg)
	}
	if jobs[0].Name == jobs[1].Name {
		t.Fatalf("duplicate base names not deduplicated: %q vs %q", jobs[0].Name, jobs[1].Name)
	}
	if jobs[1].Name != "x-2" {
		t.Fatalf("second x named %q, want x-2", jobs[1].Name)
	}

	if _, err := readManifest(manifest, lzwtc.Config{}); err != nil {
		t.Fatalf("defaults pass through unvalidated: %v", err)
	}
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("x.cubes fill=purple\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readManifest(bad, lzwtc.DefaultConfig()); err == nil {
		t.Fatal("bad fill policy accepted")
	}
}
