// Command lzwtc compresses and decompresses scan test sets.
//
// Test sets are text files with one pattern of '0'/'1'/'X' per line.
// Compressed files are self-describing containers.
//
//	lzwtc compress  -in cubes.txt -out cubes.lzw [-char 7 -dict 1024 -entry 63]
//	lzwtc decompress -in cubes.lzw -out filled.txt
//	lzwtc info      -in cubes.lzw [-json]
//	lzwtc stats     -in cubes.txt [-json]      # full pipeline run record
//	lzwtc batch     -manifest jobs.txt -out-dir out/ [-workers N -policy collect]
//	lzwtc compare   -in cubes.txt              # all coders side by side
//	lzwtc verify    -cubes cubes.txt -filled filled.txt
//	lzwtc remote    {compress|decompress|stats|health} -server http://host:8077
//	lzwtc dict      {train|ls|rm|push|pull}    # shared-dictionary store
//	lzwtc trace     -in spans.jsonl            # render recorded trace spans
//
// Every pipeline subcommand also accepts the observability flags
// -telemetry {text|jsonl}, -telemetry-out, -metrics-out, -cpuprofile
// and -memprofile; a jsonl capture renders back through `lzwtc trace`.
// SIGINT cancels batch and stats runs cleanly.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"lzwtc"
	"lzwtc/internal/huffman"
	"lzwtc/internal/lz77"
	"lzwtc/internal/rle"
	"lzwtc/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	// SIGINT propagates as context cancellation into the long-running
	// subcommands: in-flight pool jobs drain, nothing half-written stays.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var err error
	switch os.Args[1] {
	case "compress":
		err = compress(os.Args[2:])
	case "decompress":
		err = decompress(os.Args[2:])
	case "info":
		err = info(os.Args[2:])
	case "stats":
		err = stats(ctx, os.Args[2:])
	case "batch":
		err = batch(ctx, os.Args[2:])
	case "compare":
		err = compare(os.Args[2:])
	case "verify":
		err = verify(os.Args[2:])
	case "remote":
		err = remote(ctx, os.Args[2:])
	case "dict":
		err = dictCmd(ctx, os.Args[2:])
	case "trace":
		err = traceCmd(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "lzwtc: interrupted")
			os.Exit(130)
		}
		fmt.Fprintf(os.Stderr, "lzwtc: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: lzwtc {compress|decompress|info|stats|batch|compare|verify|remote|dict|trace} [flags]")
	os.Exit(2)
}

func openIn(path string) (io.ReadCloser, error) {
	if path == "" || path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

func openOut(path string) (io.WriteCloser, error) {
	if path == "" || path == "-" {
		return nopWriteCloser{os.Stdout}, nil
	}
	return os.Create(path)
}

type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

// decodeAnyContainer parses either container generation into a Result
// (wire containers must be single-frame; sharded ones only decompress).
func decodeAnyContainer(data []byte) (*lzwtc.Result, error) {
	if lzwtc.IsWireContainer(data) {
		return lzwtc.DecodeWireResult(data)
	}
	return lzwtc.DecodeResult(data)
}

// lazyDictResolver opens the local dictionary store only when a
// container actually names a dictionary, so plain wire containers
// never touch (or create) the store directory.
type lazyDictResolver struct{ dir string }

func (l lazyDictResolver) ResolveDict(ctx context.Context, ref lzwtc.DictRef) (*lzwtc.Preload, error) {
	store, err := lzwtc.OpenDictStore(lzwtc.DictStoreConfig{Dir: l.dir})
	if err != nil {
		return nil, err
	}
	defer store.Close()
	return store.ResolveDict(ctx, ref)
}

// patternCount is a nil-safe pattern count for telemetry fields.
func patternCount(ts *lzwtc.TestSet) int {
	if ts == nil {
		return 0
	}
	return len(ts.Cubes)
}

func configFlags(fs *flag.FlagSet) *lzwtc.Config {
	cfg := lzwtc.DefaultConfig()
	fs.IntVar(&cfg.CharBits, "char", cfg.CharBits, "C_C: character size in bits")
	fs.IntVar(&cfg.DictSize, "dict", cfg.DictSize, "N: dictionary size in codes")
	fs.IntVar(&cfg.EntryBits, "entry", cfg.EntryBits, "C_MDATA: dictionary entry width in bits (0 = unbounded)")
	return &cfg
}

func compress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	in := fs.String("in", "-", "input cube file (- for stdin)")
	out := fs.String("out", "-", "output container (- for stdout)")
	wireOut := fs.Bool("wire", false, "write the versioned wire format (CRC framing) instead of the legacy container")
	dictID := fs.String("dict-id", "", "stored dictionary key to warm-start from (implies wire output with a 'D' frame)")
	dictStore := fs.String("dict-store", ".lzwtcdicts", "local dictionary store directory for -dict-id")
	cfg := configFlags(fs)
	opts := telemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rec, finish, err := opts.start()
	if err != nil {
		return err
	}

	r, err := openIn(*in)
	if err != nil {
		return err
	}
	defer r.Close()
	ts, err := lzwtc.ReadTestSet(r)
	if err != nil {
		return err
	}

	// A dictionary-warmed compression resolves the preload from the
	// local store and always writes the wire form: only the 'D' frame
	// can tell the decompressor which dictionary to reinstall.
	var pre *lzwtc.Preload
	var ref lzwtc.DictRef
	if *dictID != "" {
		key, err := lzwtc.ParseDictKey(*dictID)
		if err != nil {
			return err
		}
		store, err := lzwtc.OpenDictStore(lzwtc.DictStoreConfig{Dir: *dictStore})
		if err != nil {
			return err
		}
		defer store.Close()
		ent, err := store.Resolve(context.Background(), key)
		if err != nil {
			return err
		}
		pre, ref = ent.Pre, lzwtc.DictEntryRef(ent)
	}

	var res *lzwtc.Result
	if pre != nil {
		res, err = lzwtc.CompressPreloadedObservedCtx(context.Background(), ts, *cfg, pre, rec)
	} else {
		res, err = lzwtc.CompressObserved(ts, *cfg, rec)
	}
	if err != nil {
		return err
	}
	w, err := openOut(*out)
	if err != nil {
		return err
	}
	defer w.Close()
	switch {
	case pre != nil:
		err = res.WriteWireDictResult(w, ref)
	case *wireOut:
		err = res.WriteWire(w)
	default:
		_, err = w.Write(res.Encode())
	}
	if err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "compressed %d patterns x %d bits: %d -> %d bits (%.2f%%)\n",
		res.Patterns, res.Width, res.OriginalBits, res.CompressedBits(), 100*res.Ratio())
	return finish()
}

func decompress(args []string) error {
	fs := flag.NewFlagSet("decompress", flag.ExitOnError)
	in := fs.String("in", "-", "input container (- for stdin)")
	out := fs.String("out", "-", "output cube file (- for stdout)")
	dictStore := fs.String("dict-store", ".lzwtcdicts", "local dictionary store directory for containers carrying a 'D' frame")
	opts := telemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rec, finish, err := opts.start()
	if err != nil {
		return err
	}

	r, err := openIn(*in)
	if err != nil {
		return err
	}
	defer r.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	// Both container generations decompress: the versioned wire format
	// (CRC-framed, the batch and service default) is sniffed by magic,
	// anything else is tried as a legacy LZWTC1/TS container. A wire
	// container naming a shared dictionary resolves it through the
	// local store; plain containers never open the store.
	var ts *lzwtc.TestSet
	sp := rec.Span("decompress")
	if lzwtc.IsWireContainer(data) {
		ts, err = lzwtc.DecompressWireDictObserved(context.Background(), bytes.NewReader(data),
			lazyDictResolver{dir: *dictStore}, rec)
	} else {
		var res *lzwtc.Result
		res, err = lzwtc.DecodeResult(data)
		if err == nil {
			ts, err = lzwtc.Decompress(res)
		}
	}
	sp.End(telemetry.F("patterns", patternCount(ts)))
	if err != nil {
		return err
	}
	w, err := openOut(*out)
	if err != nil {
		return err
	}
	defer w.Close()
	if err := ts.WriteCubes(w); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	return finish()
}

func info(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "-", "input container (- for stdin)")
	jsonOut := fs.Bool("json", false, "emit the run record as JSON (same schema as stats)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	r, err := openIn(*in)
	if err != nil {
		return err
	}
	defer r.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	res, err := decodeAnyContainer(data)
	if err != nil {
		return err
	}
	if *jsonOut {
		return infoJSON(res)
	}
	cfg := res.Stream.Cfg
	fmt.Printf("patterns:        %d x %d bits (%d bits total)\n", res.Patterns, res.Width, res.OriginalBits)
	fmt.Printf("configuration:   C_C=%d  N=%d (C_E=%d)  C_MDATA=%d  fill=%v tie=%v full=%v\n",
		cfg.CharBits, cfg.DictSize, cfg.CodeBits(), cfg.EntryBits, cfg.Fill, cfg.Tie, cfg.Full)
	fmt.Printf("compressed:      %d codes, %d bits (%.2f%% compression)\n",
		len(res.Stream.Codes), res.CompressedBits(), 100*res.Ratio())
	if cfg.EntryBits > 0 {
		fmt.Printf("decompressor:    %d x %d-bit dictionary memory (%d bits)\n",
			cfg.DictSize, cfg.LenBits()+cfg.EntryBits, cfg.MemoryBits())
	}
	return nil
}

func compare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	in := fs.String("in", "-", "input cube file (- for stdin)")
	cfg := configFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	r, err := openIn(*in)
	if err != nil {
		return err
	}
	defer r.Close()
	ts, err := lzwtc.ReadTestSet(r)
	if err != nil {
		return err
	}
	res, err := lzwtc.Compress(ts, *cfg)
	if err != nil {
		return err
	}
	stream := ts.Serialize()
	l7, err := lz77.Compress(stream, lz77.DefaultConfig())
	if err != nil {
		return err
	}
	gl, err := rle.Compress(stream, rle.Config{Kind: rle.Golomb})
	if err != nil {
		return err
	}
	fd, err := rle.Compress(stream, rle.Config{Kind: rle.FDR})
	if err != nil {
		return err
	}
	al, err := rle.Compress(stream, rle.Config{Kind: rle.Alternating})
	if err != nil {
		return err
	}
	hf, err := huffman.Compress(stream, huffman.DefaultConfig())
	if err != nil {
		return err
	}
	fmt.Printf("%d patterns x %d bits, %.1f%% don't-cares\n", len(ts.Cubes), ts.Width, 100*ts.XDensity())
	fmt.Printf("  LZW (dynamic X): %7.2f%%\n", 100*res.Ratio())
	fmt.Printf("  LZ77:            %7.2f%%\n", 100*l7.Stats.Ratio())
	fmt.Printf("  RLE Golomb M=%-4d%7.2f%%\n", gl.Stats.ChosenM, 100*gl.Stats.Ratio())
	fmt.Printf("  RLE FDR:         %7.2f%%\n", 100*fd.Stats.Ratio())
	fmt.Printf("  RLE alternating: %7.2f%%\n", 100*al.Stats.Ratio())
	fmt.Printf("  Huffman (sel.):  %7.2f%%\n", 100*hf.Stats.Ratio())
	return nil
}

func verify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	cubesPath := fs.String("cubes", "", "original cube file")
	filledPath := fs.String("filled", "", "decompressed (fully specified) cube file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cr, err := openIn(*cubesPath)
	if err != nil {
		return err
	}
	defer cr.Close()
	cubes, err := lzwtc.ReadTestSet(cr)
	if err != nil {
		return err
	}
	fr, err := openIn(*filledPath)
	if err != nil {
		return err
	}
	defer fr.Close()
	filled, err := lzwtc.ReadTestSet(fr)
	if err != nil {
		return err
	}
	if err := lzwtc.Verify(cubes, filled); err != nil {
		return err
	}
	fmt.Printf("ok: %d patterns, every specified bit preserved\n", len(cubes.Cubes))
	return nil
}
