// Command experiments regenerates the paper's evaluation: every table
// and figure of Section 6.
//
//	go run ./cmd/experiments -run all
//	go run ./cmd/experiments -run table1
//	go run ./cmd/experiments -run table3 -md
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lzwtc/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment to run: all, "+strings.Join(experiments.Names(), ", "))
	md := flag.Bool("md", false, "emit GitHub-flavored markdown instead of fixed-width text")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}

	names := experiments.Names()
	if *run != "all" {
		names = strings.Split(*run, ",")
	}
	for i, name := range names {
		t, err := experiments.Run(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		if i > 0 {
			fmt.Println()
		}
		if *md {
			fmt.Print(t.Markdown())
		} else {
			fmt.Print(t.String())
		}
	}
}
