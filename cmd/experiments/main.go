// Command experiments regenerates the paper's evaluation: every table
// and figure of Section 6.
//
//	go run ./cmd/experiments -run all
//	go run ./cmd/experiments -run table1
//	go run ./cmd/experiments -run table3 -md
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"lzwtc/internal/experiments"
	"lzwtc/internal/telemetry"
)

func main() {
	run := flag.String("run", "all", "experiment to run: all, "+strings.Join(experiments.Names(), ", "))
	md := flag.Bool("md", false, "emit GitHub-flavored markdown instead of fixed-width text")
	list := flag.Bool("list", false, "list available experiments and exit")
	workers := flag.Int("workers", 0, "worker bound for pool-backed sweep tables (0 = GOMAXPROCS)")
	tel := flag.String("telemetry", "", "event stream format to stderr: text or jsonl (off when empty)")
	metricsOut := flag.String("metrics-out", "", "write Prometheus text exposition here on exit")
	flag.Parse()

	// SIGINT cancels the run: pool-backed sweeps stop dispatching and
	// drain, remaining experiments are skipped.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}

	var rec *telemetry.Recorder
	var reg *telemetry.Registry
	if *tel != "" || *metricsOut != "" {
		reg = telemetry.NewRegistry()
		var sinks []telemetry.Sink
		switch *tel {
		case "":
		case "text":
			sinks = append(sinks, telemetry.NewTextSink(os.Stderr))
		case "jsonl":
			sinks = append(sinks, telemetry.NewJSONLSink(os.Stderr))
		default:
			fmt.Fprintf(os.Stderr, "experiments: unknown -telemetry format %q (want text or jsonl)\n", *tel)
			os.Exit(2)
		}
		rec = telemetry.New(reg, sinks...)
	}

	names := experiments.Names()
	if *run != "all" {
		names = strings.Split(*run, ",")
	}
	for i, name := range names {
		t, err := experiments.RunObservedCtx(ctx, strings.TrimSpace(name), *workers, rec)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "experiments: interrupted")
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		if i > 0 {
			fmt.Println()
		}
		if *md {
			fmt.Print(t.Markdown())
		} else {
			fmt.Print(t.String())
		}
	}

	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err == nil {
			err = reg.Snapshot().WritePrometheus(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: writing metrics: %v\n", err)
			os.Exit(1)
		}
	}
}
