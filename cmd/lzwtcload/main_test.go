package main

import (
	"bytes"
	"math"
	"testing"

	"lzwtc"
)

func TestPercentileNearestRank(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.50, 5},
		{0.90, 9},
		{0.99, 10},
		{1.00, 10},
		{0.01, 1},
	}
	for _, tc := range cases {
		if got := percentile(sorted, tc.q); got != tc.want {
			t.Errorf("percentile(q=%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(empty) = %g, want 0", got)
	}
	if got := percentile([]float64{7}, 0.99); got != 7 {
		t.Errorf("percentile(single) = %g, want 7", got)
	}
}

func TestParseHistograms(t *testing.T) {
	text := `# HELP lzwtcd_request_seconds request latency
# TYPE lzwtcd_request_seconds histogram
lzwtcd_request_seconds_bucket{le="0.005"} 2
lzwtcd_request_seconds_bucket{le="0.05"} 8
lzwtcd_request_seconds_bucket{le="0.5"} 10
lzwtcd_request_seconds_bucket{le="+Inf"} 10
lzwtcd_request_seconds_sum 0.42
lzwtcd_request_seconds_count 10
lzwtc_jobs_duration_seconds_bucket{le="1"} 0
lzwtc_jobs_duration_seconds_bucket{le="+Inf"} 3
lzwtc_jobs_duration_seconds_sum 9.9
lzwtc_jobs_duration_seconds_count 3
lzwtcd_requests_total 44
`
	hists := parseHistograms(text)
	h := hists["lzwtcd_request_seconds"]
	if h == nil {
		t.Fatal("lzwtcd_request_seconds not parsed")
	}
	if h.count != 10 || len(h.bounds) != 4 {
		t.Fatalf("count=%d bounds=%v", h.count, h.bounds)
	}
	if got := h.quantile(0.50); got != 0.05 {
		t.Errorf("p50 = %g, want 0.05 (first bucket covering rank 5)", got)
	}
	if got := h.quantile(0.10); got != 0.005 {
		t.Errorf("p10 = %g, want 0.005", got)
	}
	if got := h.quantile(0.99); got != 0.5 {
		t.Errorf("p99 = %g, want 0.5", got)
	}
	j := hists["lzwtc_jobs_duration_seconds"]
	if j == nil || j.count != 3 {
		t.Fatalf("jobs histogram: %+v", j)
	}
	if got := j.quantile(0.5); !math.IsInf(got, 1) {
		t.Errorf("jobs p50 = %g, want +Inf (only the overflow bucket is populated)", got)
	}
	if _, ok := hists["lzwtcd_requests_total"]; ok {
		t.Error("plain counter leaked into the histogram map")
	}
}

func TestParseBucketAndCountLines(t *testing.T) {
	name, bound, count, ok := parseBucketLine(`x_seconds_bucket{le="0.25"} 7`)
	if !ok || name != "x_seconds" || bound != 0.25 || count != 7 {
		t.Fatalf("bucket line: %q %g %d %v", name, bound, count, ok)
	}
	if _, _, _, ok := parseBucketLine(`x_seconds_bucket{le="nope"} 7`); ok {
		t.Error("garbage bound accepted")
	}
	if _, _, _, ok := parseBucketLine(`x_seconds_sum 1.5`); ok {
		t.Error("sum line accepted as bucket")
	}
	name, count, ok = parseCountLine("x_seconds_count 12")
	if !ok || name != "x_seconds" || count != 12 {
		t.Fatalf("count line: %q %d %v", name, count, ok)
	}
	if _, _, ok := parseCountLine(`x_seconds_bucket{le="1"} 12`); ok {
		t.Error("bucket line accepted as count")
	}
}

func TestQuantileEmptyHistogram(t *testing.T) {
	var h histogram
	if got := h.quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", got)
	}
}

func TestFmtBound(t *testing.T) {
	if got := fmtBound(math.Inf(1)); got != "+Inf" {
		t.Errorf("fmtBound(+Inf) = %q", got)
	}
	if got := fmtBound(0.05); got != "0.05" {
		t.Errorf("fmtBound(0.05) = %q", got)
	}
}

// TestSyntheticSetDeterministic: the generator is a fixed-seed LCG, so
// two runs must produce identical sets — the load generator depends on
// this to byte-compare every response against one local reference.
func TestSyntheticSetDeterministic(t *testing.T) {
	a, err := syntheticSet(64, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := syntheticSet(64, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cubes) != 64 || a.Width != 32 {
		t.Fatalf("set shape: %d patterns, width %d", len(a.Cubes), a.Width)
	}
	var wa, wb bytes.Buffer
	if err := a.WriteCubes(&wa); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteCubes(&wb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wa.Bytes(), wb.Bytes()) {
		t.Fatal("syntheticSet is not deterministic across calls")
	}
	// The set must actually contain don't-care bits, or the load test
	// would not exercise the X-aware dictionary paths.
	if !bytes.Contains(wa.Bytes(), []byte("X")) {
		t.Fatal("synthetic set has no X bits")
	}
	// And it must compress cleanly with the default config.
	if _, err := lzwtc.Compress(a, lzwtc.DefaultConfig()); err != nil {
		t.Fatalf("synthetic set does not compress: %v", err)
	}
}
