// Command lzwtcload drives a running lzwtcd with many concurrent
// clients and verifies every answer, turning "the async tier works" in
// a test into "the async tier works under load" against a real server.
//
// Usage:
//
//	lzwtcload -server http://127.0.0.1:8077 [-clients 200] [-requests 1]
//	          [-mode async|sync] [-in cubes.txt] [-patterns 64] [-width 32]
//	          [-shard 0] [-tenants 1] [-poll 10ms] [-timeout 2m] [-retries 8]
//
// Each client submits -requests compressions (through the async job
// tier in async mode, POST /v1/compress in sync mode) and byte-compares
// every container against a locally computed reference: a lost,
// truncated or corrupted job is a hard failure and a nonzero exit.
// Quota 429s are expected under pressure — they are absorbed by the
// client's Retry-After backoff and reported as "throttled", never as
// failures. -tenants > 1 spreads clients across that many API keys.
//
// The report has two latency views: percentiles measured by this
// process (whole-operation wall clock, including queue time and
// polling), and percentiles estimated from the server's own /metrics
// histograms (lzwtcd_request_seconds, lzwtc_jobs_duration_seconds), so
// client-observed SLOs can be checked against server-side accounting
// in one run.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lzwtc"
	"lzwtc/client"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lzwtcload:", err)
		os.Exit(1)
	}
}

// tally aggregates outcomes across all client goroutines.
type tally struct {
	ok        atomic.Int64
	failed    atomic.Int64
	corrupt   atomic.Int64
	throttled atomic.Int64

	mu        sync.Mutex
	latencies []float64 // seconds per successful operation
	errs      []string  // first few failure messages, for the report
}

func (t *tally) observe(seconds float64) {
	t.mu.Lock()
	t.latencies = append(t.latencies, seconds)
	t.mu.Unlock()
}

func (t *tally) fail(err error) {
	t.failed.Add(1)
	t.mu.Lock()
	if len(t.errs) < 5 {
		t.errs = append(t.errs, err.Error())
	}
	t.mu.Unlock()
}

func run(ctx context.Context, args []string, out *os.File) error {
	fs := flag.NewFlagSet("lzwtcload", flag.ContinueOnError)
	serverURL := fs.String("server", "http://127.0.0.1:8077", "lzwtcd base URL")
	clients := fs.Int("clients", 200, "concurrent clients")
	requests := fs.Int("requests", 1, "operations per client")
	mode := fs.String("mode", "async", "async (job tier) or sync (/v1/compress)")
	in := fs.String("in", "", "cube file to compress (default: synthetic input)")
	patterns := fs.Int("patterns", 64, "synthetic input patterns (when -in is unset)")
	width := fs.Int("width", 32, "synthetic input pattern width")
	shard := fs.Int("shard", 0, "patterns per shard frame (0 = single frame)")
	tenants := fs.Int("tenants", 1, "spread clients across this many API keys")
	poll := fs.Duration("poll", 10*time.Millisecond, "async status poll interval")
	timeout := fs.Duration("timeout", 2*time.Minute, "whole-run deadline")
	retries := fs.Int("retries", 8, "client retry attempts (429s consume these)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *mode != "async" && *mode != "sync" {
		return fmt.Errorf("unknown -mode %q (want async or sync)", *mode)
	}
	if *clients <= 0 || *requests <= 0 {
		return fmt.Errorf("-clients and -requests must be positive")
	}

	ts, err := loadInput(*in, *patterns, *width)
	if err != nil {
		return err
	}
	cfg := lzwtc.DefaultConfig()
	expected, err := referenceContainer(ctx, ts, cfg, *shard)
	if err != nil {
		return fmt.Errorf("computing reference container: %w", err)
	}

	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()

	var tl tally
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		key := fmt.Sprintf("load-%d", i%*tenants)
		go func(ctx context.Context, key string) {
			defer wg.Done()
			cl := client.New(*serverURL, client.Options{
				Retries: *retries,
				APIKey:  key,
				OnBackpressure: func(time.Duration) {
					tl.throttled.Add(1)
				},
			})
			for r := 0; r < *requests; r++ {
				if ctx.Err() != nil {
					tl.fail(fmt.Errorf("run deadline hit with work remaining: %w", ctx.Err()))
					return
				}
				runOne(ctx, cl, *mode, ts, cfg, *shard, *poll, expected, &tl)
			}
		}(ctx, key)
	}
	wg.Wait()
	elapsed := time.Since(start)

	report(out, &tl, elapsed, *mode)
	if err := serverPercentiles(ctx, *serverURL, *retries, out); err != nil {
		fmt.Fprintf(out, "server metrics unavailable: %v\n", err)
	}
	if tl.failed.Load() > 0 || tl.corrupt.Load() > 0 {
		return fmt.Errorf("%d failed, %d corrupted of %d operations",
			tl.failed.Load(), tl.corrupt.Load(), int64(*clients**requests))
	}
	return nil
}

// runOne performs one compression (async or sync) and verifies the
// container byte-for-byte.
func runOne(ctx context.Context, cl *client.Client, mode string, ts *lzwtc.TestSet,
	cfg lzwtc.Config, shard int, poll time.Duration, expected []byte, tl *tally) {
	opStart := time.Now()
	var data []byte
	var err error
	if mode == "async" {
		data, err = compressAsync(ctx, cl, ts, cfg, shard, poll)
	} else {
		data, err = cl.Compress(ctx, ts, cfg, client.CompressOptions{ShardPatterns: shard})
	}
	if err != nil {
		tl.fail(err)
		return
	}
	if !bytes.Equal(data, expected) {
		tl.corrupt.Add(1)
		return
	}
	tl.ok.Add(1)
	tl.observe(time.Since(opStart).Seconds())
}

// compressAsync is submit-wait-fetch with an explicit poll interval
// (client.CompressJob hardcodes its own default).
func compressAsync(ctx context.Context, cl *client.Client, ts *lzwtc.TestSet,
	cfg lzwtc.Config, shard int, poll time.Duration) ([]byte, error) {
	st, err := cl.SubmitCompressJob(ctx, ts, cfg, client.CompressOptions{ShardPatterns: shard})
	if err != nil {
		return nil, err
	}
	if _, err := cl.WaitJob(ctx, st.ID, poll); err != nil {
		return nil, err
	}
	return cl.JobResult(ctx, st.ID)
}

// loadInput reads the cube file, or generates a deterministic synthetic
// set (every run compresses identical input, so every response must be
// identical too).
func loadInput(path string, patterns, width int) (*lzwtc.TestSet, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return lzwtc.ReadTestSet(f)
	}
	return syntheticSet(patterns, width)
}

// syntheticSet builds patterns of 0/1/X from a fixed-seed LCG: varied
// enough to exercise the dictionary, deterministic across runs and
// processes.
func syntheticSet(patterns, width int) (*lzwtc.TestSet, error) {
	if patterns <= 0 || width <= 0 {
		return nil, fmt.Errorf("synthetic input needs positive -patterns and -width")
	}
	ts := lzwtc.NewTestSet(width)
	seed := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 33
	}
	line := make([]byte, width)
	for p := 0; p < patterns; p++ {
		for i := range line {
			switch next() % 4 {
			case 0:
				line[i] = '0'
			case 1:
				line[i] = '1'
			default:
				line[i] = 'X' // half don't-cares: the paper's sweet spot
			}
		}
		v, err := lzwtc.ParsePattern(string(line))
		if err != nil {
			return nil, err
		}
		if err := ts.Add(v); err != nil {
			return nil, err
		}
	}
	return ts, nil
}

// referenceContainer computes the container lzwtcd should answer with,
// through the same batch/sharded pipeline the server runs.
func referenceContainer(ctx context.Context, ts *lzwtc.TestSet, cfg lzwtc.Config, shard int) ([]byte, error) {
	var buf bytes.Buffer
	if shard > 0 {
		sr, err := lzwtc.CompressSharded(ctx, ts, cfg, shard, lzwtc.BatchOptions{})
		if err != nil {
			return nil, err
		}
		if err := lzwtc.WriteWireSharded(&buf, sr); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	res, err := lzwtc.Compress(ts, cfg)
	if err != nil {
		return nil, err
	}
	if err := res.WriteWire(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// report prints the client-side view.
func report(out *os.File, tl *tally, elapsed time.Duration, mode string) {
	ok, failed, corrupt, throttled := tl.ok.Load(), tl.failed.Load(), tl.corrupt.Load(), tl.throttled.Load()
	total := ok + failed + corrupt
	fmt.Fprintf(out, "mode:       %s\n", mode)
	fmt.Fprintf(out, "operations: %d ok, %d failed, %d corrupted (of %d)\n", ok, failed, corrupt, total)
	fmt.Fprintf(out, "throttled:  %d (429s absorbed by Retry-After backoff)\n", throttled)
	fmt.Fprintf(out, "wall clock: %.2fs (%.1f ops/s)\n", elapsed.Seconds(), float64(ok)/elapsed.Seconds())
	tl.mu.Lock()
	lat := append([]float64(nil), tl.latencies...)
	errs := append([]string(nil), tl.errs...)
	tl.mu.Unlock()
	if len(lat) > 0 {
		sort.Float64s(lat)
		fmt.Fprintf(out, "latency:    p50 %.4fs  p90 %.4fs  p99 %.4fs  max %.4fs (client-observed)\n",
			percentile(lat, 0.50), percentile(lat, 0.90), percentile(lat, 0.99), lat[len(lat)-1])
	}
	for _, e := range errs {
		fmt.Fprintf(out, "error:      %s\n", e)
	}
}

// percentile reads the q-quantile (0 < q <= 1) from sorted samples by
// nearest-rank.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// serverPercentiles scrapes /metrics and reports percentile estimates
// for the server-side latency histograms.
func serverPercentiles(ctx context.Context, serverURL string, retries int, out *os.File) error {
	cl := client.New(serverURL, client.Options{Retries: retries})
	text, err := cl.Metrics(ctx)
	if err != nil {
		return err
	}
	hists := parseHistograms(text)
	for _, name := range []string{"lzwtcd_request_seconds", "lzwtc_jobs_duration_seconds"} {
		h, ok := hists[name]
		if !ok || h.count == 0 {
			continue
		}
		fmt.Fprintf(out, "%s: p50 %ss  p90 %ss  p99 %ss (%d samples, server-side)\n",
			name, fmtBound(h.quantile(0.50)), fmtBound(h.quantile(0.90)), fmtBound(h.quantile(0.99)), h.count)
	}
	return nil
}

// histogram is one parsed Prometheus histogram: cumulative bucket
// counts by upper bound, in exposition order.
type histogram struct {
	bounds []float64 // +Inf last
	counts []int64   // cumulative
	count  int64
}

// quantile estimates the q-quantile as the upper bound of the first
// bucket whose cumulative count covers rank q — the standard
// histogram_quantile coarsening, biased up by at most one bucket.
func (h *histogram) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	for i, c := range h.counts {
		if c >= rank {
			return h.bounds[i]
		}
	}
	return math.Inf(1)
}

// parseHistograms extracts every histogram's bucket series from a
// Prometheus text exposition (the subset lzwtcd emits: no labels other
// than le, integer bucket counts).
func parseHistograms(text string) map[string]*histogram {
	out := map[string]*histogram{}
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, bound, count, ok := parseBucketLine(line)
		if ok {
			h := out[name]
			if h == nil {
				h = &histogram{}
				out[name] = h
			}
			h.bounds = append(h.bounds, bound)
			h.counts = append(h.counts, count)
			continue
		}
		if name, count, ok := parseCountLine(line); ok {
			h := out[name]
			if h == nil {
				h = &histogram{}
				out[name] = h
			}
			h.count = count
		}
	}
	return out
}

// parseBucketLine parses `name_bucket{le="0.05"} 12`.
func parseBucketLine(line string) (name string, bound float64, count int64, ok bool) {
	open := strings.Index(line, `_bucket{le="`)
	if open < 0 {
		return "", 0, 0, false
	}
	name = line[:open]
	rest := line[open+len(`_bucket{le="`):]
	close := strings.Index(rest, `"}`)
	if close < 0 {
		return "", 0, 0, false
	}
	boundStr, countStr := rest[:close], strings.TrimSpace(rest[close+2:])
	if boundStr == "+Inf" {
		bound = math.Inf(1)
	} else {
		var err error
		bound, err = strconv.ParseFloat(boundStr, 64)
		if err != nil {
			return "", 0, 0, false
		}
	}
	count, err := strconv.ParseInt(countStr, 10, 64)
	if err != nil {
		return "", 0, 0, false
	}
	return name, bound, count, true
}

// parseCountLine parses `name_count 20`.
func parseCountLine(line string) (name string, count int64, ok bool) {
	idx := strings.Index(line, "_count ")
	if idx < 0 {
		return "", 0, false
	}
	name = line[:idx]
	if strings.ContainsAny(name, " {") {
		return "", 0, false
	}
	count, err := strconv.ParseInt(strings.TrimSpace(line[idx+len("_count "):]), 10, 64)
	if err != nil {
		return "", 0, false
	}
	return name, count, true
}

// fmtBound renders a bucket bound, keeping +Inf readable.
func fmtBound(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
