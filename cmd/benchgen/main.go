// Command benchgen emits the calibrated benchmark workloads: test-cube
// sets matching the scan geometry and don't-care density of the paper's
// ISCAS89/ITC99 evaluation circuits.
//
//	benchgen -list
//	benchgen -circuit s13207 -out s13207.cubes
package main

import (
	"flag"
	"fmt"
	"os"

	"lzwtc/internal/bench"
)

func main() {
	list := flag.Bool("list", false, "list available circuits and exit")
	name := flag.String("circuit", "", "circuit to generate (see -list)")
	out := flag.String("out", "-", "cube output file (- for stdout)")
	flag.Parse()

	if *list {
		fmt.Printf("%-8s %-8s %9s %9s %11s %6s\n", "name", "suite", "scan len", "patterns", "don't-cares", "N")
		for _, p := range bench.Profiles() {
			fmt.Printf("%-8s %-8s %9d %9d %10.2f%% %6d\n",
				p.Name, p.Suite, p.ScanLen, p.Patterns, 100*p.XDensity, p.DictSize)
		}
		return
	}
	p, err := bench.ByName(*name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v (try -list)\n", err)
		os.Exit(1)
	}
	cs := p.Generate()
	w := os.Stdout
	if *out != "-" && *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := cs.WriteCubes(w); err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "%s: %d patterns x %d bits, %.2f%% don't-cares (target %.2f%%)\n",
		p.Name, len(cs.Cubes), cs.Width, 100*cs.XDensity(), 100*p.XDensity)
}
