// Command benchgen emits the calibrated benchmark workloads: test-cube
// sets matching the scan geometry and don't-care density of the paper's
// ISCAS89/ITC99 evaluation circuits.
//
// It also hosts the single-stream performance trajectory: -bench runs
// the fixed C_C × X-density grid of internal/bench and writes a
// BENCH_*.json report; -check diffs a fresh run against a committed
// baseline and exits non-zero on regression (the CI perf gate).
//
//	benchgen -list
//	benchgen -circuit s13207 -out s13207.cubes
//	benchgen -all -dir workloads/ -workers 4
//	benchgen -bench -benchtime 1s -out BENCH_4.json
//	benchgen -bench -check BENCH_4.json -tolerance 0.10
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"lzwtc/internal/bench"
	"lzwtc/internal/parallel"
)

func main() {
	list := flag.Bool("list", false, "list available circuits and exit")
	name := flag.String("circuit", "", "circuit to generate (see -list)")
	out := flag.String("out", "-", "output file (- for stdout): cubes, or the JSON report under -bench")
	all := flag.Bool("all", false, "generate every circuit concurrently (requires -dir)")
	dir := flag.String("dir", "", "output directory for -all (one <circuit>.cubes per profile)")
	workers := flag.Int("workers", 0, "worker bound for -all (0 = GOMAXPROCS)")
	doBench := flag.Bool("bench", false, "run the single-stream perf grid instead of generating cubes")
	benchTime := flag.Duration("benchtime", 250*time.Millisecond, "minimum timed duration per direction per case under -bench")
	benchBits := flag.Int("benchbits", bench.DefaultPerfBits, "stream length in bits per case under -bench")
	check := flag.String("check", "", "baseline BENCH_*.json to gate a fresh -bench run against")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional compress ns/char regression under -check")
	flag.Parse()

	if *doBench {
		if err := runBench(*out, *check, *benchBits, *benchTime, *tolerance); err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		fmt.Printf("%-8s %-8s %9s %9s %11s %6s\n", "name", "suite", "scan len", "patterns", "don't-cares", "N")
		for _, p := range bench.Profiles() {
			fmt.Printf("%-8s %-8s %9d %9d %10.2f%% %6d\n",
				p.Name, p.Suite, p.ScanLen, p.Patterns, 100*p.XDensity, p.DictSize)
		}
		return
	}
	if *all {
		if err := generateAll(*dir, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	p, err := bench.ByName(*name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v (try -list)\n", err)
		os.Exit(1)
	}
	cs := p.Generate()
	w := os.Stdout
	if *out != "-" && *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := cs.WriteCubes(w); err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "%s: %d patterns x %d bits, %.2f%% don't-cares (target %.2f%%)\n",
		p.Name, len(cs.Cubes), cs.Width, 100*cs.XDensity(), 100*p.XDensity)
}

// runBench measures the perf grid. With an -out path it writes the JSON
// report (the trajectory point future PRs diff against); with -check it
// instead compares the fresh run against the committed baseline and
// fails on compress ns/char regressions beyond the tolerance.
func runBench(out, check string, bits int, benchTime time.Duration, tolerance float64) error {
	rep, err := bench.RunPerf(bits, benchTime)
	if err != nil {
		return err
	}
	rep.Generated = time.Now().UTC().Format(time.RFC3339)

	if check != "" {
		data, err := os.ReadFile(check)
		if err != nil {
			return fmt.Errorf("reading baseline: %w", err)
		}
		var baseline bench.PerfReport
		if err := json.Unmarshal(data, &baseline); err != nil {
			return fmt.Errorf("parsing baseline %s: %w", check, err)
		}
		lines, failures := bench.ComparePerf(&baseline, rep, tolerance)
		for _, l := range lines {
			fmt.Println(l)
		}
		if len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintf(os.Stderr, "benchgen: FAIL %s\n", f)
			}
			return fmt.Errorf("%d case(s) regressed beyond %.0f%%", len(failures), 100*tolerance)
		}
		fmt.Printf("perf gate OK: %d cases within %.0f%% of %s\n", len(lines), 100*tolerance, check)
		return nil
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out != "-" && out != "" {
		if err := os.WriteFile(out, data, 0o644); err != nil {
			return err
		}
	} else if _, err := os.Stdout.Write(data); err != nil {
		return err
	}
	for _, r := range rep.Results {
		fmt.Fprintf(os.Stderr, "%-9s compress %8.2f ns/char %8.2f MB/s %9.1f allocs/op   decompress %7.2f ns/char %8.2f MB/s %7.1f allocs/op\n",
			r.Case.Name, r.Compress.NsPerChar, r.Compress.MBPerSec, r.Compress.AllocsPerOp,
			r.Decompress.NsPerChar, r.Decompress.MBPerSec, r.Decompress.AllocsPerOp)
	}
	return nil
}

// generateAll writes every profile's cube set into dir through the
// batch pool; generation and file writes run concurrently, one file per
// circuit. SIGINT cancels cleanly mid-batch.
func generateAll(dir string, workers int) error {
	if dir == "" {
		return fmt.Errorf("-all requires -dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	profiles := bench.Profiles()
	outcomes, err := parallel.Map(ctx, profiles, parallel.Options{Workers: workers, Policy: parallel.CollectAll},
		func(_ context.Context, _ int, p bench.Profile) (string, error) {
			cs := p.Generate()
			path := filepath.Join(dir, p.Name+".cubes")
			f, err := os.Create(path)
			if err != nil {
				return "", err
			}
			if err := cs.WriteCubes(f); err != nil {
				if cerr := f.Close(); cerr != nil {
					err = fmt.Errorf("%w (also closing %s: %v)", err, path, cerr)
				}
				return "", err
			}
			if err := f.Close(); err != nil {
				return "", err
			}
			return path, nil
		})
	if err != nil {
		return err
	}
	failed := 0
	for i, o := range outcomes {
		if o.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "benchgen: %s: %v\n", profiles[i].Name, o.Err)
			continue
		}
		fmt.Fprintf(os.Stderr, "%s: %d patterns x %d bits -> %s\n",
			profiles[i].Name, profiles[i].Patterns, profiles[i].ScanLen, o.Value)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d circuits failed", failed, len(profiles))
	}
	return nil
}
