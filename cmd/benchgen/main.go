// Command benchgen emits the calibrated benchmark workloads: test-cube
// sets matching the scan geometry and don't-care density of the paper's
// ISCAS89/ITC99 evaluation circuits.
//
//	benchgen -list
//	benchgen -circuit s13207 -out s13207.cubes
//	benchgen -all -dir workloads/ -workers 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"

	"lzwtc/internal/bench"
	"lzwtc/internal/parallel"
)

func main() {
	list := flag.Bool("list", false, "list available circuits and exit")
	name := flag.String("circuit", "", "circuit to generate (see -list)")
	out := flag.String("out", "-", "cube output file (- for stdout)")
	all := flag.Bool("all", false, "generate every circuit concurrently (requires -dir)")
	dir := flag.String("dir", "", "output directory for -all (one <circuit>.cubes per profile)")
	workers := flag.Int("workers", 0, "worker bound for -all (0 = GOMAXPROCS)")
	flag.Parse()

	if *list {
		fmt.Printf("%-8s %-8s %9s %9s %11s %6s\n", "name", "suite", "scan len", "patterns", "don't-cares", "N")
		for _, p := range bench.Profiles() {
			fmt.Printf("%-8s %-8s %9d %9d %10.2f%% %6d\n",
				p.Name, p.Suite, p.ScanLen, p.Patterns, 100*p.XDensity, p.DictSize)
		}
		return
	}
	if *all {
		if err := generateAll(*dir, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	p, err := bench.ByName(*name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v (try -list)\n", err)
		os.Exit(1)
	}
	cs := p.Generate()
	w := os.Stdout
	if *out != "-" && *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := cs.WriteCubes(w); err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "%s: %d patterns x %d bits, %.2f%% don't-cares (target %.2f%%)\n",
		p.Name, len(cs.Cubes), cs.Width, 100*cs.XDensity(), 100*p.XDensity)
}

// generateAll writes every profile's cube set into dir through the
// batch pool; generation and file writes run concurrently, one file per
// circuit. SIGINT cancels cleanly mid-batch.
func generateAll(dir string, workers int) error {
	if dir == "" {
		return fmt.Errorf("-all requires -dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	profiles := bench.Profiles()
	outcomes, err := parallel.Map(ctx, profiles, parallel.Options{Workers: workers, Policy: parallel.CollectAll},
		func(_ context.Context, _ int, p bench.Profile) (string, error) {
			cs := p.Generate()
			path := filepath.Join(dir, p.Name+".cubes")
			f, err := os.Create(path)
			if err != nil {
				return "", err
			}
			if err := cs.WriteCubes(f); err != nil {
				if cerr := f.Close(); cerr != nil {
					err = fmt.Errorf("%w (also closing %s: %v)", err, path, cerr)
				}
				return "", err
			}
			if err := f.Close(); err != nil {
				return "", err
			}
			return path, nil
		})
	if err != nil {
		return err
	}
	failed := 0
	for i, o := range outcomes {
		if o.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "benchgen: %s: %v\n", profiles[i].Name, o.Err)
			continue
		}
		fmt.Fprintf(os.Stderr, "%s: %d patterns x %d bits -> %s\n",
			profiles[i].Name, profiles[i].Patterns, profiles[i].ScanLen, o.Value)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d circuits failed", failed, len(profiles))
	}
	return nil
}
