// Command atpg runs the test-generation substrate: scan insertion +
// PODEM + X-aware fault simulation on a gate-level netlist, emitting the
// test cubes the compression stage consumes.
//
//	atpg -bench s27                     # embedded benchmark netlist
//	atpg -bench path/to/circuit.bench   # ISCAS89-style .bench file
//	atpg -generate 20,8,40,400,7        # inputs,outputs,dffs,gates,seed
//	atpg -bench s27 -out cubes.txt -random 32
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"lzwtc/internal/atpg"
	"lzwtc/internal/circuit"
	"lzwtc/internal/compact"
	"lzwtc/internal/fault"
	"lzwtc/internal/scan"
)

func main() {
	benchPath := flag.String("bench", "", "netlist: s27, c17 or a .bench file path")
	generate := flag.String("generate", "", "synthesize a netlist: inputs,outputs,dffs,gates,seed")
	out := flag.String("out", "-", "cube output file (- for stdout)")
	chains := flag.Int("chains", 1, "scan chains to insert")
	random := flag.Int("random", 32, "random patterns before PODEM")
	backtracks := flag.Int("backtracks", 500, "PODEM backtrack limit")
	seed := flag.Int64("seed", 1, "random-phase seed")
	doCompact := flag.Bool("compact", false, "merge compatible cubes and drop redundant patterns")
	flag.Parse()

	c, err := loadCircuit(*benchPath, *generate)
	if err != nil {
		fail(err)
	}
	design, err := scan.Insert(c, *chains)
	if err != nil {
		fail(err)
	}
	n := c.Count()
	fmt.Fprintf(os.Stderr, "%s: %d gates (%d PI, %d PO, %d FF), %d scan chain(s), pattern width %d\n",
		c.Name, n.Gates, n.Inputs, n.Outputs, n.DFFs, len(design.Chains), design.PatternWidth())

	res, err := atpg.Run(design.Comb, atpg.Options{
		Collapse:       true,
		RandomPatterns: *random,
		MaxBacktracks:  *backtracks,
		Seed:           *seed,
	})
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "faults: %d collapsed, %d detected (%.1f%% fault / %.1f%% test coverage), %d untestable, %d aborted\n",
		res.Total, res.Detected, 100*res.Coverage(), 100*res.TestCoverage(), res.Untestable, res.Aborted)
	fmt.Fprintf(os.Stderr, "cubes: %d patterns x %d bits, %.1f%% don't-cares\n",
		len(res.Cubes.Cubes), res.Cubes.Width, 100*res.Cubes.XDensity())

	cubes := res.Cubes
	if *doCompact {
		faults := fault.Collapse(c, fault.All(c))
		compacted, cst, err := compact.Compact(design.Comb, cubes, faults)
		if err != nil {
			fail(err)
		}
		cubes = compacted
		fmt.Fprintf(os.Stderr, "compaction: %d -> %d patterns (%d merges, %d dropped), X %.1f%% -> %.1f%%\n",
			cst.PatternsIn, cst.PatternsOut, cst.Merges, cst.Dropped, 100*cst.XDensityIn, 100*cst.XDensityOut)
	}

	w := os.Stdout
	if *out != "-" && *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := cubes.WriteCubes(w); err != nil {
		fail(err)
	}
}

func loadCircuit(benchPath, generate string) (*circuit.Circuit, error) {
	switch {
	case generate != "":
		parts := strings.Split(generate, ",")
		if len(parts) != 5 {
			return nil, fmt.Errorf("-generate wants inputs,outputs,dffs,gates,seed")
		}
		var v [5]int
		for i, p := range parts {
			x, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return nil, fmt.Errorf("-generate field %d: %w", i, err)
			}
			v[i] = x
		}
		return circuit.Generate(circuit.GenConfig{
			Name: "synth", Inputs: v[0], Outputs: v[1], DFFs: v[2], Comb: v[3], Seed: int64(v[4]),
		})
	case benchPath == "s27":
		return circuit.S27(), nil
	case benchPath == "c17":
		return circuit.C17(), nil
	case benchPath != "":
		f, err := os.Open(benchPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return circuit.ParseBench(benchPath, f)
	}
	return nil, fmt.Errorf("need -bench or -generate")
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "atpg: %v\n", err)
	os.Exit(1)
}
