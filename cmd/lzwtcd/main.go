// Command lzwtcd serves the lzwtc compression pipeline over HTTP.
//
// Usage:
//
//	lzwtcd [-addr :8077] [-max-body 67108864] [-timeout 60s] [-drain 30s] [-workers 0]
//	       [-trace-capacity 64] [-telemetry-out spans.jsonl] [-debug-addr 127.0.0.1:8078]
//	       [-jobs-queue 256] [-jobs-concurrent 2] [-jobs-ttl 5m]
//	       [-jobs-rate 0] [-jobs-burst 0] [-jobs-max-active 0]
//	       [-dict-dir dicts/] [-dict-mem 67108864] [-dict-disk 268435456]
//
// The service answers POST /v1/compress and POST /v1/decompress with
// streaming wire-format bodies, plus GET /v1/stats, /healthz, /metrics
// and /debug/trace/recent (the in-memory ring of recent request
// traces, sized by -trace-capacity). POST /v1/jobs/compress admits
// asynchronous compressions (status, result and cancel under
// /v1/jobs/{id}); the -jobs-* flags size the queue, runner count,
// result TTL and per-tenant quotas. PUT /v1/dict trains shared
// dictionaries (fetch, upload and evict under /v1/dict/{key}); the
// -dict-* flags persist the store to disk and size its memory and
// disk LRU budgets. -telemetry-out streams every
// telemetry event — including trace.span records renderable by `lzwtc
// trace` — to a JSONL file. -debug-addr opens a second listener (keep
// it off the service port, e.g. loopback-only) carrying net/http/pprof
// and a mirror of /debug/trace/recent, so profiling and trace
// inspection never contend with data-plane routing. SIGINT/SIGTERM
// trigger a graceful drain: the listener closes, in-flight requests
// finish (bounded by -drain), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lzwtc/internal/dictstore"
	"lzwtc/internal/jobs"
	"lzwtc/internal/server"
	"lzwtc/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lzwtcd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lzwtcd", flag.ContinueOnError)
	addr := fs.String("addr", ":8077", "listen address (use :0 for an ephemeral port)")
	maxBody := fs.Int64("max-body", 64<<20, "maximum request body size in bytes")
	timeout := fs.Duration("timeout", 60*time.Second, "per-request wall-clock limit")
	drain := fs.Duration("drain", 30*time.Second, "graceful-drain limit after SIGINT/SIGTERM")
	workers := fs.Int("workers", 0, "parallel pool size per request (0 = GOMAXPROCS)")
	traceCap := fs.Int("trace-capacity", 64, "recent request traces retained for /debug/trace/recent")
	telemetryOut := fs.String("telemetry-out", "", "stream JSONL telemetry events (incl. trace spans) to this file")
	debugAddr := fs.String("debug-addr", "", "optional second listener for net/http/pprof and /debug/trace/recent")
	jobQueue := fs.Int("jobs-queue", 0, "async job admission queue depth (0 = default 256)")
	jobConcurrent := fs.Int("jobs-concurrent", 0, "async jobs running at once (0 = default 2)")
	jobTTL := fs.Duration("jobs-ttl", 0, "finished-job result retention (0 = default 5m)")
	jobRate := fs.Float64("jobs-rate", 0, "per-tenant job submissions per second (0 = unlimited)")
	jobBurst := fs.Int("jobs-burst", 0, "per-tenant submission burst (0 = 1 when -jobs-rate is set)")
	jobActive := fs.Int("jobs-max-active", 0, "per-tenant jobs queued or running at once (0 = unlimited)")
	dictDir := fs.String("dict-dir", "", "persist shared dictionaries to this directory (empty = memory-only store)")
	dictMem := fs.Int64("dict-mem", 0, "shared-dictionary memory LRU budget in bytes (0 = default 64 MiB)")
	dictDisk := fs.Int64("dict-disk", 0, "shared-dictionary disk budget in bytes (0 = default 256 MiB)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var sinks []telemetry.Sink
	var eventFile *os.File
	var jsonl *telemetry.JSONLSink
	if *telemetryOut != "" {
		f, err := os.Create(*telemetryOut)
		if err != nil {
			return err
		}
		eventFile = f
		jsonl = telemetry.NewJSONLSink(f)
		sinks = append(sinks, jsonl)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The resolved address matters when -addr was :0; smoke harnesses
	// parse this line to find the port.
	fmt.Printf("lzwtcd: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// A persistent dictionary store is opened here, not inside the
	// server, so its disk index outlives drains and its metrics land in
	// the same registry /metrics exports. Memory-only setups (-dict-dir
	// unset) let the server open its own private store.
	reg := telemetry.NewRegistry()
	var dict *dictstore.Store
	if *dictDir != "" {
		dict, err = dictstore.Open(dictstore.Config{
			Dir:        *dictDir,
			MemBudget:  *dictMem,
			DiskBudget: *dictDisk,
			Registry:   reg,
		})
		if err != nil {
			return fmt.Errorf("opening dictionary store: %w", err)
		}
		defer func() {
			if err := dict.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "lzwtcd: closing dictionary store:", err)
			}
		}()
		fmt.Printf("lzwtcd: dictionary store at %s\n", *dictDir)
	}

	srv := server.New(server.Config{
		MaxBodyBytes:   *maxBody,
		RequestTimeout: *timeout,
		Workers:        *workers,
		Registry:       reg,
		TraceCapacity:  *traceCap,
		Sinks:          sinks,
		DictStore:      dict,
		JobQueueDepth:  *jobQueue,
		JobConcurrent:  *jobConcurrent,
		JobResultTTL:   *jobTTL,
		JobQuota: jobs.Quota{
			RatePerSec: *jobRate,
			Burst:      *jobBurst,
			MaxActive:  *jobActive,
		},
	})

	// The debug listener is a separate http.Server on its own mux:
	// pprof and trace introspection stay reachable (and firewallable)
	// independently of the data plane. Its goroutine is joined below —
	// run cannot return before the debug server has stopped.
	var debugSrv *http.Server
	debugErr := make(chan error, 1)
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return err
		}
		fmt.Printf("lzwtcd: debug listening on %s\n", dln.Addr())
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle(server.PathTraceRecent, srv.TraceHandler())
		debugSrv = &http.Server{Handler: mux}
		go func() {
			debugErr <- debugSrv.Serve(dln)
		}()
	}

	serveErr := srv.Serve(ctx, ln, *drain)

	if debugSrv != nil {
		if err := debugSrv.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "lzwtcd: closing debug listener:", err)
		}
		if err := <-debugErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "lzwtcd: debug listener:", err)
		}
	}
	if eventFile != nil {
		if err := jsonl.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "lzwtcd: telemetry stream:", err)
		}
		if err := eventFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "lzwtcd: closing telemetry stream:", err)
		}
	}
	if serveErr != nil {
		return serveErr
	}
	fmt.Println("lzwtcd: drained, shutting down")
	return nil
}
