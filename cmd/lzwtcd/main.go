// Command lzwtcd serves the lzwtc compression pipeline over HTTP.
//
// Usage:
//
//	lzwtcd [-addr :8077] [-max-body 67108864] [-timeout 60s] [-drain 30s] [-workers 0]
//
// The service answers POST /v1/compress and POST /v1/decompress with
// streaming wire-format bodies, plus GET /v1/stats, /healthz and
// /metrics. SIGINT/SIGTERM trigger a graceful drain: the listener
// closes, in-flight requests finish (bounded by -drain), then the
// process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lzwtc/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lzwtcd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lzwtcd", flag.ContinueOnError)
	addr := fs.String("addr", ":8077", "listen address (use :0 for an ephemeral port)")
	maxBody := fs.Int64("max-body", 64<<20, "maximum request body size in bytes")
	timeout := fs.Duration("timeout", 60*time.Second, "per-request wall-clock limit")
	drain := fs.Duration("drain", 30*time.Second, "graceful-drain limit after SIGINT/SIGTERM")
	workers := fs.Int("workers", 0, "parallel pool size per request (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The resolved address matters when -addr was :0; smoke harnesses
	// parse this line to find the port.
	fmt.Printf("lzwtcd: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := server.New(server.Config{
		MaxBodyBytes:   *maxBody,
		RequestTimeout: *timeout,
		Workers:        *workers,
	})
	if err := srv.Serve(ctx, ln, *drain); err != nil {
		return err
	}
	fmt.Println("lzwtcd: drained, shutting down")
	return nil
}
