package lzwtc

import (
	"encoding/json"
	"strings"
	"testing"

	"lzwtc/internal/telemetry"
)

func recordTestSet(t *testing.T) *TestSet {
	t.Helper()
	ts := NewTestSet(8)
	for _, s := range []string{"01XX10XX", "X1XX10X0", "0XXX1XXX", "01XX10XX"} {
		if err := ts.Add(MustPattern(s)); err != nil {
			t.Fatal(err)
		}
	}
	return ts
}

// TestRunRecordSchema pins the JSON field names shared by `lzwtc stats`
// and `lzwtc info -json`: scripts written against one must parse the
// other.
func TestRunRecordSchema(t *testing.T) {
	cfg := Config{CharBits: 2, DictSize: 32, EntryBits: 8}
	reg := telemetry.NewRegistry()
	rec := telemetry.New(reg)
	res, err := CompressObserved(recordTestSet(t), cfg, rec)
	if err != nil {
		t.Fatal(err)
	}
	record := NewRunRecord(res)
	record.AttachHistograms(reg.Snapshot())
	_, st, _, err := SimulateDownloadObserved(res, 8, rec)
	if err != nil {
		t.Fatal(err)
	}
	record.AttachDownload(8, st)

	b, err := json.Marshal(record)
	if err != nil {
		t.Fatal(err)
	}
	doc := string(b)
	for _, key := range []string{
		`"empty":`, `"patterns":`, `"width":`, `"original_bits":`,
		`"char_bits":`, `"dict_size":`, `"code_bits":`, `"entry_bits":`,
		`"ratio":`, `"codes_emitted":`, `"chars":`, `"dict_resets":`,
		`"match_len_hist":`, `"dict_occupancy_hist":`,
		`"internal_cycles":`, `"tester_cycles":`, `"load_stalls":`,
		`"utilization":`, `"improvement":`, `"memory_words":`,
	} {
		if !strings.Contains(doc, key) {
			t.Errorf("run record JSON missing %s:\n%s", key, doc)
		}
	}
	// The same document must round-trip.
	var back RunRecord
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Compress.CodesEmitted != res.Stream.Stats.CodesEmitted {
		t.Fatalf("round trip lost codes_emitted: %d vs %d",
			back.Compress.CodesEmitted, res.Stream.Stats.CodesEmitted)
	}
	if back.Decompressor == nil || back.Decompressor.TesterCycles != st.TesterCycles {
		t.Fatalf("round trip lost decompressor record: %+v", back.Decompressor)
	}
	if back.Compress.MatchLenHist == nil || back.Compress.MatchLenHist.Count != int64(res.Stream.Stats.CodesEmitted) {
		t.Fatalf("round trip lost match-length histogram: %+v", back.Compress.MatchLenHist)
	}
}

// TestRunRecordFromContainer: the info path — a record built from a
// decoded container — must carry the same schema with the geometry and
// headline numbers intact.
func TestRunRecordFromContainer(t *testing.T) {
	cfg := Config{CharBits: 2, DictSize: 32, EntryBits: 8}
	res, err := Compress(recordTestSet(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeResult(res.Encode())
	if err != nil {
		t.Fatal(err)
	}
	record := NewRunRecord(decoded)
	if record.Patterns != res.Patterns || record.Width != res.Width {
		t.Fatalf("geometry lost: %+v", record)
	}
	if record.Compress.CompressedBits != res.CompressedBits() {
		t.Fatalf("compressed bits lost: %d vs %d", record.Compress.CompressedBits, res.CompressedBits())
	}
	if record.Compress.Ratio != decoded.Ratio() {
		t.Fatalf("ratio = %v, want %v", record.Compress.Ratio, decoded.Ratio())
	}
	if record.Decompressor != nil {
		t.Fatal("container record has a decompressor section without a simulation")
	}
}

// TestCompressObservedRootEmitsRunRecord checks the root wrapper
// threads the recorder down to core.
func TestCompressObservedRootEmitsRunRecord(t *testing.T) {
	var kinds []string
	rec := telemetry.New(nil, telemetry.SinkFunc(func(ev telemetry.Event) { kinds = append(kinds, ev.Kind) }))
	if _, err := CompressObserved(recordTestSet(t), DefaultConfig(), rec); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, k := range kinds {
		if k == "compress.run" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no compress.run event from root wrapper; got %v", kinds)
	}
}

// TestSimulateDownloadObservedPatternEvents checks per-pattern cycle
// accounting arrives with the pattern count of the test set.
func TestSimulateDownloadObservedPatternEvents(t *testing.T) {
	ts := recordTestSet(t)
	cfg := Config{CharBits: 2, DictSize: 32, EntryBits: 8}
	res, err := Compress(ts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var patterns int
	rec := telemetry.New(nil, telemetry.SinkFunc(func(ev telemetry.Event) {
		if ev.Kind == "decomp.pattern" {
			patterns++
		}
	}))
	if _, _, _, err := SimulateDownloadObserved(res, 8, rec); err != nil {
		t.Fatal(err)
	}
	if patterns != len(ts.Cubes) {
		t.Fatalf("pattern events = %d, want %d", patterns, len(ts.Cubes))
	}
}
