module lzwtc

go 1.22
