// Package signature implements linear-feedback response compaction —
// the output side of the scan-test architecture the paper's Figure 2
// embeds its decompressor into. Scan-out responses are folded into a
// MISR (multiple-input signature register) so the ATE compares one
// signature instead of storing every expected response, the dual of
// compressing the stimulus side.
package signature

import (
	"fmt"
	"math/bits"

	"lzwtc/internal/bitvec"
)

// LFSR is a Fibonacci linear-feedback shift register over GF(2).
type LFSR struct {
	width int
	taps  uint64 // tap mask; bit i set means state bit i feeds back
	state uint64
}

// Standard primitive polynomials (tap masks) for common widths; the
// x^width term is implicit.
var primitiveTaps = map[int]uint64{
	8:  0xB8,               // x^8 + x^6 + x^5 + x^4 + 1
	16: 0xB400,             // x^16 + x^14 + x^13 + x^11 + 1
	24: 0xE10000,           // x^24 + x^23 + x^22 + x^17 + 1
	32: 0xA3000000,         // x^32 + x^30 + x^26 + x^25 + 1
	64: 0xD800000000000000, // x^64 + x^63 + x^61 + x^60 + 1
}

// NewLFSR builds an LFSR of the given width with a known-primitive
// polynomial (widths 8, 16, 24, 32, 64) or a caller-supplied tap mask.
func NewLFSR(width int, taps uint64) (*LFSR, error) {
	if width < 2 || width > 64 {
		return nil, fmt.Errorf("signature: width %d out of range [2,64]", width)
	}
	if taps == 0 {
		var ok bool
		taps, ok = primitiveTaps[width]
		if !ok {
			return nil, fmt.Errorf("signature: no built-in polynomial for width %d; supply taps", width)
		}
	}
	if width < 64 && taps >= 1<<uint(width) {
		return nil, fmt.Errorf("signature: taps %#x exceed width %d", taps, width)
	}
	return &LFSR{width: width, taps: taps}, nil
}

// Width returns the register width.
func (l *LFSR) Width() int { return l.width }

// State returns the current register contents.
func (l *LFSR) State() uint64 { return l.state }

// Seed sets the register contents.
func (l *LFSR) Seed(v uint64) {
	if l.width < 64 {
		v &= 1<<uint(l.width) - 1
	}
	l.state = v
}

// Step advances one clock with serial input bit in (0 or 1), returning
// the bit shifted out.
func (l *LFSR) Step(in uint64) uint64 {
	out := l.state >> uint(l.width-1) & 1
	fb := uint64(bits.OnesCount64(l.state&l.taps)&1) ^ (in & 1)
	l.state = l.state<<1 | fb
	if l.width < 64 {
		l.state &= 1<<uint(l.width) - 1
	}
	return out
}

// MISR folds parallel response slices into a signature: each capture
// clock XORs one response word into the register alongside the linear
// feedback.
type MISR struct {
	lfsr   *LFSR
	cycles int
}

// NewMISR builds a MISR of the given width (see NewLFSR for taps).
func NewMISR(width int, taps uint64) (*MISR, error) {
	l, err := NewLFSR(width, taps)
	if err != nil {
		return nil, err
	}
	return &MISR{lfsr: l}, nil
}

// Width returns the register width.
func (m *MISR) Width() int { return m.lfsr.width }

// Reset clears the register and cycle count.
func (m *MISR) Reset() {
	m.lfsr.state = 0
	m.cycles = 0
}

// CaptureWord folds one parallel response word into the register.
func (m *MISR) CaptureWord(word uint64) {
	w := m.lfsr.width
	fb := uint64(bits.OnesCount64(m.lfsr.state&m.lfsr.taps) & 1)
	m.lfsr.state = m.lfsr.state<<1 | fb
	if w < 64 {
		m.lfsr.state &= 1<<uint(w) - 1
		word &= 1<<uint(w) - 1
	}
	m.lfsr.state ^= word
	m.cycles++
}

// Capture folds a (fully specified) response vector, width bits at a
// time. Vectors wider than the register are folded in register-width
// slices.
func (m *MISR) Capture(resp *bitvec.Vector) error {
	if resp.XCount() != 0 {
		return fmt.Errorf("signature: response contains unknown values; a MISR signature would be corrupted")
	}
	w := m.lfsr.width
	for pos := 0; pos < resp.Len(); pos += w {
		n := w
		if pos+n > resp.Len() {
			n = resp.Len() - pos
		}
		word, _ := resp.Chunk(pos, n)
		m.CaptureWord(word)
	}
	return nil
}

// Signature returns the accumulated signature.
func (m *MISR) Signature() uint64 { return m.lfsr.state }

// Cycles returns the number of capture clocks folded so far.
func (m *MISR) Cycles() int { return m.cycles }

// AliasingProbability returns the asymptotic probability that a faulty
// response sequence produces the fault-free signature: 2^-width.
func (m *MISR) AliasingProbability() float64 {
	return 1 / float64(uint64(1)<<uint(m.lfsr.width))
}
