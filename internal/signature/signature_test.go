package signature

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lzwtc/internal/bitvec"
)

func TestLFSRMaximalLength(t *testing.T) {
	// A primitive polynomial cycles through all 2^w - 1 nonzero states.
	l, err := NewLFSR(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	l.Seed(1)
	seen := map[uint64]bool{}
	for i := 0; i < 255; i++ {
		if seen[l.State()] {
			t.Fatalf("state repeated after %d steps", i)
		}
		seen[l.State()] = true
		l.Step(0)
	}
	if l.State() != 1 {
		t.Fatalf("period != 255: ended at %#x", l.State())
	}
}

func TestLFSRZeroStaysZeroWithoutInput(t *testing.T) {
	l, _ := NewLFSR(16, 0)
	for i := 0; i < 10; i++ {
		l.Step(0)
	}
	if l.State() != 0 {
		t.Fatalf("autonomous zero state moved: %#x", l.State())
	}
	l.Step(1) // serial input perturbs it
	if l.State() == 0 {
		t.Fatal("input bit ignored")
	}
}

func TestNewLFSRErrors(t *testing.T) {
	if _, err := NewLFSR(1, 0); err == nil {
		t.Error("width 1 accepted")
	}
	if _, err := NewLFSR(65, 0); err == nil {
		t.Error("width 65 accepted")
	}
	if _, err := NewLFSR(13, 0); err == nil {
		t.Error("width without built-in polynomial accepted with taps=0")
	}
	if _, err := NewLFSR(13, 1<<13); err == nil {
		t.Error("oversized taps accepted")
	}
	if _, err := NewLFSR(13, 0x1B); err != nil {
		t.Errorf("custom taps rejected: %v", err)
	}
}

func TestMISRDeterministicAndOrderSensitive(t *testing.T) {
	m, err := NewMISR(16, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := bitvec.MustParse("0101010101010101")
	b := bitvec.MustParse("1111000011110000")

	m.Capture(a)
	m.Capture(b)
	s1 := m.Signature()

	m.Reset()
	m.Capture(a)
	m.Capture(b)
	if m.Signature() != s1 {
		t.Fatal("signature not deterministic")
	}

	m.Reset()
	m.Capture(b)
	m.Capture(a)
	if m.Signature() == s1 {
		t.Fatal("signature insensitive to response order")
	}
}

func TestMISRRejectsUnknowns(t *testing.T) {
	m, _ := NewMISR(8, 0)
	if err := m.Capture(bitvec.MustParse("01X00101")); err == nil {
		t.Fatal("X response accepted")
	}
}

func TestMISRCycleCount(t *testing.T) {
	m, _ := NewMISR(8, 0)
	m.Capture(bitvec.MustParse("0101010101010101")) // 16 bits -> 2 words
	if m.Cycles() != 2 {
		t.Fatalf("cycles = %d", m.Cycles())
	}
	if p := m.AliasingProbability(); p != 1.0/256 {
		t.Fatalf("aliasing = %v", p)
	}
}

// Property: a single flipped response bit always changes the signature
// (single-bit errors never alias in a linear compactor).
func TestQuickSingleBitErrorDetected(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(300) + 1
		resp := bitvec.New(n)
		for i := 0; i < n; i++ {
			resp.Set(i, bitvec.Bit(rng.Intn(2)))
		}
		good, _ := NewMISR(16, 0)
		if err := good.Capture(resp); err != nil {
			return false
		}
		bad, _ := NewMISR(16, 0)
		flipped := resp.Clone()
		i := rng.Intn(n)
		flipped.Set(i, resp.Get(i)^1)
		if err := bad.Capture(flipped); err != nil {
			return false
		}
		return good.Signature() != bad.Signature()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: signatures distribute — two random distinct response
// sequences collide with roughly 2^-16 probability; over 200 trials we
// should essentially never see a collision.
func TestQuickNoEasyCollisions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 20
		a := bitvec.New(n)
		b := bitvec.New(n)
		same := true
		for i := 0; i < n; i++ {
			av, bv := bitvec.Bit(rng.Intn(2)), bitvec.Bit(rng.Intn(2))
			a.Set(i, av)
			b.Set(i, bv)
			if av != bv {
				same = false
			}
		}
		if same {
			return true
		}
		ma, _ := NewMISR(32, 0)
		mb, _ := NewMISR(32, 0)
		ma.Capture(a)
		mb.Capture(b)
		return ma.Signature() != mb.Signature()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
