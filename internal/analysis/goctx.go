package analysis

import (
	"go/ast"
	"go/types"
)

// goctxCheck enforces goroutine and context hygiene in the concurrent
// packages (GoctxPaths):
//
//   - a `go` statement must be cancellable or joined: its body
//     references a context.Context (ctx, ctx.Done(), ctx.Err()), or it
//     calls into a pool package (PoolPaths — internal/parallel owns
//     lifecycle there), or it sends on a channel the enclosing function
//     receives from (join evidence: the launcher cannot return without
//     the goroutine finishing);
//   - every context.WithCancel/WithTimeout/WithDeadline cancel func
//     must be deferred, called, or escape (returned/stored/passed on) —
//     discarding it as `_` or dropping it on the floor leaks the
//     context's resources;
//   - time.After inside a loop allocates an unreclaimable timer per
//     iteration; use time.NewTimer or time.Ticker.
type goctxCheck struct{}

func (goctxCheck) Name() string { return "goctx" }
func (goctxCheck) Doc() string {
	return "goroutines in concurrent packages must observe a context.Context, be pool-launched, or be channel-joined; WithCancel/WithTimeout cancels must run; time.After is banned inside loops"
}

func (c goctxCheck) Run(cfg *Config, pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if !matchPath(pkg.Path, cfg.GoctxPaths) {
			continue
		}
		for _, file := range pkg.Files {
			for _, frame := range frames(file) {
				diags = append(diags, c.checkFrame(cfg, pkg, frame)...)
			}
		}
	}
	return diags
}

// frames enumerates every function body in the file: declarations plus
// literals. Each is audited as its own scope.
func frames(file *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, n.Body)
			}
		case *ast.FuncLit:
			out = append(out, n.Body)
		}
		return true
	})
	return out
}

// inspectFrame walks body without descending into nested function
// literals (they are separate frames).
func inspectFrame(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == body {
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

func (c goctxCheck) checkFrame(cfg *Config, pkg *Package, body *ast.BlockStmt) []Diagnostic {
	var diags []Diagnostic
	report := func(n ast.Node, msg string) {
		diags = append(diags, Diagnostic{Pos: pkg.Fset.Position(n.Pos()), Check: "goctx", Message: msg})
	}
	inspectFrame(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			c.checkGoStmt(cfg, pkg, body, n, report)
		case *ast.AssignStmt:
			c.checkWithCancel(pkg, body, n, report)
		}
		return true
	})
	c.checkTimeAfterLoops(pkg, body, report)
	return diags
}

// checkGoStmt audits one `go` statement inside frame.
func (c goctxCheck) checkGoStmt(cfg *Config, pkg *Package, frame *ast.BlockStmt, g *ast.GoStmt, report func(ast.Node, string)) {
	lit, isLit := g.Call.Fun.(*ast.FuncLit)
	if !isLit {
		// go f(args...): cancellable when a context travels along, or
		// when the callee lives in a pool package that owns lifecycle.
		for _, a := range g.Call.Args {
			if isContextType(pkg.Info.TypeOf(a)) {
				return
			}
		}
		if callee := calleeFunc(pkg.Info, g.Call.Fun); callee != nil && callee.Pkg() != nil &&
			matchPath(callee.Pkg().Path(), cfg.PoolPaths) {
			return
		}
		report(g, "goroutine "+exprString(g.Call.Fun)+" receives no context.Context and is not pool-launched; it cannot be cancelled")
		return
	}
	// go func(){...}(): the body must observe a context...
	if referencesContext(pkg, lit.Body) {
		return
	}
	// ...or be joined: it sends on a channel the enclosing frame
	// receives from, so the launcher blocks until the goroutine is done.
	for ch := range sentChannels(pkg, lit.Body) {
		if frameReceivesFrom(pkg, frame, ch) {
			return
		}
	}
	report(g, "goroutine observes no context.Context (no ctx/Done reference) and has no channel join with its launcher")
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n := typeNamed(t)
	return n != nil && n.Obj().Name() == "Context" &&
		n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "context"
}

// referencesContext reports whether any expression in body (including
// nested literals — a helper closure watching ctx still counts) has
// type context.Context.
func referencesContext(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if e, ok := n.(ast.Expr); ok && isContextType(pkg.Info.TypeOf(e)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// sentChannels collects the channel variables body sends on.
func sentChannels(pkg *Package, body *ast.BlockStmt) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		var ch ast.Expr
		switch n := n.(type) {
		case *ast.SendStmt:
			ch = n.Chan
		case *ast.CallExpr:
			// close(ch) is join evidence too: for-range over ch in the
			// launcher terminates on it.
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) == 1 {
					ch = n.Args[0]
				}
			}
		}
		if id, ok := ch.(*ast.Ident); ok {
			if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
				out[v] = true
			}
		}
		return true
	})
	return out
}

// frameReceivesFrom reports whether the frame (outside nested literals)
// receives from channel variable ch: `<-ch`, a select comm case on it,
// or `for range ch`.
func frameReceivesFrom(pkg *Package, frame *ast.BlockStmt, ch *types.Var) bool {
	isCh := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && pkg.Info.Uses[id] == ch
	}
	found := false
	inspectFrame(frame, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && isCh(n.X) {
				found = true
			}
		case *ast.RangeStmt:
			if isCh(n.X) {
				found = true
			}
		}
		return true
	})
	return found
}

// checkWithCancel audits `ctx, cancel := context.WithX(...)` inside
// frame: the cancel func must be deferred, called, or escape.
func (c goctxCheck) checkWithCancel(pkg *Package, frame *ast.BlockStmt, as *ast.AssignStmt, report func(ast.Node, string)) {
	if len(as.Rhs) != 1 || len(as.Lhs) != 2 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	callee := calleeFunc(pkg.Info, call.Fun)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "context" {
		return
	}
	switch callee.Name() {
	case "WithCancel", "WithTimeout", "WithDeadline", "WithCancelCause":
	default:
		return
	}
	cancelExpr := as.Lhs[1]
	if id, ok := cancelExpr.(*ast.Ident); ok && id.Name == "_" {
		report(cancelExpr, callee.Name()+" cancel function discarded as _; the context's resources leak until the parent ends")
		return
	}
	id, ok := cancelExpr.(*ast.Ident)
	if !ok {
		return
	}
	cancel, _ := pkg.Info.Defs[id].(*types.Var)
	if cancel == nil {
		cancel, _ = pkg.Info.Uses[id].(*types.Var)
	}
	if cancel == nil {
		return
	}
	// Any later mention — defer cancel(), a plain call, a return, a
	// store — keeps the cancel reachable; go vet's lostcancel covers
	// the remaining path-sensitivity. Only a cancel that is never
	// mentioned again is reported here.
	used := false
	ast.Inspect(frame, func(n ast.Node) bool {
		if used {
			return false
		}
		uid, ok := n.(*ast.Ident)
		if ok && uid != id && pkg.Info.Uses[uid] == cancel {
			used = true
		}
		return true
	})
	if !used {
		report(cancelExpr, callee.Name()+" cancel function "+id.Name+" is never called; defer it immediately")
	}
}

// checkTimeAfterLoops reports time.After calls lexically inside a loop
// of this frame.
func (c goctxCheck) checkTimeAfterLoops(pkg *Package, frame *ast.BlockStmt, report func(ast.Node, string)) {
	var walk func(n ast.Node, inLoop bool)
	walkBody := func(list []ast.Stmt, inLoop bool, walk func(ast.Node, bool)) {
		for _, s := range list {
			walk(s, inLoop)
		}
	}
	walk = func(n ast.Node, inLoop bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			return // separate frame
		case *ast.ForStmt:
			walk(n.Init, inLoop)
			walk(n.Cond, inLoop)
			walk(n.Post, true)
			walkBody(n.Body.List, true, walk)
		case *ast.RangeStmt:
			walk(n.X, inLoop)
			walkBody(n.Body.List, true, walk)
		case *ast.CallExpr:
			if callee := calleeFunc(pkg.Info, n.Fun); callee != nil &&
				callee.Pkg() != nil && callee.Pkg().Path() == "time" && callee.Name() == "After" && inLoop &&
				isPackageFunc(callee) {
				report(n, "time.After inside a loop allocates an uncollectable timer per iteration; use time.NewTimer or time.Ticker")
			}
			for _, a := range n.Args {
				walk(a, inLoop)
			}
			walk(n.Fun, inLoop)
		default:
			// Generic traversal preserving the inLoop flag.
			var children []ast.Node
			ast.Inspect(n, func(m ast.Node) bool {
				if m == n || m == nil {
					return m == n
				}
				children = append(children, m)
				return false
			})
			for _, ch := range children {
				walk(ch, inLoop)
			}
		}
	}
	walkBody(frame.List, false, walk)
}

// isPackageFunc reports whether f is a package-level function (no
// receiver), distinguishing time.After from the time.Time.After
// method, which is fine anywhere.
func isPackageFunc(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
