package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the function-local dataflow engine backing the
// hostile-input checks (allocbound primarily). It tracks, per local
// variable, a two-point taint lattice:
//
//	untainted  ⊑  tainted
//
// with a third derived fact, "bounded": a tainted variable becomes
// bounded (and drops back to untainted for sink purposes) once control
// flow passes a dominating upper-bound guard on it — either a rejecting
// comparison (`if x > Max { return ... }`) or an accepting one that
// encloses the use (`if x <= Max { ... use ... }`), or a call to a
// configured runtime guard function mentioning the variable.
//
// The walk is deliberately function-local and statement-ordered: it
// follows the lexical structure of one function body, clones state into
// branches, and re-joins by unioning taint. Loops are walked once (a
// taint introduced late in a loop body is not seen by earlier
// statements of the next iteration); this under-approximates loops but
// is exact for the decode-shaped code the checks target, where lengths
// are read, checked and then consumed in straight-line order. The
// deliberate scope (and the places the approximation is visible) is
// documented in DESIGN.md §12.

// taintState is the per-program-point lattice value of the walk: the
// set of tainted (attacker-influenced, unbounded) variables.
type taintState struct {
	tainted map[*types.Var]bool
}

func newTaintState() *taintState {
	return &taintState{tainted: map[*types.Var]bool{}}
}

// clone copies the state for a branch.
func (s *taintState) clone() *taintState {
	c := newTaintState()
	for v := range s.tainted {
		c.tainted[v] = true
	}
	return c
}

// absorb unions another state's taint into this one (branch join).
func (s *taintState) absorb(o *taintState) {
	for v := range o.tainted {
		s.tainted[v] = true
	}
}

// taint marks v attacker-influenced.
func (s *taintState) taint(v *types.Var) { s.tainted[v] = true }

// bound clears v's taint: a dominating guard has been passed.
func (s *taintState) bound(v *types.Var) { delete(s.tainted, v) }

// flowFuncs are the callbacks a check plugs into the walk.
type flowFuncs struct {
	// seed reports whether the result(s) of call are tainted at their
	// definition (an untrusted source).
	seed func(call *ast.CallExpr) bool
	// guard reports whether a call statement is a sanctioned runtime
	// bound guard; every variable mentioned in its arguments becomes
	// bounded.
	guard func(call *ast.CallExpr) bool
	// sink is invoked at every expression with the state in effect
	// there; checks inspect the expression for their sinks.
	sink func(e ast.Expr, s *taintState)
}

// flowWalker drives the statement-ordered abstract interpretation of
// one function body.
type flowWalker struct {
	pkg *Package
	fns flowFuncs
}

// walkFunc runs the analysis over one function declaration, seeding
// parameter taint from seedParams.
func (w *flowWalker) walkFunc(fn *ast.FuncDecl, seedParams []*types.Var) {
	st := newTaintState()
	for _, v := range seedParams {
		st.taint(v)
	}
	w.walkStmts(fn.Body.List, st)
}

// localVar resolves an expression to the local variable it names, or
// nil. &x and (x) unwrap; anything else (fields, indexes of
// non-identifiers) is opaque.
func (w *flowWalker) localVar(e ast.Expr) *types.Var {
	for {
		switch ee := e.(type) {
		case *ast.ParenExpr:
			e = ee.X
		case *ast.IndexExpr:
			// arr[i]: taint facts are tracked per whole variable.
			e = ee.X
		default:
			id, ok := e.(*ast.Ident)
			if !ok {
				return nil
			}
			if v, ok := w.pkg.Info.Uses[id].(*types.Var); ok {
				return v
			}
			if v, ok := w.pkg.Info.Defs[id].(*types.Var); ok {
				return v
			}
			return nil
		}
	}
}

// exprTainted reports whether any tainted variable occurs in e, also
// treating seed calls inside e as taint.
func (w *flowWalker) exprTainted(e ast.Expr, st *taintState) bool {
	tainted := false
	ast.Inspect(e, func(n ast.Node) bool {
		if tainted {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if v, ok := w.pkg.Info.Uses[n].(*types.Var); ok && st.tainted[v] {
				tainted = true
			}
		case *ast.CallExpr:
			if w.fns.guard != nil && w.fns.guard(n) {
				// A guard call's result is bounded by construction
				// (invariant.Width style).
				return false
			}
			if w.fns.seed != nil && w.fns.seed(n) {
				tainted = true
				return false
			}
			// A call propagates taint when any argument is tainted
			// (conservative: the callee may return a derived length).
			for _, a := range n.Args {
				if w.exprTainted(a, st) {
					tainted = true
					return false
				}
			}
			return false // args handled above
		case *ast.FuncLit:
			return false // separate frame; goctx handles literals
		}
		return true
	})
	return tainted
}

// visitExpr runs the sink callback and descends into sub-expressions.
func (w *flowWalker) visitExpr(e ast.Expr, st *taintState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if ex, ok := n.(ast.Expr); ok && w.fns.sink != nil {
			w.fns.sink(ex, st)
		}
		return true
	})
}

// walkStmts interprets a statement list in order, mutating st.
func (w *flowWalker) walkStmts(stmts []ast.Stmt, st *taintState) {
	for _, s := range stmts {
		w.walkStmt(s, st)
	}
}

func (w *flowWalker) walkStmt(s ast.Stmt, st *taintState) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.visitExpr(rhs, st)
		}
		w.applyAssign(s, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, val := range vs.Values {
					w.visitExpr(val, st)
				}
				for i, name := range vs.Names {
					v, ok := w.pkg.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					if i < len(vs.Values) && w.exprTainted(vs.Values[i], st) {
						st.taint(v)
					}
				}
			}
		}
	case *ast.ExprStmt:
		w.visitExpr(s.X, st)
		if call, ok := s.X.(*ast.CallExpr); ok && w.fns.guard != nil && w.fns.guard(call) {
			for _, a := range call.Args {
				w.boundMentioned(a, st)
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.visitExpr(s.Cond, st)
		upper, accept := condBounds(w, s.Cond)
		thenSt := st.clone()
		for _, v := range accept {
			thenSt.bound(v)
		}
		w.walkStmts(s.Body.List, thenSt)
		elseSt := st.clone()
		if s.Else != nil {
			w.walkStmt(s.Else, elseSt)
		}
		// Join: taint discovered in either branch survives.
		st.absorb(thenSt)
		st.absorb(elseSt)
		// A rejecting guard (`if x > Max { return }`) bounds x for the
		// rest of the enclosing block.
		if terminates(s.Body) {
			for _, v := range upper {
				st.bound(v)
			}
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.visitExpr(s.Cond, st)
		body := st.clone()
		w.walkStmts(s.Body.List, body)
		if s.Post != nil {
			w.walkStmt(s.Post, body)
		}
		st.absorb(body)
	case *ast.RangeStmt:
		w.visitExpr(s.X, st)
		body := st.clone()
		// Ranging over a tainted collection taints the loop variables.
		if w.exprTainted(s.X, st) {
			if v := w.localVar(s.Key); v != nil {
				body.taint(v)
			}
			if v := w.localVar(s.Value); v != nil {
				body.taint(v)
			}
		}
		w.walkStmts(s.Body.List, body)
		st.absorb(body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.visitExpr(s.Tag, st)
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			caseSt := st.clone()
			w.walkStmts(cc.Body, caseSt)
			st.absorb(caseSt)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			caseSt := st.clone()
			w.walkStmts(cc.Body, caseSt)
			st.absorb(caseSt)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			caseSt := st.clone()
			if cc.Comm != nil {
				w.walkStmt(cc.Comm, caseSt)
			}
			w.walkStmts(cc.Body, caseSt)
			st.absorb(caseSt)
		}
	case *ast.BlockStmt:
		inner := st.clone()
		w.walkStmts(s.List, inner)
		st.absorb(inner)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.visitExpr(r, st)
		}
	case *ast.DeferStmt:
		w.visitExpr(s.Call, st)
	case *ast.GoStmt:
		w.visitExpr(s.Call, st)
	case *ast.SendStmt:
		w.visitExpr(s.Chan, st)
		w.visitExpr(s.Value, st)
	case *ast.IncDecStmt:
		w.visitExpr(s.X, st)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, st)
	}
}

// applyAssign transfers taint through an assignment.
func (w *flowWalker) applyAssign(s *ast.AssignStmt, st *taintState) {
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		// Compound assignment (x += y): x stays whatever it was unless
		// the RHS is tainted.
		for i, lhs := range s.Lhs {
			if i < len(s.Rhs) && w.exprTainted(s.Rhs[i], st) {
				if v := w.localVar(lhs); v != nil {
					st.taint(v)
				}
			}
		}
		return
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i, lhs := range s.Lhs {
			v := w.localVar(lhs)
			if v == nil {
				continue
			}
			if w.exprTainted(s.Rhs[i], st) {
				st.taint(v)
			} else if _, isIndex := lhs.(*ast.IndexExpr); !isIndex {
				// Whole-variable overwrite with a clean value launders
				// the taint; writing one element of a tainted array
				// does not.
				st.bound(v)
			}
		}
		return
	}
	// Tuple assignment from one call: every LHS shares the call's taint.
	if len(s.Rhs) == 1 {
		t := w.exprTainted(s.Rhs[0], st)
		for _, lhs := range s.Lhs {
			if v := w.localVar(lhs); v != nil {
				if t {
					st.taint(v)
				} else {
					st.bound(v)
				}
			}
		}
	}
}

// boundMentioned bounds every variable occurring in e (a guard call's
// argument).
func (w *flowWalker) boundMentioned(e ast.Expr, st *taintState) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := w.pkg.Info.Uses[id].(*types.Var); ok {
				st.bound(v)
			}
		}
		return true
	})
}

// condBounds extracts bound facts from an if condition:
//
//	upper:  variables with an upper-bound *rejecting* comparison
//	        (x > C, x >= C, or either side of an || chain) — bounded
//	        after the if when the then-branch terminates;
//	accept: variables with an *accepting* comparison (x < C, x <= C,
//	        x == C, or both sides of an && chain) — bounded inside the
//	        then-branch.
//
// The bound side must itself be untainted (a constant, len(...), or a
// clean variable); comparing one tainted value against another proves
// nothing.
func condBounds(w *flowWalker, cond ast.Expr) (upper, accept []*types.Var) {
	var scan func(e ast.Expr, orCtx, andCtx bool)
	scan = func(e ast.Expr, orCtx, andCtx bool) {
		switch e := e.(type) {
		case *ast.ParenExpr:
			scan(e.X, orCtx, andCtx)
		case *ast.UnaryExpr:
			if e.Op == token.NOT {
				// !(x <= C): treat as rejecting x > C.
				if v := cmpBound(w, e.X, token.LEQ, token.LSS, token.EQL); v != nil && orCtx {
					upper = append(upper, v)
				}
			}
		case *ast.BinaryExpr:
			switch e.Op {
			case token.LOR:
				scan(e.X, orCtx, false)
				scan(e.Y, orCtx, false)
			case token.LAND:
				scan(e.X, false, andCtx)
				scan(e.Y, false, andCtx)
			default:
				if orCtx {
					if v := cmpBound(w, e, token.GTR, token.GEQ, token.NEQ); v != nil {
						upper = append(upper, v)
					}
				}
				if andCtx {
					if v := cmpBound(w, e, token.LSS, token.LEQ, token.EQL); v != nil {
						accept = append(accept, v)
					}
				}
			}
		}
	}
	// The whole condition is both a one-element OR chain (reject form)
	// and a one-element AND chain (accept form).
	scan(cond, true, true)
	return upper, accept
}

// cmpBound matches `v OP bound` (or the flipped `bound OP' v`) for the
// given accepted operators and returns the bounded local variable, nil
// when the comparison has a different shape or the bound side is not
// clean.
func cmpBound(w *flowWalker, e ast.Expr, ops ...token.Token) *types.Var {
	be, ok := e.(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	match := func(op token.Token) bool {
		for _, o := range ops {
			if op == o {
				return true
			}
		}
		return false
	}
	flip := map[token.Token]token.Token{
		token.LSS: token.GTR, token.GTR: token.LSS,
		token.LEQ: token.GEQ, token.GEQ: token.LEQ,
		token.EQL: token.EQL, token.NEQ: token.NEQ,
	}
	if v := w.localVar(be.X); v != nil && match(be.Op) && cleanBound(w, be.Y) {
		return v
	}
	if v := w.localVar(be.Y); v != nil && match(flip[be.Op]) && cleanBound(w, be.X) {
		return v
	}
	return nil
}

// cleanBound reports whether the bound side of a comparison is
// trustworthy: a constant, a len/cap call, or any expression free of
// obviously attacker-derived parts. (Taint on the bound side is checked
// by the caller against the live state where needed; here constants and
// len() cover the real code.)
func cleanBound(w *flowWalker, e ast.Expr) bool {
	if tv, ok := w.pkg.Info.Types[e]; ok && tv.Value != nil {
		return true
	}
	if call, ok := e.(*ast.CallExpr); ok {
		if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
			if _, isBuiltin := w.pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
				return true
			}
		}
	}
	// A plain identifier or selector (e.g. a config field) is accepted;
	// composite arithmetic over them too. Only expressions containing a
	// call (other than len/cap) are rejected as potentially tainted.
	clean := true
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
				return false
			}
			clean = false
			return false
		}
		return true
	})
	return clean
}

// terminates reports whether a block always leaves the enclosing scope:
// its last statement is a return, a panic-shaped call, goto, or a
// break/continue.
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Violatef", "Fatal", "Fatalf", "Exit":
					return true
				}
			}
		}
	}
	return false
}
