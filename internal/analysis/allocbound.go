package analysis

import (
	"go/ast"
	"go/types"
)

// allocBoundCheck taints attacker-influenced integers (decode-helper
// parameters arriving next to raw payload bytes, values decoded from an
// io.Reader, HTTP query parameters) and reports any allocation sized by
// one before a dominating bound check: `make` with a tainted size, a
// configured allocation constructor (bitvec.New) with a tainted
// argument, and `io.ReadAll` over a reader that is not length-limited.
// The dataflow engine in dataflow.go supplies the taint/bound lattice.
type allocBoundCheck struct{}

func (allocBoundCheck) Name() string { return "allocbound" }
func (allocBoundCheck) Doc() string {
	return "allocations in hostile-input packages (make, configured constructors, io.ReadAll) must not be sized by untrusted input without a dominating bound check or invariant guard"
}

func (c allocBoundCheck) Run(cfg *Config, pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	seen := map[string]bool{} // pos+message dedupe across branch re-walks
	report := func(pkg *Package, pos ast.Node, msg string) {
		p := pkg.Fset.Position(pos.Pos())
		key := p.String() + msg
		if seen[key] {
			return
		}
		seen[key] = true
		diags = append(diags, Diagnostic{Pos: p, Check: "allocbound", Message: msg})
	}
	for _, pkg := range pkgs {
		if !matchPath(pkg.Path, cfg.AllocBoundPaths) {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				c.runFunc(cfg, pkg, fn, report)
			}
		}
	}
	return diags
}

func (allocBoundCheck) runFunc(cfg *Config, pkg *Package, fn *ast.FuncDecl, report func(*Package, ast.Node, string)) {
	w := &flowWalker{pkg: pkg}
	limited := limitedReaderVars(pkg, fn)
	w.fns = flowFuncs{
		seed: func(call *ast.CallExpr) bool {
			return untrustedSourceCall(pkg, call)
		},
		guard: func(call *ast.CallExpr) bool {
			callee := calleeFunc(pkg.Info, call.Fun)
			if callee == nil {
				return false
			}
			full := callee.FullName()
			return matchName(full, cfg.AllocGuards) || hasSuffixName(full, cfg.AllocGuards)
		},
		sink: func(e ast.Expr, st *taintState) {
			call, ok := e.(*ast.CallExpr)
			if !ok {
				return
			}
			// make([]T, n[, c]) with a tainted size or capacity.
			if id, isIdent := call.Fun.(*ast.Ident); isIdent && id.Name == "make" {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					for _, sz := range call.Args[1:] {
						if w.exprTainted(sz, st) {
							report(pkg, sz, "make size "+exprString(sz)+
								" derives from untrusted input without a dominating bound check")
						}
					}
				}
				return
			}
			callee := calleeFunc(pkg.Info, call.Fun)
			if callee == nil {
				return
			}
			full := callee.FullName()
			// Configured allocation constructors (bitvec.New, ...).
			if matchName(full, cfg.AllocSinks) || hasSuffixName(full, cfg.AllocSinks) {
				for _, a := range call.Args {
					if w.exprTainted(a, st) {
						report(pkg, a, callee.Name()+" argument "+exprString(a)+
							" derives from untrusted input without a dominating bound check")
					}
				}
				return
			}
			// io.ReadAll over an unlimited reader buffers an
			// attacker-chosen number of bytes.
			if full == "io.ReadAll" && len(call.Args) == 1 {
				if !readerIsLimited(pkg, call.Args[0], limited) {
					report(pkg, call, "io.ReadAll over unlimited reader "+exprString(call.Args[0])+
						"; wrap it in io.LimitReader or http.MaxBytesReader")
				}
			}
		},
	}
	w.walkFunc(fn, untrustedIntParams(pkg, fn))
}

// untrustedIntParams seeds parameter taint: when a function receives
// raw payload bytes (a []byte or an io.Reader-shaped parameter), its
// integer parameters are treated as decoded header fields — the
// decode-helper shape (`unpackCodes(data []byte, n, cb int)`).
func untrustedIntParams(pkg *Package, fn *ast.FuncDecl) []*types.Var {
	if fn.Type.Params == nil {
		return nil
	}
	hasPayload := false
	var ints []*types.Var
	for _, field := range fn.Type.Params.List {
		t := pkg.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if isPayloadType(t) {
			hasPayload = true
		}
		if basic, ok := t.Underlying().(*types.Basic); ok && basic.Info()&types.IsInteger != 0 {
			for _, name := range field.Names {
				if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
					ints = append(ints, v)
				}
			}
		}
	}
	if !hasPayload {
		return nil
	}
	return ints
}

// isPayloadType reports whether t carries raw untrusted input: []byte
// or anything Reader-shaped (the io.Reader interface or a named
// *Reader like bufio.Reader).
func isPayloadType(t types.Type) bool {
	if sl, ok := t.Underlying().(*types.Slice); ok {
		if b, ok := sl.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Byte {
			return true
		}
	}
	return isReaderType(t)
}

func isReaderType(t types.Type) bool {
	if iface, ok := t.Underlying().(*types.Interface); ok {
		for i := 0; i < iface.NumMethods(); i++ {
			if iface.Method(i).Name() == "Read" {
				return true
			}
		}
		return false
	}
	if n := typeNamed(t); n != nil {
		return n.Obj().Name() == "Reader"
	}
	return false
}

// untrustedSourceCall reports whether a call's results are untrusted:
// varint decoders, HTTP query parameter accessors, and in-module
// helpers that read integers out of a Reader.
func untrustedSourceCall(pkg *Package, call *ast.CallExpr) bool {
	callee := calleeFunc(pkg.Info, call.Fun)
	if callee == nil {
		return false
	}
	switch callee.FullName() {
	case "encoding/binary.ReadUvarint", "encoding/binary.ReadVarint",
		"(net/url.Values).Get", "(*net/http.Request).FormValue", "(*net/http.Request).PostFormValue":
		return true
	}
	// An in-module helper taking a Reader and returning an integer is a
	// header-field decoder (readUvarint shape): its result is whatever
	// the wire said.
	sig, ok := callee.Type().(*types.Signature)
	if !ok || callee.Pkg() == nil || callee.Pkg().Path() == "" {
		return false
	}
	readerParam := false
	for i := 0; i < sig.Params().Len(); i++ {
		if isReaderType(sig.Params().At(i).Type()) {
			readerParam = true
			break
		}
	}
	if !readerParam {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if basic, ok := sig.Results().At(i).Type().Underlying().(*types.Basic); ok &&
			basic.Info()&types.IsInteger != 0 {
			return true
		}
	}
	return false
}

// limitedReaderVars collects local variables assigned from a
// length-limiting reader constructor anywhere in fn.
func limitedReaderVars(pkg *Package, fn *ast.FuncDecl) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	ast.Inspect(fn, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isLimitingCall(pkg, call) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
					out[v] = true
				} else if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
					out[v] = true
				}
			}
		}
		return true
	})
	return out
}

func isLimitingCall(pkg *Package, call *ast.CallExpr) bool {
	callee := calleeFunc(pkg.Info, call.Fun)
	if callee == nil {
		return false
	}
	switch callee.FullName() {
	case "io.LimitReader", "net/http.MaxBytesReader":
		return true
	}
	return false
}

// readerIsLimited reports whether the argument to io.ReadAll is
// provably length-limited: a direct io.LimitReader /
// http.MaxBytesReader call, a variable assigned from one, or an
// *io.LimitedReader value.
func readerIsLimited(pkg *Package, arg ast.Expr, limited map[*types.Var]bool) bool {
	switch e := arg.(type) {
	case *ast.ParenExpr:
		return readerIsLimited(pkg, e.X, limited)
	case *ast.CallExpr:
		return isLimitingCall(pkg, e)
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[e].(*types.Var); ok && limited[v] {
			return true
		}
	}
	if n := typeNamed(pkg.Info.TypeOf(arg)); n != nil {
		if n.Obj().Name() == "LimitedReader" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "io" {
			return true
		}
	}
	return false
}
