package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// bitwidthCheck verifies that every width argument to
// bitio.Writer.WriteBits / bitio.Reader.ReadBits is provably within
// [0,64]. bitio defines width 0 as a no-op and widths outside [0,64]
// as a hard fault, so an unproven width is a latent stream-corruption
// or panic path.
type bitwidthCheck struct{}

func (bitwidthCheck) Name() string { return "bitwidth" }
func (bitwidthCheck) Doc() string {
	return "WriteBits/ReadBits widths must be provably in [0,64]: a constant, a validated-config accessor/field, bits.Len-bounded arithmetic, or an invariant.Width guard"
}

// interval is an inclusive integer range; known=false means unbounded.
type interval struct {
	lo, hi int64
	known  bool
}

func exact(v int64) interval           { return interval{v, v, true} }
func span(lo, hi int64) interval       { return interval{lo, hi, true} }
func (iv interval) inWidthRange() bool { return iv.known && iv.lo >= 0 && iv.hi <= 64 }

func (bitwidthCheck) Run(cfg *Config, pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				ev := &widthEval{cfg: cfg, pkg: pkg, fn: fn}
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					width, method, ok := bitioWidthArg(cfg, pkg, call)
					if !ok {
						return true
					}
					iv := ev.eval(width, map[types.Object]bool{})
					if iv.inWidthRange() {
						return true
					}
					msg := method + " width not provably in [0,64]: " + exprString(width)
					if iv.known {
						msg += fmt.Sprintf(" (bounds [%d,%d])", iv.lo, iv.hi)
					}
					diags = append(diags, Diagnostic{
						Pos:     pkg.Fset.Position(width.Pos()),
						Check:   "bitwidth",
						Message: msg,
					})
					return true
				})
			}
		}
	}
	return diags
}

// bitioWidthArg returns the width argument of a WriteBits/ReadBits
// call on a bitio Writer/Reader, if call is one.
func bitioWidthArg(cfg *Config, pkg *Package, call *ast.CallExpr) (ast.Expr, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	name := sel.Sel.Name
	var argIdx int
	var recvName string
	switch name {
	case "WriteBits":
		argIdx, recvName = 1, "Writer"
	case "ReadBits":
		argIdx, recvName = 0, "Reader"
	default:
		return nil, "", false
	}
	recv := typeNamed(pkg.Info.TypeOf(sel.X))
	if recv == nil || recv.Obj().Pkg() == nil {
		return nil, "", false
	}
	if recv.Obj().Name() != recvName || !matchPath(recv.Obj().Pkg().Path(), cfg.BitioPaths) {
		return nil, "", false
	}
	if len(call.Args) <= argIdx {
		return nil, "", false
	}
	return call.Args[argIdx], name, true
}

// typeNamed unwraps pointers and aliases down to a *types.Named.
func typeNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	for {
		switch tt := t.(type) {
		case *types.Named:
			return tt
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Pointer:
			t = tt.Elem()
		default:
			return nil
		}
	}
}

// widthEval performs a tiny interval analysis over one function body.
type widthEval struct {
	cfg *Config
	pkg *Package
	fn  *ast.FuncDecl
}

func (ev *widthEval) eval(e ast.Expr, seen map[types.Object]bool) interval {
	// Constant folding first: covers literals, named consts and
	// constant arithmetic in one step.
	if tv, ok := ev.pkg.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		if v, ok := constant.Int64Val(tv.Value); ok {
			return exact(v)
		}
		return interval{}
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return ev.eval(e.X, seen)
	case *ast.CallExpr:
		return ev.evalCall(e, seen)
	case *ast.SelectorExpr:
		if ev.isTrustedField(e) {
			return span(1, 64)
		}
		return interval{}
	case *ast.Ident:
		return ev.evalIdent(e, seen)
	case *ast.BinaryExpr:
		x := ev.eval(e.X, seen)
		y := ev.eval(e.Y, seen)
		if !x.known || !y.known {
			return interval{}
		}
		switch e.Op {
		case token.ADD:
			return span(x.lo+y.lo, x.hi+y.hi)
		case token.SUB:
			return span(x.lo-y.hi, x.hi-y.lo)
		}
		return interval{}
	}
	return interval{}
}

func (ev *widthEval) evalCall(call *ast.CallExpr, seen map[types.Object]bool) interval {
	// Type conversions like int(x) are transparent.
	if tv, ok := ev.pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return ev.eval(call.Args[0], seen)
	}
	callee := calleeFunc(ev.pkg.Info, call.Fun)
	if callee == nil {
		return interval{}
	}
	full := callee.FullName()
	// Runtime width guards: invariant.Width validates [1,64] on every
	// execution, so the static check credits it.
	if matchName(full, ev.cfg.WidthGuards) || hasSuffixName(full, ev.cfg.WidthGuards) {
		return span(1, 64)
	}
	// math/bits length/population counts are bounded by the word size.
	if callee.Pkg() != nil && callee.Pkg().Path() == "math/bits" {
		switch callee.Name() {
		case "Len", "Len64", "OnesCount", "OnesCount64":
			return span(0, 64)
		case "Len32", "OnesCount32":
			return span(0, 32)
		case "Len16", "OnesCount16":
			return span(0, 16)
		case "Len8", "OnesCount8":
			return span(0, 8)
		}
		return interval{}
	}
	// Width accessors on a validatable config: CodeBits() etc. promise
	// [1,64] once Validate has passed (configbeforeuse enforces the
	// validation half of that contract).
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := typeNamed(sig.Recv().Type())
		if isConfigType(ev.cfg, recv) {
			for _, name := range ev.cfg.WidthAccessors {
				if callee.Name() == name {
					return span(1, 64)
				}
			}
		}
	}
	return interval{}
}

// isTrustedField reports whether sel reads a configured width field
// (e.g. cfg.OffsetBits) from a type carrying a Validate method.
func (ev *widthEval) isTrustedField(sel *ast.SelectorExpr) bool {
	trusted := false
	for _, name := range ev.cfg.WidthFields {
		if sel.Sel.Name == name {
			trusted = true
			break
		}
	}
	if !trusted {
		return false
	}
	owner := typeNamed(ev.pkg.Info.TypeOf(sel.X))
	return isConfigType(ev.cfg, owner)
}

// isConfigType reports whether n is a configured validatable config
// type: named like a config and carrying a `Validate() error` method.
func isConfigType(cfg *Config, n *types.Named) bool {
	if n == nil || !hasValidateMethod(n) {
		return false
	}
	for _, name := range cfg.ConfigTypeNames {
		if n.Obj().Name() == name {
			return true
		}
	}
	return false
}

// evalIdent bounds a local variable by the union of every value
// assigned to it anywhere in the enclosing function.
func (ev *widthEval) evalIdent(id *ast.Ident, seen map[types.Object]bool) interval {
	obj := ev.pkg.Info.Uses[id]
	if obj == nil {
		obj = ev.pkg.Info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || seen[v] {
		return interval{}
	}
	seen[v] = true
	defer delete(seen, v)

	result := interval{}
	first := true
	found := false
	bad := false
	merge := func(iv interval) {
		found = true
		if !iv.known {
			bad = true
			return
		}
		if first {
			result, first = iv, false
			return
		}
		if iv.lo < result.lo {
			result.lo = iv.lo
		}
		if iv.hi > result.hi {
			result.hi = iv.hi
		}
	}
	ast.Inspect(ev.fn, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
				// Compound assignment (+=, <<= ...) to the variable
				// defeats the analysis.
				for _, lhs := range n.Lhs {
					if ev.sameVar(lhs, v) {
						merge(interval{})
					}
				}
				return true
			}
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if ev.sameVar(lhs, v) {
						merge(ev.eval(n.Rhs[i], seen))
					}
				}
			} else {
				// Tuple assignment from a call: unbounded.
				for _, lhs := range n.Lhs {
					if ev.sameVar(lhs, v) {
						merge(interval{})
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if ev.pkg.Info.Defs[name] == v {
					if i < len(n.Values) {
						merge(ev.eval(n.Values[i], seen))
					} else if len(n.Values) == 0 {
						merge(exact(0)) // zero value declaration
					} else {
						merge(interval{})
					}
				}
			}
		case *ast.RangeStmt:
			if ev.sameVar(n.Key, v) || ev.sameVar(n.Value, v) {
				merge(interval{})
			}
		case *ast.IncDecStmt:
			if ev.sameVar(n.X, v) {
				merge(interval{})
			}
		case *ast.UnaryExpr:
			// Taking the address lets the variable change through an
			// alias we cannot see.
			if n.Op == token.AND && ev.sameVar(n.X, v) {
				merge(interval{})
			}
		}
		return true
	})
	if !found || bad {
		return interval{} // parameter, closure capture, or opaque write
	}
	return result
}

func (ev *widthEval) sameVar(e ast.Expr, v *types.Var) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	if obj := ev.pkg.Info.Defs[id]; obj == v {
		return true
	}
	return ev.pkg.Info.Uses[id] == v
}

// calleeFunc resolves the *types.Func a call expression invokes, or nil.
func calleeFunc(info *types.Info, fun ast.Expr) *types.Func {
	switch fun := fun.(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	case *ast.ParenExpr:
		return calleeFunc(info, fun.X)
	}
	return nil
}

// hasValidateMethod reports whether the named type (or its pointer)
// has a `Validate() error` method.
func hasValidateMethod(n *types.Named) bool {
	for _, t := range []types.Type{n, types.NewPointer(n)} {
		obj, _, _ := types.LookupFieldOrMethod(t, true, n.Obj().Pkg(), "Validate")
		f, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		sig := f.Type().(*types.Signature)
		if sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
			types.Identical(sig.Results().At(0).Type(), types.Universe.Lookup("error").Type()) {
			return true
		}
	}
	return false
}

// hasSuffixName reports whether full (a qualified function name)
// ends with any of the given suffixes after a path separator.
func hasSuffixName(full string, suffixes []string) bool {
	for _, s := range suffixes {
		if full == s || len(full) > len(s) && full[len(full)-len(s)-1] == '/' && full[len(full)-len(s):] == s {
			return true
		}
	}
	return false
}
