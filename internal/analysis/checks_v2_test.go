package analysis_test

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"lzwtc/internal/analysis"
)

// The v2 checks lean on stdlib types (io.Reader, context.Context,
// sync.Mutex, time.After). The synthetic importer cannot see the real
// standard library, so minimal stand-ins are declared under the real
// import paths — the checks match on package path + name, which is
// exactly what these fakes provide.
const (
	fakeIoSrc = `package io

type Reader interface {
	Read(p []byte) (n int, err error)
}

func ReadAll(r Reader) ([]byte, error) { return nil, nil }

func LimitReader(r Reader, n int64) Reader { return r }
`
	fakeContextSrc = `package context

type Context interface {
	Done() <-chan struct{}
	Err() error
}

type CancelFunc func()

func Background() Context { return nil }

func WithCancel(parent Context) (Context, CancelFunc) { return parent, func() {} }
`
	fakeTimeSrc = `package time

type Timer struct{ C chan int }

type Time struct{ ns int64 }

func (t Time) After(u Time) bool { return t.ns > u.ns }

func After(d int64) <-chan int { return nil }

func NewTimer(d int64) *Timer { return &Timer{} }
`
	fakeSyncSrc = `package sync

type Mutex struct{ state int }

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

type RWMutex struct{ state int }

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}
`
	fakeBitvecSrc = `package bitvec

func New(n int) []uint64 { return nil }
`
	fakePoolSrc = `package pool

func Run() {}
`
	fakeTelemSrc = `package telem

type Registry struct{}

func (r *Registry) Counter(name, help string) int { return 0 }
func (r *Registry) Gauge(name, help string) int   { return 0 }

type Recorder struct{}

func (r *Recorder) Span(name string) int               { return 0 }
func (r *Recorder) StartSpan(ctx int, name string) int { return 0 }

func Dyn(phase string) string { return phase }
`
)

func TestAllocBoundTaintsUntrustedSizes(t *testing.T) {
	diags := run(t, []synthPkg{
		{"io", fakeIoSrc},
		{"test/internal/bitvec", fakeBitvecSrc},
		{"test/internal/hostile", `package hostile

import (
	"io"

	"test/internal/bitvec"
	"test/internal/invariant"
)

// Unpack has the decode-helper shape: raw payload plus an integer
// header field, allocated without any bound. Must be flagged.
func Unpack(data []byte, n int) []int {
	return make([]int, n)
}

// Guarded rejects hostile sizes before allocating. Must stay clean.
func Guarded(data []byte, n int) []int {
	if n < 0 || n > 1024 {
		return nil
	}
	return make([]int, n)
}

// AcceptForm allocates only inside the bounded branch. Must stay clean.
func AcceptForm(data []byte, n int) []int {
	if n <= 1024 {
		return make([]int, n)
	}
	return nil
}

// InvariantGuarded launders the size through the configured guard.
// Must stay clean.
func InvariantGuarded(data []byte, n int) []int {
	invariant.Check(n <= 1024, "size")
	return make([]int, n)
}

// Vec feeds a tainted size to a configured allocation constructor.
// Must be flagged.
func Vec(data []byte, n int) []uint64 {
	return bitvec.New(n)
}

// FromReader sizes an allocation from a value decoded off the wire by
// an in-module Reader helper. Must be flagged.
func FromReader(r io.Reader) []byte {
	n, _ := readLen(r)
	return make([]byte, n)
}

func readLen(r io.Reader) (int, error) { return 0, nil }

// Slurp buffers an attacker-chosen number of bytes. Must be flagged.
func Slurp(r io.Reader) ([]byte, error) {
	return io.ReadAll(r)
}

// SlurpBounded caps the reader first. Must stay clean.
func SlurpBounded(r io.Reader) ([]byte, error) {
	return io.ReadAll(io.LimitReader(r, 4096))
}
`}}, "allocbound")
	expect(t, diags,
		"make size n derives from untrusted input",
		"New argument n derives from untrusted input",
		"make size n derives from untrusted input",
		"io.ReadAll over unlimited reader r",
	)
}

func TestGoctxRequiresObservableGoroutines(t *testing.T) {
	diags := run(t, []synthPkg{
		{"context", fakeContextSrc},
		{"time", fakeTimeSrc},
		{"test/internal/pool", fakePoolSrc},
		{"test/internal/conc", `package conc

import (
	"context"
	"time"
)

// Bad launches a goroutine nothing can stop or wait for. Must be
// flagged.
func Bad() {
	go func() {}()
}

// Good observes ctx inside the literal. Must stay clean.
func Good(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// Joined sends on a channel the launcher receives from: the launcher
// cannot return without the goroutine. Must stay clean.
func Joined() int {
	ch := make(chan int, 1)
	go func() { ch <- work() }()
	return <-ch
}

func work() int { return 0 }

// Unpooled is a bare function launch with no context argument. Must be
// flagged.
func Unpooled() {
	go work()
}

// DropCancel discards the cancel func. Must be flagged.
func DropCancel(parent context.Context) {
	ctx, _ := context.WithCancel(parent)
	_ = ctx
}

// DeferCancel defers it immediately. Must stay clean.
func DeferCancel(parent context.Context) {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	_ = ctx
}

// Poll allocates a timer per iteration. Must be flagged.
func Poll(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-time.After(10):
		}
	}
}

// PollGood reuses one timer. Must stay clean.
func PollGood(ctx context.Context) {
	t := time.NewTimer(10)
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// CompareLoop calls the time.Time.After *method* in a loop. Must stay
// clean: only the package-level time.After allocates a timer.
func CompareLoop(ts []time.Time, cut time.Time) int {
	n := 0
	for _, u := range ts {
		if u.After(cut) {
			n++
		}
	}
	return n
}
`},
	}, "goctx")
	expect(t, diags,
		"no channel join with its launcher",
		"receives no context.Context and is not pool-launched",
		"cancel function discarded as _",
		"time.After inside a loop",
	)
}

func TestGoctxPoolLaunchIsClean(t *testing.T) {
	diags := run(t, []synthPkg{
		{"context", fakeContextSrc},
		{"time", fakeTimeSrc},
		{"test/internal/pool", fakePoolSrc},
		{"test/internal/conc", `package conc

import "test/internal/pool"

func Dispatch() {
	go pool.Run()
}
`},
	}, "goctx")
	expect(t, diags)
}

func TestLockHygieneWindowsAndCopies(t *testing.T) {
	diags := run(t, []synthPkg{
		{"sync", fakeSyncSrc},
		{"test/internal/locky", `package locky

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

// Copy has a value receiver on a mutex-bearing struct: every call
// copies the lock. Must be flagged.
func (s S) Copy() int { return s.n }

// NoUnlock acquires and never releases. Must be flagged.
func (s *S) NoUnlock() {
	s.mu.Lock()
	s.n++
}

// Clean is the canonical pattern. Must stay clean.
func (s *S) Clean() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

// HeldAcross performs a channel send while holding the lock. Must be
// flagged.
func (s *S) HeldAcross(ch chan int) {
	s.mu.Lock()
	ch <- s.n
	s.mu.Unlock()
}

// ReleasedFirst drops the lock before blocking. Must stay clean.
func (s *S) ReleasedFirst(ch chan int) {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	ch <- n
}

// Shared holds the mutex behind a pointer: copying S2 shares the lock
// rather than duplicating it. Must stay clean.
type S2 struct {
	mu *sync.Mutex
}

func (s S2) Read() {}
`},
	}, "lockhygiene")
	expect(t, diags,
		"value receiver on a type containing a sync mutex",
		"with no matching unlock in this function",
		"channel send while holding s.mu",
	)
}

func TestMetricNameContracts(t *testing.T) {
	pkgs := loadSynthetic(t, append(deps(),
		synthPkg{"test/internal/telem", fakeTelemSrc},
		synthPkg{"test/internal/metrics", `package metrics

import "test/internal/telem"

const (
	Good   = "lzwtc_good_total"
	Orphan = "lzwtc_orphan_total"
	Dup    = "lzwtc_dup_total"
	Twice  = "lzwtc_twice_total"

	SpanGood   = "pipeline.run"
	SpanOrphan = "pipeline.orphan"
)

func Register(r *telem.Registry, name string) {
	r.Counter(Good, "asserted in the package tests")
	r.Counter(Orphan, "registered but never asserted")
	r.Counter(name, "computed name")
	r.Counter("bad name!", "rejected by the prometheus grammar")
	r.Counter(telem.Dyn("encode"), "sanctioned constructor")
	r.Counter(Dup, "one kind")
	r.Gauge(Dup, "another kind")
	r.Counter(Twice, "site one")
	r.Counter(Twice, "site two")
}

func Trace(rec *telem.Recorder, name string) {
	rec.Span(SpanGood)
	rec.StartSpan(0, SpanGood)
	rec.Span(name)
	rec.StartSpan(0, "Bad.Span")
	rec.StartSpan(0, SpanOrphan)
}
`}))
	// The exposition contract is cross-checked against the package's
	// test files, which load.go parses without type-checking; mirror
	// that here by attaching a parsed test file to the synthetic package.
	var metrics *analysis.Package
	for _, p := range pkgs {
		if p.Path == "test/internal/metrics" {
			metrics = p
		}
	}
	if metrics == nil {
		t.Fatal("metrics fixture not loaded")
	}
	testSrc := `package metrics

func TestExposition(t *testing.T) {
	_ = Good
	_ = Dup
	_ = Twice
	_ = SpanGood
}
`
	tf, err := parser.ParseFile(metrics.Fset, "metrics_test.go", testSrc, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse test fixture: %v", err)
	}
	metrics.TestFiles = []*ast.File{tf}

	diags, err := analysis.Run(testConfig(), pkgs, "metricname")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	expect(t, diags,
		"is not a string constant or sanctioned constructor",
		"is not a valid Prometheus metric name",
		"registered under multiple kinds",
		"registered under multiple kinds",
		"registered at multiple sites",
		"metric \"lzwtc_orphan_total\" is exposed but never asserted",
		"span name name is not a string constant",
		"is not in the span grammar",
		"span \"pipeline.orphan\" is recorded but never asserted",
	)
}

func TestStaleIgnoreReportsDeadSuppressions(t *testing.T) {
	diags := run(t, []synthPkg{{"test/internal/lib", `package lib

// Hushed's suppression still silences a live finding: not stale.
func Hushed() {
	panic("known") //lzwtcvet:ignore panicpolicy accepted crash path
}

// Quiet's suppression silences nothing: stale, must be flagged.
func Quiet() int {
	return 1 //lzwtcvet:ignore panicpolicy nothing fires here
}

// Unjudged names a check that did not run this invocation; no verdict.
func Unjudged() int {
	return 2 //lzwtcvet:ignore droppederror not selected
}
`}}, "panicpolicy", "staleignore")
	expect(t, diags, "stale lzwtcvet:ignore: no panicpolicy finding fires here anymore")
}

func TestBaselineRoundTripAndDiff(t *testing.T) {
	root := string(filepath.Separator) + filepath.Join("repo", "root")
	diags := []analysis.Diagnostic{
		{
			Pos:   token.Position{Filename: filepath.Join(root, "internal", "wire", "wire.go"), Line: 12, Column: 3},
			Check: "allocbound", Message: "m-alloc",
		},
		{
			Pos:   token.Position{Filename: filepath.Join(root, "client", "client.go"), Line: 7, Column: 1},
			Check: "goctx", Message: "m-go",
		},
	}
	fs := analysis.ToJSON(root, diags)
	if len(fs) != 2 {
		t.Fatalf("ToJSON: got %d findings, want 2", len(fs))
	}
	// Sorted by file, and repo-relative with forward slashes regardless
	// of platform.
	if fs[0].File != "client/client.go" || fs[1].File != "internal/wire/wire.go" {
		t.Fatalf("ToJSON paths not relative/sorted: %+v", fs)
	}

	path := filepath.Join(t.TempDir(), "baseline.json")
	var buf bytes.Buffer
	if err := analysis.WriteJSON(&buf, fs); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatalf("write baseline: %v", err)
	}
	loaded, err := analysis.LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if len(loaded) != 2 || loaded[0] != fs[0] || loaded[1] != fs[1] {
		t.Fatalf("round trip mismatch: %+v vs %+v", loaded, fs)
	}

	// The baseline match key is file+check+message: a finding that only
	// drifted to another line is neither new nor stale.
	drifted := []analysis.JSONFinding{
		{File: "client/client.go", Line: 99, Col: 1, Check: "goctx", Message: "m-go"},
		{File: "internal/parallel/pool.go", Line: 4, Col: 2, Check: "lockhygiene", Message: "m-new"},
	}
	fresh, stale := analysis.DiffBaseline(drifted, loaded)
	if len(fresh) != 1 || fresh[0].Message != "m-new" {
		t.Fatalf("DiffBaseline fresh = %+v, want the lockhygiene finding only", fresh)
	}
	if len(stale) != 1 || stale[0].Message != "m-alloc" {
		t.Fatalf("DiffBaseline stale = %+v, want the fixed allocbound entry", stale)
	}
}

func TestEmptyJSONIsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := analysis.WriteJSON(&buf, nil); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if got := string(bytes.TrimSpace(buf.Bytes())); got != "[]" {
		t.Fatalf("empty findings must serialize as an array, got %q", got)
	}
}
