package analysis

import (
	"go/ast"
	"go/types"
)

// droppedErrorCheck flags discarded error results in strict packages:
// the bit-exact library packages plus cmd/ and examples/. A dropped
// error in the compression core turns a detectable fault into silent
// bit-stream corruption; in binaries it hides I/O failures from the
// exit status.
//
// Two forms are flagged: a call used as a bare statement whose result
// set contains an error, and an assignment that lands an error in the
// blank identifier. Deferred and go statements are exempt by design —
// an error surfacing mid-unwind has no useful recipient — as are the
// configured never-failing callees (fmt printing, in-memory writers).
type droppedErrorCheck struct{}

func (droppedErrorCheck) Name() string { return "droppederror" }
func (droppedErrorCheck) Doc() string {
	return "strict packages must not discard error results via bare calls or `_ =` assignments"
}

func (droppedErrorCheck) Run(cfg *Config, pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if !matchPath(pkg.Path, cfg.LibraryPaths) && !matchPath(pkg.Path, cfg.StrictErrorPaths) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.DeferStmt, *ast.GoStmt:
					return false
				case *ast.ExprStmt:
					call, ok := n.X.(*ast.CallExpr)
					if !ok {
						return true
					}
					if idx := errorResultIndex(pkg.Info, call); idx >= 0 && !exemptCallee(cfg, pkg.Info, call) {
						diags = append(diags, Diagnostic{
							Pos:     pkg.Fset.Position(call.Pos()),
							Check:   "droppederror",
							Message: "error result of " + exprString(call.Fun) + " discarded by bare call",
						})
					}
					return true
				case *ast.AssignStmt:
					diags = append(diags, checkAssign(cfg, pkg, n)...)
					return true
				}
				return true
			})
		}
	}
	return diags
}

// errorResultIndex returns the index of the first error in the call's
// result tuple, or -1. Type conversions and error-free calls return -1.
func errorResultIndex(info *types.Info, call *ast.CallExpr) int {
	tv, ok := info.Types[call]
	if !ok || tv.IsType() {
		return -1
	}
	errType := types.Universe.Lookup("error").Type()
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errType) {
				return i
			}
		}
	default:
		if t != nil && types.Identical(t, errType) {
			return 0
		}
	}
	return -1
}

// checkAssign flags error values assigned to the blank identifier.
func checkAssign(cfg *Config, pkg *Package, n *ast.AssignStmt) []Diagnostic {
	var diags []Diagnostic
	errType := types.Universe.Lookup("error").Type()
	flag := func(lhs ast.Expr, rhs ast.Expr) {
		if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
			return
		}
		diags = append(diags, Diagnostic{
			Pos:     pkg.Fset.Position(lhs.Pos()),
			Check:   "droppederror",
			Message: "error result of " + exprString(rhs) + " assigned to blank identifier",
		})
	}
	if len(n.Lhs) == len(n.Rhs) {
		// Parallel assignment: each RHS maps to one LHS.
		for i, rhs := range n.Rhs {
			t := pkg.Info.TypeOf(rhs)
			if t == nil || !types.Identical(t, errType) {
				continue
			}
			if call, ok := rhs.(*ast.CallExpr); ok && exemptCallee(cfg, pkg.Info, call) {
				continue
			}
			flag(n.Lhs[i], rhs)
		}
		return diags
	}
	// Tuple assignment from one call: a, _ := f().
	if len(n.Rhs) != 1 {
		return diags
	}
	call, ok := n.Rhs[0].(*ast.CallExpr)
	if !ok || exemptCallee(cfg, pkg.Info, call) {
		return diags
	}
	tv, ok := pkg.Info.Types[call]
	if !ok {
		return diags
	}
	tuple, ok := tv.Type.(*types.Tuple)
	if !ok || tuple.Len() != len(n.Lhs) {
		return diags
	}
	for i := 0; i < tuple.Len(); i++ {
		if types.Identical(tuple.At(i).Type(), errType) {
			flag(n.Lhs[i], call)
		}
	}
	return diags
}

// exemptCallee reports whether the call target is on the configured
// never-fails list.
func exemptCallee(cfg *Config, info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call.Fun)
	return f != nil && matchName(f.FullName(), cfg.ErrorExempt)
}
