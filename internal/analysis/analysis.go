// Package analysis is a repo-specific static-analysis suite for the
// lzwtc module. It enforces invariants that go vet cannot see because
// they are properties of this codebase's contracts, not of the
// language:
//
//   - bitwidth: every bitio.WriteBits/ReadBits call site must pass a
//     width that is provably in [0,64] (constant, validated-config
//     accessor, bits.Len-bounded arithmetic, or an explicit
//     invariant.Width runtime guard).
//   - droppederror: strict packages (the compression core, cmd/ and
//     examples/) may not discard error results via `_ =` or bare calls.
//   - panicpolicy: library packages may only panic through the
//     sanctioned internal/invariant helpers.
//   - configbeforeuse: exported functions consuming a validatable
//     config (a type with a `Validate() error` method) must validate it
//     on some path, directly or by passing it to a function that does.
//
// Findings can be suppressed per line with a comment of the form
//
//	//lzwtcvet:ignore <check>[,<check>...] [reason]
//
// placed on the offending line or the line directly above it. The
// check list may be "all". Suppressions should be recorded in
// internal/analysis/README.md so they stay auditable. Packages listed
// in Config.NoSuppressPaths reject the mechanism outright: any
// //lzwtcvet:ignore comment there is itself reported (check
// "nosuppress") and has no silencing effect.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package under analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TestFiles are the package's _test.go files (internal and
	// external), parsed but NOT type-checked: the metricname check scans
	// them syntactically to cross-check asserted metric names.
	TestFiles []*ast.File
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

// String renders the canonical `file:line:col: [check] message` form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Config scopes the checks to the module's package layout. Path
// patterns ending in "/..." match any import path under the prefix;
// all other patterns match when they equal the import path or are a
// `/`-separated suffix of it.
type Config struct {
	// BitioPaths identifies the package(s) whose Writer.WriteBits and
	// Reader.ReadBits calls the bitwidth check audits.
	BitioPaths []string
	// WidthAccessors are config methods trusted to return a width in
	// [1,64] (their bounds are enforced by the config's Validate).
	WidthAccessors []string
	// WidthFields are config struct fields trusted the same way.
	WidthFields []string
	// WidthGuards are functions (matched by suffix of their full
	// qualified name) that validate a width at runtime and return it.
	WidthGuards []string
	// ConfigTypeNames are the type names treated as validatable
	// configurations; a type qualifies when its name is listed here
	// AND it has a `Validate() error` method. This keeps the checks
	// off large validatable domain objects (e.g. circuit netlists)
	// that are not per-call configuration.
	ConfigTypeNames []string
	// LibraryPaths are the bit-exact core packages: panic-policy and
	// the strict half of error-discipline apply here.
	LibraryPaths []string
	// StrictErrorPaths are additional packages (binaries, examples)
	// where dropped errors are flagged.
	StrictErrorPaths []string
	// PanicAllowPaths are packages allowed to contain bare panics —
	// the sanctioned invariant helper itself.
	PanicAllowPaths []string
	// ErrorExempt lists callees (by full qualified name; a trailing *
	// makes it a prefix pattern) whose dropped results are tolerated:
	// terminal-output helpers and never-failing writers.
	ErrorExempt []string
	// NoSuppressPaths are packages where //lzwtcvet:ignore comments are
	// forbidden: the comment itself becomes a "nosuppress" finding and
	// silences nothing. Used for packages whose discipline must hold
	// unconditionally (the telemetry layer sits on every hot path).
	NoSuppressPaths []string

	// AllocBoundPaths are the hostile-input packages where the
	// allocbound dataflow check audits allocation sizes.
	AllocBoundPaths []string
	// AllocSinks are allocation constructors (by qualified-name suffix)
	// whose arguments must be bounded before the call (bitvec.New).
	AllocSinks []string
	// AllocGuards are runtime bound guards the allocbound check credits:
	// a call mentioning a tainted variable launders it.
	AllocGuards []string
	// GoctxPaths are the concurrent packages the goctx check audits.
	GoctxPaths []string
	// PoolPaths are packages owning goroutine lifecycle (the worker
	// pool); `go` calls into them need no context of their own.
	PoolPaths []string
	// LockPaths are the packages the lockhygiene check audits.
	LockPaths []string
	// BlockingCalls are callees (full qualified names, * prefix
	// patterns) treated as blocking I/O for the held-lock rule.
	BlockingCalls []string
	// TelemetryPaths identify the package(s) defining the metric
	// Registry whose Counter/Gauge/Histogram calls metricname audits.
	TelemetryPaths []string
	// MetricNameAllow are sanctioned dynamic-metric-name constructors
	// (PhaseMetricName); a registration through one is exempt from the
	// string-constant rule.
	MetricNameAllow []string
	// MetricAssertPaths are packages whose registered metric names must
	// each be asserted in that package's tests.
	MetricAssertPaths []string
}

// DefaultConfig returns the configuration for this repository.
func DefaultConfig() Config {
	return Config{
		BitioPaths: []string{"internal/bitio"},
		// Only accessors/fields whose Validate-enforced range fits in
		// [1,64] belong here (EntryBits, for example, has no upper
		// bound and must not be trusted as a stream width).
		WidthAccessors:  []string{"CodeBits"},
		WidthFields:     []string{"CharBits", "BlockBits", "OffsetBits", "LenBits"},
		WidthGuards:     []string{"internal/invariant.Width"},
		ConfigTypeNames: []string{"Config"},
		LibraryPaths: []string{
			"internal/bitio", "internal/core", "internal/decomp",
			"internal/bitvec", "internal/compact", "internal/huffman",
			"internal/lz77", "internal/rle", "internal/telemetry",
			"internal/parallel", "internal/jobs", "internal/dictstore",
		},
		StrictErrorPaths: []string{"lzwtc", "lzwtc/cmd/...", "lzwtc/examples/...", "lzwtc/client"},
		PanicAllowPaths:  []string{"internal/invariant"},
		NoSuppressPaths:  []string{"internal/telemetry", "internal/parallel", "internal/jobs", "internal/dictstore"},
		ErrorExempt: []string{
			"fmt.Print*",
			"fmt.Fprint*",
			"(*strings.Builder).*",
			"(*bytes.Buffer).*",
		},
		AllocBoundPaths: []string{"internal/wire", "internal/server", "lzwtc/client"},
		AllocSinks:      []string{"internal/bitvec.New"},
		AllocGuards:     []string{"internal/invariant.Width", "internal/invariant.Check"},
		GoctxPaths:      []string{"internal/server", "internal/parallel", "internal/jobs", "internal/dictstore", "lzwtc/client", "lzwtc/cmd/..."},
		PoolPaths:       []string{"internal/parallel"},
		LockPaths: []string{
			"internal/bitio", "internal/core", "internal/decomp",
			"internal/bitvec", "internal/compact", "internal/huffman",
			"internal/lz77", "internal/rle", "internal/telemetry",
			"internal/parallel", "internal/server", "internal/jobs",
			"internal/dictstore", "lzwtc/client",
		},
		BlockingCalls:     []string{"(*net/http.Client).Do", "net/http.Get", "net/http.Post"},
		TelemetryPaths:    []string{"internal/telemetry"},
		MetricNameAllow:   []string{"internal/telemetry.PhaseMetricName"},
		MetricAssertPaths: []string{"internal/server", "internal/parallel", "internal/jobs", "internal/dictstore"},
	}
}

// matchPath reports whether an import path matches one of the
// configured patterns.
func matchPath(path string, patterns []string) bool {
	for _, pat := range patterns {
		if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
			if path == prefix || strings.HasPrefix(path, prefix+"/") {
				return true
			}
			continue
		}
		if path == pat || strings.HasSuffix(path, "/"+pat) {
			return true
		}
	}
	return false
}

// matchName reports whether a qualified callee name matches one of the
// exempt patterns (trailing * = prefix match).
func matchName(name string, patterns []string) bool {
	for _, pat := range patterns {
		if prefix, ok := strings.CutSuffix(pat, "*"); ok {
			if strings.HasPrefix(name, prefix) {
				return true
			}
			continue
		}
		if name == pat {
			return true
		}
	}
	return false
}

// Check is one analysis pass. Checks receive every loaded package at
// once so cross-package reasoning (configbeforeuse) sees the whole
// module.
type Check interface {
	Name() string
	Doc() string
	Run(cfg *Config, pkgs []*Package) []Diagnostic
}

// Checks returns the full catalog in stable order.
func Checks() []Check {
	return []Check{
		bitwidthCheck{}, droppedErrorCheck{}, panicPolicyCheck{}, configBeforeUseCheck{},
		allocBoundCheck{}, goctxCheck{}, lockHygieneCheck{}, metricNameCheck{}, staleIgnoreCheck{},
	}
}

// staleIgnoreCheck reports //lzwtcvet:ignore comments whose finding no
// longer fires. It has no Run of its own: the detection happens inside
// applySuppressions, which knows which suppression actually silenced
// something during this run. A stale suppression is a hole someone will
// eventually crawl back through, so it must be deleted (or the ledger
// updated) the moment the underlying finding is fixed.
type staleIgnoreCheck struct{}

func (staleIgnoreCheck) Name() string { return "staleignore" }
func (staleIgnoreCheck) Doc() string {
	return "//lzwtcvet:ignore comments must still suppress a live finding; a suppression whose finding no longer fires is reported"
}
func (staleIgnoreCheck) Run(cfg *Config, pkgs []*Package) []Diagnostic { return nil }

// Run executes the selected checks (all when names is empty) over pkgs
// and returns surviving findings, sorted by position, with
// //lzwtcvet:ignore suppressions already applied.
func Run(cfg *Config, pkgs []*Package, names ...string) ([]Diagnostic, error) {
	selected := Checks()
	if len(names) > 0 {
		byName := map[string]Check{}
		for _, c := range selected {
			byName[c.Name()] = c
		}
		selected = selected[:0]
		for _, n := range names {
			c, ok := byName[n]
			if !ok {
				return nil, fmt.Errorf("analysis: unknown check %q", n)
			}
			selected = append(selected, c)
		}
	}
	var diags []Diagnostic
	selNames := map[string]bool{}
	for _, c := range selected {
		selNames[c.Name()] = true
		diags = append(diags, c.Run(cfg, pkgs)...)
	}
	diags = applySuppressions(cfg, pkgs, diags, selNames, len(names) == 0)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return diags, nil
}

// suppressionKey identifies one suppressed (file, line, check).
type suppressionKey struct {
	file  string
	line  int
	check string
}

// applySuppressions drops diagnostics covered by an
// //lzwtcvet:ignore comment on the same line or the line above. In
// packages matching cfg.NoSuppressPaths the comment silences nothing
// and is instead reported as a "nosuppress" finding. When the
// staleignore check is selected, a suppression that silenced nothing —
// and whose named check actually ran (or "all" during a full run) — is
// reported as stale at the comment's position.
func applySuppressions(cfg *Config, pkgs []*Package, diags []Diagnostic, selected map[string]bool, fullRun bool) []Diagnostic {
	sup := map[suppressionKey]bool{}
	supPos := map[suppressionKey]token.Position{}
	for _, pkg := range pkgs {
		noSuppress := matchPath(pkg.Path, cfg.NoSuppressPaths)
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					rest, ok := strings.CutPrefix(text, "lzwtcvet:ignore")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					if noSuppress {
						diags = append(diags, Diagnostic{
							Pos:     pos,
							Check:   "nosuppress",
							Message: fmt.Sprintf("lzwtcvet:ignore is forbidden in %s (NoSuppressPaths); fix the finding instead", pkg.Path),
						})
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						continue
					}
					for _, name := range strings.Split(fields[0], ",") {
						key := suppressionKey{pos.Filename, pos.Line, name}
						sup[key] = true
						supPos[key] = pos
					}
				}
			}
		}
	}
	if len(sup) == 0 {
		return diags
	}
	used := map[suppressionKey]bool{}
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, name := range []string{d.Check, "all"} {
			for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
				key := suppressionKey{d.Pos.Filename, line, name}
				if sup[key] {
					used[key] = true
					suppressed = true
				}
			}
			if suppressed {
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	if selected["staleignore"] {
		for key, pos := range supPos {
			if used[key] {
				continue
			}
			// Only judge a suppression whose check actually ran this
			// invocation: an "all" suppression is verdict-worthy only on
			// a full-catalog run.
			if key.check == "all" {
				if !fullRun {
					continue
				}
			} else if !selected[key.check] {
				continue
			}
			kept = append(kept, Diagnostic{
				Pos:     pos,
				Check:   "staleignore",
				Message: fmt.Sprintf("stale lzwtcvet:ignore: no %s finding fires here anymore; delete the comment and its ledger entry", key.check),
			})
		}
	}
	return kept
}

// exprString renders an expression compactly for messages.
func exprString(e ast.Expr) string {
	var sb strings.Builder
	writeExpr(&sb, e)
	s := sb.String()
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return s
}

func writeExpr(sb *strings.Builder, e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		sb.WriteString(e.Name)
	case *ast.BasicLit:
		sb.WriteString(e.Value)
	case *ast.SelectorExpr:
		writeExpr(sb, e.X)
		sb.WriteByte('.')
		sb.WriteString(e.Sel.Name)
	case *ast.CallExpr:
		writeExpr(sb, e.Fun)
		sb.WriteByte('(')
		for i, a := range e.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, a)
		}
		sb.WriteByte(')')
	case *ast.BinaryExpr:
		writeExpr(sb, e.X)
		sb.WriteString(e.Op.String())
		writeExpr(sb, e.Y)
	case *ast.UnaryExpr:
		sb.WriteString(e.Op.String())
		writeExpr(sb, e.X)
	case *ast.ParenExpr:
		sb.WriteByte('(')
		writeExpr(sb, e.X)
		sb.WriteByte(')')
	case *ast.IndexExpr:
		writeExpr(sb, e.X)
		sb.WriteByte('[')
		writeExpr(sb, e.Index)
		sb.WriteByte(']')
	case *ast.StarExpr:
		sb.WriteByte('*')
		writeExpr(sb, e.X)
	default:
		fmt.Fprintf(sb, "<%T>", e)
	}
}
