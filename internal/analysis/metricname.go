package analysis

import (
	"go/ast"
	"go/constant"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// metricNameCheck pins down the telemetry naming contract. A typo'd or
// computed metric name is invisible until a dashboard goes blank, so:
//
//   - every Registry.Counter/Gauge/Histogram name argument must be a
//     compile-time string constant (literal or package const) or a call
//     to a sanctioned dynamic-name constructor (MetricNameAllow);
//   - a name must be a valid Prometheus metric name;
//   - a name must be registered under exactly one kind and at exactly
//     one static call site — the same string as both a counter and a
//     gauge doubly exports it, and a second site means two help strings
//     fighting over one series;
//   - in MetricAssertPaths packages, every registered name must be
//     asserted somewhere in that package's tests (by const reference or
//     literal value), so /metrics output and tests cannot drift apart.
//
// The same contract extends to trace spans: every Recorder.Span and
// Recorder.StartSpan name must be a compile-time string constant in the
// dotted-lowercase span grammar (span names feed PhaseMetricName
// histograms and trace dashboards), and in MetricAssertPaths packages
// each span name must be asserted in that package's tests.
type metricNameCheck struct{}

func (metricNameCheck) Name() string { return "metricname" }
func (metricNameCheck) Doc() string {
	return "metric names must be string constants (or sanctioned constructors), valid, registered under one kind at one site, and asserted in tests for MetricAssertPaths packages; span names must be constants in the dotted-lowercase grammar"
}

var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// spanNameRE is the grammar for trace span names: lowercase dotted
// segments ("core.match_loop", "parse"). PhaseMetricName maps them onto
// Prometheus names, so anything outside this set would silently mangle.
var spanNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$`)

// metricReg is one statically named registration site.
type metricReg struct {
	pkg       *Package
	pos       ast.Node
	kind      string // Counter, Gauge, Histogram
	value     string // the metric name
	constName string // identifier the name arrived through, "" for a literal
}

func (c metricNameCheck) Run(cfg *Config, pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	report := func(pkg *Package, n ast.Node, msg string) {
		diags = append(diags, Diagnostic{Pos: pkg.Fset.Position(n.Pos()), Check: "metricname", Message: msg})
	}
	var regs []metricReg
	var spans []metricReg
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if idx, ok := spanCall(cfg, pkg, call); ok && len(call.Args) > idx {
					nameArg := call.Args[idx]
					tv, hasTV := pkg.Info.Types[nameArg]
					if !hasTV || tv.Value == nil || tv.Value.Kind() != constant.String {
						report(pkg, nameArg, "span name "+exprString(nameArg)+
							" is not a string constant; a computed span name cannot be audited against traces and dashboards")
						return true
					}
					value := constant.StringVal(tv.Value)
					if !spanNameRE.MatchString(value) {
						report(pkg, nameArg, "span name "+strconv.Quote(value)+
							" is not in the span grammar (lowercase dotted segments); PhaseMetricName would mangle it")
						return true
					}
					spans = append(spans, metricReg{pkg, nameArg, "Span", value, constIdentName(nameArg)})
					return true
				}
				kind, ok := registryCall(cfg, pkg, call)
				if !ok || len(call.Args) == 0 {
					return true
				}
				nameArg := call.Args[0]
				tv, hasTV := pkg.Info.Types[nameArg]
				if !hasTV || tv.Value == nil || tv.Value.Kind() != constant.String {
					if inner, ok := nameArg.(*ast.CallExpr); ok {
						if callee := calleeFunc(pkg.Info, inner.Fun); callee != nil {
							full := callee.FullName()
							if matchName(full, cfg.MetricNameAllow) || hasSuffixName(full, cfg.MetricNameAllow) {
								return true // sanctioned constructor
							}
						}
					}
					report(pkg, nameArg, "metric name "+exprString(nameArg)+
						" is not a string constant or sanctioned constructor; a computed name cannot be audited against dashboards and tests")
					return true
				}
				value := constant.StringVal(tv.Value)
				if !metricNameRE.MatchString(value) {
					report(pkg, nameArg, "metric name "+strconv.Quote(value)+" is not a valid Prometheus metric name")
					return true
				}
				regs = append(regs, metricReg{pkg, nameArg, kind, value, constIdentName(nameArg)})
				return true
			})
		}
	}

	// One kind, one site per name.
	byValue := map[string][]metricReg{}
	for _, r := range regs {
		byValue[r.value] = append(byValue[r.value], r)
	}
	values := make([]string, 0, len(byValue))
	for v := range byValue {
		values = append(values, v)
	}
	sort.Strings(values)
	for _, v := range values {
		group := byValue[v]
		if len(group) == 1 {
			continue
		}
		kinds := map[string]bool{}
		for _, r := range group {
			kinds[r.kind] = true
		}
		if len(kinds) > 1 {
			names := make([]string, 0, len(kinds))
			for k := range kinds {
				names = append(names, k)
			}
			sort.Strings(names)
			for _, r := range group {
				report(r.pkg, r.pos, "metric "+strconv.Quote(v)+" registered under multiple kinds ("+
					strings.Join(names, ", ")+"); each name must be one metric")
			}
			continue
		}
		first := group[0]
		for _, r := range group[1:] {
			report(r.pkg, r.pos, "metric "+strconv.Quote(v)+" registered at multiple sites (first at "+
				first.pkg.Fset.Position(first.pos.Pos()).String()+"); register once and share the handle")
		}
	}

	// Test cross-check for the packages whose /metrics surface is part
	// of the service contract. Span names carry the same burden there:
	// a renamed span breaks trace consumers as silently as a renamed
	// metric breaks dashboards.
	asserted := map[string]testAsserts{}
	assertsFor := func(pkg *Package) testAsserts {
		a, ok := asserted[pkg.Path]
		if !ok {
			a = collectTestAsserts(pkg)
			asserted[pkg.Path] = a
		}
		return a
	}
	for _, r := range regs {
		if !matchPath(r.pkg.Path, cfg.MetricAssertPaths) {
			continue
		}
		a := assertsFor(r.pkg)
		if a.values[r.value] || (r.constName != "" && a.idents[r.constName]) {
			continue
		}
		report(r.pkg, r.pos, "metric "+strconv.Quote(r.value)+
			" is exposed but never asserted in this package's tests; dashboards depending on it can silently break")
	}
	for _, r := range spans {
		if !matchPath(r.pkg.Path, cfg.MetricAssertPaths) {
			continue
		}
		a := assertsFor(r.pkg)
		if a.values[r.value] || (r.constName != "" && a.idents[r.constName]) {
			continue
		}
		report(r.pkg, r.pos, "span "+strconv.Quote(r.value)+
			" is recorded but never asserted in this package's tests; trace consumers depending on it can silently break")
	}
	return diags
}

// spanCall reports whether call starts a trace or phase span on the
// telemetry Recorder, returning the index of the name argument
// (Span(name), StartSpan(ctx, name)).
func spanCall(cfg *Config, pkg *Package, call *ast.CallExpr) (int, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0, false
	}
	var idx int
	switch sel.Sel.Name {
	case "Span":
		idx = 0
	case "StartSpan":
		idx = 1
	default:
		return 0, false
	}
	recv := typeNamed(pkg.Info.TypeOf(sel.X))
	if recv == nil || recv.Obj().Name() != "Recorder" || recv.Obj().Pkg() == nil {
		return 0, false
	}
	if !matchPath(recv.Obj().Pkg().Path(), cfg.TelemetryPaths) {
		return 0, false
	}
	return idx, true
}

// registryCall reports whether call registers a metric on the telemetry
// Registry, returning the kind.
func registryCall(cfg *Config, pkg *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Counter", "Gauge", "Histogram":
	default:
		return "", false
	}
	recv := typeNamed(pkg.Info.TypeOf(sel.X))
	if recv == nil || recv.Obj().Name() != "Registry" || recv.Obj().Pkg() == nil {
		return "", false
	}
	if !matchPath(recv.Obj().Pkg().Path(), cfg.TelemetryPaths) {
		return "", false
	}
	return sel.Sel.Name, true
}

// constIdentName returns the identifier a constant name expression goes
// through (MetricRequests, server.MetricRequests), or "" for a bare
// literal or constant arithmetic.
func constIdentName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return constIdentName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

// testAsserts is what a package's test files mention: string literal
// values and identifier names. Test files are parse-only (load.go), so
// the scan is syntactic.
type testAsserts struct {
	values map[string]bool
	idents map[string]bool
}

func collectTestAsserts(pkg *Package) testAsserts {
	a := testAsserts{values: map[string]bool{}, idents: map[string]bool{}}
	for _, f := range pkg.TestFiles {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BasicLit:
				if n.Kind.String() == "STRING" {
					if v, err := strconv.Unquote(n.Value); err == nil {
						a.values[v] = true
					}
				}
			case *ast.Ident:
				a.idents[n.Name] = true
			}
			return true
		})
	}
	return a
}
