package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath   string
	Dir          string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Export       string
	DepOnly      bool
	Standard     bool
	Module       *struct{ Path string }
	Error        *struct{ Err string }
}

// Load enumerates packages with the go command, then parses and
// type-checks every in-module match from source. Out-of-module
// dependencies (the standard library) are imported from the export
// data `go list -export` leaves in the build cache, so the loader
// needs nothing beyond the standard toolchain.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,TestGoFiles,XTestGoFiles,Export,DepOnly,Standard,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.Bytes())
	}

	var listed []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		listed = append(listed, lp)
	}

	ld := &loader{
		fset:    token.NewFileSet(),
		listed:  map[string]*listedPackage{},
		checked: map[string]*Package{},
		exports: map[string]string{},
	}
	for _, lp := range listed {
		ld.listed[lp.ImportPath] = lp
		if lp.Export != "" {
			ld.exports[lp.ImportPath] = lp.Export
		}
	}
	ld.gc = importer.ForCompiler(ld.fset, "gc", ld.lookupExport)

	var pkgs []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard || lp.Module == nil {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := ld.check(lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	if len(pkgs) == 0 {
		// go list -e tolerates broken patterns; a typo must not read
		// as an all-clean run.
		return nil, fmt.Errorf("analysis: no packages matched %v", patterns)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

type loader struct {
	fset    *token.FileSet
	listed  map[string]*listedPackage
	checked map[string]*Package
	exports map[string]string
	gc      types.Importer
}

// lookupExport feeds the gc importer the export-data files go list
// reported.
func (ld *loader) lookupExport(path string) (io.ReadCloser, error) {
	f, ok := ld.exports[path]
	if !ok {
		return nil, fmt.Errorf("analysis: no export data for %q", path)
	}
	return os.Open(f)
}

// Import implements types.Importer: in-module packages resolve to the
// source-checked package (so AST-level facts share one object world),
// everything else to compiled export data.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if lp, ok := ld.listed[path]; ok && !lp.Standard && lp.Module != nil {
		pkg, err := ld.check(lp)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.gc.Import(path)
}

// check parses and type-checks one in-module package (memoized).
func (ld *loader) check(lp *listedPackage) (*Package, error) {
	if pkg, ok := ld.checked[lp.ImportPath]; ok {
		return pkg, nil
	}
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(lp.Dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(lp.ImportPath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", lp.ImportPath, err)
	}
	// Test files are parsed but not type-checked: they exist so the
	// metricname check can cross-check asserted names syntactically,
	// without dragging test-only dependencies into the type-check.
	var testFiles []*ast.File
	for _, name := range append(append([]string{}, lp.TestGoFiles...), lp.XTestGoFiles...) {
		f, err := parser.ParseFile(ld.fset, filepath.Join(lp.Dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		testFiles = append(testFiles, f)
	}
	pkg := &Package{
		Path:      lp.ImportPath,
		Fset:      ld.fset,
		Files:     files,
		Types:     tpkg,
		Info:      info,
		TestFiles: testFiles,
	}
	ld.checked[lp.ImportPath] = pkg
	return pkg, nil
}
