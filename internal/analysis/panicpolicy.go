package analysis

import (
	"go/ast"
	"go/types"
)

// panicPolicyCheck forbids bare panic calls in the library packages.
// The sanctioned route is internal/invariant (Violatef/Check/Must),
// which panics with a typed Violation value through one auditable
// chokepoint; callers can then distinguish invariant violations from
// incidental runtime panics, and every deliberate halt is greppable.
type panicPolicyCheck struct{}

func (panicPolicyCheck) Name() string { return "panicpolicy" }
func (panicPolicyCheck) Doc() string {
	return "library packages may panic only through the internal/invariant helpers"
}

func (panicPolicyCheck) Run(cfg *Config, pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if !matchPath(pkg.Path, cfg.LibraryPaths) || matchPath(pkg.Path, cfg.PanicAllowPaths) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if _, ok := pkg.Info.Uses[id].(*types.Builtin); !ok {
					return true // shadowed identifier, not the builtin
				}
				diags = append(diags, Diagnostic{
					Pos:     pkg.Fset.Position(call.Pos()),
					Check:   "panicpolicy",
					Message: "bare panic in library package; use invariant.Violatef / Check / Must",
				})
				return true
			})
		}
	}
	return diags
}
