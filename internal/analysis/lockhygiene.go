package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockHygieneCheck enforces mutex discipline in LockPaths packages:
//
//   - no mutex copies: a method on a type containing a sync.Mutex or
//     sync.RWMutex must use a pointer receiver;
//   - every Lock/RLock must have a matching Unlock/RUnlock on the same
//     receiver in the same function (deferred or plain) — a function
//     that locks and never unlocks deadlocks its next caller;
//   - no lock held across a blocking operation: a channel send/receive,
//     a select without default, or a configured blocking call (an HTTP
//     round trip) between Lock and Unlock turns every other user of the
//     mutex into a hostage of that I/O.
type lockHygieneCheck struct{}

func (lockHygieneCheck) Name() string { return "lockhygiene" }
func (lockHygieneCheck) Doc() string {
	return "no mutex copies (pointer receivers), no Lock without matching Unlock in-function, no lock held across channel ops or blocking calls"
}

func (c lockHygieneCheck) Run(cfg *Config, pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if !matchPath(pkg.Path, cfg.LockPaths) {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				diags = append(diags, checkReceiverCopiesLock(pkg, fn)...)
			}
			for _, frame := range frames(file) {
				diags = append(diags, checkLockWindows(cfg, pkg, frame)...)
			}
		}
	}
	return diags
}

// checkReceiverCopiesLock flags value receivers on lock-bearing types.
func checkReceiverCopiesLock(pkg *Package, fn *ast.FuncDecl) []Diagnostic {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return nil
	}
	recv := fn.Recv.List[0]
	t := pkg.Info.TypeOf(recv.Type)
	if t == nil {
		return nil
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return nil
	}
	if !containsLock(t, map[types.Type]bool{}) {
		return nil
	}
	return []Diagnostic{{
		Pos:   pkg.Fset.Position(recv.Type.Pos()),
		Check: "lockhygiene",
		Message: "method " + fn.Name.Name + " has a value receiver on a type containing a sync mutex; " +
			"each call copies the lock — use a pointer receiver",
	}}
}

// containsLock reports whether t (transitively through struct fields,
// embedded or named) contains a sync.Mutex or sync.RWMutex.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if isMutexType(t) {
		return true
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if _, isPtr := ft.Underlying().(*types.Pointer); isPtr {
			continue // a *Mutex field shares, it does not copy
		}
		if containsLock(ft, seen) {
			return true
		}
	}
	return false
}

func isMutexType(t types.Type) bool {
	n := typeNamed(t)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return false
	}
	switch n.Obj().Name() {
	case "Mutex", "RWMutex":
		return true
	}
	return false
}

// lockEvent is one mutex operation or blocking operation inside a
// frame, in source order.
type lockEvent struct {
	pos  token.Pos
	kind string // "lock", "unlock", "deferunlock", "block"
	recv string // exprString of the mutex receiver; "" for block
	op   string // method or blocking-op description
}

// checkLockWindows audits one function frame's Lock/Unlock pairing and
// the operations performed while a lock is held.
func checkLockWindows(cfg *Config, pkg *Package, frame *ast.BlockStmt) []Diagnostic {
	var events []lockEvent
	addMutexCall := func(call *ast.CallExpr, deferred bool) bool {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		name := sel.Sel.Name
		switch name {
		case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
		default:
			return false
		}
		if !isMutexType(pkg.Info.TypeOf(sel.X)) {
			return false
		}
		kind := "lock"
		if name == "Unlock" || name == "RUnlock" {
			kind = "unlock"
			if deferred {
				kind = "deferunlock"
			}
		} else if name == "TryLock" || name == "TryRLock" {
			// TryLock's acquisition is conditional; pairing is audited
			// only for unconditional locks.
			return true
		}
		events = append(events, lockEvent{call.Pos(), kind, exprString(sel.X), name})
		return true
	}
	inspectFrame(frame, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if addMutexCall(n.Call, true) {
				return false
			}
			// defer func(){ ... mu.Unlock() ... }(): credit unlocks
			// inside the deferred literal too.
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						addMutexCall(call, true)
					}
					return true
				})
				return false
			}
		case *ast.CallExpr:
			if addMutexCall(n, false) {
				return false
			}
			if desc, ok := blockingCall(cfg, pkg, n); ok {
				events = append(events, lockEvent{n.Pos(), "block", "", desc})
			}
		case *ast.SendStmt:
			events = append(events, lockEvent{n.Pos(), "block", "", "channel send"})
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				events = append(events, lockEvent{n.Pos(), "block", "", "channel receive"})
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, cl := range n.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				events = append(events, lockEvent{n.Pos(), "block", "", "select"})
			}
			// The cases' own channel ops are part of the select; do not
			// double-report them.
			for _, cl := range n.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					for _, s := range cc.Body {
						ast.Inspect(s, func(m ast.Node) bool {
							if call, ok := m.(*ast.CallExpr); ok {
								if addMutexCall(call, false) {
									return false
								}
							}
							return true
						})
					}
				}
			}
			return false
		case *ast.RangeStmt:
			if _, isChan := pkg.Info.TypeOf(n.X).Underlying().(*types.Chan); isChan {
				events = append(events, lockEvent{n.Pos(), "block", "", "range over channel"})
			}
		}
		return true
	})

	var diags []Diagnostic
	report := func(pos token.Pos, msg string) {
		diags = append(diags, Diagnostic{Pos: pkg.Fset.Position(pos), Check: "lockhygiene", Message: msg})
	}
	for i, ev := range events {
		if ev.kind != "lock" {
			continue
		}
		// Pairing: any deferred unlock on the same receiver, or a plain
		// unlock later in source order.
		var unlockAt token.Pos
		deferred := false
		for _, other := range events {
			if other.recv != ev.recv {
				continue
			}
			if other.kind == "deferunlock" {
				deferred = true
			}
			if other.kind == "unlock" && other.pos > ev.pos && (unlockAt == token.NoPos || other.pos < unlockAt) {
				unlockAt = other.pos
			}
		}
		if !deferred && unlockAt == token.NoPos {
			report(ev.pos, ev.op+" on "+ev.recv+" with no matching unlock in this function; the next caller deadlocks")
			continue
		}
		// Held-across-blocking: the window runs from the lock to the
		// first plain unlock, or to the end of the frame when only a
		// deferred unlock exists.
		end := unlockAt
		if end == token.NoPos {
			end = frame.End()
		}
		for _, other := range events[i:] {
			if other.kind == "block" && other.pos > ev.pos && other.pos < end {
				report(other.pos, other.op+" while holding "+ev.recv+" (locked via "+ev.op+
					"); release the lock before blocking")
			}
		}
	}
	return diags
}

// blockingCall reports whether call matches a configured blocking
// callee (BlockingCalls, full qualified names with * prefix patterns).
func blockingCall(cfg *Config, pkg *Package, call *ast.CallExpr) (string, bool) {
	callee := calleeFunc(pkg.Info, call.Fun)
	if callee == nil {
		return "", false
	}
	full := callee.FullName()
	if matchName(full, cfg.BlockingCalls) {
		return "blocking call " + full, true
	}
	return "", false
}
