package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"lzwtc/internal/analysis"
)

// The tests run every check against small synthetic packages held in
// memory: one "bad" fixture that must trip the check and one "good"
// fixture that must stay clean. The fixtures import fake bitio /
// invariant / core packages under test/..., and the Config points the
// checks at those paths, so nothing here depends on the real module
// layout.

// synthPkg is one in-memory package: an import path plus a single
// source file.
type synthPkg struct {
	path string
	src  string
}

// mapImporter resolves imports against already-checked packages.
type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if p, ok := m[path]; ok {
		return p, nil
	}
	return nil, &importError{path}
}

type importError struct{ path string }

func (e *importError) Error() string { return "synthetic importer: unknown package " + e.path }

// loadSynthetic parses and type-checks the packages in order (imports
// must precede importers) and wraps them for analysis.
func loadSynthetic(t *testing.T, pkgs []synthPkg) []*analysis.Package {
	t.Helper()
	fset := token.NewFileSet()
	done := mapImporter{}
	var out []*analysis.Package
	for _, sp := range pkgs {
		fname := strings.ReplaceAll(sp.path, "/", "_") + ".go"
		file, err := parser.ParseFile(fset, fname, sp.src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", sp.path, err)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: done}
		tpkg, err := conf.Check(sp.path, fset, []*ast.File{file}, info)
		if err != nil {
			t.Fatalf("typecheck %s: %v", sp.path, err)
		}
		done[sp.path] = tpkg
		out = append(out, &analysis.Package{
			Path:  sp.path,
			Fset:  fset,
			Files: []*ast.File{file},
			Types: tpkg,
			Info:  info,
		})
	}
	return out
}

// testConfig scopes the checks to the synthetic package layout.
func testConfig() *analysis.Config {
	return &analysis.Config{
		BitioPaths:       []string{"test/internal/bitio"},
		WidthAccessors:   []string{"CodeBits"},
		WidthFields:      []string{"CharBits"},
		WidthGuards:      []string{"test/internal/invariant.Width"},
		ConfigTypeNames:  []string{"Config"},
		LibraryPaths:     []string{"test/internal/lib"},
		StrictErrorPaths: []string{"test/cmd/..."},
		PanicAllowPaths:  []string{"test/internal/invariant"},
		ErrorExempt:      []string{"test/internal/lib.NeverFails"},
		NoSuppressPaths:  []string{"test/internal/nosup"},

		AllocBoundPaths:   []string{"test/internal/hostile"},
		AllocSinks:        []string{"test/internal/bitvec.New"},
		AllocGuards:       []string{"test/internal/invariant.Check", "test/internal/invariant.Width"},
		GoctxPaths:        []string{"test/internal/conc"},
		PoolPaths:         []string{"test/internal/pool"},
		LockPaths:         []string{"test/internal/locky"},
		TelemetryPaths:    []string{"test/internal/telem"},
		MetricNameAllow:   []string{"test/internal/telem.Dyn"},
		MetricAssertPaths: []string{"test/internal/metrics"},
	}
}

// Shared fixture packages mimicking the real module's contracts.
const (
	bitioSrc = `package bitio

type Writer struct{}

func (w *Writer) WriteBits(v uint64, n int) {}

type Reader struct{}

func (r *Reader) ReadBits(n int) (uint64, error) { return 0, nil }
`
	invariantSrc = `package invariant

func Width(n int) int { return n }

func Must(err error) {}

func Check(cond bool, format string, args ...any) {}
`
	coreSrc = `package core

type Config struct {
	CharBits int
	Dict     int
}

func (c Config) Validate() error { return nil }

func (c Config) CodeBits() int { return c.Dict }
`
)

func deps() []synthPkg {
	return []synthPkg{
		{"test/internal/bitio", bitioSrc},
		{"test/internal/invariant", invariantSrc},
		{"test/internal/core", coreSrc},
	}
}

// run loads the fixture set and executes the named checks.
func run(t *testing.T, extra []synthPkg, checks ...string) []analysis.Diagnostic {
	t.Helper()
	pkgs := loadSynthetic(t, append(deps(), extra...))
	cfg := testConfig()
	diags, err := analysis.Run(cfg, pkgs, checks...)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return diags
}

// expect asserts that exactly the diagnostics whose messages contain
// the given markers were reported, in any order.
func expect(t *testing.T, diags []analysis.Diagnostic, markers ...string) {
	t.Helper()
	if len(diags) != len(markers) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(markers), render(diags))
	}
	for _, m := range markers {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, m) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic mentions %q:\n%s", m, render(diags))
		}
	}
}

func render(diags []analysis.Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString("  " + d.String() + "\n")
	}
	return sb.String()
}

func TestBitwidthFlagsUnprovenWidths(t *testing.T) {
	diags := run(t, []synthPkg{{"test/internal/lib", `package lib

import "test/internal/bitio"

// Param is an unbounded parameter: no proof possible.
func Param(w *bitio.Writer, n int) {
	w.WriteBits(0, n)
}

// Arith has a provable bound, but it exceeds 64.
func Arith(w *bitio.Writer) {
	k := 60
	k = 70
	w.WriteBits(0, k)
}

// Reading is audited the same way as writing.
func Read(r *bitio.Reader, n int) error {
	_, err := r.ReadBits(n)
	return err
}
`}}, "bitwidth")
	expect(t, diags,
		"WriteBits width not provably in [0,64]: n",
		"bounds [60,70]",
		"ReadBits width not provably in [0,64]: n",
	)
}

func TestBitwidthAcceptsProvenWidths(t *testing.T) {
	diags := run(t, []synthPkg{{"test/internal/lib", `package lib

import (
	"test/internal/bitio"
	"test/internal/core"
	"test/internal/invariant"
)

func Emit(w *bitio.Writer, cfg core.Config, n int) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	w.WriteBits(1, 8)                  // constant
	w.WriteBits(2, cfg.CharBits)       // trusted validated field
	w.WriteBits(3, cfg.CodeBits())     // trusted validated accessor
	w.WriteBits(4, invariant.Width(n)) // runtime guard
	k := 3
	w.WriteBits(5, k+2) // local interval arithmetic
	return nil
}

func Pull(r *bitio.Reader) (uint64, error) {
	return r.ReadBits(16)
}
`}}, "bitwidth")
	expect(t, diags)
}

func TestDroppedErrorFlagsDiscards(t *testing.T) {
	diags := run(t, []synthPkg{{"test/internal/lib", `package lib

func fail() error { return nil }

func pair() (int, error) { return 0, nil }

func Bad() {
	fail()        // bare call
	_ = fail()    // blank single assignment
	_, _ = pair() // blank tuple assignment
}
`}}, "droppederror")
	expect(t, diags,
		"discarded by bare call",
		"fail() assigned to blank identifier",
		"pair() assigned to blank identifier",
	)
}

func TestDroppedErrorAcceptsHandledAndExempt(t *testing.T) {
	diags := run(t, []synthPkg{{"test/internal/lib", `package lib

func fail() error { return nil }

func pair() (int, error) { return 0, nil }

// NeverFails is on the configured exempt list.
func NeverFails() error { return nil }

func Good() error {
	if err := fail(); err != nil {
		return err
	}
	defer fail() // defers are exempt by design
	NeverFails()
	v, err := pair()
	_ = v // non-error blanks are fine
	return err
}
`}}, "droppederror")
	expect(t, diags)
}

func TestDroppedErrorScopedToStrictPackages(t *testing.T) {
	// test/other matches neither LibraryPaths nor StrictErrorPaths, so
	// its dropped errors are out of scope; test/cmd/tool matches the
	// strict /... pattern.
	diags := run(t, []synthPkg{
		{"test/other", `package other

func fail() error { return nil }

func Loose() { fail() }
`},
		{"test/cmd/tool", `package tool

func fail() error { return nil }

func Strict() { fail() }
`},
	}, "droppederror")
	if len(diags) != 1 || !strings.Contains(diags[0].Pos.Filename, "test_cmd_tool") {
		t.Fatalf("want exactly one finding in test/cmd/tool, got:\n%s", render(diags))
	}
}

func TestPanicPolicyFlagsBarePanics(t *testing.T) {
	diags := run(t, []synthPkg{{"test/internal/lib", `package lib

func Explode() {
	panic("boom")
}

func Shadowed() {
	panic := func(string) {}
	panic("not the builtin")
}
`}}, "panicpolicy")
	expect(t, diags, "bare panic in library package")
}

func TestPanicPolicyAllowsInvariantPackage(t *testing.T) {
	// The invariant package itself panics (it is the chokepoint) and is
	// on the allow list; re-check it alongside a clean lib package.
	diags := run(t, []synthPkg{{"test/internal/lib", `package lib

import "test/internal/invariant"

func Checked(err error) {
	invariant.Must(err)
}
`}}, "panicpolicy")
	expect(t, diags)
}

func TestConfigBeforeUseFlagsUnvalidatedConsumption(t *testing.T) {
	diags := run(t, []synthPkg{{"test/internal/lib", `package lib

import "test/internal/core"

func Leak(cfg core.Config) int {
	return cfg.CharBits
}
`}}, "configbeforeuse")
	expect(t, diags, "Leak consumes Config parameter cfg without calling Validate")
}

func TestConfigBeforeUseAcceptsValidatedPaths(t *testing.T) {
	diags := run(t, []synthPkg{{"test/internal/lib", `package lib

import "test/internal/core"

func Direct(cfg core.Config) (int, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	return cfg.CharBits, nil
}

// Forward consumes cfg but also hands it to Direct, which validates:
// the fixpoint must mark it secured.
func Forward(cfg core.Config) (int, error) {
	n := cfg.CharBits
	v, err := Direct(cfg)
	return n + v, err
}

// unexported helpers are trusted; only exported entry points are held
// to the contract.
func inner(cfg core.Config) int {
	return cfg.CharBits
}
`}}, "configbeforeuse")
	expect(t, diags)
}

func TestSuppressionsDropOnlyMarkedFindings(t *testing.T) {
	diags := run(t, []synthPkg{{"test/internal/lib", `package lib

func Hushed() {
	panic("known") //lzwtcvet:ignore panicpolicy test fixture
}

func Above() {
	//lzwtcvet:ignore all test fixture
	panic("also known")
}

func Loud() {
	panic("unsuppressed")
}

func WrongCheck() {
	panic("still flagged") //lzwtcvet:ignore droppederror wrong check name
}
`}}, "panicpolicy")
	if len(diags) != 2 {
		t.Fatalf("want 2 surviving findings, got:\n%s", render(diags))
	}
	for _, d := range diags {
		if d.Pos.Line != 13 && d.Pos.Line != 17 {
			t.Errorf("unexpected surviving finding: %s", d.String())
		}
	}
}

func TestNoSuppressPathsRejectIgnoreComments(t *testing.T) {
	// test/internal/nosup sits on the no-suppress list AND (for this
	// test) in LibraryPaths: the ignore comment must not silence the
	// panic finding, and must itself surface as a nosuppress finding.
	cfg := testConfig()
	cfg.LibraryPaths = append(cfg.LibraryPaths, "test/internal/nosup")
	pkgs := loadSynthetic(t, append(deps(), synthPkg{"test/internal/nosup", `package nosup

func Hidden() {
	panic("still flagged") //lzwtcvet:ignore panicpolicy not allowed here
}
`}))
	diags, err := analysis.Run(cfg, pkgs, "panicpolicy")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(diags) != 2 {
		t.Fatalf("want the panic finding plus a nosuppress finding, got:\n%s", render(diags))
	}
	expect(t, diags,
		"bare panic in library package",
		"lzwtcvet:ignore is forbidden in test/internal/nosup",
	)
	for _, d := range diags {
		if d.Check != "panicpolicy" && d.Check != "nosuppress" {
			t.Errorf("unexpected check name %q in %s", d.Check, d.String())
		}
	}
}

func TestRunSelectsAndSortsChecks(t *testing.T) {
	lib := synthPkg{"test/internal/lib", `package lib

func fail() error { return nil }

func Boom() {
	panic("x")
}

func Drop() {
	fail()
}
`}
	// Selecting only droppederror must hide the panic finding.
	diags := run(t, []synthPkg{lib}, "droppederror")
	expect(t, diags, "discarded by bare call")

	// All checks together come back sorted by position.
	diags = run(t, []synthPkg{lib})
	if len(diags) != 2 {
		t.Fatalf("want 2 findings, got:\n%s", render(diags))
	}
	if diags[0].Check != "panicpolicy" || diags[1].Check != "droppederror" {
		t.Errorf("findings not in position order:\n%s", render(diags))
	}

	pkgs := loadSynthetic(t, deps())
	if _, err := analysis.Run(testConfig(), pkgs, "nosuchcheck"); err == nil {
		t.Error("Run with an unknown check name must fail")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := analysis.Diagnostic{
		Pos:     token.Position{Filename: "x.go", Line: 3, Column: 7},
		Check:   "bitwidth",
		Message: "msg",
	}
	if got, want := d.String(), "x.go:3:7: [bitwidth] msg"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestChecksCatalog(t *testing.T) {
	want := []string{
		"bitwidth", "droppederror", "panicpolicy", "configbeforeuse",
		"allocbound", "goctx", "lockhygiene", "metricname", "staleignore",
	}
	checks := analysis.Checks()
	if len(checks) != len(want) {
		t.Fatalf("catalog has %d checks, want %d", len(checks), len(want))
	}
	for i, c := range checks {
		if c.Name() != want[i] {
			t.Errorf("check %d = %q, want %q", i, c.Name(), want[i])
		}
		if c.Doc() == "" {
			t.Errorf("check %q has no doc", c.Name())
		}
	}
}
