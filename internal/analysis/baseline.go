package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// The baseline machinery lets CI fail on *new* findings while a
// reviewed ledger of accepted ones stays in the repository. A finding's
// identity is (file, check, message) — line and column are recorded for
// display but ignored when matching, so unrelated edits that shift a
// file do not invalidate the baseline.

// JSONFinding is the machine-readable form of one Diagnostic, with the
// file path made repo-relative so the baseline is stable across
// checkouts.
type JSONFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// ToJSON converts diagnostics, relativizing filenames against root.
func ToJSON(root string, diags []Diagnostic) []JSONFinding {
	out := make([]JSONFinding, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) {
				file = filepath.ToSlash(rel)
			}
		}
		out = append(out, JSONFinding{
			File:    file,
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Check:   d.Check,
			Message: d.Message,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Check < b.Check
	})
	return out
}

// WriteJSON renders findings as an indented JSON array (always an
// array, never null, so empty baselines diff cleanly).
func WriteJSON(w io.Writer, fs []JSONFinding) error {
	if fs == nil {
		fs = []JSONFinding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fs)
}

// LoadBaseline reads a baseline file written by WriteJSON.
func LoadBaseline(path string) ([]JSONFinding, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading baseline: %v", err)
	}
	var fs []JSONFinding
	if err := json.Unmarshal(data, &fs); err != nil {
		return nil, fmt.Errorf("analysis: parsing baseline %s: %v", path, err)
	}
	return fs, nil
}

// baselineKey is the identity under which findings are matched.
func baselineKey(f JSONFinding) string {
	return f.File + "\x00" + f.Check + "\x00" + f.Message
}

// DiffBaseline splits the current findings against a baseline:
// newFindings are current-but-not-accepted (CI must fail), stale are
// accepted-but-no-longer-firing (the baseline needs pruning).
func DiffBaseline(current, baseline []JSONFinding) (newFindings, stale []JSONFinding) {
	accepted := map[string]bool{}
	for _, f := range baseline {
		accepted[baselineKey(f)] = true
	}
	firing := map[string]bool{}
	for _, f := range current {
		firing[baselineKey(f)] = true
		if !accepted[baselineKey(f)] {
			newFindings = append(newFindings, f)
		}
	}
	for _, f := range baseline {
		if !firing[baselineKey(f)] {
			stale = append(stale, f)
		}
	}
	return newFindings, stale
}
