package analysis

import (
	"go/ast"
	"go/types"
)

// configBeforeUseCheck flags exported functions that consume a
// validatable configuration (any type with a `Validate() error`
// method, e.g. core.Config) without validating it on any path. A
// function counts as validating when its body calls Validate on the
// parameter, or passes the parameter to a function — in any analyzed
// package — that does (computed as a fixpoint over the call graph).
// Unexported functions are trusted: they are reachable only through
// exported entry points, which the check covers.
//
// This is deliberately heuristic, per package and flow-insensitive: a
// Validate call anywhere in the body counts. Its job is to keep every
// public entry point of the compression core behind the C_C/C_E/C_MDATA
// range checks, not to prove dominance.
type configBeforeUseCheck struct{}

func (configBeforeUseCheck) Name() string { return "configbeforeuse" }
func (configBeforeUseCheck) Doc() string {
	return "exported functions consuming a validatable config must call Validate on it, directly or via a callee"
}

// cfgParamInfo records, for one function, what it does with each
// validatable parameter.
type cfgParamInfo struct {
	pkg      *Package
	decl     *ast.FuncDecl
	params   []*types.Var        // validatable params, in order of appearance
	consumed map[*types.Var]bool // field read or non-Validate method call
	secured  map[*types.Var]bool // Validate called (directly, so far)
	edges    []cfgEdge           // params forwarded to other functions
}

// cfgEdge says: parameter v is passed as argument index argIdx of a
// call to callee.
type cfgEdge struct {
	v      *types.Var
	callee *types.Func
	argIdx int
}

func (configBeforeUseCheck) Run(cfg *Config, pkgs []*Package) []Diagnostic {
	// Pass 1: collect per-function facts across every package.
	infos := map[*types.Func]*cfgParamInfo{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				if info := collectCfgInfo(cfg, pkg, fn); info != nil {
					infos[obj] = info
				}
			}
		}
	}

	// Pass 2: propagate "secured" through forwarding edges until the
	// fixpoint. A param is secured if the function validates it or
	// hands it to a callee whose corresponding param is secured.
	for changed := true; changed; {
		changed = false
		for _, info := range infos {
			for _, e := range info.edges {
				if info.secured[e.v] {
					continue
				}
				callee, ok := infos[e.callee]
				if !ok {
					continue
				}
				sig, ok := e.callee.Type().(*types.Signature)
				if !ok || e.argIdx >= sig.Params().Len() {
					continue
				}
				calleeParam := paramVarAt(callee, sig, e.argIdx)
				if calleeParam != nil && callee.secured[calleeParam] {
					info.secured[e.v] = true
					changed = true
				}
			}
		}
	}

	// Pass 3: flag exported functions with consumed-but-unsecured
	// validatable params.
	var diags []Diagnostic
	for obj, info := range infos {
		if !info.decl.Name.IsExported() {
			continue
		}
		for _, v := range info.params {
			if info.consumed[v] && !info.secured[v] {
				named := typeNamed(v.Type())
				tname := v.Type().String()
				if named != nil {
					tname = named.Obj().Name()
				}
				diags = append(diags, Diagnostic{
					Pos:   info.pkg.Fset.Position(info.decl.Name.Pos()),
					Check: "configbeforeuse",
					Message: "exported " + funcKind(info.decl) + " " + obj.Name() + " consumes " + tname +
						" parameter " + v.Name() + " without calling Validate on any path",
				})
			}
		}
	}
	return diags
}

func funcKind(fn *ast.FuncDecl) string {
	if fn.Recv != nil {
		return "method"
	}
	return "function"
}

// paramVarAt maps a call-site argument index back to the callee's
// parameter variable, matching by name and position against the
// callee's declaration.
func paramVarAt(info *cfgParamInfo, sig *types.Signature, idx int) *types.Var {
	p := sig.Params().At(idx)
	for _, v := range info.params {
		if v == p || (v.Name() == p.Name() && types.Identical(v.Type(), p.Type())) {
			return v
		}
	}
	return nil
}

// collectCfgInfo gathers validatable-parameter facts for one function,
// or nil when it has none.
func collectCfgInfo(cfg *Config, pkg *Package, fn *ast.FuncDecl) *cfgParamInfo {
	info := &cfgParamInfo{
		pkg:      pkg,
		decl:     fn,
		consumed: map[*types.Var]bool{},
		secured:  map[*types.Var]bool{},
	}
	paramSet := map[*types.Var]bool{}
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			for _, name := range field.Names {
				v, ok := pkg.Info.Defs[name].(*types.Var)
				if !ok {
					continue
				}
				if !isConfigType(cfg, typeNamed(v.Type())) {
					continue
				}
				info.params = append(info.params, v)
				paramSet[v] = true
			}
		}
	}
	if len(info.params) == 0 {
		return nil
	}

	paramOf := func(e ast.Expr) *types.Var {
		// Unwrap &cfg and (*cfg) forms down to the identifier.
		for {
			switch ee := e.(type) {
			case *ast.ParenExpr:
				e = ee.X
			case *ast.UnaryExpr:
				e = ee.X
			case *ast.StarExpr:
				e = ee.X
			default:
				id, ok := e.(*ast.Ident)
				if !ok {
					return nil
				}
				if v, ok := pkg.Info.Uses[id].(*types.Var); ok && paramSet[v] {
					return v
				}
				return nil
			}
		}
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			v := paramOf(n.X)
			if v == nil {
				return true
			}
			if n.Sel.Name == "Validate" {
				info.secured[v] = true
			} else {
				info.consumed[v] = true
			}
		case *ast.CallExpr:
			callee := calleeFunc(pkg.Info, n.Fun)
			if callee == nil {
				return true
			}
			for i, arg := range n.Args {
				if v := paramOf(arg); v != nil {
					info.edges = append(info.edges, cfgEdge{v: v, callee: callee, argIdx: i})
				}
			}
		}
		return true
	})
	return info
}
