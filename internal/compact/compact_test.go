package compact

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lzwtc/internal/atpg"
	"lzwtc/internal/bitvec"
	"lzwtc/internal/circuit"
	"lzwtc/internal/fault"
	"lzwtc/internal/fsim"
)

func TestCompatibleAndMerge(t *testing.T) {
	a := bitvec.MustParse("1X0X")
	b := bitvec.MustParse("1X01")
	c := bitvec.MustParse("0XXX")
	if !Compatible(a, b) || Compatible(a, c) {
		t.Fatal("compatibility wrong")
	}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.String() != "1X01" {
		t.Fatalf("merge = %q", m)
	}
	if _, err := Merge(a, c); err == nil {
		t.Fatal("conflicting merge accepted")
	}
	if Compatible(a, bitvec.MustParse("1X0")) {
		t.Fatal("length mismatch compatible")
	}
}

func TestMergeCubes(t *testing.T) {
	cs := bitvec.NewCubeSet(4)
	cs.Add(bitvec.MustParse("1XXX"))
	cs.Add(bitvec.MustParse("X0XX"))
	cs.Add(bitvec.MustParse("0XXX")) // conflicts with cube 0 merged set
	cs.Add(bitvec.MustParse("XX1X"))
	out, st := MergeCubes(cs)
	if st.PatternsOut >= st.PatternsIn || st.Merges == 0 {
		t.Fatalf("no compaction: %+v", st)
	}
	// Every original cube must be covered by some output cube.
	for i, c := range cs.Cubes {
		covered := false
		for _, o := range out.Cubes {
			if Compatible(o, c) {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("cube %d lost", i)
		}
	}
}

func TestCompactPreservesCoverage(t *testing.T) {
	gen, err := circuit.Generate(circuit.GenConfig{Name: "cc", Inputs: 14, Outputs: 7, DFFs: 20, Comb: 180, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := circuit.NewComb(gen)
	if err != nil {
		t.Fatal(err)
	}
	ares, err := atpg.Run(cb, atpg.Options{Collapse: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Collapse(cb.C, fault.All(cb.C))
	before, err := fsim.Run(cb, ares.Cubes, faults)
	if err != nil {
		t.Fatal(err)
	}
	compacted, st, err := Compact(cb, ares.Cubes, faults)
	if err != nil {
		t.Fatal(err)
	}
	after, err := fsim.Run(cb, compacted, faults)
	if err != nil {
		t.Fatal(err)
	}
	if after.Detected < before.Detected {
		t.Fatalf("coverage dropped: %d -> %d", before.Detected, after.Detected)
	}
	if st.PatternsOut > st.PatternsIn {
		t.Fatalf("compaction grew the set: %+v", st)
	}
	if st.PatternsOut >= st.PatternsIn && st.Merges == 0 && st.Dropped == 0 {
		t.Fatalf("compaction did nothing: %+v", st)
	}
}

func TestReverseOrderDropRemovesRedundantPattern(t *testing.T) {
	cb, err := circuit.NewComb(circuit.C17())
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Collapse(cb.C, fault.All(cb.C))
	// A set where one pattern is duplicated: the duplicate must go.
	cs := bitvec.NewCubeSet(5)
	for _, s := range []string{"11111", "11111", "00000", "10101", "01010", "00111", "11100", "01101"} {
		cs.Add(bitvec.MustParse(s))
	}
	out, st, err := ReverseOrderDrop(cb, cs, faults)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dropped == 0 || len(out.Cubes) >= len(cs.Cubes) {
		t.Fatalf("duplicate survived: %+v", st)
	}
}

// Property: merging preserves every care bit of every input cube.
func TestQuickMergePreservesCares(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		width := rng.Intn(40) + 1
		cs := bitvec.NewCubeSet(width)
		for p := 0; p < rng.Intn(15)+1; p++ {
			v := bitvec.New(width)
			for b := 0; b < width; b++ {
				if rng.Float64() < 0.3 {
					v.Set(b, bitvec.Bit(rng.Intn(2)))
				}
			}
			cs.Add(v)
		}
		out, _ := MergeCubes(cs)
		for _, c := range cs.Cubes {
			covered := false
			for _, o := range out.Cubes {
				if Compatible(o, c) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
