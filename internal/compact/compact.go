// Package compact implements static test-set compaction: merging
// compatible test cubes and dropping patterns made redundant by others.
// The MinTest-class test sets the paper's evaluation numbers trace back
// to are heavily compacted — many faults' requirements merged into each
// pattern — which is what gives real scan test sets their combination of
// small pattern counts and structured care bits. Running this pass after
// ATPG makes the synthetic flow's cube sets materially closer to those.
package compact

import (
	"fmt"

	"lzwtc/internal/bitvec"
	"lzwtc/internal/circuit"
	"lzwtc/internal/fault"
	"lzwtc/internal/fsim"
	"lzwtc/internal/invariant"
)

// Stats reports a compaction run.
type Stats struct {
	PatternsIn  int
	PatternsOut int
	Merges      int // cube pairs merged
	Dropped     int // patterns removed by reverse-order fault simulation
	XDensityIn  float64
	XDensityOut float64
}

// Compatible reports whether two cubes agree on every bit where both
// are specified (so their union is a valid cube detecting both targets).
func Compatible(a, b *bitvec.Vector) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		av, bv := a.Get(i), b.Get(i)
		if av != bitvec.X && bv != bitvec.X && av != bv {
			return false
		}
	}
	return true
}

// Merge returns the union of two compatible cubes.
func Merge(a, b *bitvec.Vector) (*bitvec.Vector, error) {
	if !Compatible(a, b) {
		return nil, fmt.Errorf("compact: cubes conflict")
	}
	out := a.Clone()
	for i := 0; i < b.Len(); i++ {
		if v := b.Get(i); v != bitvec.X {
			out.Set(i, v)
		}
	}
	return out, nil
}

// MergeCubes greedily merges compatible cubes: each cube is folded into
// the first existing output cube it is compatible with, otherwise it
// starts a new one. O(n²) worst case, fine for test-set sizes.
func MergeCubes(cs *bitvec.CubeSet) (*bitvec.CubeSet, *Stats) {
	st := &Stats{PatternsIn: len(cs.Cubes), XDensityIn: cs.XDensity()}
	out := bitvec.NewCubeSet(cs.Width)
	for _, c := range cs.Cubes {
		merged := false
		for i, o := range out.Cubes {
			if Compatible(o, c) {
				m, err := Merge(o, c)
				if err == nil {
					out.Cubes[i] = m
					merged = true
					st.Merges++
					break
				}
			}
		}
		if !merged {
			// Widths match by construction, so Add cannot fail.
			invariant.Must(out.Add(c.Clone()))
		}
	}
	st.PatternsOut = len(out.Cubes)
	st.XDensityOut = out.XDensity()
	return out, st
}

// ReverseOrderDrop removes patterns that detect no fault first: cubes
// are fault-simulated in reverse order with dropping, and any cube that
// is never the first detector of a remaining fault is discarded. This is
// classic reverse-order static compaction; detection is X-aware, so the
// kept set's coverage is independent of later don't-care filling.
func ReverseOrderDrop(cb *circuit.Comb, cs *bitvec.CubeSet, faults []fault.Fault) (*bitvec.CubeSet, *Stats, error) {
	st := &Stats{PatternsIn: len(cs.Cubes), XDensityIn: cs.XDensity()}
	rev := bitvec.NewCubeSet(cs.Width)
	for i := len(cs.Cubes) - 1; i >= 0; i-- {
		if err := rev.Add(cs.Cubes[i]); err != nil {
			return nil, nil, err
		}
	}
	res, err := fsim.Run(cb, rev, faults)
	if err != nil {
		return nil, nil, err
	}
	needed := make([]bool, len(rev.Cubes))
	for _, at := range res.DetectedBy {
		if at >= 0 {
			needed[at] = true
		}
	}
	out := bitvec.NewCubeSet(cs.Width)
	for i := len(rev.Cubes) - 1; i >= 0; i-- { // restore original order
		if needed[i] {
			if err := out.Add(rev.Cubes[i]); err != nil {
				return nil, nil, err
			}
		} else {
			st.Dropped++
		}
	}
	st.PatternsOut = len(out.Cubes)
	st.XDensityOut = out.XDensity()
	return out, st, nil
}

// Compact runs merge-then-drop, the standard static compaction recipe.
func Compact(cb *circuit.Comb, cs *bitvec.CubeSet, faults []fault.Fault) (*bitvec.CubeSet, *Stats, error) {
	merged, mst := MergeCubes(cs)
	dropped, dst, err := ReverseOrderDrop(cb, merged, faults)
	if err != nil {
		return nil, nil, err
	}
	return dropped, &Stats{
		PatternsIn:  mst.PatternsIn,
		PatternsOut: dst.PatternsOut,
		Merges:      mst.Merges,
		Dropped:     dst.Dropped,
		XDensityIn:  mst.XDensityIn,
		XDensityOut: dst.XDensityOut,
	}, nil
}
