package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{Title: "Table X", Headers: []string{"Test", "LZW", "RLE"}}
	t.Add("s13207", 0.8069, 0.803)
	t.Add("s9234", 0.7067, 0.4496)
	t.Note = "note"
	return t
}

func TestPercent(t *testing.T) {
	if got := Percent(0.8069); got != "80.69%" {
		t.Fatalf("Percent = %q", got)
	}
}

func TestString(t *testing.T) {
	s := sample().String()
	for _, want := range []string{"Table X", "Test", "80.69%", "44.96%", "note", "---"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 6 { // title, header, rule, 2 rows, note
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	// Columns align: both data rows have the same length.
	if len(lines[3]) != len(lines[4]) {
		t.Errorf("rows not aligned:\n%s", s)
	}
}

func TestMarkdown(t *testing.T) {
	m := sample().Markdown()
	for _, want := range []string{"**Table X**", "| Test | LZW | RLE |", "|---|---|---|", "| s13207 | 80.69% | 80.30% |", "_note_"} {
		if !strings.Contains(m, want) {
			t.Errorf("markdown missing %q:\n%s", want, m)
		}
	}
}

func TestAddMixedTypes(t *testing.T) {
	tb := &Table{Headers: []string{"a", "b", "c"}}
	tb.Add("x", 42, 0.5)
	if tb.Rows[0][1] != "42" || tb.Rows[0][2] != "50.00%" {
		t.Fatalf("row = %v", tb.Rows[0])
	}
}
