// Package report renders fixed-width tables in the layout of the paper's
// result tables, for both terminal output and EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of string cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Note    string // optional caption printed under the table
}

// Cell formats a float as the paper prints ratios: "80.69%".
func Percent(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = Percent(v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func (t *Table) widths() []int {
	w := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		w[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(w) && len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// String renders the table with a rule under the header, first column
// left-aligned and the rest right-aligned (the paper's layout).
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	w := t.widths()
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&sb, "%-*s", w[i], c)
			} else {
				fmt.Fprintf(&sb, "%*s", w[i], c)
			}
		}
		sb.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, x := range w {
		total += x
	}
	sb.WriteString(strings.Repeat("-", total+2*(len(w)-1)))
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	if t.Note != "" {
		sb.WriteString(t.Note)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "**%s**\n\n", t.Title)
	}
	sb.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Headers)) + "\n")
	for _, r := range t.Rows {
		sb.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	if t.Note != "" {
		fmt.Fprintf(&sb, "\n_%s_\n", t.Note)
	}
	return sb.String()
}
