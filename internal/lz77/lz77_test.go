package lz77

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lzwtc/internal/bitvec"
)

func smallCfg() Config {
	return Config{OffsetBits: 6, LenBits: 4, MinMatch: 3}
}

func TestRoundTripConcrete(t *testing.T) {
	stream := bitvec.MustParse("0101010101010101000000000000111100001111")
	res, err := Compress(stream, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decompress(res.Data, res.BitLen, res.Cfg, stream.Len())
	if err != nil {
		t.Fatal(err)
	}
	if !stream.Equal(out) {
		t.Fatalf("round trip: got %q want %q", out, stream)
	}
	if res.Stats.CopyTokens == 0 {
		t.Fatal("periodic stream produced no copy tokens")
	}
}

func TestXBitsAssignedByHistory(t *testing.T) {
	// "0011" trains the history; the X block should be copied from it.
	stream := bitvec.MustParse("00110011XXXXXXXX0011")
	res, err := Compress(stream, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.AssignedByCopy == 0 {
		t.Fatalf("no X bits assigned by copy: %+v", res.Stats)
	}
	out, err := Decompress(res.Data, res.BitLen, res.Cfg, stream.Len())
	if err != nil {
		t.Fatal(err)
	}
	if !stream.CompatibleWith(out) {
		t.Fatalf("output %q violates cube %q", out, stream)
	}
}

func TestOverlappingCopy(t *testing.T) {
	// A long constant run can only be covered by a self-referential copy
	// (offset smaller than length).
	stream := bitvec.MustParse("10" + ones(40))
	res, err := Compress(stream, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MaxMatchBits <= 1 {
		t.Fatalf("run not captured by a copy: %+v", res.Stats)
	}
	out, err := Decompress(res.Data, res.BitLen, res.Cfg, stream.Len())
	if err != nil {
		t.Fatal(err)
	}
	if !stream.Equal(out) {
		t.Fatalf("overlap round trip: %q", out)
	}
}

func TestLiteralFillPolicies(t *testing.T) {
	stream := bitvec.MustParse("X1X")
	for _, fill := range []bitvec.FillPolicy{bitvec.FillZero, bitvec.FillOne, bitvec.FillRepeat} {
		cfg := smallCfg()
		cfg.Fill = fill
		res, err := Compress(stream, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Decompress(res.Data, res.BitLen, cfg, stream.Len())
		if err != nil {
			t.Fatal(err)
		}
		if !stream.CompatibleWith(out) {
			t.Errorf("fill=%v output %q violates cube", fill, out)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{OffsetBits: 0, LenBits: 4, MinMatch: 2},
		{OffsetBits: 30, LenBits: 4, MinMatch: 2},
		{OffsetBits: 8, LenBits: 0, MinMatch: 2},
		{OffsetBits: 8, LenBits: 4, MinMatch: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d validated", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default invalid: %v", err)
	}
	if got := DefaultConfig().MaxMatch(); got != 10+63 {
		t.Errorf("MaxMatch = %d", got)
	}
	if got := DefaultConfig().Window(); got != 2048 {
		t.Errorf("Window = %d", got)
	}
}

func TestDecompressErrors(t *testing.T) {
	cfg := smallCfg()
	if _, err := Decompress(nil, 0, cfg, 4); err == nil {
		t.Error("empty stream accepted")
	}
	// A copy token with offset past the start.
	var res *Result
	stream := bitvec.MustParse("0000000000")
	res, err := Compress(stream, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: ask for more output than the stream encodes.
	if _, err := Decompress(res.Data, res.BitLen, cfg, stream.Len()+100); err == nil {
		t.Error("overlong output accepted")
	}
}

func TestQuickRoundTripCompatibility(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(800)
		v := bitvec.New(n)
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.7 {
				continue // X
			}
			v.Set(i, bitvec.Bit(rng.Intn(2)))
		}
		cfg := smallCfg()
		res, err := Compress(v, cfg)
		if err != nil {
			return false
		}
		out, err := Decompress(res.Data, res.BitLen, cfg, n)
		if err != nil {
			return false
		}
		return n == 0 || v.CompatibleWith(out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLosslessConcrete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(600) + 1
		v := bitvec.New(n)
		for i := 0; i < n; i++ {
			v.Set(i, bitvec.Bit(rng.Intn(2)))
		}
		cfg := DefaultConfig()
		res, err := Compress(v, cfg)
		if err != nil {
			return false
		}
		out, err := Decompress(res.Data, res.BitLen, cfg, n)
		return err == nil && v.Equal(out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func ones(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '1'
	}
	return string(b)
}

func BenchmarkCompress(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1 << 14
	v := bitvec.New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.9 {
			continue
		}
		v.Set(i, bitvec.Bit(rng.Intn(2)))
	}
	cfg := DefaultConfig()
	b.SetBytes(int64(n / 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(v, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
