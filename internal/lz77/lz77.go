// Package lz77 implements the don't-care-aware LZ77 baseline the paper
// compares against in Table 1 (Wolff & Papachristou, "Multiscan-based Test
// Compression and Hardware Decomposition Using LZ77", ITC 2002 — the
// paper's reference [8]).
//
// The encoder slides over the three-valued test stream and matches the
// lookahead against the *concrete* decompressed history: an X bit in the
// lookahead matches any history bit and is thereby assigned. The output is
// a token stream of <1, offset, length> copy tokens and <0, bit> literals.
// Copy sources may overlap the write position (run-generating copies),
// exactly as a hardware history buffer would behave.
package lz77

import (
	"fmt"
	"math/bits"

	"lzwtc/internal/bitio"
	"lzwtc/internal/bitvec"
)

// Config sets the token geometry.
type Config struct {
	// OffsetBits sets the history window to 2^OffsetBits bits.
	OffsetBits int
	// LenBits sets the maximum copy length to MinMatch + 2^LenBits - 1.
	LenBits int
	// MinMatch is the shortest copy worth a token; shorter stretches are
	// emitted as literals. Encoded length = actual - MinMatch.
	MinMatch int
	// Fill assigns X bits emitted as literals.
	Fill bitvec.FillPolicy
}

// DefaultConfig returns a geometry tuned for scan test sets: an 11-bit
// offset (2048-bit window, on the order of a few scan slices), 6-bit
// length field and a break-even minimum match (a copy token costs
// 1+11+6 = 18 bits, a literal 2 bits).
func DefaultConfig() Config {
	return Config{OffsetBits: 11, LenBits: 6, MinMatch: 10}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.OffsetBits < 1 || c.OffsetBits > 24 {
		return fmt.Errorf("lz77: OffsetBits %d out of range [1,24]", c.OffsetBits)
	}
	if c.LenBits < 1 || c.LenBits > 24 {
		return fmt.Errorf("lz77: LenBits %d out of range [1,24]", c.LenBits)
	}
	if c.MinMatch < 1 {
		return fmt.Errorf("lz77: MinMatch %d must be positive", c.MinMatch)
	}
	return nil
}

// MaxMatch returns the longest encodable copy.
func (c Config) MaxMatch() int { return c.MinMatch + 1<<uint(c.LenBits) - 1 }

// Window returns the history window size in bits.
func (c Config) Window() int { return 1 << uint(c.OffsetBits) }

// Stats summarizes one compression run.
type Stats struct {
	InputBits      int
	CompressedBits int
	CopyTokens     int
	Literals       int
	MaxMatchBits   int
	AssignedByCopy int // X bits bound by matching against history
}

// Ratio returns the compression ratio (1 - compressed/original).
func (s Stats) Ratio() float64 {
	if s.InputBits == 0 {
		return 0
	}
	return 1 - float64(s.CompressedBits)/float64(s.InputBits)
}

// Result is a compressed stream plus its statistics.
type Result struct {
	Cfg       Config
	Data      []byte
	BitLen    int
	InputBits int
	Stats     Stats
}

// Compress encodes a three-valued stream.
func Compress(stream *bitvec.Vector, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := stream.Len()
	res := &Result{Cfg: cfg, InputBits: n}
	res.Stats.InputBits = n
	var w bitio.Writer
	out := bitvec.New(n) // concrete history as the decoder will see it
	lastBit := uint(0)

	p := 0
	for p < n {
		bestLen, bestOff := 0, 0
		lo := p - cfg.Window()
		if lo < 0 {
			lo = 0
		}
		maxL := cfg.MaxMatch()
		if maxL > n-p {
			maxL = n - p
		}
		for s := lo; s < p; s++ {
			l := matchLen(stream, out, s, p, maxL)
			if l > bestLen {
				bestLen, bestOff = l, p-s
				if l == maxL {
					break
				}
			}
		}
		if bestLen >= cfg.MinMatch {
			w.WriteBit(1)
			w.WriteBits(uint64(bestOff-1), cfg.OffsetBits)
			w.WriteBits(uint64(bestLen-cfg.MinMatch), cfg.LenBits)
			// Commit the copy to the history, assigning X bits.
			src := p - bestOff
			for i := 0; i < bestLen; i++ {
				b := out.Get(src + i)
				if stream.Get(p+i) == bitvec.X {
					res.Stats.AssignedByCopy++
				}
				out.Set(p+i, b)
			}
			lastBit = uint(out.Get(p + bestLen - 1))
			p += bestLen
			res.Stats.CopyTokens++
			if bestLen > res.Stats.MaxMatchBits {
				res.Stats.MaxMatchBits = bestLen
			}
			continue
		}
		// Literal.
		b := stream.Get(p)
		if b == bitvec.X {
			switch cfg.Fill {
			case bitvec.FillZero:
				b = bitvec.Zero
			case bitvec.FillOne:
				b = bitvec.One
			case bitvec.FillRepeat:
				b = bitvec.Bit(lastBit)
			}
		}
		w.WriteBit(0)
		w.WriteBit(uint(b))
		out.Set(p, b)
		lastBit = uint(b)
		p++
		res.Stats.Literals++
	}

	res.Data = w.Bytes()
	res.BitLen = w.BitLen()
	res.Stats.CompressedBits = w.BitLen()
	return res, nil
}

// matchLen computes how far the lookahead at p can ride the history
// starting at s (s < p). For the non-overlapping prefix it compares 64
// bits per step; overlapping tails (run-generating copies) are resolved
// bit by bit against the bits this same copy would have produced.
func matchLen(stream, out *bitvec.Vector, s, p, maxL int) int {
	l := 0
	direct := p - s
	if direct > maxL {
		direct = maxL
	}
	for l < direct {
		step := direct - l
		if step > 64 {
			step = 64
		}
		val, care := stream.Chunk(p+l, step)
		src, _ := out.Chunk(s+l, step)
		mism := care & (val ^ src)
		if mism == 0 {
			l += step
			continue
		}
		l += trailingZeros(mism)
		return l
	}
	// Overlap: source bit i >= direct repeats the bit decided at i-direct.
	for l < maxL {
		var src bitvec.Bit
		if s+l < p {
			src = out.Get(s + l)
		} else {
			// The copy is self-referential with period (p-s).
			src = overlapBit(stream, out, s, p, l)
		}
		b := stream.Get(p + l)
		if b != bitvec.X && b != src {
			break
		}
		l++
	}
	return l
}

// overlapBit resolves the source bit of a self-referential copy: position
// s+l folds back by multiples of the copy period until it lands in the
// committed history.
func overlapBit(stream, out *bitvec.Vector, s, p, l int) bitvec.Bit {
	period := p - s
	i := s + l
	for i >= p {
		i -= period
	}
	return out.Get(i)
}

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }

// Decompress inverts a compressed stream, returning the fully specified
// output of length outBits.
func Decompress(data []byte, bitLen int, cfg Config, outBits int) (*bitvec.Vector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := bitio.NewReader(data, bitLen)
	out := bitvec.New(outBits)
	p := 0
	for p < outBits {
		flag, err := r.ReadBit()
		if err != nil {
			return nil, fmt.Errorf("lz77: truncated stream at bit %d: %w", p, err)
		}
		if flag == 0 {
			b, err := r.ReadBit()
			if err != nil {
				return nil, fmt.Errorf("lz77: truncated literal at bit %d: %w", p, err)
			}
			out.Set(p, bitvec.Bit(b))
			p++
			continue
		}
		offF, err := r.ReadBits(cfg.OffsetBits)
		if err != nil {
			return nil, fmt.Errorf("lz77: truncated offset at bit %d: %w", p, err)
		}
		lenF, err := r.ReadBits(cfg.LenBits)
		if err != nil {
			return nil, fmt.Errorf("lz77: truncated length at bit %d: %w", p, err)
		}
		off := int(offF) + 1
		l := int(lenF) + cfg.MinMatch
		if off > p {
			return nil, fmt.Errorf("lz77: offset %d reaches before stream start at bit %d", off, p)
		}
		if p+l > outBits {
			return nil, fmt.Errorf("lz77: copy of %d bits overruns output at bit %d", l, p)
		}
		for i := 0; i < l; i++ {
			out.Set(p+i, out.Get(p-off+i))
		}
		p += l
	}
	return out, nil
}
