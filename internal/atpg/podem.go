// Package atpg generates test cubes for single stuck-at faults with the
// PODEM algorithm (path-oriented decision making): objectives are backtraced
// to primary-input assignments, implications run as dual good/faulty
// three-valued simulations, and decisions are undone on conflicts.
//
// The output is what the paper's compression stage consumes: *test cubes*,
// input vectors in which only the bits PODEM actually needed are specified
// and everything else stays X. The 35–93% don't-care densities of Table 3
// are exactly the unassigned bits left by this process.
package atpg

import (
	"fmt"
	"math/rand"

	"lzwtc/internal/bitvec"
	"lzwtc/internal/circuit"
	"lzwtc/internal/fault"
	"lzwtc/internal/fsim"
	"lzwtc/internal/sim"
)

// Options tunes the generator.
type Options struct {
	// MaxBacktracks bounds the PODEM search per fault (default 200).
	MaxBacktracks int
	// RandomPatterns seeds the run with this many random concrete
	// patterns, fault-simulated to drop easy faults first (default 0).
	RandomPatterns int
	// Seed drives the random phase and value ordering.
	Seed int64
	// Collapse applies structural equivalence collapsing to the fault
	// list.
	Collapse bool
}

// Result is a completed ATPG run.
type Result struct {
	Cubes      *bitvec.CubeSet
	Total      int // faults targeted (after collapsing)
	Detected   int
	Untestable int // proven redundant (search exhausted without backtrack limit)
	Aborted    int // backtrack limit hit
	RandomHits int // faults dropped by the random phase
}

// Coverage returns fault coverage: detected / total.
func (r *Result) Coverage() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.Total)
}

// TestCoverage returns detected / (total - proven untestable), the
// industry metric that does not penalize redundant faults.
func (r *Result) TestCoverage() float64 {
	den := r.Total - r.Untestable
	if den <= 0 {
		return 0
	}
	return float64(r.Detected) / float64(den)
}

// Run generates cubes for all collapsed stuck-at faults of the circuit.
func Run(cb *circuit.Comb, opts Options) (*Result, error) {
	if opts.MaxBacktracks == 0 {
		opts.MaxBacktracks = 500
	}
	faults := fault.All(cb.C)
	if opts.Collapse {
		faults = fault.Collapse(cb.C, faults)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	res := &Result{Cubes: bitvec.NewCubeSet(cb.Width()), Total: len(faults)}

	detected := make([]bool, len(faults))

	// Random phase: cheap coverage of the easy faults.
	if opts.RandomPatterns > 0 {
		pats := make([]*bitvec.Vector, opts.RandomPatterns)
		for i := range pats {
			v := bitvec.New(cb.Width())
			for b := 0; b < cb.Width(); b++ {
				v.Set(b, bitvec.Bit(rng.Intn(2)))
			}
			pats[i] = v
		}
		cs := &bitvec.CubeSet{Width: cb.Width(), Cubes: pats}
		fres, err := fsim.Run(cb, cs, faults)
		if err != nil {
			return nil, err
		}
		used := map[int]bool{}
		for fi, at := range fres.DetectedBy {
			if at >= 0 {
				detected[fi] = true
				res.Detected++
				res.RandomHits++
				used[at] = true
			}
		}
		for i, p := range pats {
			if used[i] {
				if err := res.Cubes.Add(p); err != nil {
					return nil, err
				}
			}
		}
	}

	eng := newEngine(cb)
	cones := fsim.NewConeCache(cb)
	scratch := make([]sim.PVal, len(cb.C.Gates))
	ps := sim.NewPState(cb)

	for fi, f := range faults {
		if detected[fi] {
			continue
		}
		cube, status := eng.generate(f, opts.MaxBacktracks)
		switch status {
		case statusFound:
			if err := res.Cubes.Add(cube); err != nil {
				return nil, err
			}
			// X-aware dropping: credit this cube with every remaining
			// fault it detects regardless of how X bits are later filled.
			if err := ps.Apply([]*bitvec.Vector{cube}); err != nil {
				return nil, err
			}
			hits := fsim.DetectsAny(cb, cones, ps, faults, scratch)
			for fj := fi; fj < len(faults); fj++ {
				if hits[fj] && !detected[fj] {
					detected[fj] = true
					res.Detected++
				}
			}
			if !detected[fi] {
				return nil, fmt.Errorf("atpg: generated cube does not detect its target %v", f.Name(cb.C))
			}
		case statusUntestable:
			res.Untestable++
		case statusAborted:
			res.Aborted++
		}
	}
	return res, nil
}

type status int

const (
	statusFound status = iota
	statusUntestable
	statusAborted
)

// engine holds the per-fault PODEM state.
type engine struct {
	cb      *circuit.Comb
	good    *sim.State
	faulty  *sim.State
	inPos   map[int]int // gate id -> pattern bit position
	cube    *bitvec.Vector
	obsDist []int // min gate hops to an observation point (-1 unreachable)
	mark    []int // scratch for X-path search
	markGen int
	cc0     []int // SCOAP 0-controllability
	cc1     []int // SCOAP 1-controllability
}

func newEngine(cb *circuit.Comb) *engine {
	inPos := make(map[int]int, cb.Width())
	for i := 0; i < cb.Width(); i++ {
		inPos[cb.InputAt(i)] = i
	}
	e := &engine{cb: cb, good: sim.NewState(cb), faulty: sim.NewState(cb), inPos: inPos}
	e.obsDist = observationDistances(cb)
	e.mark = make([]int, len(cb.C.Gates))
	e.cc0, e.cc1 = controllability(cb)
	return e
}

// controllability computes SCOAP-style 0/1 controllability costs, used
// to steer the backtrace: satisfy any-input requirements through the
// cheapest input, all-input requirements through the hardest one first.
func controllability(cb *circuit.Comb) (cc0, cc1 []int) {
	const inf = 1 << 28
	n := len(cb.C.Gates)
	cc0 = make([]int, n)
	cc1 = make([]int, n)
	add := func(a, b int) int {
		if s := a + b; s < inf {
			return s
		}
		return inf
	}
	for _, id := range cb.Order {
		g := &cb.C.Gates[id]
		switch g.Type {
		case circuit.Input, circuit.DFF:
			cc0[id], cc1[id] = 1, 1
		case circuit.Buf:
			cc0[id], cc1[id] = cc0[g.Fanin[0]]+1, cc1[g.Fanin[0]]+1
		case circuit.Not:
			cc0[id], cc1[id] = cc1[g.Fanin[0]]+1, cc0[g.Fanin[0]]+1
		case circuit.And, circuit.Nand:
			all1, min0 := 0, inf
			for _, d := range g.Fanin {
				all1 = add(all1, cc1[d])
				if cc0[d] < min0 {
					min0 = cc0[d]
				}
			}
			if g.Type == circuit.And {
				cc1[id], cc0[id] = all1+1, min0+1
			} else {
				cc0[id], cc1[id] = all1+1, min0+1
			}
		case circuit.Or, circuit.Nor:
			all0, min1 := 0, inf
			for _, d := range g.Fanin {
				all0 = add(all0, cc0[d])
				if cc1[d] < min1 {
					min1 = cc1[d]
				}
			}
			if g.Type == circuit.Or {
				cc0[id], cc1[id] = all0+1, min1+1
			} else {
				cc1[id], cc0[id] = all0+1, min1+1
			}
		case circuit.Xor, circuit.Xnor:
			a0, a1 := cc0[g.Fanin[0]], cc1[g.Fanin[0]]
			for _, d := range g.Fanin[1:] {
				b0, b1 := cc0[d], cc1[d]
				n0 := minInt(add(a0, b0), add(a1, b1))
				n1 := minInt(add(a0, b1), add(a1, b0))
				a0, a1 = n0, n1
			}
			if g.Type == circuit.Xnor {
				a0, a1 = a1, a0
			}
			cc0[id], cc1[id] = a0+1, a1+1
		}
	}
	return cc0, cc1
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// observationDistances computes, per gate, the minimum number of gate
// hops to any observation point (PO gate or DFF data input net).
func observationDistances(cb *circuit.Comb) []int {
	dist := make([]int, len(cb.C.Gates))
	for i := range dist {
		dist[i] = -1
	}
	var queue []int
	for i := 0; i < cb.ObsCount(); i++ {
		o := cb.ObsAt(i)
		if dist[o] != 0 {
			dist[o] = 0
			queue = append(queue, o)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, f := range cb.C.Gates[id].Fanin {
			if dist[f] < 0 {
				dist[f] = dist[id] + 1
				queue = append(queue, f)
			}
		}
	}
	return dist
}

// xPath reports whether an X path exists from gate id to an observation
// point: a forward path along which every gate's faulty value is still X
// (a specified gate can no longer change, blocking propagation). DFF
// sinks terminate paths because their data inputs are themselves
// observed.
func (e *engine) xPath(id int) bool {
	e.markGen++
	return e.xPathFrom(id)
}

func (e *engine) xPathFrom(id int) bool {
	if e.obsDist[id] == 0 {
		return true
	}
	fanout := e.cb.C.Fanout()
	for _, s := range fanout[id] {
		if e.mark[s] == e.markGen {
			continue
		}
		e.mark[s] = e.markGen
		if e.cb.C.Gates[s].Type == circuit.DFF {
			continue // the net feeding it was the observation point
		}
		// A gate can still come to show a good/faulty difference as long
		// as either machine's value is undetermined there.
		if e.good.Get(s) != bitvec.X && e.faulty.Get(s) != bitvec.X {
			continue
		}
		if e.xPathFrom(s) {
			return true
		}
	}
	return false
}

type decision struct {
	pos       int
	val       bitvec.Bit
	triedBoth bool
}

// generate runs PODEM for one fault.
func (e *engine) generate(f fault.Fault, maxBacktracks int) (*bitvec.Vector, status) {
	e.cube = bitvec.New(e.cb.Width())
	inject := f.Injector(e.cb.C, func(id int) bitvec.Bit { return e.faulty.Get(id) })
	var stack []decision
	backtracks := 0

	imply := func() {
		// Full re-simulation of both machines; circuits here are small
		// enough that event-driven implication is not worth its weight.
		_ = e.good.Apply(e.cube)
		_ = e.faulty.ApplyFaulty(e.cube, inject)
	}
	imply()

	for {
		if e.detected(f) {
			return e.cube.Clone(), statusFound
		}
		objGate, objVal, viable := e.objective(f)
		if viable {
			if pos, val, ok := e.backtrace(objGate, objVal); ok {
				stack = append(stack, decision{pos: pos, val: val})
				e.cube.Set(pos, val)
				imply()
				continue
			}
		}
		// Conflict or no viable objective: backtrack.
		for {
			if len(stack) == 0 {
				if backtracks >= maxBacktracks {
					return nil, statusAborted
				}
				return nil, statusUntestable
			}
			top := &stack[len(stack)-1]
			if !top.triedBoth {
				top.triedBoth = true
				top.val ^= 1
				e.cube.Set(top.pos, top.val)
				backtracks++
				if backtracks > maxBacktracks {
					return nil, statusAborted
				}
				break
			}
			e.cube.Set(top.pos, bitvec.X)
			stack = stack[:len(stack)-1]
		}
		imply()
	}
}

// detected reports whether any observation point shows a specified
// good/faulty difference.
func (e *engine) detected(f fault.Fault) bool {
	for i := 0; i < e.cb.ObsCount(); i++ {
		o := e.cb.ObsAt(i)
		g, fv := e.good.Get(o), e.faulty.Get(o)
		if g != bitvec.X && fv != bitvec.X && g != fv {
			return true
		}
	}
	return false
}

// objective picks the next value requirement: activate the fault if it
// is not yet activated, otherwise advance the D-frontier. The bool
// result is false when the fault is provably blocked under the current
// assignment (activation impossible or D-frontier empty).
func (e *engine) objective(f fault.Fault) (gate int, val bitvec.Bit, ok bool) {
	site := f.SiteGate()
	gv, fv := e.good.Get(site), e.faulty.Get(site)

	// Activation: the site must carry a specified good value differing
	// from the faulty value.
	if gv == bitvec.X {
		if f.Pin >= 0 {
			// Drive the faulty pin's net to the non-stuck value.
			drv := e.cb.C.Gates[site].Fanin[f.Pin]
			if dv := e.good.Get(drv); dv == bitvec.X {
				return drv, f.SA ^ 1, true
			}
			// Pin already specified; site output still X: fall through to
			// generic justification of the site output.
		}
		// Want the good site output opposite of the stuck value where
		// possible; for pin faults any specified difference works, and
		// aiming at the complement of the faulty value is the standard
		// heuristic.
		want := f.SA ^ 1
		if f.Pin >= 0 && fv != bitvec.X {
			want = fv ^ 1
		}
		return site, want, true
	}
	if fv == bitvec.X {
		// Pin fault with a specified good output but an unresolved faulty
		// output: justify the faulty side by feeding the site's remaining
		// X inputs non-controlling values.
		for _, d := range e.cb.C.Gates[site].Fanin {
			if e.good.Get(d) == bitvec.X {
				return d, nonControlling(e.cb.C.Gates[site].Type), true
			}
		}
		return 0, 0, false
	}
	if gv == fv {
		return 0, 0, false // fault not excitable under this assignment
	}

	// Propagation: among D-frontier gates — specified good/faulty
	// difference on an input, X on the output — pick the one nearest an
	// observation point that still has an X path there, and feed one of
	// its X inputs the non-controlling value.
	bestGate, bestDist := -1, -1
	for _, id := range e.cb.Order {
		g := &e.cb.C.Gates[id]
		if g.Type == circuit.Input || g.Type == circuit.DFF {
			continue
		}
		if e.good.Get(id) != bitvec.X && e.faulty.Get(id) != bitvec.X {
			continue
		}
		onFrontier := false
		for _, d := range g.Fanin {
			dg, df := e.good.Get(d), e.faulty.Get(d)
			if dg != bitvec.X && df != bitvec.X && dg != df {
				onFrontier = true
				break
			}
		}
		if !onFrontier {
			continue
		}
		hasX := false
		for _, d := range g.Fanin {
			if e.good.Get(d) == bitvec.X {
				hasX = true
				break
			}
		}
		if !hasX || e.obsDist[id] < 0 {
			continue
		}
		if !e.xPath(id) {
			continue // the difference can no longer reach an observation point this way
		}
		if bestGate < 0 || e.obsDist[id] < bestDist {
			bestGate, bestDist = id, e.obsDist[id]
		}
	}
	if bestGate < 0 {
		return 0, 0, false
	}
	for _, d := range e.cb.C.Gates[bestGate].Fanin {
		if e.good.Get(d) == bitvec.X {
			return d, nonControlling(e.cb.C.Gates[bestGate].Type), true
		}
	}
	return 0, 0, false
}

// nonControlling returns the value that lets a gate pass its other
// inputs through.
func nonControlling(t circuit.GateType) bitvec.Bit {
	switch t {
	case circuit.And, circuit.Nand:
		return bitvec.One
	case circuit.Or, circuit.Nor:
		return bitvec.Zero
	}
	return bitvec.Zero // XOR/XNOR/BUF/NOT: either value propagates
}

// backtrace walks an objective back to an unassigned primary input,
// complementing the target value through inverting gates and using
// SCOAP controllability to order choices: an all-inputs requirement
// (AND wanting 1, OR wanting 0) goes through the hardest X input first,
// an any-input requirement through the cheapest.
func (e *engine) backtrace(gate int, val bitvec.Bit) (pos int, v bitvec.Bit, ok bool) {
	for {
		g := &e.cb.C.Gates[gate]
		switch g.Type {
		case circuit.Input, circuit.DFF:
			p, isIn := e.inPos[gate]
			if !isIn || e.cube.Get(p) != bitvec.X {
				return 0, 0, false
			}
			return p, val, true

		case circuit.Buf, circuit.Not:
			if g.Type == circuit.Not {
				val ^= 1
			}
			if e.good.Get(g.Fanin[0]) != bitvec.X {
				return 0, 0, false
			}
			gate = g.Fanin[0]

		case circuit.And, circuit.Nand, circuit.Or, circuit.Nor:
			inVal := val
			if g.Type.Inverting() {
				inVal ^= 1
			}
			var needAll bool
			switch g.Type {
			case circuit.And, circuit.Nand:
				needAll = inVal == bitvec.One
			default:
				needAll = inVal == bitvec.Zero
			}
			cc := e.cc0
			if inVal == bitvec.One {
				cc = e.cc1
			}
			next, bestCost := -1, 0
			for _, d := range g.Fanin {
				if e.good.Get(d) != bitvec.X {
					continue
				}
				cost := cc[d]
				better := next < 0 || (needAll && cost > bestCost) || (!needAll && cost < bestCost)
				if better {
					next, bestCost = d, cost
				}
			}
			if next < 0 {
				return 0, 0, false
			}
			gate, val = next, inVal

		case circuit.Xor, circuit.Xnor:
			want := val
			if g.Type == circuit.Xnor {
				want ^= 1
			}
			parity := bitvec.Zero
			chosen, extraX := -1, false
			for _, d := range g.Fanin {
				if dv := e.good.Get(d); dv == bitvec.X {
					if chosen < 0 {
						chosen = d
					} else {
						extraX = true
					}
				} else {
					parity ^= dv
				}
			}
			if chosen < 0 {
				return 0, 0, false
			}
			target := want ^ parity
			if extraX {
				// Remaining X inputs get justified by later objectives;
				// take the cheaper value for this one.
				if e.cc1[chosen] < e.cc0[chosen] {
					target = bitvec.One
				} else {
					target = bitvec.Zero
				}
			}
			gate, val = chosen, target

		default:
			return 0, 0, false
		}
	}
}
