package atpg

import (
	"math/rand"
	"testing"

	"lzwtc/internal/bitvec"
	"lzwtc/internal/circuit"
	"lzwtc/internal/fault"
	"lzwtc/internal/fsim"
)

func TestC17FullCoverage(t *testing.T) {
	cb, err := circuit.NewComb(circuit.C17())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cb, Options{Collapse: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() != 1.0 || res.Aborted != 0 || res.Untestable != 0 {
		t.Fatalf("c17: %+v", res)
	}
	// Cross-check with the fault simulator: the cube set must detect
	// every collapsed fault on its own.
	faults := fault.Collapse(cb.C, fault.All(cb.C))
	fres, err := fsim.Run(cb, res.Cubes, faults)
	if err != nil {
		t.Fatal(err)
	}
	if fres.Coverage() != 1.0 {
		t.Fatalf("cube set re-simulation coverage %.3f", fres.Coverage())
	}
}

func TestS27FullScanCoverage(t *testing.T) {
	cb, err := circuit.NewComb(circuit.S27())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cb, Options{Collapse: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() != 1.0 {
		t.Fatalf("s27: %+v", res)
	}
}

func TestCubesLeaveDontCares(t *testing.T) {
	gen, err := circuit.Generate(circuit.GenConfig{Name: "synth", Inputs: 20, Outputs: 8, DFFs: 40, Comb: 400, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := circuit.NewComb(gen)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cb, Options{Collapse: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Random synthetic logic is heavily redundant, so absolute fault
	// coverage is meaningless; require PODEM to beat a generous random
	// baseline (it proves redundancy where random patterns just miss).
	base, err := randomBaseline(cb, 1024, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected < base {
		t.Fatalf("PODEM detected %d < random baseline %d: %+v", res.Detected, base, res)
	}
	if d := res.Cubes.XDensity(); d < 0.2 {
		t.Fatalf("X density %.3f — PODEM cubes should be mostly unspecified", d)
	}
}

func TestRandomPhaseDropsFaults(t *testing.T) {
	gen, err := circuit.Generate(circuit.GenConfig{Name: "synth", Inputs: 16, Outputs: 8, DFFs: 20, Comb: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := circuit.NewComb(gen)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cb, Options{Collapse: true, Seed: 3, RandomPatterns: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.RandomHits == 0 {
		t.Fatal("random phase detected nothing")
	}
	base, err := randomBaseline(cb, 1024, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected < base {
		t.Fatalf("PODEM detected %d < random baseline %d: %+v", res.Detected, base, res)
	}
}

func TestRedundantFaultProven(t *testing.T) {
	// out = OR(a, AND(a, b)) == a: the AND output s-a-0 is undetectable.
	c := circuit.New("red")
	a, _ := c.AddGate("a", circuit.Input)
	b, _ := c.AddGate("b", circuit.Input)
	and, _ := c.AddGate("and", circuit.And, a, b)
	or, _ := c.AddGate("or", circuit.Or, a, and)
	c.MarkOutput(or)
	cb, err := circuit.NewComb(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cb, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Untestable == 0 {
		t.Fatalf("redundancy not proven: %+v", res)
	}
	if res.Aborted != 0 {
		t.Fatalf("aborts on a 4-gate circuit: %+v", res)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cb, _ := circuit.NewComb(circuit.S27())
	a, err := Run(cb, Options{Collapse: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cb, Options{Collapse: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cubes.Cubes) != len(b.Cubes.Cubes) {
		t.Fatal("cube counts differ across runs")
	}
	for i := range a.Cubes.Cubes {
		if !a.Cubes.Cubes[i].Equal(b.Cubes.Cubes[i]) {
			t.Fatalf("cube %d differs across runs", i)
		}
	}
}

func TestGeneratedCircuitPipeline(t *testing.T) {
	// A mid-size synthetic circuit: coverage stays high and the cube set
	// re-simulates to the claimed coverage.
	gen, err := circuit.Generate(circuit.GenConfig{Name: "mid", Inputs: 24, Outputs: 12, DFFs: 60, Comb: 600, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := circuit.NewComb(gen)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cb, Options{Collapse: true, Seed: 17, RandomPatterns: 64})
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Collapse(cb.C, fault.All(cb.C))
	fres, err := fsim.Run(cb, res.Cubes, faults)
	if err != nil {
		t.Fatal(err)
	}
	if fres.Detected < res.Detected {
		t.Fatalf("re-simulation found %d < claimed %d", fres.Detected, res.Detected)
	}
	var _ = bitvec.X // keep import for clarity of width checks below
	if res.Cubes.Width != cb.Width() {
		t.Fatalf("cube width %d, want %d", res.Cubes.Width, cb.Width())
	}
}

// randomBaseline counts the faults a set of n random concrete patterns
// detects.
func randomBaseline(cb *circuit.Comb, n int, seed int64) (int, error) {
	rng := rand.New(rand.NewSource(seed))
	cs := bitvec.NewCubeSet(cb.Width())
	for i := 0; i < n; i++ {
		p := bitvec.New(cb.Width())
		for b := 0; b < cb.Width(); b++ {
			p.Set(b, bitvec.Bit(rng.Intn(2)))
		}
		cs.Cubes = append(cs.Cubes, p)
	}
	faults := fault.Collapse(cb.C, fault.All(cb.C))
	res, err := fsim.Run(cb, cs, faults)
	if err != nil {
		return 0, err
	}
	return res.Detected, nil
}

func BenchmarkATPG(b *testing.B) {
	gen, _ := circuit.Generate(circuit.GenConfig{Name: "b", Inputs: 16, Outputs: 8, DFFs: 30, Comb: 300, Seed: 9})
	cb, _ := circuit.NewComb(gen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cb, Options{Collapse: true, Seed: int64(i), RandomPatterns: 32}); err != nil {
			b.Fatal(err)
		}
	}
}
