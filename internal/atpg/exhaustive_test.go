package atpg

import (
	"testing"

	"lzwtc/internal/bitvec"
	"lzwtc/internal/circuit"
	"lzwtc/internal/fault"
	"lzwtc/internal/fsim"
)

func TestSoundAndCompleteAgainstExhaustive(t *testing.T) {
	gen, err := circuit.Generate(circuit.GenConfig{Name: "d", Inputs: 8, Outputs: 4, DFFs: 4, Comb: 60, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := circuit.NewComb(gen)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Collapse(cb.C, fault.All(cb.C))
	// Ground truth: exhaustive patterns over the 12-bit pattern space.
	cs := bitvec.NewCubeSet(cb.Width())
	for v := 0; v < 1<<uint(cb.Width()); v++ {
		p := bitvec.New(cb.Width())
		for b := 0; b < cb.Width(); b++ {
			p.Set(b, bitvec.Bit(v>>uint(b)&1))
		}
		cs.Cubes = append(cs.Cubes, p)
	}
	truth, err := fsim.Run(cb, cs, faults)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("exhaustively detectable: %d / %d", truth.Detected, len(faults))

	// PODEM verdicts per fault.
	eng := newEngine(cb)
	wrongUntestable, wrongFound, aborted := 0, 0, 0
	for fi, f := range faults {
		_, st := eng.generate(f, 2000)
		detectable := truth.DetectedBy[fi] >= 0
		switch st {
		case statusFound:
			if !detectable {
				wrongFound++
			}
		case statusUntestable:
			if detectable {
				wrongUntestable++
				if wrongUntestable <= 5 {
					t.Logf("WRONG untestable: %v", f.Name(cb.C))
				}
			}
		case statusAborted:
			aborted++
		}
	}
	t.Logf("wrongUntestable=%d wrongFound=%d aborted=%d", wrongUntestable, wrongFound, aborted)
	if wrongUntestable > 0 || wrongFound > 0 {
		t.Fail()
	}
}
