package scan

import (
	"fmt"

	"lzwtc/internal/bitvec"
)

// ChainCubes splits a test set into per-chain cube sets (one per scan
// chain, in chain order) plus the primary-input set. The paper's method
// is scan-architecture independent (Section 1.2): each chain's stream
// can be compressed with its own dictionary, or the chains can share a
// decompressor through a demultiplexer — either way these are the
// streams involved.
func (d *Design) ChainCubes(cs *bitvec.CubeSet) (chains []*bitvec.CubeSet, pis *bitvec.CubeSet, err error) {
	if cs.Width != d.PatternWidth() {
		return nil, nil, fmt.Errorf("scan: cube width %d, design needs %d", cs.Width, d.PatternWidth())
	}
	nPI := len(d.Comb.PIs)
	// Pattern position of each flip-flop.
	pos := make(map[int]int, len(d.Comb.PPIs))
	for i, ff := range d.Comb.PPIs {
		pos[ff] = nPI + i
	}

	pis = bitvec.NewCubeSet(nPI)
	chains = make([]*bitvec.CubeSet, len(d.Chains))
	for k, ch := range d.Chains {
		chains[k] = bitvec.NewCubeSet(len(ch.Cells))
	}
	for _, cube := range cs.Cubes {
		pv := bitvec.New(nPI)
		for i := 0; i < nPI; i++ {
			if b := cube.Get(i); b != bitvec.X {
				pv.Set(i, b)
			}
		}
		if err := pis.Add(pv); err != nil {
			return nil, nil, err
		}
		for k, ch := range d.Chains {
			cv := bitvec.New(len(ch.Cells))
			for j, cell := range ch.Cells {
				if b := cube.Get(pos[cell]); b != bitvec.X {
					cv.Set(j, b)
				}
			}
			if err := chains[k].Add(cv); err != nil {
				return nil, nil, err
			}
		}
	}
	return chains, pis, nil
}

// MergeChainCubes inverts ChainCubes, reassembling full-width patterns
// from per-chain sets and the primary-input set.
func (d *Design) MergeChainCubes(chains []*bitvec.CubeSet, pis *bitvec.CubeSet) (*bitvec.CubeSet, error) {
	if len(chains) != len(d.Chains) {
		return nil, fmt.Errorf("scan: %d chain sets for %d chains", len(chains), len(d.Chains))
	}
	if pis.Width != len(d.Comb.PIs) {
		return nil, fmt.Errorf("scan: PI width %d, want %d", pis.Width, len(d.Comb.PIs))
	}
	n := len(pis.Cubes)
	for k, ch := range chains {
		if ch.Width != len(d.Chains[k].Cells) {
			return nil, fmt.Errorf("scan: chain %d width %d, want %d", k, ch.Width, len(d.Chains[k].Cells))
		}
		if len(ch.Cubes) != n {
			return nil, fmt.Errorf("scan: chain %d has %d patterns, want %d", k, len(ch.Cubes), n)
		}
	}
	nPI := len(d.Comb.PIs)
	pos := make(map[int]int, len(d.Comb.PPIs))
	for i, ff := range d.Comb.PPIs {
		pos[ff] = nPI + i
	}
	out := bitvec.NewCubeSet(d.PatternWidth())
	for p := 0; p < n; p++ {
		cube := bitvec.New(d.PatternWidth())
		for i := 0; i < nPI; i++ {
			if b := pis.Cubes[p].Get(i); b != bitvec.X {
				cube.Set(i, b)
			}
		}
		for k, ch := range chains {
			for j, cell := range d.Chains[k].Cells {
				if b := ch.Cubes[p].Get(j); b != bitvec.X {
					cube.Set(pos[cell], b)
				}
			}
		}
		if err := out.Add(cube); err != nil {
			return nil, err
		}
	}
	return out, nil
}
