package scan

import (
	"testing"

	"lzwtc/internal/bitvec"
	"lzwtc/internal/circuit"
	"lzwtc/internal/sim"
)

func TestInsertSingleChain(t *testing.T) {
	d, err := Insert(circuit.S27(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Chains) != 1 || len(d.Chains[0].Cells) != 3 {
		t.Fatalf("chains = %+v", d.Chains)
	}
	if d.PatternWidth() != 7 {
		t.Fatalf("pattern width = %d", d.PatternWidth())
	}
	if d.ScanCycles() != 3 {
		t.Fatalf("scan cycles = %d", d.ScanCycles())
	}
}

func TestInsertMultiChain(t *testing.T) {
	d, err := Insert(circuit.S27(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Chains) != 2 {
		t.Fatalf("chains = %d", len(d.Chains))
	}
	if d.ScanCycles() != 2 { // 3 cells over 2 chains -> longest has 2
		t.Fatalf("scan cycles = %d", d.ScanCycles())
	}
	// More chains than flip-flops clamps.
	d2, err := Insert(circuit.S27(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Chains) != 3 {
		t.Fatalf("clamped chains = %d", len(d2.Chains))
	}
	if _, err := Insert(circuit.S27(), 0); err == nil {
		t.Fatal("zero chains accepted")
	}
}

func TestInsertCombinationalOnly(t *testing.T) {
	d, err := Insert(circuit.C17(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.PatternWidth() != 5 || d.ScanCycles() != 0 {
		t.Fatalf("width %d cycles %d", d.PatternWidth(), d.ScanCycles())
	}
}

func TestApplyCapturesResponses(t *testing.T) {
	d, err := Insert(circuit.S27(), 1)
	if err != nil {
		t.Fatal(err)
	}
	st := sim.NewState(d.Comb)
	r, err := d.Apply(st, bitvec.MustParse("0000000"))
	if err != nil {
		t.Fatal(err)
	}
	if r.POs.Len() != 1 || r.NextState.Len() != 3 {
		t.Fatalf("response shapes: po %d ns %d", r.POs.Len(), r.NextState.Len())
	}
	if r.POs.XCount() != 0 || r.NextState.XCount() != 0 {
		t.Fatal("concrete pattern produced X responses")
	}
	if _, err := d.Apply(st, bitvec.MustParse("000")); err == nil {
		t.Fatal("bad width accepted")
	}
}

func TestApplySetAndCompatibility(t *testing.T) {
	d, err := Insert(circuit.S27(), 1)
	if err != nil {
		t.Fatal(err)
	}
	cubes := bitvec.NewCubeSet(7)
	cubes.Add(bitvec.MustParse("1X0X01X"))
	cubes.Add(bitvec.MustParse("XXXX111"))
	cubeResp, err := d.ApplySet(cubes)
	if err != nil {
		t.Fatal(err)
	}

	filled := bitvec.NewCubeSet(7)
	for _, c := range cubes.Cubes {
		filled.Add(c.Filled(bitvec.FillZero))
	}
	filledResp, err := d.ApplySet(filled)
	if err != nil {
		t.Fatal(err)
	}
	if err := ResponsesCompatible(cubeResp, filledResp); err != nil {
		t.Fatalf("zero-fill broke responses: %v", err)
	}

	// Corrupt a specified response bit: must be flagged.
	for i := 0; i < filledResp[0].NextState.Len(); i++ {
		if cubeResp[0].NextState.Get(i) != bitvec.X {
			filledResp[0].NextState.Set(i, cubeResp[0].NextState.Get(i)^1)
			break
		}
	}
	if err := ResponsesCompatible(cubeResp, filledResp); err == nil {
		t.Fatal("corrupted response not detected")
	}
	if err := ResponsesCompatible(cubeResp, filledResp[:1]); err == nil {
		t.Fatal("length mismatch not detected")
	}
}

func TestApplySetWidthCheck(t *testing.T) {
	d, _ := Insert(circuit.S27(), 1)
	bad := bitvec.NewCubeSet(5)
	bad.Add(bitvec.MustParse("00000"))
	if _, err := d.ApplySet(bad); err == nil {
		t.Fatal("wrong-width set accepted")
	}
}

func TestChainCubesSplitMerge(t *testing.T) {
	d, err := Insert(circuit.S27(), 2)
	if err != nil {
		t.Fatal(err)
	}
	cs := bitvec.NewCubeSet(7)
	cs.Add(bitvec.MustParse("01X10X1"))
	cs.Add(bitvec.MustParse("XXXX101"))
	chains, pis, err := d.ChainCubes(cs)
	if err != nil {
		t.Fatal(err)
	}
	if pis.Width != 4 || len(chains) != 2 {
		t.Fatalf("split shapes: PI %d, %d chains", pis.Width, len(chains))
	}
	if chains[0].Width+chains[1].Width != 3 {
		t.Fatalf("chain widths %d + %d != 3 cells", chains[0].Width, chains[1].Width)
	}
	// Total care bits are conserved.
	care := pis.TotalBits() - int(float64(pis.TotalBits())*pis.XDensity())
	for _, ch := range chains {
		care += ch.TotalBits() - int(float64(ch.TotalBits())*ch.XDensity())
	}
	orig := cs.TotalBits() - int(float64(cs.TotalBits())*cs.XDensity())
	if care != orig {
		t.Fatalf("care bits not conserved: %d vs %d", care, orig)
	}
	merged, err := d.MergeChainCubes(chains, pis)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cs.Cubes {
		if !cs.Cubes[i].Equal(merged.Cubes[i]) {
			t.Fatalf("pattern %d changed: %q vs %q", i, merged.Cubes[i], cs.Cubes[i])
		}
	}
}

func TestChainCubesErrors(t *testing.T) {
	d, _ := Insert(circuit.S27(), 2)
	bad := bitvec.NewCubeSet(5)
	bad.Add(bitvec.MustParse("00000"))
	if _, _, err := d.ChainCubes(bad); err == nil {
		t.Fatal("wrong width accepted")
	}
	cs := bitvec.NewCubeSet(7)
	cs.Add(bitvec.MustParse("0101010"))
	chains, pis, err := d.ChainCubes(cs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.MergeChainCubes(chains[:1], pis); err == nil {
		t.Fatal("missing chain accepted")
	}
	if _, err := d.MergeChainCubes(chains, bitvec.NewCubeSet(2)); err == nil {
		t.Fatal("bad PI width accepted")
	}
}
