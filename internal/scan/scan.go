// Package scan performs full-scan insertion and models scan-based test
// application: every flip-flop becomes a scan cell on one or more scan
// chains; test cubes address primary inputs and scan cells; responses
// are captured from primary outputs and next-state values.
//
// Serialization follows the paper's evaluation setup — a single scan
// chain whose input stream the compressor consumes — with the primary
// inputs carried in the same per-pattern word (the tester applies them
// in parallel while the chain shifts; for compression purposes they are
// part of the pattern's bit budget, as in the paper's "Orig. Size").
package scan

import (
	"fmt"

	"lzwtc/internal/bitvec"
	"lzwtc/internal/circuit"
	"lzwtc/internal/sim"
)

// Chain is one scan chain: flip-flop gate ids in shift order (scan-in
// first).
type Chain struct {
	Cells []int
}

// Design is a scan-inserted circuit.
type Design struct {
	C      *circuit.Circuit
	Comb   *circuit.Comb
	Chains []Chain
}

// Insert performs full-scan insertion, distributing the flip-flops over
// nChains chains round-robin (the physical stitch order is irrelevant to
// the compression method, which is scan-architecture-independent —
// Section 1.2).
func Insert(c *circuit.Circuit, nChains int) (*Design, error) {
	if nChains < 1 {
		return nil, fmt.Errorf("scan: need at least one chain")
	}
	if nChains > len(c.DFFs) && len(c.DFFs) > 0 {
		nChains = len(c.DFFs)
	}
	cb, err := circuit.NewComb(c)
	if err != nil {
		return nil, err
	}
	d := &Design{C: c, Comb: cb}
	if len(c.DFFs) == 0 {
		d.Chains = []Chain{{}}
		return d, nil
	}
	d.Chains = make([]Chain, nChains)
	for i, ff := range c.DFFs {
		k := i % nChains
		d.Chains[k].Cells = append(d.Chains[k].Cells, ff)
	}
	return d, nil
}

// PatternWidth returns bits per test pattern: primary inputs plus scan
// cells.
func (d *Design) PatternWidth() int { return d.Comb.Width() }

// ScanCycles returns the shift cycles needed per pattern: the longest
// chain.
func (d *Design) ScanCycles() int {
	longest := 0
	for _, ch := range d.Chains {
		if len(ch.Cells) > longest {
			longest = len(ch.Cells)
		}
	}
	return longest
}

// Response is the captured output of one applied pattern.
type Response struct {
	POs       *bitvec.Vector // primary outputs
	NextState *bitvec.Vector // values captured into the scan cells
}

// Apply evaluates one test pattern (PI bits then scan-cell bits, X
// allowed) against the good machine and captures the response.
func (d *Design) Apply(st *sim.State, pattern *bitvec.Vector) (*Response, error) {
	if err := st.Apply(pattern); err != nil {
		return nil, err
	}
	r := &Response{
		POs:       bitvec.New(len(d.C.Outputs)),
		NextState: bitvec.New(len(d.C.DFFs)),
	}
	for i, o := range d.C.Outputs {
		r.POs.Set(i, st.Get(o))
	}
	for i, ff := range d.C.DFFs {
		r.NextState.Set(i, st.Get(d.C.Gates[ff].Fanin[0]))
	}
	return r, nil
}

// ApplySet applies every cube of a set in order and returns the
// responses.
func (d *Design) ApplySet(cs *bitvec.CubeSet) ([]*Response, error) {
	if cs.Width != d.PatternWidth() {
		return nil, fmt.Errorf("scan: cube width %d, design needs %d", cs.Width, d.PatternWidth())
	}
	st := sim.NewState(d.Comb)
	out := make([]*Response, 0, len(cs.Cubes))
	for _, c := range cs.Cubes {
		r, err := d.Apply(st, c)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ResponsesCompatible reports whether concrete responses (from applying
// a filled test set) agree with cube responses (from the unfilled cubes)
// on every specified bit — the check that don't-care filling by the
// compressor preserved test behaviour.
func ResponsesCompatible(cubeResp, filledResp []*Response) error {
	if len(cubeResp) != len(filledResp) {
		return fmt.Errorf("scan: response counts differ: %d vs %d", len(cubeResp), len(filledResp))
	}
	for i := range cubeResp {
		if err := vecCompatible(cubeResp[i].POs, filledResp[i].POs); err != nil {
			return fmt.Errorf("pattern %d POs: %w", i, err)
		}
		if err := vecCompatible(cubeResp[i].NextState, filledResp[i].NextState); err != nil {
			return fmt.Errorf("pattern %d capture: %w", i, err)
		}
	}
	return nil
}

func vecCompatible(cube, filled *bitvec.Vector) error {
	if cube.Len() != filled.Len() {
		return fmt.Errorf("widths differ: %d vs %d", cube.Len(), filled.Len())
	}
	for i := 0; i < cube.Len(); i++ {
		cb := cube.Get(i)
		fb := filled.Get(i)
		if cb != bitvec.X && fb != cb {
			return fmt.Errorf("bit %d: cube expects %v, filled run produced %v", i, cb, fb)
		}
	}
	return nil
}
