package dictstore

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"

	"lzwtc/internal/core"
	"lzwtc/internal/telemetry"
	"lzwtc/internal/wire"
)

// Typed store errors.
var (
	// ErrNotFound reports a key present in neither the memory LRU nor
	// the disk index.
	ErrNotFound = errors.New("dictstore: dictionary not found")
	// ErrClosed reports an operation on a closed store.
	ErrClosed = errors.New("dictstore: store closed")
	// ErrDigestMismatch reports a resolved dictionary whose canonical
	// blob digest differs from the one a container references: the key
	// named a dictionary, but not the dictionary the container was
	// compressed with.
	ErrDigestMismatch = errors.New("dictstore: dictionary digest mismatch")
)

// Source reports where a resolution was served from.
type Source uint8

// Resolution sources.
const (
	// SourceMem is a memory-LRU hit.
	SourceMem Source = iota
	// SourceDisk is a disk rehydration (the entry also re-enters the
	// memory LRU).
	SourceDisk
	// SourceTrained means the singleflight leader ran the training
	// function; waiters sharing the flight report the same source.
	SourceTrained
)

// String names the source.
func (s Source) String() string {
	switch s {
	case SourceMem:
		return "mem"
	case SourceDisk:
		return "disk"
	case SourceTrained:
		return "trained"
	default:
		return fmt.Sprintf("Source(%d)", uint8(s))
	}
}

// TrainFunc produces a preload dictionary on a store miss. It runs at
// most once per key across concurrent GetOrTrain calls (singleflight).
type TrainFunc func(ctx context.Context) (*core.Preload, error)

// Config tunes a Store. The zero value is a memory-only store with the
// default budget.
type Config struct {
	// MemBudget bounds the decoded bytes the in-memory LRU holds;
	// <= 0 means 64 MiB. An entry larger than the whole budget is
	// served and persisted but never cached in memory.
	MemBudget int64
	// Dir is the on-disk persistent index directory (created if
	// absent); empty disables persistence.
	Dir string
	// DiskBudget bounds the blob bytes the disk index holds; <= 0
	// means 256 MiB.
	DiskBudget int64
	// Registry receives store metrics; nil allocates a private one.
	Registry *telemetry.Registry
	// Recorder records one SpanDictResolve trace span per resolution;
	// nil disables spans.
	Recorder *telemetry.Recorder
}

// Entry is one resolved dictionary: the decoded preload plus the
// identity of its canonical blob. Entries are immutable once stored
// and may be shared across goroutines.
type Entry struct {
	// Key is the content address the entry is stored under.
	Key Key
	// Cfg is the configuration the dictionary was trained under.
	Cfg core.Config
	// Pre is the decoded preload dictionary.
	Pre *core.Preload
	// Digest is the SHA-256 of the canonical blob encoding.
	Digest Digest
	// BlobBytes is the canonical blob size.
	BlobBytes int

	memBytes int64
}

// Stats is a point-in-time store snapshot.
type Stats struct {
	// Entries and MemBytes describe the memory LRU.
	Entries  int
	MemBytes int64
	// DiskEntries and DiskBytes describe the disk index (zero for a
	// memory-only store).
	DiskEntries int
	DiskBytes   int64
	// Hits, Misses, Evictions and Trains mirror the registry counters.
	Hits      int64
	Misses    int64
	Evictions int64
	Trains    int64
}

// flight is one in-progress miss resolution; waiters block on done.
type flight struct {
	done chan struct{}
	ent  *Entry
	src  Source
	err  error
}

// Store is the shared-dictionary cache: a byte-budgeted LRU over
// decoded preload dictionaries, singleflight miss resolution, and an
// optional crash-safe disk index behind it.
type Store struct {
	memBudget int64
	rec       *telemetry.Recorder
	hits      *telemetry.Counter
	misses    *telemetry.Counter
	evictions *telemetry.Counter
	trains    *telemetry.Counter
	memG      *telemetry.Gauge
	diskG     *telemetry.Gauge

	mu       sync.Mutex
	elems    map[Key]*list.Element // -> *Entry, LRU front = most recent
	lru      *list.List
	memBytes int64
	flights  map[Key]*flight
	disk     *diskIndex
	closed   bool
}

// Open builds a Store, creating and reconciling the disk index when
// Config.Dir is set (leftover temp files from a crashed writer are
// removed; manifest entries without blob files are dropped; blob files
// without manifest entries are adopted).
func Open(cfg Config) (*Store, error) {
	if cfg.MemBudget <= 0 {
		cfg.MemBudget = 64 << 20
	}
	if cfg.DiskBudget <= 0 {
		cfg.DiskBudget = 256 << 20
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s := &Store{
		memBudget: cfg.MemBudget,
		rec:       cfg.Recorder,
		hits:      reg.Counter(MetricHits, "dictionary resolutions served without training"),
		misses:    reg.Counter(MetricMisses, "dictionary resolutions that trained or found nothing"),
		evictions: reg.Counter(MetricEvictions, "dictionary entries evicted from memory or disk"),
		trains:    reg.Counter(MetricTrains, "training runs executed through the singleflight gate"),
		memG:      reg.Gauge(MetricBytes, "decoded bytes held by the memory LRU"),
		diskG:     reg.Gauge(MetricDiskBytes, "blob bytes held by the disk index"),
		elems:     map[Key]*list.Element{},
		lru:       list.New(),
		flights:   map[Key]*flight{},
	}
	if cfg.Dir != "" {
		disk, err := openDiskIndex(cfg.Dir, cfg.DiskBudget)
		if err != nil {
			return nil, err
		}
		s.disk = disk
		s.diskG.Set(float64(disk.totalBytes()))
	}
	return s, nil
}

// SetRecorder re-points the store's trace spans at rec (metrics keep
// the registry chosen at Open). The server calls it once while wiring
// an injected store into its request tracing, before traffic starts;
// it is not synchronized against concurrent resolutions.
func (s *Store) SetRecorder(rec *telemetry.Recorder) { s.rec = rec }

// Close marks the store closed. In-flight resolutions complete; new
// operations fail with ErrClosed. The disk index needs no flush — every
// mutation already persisted via rename.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// Resolve returns the entry for key from the memory LRU or the disk
// index, without training: ErrNotFound when neither layer has it.
func (s *Store) Resolve(ctx context.Context, key Key) (*Entry, error) {
	ent, _, err := s.GetOrTrain(ctx, key, core.Config{}, nil)
	return ent, err
}

// GetOrTrain resolves key: memory LRU, then disk, then — on a full
// miss — the training function, executed exactly once per key across
// concurrent callers (later callers block on the first's flight and
// share its result). A nil train turns the full miss into ErrNotFound.
// cfg is the configuration train trains under; it is ignored for hits
// (the stored entry's own configuration governs).
func (s *Store) GetOrTrain(ctx context.Context, key Key, cfg core.Config, train TrainFunc) (*Entry, Source, error) {
	if s.rec == nil {
		// No recorder: skip span bookkeeping so a warm memory hit is
		// allocation-free (the hot repeat-traffic path).
		return s.getOrTrain(ctx, key, cfg, train)
	}
	rctx, sp := s.rec.StartSpan(ctx, SpanDictResolve)
	ent, src, err := s.getOrTrain(rctx, key, cfg, train)
	sp.End(telemetry.F("source", src.String()), telemetry.F("ok", err == nil))
	return ent, src, err
}

func (s *Store) getOrTrain(ctx context.Context, key Key, cfg core.Config, train TrainFunc) (*Entry, Source, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, SourceMem, ErrClosed
	}
	if el, ok := s.elems[key]; ok {
		s.lru.MoveToFront(el)
		ent := el.Value.(*Entry)
		s.mu.Unlock()
		s.hits.Inc()
		return ent, SourceMem, nil
	}
	if fl, ok := s.flights[key]; ok {
		s.mu.Unlock()
		select {
		case <-fl.done:
			if fl.err != nil {
				return nil, fl.src, fl.err
			}
			s.hits.Inc()
			return fl.ent, fl.src, nil
		case <-ctx.Done():
			return nil, SourceMem, ctx.Err()
		}
	}
	fl := &flight{done: make(chan struct{})}
	s.flights[key] = fl
	s.mu.Unlock()

	fl.ent, fl.src, fl.err = s.resolveMiss(ctx, key, cfg, train)

	s.mu.Lock()
	delete(s.flights, key)
	s.mu.Unlock()
	close(fl.done)
	return fl.ent, fl.src, fl.err
}

// resolveMiss is the flight leader's path: disk rehydration, then
// training. Runs without the store lock (insert re-acquires it).
func (s *Store) resolveMiss(ctx context.Context, key Key, cfg core.Config, train TrainFunc) (*Entry, Source, error) {
	if s.disk != nil {
		blob, ok, err := s.disk.load(key)
		if err != nil {
			return nil, SourceDisk, err
		}
		if ok {
			bcfg, pre, derr := DecodeBlob(blob)
			if derr == nil {
				ent := newEntry(key, bcfg, pre, blob)
				s.insertMem(ent)
				s.hits.Inc()
				return ent, SourceDisk, nil
			}
			// A corrupt on-disk blob is detected, evicted, and treated
			// as a miss — never decoded into a wrong dictionary.
			if rerr := s.disk.remove(key); rerr != nil {
				return nil, SourceDisk, errors.Join(derr, rerr)
			}
			s.evictions.Inc()
			s.diskG.Set(float64(s.disk.totalBytes()))
		}
	}
	if train == nil {
		s.misses.Inc()
		return nil, SourceTrained, ErrNotFound
	}
	s.misses.Inc()
	s.trains.Inc()
	pre, err := train(ctx)
	if err != nil {
		return nil, SourceTrained, err
	}
	ent, err := s.insert(key, cfg, pre)
	if err != nil {
		return nil, SourceTrained, err
	}
	return ent, SourceTrained, nil
}

// PutPreload stores an already-trained dictionary under key, encoding
// its canonical blob, inserting it into the memory LRU and persisting
// it to the disk index. An existing entry under the same key is
// replaced.
func (s *Store) PutPreload(key Key, cfg core.Config, pre *core.Preload) (*Entry, error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	return s.insert(key, cfg, pre)
}

// PutBlob validates an uploaded blob and stores it under key. The blob
// is fully decoded (every structural rule re-checked) and re-encoded
// canonically, so a non-canonical but valid upload converges to the
// same digest as a local training run.
func (s *Store) PutBlob(key Key, blob []byte) (*Entry, error) {
	cfg, pre, err := DecodeBlob(blob)
	if err != nil {
		return nil, err
	}
	return s.PutPreload(key, cfg, pre)
}

// insert encodes, caches and persists one entry.
func (s *Store) insert(key Key, cfg core.Config, pre *core.Preload) (*Entry, error) {
	blob, err := EncodeBlob(cfg, pre)
	if err != nil {
		return nil, err
	}
	ent := newEntry(key, cfg, pre, blob)
	s.insertMem(ent)
	if s.disk != nil {
		evicted, err := s.disk.put(key, blob)
		if err != nil {
			return nil, err
		}
		s.evictions.Add(int64(evicted))
		s.diskG.Set(float64(s.disk.totalBytes()))
	}
	return ent, nil
}

// newEntry builds an Entry, accounting the decoded footprint: the
// blob plus the reconstructed strings (8 bytes per character plus
// slice headers).
func newEntry(key Key, cfg core.Config, pre *core.Preload, blob []byte) *Entry {
	mem := int64(len(blob))
	for _, str := range pre.Strings {
		mem += int64(8*len(str)) + 24
	}
	return &Entry{
		Key:       key,
		Cfg:       cfg,
		Pre:       pre,
		Digest:    BlobDigest(blob),
		BlobBytes: len(blob),
		memBytes:  mem,
	}
}

// insertMem adds (or replaces) an entry in the memory LRU and evicts
// from the cold end until the byte budget holds. An entry larger than
// the whole budget is not cached at all, so the budget is never
// exceeded.
func (s *Store) insertMem(ent *Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.elems[ent.Key]; ok {
		s.memBytes -= el.Value.(*Entry).memBytes
		s.lru.Remove(el)
		delete(s.elems, ent.Key)
	}
	if ent.memBytes > s.memBudget {
		s.memG.Set(float64(s.memBytes))
		return
	}
	s.elems[ent.Key] = s.lru.PushFront(ent)
	s.memBytes += ent.memBytes
	for s.memBytes > s.memBudget {
		back := s.lru.Back()
		old := back.Value.(*Entry)
		s.lru.Remove(back)
		delete(s.elems, old.Key)
		s.memBytes -= old.memBytes
		s.evictions.Inc()
	}
	s.memG.Set(float64(s.memBytes))
}

// ResolveDict resolves a wire dictionary reference for decompression:
// the key is looked up (memory, then disk) and the resolved entry's
// canonical digest must match the one the container carries —
// ErrDigestMismatch otherwise, so a same-key-different-dictionary
// store can never silently misdecode a container.
func (s *Store) ResolveDict(ctx context.Context, ref wire.DictRef) (*core.Preload, error) {
	ent, err := s.Resolve(ctx, Key(ref.Key))
	if err != nil {
		return nil, err
	}
	if ent.Digest != Digest(ref.Digest) {
		return nil, fmt.Errorf("%w: key %s resolved digest %s, container wants %x",
			ErrDigestMismatch, ent.Key, ent.Digest, ref.Digest)
	}
	return ent.Pre, nil
}

// Blob returns the canonical blob encoding of a stored dictionary
// (resolving through memory or disk), for serving fetches.
func (s *Store) Blob(ctx context.Context, key Key) ([]byte, *Entry, error) {
	ent, err := s.Resolve(ctx, key)
	if err != nil {
		return nil, nil, err
	}
	blob, err := EncodeBlob(ent.Cfg, ent.Pre)
	if err != nil {
		return nil, nil, err
	}
	return blob, ent, nil
}

// Delete evicts key from both layers, reporting whether anything was
// removed.
func (s *Store) Delete(key Key) (bool, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false, ErrClosed
	}
	removed := false
	if el, ok := s.elems[key]; ok {
		s.memBytes -= el.Value.(*Entry).memBytes
		s.lru.Remove(el)
		delete(s.elems, key)
		s.memG.Set(float64(s.memBytes))
		removed = true
	}
	s.mu.Unlock()
	if s.disk != nil {
		had, err := s.disk.contains(key)
		if err == nil && had {
			err = s.disk.remove(key)
			removed = removed || err == nil
		}
		if err != nil {
			return removed, err
		}
		s.diskG.Set(float64(s.disk.totalBytes()))
	}
	if removed {
		s.evictions.Inc()
	}
	return removed, nil
}

// EntryInfo is one listed entry.
type EntryInfo struct {
	Key Key
	// Entries is the preload string count (-1 when only the disk
	// index knows the key and the blob has not been decoded).
	Entries int
	// BlobBytes is the canonical blob size.
	BlobBytes int
	// InMem reports memory-LRU residency.
	InMem bool
}

// List snapshots the store's contents: every memory-resident entry
// plus disk-only keys (undecoded, size from the index).
func (s *Store) List() []EntryInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []EntryInfo
	seen := map[Key]bool{}
	for el := s.lru.Front(); el != nil; el = el.Next() {
		ent := el.Value.(*Entry)
		out = append(out, EntryInfo{Key: ent.Key, Entries: ent.Pre.Entries(), BlobBytes: ent.BlobBytes, InMem: true})
		seen[ent.Key] = true
	}
	if s.disk != nil {
		for _, de := range s.disk.list() {
			if !seen[de.key] {
				out = append(out, EntryInfo{Key: de.key, Entries: -1, BlobBytes: int(de.bytes)})
			}
		}
	}
	return out
}

// Stats snapshots the store counters and occupancy.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Entries:   s.lru.Len(),
		MemBytes:  s.memBytes,
		Hits:      s.hits.Value(),
		Misses:    s.misses.Value(),
		Evictions: s.evictions.Value(),
		Trains:    s.trains.Value(),
	}
	s.mu.Unlock()
	if s.disk != nil {
		entries, bytes := s.disk.stats()
		st.DiskEntries, st.DiskBytes = entries, bytes
	}
	return st
}
