package dictstore

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lzwtc/internal/core"
	"lzwtc/internal/telemetry"
	"lzwtc/internal/wire"
)

// wireRef is the container reference for a store entry.
func wireRef(ent *Entry) wire.DictRef {
	return wire.DictRef{Key: [KeyLen]byte(ent.Key), Digest: [DigestLen]byte(ent.Digest)}
}

// keyN derives a distinct test key.
func keyN(n byte) Key {
	var k Key
	k[0] = n
	k[31] = ^n
	return k
}

// preloadN builds a preload with n two-character entries, each a
// distinct (literal, char) pair so sizes are comparable across keys.
func preloadN(n int) *core.Preload {
	p := &core.Preload{}
	for i := 0; i < n; i++ {
		p.Strings = append(p.Strings, []uint64{uint64(i % 16), uint64(i / 16 % 16)})
	}
	return p
}

func openTestStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return s
}

func TestStoreTrainThenHit(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := openTestStore(t, Config{Registry: reg})
	cfg := testConfig()
	key := keyN(1)
	ctx := context.Background()

	trains := 0
	ent, src, err := s.GetOrTrain(ctx, key, cfg, func(context.Context) (*core.Preload, error) {
		trains++
		return testPreload(), nil
	})
	if err != nil || src != SourceTrained || trains != 1 {
		t.Fatalf("cold resolve: src=%v trains=%d err=%v", src, trains, err)
	}

	// The warm path must never invoke the training function.
	ent2, src, err := s.GetOrTrain(ctx, key, cfg, func(context.Context) (*core.Preload, error) {
		t.Fatal("training function ran on a warm hit")
		return nil, nil
	})
	if err != nil || src != SourceMem {
		t.Fatalf("warm resolve: src=%v err=%v", src, err)
	}
	if ent2 != ent {
		t.Fatal("warm hit returned a different entry")
	}

	snap := reg.Snapshot()
	if got := snap.CounterValue(MetricTrains); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricTrains, got)
	}
	if got := snap.CounterValue(MetricHits); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricHits, got)
	}
	if got := snap.CounterValue(MetricMisses); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricMisses, got)
	}
	if got := snap.GaugeValue(MetricBytes); got <= 0 {
		t.Fatalf("%s = %v, want > 0", MetricBytes, got)
	}
	if got := snap.GaugeValue(MetricDiskBytes); got != 0 {
		t.Fatalf("%s = %v for a memory-only store", MetricDiskBytes, got)
	}
}

// TestStoreWarmHitZeroAllocs pins the repeat-traffic contract: a warm
// memory hit does no training and no allocation at all — resolving is
// a map lookup and an LRU rotation.
func TestStoreWarmHitZeroAllocs(t *testing.T) {
	s := openTestStore(t, Config{})
	key := keyN(2)
	if _, err := s.PutPreload(key, testConfig(), testPreload()); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.Resolve(ctx, key); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm hit allocates %v objects, want 0", allocs)
	}
}

func TestStoreResolveSpan(t *testing.T) {
	var spans []string
	rec := telemetry.New(telemetry.NewRegistry(), telemetry.SinkFunc(func(ev telemetry.Event) {
		if ev.Kind == telemetry.EventTraceSpan {
			if name, ok := ev.Field("name"); ok {
				spans = append(spans, name.(string))
			}
		}
	}))
	s := openTestStore(t, Config{Recorder: rec})
	key := keyN(3)
	if _, err := s.PutPreload(key, testConfig(), testPreload()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Resolve(context.Background(), key); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, name := range spans {
		if name == SpanDictResolve {
			found = true
		}
	}
	if !found {
		t.Fatalf("no %s span recorded; got %v", SpanDictResolve, spans)
	}
}

func TestStoreMissWithoutTrain(t *testing.T) {
	s := openTestStore(t, Config{})
	if _, err := s.Resolve(context.Background(), keyN(4)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
}

func TestStoreClosed(t *testing.T) {
	s, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Resolve(context.Background(), keyN(5)); !errors.Is(err, ErrClosed) {
		t.Fatalf("resolve after close: %v, want ErrClosed", err)
	}
	if _, err := s.PutPreload(keyN(5), testConfig(), testPreload()); !errors.Is(err, ErrClosed) {
		t.Fatalf("put after close: %v, want ErrClosed", err)
	}
	if _, err := s.Delete(keyN(5)); !errors.Is(err, ErrClosed) {
		t.Fatalf("delete after close: %v, want ErrClosed", err)
	}
}

// TestStoreMemLRUBudget: inserting past the memory budget evicts from
// the cold end, the budget is never exceeded, and an entry larger than
// the whole budget is served but not cached.
func TestStoreMemLRUBudget(t *testing.T) {
	reg := telemetry.NewRegistry()
	// Size the budget for roughly two decoded entries.
	probe, err := EncodeBlob(testConfig(), preloadN(8))
	if err != nil {
		t.Fatal(err)
	}
	entryMem := newEntry(keyN(0), testConfig(), preloadN(8), probe).memBytes
	s := openTestStore(t, Config{MemBudget: 2*entryMem + entryMem/2, Registry: reg})

	for i := byte(1); i <= 4; i++ {
		if _, err := s.PutPreload(keyN(i), testConfig(), preloadN(8)); err != nil {
			t.Fatal(err)
		}
		if st := s.Stats(); st.MemBytes > 2*entryMem+entryMem/2 {
			t.Fatalf("after insert %d: mem %d exceeds budget", i, st.MemBytes)
		}
	}
	st := s.Stats()
	if st.Entries != 2 {
		t.Fatalf("LRU holds %d entries, want 2", st.Entries)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded past the budget")
	}
	// Coldest entries evicted: 1 and 2 gone, 3 and 4 resident.
	ctx := context.Background()
	if _, err := s.Resolve(ctx, keyN(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("key 1 still resident: %v", err)
	}
	if _, err := s.Resolve(ctx, keyN(4)); err != nil {
		t.Fatalf("key 4 evicted: %v", err)
	}

	// An entry bigger than the whole budget is served but never cached.
	before := s.Stats().MemBytes
	huge := preloadN(40)
	if _, err := s.PutPreload(keyN(9), testConfig(), huge); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().MemBytes; got != before {
		t.Fatalf("oversized entry changed mem occupancy %d -> %d", before, got)
	}
}

func TestStoreDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	key := keyN(6)
	blob := func() []byte {
		s := openTestStore(t, Config{Dir: dir})
		ent, err := s.PutPreload(key, testConfig(), testPreload())
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := s.Blob(context.Background(), key)
		if err != nil {
			t.Fatal(err)
		}
		if ent.Digest != BlobDigest(b) {
			t.Fatal("entry digest does not match canonical blob")
		}
		return b
	}()

	// A fresh store over the same directory rehydrates from disk; the
	// second resolve is a memory hit.
	s2 := openTestStore(t, Config{Dir: dir})
	ctx := context.Background()
	ent, src, err := s2.GetOrTrain(ctx, key, core.Config{}, nil)
	if err != nil || src != SourceDisk {
		t.Fatalf("rehydration: src=%v err=%v", src, err)
	}
	if ent.Digest != BlobDigest(blob) {
		t.Fatal("rehydrated digest differs from the persisted blob")
	}
	if _, src, err = s2.GetOrTrain(ctx, key, core.Config{}, nil); err != nil || src != SourceMem {
		t.Fatalf("post-rehydration resolve: src=%v err=%v", src, err)
	}
	st := s2.Stats()
	if st.DiskEntries != 1 || st.DiskBytes != int64(len(blob)) {
		t.Fatalf("disk stats %d entries / %d bytes, want 1 / %d", st.DiskEntries, st.DiskBytes, len(blob))
	}
}

// TestStoreCrashSafety: a partially written temp file left by a
// simulated crash is ignored and cleaned at Open, and a corrupted blob
// file is detected, evicted and treated as a miss — never decoded.
func TestStoreCrashSafety(t *testing.T) {
	dir := t.TempDir()
	key := keyN(7)
	func() {
		s := openTestStore(t, Config{Dir: dir})
		if _, err := s.PutPreload(key, testConfig(), testPreload()); err != nil {
			t.Fatal(err)
		}
	}()

	// Simulate a writer that died mid-blob and mid-manifest.
	tmpBlob := filepath.Join(dir, keyN(8).String()+blobExt+tmpExt)
	if err := os.WriteFile(tmpBlob, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	tmpMan := filepath.Join(dir, manifestName+tmpExt)
	if err := os.WriteFile(tmpMan, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Corrupt the persisted blob in place (flip one payload bit).
	blobPath := filepath.Join(dir, key.String()+blobExt)
	raw, err := os.ReadFile(blobPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(blobPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	s := openTestStore(t, Config{Dir: dir, Registry: reg})
	for _, tmp := range []string{tmpBlob, tmpMan} {
		if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("temp file %s survived Open", filepath.Base(tmp))
		}
	}
	if _, err := s.Resolve(context.Background(), key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt blob resolved: %v, want ErrNotFound", err)
	}
	if _, err := os.Stat(blobPath); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("corrupt blob file not evicted")
	}
	if got := reg.Snapshot().CounterValue(MetricEvictions); got != 1 {
		t.Fatalf("%s = %d, want 1 for the corrupt-blob eviction", MetricEvictions, got)
	}
}

// TestStoreDiskBudget: the disk index LRU-evicts blob files past its
// byte budget and the manifest tracks the survivors.
func TestStoreDiskBudget(t *testing.T) {
	dir := t.TempDir()
	blob, err := EncodeBlob(testConfig(), preloadN(8))
	if err != nil {
		t.Fatal(err)
	}
	s := openTestStore(t, Config{Dir: dir, DiskBudget: int64(2 * len(blob))})
	for i := byte(1); i <= 4; i++ {
		if _, err := s.PutPreload(keyN(i), testConfig(), preloadN(8)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.DiskEntries != 2 || st.DiskBytes > int64(2*len(blob)) {
		t.Fatalf("disk holds %d entries / %d bytes, want 2 / <= %d", st.DiskEntries, st.DiskBytes, 2*len(blob))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	blobs := 0
	for _, de := range entries {
		if strings.HasSuffix(de.Name(), blobExt) {
			blobs++
		}
	}
	if blobs != 2 {
		t.Fatalf("%d blob files on disk, want 2", blobs)
	}
}

// TestStoreManifestCorruption: an unreadable manifest never fails Open;
// the index rebuilds from the blob files alone.
func TestStoreManifestCorruption(t *testing.T) {
	dir := t.TempDir()
	key := keyN(9)
	func() {
		s := openTestStore(t, Config{Dir: dir})
		if _, err := s.PutPreload(key, testConfig(), testPreload()); err != nil {
			t.Fatal(err)
		}
	}()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openTestStore(t, Config{Dir: dir})
	if _, src, err := s.GetOrTrain(context.Background(), key, core.Config{}, nil); err != nil || src != SourceDisk {
		t.Fatalf("orphan blob not adopted: src=%v err=%v", src, err)
	}
}

func TestStoreDelete(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, Config{Dir: dir})
	key := keyN(10)
	if _, err := s.PutPreload(key, testConfig(), testPreload()); err != nil {
		t.Fatal(err)
	}
	removed, err := s.Delete(key)
	if err != nil || !removed {
		t.Fatalf("delete: removed=%v err=%v", removed, err)
	}
	if _, err := s.Resolve(context.Background(), key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key resolved: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, key.String()+blobExt)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("deleted blob file still on disk")
	}
	if removed, err = s.Delete(key); err != nil || removed {
		t.Fatalf("second delete: removed=%v err=%v", removed, err)
	}
}

func TestStoreResolveDictDigestMismatch(t *testing.T) {
	s := openTestStore(t, Config{})
	key := keyN(11)
	ent, err := s.PutPreload(key, testConfig(), testPreload())
	if err != nil {
		t.Fatal(err)
	}
	ref := wireRef(ent)
	ref.Digest[0] ^= 0xFF
	if _, err := s.ResolveDict(context.Background(), ref); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("got %v, want ErrDigestMismatch", err)
	}
	if pre, err := s.ResolveDict(context.Background(), wireRef(ent)); err != nil || pre.Entries() != ent.Pre.Entries() {
		t.Fatalf("matching digest rejected: %v", err)
	}
}

func TestStorePutBlobValidates(t *testing.T) {
	s := openTestStore(t, Config{})
	blob, err := EncodeBlob(testConfig(), testPreload())
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), blob...)
	mut[len(mut)-1] ^= 1
	if _, err := s.PutBlob(keyN(12), mut); err == nil {
		t.Fatal("PutBlob accepted a corrupt blob")
	}
	if _, err := s.PutBlob(keyN(12), blob); err != nil {
		t.Fatal(err)
	}
}

func TestStoreList(t *testing.T) {
	dir := t.TempDir()
	func() {
		s := openTestStore(t, Config{Dir: dir})
		if _, err := s.PutPreload(keyN(13), testConfig(), testPreload()); err != nil {
			t.Fatal(err)
		}
	}()
	// Reopened: the entry is disk-only until resolved.
	s := openTestStore(t, Config{Dir: dir})
	if _, err := s.PutPreload(keyN(14), testConfig(), testPreload()); err != nil {
		t.Fatal(err)
	}
	infos := s.List()
	if len(infos) != 2 {
		t.Fatalf("List returned %d entries, want 2", len(infos))
	}
	byKey := map[Key]EntryInfo{}
	for _, info := range infos {
		byKey[info.Key] = info
	}
	if info := byKey[keyN(14)]; !info.InMem || info.Entries != testPreload().Entries() {
		t.Fatalf("mem entry listed as %+v", info)
	}
	if info := byKey[keyN(13)]; info.InMem || info.Entries != -1 || info.BlobBytes == 0 {
		t.Fatalf("disk-only entry listed as %+v", info)
	}
}
