package dictstore

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lzwtc/internal/core"
)

// TestStoreSingleflight: N concurrent misses on one key run the
// training function exactly once; every caller gets the same entry.
func TestStoreSingleflight(t *testing.T) {
	s := openTestStore(t, Config{})
	key := keyN(20)
	cfg := testConfig()
	const callers = 32

	var trains atomic.Int64
	start := make(chan struct{})
	entries := make([]*Entry, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			entries[i], _, errs[i] = s.GetOrTrain(context.Background(), key, cfg,
				func(context.Context) (*core.Preload, error) {
					trains.Add(1)
					// Hold the flight open long enough for the other
					// callers to pile onto it.
					time.Sleep(20 * time.Millisecond)
					return testPreload(), nil
				})
		}(i)
	}
	close(start)
	wg.Wait()

	if got := trains.Load(); got != 1 {
		t.Fatalf("training ran %d times across %d concurrent callers, want 1", got, callers)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if entries[i] == nil || entries[i].Pre.Entries() != testPreload().Entries() {
			t.Fatalf("caller %d got entry %+v", i, entries[i])
		}
	}
	if st := s.Stats(); st.Trains != 1 {
		t.Fatalf("stats report %d trains, want 1", st.Trains)
	}
}

// TestStoreFlightCancellation: a waiter whose context ends stops
// waiting; the flight leader still completes and later resolutions hit.
func TestStoreFlightCancellation(t *testing.T) {
	s := openTestStore(t, Config{})
	key := keyN(21)
	release := make(chan struct{})
	leaderIn := make(chan struct{})

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := s.GetOrTrain(context.Background(), key, testConfig(),
			func(context.Context) (*core.Preload, error) {
				close(leaderIn)
				<-release
				return testPreload(), nil
			})
		leaderDone <- err
	}()
	<-leaderIn

	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := s.GetOrTrain(ctx, key, testConfig(), nil)
		waiterDone <- err
	}()
	cancel()
	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter got %v, want context.Canceled", err)
	}

	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader: %v", err)
	}
	if _, src, err := s.GetOrTrain(context.Background(), key, core.Config{}, nil); err != nil || src != SourceMem {
		t.Fatalf("post-flight resolve: src=%v err=%v", src, err)
	}
}

// TestStoreConcurrencyHammer drives every store operation from many
// goroutines at once over a small budget (run under -race): the memory
// budget must hold at every sampled instant and the goroutine count
// must settle once the hammer stops.
func TestStoreConcurrencyHammer(t *testing.T) {
	baseline := runtime.NumGoroutine()
	const budgetEntries = 3
	probe, err := EncodeBlob(testConfig(), preloadN(8))
	if err != nil {
		t.Fatal(err)
	}
	entryMem := newEntry(keyN(0), testConfig(), preloadN(8), probe).memBytes
	budget := budgetEntries * entryMem

	func() {
		s, err := Open(Config{MemBudget: budget, Dir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			if err := s.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
		ctx := context.Background()
		stop := make(chan struct{})

		// Budget watchdog: samples occupancy while the hammer runs.
		var overBudget atomic.Int64
		var watch sync.WaitGroup
		watch.Add(1)
		go func() {
			defer watch.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if st := s.Stats(); st.MemBytes > budget {
					overBudget.Store(st.MemBytes)
				}
			}
		}()

		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 60; i++ {
					key := keyN(byte(30 + (w+i)%7))
					switch i % 4 {
					case 0:
						_, _, _ = s.GetOrTrain(ctx, key, testConfig(),
							func(context.Context) (*core.Preload, error) { return preloadN(8), nil })
					case 1:
						_, _ = s.Resolve(ctx, key)
					case 2:
						_, _, _ = s.Blob(ctx, key)
					case 3:
						if i%12 == 3 {
							_, _ = s.Delete(key)
						} else {
							_, _ = s.PutPreload(key, testConfig(), preloadN(8))
						}
					}
				}
			}(w)
		}
		wg.Wait()
		close(stop)
		watch.Wait()

		if over := overBudget.Load(); over != 0 {
			t.Fatalf("memory budget exceeded under concurrency: observed %d > %d", over, budget)
		}
		if st := s.Stats(); st.MemBytes > budget {
			t.Fatalf("final occupancy %d exceeds budget %d", st.MemBytes, budget)
		}
	}()

	// The store spawns no goroutines of its own; after the hammer and
	// Close, the count settles back to the baseline.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines did not settle: %d now, %d at baseline", runtime.NumGoroutine(), baseline)
}
