// Package dictstore is the shared-dictionary cache tier: a
// content-addressed store of trained preload dictionaries
// (core.Preload), so repeat traffic over the same training corpus pays
// core.Train once per fleet instead of once per request.
//
// Three layers compose:
//
//   - a versioned, CRC32C-protected "LZWD" blob serializes one
//     (Config, Preload) pair — the durable and wire-transferable form;
//   - a SHA-256 content address keys each dictionary by what produced
//     it (canonicalized training corpus + configuration), so two
//     parties that trained on the same input derive the same key
//     without coordination;
//   - a Store fronts the blobs with a byte-budgeted in-memory LRU
//     (singleflight: N concurrent misses on one key train once) and an
//     optional on-disk persistent index (one blob file per key plus a
//     compact manifest, crash-safe via write-to-temp-then-rename).
//
// Decoding is hostile-input safe: arbitrary bytes produce a typed
// error (ErrDictMagic, ErrDictVersion, ErrDictChecksum,
// ErrDictTruncated, ErrDictLimit or a config validation error), never
// a panic, and allocation tracks the bytes actually present.
package dictstore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"

	"lzwtc/internal/core"
)

// BlobMagic is the 4-byte dictionary-blob signature.
var BlobMagic = [4]byte{'L', 'Z', 'W', 'D'}

// BlobVersion is the current blob format version. Decoders reject
// anything newer.
const BlobVersion = 1

// KeyLen is the byte length of a store key (SHA-256).
const KeyLen = 32

// DigestLen is the byte length of a blob digest (SHA-256).
const DigestLen = 32

// MaxBlobChars bounds the total reconstructed character count across
// all strings of one blob, so a hostile chain of entries (each
// extending the last) cannot make decode memory quadratic in the input
// size. 2^26 characters is far beyond any real trained dictionary
// (DictSize caps entries at 2^24).
const MaxBlobChars = 1 << 26

// Typed decode errors. Wrapped errors carry position detail; test with
// errors.Is.
var (
	// ErrDictMagic reports bytes that are not an LZWD blob at all.
	ErrDictMagic = errors.New("dictstore: bad magic (not an LZWD blob)")
	// ErrDictVersion reports a blob from a newer (or zero) version.
	ErrDictVersion = errors.New("dictstore: unsupported blob version")
	// ErrDictChecksum reports a CRC32C mismatch in the header or payload.
	ErrDictChecksum = errors.New("dictstore: checksum mismatch")
	// ErrDictTruncated reports a blob that ends mid-region.
	ErrDictTruncated = errors.New("dictstore: truncated blob")
	// ErrDictLimit reports a length or reference field exceeding the
	// format's hard bounds.
	ErrDictLimit = errors.New("dictstore: field exceeds format limit")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Key is the content address of a stored dictionary: SHA-256 over the
// canonicalized training corpus and the configuration it was trained
// under.
type Key [KeyLen]byte

// String renders the key as 64 hex digits, the form used in file
// names, URLs and the CLI.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey inverts Key.String.
func ParseKey(s string) (Key, error) {
	var k Key
	if len(s) != 2*KeyLen {
		return k, fmt.Errorf("dictstore: key %q must be %d hex digits", s, 2*KeyLen)
	}
	if _, err := hex.Decode(k[:], []byte(s)); err != nil {
		return k, fmt.Errorf("dictstore: key %q: %w", s, err)
	}
	return k, nil
}

// Digest is the SHA-256 of a canonical blob encoding. A wire
// dictionary-reference frame carries both the key (how to find the
// dictionary) and the digest (how to prove the one found is the one
// the container was compressed with).
type Digest [DigestLen]byte

// String renders the digest as 64 hex digits.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// appendConfig appends the uvarint configuration fields in blob order.
func appendConfig(b []byte, cfg core.Config) []byte {
	b = binary.AppendUvarint(b, uint64(cfg.CharBits))
	b = binary.AppendUvarint(b, uint64(cfg.DictSize))
	b = binary.AppendUvarint(b, uint64(cfg.EntryBits))
	b = binary.AppendUvarint(b, uint64(cfg.Fill))
	b = binary.AppendUvarint(b, uint64(cfg.Tie))
	b = binary.AppendUvarint(b, uint64(cfg.Full))
	return b
}

// KeyFor derives the content address for a dictionary trained on
// corpus under cfg. The corpus must be in canonical form (the cube
// text WriteCubes emits) so formatting variation cannot split the
// cache; the derivation is domain-separated from the blob digest.
func KeyFor(corpus []byte, cfg core.Config) Key {
	b := make([]byte, 0, 32+len(corpus))
	b = append(b, "lzwtc-dict-key/1\x00"...)
	b = appendConfig(b, cfg)
	b = append(b, 0)
	b = append(b, corpus...)
	return Key(sha256.Sum256(b))
}

// BlobDigest returns the SHA-256 of a blob encoding.
func BlobDigest(blob []byte) Digest {
	return Digest(sha256.Sum256(blob))
}

// EncodeBlob serializes a preload dictionary into the canonical LZWD
// form:
//
//	header   magic "LZWD" | version u8 | uvarint config (6 fields) |
//	         uvarint entry count | CRC32C
//	entries  per entry: uvarint parent code | uvarint last char
//	         (creation order; prefix-closure makes this lossless)
//	         | CRC32C over the entry region
//
// Each preload string extends exactly one earlier string (or literal)
// by its final character — the invariant core.Train guarantees — so an
// entry is just that (parent, char) edge: the blob grows with the
// dictionary, not with the sum of string lengths, the same don't-care
// structural compression ReducedLUT applies to precomputed tables.
func EncodeBlob(cfg core.Config, pre *core.Preload) ([]byte, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Full == core.FullReset {
		return nil, fmt.Errorf("dictstore: a FullReset configuration cannot carry a preload dictionary")
	}
	literals := cfg.Literals()
	n := pre.Entries()
	if n > cfg.DictSize-literals {
		return nil, fmt.Errorf("dictstore: %d entries overflow dictionary size %d (literals %d)", n, cfg.DictSize, literals)
	}

	b := make([]byte, 0, 32+4*n)
	b = append(b, BlobMagic[:]...)
	b = append(b, BlobVersion)
	b = appendConfig(b, cfg)
	b = binary.AppendUvarint(b, uint64(n))
	b = binary.BigEndian.AppendUint32(b, crc32.Checksum(b, crcTable))

	// Codes are assigned in creation order: string i gets literals+i.
	// The parent of string i is its prefix of length len-1, located
	// through this map (a one-character prefix is a literal code).
	codeOf := map[string]int{}
	payloadStart := len(b)
	maxChars := cfg.MaxChars()
	for i, s := range pre.Strings {
		if len(s) < 2 {
			return nil, fmt.Errorf("dictstore: preload string %d has %d chars; literals are implicit", i, len(s))
		}
		if len(s) > maxChars {
			return nil, fmt.Errorf("dictstore: preload string %d has %d chars, entry bound is %d", i, len(s), maxChars)
		}
		for k, ch := range s {
			if ch >= uint64(literals) {
				return nil, fmt.Errorf("dictstore: preload string %d has invalid character %d at position %d", i, ch, k)
			}
		}
		parent := int(s[0])
		if len(s) > 2 {
			p, ok := codeOf[stringKey(s[:len(s)-1])]
			if !ok {
				return nil, fmt.Errorf("dictstore: preload string %d is not prefix-closed", i)
			}
			parent = p
		}
		if _, dup := codeOf[stringKey(s)]; dup {
			return nil, fmt.Errorf("dictstore: preload string %d duplicates an earlier entry", i)
		}
		b = binary.AppendUvarint(b, uint64(parent))
		b = binary.AppendUvarint(b, s[len(s)-1])
		codeOf[stringKey(s)] = literals + i
	}
	return binary.BigEndian.AppendUint32(b, crc32.Checksum(b[payloadStart:], crcTable)), nil
}

// stringKey renders a character string as a map key (characters fit 16
// bits; C_C <= 16).
func stringKey(s []uint64) string {
	b := make([]byte, 2*len(s))
	for i, ch := range s {
		binary.BigEndian.PutUint16(b[2*i:], uint16(ch))
	}
	return string(b)
}

// blobCursor walks a blob with truncation-typed reads.
type blobCursor struct {
	data []byte
	pos  int
}

func (c *blobCursor) remaining() int { return len(c.data) - c.pos }

func (c *blobCursor) bytes(n int, region string) ([]byte, error) {
	if c.remaining() < n {
		return nil, fmt.Errorf("%w: %s needs %d bytes, have %d", ErrDictTruncated, region, n, c.remaining())
	}
	b := c.data[c.pos : c.pos+n]
	c.pos += n
	return b, nil
}

func (c *blobCursor) uvarint(region string) (uint64, error) {
	v, n := binary.Uvarint(c.data[c.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: %s uvarint", ErrDictTruncated, region)
	}
	c.pos += n
	return v, nil
}

// checkCRC verifies the CRC32C trailing the region [from, pos).
func (c *blobCursor) checkCRC(from int, region string) error {
	body := c.data[from:c.pos]
	sum, err := c.bytes(4, region+" checksum")
	if err != nil {
		return err
	}
	want := binary.BigEndian.Uint32(sum)
	if got := crc32.Checksum(body, crcTable); got != want {
		return fmt.Errorf("%w: %s: computed %08x, stored %08x", ErrDictChecksum, region, got, want)
	}
	return nil
}

// DecodeBlob parses and fully validates an LZWD blob, reconstructing
// the preload strings from the (parent, char) edges. Every structural
// rule is re-checked — parent references must point at literals or
// earlier entries, characters must fit C_C bits, string lengths must
// respect EntryBits — so a blob that decodes cleanly always preloads
// cleanly.
func DecodeBlob(data []byte) (core.Config, *core.Preload, error) {
	var cfg core.Config
	c := &blobCursor{data: data}

	magic, err := c.bytes(4, "magic")
	if err != nil {
		return cfg, nil, err
	}
	if [4]byte(magic) != BlobMagic {
		return cfg, nil, ErrDictMagic
	}
	ver, err := c.bytes(1, "version")
	if err != nil {
		return cfg, nil, err
	}
	if ver[0] != BlobVersion {
		return cfg, nil, fmt.Errorf("%w: got %d, support <= %d", ErrDictVersion, ver[0], BlobVersion)
	}
	var fields [7]uint64
	for i := range fields {
		if fields[i], err = c.uvarint("header field"); err != nil {
			return cfg, nil, err
		}
	}
	if err := c.checkCRC(0, "header"); err != nil {
		return cfg, nil, err
	}
	cfg = core.Config{
		CharBits:  clampInt(fields[0]),
		DictSize:  clampInt(fields[1]),
		EntryBits: clampInt(fields[2]),
		Fill:      core.FillPolicy(fields[3]),
		Tie:       core.TieBreak(fields[4]),
		Full:      core.FullPolicy(fields[5]),
	}
	if fields[3] > uint64(core.FillRepeat) || fields[4] > uint64(core.TieWidest) || fields[5] > uint64(core.FullReset) {
		return cfg, nil, fmt.Errorf("%w: unknown policy (fill=%d tie=%d full=%d)", ErrDictLimit, fields[3], fields[4], fields[5])
	}
	if err := cfg.Validate(); err != nil {
		return cfg, nil, err
	}
	if cfg.Full == core.FullReset {
		return cfg, nil, fmt.Errorf("%w: FullReset configuration cannot carry a preload", ErrDictLimit)
	}
	literals := cfg.Literals()
	n := clampInt(fields[6])
	if n > cfg.DictSize-literals {
		return cfg, nil, fmt.Errorf("%w: %d entries overflow dictionary size %d", ErrDictLimit, n, cfg.DictSize)
	}
	// Each entry consumes at least two payload bytes, so the count is
	// re-bounded by the bytes actually present before any allocation.
	if c.remaining() < 2*n {
		return cfg, nil, fmt.Errorf("%w: %d entries need %d payload bytes, have %d", ErrDictTruncated, n, 2*n, c.remaining())
	}

	payloadStart := c.pos
	maxChars := cfg.MaxChars()
	strings := make([][]uint64, 0, n)
	edges := make(map[[2]uint64]bool, n)
	totalChars := 0
	for i := 0; i < n; i++ {
		parent, err := c.uvarint("entry parent")
		if err != nil {
			return cfg, nil, err
		}
		ch, err := c.uvarint("entry char")
		if err != nil {
			return cfg, nil, err
		}
		if parent >= uint64(literals+i) {
			return cfg, nil, fmt.Errorf("%w: entry %d parent %d is not an earlier code", ErrDictLimit, i, parent)
		}
		if ch >= uint64(literals) {
			return cfg, nil, fmt.Errorf("%w: entry %d character %d exceeds %d-bit range", ErrDictLimit, i, ch, cfg.CharBits)
		}
		// Training never inserts a string twice, so a repeated
		// (parent, char) edge marks a non-canonical blob; rejecting it
		// keeps decode∘encode the identity.
		edge := [2]uint64{parent, ch}
		if edges[edge] {
			return cfg, nil, fmt.Errorf("%w: entry %d duplicates edge (%d,%d)", ErrDictLimit, i, parent, ch)
		}
		edges[edge] = true
		var s []uint64
		if int(parent) < literals {
			s = []uint64{parent, ch}
		} else {
			prefix := strings[int(parent)-literals]
			s = make([]uint64, 0, len(prefix)+1)
			s = append(append(s, prefix...), ch)
		}
		if len(s) > maxChars {
			return cfg, nil, fmt.Errorf("%w: entry %d string length %d exceeds entry bound %d", ErrDictLimit, i, len(s), maxChars)
		}
		totalChars += len(s)
		if totalChars > MaxBlobChars {
			return cfg, nil, fmt.Errorf("%w: total string volume exceeds %d characters", ErrDictLimit, MaxBlobChars)
		}
		strings = append(strings, s)
	}
	if err := c.checkCRC(payloadStart, "payload"); err != nil {
		return cfg, nil, err
	}
	if c.remaining() != 0 {
		return cfg, nil, fmt.Errorf("%w: %d trailing bytes after payload checksum", ErrDictLimit, c.remaining())
	}
	return cfg, &core.Preload{Strings: strings}, nil
}

// clampInt converts a header uvarint to int, saturating instead of
// wrapping on 32-bit overflow so validation sees an out-of-range value
// rather than a negative one.
func clampInt(v uint64) int {
	if v > 1<<31-1 {
		return 1<<31 - 1
	}
	return int(v)
}
