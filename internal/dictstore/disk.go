package dictstore

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Disk layout constants. Each dictionary is one blob file named by its
// hex key; writers stage through a ".tmp" sibling and rename, so a
// reader never observes a partial blob and a crashed writer leaves only
// a temp file that the next Open removes.
const (
	blobExt      = ".lzwd"
	tmpExt       = ".tmp"
	manifestName = "manifest.json"
)

// manifestVersion guards the manifest schema.
const manifestVersion = 1

// diskEntry is one persisted blob in the index.
type diskEntry struct {
	key   Key
	bytes int64
}

// manifestFile is the on-disk manifest schema: entries in LRU order,
// oldest first, so eviction order survives restarts.
type manifestFile struct {
	Version int                 `json:"version"`
	Entries []manifestFileEntry `json:"entries"`
}

type manifestFileEntry struct {
	Key   string `json:"key"`
	Bytes int64  `json:"bytes"`
}

// diskIndex is the persistent layer: blob files plus a compact
// manifest, LRU-evicted by byte budget. All methods serialize on one
// mutex — disk traffic is rare (misses and uploads only), and
// serialization keeps manifest rewrites atomic with respect to each
// other.
type diskIndex struct {
	mu     sync.Mutex
	dir    string
	budget int64
	order  *list.List // of diskEntry, front = most recently used
	elems  map[Key]*list.Element
	total  int64
}

// openDiskIndex creates dir if needed and reconciles it: leftover temp
// files are removed, manifest entries whose blob file vanished are
// dropped, unlisted blob files are adopted, and the byte budget is
// re-enforced.
func openDiskIndex(dir string, budget int64) (*diskIndex, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dictstore: create dir: %w", err)
	}
	d := &diskIndex{
		dir:    dir,
		budget: budget,
		order:  list.New(),
		elems:  map[Key]*list.Element{},
	}
	if err := d.reconcile(); err != nil {
		return nil, err
	}
	return d, nil
}

// reconcile rebuilds the in-memory index from the directory contents,
// preferring the manifest's LRU order where it is still accurate.
func (d *diskIndex) reconcile() error {
	names, err := os.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("dictstore: read dir: %w", err)
	}
	onDisk := map[Key]int64{}
	for _, de := range names {
		name := de.Name()
		if strings.HasSuffix(name, tmpExt) {
			// A crashed writer's partial file: ignore and clean.
			if rerr := os.Remove(filepath.Join(d.dir, name)); rerr != nil {
				return fmt.Errorf("dictstore: clean temp file: %w", rerr)
			}
			continue
		}
		if !strings.HasSuffix(name, blobExt) {
			continue
		}
		key, perr := ParseKey(strings.TrimSuffix(name, blobExt))
		if perr != nil {
			continue // foreign file; leave it alone
		}
		info, ierr := de.Info()
		if ierr != nil {
			if errors.Is(ierr, fs.ErrNotExist) {
				continue
			}
			return fmt.Errorf("dictstore: stat blob: %w", ierr)
		}
		onDisk[key] = info.Size()
	}

	dirty := false
	man, merr := d.readManifest()
	if merr != nil {
		// Unreadable or mis-versioned manifest: rebuild from the blob
		// files alone (deterministically, by key) — never fail Open
		// over index metadata when the data files are intact.
		man = nil
		dirty = true
	}
	listed := map[Key]bool{}
	for _, me := range man {
		key, perr := ParseKey(me.Key)
		if perr != nil {
			dirty = true
			continue
		}
		size, ok := onDisk[key]
		if !ok || listed[key] {
			dirty = true
			continue
		}
		listed[key] = true
		d.elems[key] = d.order.PushFront(diskEntry{key: key, bytes: size})
		d.total += size
		if size != me.Bytes {
			dirty = true
		}
	}
	var orphans []Key
	for key := range onDisk {
		if !listed[key] {
			orphans = append(orphans, key)
		}
	}
	sort.Slice(orphans, func(i, j int) bool {
		return orphans[i].String() < orphans[j].String()
	})
	for _, key := range orphans {
		d.elems[key] = d.order.PushFront(diskEntry{key: key, bytes: onDisk[key]})
		d.total += onDisk[key]
		dirty = true
	}
	if _, err := d.enforceBudget(); err != nil {
		return err
	}
	if dirty {
		return d.writeManifest()
	}
	return nil
}

// readManifest loads the manifest entries, oldest first.
func (d *diskIndex) readManifest() ([]manifestFileEntry, error) {
	raw, err := os.ReadFile(filepath.Join(d.dir, manifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var mf manifestFile
	if err := json.Unmarshal(raw, &mf); err != nil {
		return nil, err
	}
	if mf.Version != manifestVersion {
		return nil, fmt.Errorf("dictstore: manifest version %d", mf.Version)
	}
	// Oldest first, matching the PushFront loop in reconcile: the last
	// entry pushed (the newest) ends at the LRU front.
	return mf.Entries, nil
}

// writeManifest persists the current LRU order atomically
// (temp + rename). Caller holds d.mu.
func (d *diskIndex) writeManifest() error {
	mf := manifestFile{Version: manifestVersion}
	for el := d.order.Back(); el != nil; el = el.Prev() {
		de := el.Value.(diskEntry)
		mf.Entries = append(mf.Entries, manifestFileEntry{Key: de.key.String(), Bytes: de.bytes})
	}
	raw, err := json.Marshal(mf)
	if err != nil {
		return fmt.Errorf("dictstore: encode manifest: %w", err)
	}
	tmp := filepath.Join(d.dir, manifestName+tmpExt)
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("dictstore: write manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, manifestName)); err != nil {
		return fmt.Errorf("dictstore: publish manifest: %w", err)
	}
	return nil
}

// blobPath names key's blob file.
func (d *diskIndex) blobPath(key Key) string {
	return filepath.Join(d.dir, key.String()+blobExt)
}

// load reads key's blob, refreshing its LRU position. ok=false on a
// clean miss.
func (d *diskIndex) load(key Key) (blob []byte, ok bool, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	el, has := d.elems[key]
	if !has {
		return nil, false, nil
	}
	raw, rerr := os.ReadFile(d.blobPath(key))
	if rerr != nil {
		if errors.Is(rerr, fs.ErrNotExist) {
			// File vanished out from under the index (external
			// tampering): drop the entry and report a miss.
			d.dropLocked(el)
			if werr := d.writeManifest(); werr != nil {
				return nil, false, werr
			}
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("dictstore: read blob: %w", rerr)
	}
	d.order.MoveToFront(el)
	if werr := d.writeManifest(); werr != nil {
		return nil, false, werr
	}
	return raw, true, nil
}

// put persists blob under key (temp + rename), evicting cold entries
// until the byte budget holds again. A blob larger than the whole
// budget is not persisted at all. Returns how many entries were
// evicted.
func (d *diskIndex) put(key Key, blob []byte) (evicted int, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int64(len(blob)) > d.budget {
		return 0, nil
	}
	tmp := d.blobPath(key) + tmpExt
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return 0, fmt.Errorf("dictstore: write blob: %w", err)
	}
	if err := os.Rename(tmp, d.blobPath(key)); err != nil {
		return 0, fmt.Errorf("dictstore: publish blob: %w", err)
	}
	if el, has := d.elems[key]; has {
		d.dropLocked(el)
	}
	d.elems[key] = d.order.PushFront(diskEntry{key: key, bytes: int64(len(blob))})
	d.total += int64(len(blob))
	n, err := d.enforceBudget()
	if err != nil {
		return n, err
	}
	return n, d.writeManifest()
}

// enforceBudget evicts from the cold end until total <= budget,
// removing blob files as it goes. Caller holds d.mu and is responsible
// for the manifest rewrite.
func (d *diskIndex) enforceBudget() (evicted int, err error) {
	for d.total > d.budget {
		back := d.order.Back()
		if back == nil {
			break
		}
		de := back.Value.(diskEntry)
		if rerr := os.Remove(d.blobPath(de.key)); rerr != nil && !errors.Is(rerr, fs.ErrNotExist) {
			return evicted, fmt.Errorf("dictstore: evict blob: %w", rerr)
		}
		d.dropLocked(back)
		evicted++
	}
	return evicted, nil
}

// remove deletes key's blob and index entry.
func (d *diskIndex) remove(key Key) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := os.Remove(d.blobPath(key)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("dictstore: remove blob: %w", err)
	}
	el, has := d.elems[key]
	if !has {
		return nil
	}
	d.dropLocked(el)
	return d.writeManifest()
}

// dropLocked unlinks one LRU element from the index bookkeeping.
// Caller holds d.mu.
func (d *diskIndex) dropLocked(el *list.Element) {
	de := el.Value.(diskEntry)
	d.order.Remove(el)
	delete(d.elems, de.key)
	d.total -= de.bytes
}

// contains reports index membership without touching LRU order.
func (d *diskIndex) contains(key Key) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, has := d.elems[key]
	return has, nil
}

// list snapshots the entries, most recent first.
func (d *diskIndex) list() []diskEntry {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]diskEntry, 0, d.order.Len())
	for el := d.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(diskEntry))
	}
	return out
}

// stats reports entry count and total bytes.
func (d *diskIndex) stats() (int, int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.order.Len(), d.total
}

// totalBytes reports the persisted byte total.
func (d *diskIndex) totalBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.total
}
