package dictstore

import (
	"errors"
	"testing"

	"lzwtc/internal/core"
)

// testConfig is the blob-test configuration: 16 literals, room for 48
// trained entries.
func testConfig() core.Config {
	return core.Config{CharBits: 4, DictSize: 64, EntryBits: 16}
}

// testPreload is a small prefix-closed dictionary in creation order:
// every string extends a literal or an earlier string by one character,
// the exact shape core.Train emits.
func testPreload() *core.Preload {
	return &core.Preload{Strings: [][]uint64{
		{1, 2},
		{1, 2, 3},
		{0, 15},
		{1, 2, 3, 3},
		{0, 15, 7},
	}}
}

// mustBlob encodes the canonical test blob.
func mustBlob(t *testing.T) []byte {
	t.Helper()
	blob, err := EncodeBlob(testConfig(), testPreload())
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestBlobRoundTrip(t *testing.T) {
	cfg, pre := testConfig(), testPreload()
	blob, err := EncodeBlob(cfg, pre)
	if err != nil {
		t.Fatal(err)
	}
	gotCfg, gotPre, err := DecodeBlob(blob)
	if err != nil {
		t.Fatal(err)
	}
	if gotCfg != cfg {
		t.Fatalf("decoded config %+v, want %+v", gotCfg, cfg)
	}
	if gotPre.Entries() != pre.Entries() {
		t.Fatalf("decoded %d entries, want %d", gotPre.Entries(), pre.Entries())
	}
	for i, s := range pre.Strings {
		got := gotPre.Strings[i]
		if len(got) != len(s) {
			t.Fatalf("string %d: decoded %v, want %v", i, got, s)
		}
		for k := range s {
			if got[k] != s[k] {
				t.Fatalf("string %d: decoded %v, want %v", i, got, s)
			}
		}
	}

	// The encoding is canonical: re-encoding the decode reproduces the
	// bytes, so digests converge no matter who serialized.
	again, err := EncodeBlob(gotCfg, gotPre)
	if err != nil {
		t.Fatal(err)
	}
	if BlobDigest(again) != BlobDigest(blob) {
		t.Fatal("re-encoded blob digest differs — encoding is not canonical")
	}
}

func TestBlobEmptyPreload(t *testing.T) {
	blob, err := EncodeBlob(testConfig(), &core.Preload{})
	if err != nil {
		t.Fatal(err)
	}
	_, pre, err := DecodeBlob(blob)
	if err != nil {
		t.Fatal(err)
	}
	if pre.Entries() != 0 {
		t.Fatalf("decoded %d entries from an empty blob", pre.Entries())
	}
}

// dictErrorClass reports whether err belongs to the typed decode-error
// contract. Truncation can only surface before the header CRC passes,
// so config validation errors (untyped) are unreachable here.
func dictErrorClass(err error) bool {
	return errors.Is(err, ErrDictMagic) || errors.Is(err, ErrDictVersion) ||
		errors.Is(err, ErrDictChecksum) || errors.Is(err, ErrDictTruncated) ||
		errors.Is(err, ErrDictLimit)
}

// TestBlobTruncationEveryPrefix decodes every strict prefix of a valid
// blob: each must fail with a typed error and never panic or succeed.
func TestBlobTruncationEveryPrefix(t *testing.T) {
	blob := mustBlob(t)
	for i := 0; i < len(blob); i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("prefix %d/%d: decode panicked: %v", i, len(blob), r)
				}
			}()
			_, _, err := DecodeBlob(blob[:i])
			if err == nil {
				t.Fatalf("prefix %d/%d decoded successfully", i, len(blob))
			}
			if !dictErrorClass(err) {
				t.Fatalf("prefix %d/%d: untyped error %v", i, len(blob), err)
			}
		}()
	}
}

// TestBlobSingleBitFlips flips every bit of a valid blob one at a time:
// the CRC32C regions (plus the structural checks) must reject every
// variant — no single-bit corruption may silently misdecode.
func TestBlobSingleBitFlips(t *testing.T) {
	blob := mustBlob(t)
	for i := range blob {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), blob...)
			mut[i] ^= 1 << bit
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("flip byte %d bit %d: decode panicked: %v", i, bit, r)
					}
				}()
				_, _, err := DecodeBlob(mut)
				if err == nil {
					t.Fatalf("flip byte %d bit %d decoded successfully", i, bit)
				}
			}()
		}
	}
}

func TestDecodeBlobRejects(t *testing.T) {
	blob := mustBlob(t)
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrDictTruncated},
		{"not-a-blob", []byte("LZWW1234"), ErrDictMagic},
		{"future-version", append(append([]byte{}, blob[:4]...), 99), ErrDictVersion},
		{"trailing-garbage", append(append([]byte{}, blob...), 0xAA), ErrDictLimit},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, err := DecodeBlob(c.data)
			if !errors.Is(err, c.want) {
				t.Fatalf("got %v, want %v", err, c.want)
			}
		})
	}
}

func TestEncodeBlobRejects(t *testing.T) {
	cfg := testConfig()
	cases := []struct {
		name string
		cfg  core.Config
		pre  *core.Preload
	}{
		{"full-reset", core.Config{CharBits: 4, DictSize: 64, EntryBits: 16, Full: core.FullReset}, testPreload()},
		{"single-char-string", cfg, &core.Preload{Strings: [][]uint64{{1}}}},
		{"character-overflow", cfg, &core.Preload{Strings: [][]uint64{{1, 16}}}},
		{"not-prefix-closed", cfg, &core.Preload{Strings: [][]uint64{{1, 2, 3}}}},
		{"entry-overflow", core.Config{CharBits: 4, DictSize: 17, EntryBits: 16},
			&core.Preload{Strings: [][]uint64{{1, 2}, {1, 2, 3}}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := EncodeBlob(c.cfg, c.pre); err == nil {
				t.Fatal("encode accepted an invalid preload")
			}
		})
	}
}

func TestKeyForSeparation(t *testing.T) {
	corpus := []byte("8\n01XX01XX\n")
	base := KeyFor(corpus, testConfig())
	if other := KeyFor([]byte("8\n01XX01X1\n"), testConfig()); other == base {
		t.Fatal("different corpora derived the same key")
	}
	cfg2 := testConfig()
	cfg2.DictSize = 128
	if other := KeyFor(corpus, cfg2); other == base {
		t.Fatal("different configs derived the same key")
	}
	if again := KeyFor(corpus, testConfig()); again != base {
		t.Fatal("key derivation is not deterministic")
	}
}

func TestParseKey(t *testing.T) {
	key := KeyFor([]byte("corpus"), testConfig())
	parsed, err := ParseKey(key.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != key {
		t.Fatal("ParseKey did not invert String")
	}
	for _, bad := range []string{"", "abc", key.String() + "00", "zz" + key.String()[2:]} {
		if _, err := ParseKey(bad); err == nil {
			t.Fatalf("ParseKey accepted %q", bad)
		}
	}
}
