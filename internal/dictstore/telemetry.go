package dictstore

// Metric names exported by the store. Every name is a distinct package
// const — never computed — so the lzwtcvet metricname check can audit
// the full surface against the names the tests assert.
const (
	// MetricHits counts resolutions served from the store (memory LRU
	// or disk rehydration) without training.
	MetricHits = "lzwtc_dictstore_hits_total"
	// MetricMisses counts resolutions that had to train (or that found
	// nothing, for pure lookups).
	MetricMisses = "lzwtc_dictstore_misses_total"
	// MetricEvictions counts entries dropped from the memory LRU or
	// the disk index — by byte budget, explicit delete, or corruption.
	MetricEvictions = "lzwtc_dictstore_evictions_total"
	// MetricBytes gauges the decoded bytes currently held by the
	// memory LRU.
	MetricBytes = "lzwtc_dictstore_bytes"
	// MetricDiskBytes gauges the blob bytes currently in the disk
	// index.
	MetricDiskBytes = "lzwtc_dictstore_disk_bytes"
	// MetricTrains counts actual core.Train executions through the
	// singleflight gate — under concurrent misses on one key this
	// advances once, which the concurrency suite asserts.
	MetricTrains = "lzwtc_dictstore_trains_total"
)

// SpanDictResolve is the trace span one store resolution records
// (lookup, singleflight wait, disk rehydration or training — whatever
// the request paid for), nesting under the caller's request span.
const SpanDictResolve = "dict.resolve"
