package dictstore

import (
	"bytes"
	"context"
	"testing"

	"lzwtc/internal/core"
)

// FuzzDictBlobDecode feeds arbitrary bytes to the blob decoder: it must
// return a typed error or a well-formed preload, never panic, and a
// successful decode must re-encode canonically (decode∘encode is the
// identity on valid blobs).
func FuzzDictBlobDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("LZWD"))
	f.Add([]byte("LZWD\x01"))
	f.Add([]byte("not a dictionary"))
	for _, pre := range []*core.Preload{{}, testPreload()} {
		blob, err := EncodeBlob(testConfig(), pre)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, pre, err := DecodeBlob(data)
		if err != nil {
			return
		}
		// A blob that decodes cleanly must be the canonical encoding of
		// what it decoded to: re-encode and compare.
		again, err := EncodeBlob(cfg, pre)
		if err != nil {
			t.Fatalf("decoded blob does not re-encode: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data, again)
		}
	})
}

// FuzzDictStoreRoundTrip drives the store with fuzzer-shaped preloads:
// any prefix-closed dictionary the fuzzer constructs must survive
// encode → store → blob fetch → decode bit-exactly, through both the
// memory LRU and the uploaded-blob path.
func FuzzDictStoreRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 0, 3}, uint8(4))
	f.Add([]byte{}, uint8(2))
	f.Add([]byte{3, 3, 3, 3, 3, 3}, uint8(3))

	f.Fuzz(func(t *testing.T, chars []byte, charBits uint8) {
		if charBits < 2 || charBits > 6 {
			return
		}
		cfg := core.Config{CharBits: int(charBits), DictSize: 4 << charBits, EntryBits: 16}
		if cfg.Validate() != nil {
			return
		}
		literals := cfg.Literals()

		// Grow a prefix-closed dictionary from the fuzz bytes: each byte
		// extends the previously built string (chaining) or starts a new
		// two-character one, mirroring how training inserts entries.
		pre := &core.Preload{}
		capacity := cfg.DictSize - literals
		var last []uint64
		for _, b := range chars {
			if len(pre.Strings) >= capacity {
				break
			}
			ch := uint64(b) % uint64(literals)
			if last == nil || len(last) >= cfg.MaxChars() || b%3 == 0 {
				last = []uint64{ch, (ch + 1) % uint64(literals)}
			} else {
				ext := make([]uint64, 0, len(last)+1)
				ext = append(append(ext, last...), ch)
				last = ext
			}
			pre.Strings = append(pre.Strings, last)
		}

		blob, err := EncodeBlob(cfg, pre)
		if err != nil {
			return // fuzzer built something invalid (e.g. duplicate); fine
		}

		s, err := Open(Config{})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		key := KeyFor(chars, cfg)
		if _, err := s.PutBlob(key, blob); err != nil {
			t.Fatalf("canonical blob rejected by the store: %v", err)
		}
		got, ent, err := s.Blob(context.Background(), key)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, blob) {
			t.Fatalf("blob changed through the store:\n in  %x\n out %x", blob, got)
		}
		if ent.Digest != BlobDigest(blob) {
			t.Fatal("entry digest does not match the canonical blob")
		}
		if ent.Pre.Entries() != len(pre.Strings) {
			t.Fatalf("stored %d entries, want %d", ent.Pre.Entries(), len(pre.Strings))
		}
	})
}
