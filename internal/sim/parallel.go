package sim

import (
	"fmt"

	"lzwtc/internal/bitvec"
	"lzwtc/internal/circuit"
)

// PVal carries 64 three-valued values in two planes. Slot i is 1 when
// One bit i is set, 0 when Zero bit i is set, X when neither. One and
// Zero are never both set.
type PVal struct {
	One, Zero uint64
}

// PX returns 64 X values.
func PX() PVal { return PVal{} }

// FromBit broadcasts a scalar value to all 64 slots.
func FromBit(b bitvec.Bit) PVal {
	switch b {
	case bitvec.One:
		return PVal{One: ^uint64(0)}
	case bitvec.Zero:
		return PVal{Zero: ^uint64(0)}
	}
	return PVal{}
}

// Bit extracts slot i.
func (v PVal) Bit(i int) bitvec.Bit {
	switch {
	case v.One>>uint(i)&1 == 1:
		return bitvec.One
	case v.Zero>>uint(i)&1 == 1:
		return bitvec.Zero
	}
	return bitvec.X
}

// EvalP evaluates one gate across 64 pattern slots.
func EvalP(t circuit.GateType, in []PVal) PVal {
	switch t {
	case circuit.Buf, circuit.DFF, circuit.Input:
		if len(in) == 0 {
			return PVal{}
		}
		return in[0]
	case circuit.Not:
		return PVal{One: in[0].Zero, Zero: in[0].One}
	case circuit.And, circuit.Nand:
		one, zero := ^uint64(0), uint64(0)
		for _, v := range in {
			one &= v.One
			zero |= v.Zero
		}
		one &^= zero
		if t == circuit.Nand {
			one, zero = zero, one
		}
		return PVal{One: one, Zero: zero}
	case circuit.Or, circuit.Nor:
		one, zero := uint64(0), ^uint64(0)
		for _, v := range in {
			one |= v.One
			zero &= v.Zero
		}
		zero &^= one
		if t == circuit.Nor {
			one, zero = zero, one
		}
		return PVal{One: one, Zero: zero}
	case circuit.Xor, circuit.Xnor:
		care := ^uint64(0)
		parity := uint64(0)
		for _, v := range in {
			care &= v.One | v.Zero
			parity ^= v.One
		}
		if t == circuit.Xnor {
			parity = ^parity
		}
		return PVal{One: care & parity, Zero: care &^ parity}
	}
	return PVal{}
}

// PState evaluates up to 64 patterns at once.
type PState struct {
	cb   *circuit.Comb
	vals []PVal
	n    int // patterns loaded
	buf  []PVal
}

// NewPState allocates a parallel state.
func NewPState(cb *circuit.Comb) *PState {
	return &PState{cb: cb, vals: make([]PVal, len(cb.C.Gates))}
}

// Vals exposes the per-gate values of the last Apply (read-only use).
func (s *PState) Vals() []PVal { return s.vals }

// N returns the number of patterns loaded by the last Apply.
func (s *PState) N() int { return s.n }

// Comb returns the circuit view being simulated.
func (s *PState) Comb() *circuit.Comb { return s.cb }

// Apply evaluates up to 64 patterns in parallel.
func (s *PState) Apply(patterns []*bitvec.Vector) error {
	if len(patterns) == 0 || len(patterns) > 64 {
		return fmt.Errorf("sim: parallel batch of %d patterns (want 1..64)", len(patterns))
	}
	for i := range s.vals {
		s.vals[i] = PVal{}
	}
	s.n = len(patterns)
	width := s.cb.Width()
	for slot, p := range patterns {
		if p.Len() != width {
			return fmt.Errorf("sim: pattern %d width %d, circuit needs %d", slot, p.Len(), width)
		}
		for i := 0; i < width; i++ {
			id := s.cb.InputAt(i)
			switch p.Get(i) {
			case bitvec.One:
				s.vals[id].One |= 1 << uint(slot)
			case bitvec.Zero:
				s.vals[id].Zero |= 1 << uint(slot)
			}
		}
	}
	for _, id := range s.cb.Order {
		g := &s.cb.C.Gates[id]
		if g.Type == circuit.Input || g.Type == circuit.DFF {
			continue
		}
		if cap(s.buf) < len(g.Fanin) {
			s.buf = make([]PVal, len(g.Fanin))
		}
		in := s.buf[:len(g.Fanin)]
		for k, f := range g.Fanin {
			in[k] = s.vals[f]
		}
		s.vals[id] = EvalP(g.Type, in)
	}
	return nil
}
