// Package sim evaluates netlists under three-valued (0/1/X) logic, both
// one value at a time and 64 patterns in parallel.
//
// Three-valued values are encoded as (one, zero) plane pairs: a bit is 1
// when its `one` plane bit is set, 0 when its `zero` plane bit is set, and
// X when neither is. This makes controlling-value logic word-parallel:
// AND's output is 1 where all inputs are 1 and 0 where any input is 0.
package sim

import (
	"fmt"

	"lzwtc/internal/bitvec"
	"lzwtc/internal/circuit"
)

// Eval computes one gate's output from its input values.
func Eval(t circuit.GateType, in []bitvec.Bit) bitvec.Bit {
	switch t {
	case circuit.Buf, circuit.DFF, circuit.Input:
		if len(in) == 0 {
			return bitvec.X
		}
		return in[0]
	case circuit.Not:
		return not3(in[0])
	case circuit.And, circuit.Nand:
		v := and3(in)
		if t == circuit.Nand {
			v = not3(v)
		}
		return v
	case circuit.Or, circuit.Nor:
		v := or3(in)
		if t == circuit.Nor {
			v = not3(v)
		}
		return v
	case circuit.Xor, circuit.Xnor:
		v := xor3(in)
		if t == circuit.Xnor {
			v = not3(v)
		}
		return v
	}
	return bitvec.X
}

func not3(b bitvec.Bit) bitvec.Bit {
	switch b {
	case bitvec.Zero:
		return bitvec.One
	case bitvec.One:
		return bitvec.Zero
	}
	return bitvec.X
}

func and3(in []bitvec.Bit) bitvec.Bit {
	sawX := false
	for _, b := range in {
		switch b {
		case bitvec.Zero:
			return bitvec.Zero
		case bitvec.X:
			sawX = true
		}
	}
	if sawX {
		return bitvec.X
	}
	return bitvec.One
}

func or3(in []bitvec.Bit) bitvec.Bit {
	sawX := false
	for _, b := range in {
		switch b {
		case bitvec.One:
			return bitvec.One
		case bitvec.X:
			sawX = true
		}
	}
	if sawX {
		return bitvec.X
	}
	return bitvec.Zero
}

func xor3(in []bitvec.Bit) bitvec.Bit {
	parity := bitvec.Zero
	for _, b := range in {
		if b == bitvec.X {
			return bitvec.X
		}
		parity ^= b
	}
	return parity
}

// State holds per-gate values for one pattern.
type State struct {
	cb   *circuit.Comb
	vals []bitvec.Bit
	buf  []bitvec.Bit
}

// NewState allocates an evaluation state for the combinational view.
func NewState(cb *circuit.Comb) *State {
	return &State{cb: cb, vals: make([]bitvec.Bit, len(cb.C.Gates))}
}

// Get returns gate id's current value.
func (s *State) Get(id int) bitvec.Bit { return s.vals[id] }

// Apply evaluates the combinational core under the given test pattern
// (PI bits then scan-cell bits; X allowed). Every gate value becomes
// readable via Get.
func (s *State) Apply(pattern *bitvec.Vector) error {
	if pattern.Len() != s.cb.Width() {
		return fmt.Errorf("sim: pattern width %d, circuit needs %d", pattern.Len(), s.cb.Width())
	}
	for i := range s.vals {
		s.vals[i] = bitvec.X
	}
	for i := 0; i < pattern.Len(); i++ {
		s.vals[s.cb.InputAt(i)] = pattern.Get(i)
	}
	s.evalOrder(nil)
	return nil
}

// ApplyFaulty is Apply with a single stuck-at fault active: inject is
// called after each gate evaluation and may override values (the fault
// package provides injectors).
func (s *State) ApplyFaulty(pattern *bitvec.Vector, inject func(id int, val bitvec.Bit) bitvec.Bit) error {
	if pattern.Len() != s.cb.Width() {
		return fmt.Errorf("sim: pattern width %d, circuit needs %d", pattern.Len(), s.cb.Width())
	}
	for i := range s.vals {
		s.vals[i] = bitvec.X
	}
	for i := 0; i < pattern.Len(); i++ {
		v := pattern.Get(i)
		id := s.cb.InputAt(i)
		s.vals[id] = inject(id, v)
	}
	s.evalOrder(inject)
	return nil
}

func (s *State) evalOrder(inject func(int, bitvec.Bit) bitvec.Bit) {
	gates := s.cb.C.Gates
	for _, id := range s.cb.Order {
		g := &gates[id]
		if g.Type == circuit.Input || g.Type == circuit.DFF {
			if inject != nil {
				s.vals[id] = inject(id, s.vals[id])
			}
			continue
		}
		if cap(s.buf) < len(g.Fanin) {
			s.buf = make([]bitvec.Bit, len(g.Fanin))
		}
		in := s.buf[:len(g.Fanin)]
		for k, f := range g.Fanin {
			in[k] = s.vals[f]
		}
		v := Eval(g.Type, in)
		if inject != nil {
			v = inject(id, v)
		}
		s.vals[id] = v
	}
}

// Observations copies the observation-point values (POs then PPOs) into
// a vector.
func (s *State) Observations() *bitvec.Vector {
	out := bitvec.New(s.cb.ObsCount())
	for i := 0; i < s.cb.ObsCount(); i++ {
		out.Set(i, s.vals[s.cb.ObsAt(i)])
	}
	return out
}

// Sequential simulates the sequential circuit (non-scan) for a sequence
// of primary-input vectors from the all-X initial state, returning the
// primary-output vector per cycle. Used to sanity-check netlists.
func Sequential(c *circuit.Circuit, inputs []*bitvec.Vector) ([]*bitvec.Vector, error) {
	cb, err := circuit.NewComb(c)
	if err != nil {
		return nil, err
	}
	st := NewState(cb)
	state := bitvec.New(len(c.DFFs)) // all X
	var outs []*bitvec.Vector
	for cyc, in := range inputs {
		if in.Len() != len(c.Inputs) {
			return nil, fmt.Errorf("sim: cycle %d input width %d, want %d", cyc, in.Len(), len(c.Inputs))
		}
		pattern := bitvec.Concat(in, state)
		if err := st.Apply(pattern); err != nil {
			return nil, err
		}
		po := bitvec.New(len(c.Outputs))
		for i, o := range c.Outputs {
			po.Set(i, st.Get(o))
		}
		outs = append(outs, po)
		next := bitvec.New(len(c.DFFs))
		for i, d := range c.DFFs {
			next.Set(i, st.Get(c.Gates[d].Fanin[0]))
		}
		state = next
	}
	return outs, nil
}
