package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lzwtc/internal/bitvec"
	"lzwtc/internal/circuit"
)

func TestEvalTruthTables(t *testing.T) {
	B := func(s string) []bitvec.Bit {
		v := bitvec.MustParse(s)
		out := make([]bitvec.Bit, v.Len())
		for i := range out {
			out[i] = v.Get(i)
		}
		return out
	}
	cases := []struct {
		t    circuit.GateType
		in   string
		want bitvec.Bit
	}{
		{circuit.And, "11", bitvec.One},
		{circuit.And, "1X", bitvec.X},
		{circuit.And, "0X", bitvec.Zero}, // controlling value dominates X
		{circuit.Nand, "0X", bitvec.One},
		{circuit.Or, "1X", bitvec.One},
		{circuit.Or, "0X", bitvec.X},
		{circuit.Nor, "00", bitvec.One},
		{circuit.Xor, "10", bitvec.One},
		{circuit.Xor, "1X", bitvec.X}, // XOR has no controlling value
		{circuit.Xnor, "11", bitvec.One},
		{circuit.Not, "X", bitvec.X},
		{circuit.Not, "0", bitvec.One},
		{circuit.Buf, "1", bitvec.One},
		{circuit.And, "111", bitvec.One},
		{circuit.Or, "000X", bitvec.X},
	}
	for _, c := range cases {
		if got := Eval(c.t, B(c.in)); got != c.want {
			t.Errorf("%v(%s) = %v, want %v", c.t, c.in, got, c.want)
		}
	}
}

func TestC17KnownVectors(t *testing.T) {
	cb, err := circuit.NewComb(circuit.C17())
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(cb)
	// Inputs in declaration order: N1 N2 N3 N6 N7.
	// N10=!(N1&N3) N11=!(N3&N6) N16=!(N2&N11) N19=!(N11&N7)
	// N22=!(N10&N16) N23=!(N16&N19)
	cases := []struct{ in, out string }{
		{"00000", "00"},
		{"11111", "10"},
		{"10101", "11"},
		{"01010", "11"},
	}
	for _, c := range cases {
		if err := st.Apply(bitvec.MustParse(c.in)); err != nil {
			t.Fatal(err)
		}
		got := ""
		for _, o := range cb.C.Outputs {
			got += st.Get(o).String()
		}
		if got != c.out {
			t.Errorf("c17(%s) = %s, want %s", c.in, got, c.out)
		}
	}
}

func TestApplyWidthCheck(t *testing.T) {
	cb, _ := circuit.NewComb(circuit.C17())
	st := NewState(cb)
	if err := st.Apply(bitvec.MustParse("000")); err == nil {
		t.Fatal("short pattern accepted")
	}
}

func TestSequentialS27(t *testing.T) {
	c := circuit.S27()
	ins := []*bitvec.Vector{
		bitvec.MustParse("0000"),
		bitvec.MustParse("1010"),
		bitvec.MustParse("1111"),
	}
	outs, err := Sequential(c, ins)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("cycles = %d", len(outs))
	}
	for i, o := range outs {
		if o.Len() != 1 {
			t.Fatalf("cycle %d output width %d", i, o.Len())
		}
	}
	// Deterministic across runs.
	outs2, _ := Sequential(c, ins)
	for i := range outs {
		if !outs[i].Equal(outs2[i]) {
			t.Fatal("sequential sim not deterministic")
		}
	}
	if _, err := Sequential(c, []*bitvec.Vector{bitvec.MustParse("00")}); err == nil {
		t.Fatal("bad input width accepted")
	}
}

// Property: parallel simulation slot i equals scalar simulation of
// pattern i, for every gate.
func TestQuickParallelMatchesScalar(t *testing.T) {
	gen, err := circuit.Generate(circuit.GenConfig{Name: "q", Inputs: 6, Outputs: 3, DFFs: 4, Comb: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := circuit.NewComb(gen)
	if err != nil {
		t.Fatal(err)
	}
	scalar := NewState(cb)
	par := NewPState(cb)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(64) + 1
		pats := make([]*bitvec.Vector, n)
		for i := range pats {
			v := bitvec.New(cb.Width())
			for b := 0; b < cb.Width(); b++ {
				switch rng.Intn(3) {
				case 0:
					v.Set(b, bitvec.Zero)
				case 1:
					v.Set(b, bitvec.One)
				}
			}
			pats[i] = v
		}
		if err := par.Apply(pats); err != nil {
			return false
		}
		for i, p := range pats {
			if err := scalar.Apply(p); err != nil {
				return false
			}
			for id := range cb.C.Gates {
				if par.Vals()[id].Bit(i) != scalar.Get(id) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPStateBatchLimits(t *testing.T) {
	cb, _ := circuit.NewComb(circuit.C17())
	ps := NewPState(cb)
	if err := ps.Apply(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	pats := make([]*bitvec.Vector, 65)
	for i := range pats {
		pats[i] = bitvec.New(cb.Width())
	}
	if err := ps.Apply(pats); err == nil {
		t.Fatal("oversized batch accepted")
	}
	if err := ps.Apply([]*bitvec.Vector{bitvec.New(3)}); err == nil {
		t.Fatal("bad width accepted")
	}
}

func TestFromBitAndBit(t *testing.T) {
	for _, b := range []bitvec.Bit{bitvec.Zero, bitvec.One, bitvec.X} {
		v := FromBit(b)
		for i := 0; i < 64; i += 17 {
			if v.Bit(i) != b {
				t.Fatalf("FromBit(%v).Bit(%d) = %v", b, i, v.Bit(i))
			}
		}
	}
}

func BenchmarkParallelApply(b *testing.B) {
	gen, _ := circuit.Generate(circuit.GenConfig{Name: "b", Inputs: 32, Outputs: 16, DFFs: 100, Comb: 2000, Seed: 1})
	cb, _ := circuit.NewComb(gen)
	ps := NewPState(cb)
	rng := rand.New(rand.NewSource(2))
	pats := make([]*bitvec.Vector, 64)
	for i := range pats {
		v := bitvec.New(cb.Width())
		for j := 0; j < cb.Width(); j++ {
			v.Set(j, bitvec.Bit(rng.Intn(2)))
		}
		pats[i] = v
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ps.Apply(pats); err != nil {
			b.Fatal(err)
		}
	}
}

func TestObservations(t *testing.T) {
	cb, _ := circuit.NewComb(circuit.S27())
	st := NewState(cb)
	if err := st.Apply(bitvec.MustParse("0000000")); err != nil {
		t.Fatal(err)
	}
	obs := st.Observations()
	if obs.Len() != 4 { // 1 PO + 3 PPO
		t.Fatalf("obs len = %d", obs.Len())
	}
	if obs.XCount() != 0 {
		t.Fatal("concrete pattern produced X observations")
	}
}
