package mem

import "fmt"

// BISTResult reports a March test run.
type BISTResult struct {
	Pass     bool
	FailAddr int // first failing address (valid when !Pass)
	FailBit  int // first failing bit within the word
	Ops      int // memory operations performed
}

// String renders a one-line verdict.
func (r BISTResult) String() string {
	if r.Pass {
		return fmt.Sprintf("BIST PASS (%d ops)", r.Ops)
	}
	return fmt.Sprintf("BIST FAIL at word %d bit %d (%d ops)", r.FailAddr, r.FailBit, r.Ops)
}

// MarchCMinus runs the March C- algorithm over the shared memory on
// behalf of the BIST source:
//
//	⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)
//
// with all-zero / all-one data backgrounds applied word-wide. It detects
// stuck-at, transition and unlinked coupling faults; here it demonstrates
// the paper's point that the same embedded memory serves BIST and LZW
// decompression through one mux layer.
func MarchCMinus(s *Shared) (BISTResult, error) {
	ram := s.RAM()
	limbs := (ram.Width() + 63) / 64
	zero := make([]uint64, limbs)
	ones := make([]uint64, limbs)
	for i := range ones {
		ones[i] = ^uint64(0)
	}
	res := BISTResult{Pass: true, FailAddr: -1, FailBit: -1}
	var buf []uint64

	read := func(addr int, want []uint64) error {
		var err error
		buf, err = s.Read(SrcBIST, addr, buf)
		if err != nil {
			return err
		}
		res.Ops++
		if !res.Pass {
			return nil // keep marching; first failure already recorded
		}
		for b := 0; b < ram.Width(); b++ {
			limb, off := b/64, uint(b%64)
			if buf[limb]>>off&1 != want[limb]>>off&1 {
				res.Pass = false
				res.FailAddr = addr
				res.FailBit = b
				return nil
			}
		}
		return nil
	}
	write := func(addr int, val []uint64) error {
		if err := s.Write(SrcBIST, addr, val); err != nil {
			return err
		}
		res.Ops++
		return nil
	}

	n := ram.Words()
	// ⇕(w0)
	for a := 0; a < n; a++ {
		if err := write(a, zero); err != nil {
			return res, err
		}
	}
	// ⇑(r0,w1)
	for a := 0; a < n; a++ {
		if err := read(a, zero); err != nil {
			return res, err
		}
		if err := write(a, ones); err != nil {
			return res, err
		}
	}
	// ⇑(r1,w0)
	for a := 0; a < n; a++ {
		if err := read(a, ones); err != nil {
			return res, err
		}
		if err := write(a, zero); err != nil {
			return res, err
		}
	}
	// ⇓(r0,w1)
	for a := n - 1; a >= 0; a-- {
		if err := read(a, zero); err != nil {
			return res, err
		}
		if err := write(a, ones); err != nil {
			return res, err
		}
	}
	// ⇓(r1,w0)
	for a := n - 1; a >= 0; a-- {
		if err := read(a, ones); err != nil {
			return res, err
		}
		if err := write(a, zero); err != nil {
			return res, err
		}
	}
	// ⇕(r0)
	for a := 0; a < n; a++ {
		if err := read(a, zero); err != nil {
			return res, err
		}
	}
	return res, nil
}
