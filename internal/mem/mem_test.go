package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReadWrite(t *testing.T) {
	m := New(4, 70) // two limbs per word
	m.Write(2, []uint64{0xDEADBEEF, 0x3F})
	got := m.Read(2, nil)
	if got[0] != 0xDEADBEEF || got[1] != 0x3F {
		t.Fatalf("read = %#x", got)
	}
	if v := m.Read(0, nil); v[0] != 0 || v[1] != 0 {
		t.Fatalf("unwritten word = %#x", v)
	}
}

func TestWidthMasking(t *testing.T) {
	m := New(2, 10)
	m.Write(0, []uint64{0xFFFF})
	if got := m.Read(0, nil)[0]; got != 0x3FF {
		t.Fatalf("read = %#x, want 0x3FF (10-bit mask)", got)
	}
}

func TestGeometry(t *testing.T) {
	m := New(1024, 490)
	if m.Bits() != 1024*490 {
		t.Fatalf("Bits = %d", m.Bits())
	}
	if m.Words() != 1024 || m.Width() != 490 {
		t.Fatalf("geometry %dx%d", m.Words(), m.Width())
	}
}

func TestStuckAtFault(t *testing.T) {
	m := New(4, 8)
	m.InjectStuckAt(1, 3, 1)
	m.Write(1, []uint64{0})
	if got := m.Read(1, nil)[0]; got != 0b1000 {
		t.Fatalf("stuck-at-1 read = %#b", got)
	}
	m.ClearFaults()
	if got := m.Read(1, nil)[0]; got != 0 {
		t.Fatalf("after ClearFaults read = %#b", got)
	}
}

func TestPanics(t *testing.T) {
	m := New(2, 8)
	for _, f := range []func(){
		func() { m.Read(2, nil) },
		func() { m.Write(-1, nil) },
		func() { m.InjectStuckAt(0, 8, 1) },
		func() { New(0, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSharedArbitration(t *testing.T) {
	s := NewShared(New(4, 8))
	if _, err := s.Read(SrcLZW, 0, nil); err == nil {
		t.Fatal("LZW access allowed while functional owns port")
	}
	s.Select(SrcLZW)
	if err := s.Write(SrcLZW, 0, []uint64{0xAB}); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(SrcBIST, 0, []uint64{0}); err == nil {
		t.Fatal("BIST write allowed while LZW owns port")
	}
	got, err := s.Read(SrcLZW, 0, nil)
	if err != nil || got[0] != 0xAB {
		t.Fatalf("read = %#x err %v", got, err)
	}
	if s.Owner() != SrcLZW {
		t.Fatalf("owner = %v", s.Owner())
	}
}

func TestMarchCMinusPassesOnGoodMemory(t *testing.T) {
	s := NewShared(New(16, 12))
	s.Select(SrcBIST)
	res, err := MarchCMinus(s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("good memory failed: %v", res)
	}
	// March C- is 10N reads+writes for word-oriented backgrounds:
	// 6 elements, 16 words, ops = 16*(1+2+2+2+2+1).
	if res.Ops != 16*10 {
		t.Fatalf("ops = %d, want %d", res.Ops, 160)
	}
}

func TestMarchCMinusRequiresPort(t *testing.T) {
	s := NewShared(New(4, 8)) // functional owns the port
	if _, err := MarchCMinus(s); err == nil {
		t.Fatal("BIST ran without port ownership")
	}
}

// Property: March C- detects every single stuck-at cell fault and
// reports its exact location.
func TestQuickMarchDetectsStuckAt(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ram := New(rng.Intn(30)+2, rng.Intn(60)+2)
		addr := rng.Intn(ram.Words())
		bit := rng.Intn(ram.Width())
		ram.InjectStuckAt(addr, bit, uint64(rng.Intn(2)))
		s := NewShared(ram)
		s.Select(SrcBIST)
		res, err := MarchCMinus(s)
		if err != nil {
			return false
		}
		return !res.Pass && res.FailAddr == addr && res.FailBit == bit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: words are independent — writing one never disturbs others.
func TestQuickWordIndependence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(8, 100)
		ref := make([][]uint64, 8)
		for i := range ref {
			ref[i] = []uint64{rng.Uint64(), rng.Uint64() & (1<<36 - 1)}
			m.Write(i, ref[i])
		}
		for i := range ref {
			got := m.Read(i, nil)
			if got[0] != ref[i][0] || got[1] != ref[i][1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
