// Package mem models the embedded core memory the LZW decompressor
// reuses (Section 5.2, Figure 6 of the paper): a word-addressable SRAM
// with arbitrary word width, an input-mux wrapper that arbitrates between
// functional access, memory BIST and the LZW decompressor, a March C-
// BIST engine, and stuck-at fault injection so the BIST reuse can be
// demonstrated end to end.
package mem

import "fmt"

// SRAM is a word-addressable memory of `words` words, each `width` bits.
// Words are stored little-endian across uint64 limbs: bit b of a word
// lives at limb b/64, position b%64.
type SRAM struct {
	words int
	width int
	limbs int
	data  []uint64
	// stuck maps (addr, bit) -> forced value, modeling cell stuck-at
	// faults for BIST demonstrations. Applied on read.
	stuck map[[2]int]uint64
}

// New returns a zeroed SRAM.
func New(words, width int) *SRAM {
	if words <= 0 || width <= 0 {
		panic(fmt.Sprintf("mem: invalid geometry %dx%d", words, width))
	}
	limbs := (width + 63) / 64
	return &SRAM{words: words, width: width, limbs: limbs, data: make([]uint64, words*limbs)}
}

// Words returns the address-space size.
func (m *SRAM) Words() int { return m.words }

// Width returns the word width in bits.
func (m *SRAM) Width() int { return m.width }

// Bits returns the total capacity in bits.
func (m *SRAM) Bits() int { return m.words * m.width }

// Read copies word addr into dst (allocating if nil or short) and
// returns it. Stuck-at faults are applied to the returned value.
func (m *SRAM) Read(addr int, dst []uint64) []uint64 {
	m.check(addr)
	if cap(dst) < m.limbs {
		dst = make([]uint64, m.limbs)
	}
	dst = dst[:m.limbs]
	copy(dst, m.data[addr*m.limbs:(addr+1)*m.limbs])
	for k, v := range m.stuck {
		if k[0] != addr {
			continue
		}
		limb, off := k[1]/64, uint(k[1]%64)
		dst[limb] = dst[limb]&^(1<<off) | v<<off
	}
	return dst
}

// Write stores src into word addr. Missing high limbs are treated as
// zero; bits beyond the word width are ignored.
func (m *SRAM) Write(addr int, src []uint64) {
	m.check(addr)
	row := m.data[addr*m.limbs : (addr+1)*m.limbs]
	for i := range row {
		var v uint64
		if i < len(src) {
			v = src[i]
		}
		row[i] = v
	}
	// Mask slack bits of the top limb so reads compare cleanly.
	if r := m.width % 64; r != 0 {
		row[m.limbs-1] &= 1<<uint(r) - 1
	}
}

// InjectStuckAt forces bit `bit` of word addr to v (0 or 1) on every
// subsequent read, modeling a faulty cell.
func (m *SRAM) InjectStuckAt(addr, bit int, v uint64) {
	m.check(addr)
	if bit < 0 || bit >= m.width {
		panic(fmt.Sprintf("mem: bit %d out of word width %d", bit, m.width))
	}
	if m.stuck == nil {
		m.stuck = make(map[[2]int]uint64)
	}
	m.stuck[[2]int{addr, bit}] = v & 1
}

// ClearFaults removes all injected faults.
func (m *SRAM) ClearFaults() { m.stuck = nil }

func (m *SRAM) check(addr int) {
	if addr < 0 || addr >= m.words {
		panic(fmt.Sprintf("mem: address %d out of range [0,%d)", addr, m.words))
	}
}

// Source identifies who owns the memory port (the Figure 6 muxes).
type Source uint8

// Port owners.
const (
	SrcFunctional Source = iota // normal circuit operation
	SrcBIST                     // memory BIST engine
	SrcLZW                      // LZW decompressor
)

// String names the source.
func (s Source) String() string {
	switch s {
	case SrcFunctional:
		return "functional"
	case SrcBIST:
		return "bist"
	case SrcLZW:
		return "lzw"
	default:
		return fmt.Sprintf("Source(%d)", uint8(s))
	}
}

// Shared wraps an SRAM behind the Figure 6 input muxes: exactly one
// source owns the port at a time, and accesses from any other source are
// rejected — the contract that lets production test logic reuse a
// functional memory without interfering with it.
type Shared struct {
	ram   *SRAM
	owner Source
}

// NewShared wraps ram with functional ownership.
func NewShared(ram *SRAM) *Shared { return &Shared{ram: ram, owner: SrcFunctional} }

// Select switches the mux to src.
func (s *Shared) Select(src Source) { s.owner = src }

// Owner reports the current port owner.
func (s *Shared) Owner() Source { return s.owner }

// Read performs a read on behalf of src.
func (s *Shared) Read(src Source, addr int, dst []uint64) ([]uint64, error) {
	if src != s.owner {
		return nil, fmt.Errorf("mem: %v access while port owned by %v", src, s.owner)
	}
	return s.ram.Read(addr, dst), nil
}

// Write performs a write on behalf of src.
func (s *Shared) Write(src Source, addr int, val []uint64) error {
	if src != s.owner {
		return fmt.Errorf("mem: %v access while port owned by %v", src, s.owner)
	}
	s.ram.Write(addr, val)
	return nil
}

// RAM exposes the underlying SRAM geometry (not its port).
func (s *Shared) RAM() *SRAM { return s.ram }
