// Package invariant is the sanctioned panic path for the library
// packages of this module.
//
// The compression core promises bit-exact invertibility under hardware
// invariants (C_E-bit codes, C_MDATA-bit dictionary words). When such an
// invariant is violated the program state is unusable and continuing
// would silently corrupt downstream bit streams, so the only safe move
// is to stop — but library code must do so through one auditable
// chokepoint rather than scattered bare panics. The lzwtcvet
// panic-policy check enforces exactly that: `internal/*` library
// packages may panic only by calling into this package.
package invariant

import "fmt"

// Violation is the panic value raised by this package, so recover()
// sites can distinguish invariant violations from other panics.
type Violation struct {
	Msg string
}

// Error implements error, making a recovered Violation usable as one.
func (v Violation) Error() string { return "invariant violation: " + v.Msg }

// String returns the same rendering as Error.
func (v Violation) String() string { return v.Error() }

// Violatef reports a broken invariant and halts by panicking with a
// Violation value.
func Violatef(format string, args ...any) {
	panic(Violation{Msg: fmt.Sprintf(format, args...)})
}

// Check panics with a Violation when cond is false.
func Check(cond bool, format string, args ...any) {
	if !cond {
		Violatef(format, args...)
	}
}

// Must panics with a Violation when err is non-nil. It is for call
// sites whose error is impossible by construction (widths matched by the
// caller, literals validated at build time); genuinely fallible calls
// must propagate their error instead.
func Must(err error) {
	if err != nil {
		Violatef("%v", err)
	}
}

// Width asserts that n is a legal bit-stream field width, in [1,64],
// and returns it. Wrapping a computed width in Width is the sanctioned
// way to satisfy the lzwtcvet bitwidth check when the bound cannot be
// proven statically: the check credits the call because the guard runs
// at every execution.
func Width(n int) int {
	if n < 1 || n > 64 {
		Violatef("bit width %d out of range [1,64]", n)
	}
	return n
}
