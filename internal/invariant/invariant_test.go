package invariant

import (
	"errors"
	"strings"
	"testing"
)

func recovered(f func()) (v any) {
	defer func() { v = recover() }()
	f()
	return nil
}

func TestViolatef(t *testing.T) {
	v := recovered(func() { Violatef("code %d out of range", 99) })
	viol, ok := v.(Violation)
	if !ok {
		t.Fatalf("panic value %T, want Violation", v)
	}
	if want := "invariant violation: code 99 out of range"; viol.Error() != want {
		t.Fatalf("Error() = %q, want %q", viol.Error(), want)
	}
	if viol.String() != viol.Error() {
		t.Fatalf("String() = %q != Error() = %q", viol.String(), viol.Error())
	}
}

func TestCheck(t *testing.T) {
	if v := recovered(func() { Check(true, "unreachable") }); v != nil {
		t.Fatalf("Check(true) panicked: %v", v)
	}
	if v := recovered(func() { Check(false, "bad %s", "state") }); v == nil {
		t.Fatal("Check(false) did not panic")
	}
}

func TestMust(t *testing.T) {
	if v := recovered(func() { Must(nil) }); v != nil {
		t.Fatalf("Must(nil) panicked: %v", v)
	}
	v := recovered(func() { Must(errors.New("boom")) })
	viol, ok := v.(Violation)
	if !ok || !strings.Contains(viol.Msg, "boom") {
		t.Fatalf("Must(err) panic = %#v, want Violation containing boom", v)
	}
}

func TestWidth(t *testing.T) {
	for _, n := range []int{1, 7, 64} {
		if got := Width(n); got != n {
			t.Fatalf("Width(%d) = %d", n, got)
		}
	}
	for _, n := range []int{0, -1, 65} {
		if v := recovered(func() { Width(n) }); v == nil {
			t.Fatalf("Width(%d) did not panic", n)
		}
	}
}
