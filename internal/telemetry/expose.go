package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// MarshalJSON renders the bucket with its upper bound as a string
// ("+Inf" for the overflow bucket), matching the Prometheus "le" label
// convention — encoding/json cannot represent infinities as numbers.
func (b Bucket) MarshalJSON() ([]byte, error) {
	return []byte(`{"le":` + strconv.Quote(formatBound(b.UpperBound)) +
		`,"count":` + strconv.FormatInt(b.Count, 10) + `}`), nil
}

// UnmarshalJSON parses the string-bound form MarshalJSON writes, so
// snapshots embedded in run records round-trip.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		Le    string `json:"le"`
		Count int64  `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	bound, err := parseBound(raw.Le)
	if err != nil {
		return fmt.Errorf("telemetry: bad bucket bound %q: %w", raw.Le, err)
	}
	b.UpperBound = bound
	b.Count = raw.Count
	return nil
}

func formatBound(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func parseBound(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE headers, counters and
// gauges as plain samples, histograms as cumulative _bucket{le=...}
// series plus _sum and _count.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, c := range s.Counters {
		if err := writeHeader(w, c.Name, c.Help, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if err := writeHeader(w, g.Name, g.Help, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", g.Name, formatBound(g.Value)); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if err := writeHeader(w, h.Name, h.Help, "histogram"); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.Name, formatBound(b.UpperBound), b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", h.Name, formatBound(h.Sum), h.Name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

func writeHeader(w io.Writer, name, help, typ string) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	return err
}

// escapeHelp applies the Prometheus text-format HELP escaping:
// backslash and newline must be escaped so a hostile or merely careless
// help string cannot break the line-oriented exposition.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// WriteText renders the snapshot as aligned human-readable text:
// counters and gauges one per line, histograms with per-bucket
// cumulative counts indented beneath their summary line.
func (s Snapshot) WriteText(w io.Writer) error {
	width := 0
	for _, c := range s.Counters {
		width = max(width, len(c.Name))
	}
	for _, g := range s.Gauges {
		width = max(width, len(g.Name))
	}
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "%-*s %d\n", width, c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "%-*s %s\n", width, g.Name, formatBound(g.Value)); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(w, "%s count=%d sum=%s\n", h.Name, h.Count, formatBound(h.Sum)); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			if b.Count == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "  le %s: %d\n", formatBound(b.UpperBound), b.Count); err != nil {
				return err
			}
		}
	}
	return nil
}
