package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

// fakeClock returns a clock that advances by step on every reading.
func fakeClock(step time.Duration) func() time.Time {
	t := time.Unix(0, 0)
	return func() time.Time {
		now := t
		t = t.Add(step)
		return now
	}
}

func TestNilSafety(t *testing.T) {
	// Every operation on disabled instrumentation must be a no-op, not a
	// nil dereference: this is the one-pointer-check contract the hot
	// loop relies on.
	var r *Recorder
	if r.Enabled() || r.Tracing() {
		t.Fatal("nil recorder reports enabled")
	}
	r.Emit("kind", F("k", 1))
	r.Span("phase").End()
	reg := r.Registry()
	if reg != nil {
		t.Fatal("nil recorder returned a registry")
	}
	reg.Counter("c", "").Inc()
	reg.Gauge("g", "").Set(1)
	reg.Histogram("h", "", []float64{1}).Observe(1)
	if got := reg.Snapshot(); len(got.Counters)+len(got.Gauges)+len(got.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", got)
	}
	var c *Counter
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(4)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(5)
	if h.Count() != 0 || h.Sum() != 0 || len(h.Snapshot().Buckets) != 0 {
		t.Fatal("nil histogram recorded an observation")
	}
	var s *Span
	s.End()
}

func TestCounterAndGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("lzwtc_test_total", "a counter")
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	if again := reg.Counter("lzwtc_test_total", ""); again != c {
		t.Fatal("counter registration not idempotent")
	}
	g := reg.Gauge("lzwtc_test_ratio", "a gauge")
	g.Set(0.75)
	if g.Value() != 0.75 {
		t.Fatalf("gauge = %v, want 0.75", g.Value())
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lzwtc_test_hist", "", []float64{1, 2, 4})
	// "le" semantics: a value equal to a bound lands in that bound's
	// bucket; the first value above every bound lands in +Inf.
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 4, 4.5, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	wantCum := []int64{2, 4, 5, 7} // le=1, le=2, le=4, le=+Inf
	if len(s.Buckets) != len(wantCum) {
		t.Fatalf("bucket count = %d, want %d", len(s.Buckets), len(wantCum))
	}
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket[%d] (le=%v) = %d, want %d", i, b.UpperBound, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(s.Buckets[3].UpperBound, 1) {
		t.Fatalf("last bucket bound = %v, want +Inf", s.Buckets[3].UpperBound)
	}
	wantSum := 0.5 + 1 + 1.0000001 + 2 + 4 + 4.5 + 100
	if math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines;
// `make race` runs it under the race detector.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				reg.Counter("lzwtc_conc_total", "").Inc()
				reg.Gauge("lzwtc_conc_gauge", "").Set(float64(i))
				reg.Histogram("lzwtc_conc_hist", "", []float64{10, 100, 1000}).Observe(float64(i))
				if i%100 == 0 {
					reg.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("lzwtc_conc_total", "").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	h := reg.Histogram("lzwtc_conc_hist", "", nil)
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	s := h.Snapshot()
	if last := s.Buckets[len(s.Buckets)-1].Count; last != workers*perWorker {
		t.Fatalf("+Inf cumulative = %d, want %d", last, workers*perWorker)
	}
}

func TestRecorderEmitConcurrency(t *testing.T) {
	var events []Event
	rec := New(nil, SinkFunc(func(ev Event) { events = append(events, ev) }))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				rec.Emit("tick", F("i", i))
			}
		}()
	}
	wg.Wait()
	if len(events) != 800 {
		t.Fatalf("events = %d, want 800 (sink writes must be serialized)", len(events))
	}
}

func TestSpanRecordsDurationAndEvent(t *testing.T) {
	reg := NewRegistry()
	var events []Event
	rec := NewWithClock(reg, fakeClock(time.Millisecond), SinkFunc(func(ev Event) { events = append(events, ev) }))
	sp := rec.Span("compress")
	sp.End(F("codes", 7))
	h := reg.Histogram(PhaseMetricName("compress"), "", nil)
	if h.Count() != 1 {
		t.Fatalf("phase histogram count = %d, want 1", h.Count())
	}
	// The fake clock steps 1ms per reading; Span takes one reading at
	// start and one at End, so the observed duration is exactly 1ms.
	if got := h.Sum(); math.Abs(got-0.001) > 1e-12 {
		t.Fatalf("phase duration = %vs, want 0.001s", got)
	}
	if len(events) != 1 || events[0].Kind != "span" {
		t.Fatalf("events = %+v, want one span event", events)
	}
	if name, _ := events[0].Field("name"); name != "compress" {
		t.Fatalf("span name field = %v", name)
	}
	if codes, ok := events[0].Field("codes"); !ok || codes != 7 {
		t.Fatalf("span extra field = %v, %v", codes, ok)
	}
}

func TestPhaseMetricName(t *testing.T) {
	if got := PhaseMetricName("decomp.pattern-3"); got != "lzwtc_phase_seconds_decomp_pattern_3" {
		t.Fatalf("PhaseMetricName = %q", got)
	}
}
