package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Trace reconstruction: turning a flat stream of SpanRecords (from a
// JSONL sink file or /debug/trace/recent) back into per-request span
// trees with self/total timing and a critical path. This is the read
// side of the tracing layer; it never runs in the hot path.

// ReadSpansJSONL reads a JSONL event stream (as written by JSONLSink)
// and returns the trace.span records in file order, skipping every
// other event kind and any unparsable line. A trace file mixed with
// step and run events therefore still loads.
func ReadSpansJSONL(r io.Reader) ([]SpanRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []SpanRecord
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var raw map[string]any
		if err := json.Unmarshal(line, &raw); err != nil {
			continue
		}
		if kind, _ := raw["kind"].(string); kind != EventTraceSpan {
			continue
		}
		rec := spanRecordFromRaw(raw)
		if rec.TraceID == "" || rec.SpanID == "" {
			continue
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("telemetry: reading span stream: %w", err)
	}
	return out, nil
}

// spanRecordFromRaw decodes one unmarshalled JSONL object. Unknown
// string-valued fields become Attrs, mirroring SpanRecordFromEvent.
func spanRecordFromRaw(raw map[string]any) SpanRecord {
	var rec SpanRecord
	str := func(k string) string { s, _ := raw[k].(string); return s }
	num := func(k string) int64 {
		if f, ok := raw[k].(float64); ok {
			return int64(f)
		}
		return 0
	}
	rec.TraceID = str("trace_id")
	rec.SpanID = str("span_id")
	rec.ParentID = str("parent_id")
	rec.Name = str("name")
	rec.Process = str("proc")
	rec.RequestID = str("request_id")
	rec.StartUnixUS = num("start_unix_us")
	rec.DurUS = num("dur_us")
	for k, v := range raw {
		switch k {
		case "t_us", "kind", "trace_id", "span_id", "parent_id", "name",
			"proc", "request_id", "start_unix_us", "dur_us":
		default:
			if rec.Attrs == nil {
				rec.Attrs = make(map[string]string)
			}
			rec.Attrs[k] = fmt.Sprintf("%v", v)
		}
	}
	return rec
}

// SpanNode is one span in a reconstructed trace tree.
type SpanNode struct {
	SpanRecord
	Children []*SpanNode
}

// Self returns the span's self time in microseconds: its duration minus
// the summed durations of its direct children, clamped at zero (clock
// skew between processes can make children appear longer than the
// parent).
func (n *SpanNode) Self() int64 {
	self := n.DurUS
	for _, c := range n.Children {
		self -= c.DurUS
	}
	if self < 0 {
		self = 0
	}
	return self
}

// Trace is one reconstructed request tree. Roots holds every span whose
// parent is absent from the record set — normally one (the client or
// server entry span), but orphaned subtrees surface as extra roots
// rather than disappearing.
type Trace struct {
	TraceID string
	Roots   []*SpanNode
}

// CollectTraces groups span records by trace ID (preserving first-seen
// trace order) and links each trace's spans into parent/child trees.
// Children are sorted by start time, then by emission order.
func CollectTraces(recs []SpanRecord) []*Trace {
	byTrace := map[string][]SpanRecord{}
	var order []string
	for _, r := range recs {
		if _, ok := byTrace[r.TraceID]; !ok {
			order = append(order, r.TraceID)
		}
		byTrace[r.TraceID] = append(byTrace[r.TraceID], r)
	}
	out := make([]*Trace, 0, len(order))
	for _, id := range order {
		out = append(out, buildTree(id, byTrace[id]))
	}
	return out
}

func buildTree(traceID string, recs []SpanRecord) *Trace {
	nodes := make([]*SpanNode, len(recs))
	byID := make(map[string]*SpanNode, len(recs))
	for i, r := range recs {
		nodes[i] = &SpanNode{SpanRecord: r}
		// Last record wins on a duplicated span ID; duplicates only
		// arise from merging overlapping record sets.
		byID[r.SpanID] = nodes[i]
	}
	tr := &Trace{TraceID: traceID}
	for _, n := range nodes {
		if p, ok := byID[n.ParentID]; ok && n.ParentID != "" && p != n {
			p.Children = append(p.Children, n)
		} else {
			tr.Roots = append(tr.Roots, n)
		}
	}
	var sortKids func(n *SpanNode)
	sortKids = func(n *SpanNode) {
		sort.SliceStable(n.Children, func(i, j int) bool {
			return n.Children[i].StartUnixUS < n.Children[j].StartUnixUS
		})
		for _, c := range n.Children {
			sortKids(c)
		}
	}
	sort.SliceStable(tr.Roots, func(i, j int) bool {
		return tr.Roots[i].StartUnixUS < tr.Roots[j].StartUnixUS
	})
	for _, r := range tr.Roots {
		sortKids(r)
	}
	return tr
}

// Spans returns every span in the trace in depth-first order.
func (t *Trace) Spans() []*SpanNode {
	var out []*SpanNode
	var walk func(n *SpanNode)
	walk = func(n *SpanNode) {
		out = append(out, n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	return out
}

// CriticalPath returns the chain from the first root down through the
// longest-duration child at each level: the spans that bound the
// request's wall-clock time.
func (t *Trace) CriticalPath() []*SpanNode {
	if len(t.Roots) == 0 {
		return nil
	}
	var path []*SpanNode
	n := t.Roots[0]
	for n != nil {
		path = append(path, n)
		var next *SpanNode
		for _, c := range n.Children {
			if next == nil || c.DurUS > next.DurUS {
				next = c
			}
		}
		n = next
	}
	return path
}
