package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
	"time"
)

// Request tracing. A trace is the tree of timed spans behind one
// user-visible request: the client HTTP call, the lzwtcd handler, the
// worker-pool job it dispatches, and the core compress/decompress
// phases underneath. Span identity (trace ID, span ID, parent ID)
// travels through context.Context inside a process and through the
// X-Lzwtc-Trace header between processes, so a single `lzwtc remote
// compress` yields one connected trace spanning both sides.
//
// The disabled path stays as cheap as the rest of this package: a nil
// *Recorder makes StartSpan a single pointer check returning the
// context unchanged, and TraceSpan.End on nil is a no-op.

// TraceID identifies one request tree across processes.
type TraceID uint64

// SpanID identifies one span within a trace.
type SpanID uint64

// String renders the ID as fixed-width hex, the wire form used in the
// X-Lzwtc-Trace header and in span records.
func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// String renders the ID as fixed-width hex.
func (id SpanID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// SpanContext is the propagated identity of one span: enough for a
// child (possibly in another process) to link itself into the trace.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// Valid reports whether the context carries a real trace identity.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 && sc.SpanID != 0 }

// String renders the context in the X-Lzwtc-Trace wire form
// "<16 hex trace>-<16 hex span>".
func (sc SpanContext) String() string {
	return sc.TraceID.String() + "-" + sc.SpanID.String()
}

// ParseSpanContext parses the wire form produced by String. It rejects
// anything malformed or carrying a zero ID, so a hostile header can at
// worst start a fresh trace.
func ParseSpanContext(s string) (SpanContext, bool) {
	if len(s) != 33 || s[16] != '-' {
		return SpanContext{}, false
	}
	var raw [8]byte
	if _, err := hex.Decode(raw[:], []byte(s[:16])); err != nil {
		return SpanContext{}, false
	}
	tid := TraceID(binary.BigEndian.Uint64(raw[:]))
	if _, err := hex.Decode(raw[:], []byte(s[17:])); err != nil {
		return SpanContext{}, false
	}
	sid := SpanID(binary.BigEndian.Uint64(raw[:]))
	sc := SpanContext{TraceID: tid, SpanID: sid}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

type spanCtxKey struct{}

type requestIDKey struct{}

// ContextWithSpan returns ctx carrying sc as the current span, the
// parent for spans started beneath it.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanFromContext returns the current span identity, or ok=false when
// ctx carries none.
func SpanFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}

// ContextWithRequestID returns ctx carrying a request ID, attached to
// span records and echoed in error envelopes so client-reported
// failures join to server traces.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFromContext returns the request ID carried by ctx, or "".
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// NewRequestID returns a fresh 16-hex-digit request identifier.
func NewRequestID() string {
	var b [8]byte
	randFill(b[:])
	return hex.EncodeToString(b[:])
}

// randFill fills b from crypto/rand, falling back to a process-local
// counter if the system source fails (IDs must never be zero, but need
// no cryptographic strength — they only disambiguate traces).
func randFill(b []byte) {
	if _, err := rand.Read(b); err == nil {
		for _, c := range b {
			if c != 0 {
				return
			}
		}
	}
	idFallback.mu.Lock()
	idFallback.n++
	n := idFallback.n
	idFallback.mu.Unlock()
	binary.BigEndian.PutUint64(b[len(b)-8:], n)
}

var idFallback struct {
	mu sync.Mutex
	n  uint64
}

func newTraceID() TraceID {
	var b [8]byte
	randFill(b[:])
	return TraceID(binary.BigEndian.Uint64(b[:]))
}

func newSpanID() SpanID {
	var b [8]byte
	randFill(b[:])
	return SpanID(binary.BigEndian.Uint64(b[:]))
}

// EventTraceSpan is the event kind carrying one completed trace span.
const EventTraceSpan = "trace.span"

// WithProcess returns a copy of the recorder that stamps every trace
// span with the given process name ("lzwtcd", "client", ...), so merged
// multi-process traces stay attributable. Nil-safe; call at
// construction time, before the recorder is shared.
func (r *Recorder) WithProcess(proc string) *Recorder {
	if r == nil {
		return nil
	}
	r.proc = proc
	return r
}

// StartSpan starts a trace span named name as a child of the span in
// ctx (or as a new trace root when ctx carries none) and returns a
// context carrying the child identity. A nil Recorder returns ctx
// unchanged and a nil span: one pointer check, zero allocations.
func (r *Recorder) StartSpan(ctx context.Context, name string) (context.Context, *TraceSpan) {
	if r == nil {
		return ctx, nil
	}
	sp := &TraceSpan{r: r, name: name, start: r.now()}
	if parent, ok := SpanFromContext(ctx); ok {
		sp.sc.TraceID = parent.TraceID
		sp.parent = parent.SpanID
	} else {
		sp.sc.TraceID = newTraceID()
	}
	sp.sc.SpanID = newSpanID()
	sp.reqID = RequestIDFromContext(ctx)
	return ContextWithSpan(ctx, sp.sc), sp
}

// TraceSpan is one in-flight trace span. Created by Recorder.StartSpan.
type TraceSpan struct {
	r      *Recorder
	name   string
	sc     SpanContext
	parent SpanID
	reqID  string
	start  time.Time
	ended  bool
}

// Context returns the span's propagated identity. Nil-safe: a nil span
// returns the zero (invalid) SpanContext.
func (s *TraceSpan) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// End completes the span: it observes the phase-duration histogram for
// the span name and emits an EventTraceSpan event carrying the span
// identity, timing, and any extra fields. Nil-safe and idempotent —
// only the first End records, so a deferred End backing up an explicit
// one cannot double-emit.
func (s *TraceSpan) End(fields ...Field) {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	end := s.r.now()
	d := end.Sub(s.start)
	s.r.reg.Histogram(PhaseMetricName(s.name), "phase duration in seconds", DurationBuckets()).
		Observe(d.Seconds())
	ev := make([]Field, 0, 8+len(fields))
	ev = append(ev,
		F("trace_id", s.sc.TraceID.String()),
		F("span_id", s.sc.SpanID.String()),
	)
	if s.parent != 0 {
		ev = append(ev, F("parent_id", s.parent.String()))
	}
	ev = append(ev, F("name", s.name))
	if s.r.proc != "" {
		ev = append(ev, F("proc", s.r.proc))
	}
	if s.reqID != "" {
		ev = append(ev, F("request_id", s.reqID))
	}
	ev = append(ev,
		F("start_unix_us", s.start.UnixMicro()),
		F("dur_us", d.Microseconds()),
	)
	ev = append(ev, fields...)
	s.r.Emit(EventTraceSpan, ev...)
}

// SpanRecord is the decoded form of one EventTraceSpan event: what the
// ring buffer stores, /debug/trace/recent serves, and `lzwtc trace`
// reads back from JSONL streams.
type SpanRecord struct {
	TraceID     string            `json:"trace_id"`
	SpanID      string            `json:"span_id"`
	ParentID    string            `json:"parent_id,omitempty"`
	Name        string            `json:"name"`
	Process     string            `json:"proc,omitempty"`
	RequestID   string            `json:"request_id,omitempty"`
	StartUnixUS int64             `json:"start_unix_us"`
	DurUS       int64             `json:"dur_us"`
	Attrs       map[string]string `json:"attrs,omitempty"`
}

// SpanRecordFromEvent decodes an EventTraceSpan event. ok is false for
// any other event kind.
func SpanRecordFromEvent(ev Event) (SpanRecord, bool) {
	if ev.Kind != EventTraceSpan {
		return SpanRecord{}, false
	}
	var rec SpanRecord
	for _, f := range ev.Fields {
		switch f.Key {
		case "trace_id":
			rec.TraceID, _ = f.Value.(string)
		case "span_id":
			rec.SpanID, _ = f.Value.(string)
		case "parent_id":
			rec.ParentID, _ = f.Value.(string)
		case "name":
			rec.Name, _ = f.Value.(string)
		case "proc":
			rec.Process, _ = f.Value.(string)
		case "request_id":
			rec.RequestID, _ = f.Value.(string)
		case "start_unix_us":
			rec.StartUnixUS = asInt64(f.Value)
		case "dur_us":
			rec.DurUS = asInt64(f.Value)
		default:
			if rec.Attrs == nil {
				rec.Attrs = make(map[string]string)
			}
			rec.Attrs[f.Key] = fmt.Sprintf("%v", f.Value)
		}
	}
	return rec, rec.TraceID != "" && rec.SpanID != ""
}

func asInt64(v any) int64 {
	switch n := v.(type) {
	case int64:
		return n
	case int:
		return int64(n)
	case float64:
		return int64(n)
	case uint64:
		return int64(n)
	}
	return 0
}

// TraceRecord is one trace's worth of spans, in emission order.
type TraceRecord struct {
	TraceID string       `json:"trace_id"`
	Spans   []SpanRecord `json:"spans"`
}

// maxSpansPerTrace bounds how many spans the ring buffer retains per
// trace, so a runaway span emitter cannot grow one entry without bound.
const maxSpansPerTrace = 512

// TraceBuffer is a Sink retaining the most recent traces in a ring:
// completed spans are grouped by trace ID, and when the buffer holds
// more than its capacity in distinct traces, whole oldest traces are
// evicted. Safe for concurrent Emit/Recent (it carries its own lock:
// Recorder serializes Emit, but Recent is called from HTTP handlers).
//
// TraceBuffer wants only span events — it reports WantsSteps false, so
// a recorder whose only sink is the ring buffer does not pay for
// per-step event payload construction in the compress hot loop.
type TraceBuffer struct {
	mu       sync.Mutex
	capacity int
	byID     map[string]*TraceRecord
	order    []string // trace IDs, oldest first
}

// NewTraceBuffer returns a ring buffer retaining up to capacity traces
// (default 64 when capacity <= 0).
func NewTraceBuffer(capacity int) *TraceBuffer {
	if capacity <= 0 {
		capacity = 64
	}
	return &TraceBuffer{
		capacity: capacity,
		byID:     make(map[string]*TraceRecord, capacity),
	}
}

// WantsSteps reports that this sink has no use for per-step events.
func (b *TraceBuffer) WantsSteps() bool { return false }

// Emit implements Sink, retaining trace.span events and ignoring all
// other kinds.
func (b *TraceBuffer) Emit(ev Event) {
	rec, ok := SpanRecordFromEvent(ev)
	if !ok {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	tr := b.byID[rec.TraceID]
	if tr == nil {
		if len(b.order) >= b.capacity {
			oldest := b.order[0]
			b.order = b.order[1:]
			delete(b.byID, oldest)
		}
		tr = &TraceRecord{TraceID: rec.TraceID}
		b.byID[rec.TraceID] = tr
		b.order = append(b.order, rec.TraceID)
	}
	if len(tr.Spans) < maxSpansPerTrace {
		tr.Spans = append(tr.Spans, rec)
	}
}

// Recent returns up to n traces, newest first. Each returned record is
// a copy, safe to serialize without further locking.
func (b *TraceBuffer) Recent(n int) []TraceRecord {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n <= 0 || n > len(b.order) {
		n = len(b.order)
	}
	out := make([]TraceRecord, 0, n)
	for i := len(b.order) - 1; i >= 0 && len(out) < n; i-- {
		tr := b.byID[b.order[i]]
		cp := TraceRecord{TraceID: tr.TraceID, Spans: append([]SpanRecord(nil), tr.Spans...)}
		out = append(out, cp)
	}
	return out
}

// Len returns the number of traces currently retained.
func (b *TraceBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.order)
}
