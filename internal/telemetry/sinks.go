package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// TextSink renders events as human-readable lines:
//
//	[   0.001234s] compress.run empty=false ratio=0.806
//
// Write errors are captured, not dropped: the first one is retained and
// reported by Err, and later events are discarded.
type TextSink struct {
	w   io.Writer
	err error
}

// NewTextSink returns a text sink over w.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{w: w} }

// Emit implements Sink.
func (s *TextSink) Emit(ev Event) {
	if s.err != nil {
		return
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "[%12.6fs] %s", ev.Elapsed.Seconds(), ev.Kind)
	for _, f := range ev.Fields {
		fmt.Fprintf(&buf, " %s=%v", f.Key, f.Value)
	}
	buf.WriteByte('\n')
	if _, err := s.w.Write(buf.Bytes()); err != nil {
		s.err = err
	}
}

// Err returns the first write error, if any.
func (s *TextSink) Err() error { return s.err }

// JSONLSink renders one JSON object per event per line:
//
//	{"t_us":1234,"kind":"compress.run","empty":false,"ratio":0.806}
//
// Field order is preserved. Values that encoding/json cannot marshal
// fall back to their %v rendering as a JSON string. Write errors are
// captured as in TextSink.
type JSONLSink struct {
	w   io.Writer
	err error
}

// NewJSONLSink returns a JSONL sink over w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// Emit implements Sink.
func (s *JSONLSink) Emit(ev Event) {
	if s.err != nil {
		return
	}
	var buf bytes.Buffer
	buf.WriteString(`{"t_us":`)
	buf.WriteString(strconv.FormatInt(ev.Elapsed.Microseconds(), 10))
	buf.WriteString(`,"kind":`)
	buf.WriteString(strconv.Quote(ev.Kind))
	for _, f := range ev.Fields {
		buf.WriteByte(',')
		buf.WriteString(strconv.Quote(f.Key))
		buf.WriteByte(':')
		b, err := json.Marshal(f.Value)
		if err != nil {
			b = []byte(strconv.Quote(fmt.Sprintf("%v", f.Value)))
		}
		buf.Write(b)
	}
	buf.WriteString("}\n")
	if _, err := s.w.Write(buf.Bytes()); err != nil {
		s.err = err
	}
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error { return s.err }
