package telemetry

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

func TestSpanContextWireRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: 0xdeadbeef01, SpanID: 0x42}
	s := sc.String()
	if len(s) != 33 || s[16] != '-' {
		t.Fatalf("wire form %q has wrong shape", s)
	}
	got, ok := ParseSpanContext(s)
	if !ok || got != sc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, sc)
	}

	bad := []string{
		"",
		"short",
		strings.Repeat("0", 33),                  // no dash
		strings.Repeat("z", 16) + "-" + strings.Repeat("0", 15) + "1", // bad hex trace
		strings.Repeat("0", 15) + "1-" + strings.Repeat("z", 16),      // bad hex span
		strings.Repeat("0", 16) + "-" + strings.Repeat("0", 15) + "1", // zero trace id
		strings.Repeat("0", 15) + "1-" + strings.Repeat("0", 16),      // zero span id
		sc.String() + "x", // trailing garbage
	}
	for _, s := range bad {
		if _, ok := ParseSpanContext(s); ok {
			t.Errorf("ParseSpanContext(%q) accepted malformed input", s)
		}
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if _, ok := SpanFromContext(ctx); ok {
		t.Fatal("empty context reported a span")
	}
	// An invalid span context stored in ctx must not surface.
	if _, ok := SpanFromContext(ContextWithSpan(ctx, SpanContext{})); ok {
		t.Fatal("invalid span context surfaced from ctx")
	}
	sc := SpanContext{TraceID: 7, SpanID: 9}
	if got, ok := SpanFromContext(ContextWithSpan(ctx, sc)); !ok || got != sc {
		t.Fatalf("span context: got %+v ok=%v", got, ok)
	}

	if id := RequestIDFromContext(ctx); id != "" {
		t.Fatalf("empty context request id = %q", id)
	}
	if got := RequestIDFromContext(ContextWithRequestID(ctx, "req-1")); got != "req-1" {
		t.Fatalf("request id = %q", got)
	}
	// Empty IDs are not stored.
	if ContextWithRequestID(ctx, "") != ctx {
		t.Fatal("empty request id allocated a new context")
	}

	if id := NewRequestID(); len(id) != 16 {
		t.Fatalf("NewRequestID() = %q, want 16 hex chars", id)
	}
}

// traceClock is a deterministic recorder clock advancing 1ms per call.
func traceClock() func() time.Time {
	base := time.Unix(1000, 0)
	n := 0
	return func() time.Time { n++; return base.Add(time.Duration(n) * time.Millisecond) }
}

func TestStartSpanParentChildLinkage(t *testing.T) {
	var events []Event
	rec := NewWithClock(NewRegistry(), traceClock(),
		SinkFunc(func(ev Event) { events = append(events, ev) })).WithProcess("testproc")

	ctx := ContextWithRequestID(context.Background(), "req-42")
	rctx, root := rec.StartSpan(ctx, "root.phase")
	rsc, ok := SpanFromContext(rctx)
	if !ok || rsc != root.Context() {
		t.Fatalf("root ctx carries %+v, span is %+v", rsc, root.Context())
	}
	_, child := rec.StartSpan(rctx, "child.phase")
	if child.Context().TraceID != root.Context().TraceID {
		t.Fatal("child did not inherit the trace id")
	}
	child.End(F("extra", 3))
	root.End()

	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	crec, ok := SpanRecordFromEvent(events[0])
	if !ok {
		t.Fatalf("child event kind %q undecodable", events[0].Kind)
	}
	rrec, _ := SpanRecordFromEvent(events[1])
	if crec.ParentID != rrec.SpanID {
		t.Fatalf("child parent_id %q != root span_id %q", crec.ParentID, rrec.SpanID)
	}
	if crec.TraceID != rrec.TraceID {
		t.Fatal("child and root trace ids differ")
	}
	if rrec.ParentID != "" {
		t.Fatalf("root has parent_id %q", rrec.ParentID)
	}
	if crec.Process != "testproc" || crec.RequestID != "req-42" {
		t.Fatalf("child proc/request = %q/%q", crec.Process, crec.RequestID)
	}
	if crec.Attrs["extra"] != "3" {
		t.Fatalf("extra field not in attrs: %+v", crec.Attrs)
	}
	if crec.DurUS <= 0 || crec.StartUnixUS <= 0 {
		t.Fatalf("timing not recorded: %+v", crec)
	}

	// Ending a span observes the phase histogram under its name.
	snap := rec.Registry().Snapshot()
	if h, ok := snap.HistogramNamed(PhaseMetricName("child.phase")); !ok || h.Count != 1 {
		t.Fatalf("phase histogram for child.phase: ok=%v %+v", ok, h)
	}

	// End is idempotent: a second End (deferred backup) emits nothing.
	child.End()
	if len(events) != 2 {
		t.Fatalf("double End emitted: %d events", len(events))
	}
}

func TestStartSpanNilRecorderZeroCost(t *testing.T) {
	var rec *Recorder
	ctx := ContextWithSpan(context.Background(), SpanContext{TraceID: 1, SpanID: 2})
	octx, sp := rec.StartSpan(ctx, "anything")
	if octx != ctx {
		t.Fatal("nil recorder changed the context")
	}
	if sp != nil {
		t.Fatal("nil recorder returned a live span")
	}
	sp.End() // must not panic
	if sp.Context().Valid() {
		t.Fatal("nil span has a valid context")
	}

	allocs := testing.AllocsPerRun(200, func() {
		c, sp := rec.StartSpan(ctx, "hot.path")
		sp.End()
		_ = c
	})
	if allocs != 0 {
		t.Fatalf("disabled StartSpan/End allocates %.1f per op, want 0", allocs)
	}
}

func TestTraceBufferRingAndCaps(t *testing.T) {
	b := NewTraceBuffer(2)
	if !b.WantsSteps() == false {
		t.Fatal("TraceBuffer must report WantsSteps false")
	}
	emit := func(trace, span string) {
		b.Emit(Event{Kind: EventTraceSpan, Fields: []Field{
			F("trace_id", trace), F("span_id", span), F("name", "n"),
			F("start_unix_us", int64(1)), F("dur_us", int64(1)),
		}})
	}
	// Non-span events are ignored.
	b.Emit(Event{Kind: "step", Fields: []Field{F("trace_id", "t0")}})
	if b.Len() != 0 {
		t.Fatal("non-span event retained")
	}

	emit("t1", "s1")
	emit("t2", "s2")
	emit("t1", "s3") // appends to existing t1, no eviction
	if b.Len() != 2 {
		t.Fatalf("len = %d, want 2", b.Len())
	}
	emit("t3", "s4") // evicts t1 (oldest)
	recent := b.Recent(10)
	if len(recent) != 2 {
		t.Fatalf("recent = %d traces, want 2", len(recent))
	}
	if recent[0].TraceID != "t3" || recent[1].TraceID != "t2" {
		t.Fatalf("recent order = %s,%s; want t3,t2 (newest first)", recent[0].TraceID, recent[1].TraceID)
	}

	// Recent(n) bounds and copies.
	one := b.Recent(1)
	if len(one) != 1 || one[0].TraceID != "t3" {
		t.Fatalf("Recent(1) = %+v", one)
	}
	one[0].Spans[0].Name = "mutated"
	if b.Recent(1)[0].Spans[0].Name == "mutated" {
		t.Fatal("Recent returned shared span storage")
	}

	// Per-trace span cap.
	big := NewTraceBuffer(1)
	for i := 0; i < maxSpansPerTrace+50; i++ {
		big.Emit(Event{Kind: EventTraceSpan, Fields: []Field{
			F("trace_id", "big"), F("span_id", "s"), F("name", "n"),
		}})
	}
	if n := len(big.Recent(1)[0].Spans); n != maxSpansPerTrace {
		t.Fatalf("trace grew to %d spans, cap is %d", n, maxSpansPerTrace)
	}
}

func TestTracingGatedBySinkAppetite(t *testing.T) {
	var nilRec *Recorder
	if nilRec.Tracing() {
		t.Fatal("nil recorder reports tracing")
	}
	if telemetryNew := New(NewRegistry()); telemetryNew.Tracing() {
		t.Fatal("sinkless recorder reports tracing")
	}
	if rec := New(NewRegistry(), NewTraceBuffer(4)); rec.Tracing() {
		t.Fatal("trace-buffer-only recorder must not pay for step events")
	}
	if rec := New(NewRegistry(), NewJSONLSink(&bytes.Buffer{})); !rec.Tracing() {
		t.Fatal("JSONL sink wants the full stream")
	}
	if rec := New(NewRegistry(), NewTraceBuffer(4), NewTextSink(&bytes.Buffer{})); !rec.Tracing() {
		t.Fatal("any full-stream sink enables tracing")
	}
}

func TestEmitPanicContainment(t *testing.T) {
	var healthy int
	bomb := SinkFunc(func(Event) { panic("sink bug") })
	rec := New(nil, bomb, SinkFunc(func(Event) { healthy++ }))

	rec.Emit("e1") // bomb panics, gets removed; healthy still runs
	rec.Emit("e2") // bomb slot is nil now
	if healthy != 2 {
		t.Fatalf("healthy sink saw %d events, want 2", healthy)
	}
	// Recorder lock not poisoned: spans still record.
	_, sp := rec.StartSpan(context.Background(), "after.panic")
	sp.End()
	if healthy != 3 {
		t.Fatalf("span event not delivered after panic: %d", healthy)
	}
}

func TestJSONLSpanFieldOrder(t *testing.T) {
	var buf bytes.Buffer
	rec := NewWithClock(NewRegistry(), traceClock(), NewJSONLSink(&buf)).WithProcess("p1")
	ctx := ContextWithRequestID(context.Background(), "rid")
	rctx, root := rec.StartSpan(ctx, "a.root")
	_, child := rec.StartSpan(rctx, "a.child")
	child.End(F("k", 1))
	root.End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	// The wire field order is part of the format: fixed identity fields
	// first, then timing, then extras — consumers may stream-parse.
	wantOrder := []string{`"t_us"`, `"kind"`, `"trace_id"`, `"span_id"`, `"parent_id"`,
		`"name"`, `"proc"`, `"request_id"`, `"start_unix_us"`, `"dur_us"`, `"k"`}
	pos := -1
	for _, key := range wantOrder {
		i := strings.Index(lines[0], key)
		if i < 0 {
			t.Fatalf("child line missing %s: %s", key, lines[0])
		}
		if i < pos {
			t.Fatalf("field %s out of order in %s", key, lines[0])
		}
		pos = i
	}
	// Root span has no parent: parent_id must be absent entirely.
	if strings.Contains(lines[1], `"parent_id"`) {
		t.Fatalf("root line carries parent_id: %s", lines[1])
	}
}

func TestPrometheusHelpEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("lzwtc_esc_total", "line one\nline two \\ backslash").Add(1)
	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `# HELP lzwtc_esc_total line one\nline two \\ backslash`) {
		t.Fatalf("HELP not escaped:\n%s", out)
	}
	// The exposition must stay line-oriented: no raw newline inside HELP.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !strings.HasPrefix(line, "#") && !strings.HasPrefix(line, "lzwtc_esc_total") {
			t.Fatalf("stray line in exposition: %q", line)
		}
	}
}
