// Package telemetry is the instrumentation substrate for the lzwtc
// pipeline: a metrics registry (counters, gauges, histograms),
// span-style phase timing, and pluggable event sinks (human text, JSONL,
// Prometheus text exposition). Standard library only.
//
// The paper's entire argument is quantitative — compression ratio per
// circuit (Table 3), dictionary/entry-size tradeoffs (Tables 1–2, 4–6)
// and decompressor cycle counts against the ATE clock multiple — so
// every stage of the pipeline records through this package rather than
// through ad-hoc printf. The compressor's hot loop stays cheap by
// construction: every type here is nil-safe, so a disabled pipeline
// (nil *Recorder, nil *Counter, ...) costs exactly one pointer check
// per call site and allocates nothing.
//
// Concurrency: Registry and its metrics are safe for concurrent use
// (atomics throughout). Recorder serializes sink emission internally;
// the sink implementations themselves are single-writer.
package telemetry

import (
	"sync"
	"time"
)

// Field is one key/value pair attached to an Event. Field order is
// preserved by the sinks, so emitters control the rendering order.
type Field struct {
	Key   string
	Value any
}

// F builds a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Event is one timestamped occurrence in a run: a compressor step, a
// phase-span completion, a per-pattern cycle record. Elapsed is the
// offset from the Recorder's start, which keeps event streams
// deterministic under an injected clock.
type Event struct {
	Elapsed time.Duration
	Kind    string
	Fields  []Field
}

// Field returns the value of the named field and whether it is present.
func (e Event) Field(key string) (any, bool) {
	for _, f := range e.Fields {
		if f.Key == key {
			return f.Value, true
		}
	}
	return nil, false
}

// Sink consumes events. Sinks are driven under the Recorder's lock and
// need no internal synchronization.
//
// A sink may additionally implement StepSink to opt out of the
// high-volume per-step event stream; sinks without the method receive
// everything.
type Sink interface {
	Emit(Event)
}

// StepSink is optionally implemented by sinks to declare whether they
// consume per-step events (one per compressor iteration). A sink that
// returns false still receives every event that is emitted, but a
// recorder whose sinks all return false reports Tracing() == false, so
// hot loops skip building step payloads entirely. The ring-buffer
// TraceBuffer returns false; the text and JSONL sinks do not implement
// the interface and so keep the full stream.
type StepSink interface {
	WantsSteps() bool
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Emit implements Sink.
func (f SinkFunc) Emit(ev Event) { f(ev) }

// Recorder bundles a metrics registry with zero or more event sinks.
// A nil Recorder is the disabled instrumentation: every method is a
// nil-safe no-op, so callers thread one pointer unconditionally.
type Recorder struct {
	reg     *Registry
	sinks   []Sink
	now     func() time.Time
	start   time.Time
	proc    string // process name stamped on trace spans; see WithProcess
	tracing bool   // any sink wants per-step events; fixed at construction
	mu      sync.Mutex // serializes sink emission
}

// New builds a Recorder over an optional registry and sinks. Either may
// be absent: a metrics-only recorder passes no sinks, an events-only
// recorder passes a nil registry.
func New(reg *Registry, sinks ...Sink) *Recorder {
	return NewWithClock(reg, time.Now, sinks...)
}

// NewWithClock is New with an injected clock, for deterministic event
// timestamps in tests and golden files.
func NewWithClock(reg *Registry, now func() time.Time, sinks ...Sink) *Recorder {
	r := &Recorder{reg: reg, sinks: sinks, now: now, start: now()}
	for _, s := range sinks {
		if ss, ok := s.(StepSink); ok && !ss.WantsSteps() {
			continue
		}
		r.tracing = true
		break
	}
	return r
}

// Enabled reports whether any instrumentation is attached.
func (r *Recorder) Enabled() bool { return r != nil }

// Tracing reports whether per-step events have anywhere to go: at
// least one sink that does not opt out via StepSink. Hot loops gate
// the construction of expensive event payloads on this, so a
// metrics-only recorder — or one feeding only the trace ring buffer —
// never pays for step rendering.
func (r *Recorder) Tracing() bool { return r != nil && r.tracing }

// Registry returns the metrics registry, or nil when disabled.
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Emit delivers an event to every sink. No-op when disabled or sinkless.
// A sink that panics is disabled and skipped from then on; the panic
// never escapes to the instrumented caller and never poisons the other
// sinks or the recorder's lock.
func (r *Recorder) Emit(kind string, fields ...Field) {
	if r == nil || len(r.sinks) == 0 {
		return
	}
	ev := Event{Elapsed: r.now().Sub(r.start), Kind: kind, Fields: fields}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, s := range r.sinks {
		if s == nil {
			continue
		}
		emitContained(r, i, s, ev)
	}
}

// emitContained drives one sink, converting a panic into permanent
// removal of that sink. Split out so the recover scope covers exactly
// one sink per event.
func emitContained(r *Recorder, i int, s Sink, ev Event) {
	defer func() {
		if recover() != nil {
			r.sinks[i] = nil
		}
	}()
	s.Emit(ev)
}

// Span starts a named phase span (parse, compress, pack, decompress,
// verify, or any sub-phase). End the returned span to record its
// duration in the registry histogram lzwtc_phase_seconds_<name> and to
// emit a "span" event. A nil Recorder returns a nil Span whose End is a
// no-op.
func (r *Recorder) Span(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{r: r, name: name, start: r.now()}
}

// Span is one in-flight phase timing. Created by Recorder.Span.
type Span struct {
	r     *Recorder
	name  string
	start time.Time
}

// End completes the span, recording its duration and emitting a "span"
// event carrying the span name, duration and any extra fields.
func (s *Span) End(fields ...Field) {
	if s == nil {
		return
	}
	d := s.r.now().Sub(s.start)
	s.r.reg.Histogram(PhaseMetricName(s.name), "phase duration in seconds", DurationBuckets()).
		Observe(d.Seconds())
	ev := append([]Field{F("name", s.name), F("dur_us", d.Microseconds())}, fields...)
	s.r.Emit("span", ev...)
}

// PhaseMetricName maps a span name to its registry histogram name,
// normalizing separators to Prometheus-legal characters.
func PhaseMetricName(span string) string {
	b := []byte("lzwtc_phase_seconds_" + span)
	for i := range b {
		switch {
		case b[i] >= 'a' && b[i] <= 'z', b[i] >= 'A' && b[i] <= 'Z',
			b[i] >= '0' && b[i] <= '9', b[i] == '_':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// DurationBuckets returns the default histogram bounds for phase
// durations, in seconds: 1µs to 10s, decades with a 1-2.5-5 split.
func DurationBuckets() []float64 {
	return []float64{
		1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}
