package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden %s missing (run go test ./internal/telemetry -update): %v", name, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// goldenEvents drives a deterministic event sequence shaped like a real
// run: a compress run record, a per-pattern decomp record, and a span.
func goldenEvents(s Sink) {
	rec := NewWithClock(nil, fakeClock(1500*time.Microsecond), s)
	rec.Emit("compress.run",
		F("empty", false),
		F("ratio", 0.8069),
		F("codes", 1024),
		F("policy", "freeze"),
	)
	rec.Emit("decomp.pattern", F("index", 0), F("internal_cycles", 733))
	rec.Span("verify").End()
	rec.Emit("compress.run", F("empty", true))
}

func TestJSONLSinkGolden(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	goldenEvents(s)
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	// Every line must be valid JSON before golden comparison.
	for i, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var v map[string]any
		if err := json.Unmarshal(line, &v); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", i, err, line)
		}
	}
	checkGolden(t, "events.jsonl.golden", buf.Bytes())
}

func TestTextSinkGolden(t *testing.T) {
	var buf bytes.Buffer
	s := NewTextSink(&buf)
	goldenEvents(s)
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	checkGolden(t, "events.text.golden", buf.Bytes())
}

// goldenRegistry builds a small registry resembling a compress+decomp
// run for the exposition goldens.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("lzwtc_compress_codes_total", "codes emitted").Add(1024)
	reg.Counter("lzwtc_compress_dict_resets_total", "FullReset occurrences").Add(2)
	reg.Gauge("lzwtc_decomp_utilization", "shift cycles / internal cycles").Set(0.492)
	h := reg.Histogram("lzwtc_compress_match_len_chars", "emitted string length in characters", []float64{1, 2, 4, 8})
	for _, v := range []float64{1, 1, 2, 3, 5, 9} {
		h.Observe(v)
	}
	return reg
}

func TestPrometheusExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.prom.golden", buf.Bytes())
}

func TestTextExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.text.golden", buf.Bytes())
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	b, err := json.Marshal(goldenRegistry().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var v map[string]any
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v\n%s", err, b)
	}
	// The +Inf bucket must have survived as the string "+Inf".
	if !bytes.Contains(b, []byte(`"le":"+Inf"`)) {
		t.Fatalf("snapshot JSON missing +Inf bucket: %s", b)
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	return 0, os.ErrClosed
}

func TestSinkWriteErrorsCaptured(t *testing.T) {
	fw := &failWriter{}
	s := NewJSONLSink(fw)
	s.Emit(Event{Kind: "a"})
	s.Emit(Event{Kind: "b"})
	if s.Err() == nil {
		t.Fatal("write error not captured")
	}
	if fw.n != 1 {
		t.Fatalf("sink kept writing after error: %d writes", fw.n)
	}
}
