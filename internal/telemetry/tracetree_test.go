package telemetry

import (
	"strings"
	"testing"
)

// spanLine builds one JSONL trace.span line from key/value pairs.
func spanLine(pairs ...string) string {
	var b strings.Builder
	b.WriteString(`{"t_us":1,"kind":"trace.span"`)
	for i := 0; i+1 < len(pairs); i += 2 {
		b.WriteString(`,"` + pairs[i] + `":`)
		v := pairs[i+1]
		if strings.IndexFunc(v, func(r rune) bool { return r < '0' || r > '9' }) < 0 && v != "" {
			b.WriteString(v)
		} else {
			b.WriteString(`"` + v + `"`)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func TestReadSpansJSONLSkipsNoise(t *testing.T) {
	input := `{"t_us":1,"kind":"run","config":"x"}
not json at all
` + spanLine("trace_id", "t1", "span_id", "a", "name", "root.op",
		"start_unix_us", "100", "dur_us", "50", "verb", "compress") +
		`{"t_us":2,"kind":"step","sym":"X"}
{"t_us":3,"kind":"trace.span","span_id":"missing-trace"}
` + spanLine("trace_id", "t1", "span_id", "b", "parent_id", "a", "name", "child.op",
		"start_unix_us", "110", "dur_us", "20")

	recs, err := ReadSpansJSONL(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2 (noise not skipped): %+v", len(recs), recs)
	}
	if recs[0].Name != "root.op" || recs[1].Name != "child.op" {
		t.Fatalf("wrong records: %+v", recs)
	}
	if recs[0].Attrs["verb"] != "compress" {
		t.Fatalf("extra field not captured as attr: %+v", recs[0].Attrs)
	}
	if recs[1].ParentID != "a" || recs[1].StartUnixUS != 110 || recs[1].DurUS != 20 {
		t.Fatalf("numeric/parent fields wrong: %+v", recs[1])
	}
}

func TestCollectTracesShapesAndOrphans(t *testing.T) {
	recs := []SpanRecord{
		{TraceID: "t2", SpanID: "x", Name: "other.root", StartUnixUS: 5, DurUS: 10},
		{TraceID: "t1", SpanID: "r", Name: "root", StartUnixUS: 0, DurUS: 100},
		{TraceID: "t1", SpanID: "c2", ParentID: "r", Name: "late", StartUnixUS: 60, DurUS: 30},
		{TraceID: "t1", SpanID: "c1", ParentID: "r", Name: "early", StartUnixUS: 10, DurUS: 40},
		{TraceID: "t1", SpanID: "o", ParentID: "gone", Name: "orphan", StartUnixUS: 20, DurUS: 5},
	}
	traces := CollectTraces(recs)
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(traces))
	}
	// First-seen trace order is preserved.
	if traces[0].TraceID != "t2" || traces[1].TraceID != "t1" {
		t.Fatalf("trace order = %s,%s", traces[0].TraceID, traces[1].TraceID)
	}
	t1 := traces[1]
	// The orphan (parent absent from the set) surfaces as an extra root
	// rather than vanishing.
	if len(t1.Roots) != 2 {
		t.Fatalf("t1 roots = %d, want 2 (root + orphan)", len(t1.Roots))
	}
	root := t1.Roots[0]
	if root.Name != "root" || t1.Roots[1].Name != "orphan" {
		t.Fatalf("root order = %s,%s", root.Name, t1.Roots[1].Name)
	}
	// Children sorted by start time.
	if len(root.Children) != 2 || root.Children[0].Name != "early" || root.Children[1].Name != "late" {
		t.Fatalf("children = %+v", root.Children)
	}
	// Self time = own duration minus direct children.
	if got := root.Self(); got != 100-40-30 {
		t.Fatalf("root self = %d, want 30", got)
	}
	// Self clamps at zero when children overrun the parent (clock skew).
	skew := &SpanNode{SpanRecord: SpanRecord{DurUS: 10},
		Children: []*SpanNode{{SpanRecord: SpanRecord{DurUS: 25}}}}
	if got := skew.Self(); got != 0 {
		t.Fatalf("skewed self = %d, want 0", got)
	}

	// DFS span order: root, early, late, orphan.
	var names []string
	for _, n := range t1.Spans() {
		names = append(names, n.Name)
	}
	if strings.Join(names, ",") != "root,early,late,orphan" {
		t.Fatalf("DFS order = %v", names)
	}

	// Critical path descends through the longest child at each level.
	var path []string
	for _, n := range t1.CriticalPath() {
		path = append(path, n.Name)
	}
	if strings.Join(path, ",") != "root,early" {
		t.Fatalf("critical path = %v", path)
	}
	if (&Trace{}).CriticalPath() != nil {
		t.Fatal("empty trace has a critical path")
	}
}
