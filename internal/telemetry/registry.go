package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a concurrency-safe collection of named metrics. Metric
// constructors are idempotent: asking for an existing name returns the
// existing metric, so independent pipeline stages can share counters by
// name without coordination. A nil Registry hands out nil metrics,
// whose operations are all no-ops — the disabled path.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	help       map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		help:       map[string]string{},
	}
}

// Counter returns the named counter, creating it on first use.
func (g *Registry) Counter(name, help string) *Counter {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	c, ok := g.counters[name]
	if !ok {
		c = &Counter{}
		g.counters[name] = c
		g.setHelp(name, help)
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (g *Registry) Gauge(name, help string) *Gauge {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	v, ok := g.gauges[name]
	if !ok {
		v = &Gauge{}
		g.gauges[name] = v
		g.setHelp(name, help)
	}
	return v
}

// Histogram returns the named histogram, creating it on first use with
// the given ascending upper bounds (an implicit +Inf bucket is always
// appended). Later calls reuse the first registration's bounds.
func (g *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	h, ok := g.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		g.histograms[name] = h
		g.setHelp(name, help)
	}
	return h
}

func (g *Registry) setHelp(name, help string) {
	if help != "" {
		g.help[name] = help
	}
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; zero on a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value float metric.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value; zero on a nil gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into cumulative-on-export buckets with
// Prometheus "le" semantics: an observation v lands in the first bucket
// whose upper bound is >= v, or the implicit +Inf overflow bucket.
type Histogram struct {
	bounds []float64      // ascending upper bounds; +Inf implicit
	counts []atomic.Int64 // len(bounds)+1, non-cumulative
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, or overflow
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations; zero on a nil histogram.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values; zero on a nil histogram.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Snapshot captures the histogram's current state with cumulative
// bucket counts. A nil histogram snapshots to the zero value.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.Sum(),
		Buckets: make([]Bucket, len(h.bounds)+1),
	}
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		s.Buckets[i] = Bucket{UpperBound: ub, Count: cum}
	}
	return s
}

// CounterSnapshot is one counter's exported state.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Help  string `json:"help,omitempty"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge's exported state.
type GaugeSnapshot struct {
	Name  string  `json:"name"`
	Help  string  `json:"help,omitempty"`
	Value float64 `json:"value"`
}

// Bucket is one cumulative histogram bucket: the count of observations
// <= UpperBound. UpperBound +Inf marshals as the JSON string "+Inf".
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// HistogramSnapshot is one histogram's exported state.
type HistogramSnapshot struct {
	Name    string   `json:"name,omitempty"`
	Help    string   `json:"help,omitempty"`
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time capture of a whole registry, sorted by
// metric name — the single source of every exposition format (JSON via
// encoding/json, Prometheus and human text via the Write* methods).
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric. A nil registry returns an empty
// snapshot.
func (g *Registry) Snapshot() Snapshot {
	var s Snapshot
	if g == nil {
		return s
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for name, c := range g.counters {
		s.Counters = append(s.Counters, CounterSnapshot{Name: name, Help: g.help[name], Value: c.Value()})
	}
	for name, v := range g.gauges {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: name, Help: g.help[name], Value: v.Value()})
	}
	for name, h := range g.histograms {
		hs := h.Snapshot()
		hs.Name = name
		hs.Help = g.help[name]
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// CounterValue returns the named counter's value in this snapshot, or
// zero when absent. The one lookup helper shared by every consumer that
// projects a snapshot into a fixed schema (`lzwtc stats`, /v1/stats,
// run records) so the projections cannot drift over which counters
// exist.
func (s Snapshot) CounterValue(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// GaugeValue returns the named gauge's value in this snapshot, or zero
// when absent.
func (s Snapshot) GaugeValue(name string) float64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// HistogramNamed returns the named histogram snapshot and whether it is
// present.
func (s Snapshot) HistogramNamed(name string) (HistogramSnapshot, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramSnapshot{}, false
}
