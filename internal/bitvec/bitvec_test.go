package bitvec

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewAllX(t *testing.T) {
	v := New(100)
	if v.Len() != 100 {
		t.Fatalf("Len = %d", v.Len())
	}
	for i := 0; i < 100; i++ {
		if v.Get(i) != X {
			t.Fatalf("bit %d = %v, want X", i, v.Get(i))
		}
	}
	if v.XCount() != 100 || v.CareCount() != 0 {
		t.Fatalf("XCount=%d CareCount=%d", v.XCount(), v.CareCount())
	}
}

func TestSetGet(t *testing.T) {
	v := New(130) // spans three words
	cases := map[int]Bit{0: One, 1: Zero, 63: One, 64: Zero, 65: One, 127: One, 128: Zero, 129: X}
	for i, b := range cases {
		v.Set(i, b)
	}
	for i, b := range cases {
		if got := v.Get(i); got != b {
			t.Errorf("bit %d = %v, want %v", i, got, b)
		}
	}
	// Overwrite: One -> X -> Zero.
	v.Set(63, X)
	if v.Get(63) != X {
		t.Errorf("bit 63 after X = %v", v.Get(63))
	}
	v.Set(63, Zero)
	if v.Get(63) != Zero {
		t.Errorf("bit 63 after Zero = %v", v.Get(63))
	}
}

func TestParseString(t *testing.T) {
	s := "01X10x-1"
	v, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.String(); got != "01X10XX1" {
		t.Fatalf("String = %q", got)
	}
	if _, err := Parse("012"); err == nil {
		t.Fatal("Parse accepted invalid char")
	}
}

func TestChunkAcrossWords(t *testing.T) {
	v := New(140)
	// Set bits 60..70 to a known pattern: bit 60+j = j%2.
	for j := 0; j <= 10; j++ {
		v.Set(60+j, Bit(j%2))
	}
	val, care := v.Chunk(60, 11)
	if care != (1<<11)-1 {
		t.Fatalf("care = %011b", care)
	}
	if val != 0b10101010101&^1 { // bit j = j%2 -> 0,1,0,1,... LSB-first = 0b...10101010
		// build expected explicitly
		var want uint64
		for j := 0; j <= 10; j++ {
			want |= uint64(j%2) << uint(j)
		}
		if val != want {
			t.Fatalf("val = %011b, want %011b", val, want)
		}
	}
}

func TestChunkPadding(t *testing.T) {
	v := MustParse("101")
	val, care := v.Chunk(2, 7)
	if care != 0b1 {
		t.Fatalf("care = %07b, want 0000001", care)
	}
	if val != 0b1 {
		t.Fatalf("val = %07b, want 0000001", val)
	}
	// Entirely past the end: all X.
	val, care = v.Chunk(10, 64)
	if val != 0 || care != 0 {
		t.Fatalf("past-end chunk: val=%x care=%x", val, care)
	}
}

func TestSetChunk(t *testing.T) {
	v := New(10)
	v.SetChunk(3, 4, 0b1011)
	if got := v.String(); got != "XXX1101XXX" {
		t.Fatalf("String = %q", got)
	}
	// Beyond end is dropped.
	v.SetChunk(8, 4, 0b1111)
	if v.Len() != 10 || v.Get(9) != One {
		t.Fatalf("tail write: %q", v.String())
	}
}

func TestCompatibleWith(t *testing.T) {
	cube := MustParse("1X0X")
	ok := MustParse("1100")
	bad := MustParse("0100")
	partial := MustParse("110X")
	if !cube.CompatibleWith(ok) {
		t.Error("1100 should be compatible with 1X0X")
	}
	if cube.CompatibleWith(bad) {
		t.Error("0100 should not be compatible with 1X0X")
	}
	if cube.CompatibleWith(partial) {
		t.Error("partially specified vector is not a valid fill")
	}
	if cube.CompatibleWith(MustParse("1X0")) {
		t.Error("length mismatch must be incompatible")
	}
}

func TestEqual(t *testing.T) {
	a := MustParse("01X")
	if !a.Equal(MustParse("01X")) || a.Equal(MustParse("011")) || a.Equal(MustParse("01")) {
		t.Fatal("Equal misbehaves")
	}
}

func TestFilledPolicies(t *testing.T) {
	v := MustParse("X1XX0X")
	if got := v.Filled(FillZero).String(); got != "010000" {
		t.Errorf("FillZero = %q", got)
	}
	if got := v.Filled(FillOne).String(); got != "111101" {
		t.Errorf("FillOne = %q", got)
	}
	if got := v.Filled(FillRepeat).String(); got != "011100" {
		t.Errorf("FillRepeat = %q", got)
	}
}

func TestFilledIsCompatible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randomVector(rng, rng.Intn(300)+1, 0.5)
		for _, p := range []FillPolicy{FillZero, FillOne, FillRepeat} {
			c := v.Filled(p)
			if c.XCount() != 0 || !v.CompatibleWith(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcat(t *testing.T) {
	v := Concat(MustParse("01"), MustParse("X1"), MustParse(""), MustParse("0"))
	if got := v.String(); got != "01X10" {
		t.Fatalf("Concat = %q", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := MustParse("0101")
	b := a.Clone()
	b.Set(0, One)
	if a.Get(0) != Zero {
		t.Fatal("Clone shares storage")
	}
}

func TestCubeSetSerializeDeserialize(t *testing.T) {
	cs := NewCubeSet(4)
	for _, s := range []string{"01XX", "1X10", "XXXX"} {
		if err := cs.Add(MustParse(s)); err != nil {
			t.Fatal(err)
		}
	}
	if cs.TotalBits() != 12 {
		t.Fatalf("TotalBits = %d", cs.TotalBits())
	}
	stream := cs.Serialize()
	if got := stream.String(); got != "01XX1X10XXXX" {
		t.Fatalf("Serialize = %q", got)
	}
	back, err := Deserialize(stream, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cs.Cubes {
		if !cs.Cubes[i].Equal(back.Cubes[i]) {
			t.Fatalf("cube %d: %q != %q", i, cs.Cubes[i], back.Cubes[i])
		}
	}
	if _, err := Deserialize(stream, 5); err == nil {
		t.Fatal("Deserialize accepted bad width")
	}
}

func TestCubeSetAddWidthMismatch(t *testing.T) {
	cs := NewCubeSet(4)
	if err := cs.Add(MustParse("011")); err == nil {
		t.Fatal("Add accepted wrong width")
	}
}

func TestReadWriteCubes(t *testing.T) {
	in := "# comment\n01XX\n\n1X10\n"
	cs, err := ReadCubes(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Cubes) != 2 || cs.Width != 4 {
		t.Fatalf("parsed %d cubes width %d", len(cs.Cubes), cs.Width)
	}
	var sb strings.Builder
	if err := cs.WriteCubes(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "01XX\n1X10\n" {
		t.Fatalf("WriteCubes = %q", sb.String())
	}
	if _, err := ReadCubes(strings.NewReader("")); err == nil {
		t.Fatal("ReadCubes accepted empty input")
	}
	if _, err := ReadCubes(strings.NewReader("01\n011\n")); err == nil {
		t.Fatal("ReadCubes accepted ragged widths")
	}
}

func TestXDensity(t *testing.T) {
	cs := NewCubeSet(4)
	cs.Add(MustParse("01XX"))
	cs.Add(MustParse("XXXX"))
	if d := cs.XDensity(); d != 0.75 {
		t.Fatalf("XDensity = %v", d)
	}
	if d := NewCubeSet(4).XDensity(); d != 0 {
		t.Fatalf("empty XDensity = %v", d)
	}
}

// Property: String/Parse round-trips.
func TestQuickStringParse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randomVector(rng, rng.Intn(200), 0.3)
		u, err := Parse(v.String())
		return err == nil && v.Equal(u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Chunk agrees with per-bit Get at arbitrary positions.
func TestQuickChunkGetAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randomVector(rng, rng.Intn(300)+1, 0.4)
		for trial := 0; trial < 20; trial++ {
			pos := rng.Intn(v.Len() + 10)
			n := rng.Intn(65)
			val, care := v.Chunk(pos, n)
			for j := 0; j < n; j++ {
				var want Bit = X
				if pos+j < v.Len() {
					want = v.Get(pos + j)
				}
				gotCare := care >> uint(j) & 1
				gotVal := val >> uint(j) & 1
				switch want {
				case X:
					if gotCare != 0 {
						return false
					}
				default:
					if gotCare != 1 || gotVal != uint64(want) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: XCount + CareCount == Len.
func TestQuickCounts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randomVector(rng, rng.Intn(500), 0.5)
		return v.XCount()+v.CareCount() == v.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randomVector(rng *rand.Rand, n int, xProb float64) *Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < xProb {
			continue
		}
		v.Set(i, Bit(rng.Intn(2)))
	}
	return v
}

func BenchmarkChunk(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	v := randomVector(rng, 1<<16, 0.9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Chunk(i%(1<<16), 7)
	}
}

func TestSerializeAligned(t *testing.T) {
	cs := NewCubeSet(5)
	cs.Add(MustParse("01X10"))
	cs.Add(MustParse("1XXX0"))
	s := cs.SerializeAligned(3) // padded width 6
	if got := s.String(); got != "01X10X1XXX0X" {
		t.Fatalf("aligned = %q", got)
	}
	// Width already aligned: no padding.
	cs2 := NewCubeSet(6)
	cs2.Add(MustParse("010101"))
	if got := cs2.SerializeAligned(3).String(); got != "010101" {
		t.Fatalf("no-pad aligned = %q", got)
	}
	// charBits <= 1 short-circuits.
	if got := cs.SerializeAligned(1).Len(); got != 10 {
		t.Fatalf("charBits=1 len = %d", got)
	}
}

func TestDeserializeAligned(t *testing.T) {
	cs := NewCubeSet(5)
	cs.Add(MustParse("01110"))
	cs.Add(MustParse("10010"))
	concrete := cs.SerializeAligned(3).Filled(FillZero)
	back, err := DeserializeAligned(concrete, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Cubes) != 2 {
		t.Fatalf("got %d cubes", len(back.Cubes))
	}
	for i := range cs.Cubes {
		if !cs.Cubes[i].Equal(back.Cubes[i]) {
			t.Fatalf("cube %d: %q != %q", i, back.Cubes[i], cs.Cubes[i])
		}
	}
	if _, err := DeserializeAligned(concrete, 7, 3); err == nil {
		t.Fatal("bad width accepted")
	}
}

func TestBitByte(t *testing.T) {
	cases := map[Bit]byte{Zero: '0', One: '1', X: 'X'}
	for b, want := range cases {
		if got := b.Byte(); got != want {
			t.Errorf("Bit(%v).Byte() = %q, want %q", b, got, want)
		}
		if s := b.String(); s != string(want) {
			t.Errorf("Bit(%v).String() = %q, want %q", b, s, string(want))
		}
	}
	// Out-of-range values render as X, matching String.
	if got := Bit(99).Byte(); got != 'X' {
		t.Errorf("out-of-range Bit.Byte() = %q, want 'X'", got)
	}
}

// TestSetChunkMatchesPerBit drives the word-parallel SetChunk against a
// per-bit Set reference over random positions, widths and word
// boundaries, including writes clipped by the vector end.
func TestSetChunkMatchesPerBit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(200)
		got, want := New(n), New(n)
		// Random starting state so SetChunk also proves it overwrites.
		for i := 0; i < n; i++ {
			b := Bit(rng.Intn(3))
			got.Set(i, b)
			want.Set(i, b)
		}
		for op := 0; op < 8; op++ {
			pos := rng.Intn(n)
			w := 1 + rng.Intn(64)
			val := rng.Uint64()
			if w < 64 {
				val &= uint64(1)<<uint(w) - 1
			}
			got.SetChunk(pos, w, val)
			for j := 0; j < w && pos+j < n; j++ {
				if val>>uint(j)&1 == 1 {
					want.Set(pos+j, One)
				} else {
					want.Set(pos+j, Zero)
				}
			}
		}
		if !got.Equal(want) {
			t.Fatalf("trial %d: SetChunk diverges from per-bit reference:\n got %s\nwant %s", trial, got, want)
		}
	}
}
