// Package bitvec implements three-valued (0/1/X) bit vectors and test-cube
// sets.
//
// Scan test patterns produced by ATPG are partially specified: every bit is
// 0, 1 or X (don't-care). The compression algorithms in this module consume
// such vectors; the don't-care bits are what the paper's dynamic assignment
// exploits. Vectors are stored two-plane — a value plane and a care plane —
// packed 64 bits per word, so compatibility checks and chunk extraction are
// word operations.
//
// Bit i of a Vector is stored at word i/64, bit position i%64 (LSB-first
// within a word). Chunk(pos, n) returns n stream bits with stream bit pos+j
// at result bit j.
package bitvec

import (
	"bufio"
	"fmt"
	"io"
	"math/bits"
	"strings"

	"lzwtc/internal/invariant"
)

// Bit is a three-valued logic bit.
type Bit uint8

// Three-valued bit constants.
const (
	Zero Bit = iota // specified 0
	One             // specified 1
	X               // unspecified (don't-care)
)

// String returns "0", "1" or "X".
func (b Bit) String() string {
	switch b {
	case Zero:
		return "0"
	case One:
		return "1"
	default:
		return "X"
	}
}

// Byte returns '0', '1' or 'X' — the single-character rendering without
// going through a string, for byte-at-a-time formatters.
func (b Bit) Byte() byte {
	switch b {
	case Zero:
		return '0'
	case One:
		return '1'
	default:
		return 'X'
	}
}

// Vector is a fixed-length three-valued bit vector.
// The zero value is an empty vector.
type Vector struct {
	n    int
	val  []uint64 // value plane; bit forced 0 where care bit is 0
	care []uint64 // care plane; 1 = specified
}

// New returns an all-X vector of length n.
func New(n int) *Vector {
	invariant.Check(n >= 0, "bitvec: negative length %d", n)
	w := (n + 63) / 64
	return &Vector{n: n, val: make([]uint64, w), care: make([]uint64, w)}
}

// Len returns the number of bits in v.
func (v *Vector) Len() int { return v.n }

// Planes exposes the backing value and care plane words for read-only
// word-level access (bit i at word i/64, position i%64; value bits are
// forced 0 where care is 0). Sequential consumers — the compressor's
// character cursor — use it to extract chunks without per-call
// re-validation; mutating the returned slices would corrupt the vector.
func (v *Vector) Planes() (val, care []uint64) { return v.val, v.care }

// Get returns bit i.
func (v *Vector) Get(i int) Bit {
	v.check(i)
	w, b := i/64, uint(i%64)
	if v.care[w]>>b&1 == 0 {
		return X
	}
	return Bit(v.val[w] >> b & 1)
}

// Set assigns bit i.
func (v *Vector) Set(i int, b Bit) {
	v.check(i)
	w, off := i/64, uint(i%64)
	mask := uint64(1) << off
	switch b {
	case Zero:
		v.care[w] |= mask
		v.val[w] &^= mask
	case One:
		v.care[w] |= mask
		v.val[w] |= mask
	default:
		v.care[w] &^= mask
		v.val[w] &^= mask
	}
}

// check bounds-checks an index. The condition is tested inline and the
// invariant call sits in the cold branch: invariant.Check's variadic
// arguments would otherwise box on every Get/Set, which dominates
// allocation in per-bit loops.
func (v *Vector) check(i int) {
	if uint(i) >= uint(v.n) {
		invariant.Violatef("bitvec: index %d out of range [0,%d)", i, v.n)
	}
}

// Chunk extracts n bits (n in [0,64]) starting at stream position pos.
// Stream bit pos+j appears at bit j of the returned value and care words.
// Positions at or beyond Len() read as X (care 0), so a stream may be
// consumed in fixed-size characters with implicit don't-care padding.
func (v *Vector) Chunk(pos, n int) (val, care uint64) {
	if n < 0 || n > 64 {
		invariant.Violatef("bitvec: chunk width %d out of range", n)
	}
	if pos < 0 {
		invariant.Violatef("bitvec: negative chunk position %d", pos)
	}
	val = v.window(v.val, pos)
	care = v.window(v.care, pos)
	if n < 64 {
		mask := uint64(1)<<uint(n) - 1
		val &= mask
		care &= mask
	}
	return val, care
}

// window fetches 64 bits of plane starting at bit pos, zero-extended
// beyond the end of the vector.
func (v *Vector) window(plane []uint64, pos int) uint64 {
	w, off := pos/64, uint(pos%64)
	var lo, hi uint64
	if w < len(plane) {
		lo = plane[w]
	}
	if off == 0 {
		return lo
	}
	if w+1 < len(plane) {
		hi = plane[w+1]
	}
	return lo>>off | hi<<(64-off)
}

// SetChunk assigns n concrete bits starting at position pos: stream bit
// pos+j becomes bit j of val (0 or 1, always specified). Bits beyond Len()
// are silently dropped, mirroring Chunk's X padding. The write is
// word-parallel: one masked update per touched plane word.
func (v *Vector) SetChunk(pos, n int, val uint64) {
	if n < 0 || n > 64 {
		invariant.Violatef("bitvec: chunk width %d out of range", n)
	}
	if pos < 0 {
		invariant.Violatef("bitvec: negative chunk position %d", pos)
	}
	if pos >= v.n {
		return
	}
	if pos+n > v.n {
		n = v.n - pos
	}
	if n == 0 {
		return
	}
	m := ^uint64(0)
	if n < 64 {
		m = uint64(1)<<uint(n) - 1
	}
	val &= m
	w, off := pos/64, uint(pos%64)
	v.care[w] |= m << off
	v.val[w] = v.val[w]&^(m<<off) | val<<off
	if off+uint(n) > 64 {
		hi := m >> (64 - off)
		v.care[w+1] |= hi
		v.val[w+1] = v.val[w+1]&^hi | val>>(64-off)
	}
}

// CareCount returns the number of specified bits.
func (v *Vector) CareCount() int {
	total := 0
	for _, w := range v.care {
		total += popcount(w)
	}
	return total
}

// XCount returns the number of don't-care bits.
func (v *Vector) XCount() int { return v.n - v.CareCount() }

// XDensity returns the fraction of don't-care bits, in [0,1].
// An empty vector has density 0.
func (v *Vector) XDensity() float64 {
	if v.n == 0 {
		return 0
	}
	return float64(v.XCount()) / float64(v.n)
}

// Equal reports whether v and u have the same length and identical bits
// (X compares equal only to X).
func (v *Vector) Equal(u *Vector) bool {
	if v.n != u.n {
		return false
	}
	for i := range v.val {
		if v.care[i] != u.care[i] || v.val[i]&v.care[i] != u.val[i]&u.care[i] {
			return false
		}
	}
	return true
}

// CompatibleWith reports whether concrete u agrees with v on every
// specified bit of v. u must be fully specified and the same length;
// it returns false otherwise. This is the correctness contract for a
// decompressed test stream: every care bit preserved.
func (v *Vector) CompatibleWith(u *Vector) bool {
	if v.n != u.n || u.XCount() != 0 {
		return false
	}
	for i := range v.val {
		if (v.val[i]^u.val[i])&v.care[i] != 0 {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of v.
func (v *Vector) Clone() *Vector {
	c := New(v.n)
	copy(c.val, v.val)
	copy(c.care, v.care)
	return c
}

// FillPolicy selects how residual don't-care bits are concretized.
type FillPolicy uint8

// Fill policies.
const (
	FillZero   FillPolicy = iota // X -> 0 (minimum-transition for RLE)
	FillOne                      // X -> 1
	FillRepeat                   // X -> previous concrete bit (0 at start)
)

// String names the policy.
func (p FillPolicy) String() string {
	switch p {
	case FillZero:
		return "zero"
	case FillOne:
		return "one"
	case FillRepeat:
		return "repeat"
	default:
		return fmt.Sprintf("FillPolicy(%d)", uint8(p))
	}
}

// Filled returns a fully specified copy of v with X bits assigned per
// policy p.
func (v *Vector) Filled(p FillPolicy) *Vector {
	c := v.Clone()
	last := Bit(Zero)
	for i := 0; i < c.n; i++ {
		b := c.Get(i)
		if b == X {
			switch p {
			case FillZero:
				b = Zero
			case FillOne:
				b = One
			case FillRepeat:
				b = last
			}
			c.Set(i, b)
		}
		last = b
	}
	return c
}

// Parse builds a vector from a string of '0', '1', 'X'/'x'/'-'.
func Parse(s string) (*Vector, error) {
	v := New(len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
			v.Set(i, Zero)
		case '1':
			v.Set(i, One)
		case 'X', 'x', '-':
			// already X
		default:
			return nil, fmt.Errorf("bitvec: invalid character %q at position %d", s[i], i)
		}
	}
	return v, nil
}

// MustParse is Parse that panics on error, for tests and literals.
func MustParse(s string) *Vector {
	v, err := Parse(s)
	invariant.Must(err)
	return v
}

// String renders the vector as '0'/'1'/'X' characters.
func (v *Vector) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		sb.WriteString(v.Get(i).String())
	}
	return sb.String()
}

// Concat returns the concatenation of vs as a single vector.
func Concat(vs ...*Vector) *Vector {
	total := 0
	for _, v := range vs {
		total += v.n
	}
	out := New(total)
	pos := 0
	for _, v := range vs {
		for i := 0; i < v.n; i++ {
			if b := v.Get(i); b != X {
				out.Set(pos+i, b)
			}
		}
		pos += v.n
	}
	return out
}

// CubeSet is an ordered collection of equal-width test cubes — the test
// set for one core, one cube per scan pattern.
type CubeSet struct {
	Width int
	Cubes []*Vector
}

// NewCubeSet returns an empty cube set of the given pattern width.
func NewCubeSet(width int) *CubeSet {
	return &CubeSet{Width: width}
}

// Add appends a cube; it must match the set width.
func (cs *CubeSet) Add(v *Vector) error {
	if v.Len() != cs.Width {
		return fmt.Errorf("bitvec: cube width %d != set width %d", v.Len(), cs.Width)
	}
	cs.Cubes = append(cs.Cubes, v)
	return nil
}

// TotalBits returns the uncompressed test-set volume in bits.
func (cs *CubeSet) TotalBits() int { return cs.Width * len(cs.Cubes) }

// XDensity returns the overall don't-care fraction of the set.
func (cs *CubeSet) XDensity() float64 {
	if cs.TotalBits() == 0 {
		return 0
	}
	x := 0
	for _, c := range cs.Cubes {
		x += c.XCount()
	}
	return float64(x) / float64(cs.TotalBits())
}

// Serialize concatenates all cubes into the single scan-in stream the
// compressor consumes (pattern 0 first), matching the paper's
// single-scan-chain evaluation.
func (cs *CubeSet) Serialize() *Vector {
	return Concat(cs.Cubes...)
}

// SerializeAligned is Serialize with every pattern padded (with X bits)
// to the next multiple of charBits, so each scan vector starts on an LZW
// character boundary. This models the decompressor flushing its output
// shifter at the capture cycle between patterns; the pad bits are
// don't-cares and the compressor assigns them freely. Compression ratios
// must still be computed against TotalBits (the unpadded volume).
func (cs *CubeSet) SerializeAligned(charBits int) *Vector {
	if charBits <= 1 || cs.Width%charBits == 0 {
		return cs.Serialize()
	}
	w := (cs.Width + charBits - 1) / charBits * charBits
	out := New(w * len(cs.Cubes))
	for p, c := range cs.Cubes {
		base := p * w
		for i := 0; i < c.Len(); i++ {
			if b := c.Get(i); b != X {
				out.Set(base+i, b)
			}
		}
	}
	return out
}

// DeserializeAligned inverts SerializeAligned: it splits a concrete
// stream produced under charBits alignment back into cubes of the given
// width, dropping the per-pattern pad bits.
func DeserializeAligned(stream *Vector, width, charBits int) (*CubeSet, error) {
	w := width
	if charBits > 1 {
		w = (width + charBits - 1) / charBits * charBits
	}
	if w <= 0 {
		return nil, fmt.Errorf("bitvec: invalid width %d", width)
	}
	if stream.Len()%w != 0 {
		return nil, fmt.Errorf("bitvec: stream length %d not a multiple of padded width %d", stream.Len(), w)
	}
	cs := NewCubeSet(width)
	for pos := 0; pos < stream.Len(); pos += w {
		c := New(width)
		for i := 0; i < width; i++ {
			if b := stream.Get(pos + i); b != X {
				c.Set(i, b)
			}
		}
		cs.Cubes = append(cs.Cubes, c)
	}
	return cs, nil
}

// Deserialize splits a stream back into cubes of the set's width.
// The stream length must be a multiple of Width.
func Deserialize(stream *Vector, width int) (*CubeSet, error) {
	if width <= 0 {
		return nil, fmt.Errorf("bitvec: invalid width %d", width)
	}
	if stream.Len()%width != 0 {
		return nil, fmt.Errorf("bitvec: stream length %d not a multiple of width %d", stream.Len(), width)
	}
	cs := NewCubeSet(width)
	for pos := 0; pos < stream.Len(); pos += width {
		c := New(width)
		for i := 0; i < width; i++ {
			if b := stream.Get(pos + i); b != X {
				c.Set(i, b)
			}
		}
		cs.Cubes = append(cs.Cubes, c)
	}
	return cs, nil
}

// ReadCubes parses a text cube file: one cube per line of '0'/'1'/'X',
// blank lines and lines starting with '#' ignored. All cubes must have
// equal width.
func ReadCubes(r io.Reader) (*CubeSet, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var cs *CubeSet
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		v, err := Parse(s)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if cs == nil {
			cs = NewCubeSet(v.Len())
		}
		if err := cs.Add(v); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cs == nil {
		return nil, fmt.Errorf("bitvec: no cubes in input")
	}
	return cs, nil
}

// WriteCubes writes the set in the text format ReadCubes parses.
func (cs *CubeSet) WriteCubes(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, c := range cs.Cubes {
		if _, err := bw.WriteString(c.String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func popcount(x uint64) int { return bits.OnesCount64(x) }
