package bitvec

import (
	"math/rand"
	"testing"
)

// laneCompatRef is the per-lane reference MatchLanes is checked
// against: lane i survives when every cared query bit is either an X in
// the lane or equal to the lane's stored bit.
func laneCompatRef(val, care uint64, chars, cares []uint64, width int, lanes uint64) uint64 {
	out := uint64(0)
	mask := uint64(1)<<uint(width) - 1
	for i := range chars {
		if lanes>>uint(i)&1 == 0 {
			continue
		}
		ok := true
		for b := 0; b < width; b++ {
			bit := uint64(1) << uint(b)
			if care&bit == 0 || cares[i]&bit == 0 {
				continue
			}
			if (chars[i]^val)&bit&mask != 0 {
				ok = false
				break
			}
		}
		if ok {
			out |= 1 << uint(i)
		}
	}
	return out
}

func TestLaneMaskBounds(t *testing.T) {
	if LaneMask(0) != 0 {
		t.Errorf("LaneMask(0) = %#x", LaneMask(0))
	}
	if LaneMask(1) != 1 {
		t.Errorf("LaneMask(1) = %#x", LaneMask(1))
	}
	if LaneMask(63) != ^uint64(0)>>1 {
		t.Errorf("LaneMask(63) = %#x", LaneMask(63))
	}
	if LaneMask(64) != ^uint64(0) {
		t.Errorf("LaneMask(64) = %#x", LaneMask(64))
	}
	for n := 2; n < 63; n += 13 {
		want := uint64(1)<<uint(n) - 1
		if LaneMask(n) != want {
			t.Errorf("LaneMask(%d) = %#x, want %#x", n, LaneMask(n), want)
		}
	}
}

// TestAppendMatchLanesAgainstReference fills blocks lane by lane with
// random three-valued characters — X-heavy and concrete mixes — and
// checks MatchLanes against the per-lane reference over random queries,
// including care = 0 (every lane survives) and full-care exact queries.
func TestAppendMatchLanesAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, width := range []int{1, 2, 7, 8, 13, 16} {
		mask := uint64(1)<<uint(width) - 1
		for _, fill := range []int{1, 3, 63, 64} {
			valPlane := make([]uint64, width)
			xPlane := make([]uint64, width)
			chars := make([]uint64, fill)
			cares := make([]uint64, fill)
			for i := 0; i < fill; i++ {
				care := rng.Uint64() & mask
				if i%3 == 0 {
					care = mask // concrete lane
				}
				if i%7 == 0 {
					care = 0 // all-X lane
				}
				chars[i] = rng.Uint64() & care
				cares[i] = care
				AppendLane(valPlane, xPlane, uint(i), chars[i], care)
			}
			lanes := LaneMask(fill)
			queries := [][2]uint64{{0, 0}, {0, mask}, {mask, mask}, {chars[0], cares[0] & mask}}
			for q := 0; q < 200; q++ {
				care := rng.Uint64() & mask
				queries = append(queries, [2]uint64{rng.Uint64() & care, care})
			}
			for _, q := range queries {
				val, care := q[0], q[1]
				got := MatchLanes(val, care, valPlane, xPlane, lanes)
				want := laneCompatRef(val, care, chars, cares, width, lanes)
				if got != want {
					t.Fatalf("width=%d fill=%d val=%#x care=%#x: MatchLanes=%#x, ref=%#x",
						width, fill, val, care, got, want)
				}
			}
			// The seed mask bounds the search: excluded lanes never revive.
			if fill > 1 {
				partial := LaneMask(fill - 1)
				if got := MatchLanes(0, 0, valPlane, xPlane, partial); got != partial {
					t.Fatalf("width=%d fill=%d: all-X over partial seed = %#x, want %#x",
						width, fill, got, partial)
				}
			}
		}
	}
}

// TestAppendLaneWidthClip verifies character bits at or beyond the plane
// width are not stored (the planes only describe width bits).
func TestAppendLaneWidthClip(t *testing.T) {
	valPlane := make([]uint64, 4)
	xPlane := make([]uint64, 4)
	AppendLane(valPlane, xPlane, 0, 0xff, 0xff) // bits 4-7 beyond width
	for b, w := range valPlane {
		if w != 1 {
			t.Errorf("valPlane[%d] = %#x, want 1", b, w)
		}
	}
	for b, w := range xPlane {
		if w != 0 {
			t.Errorf("xPlane[%d] = %#x, want 0", b, w)
		}
	}
}
