package bitvec

import (
	"math/bits"

	"lzwtc/internal/invariant"
)

// Bit-sliced plane primitives.
//
// A plane block stores up to 64 three-valued characters ("lanes")
// transposed: plane word b holds bit b of every lane's character, so a
// compatibility question over all 64 lanes is answered with a couple of
// word operations per cared query bit instead of one probe per lane.
// Two plane sets describe a block: the value planes (bit b of lane i's
// character) and the is-X planes (lane i's bit b is a don't-care). The
// core dictionary batches sibling chains into such blocks; these
// primitives are the word kernel underneath.

// LaneMask returns a mask of the n low lanes, n in [0, 64]. It bounds a
// partially filled plane block: lanes at or above n are unused (their
// plane bits may be stale) and must not survive a match.
func LaneMask(n int) uint64 {
	if uint(n) > 64 {
		invariant.Violatef("bitvec: lane count %d out of range [0,64]", n)
	}
	if n == 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(n) - 1
}

// AppendLane ORs one three-valued character into lane `lane` of a plane
// block: bit b of the character is char>>b&1 where care>>b&1 is 1, and a
// don't-care where it is 0. The lane's plane bits must currently be
// clear (a freshly cleared block, or a lane beyond the previous fill) —
// appending is OR-only, touching exactly the set bits of the character
// and its don't-care mask, which is what makes incremental transposition
// cheap. valPlane and xPlane must have equal length (the character width
// in bits); character bits at or beyond that width are not stored.
func AppendLane(valPlane, xPlane []uint64, lane uint, char, care uint64) {
	if lane > 63 {
		invariant.Violatef("bitvec: lane %d out of range [0,63]", lane)
	}
	bit := uint64(1) << lane
	width := LaneMask(len(valPlane)) // reuse: n low *bits*, same arithmetic
	for m := char & width; m != 0; m &= m - 1 {
		valPlane[bits.TrailingZeros64(m)] |= bit
	}
	for m := ^care & width; m != 0; m &= m - 1 {
		xPlane[bits.TrailingZeros64(m)] |= bit
	}
}

// MatchLanes returns the lanes of a plane block whose stored character
// is compatible with the three-valued query (val, care): for every
// query-cared bit b, the lane either stores the same bit value or
// stores a don't-care at b. Query bits outside care impose nothing
// (they are bound by the caller's dynamic assignment), so each cared
// bit costs three word operations:
//
//	mismatch_b = (valPlane[b] XOR broadcast(val_b)) ANDN xPlane[b]
//
// where broadcast(1) is all-ones — lanes differing from val at a cared,
// stored-care position drop out. `lanes` seeds the search (normally
// LaneMask of the block fill); every set bit of care must be below
// len(valPlane). The loop exits early once no lane survives.
func MatchLanes(val, care uint64, valPlane, xPlane []uint64, lanes uint64) uint64 {
	for m := care; m != 0 && lanes != 0; m &= m - 1 {
		b := bits.TrailingZeros64(m)
		bcast := -(val >> uint(b) & 1)
		lanes &^= (valPlane[b] ^ bcast) &^ xPlane[b]
	}
	return lanes
}
