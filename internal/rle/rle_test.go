package rle

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"lzwtc/internal/bitio"
	"lzwtc/internal/bitvec"
)

func TestGolombKnownCodewords(t *testing.T) {
	// M=4: run r encodes as unary(r/4) + 0 + 2-bit remainder.
	cases := []struct {
		r    int
		bits string
	}{
		{0, "000"},
		{3, "011"},
		{4, "1000"},
		{7, "1011"},
		{9, "11001"},
	}
	for _, c := range cases {
		var w writerShim
		encodeGolomb(&w.w, c.r, 4)
		if got := w.String(); got != c.bits {
			t.Errorf("golomb(%d) = %s, want %s", c.r, got, c.bits)
		}
	}
}

func TestFDRKnownCodewords(t *testing.T) {
	// Group A_1 = {0,1}: 00, 01. A_2 = {2..5}: 10xx. A_3 = {6..13}: 110xxx.
	cases := []struct {
		r    int
		bits string
	}{
		{0, "00"},
		{1, "01"},
		{2, "1000"},
		{5, "1011"},
		{6, "110000"},
		{13, "110111"},
	}
	for _, c := range cases {
		var w writerShim
		encodeFDR(&w.w, c.r)
		if got := w.String(); got != c.bits {
			t.Errorf("fdr(%d) = %s, want %s", c.r, got, c.bits)
		}
	}
}

func TestFDRGroupBoundaries(t *testing.T) {
	for _, c := range []struct{ r, k int }{
		{0, 1}, {1, 1}, {2, 2}, {5, 2}, {6, 3}, {13, 3}, {14, 4}, {29, 4}, {30, 5},
	} {
		if got := fdrGroup(c.r); got != c.k {
			t.Errorf("fdrGroup(%d) = %d, want %d", c.r, got, c.k)
		}
	}
}

func TestExtractRuns(t *testing.T) {
	v := bitvec.MustParse("0X01X000100")
	runs, maxRun := extractRuns(v)
	// 0-filled: 00010000100 -> runs 3, 4, 2(trailing)
	want := []int{3, 4, 2}
	if len(runs) != len(want) {
		t.Fatalf("runs = %v, want %v", runs, want)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Fatalf("runs = %v, want %v", runs, want)
		}
	}
	if maxRun != 4 {
		t.Fatalf("maxRun = %d", maxRun)
	}
}

func TestRoundTripEdges(t *testing.T) {
	for _, s := range []string{"1", "0", "01", "10", "0000000", "1111", "001001001", "X", "0X1"} {
		for _, kind := range []Kind{Golomb, FDR} {
			stream := bitvec.MustParse(s)
			res, err := Compress(stream, Config{Kind: kind})
			if err != nil {
				t.Fatal(err)
			}
			dcfg := res.Cfg
			dcfg.M = res.Stats.ChosenM
			out, err := Decompress(res.Data, res.BitLen, dcfg, stream.Len())
			if err != nil {
				t.Fatalf("%s %v: %v", s, kind, err)
			}
			if !stream.Filled(bitvec.FillZero).Equal(out) {
				t.Fatalf("%s %v: got %q", s, kind, out)
			}
		}
	}
}

func TestBestMSelection(t *testing.T) {
	// Uniform long runs of ~32 should select a larger M than short runs.
	long := bitvec.New(33 * 20)
	for i := 32; i < long.Len(); i += 33 {
		long.Set(i, bitvec.One)
	}
	resLong, err := Compress(long, Config{Kind: Golomb})
	if err != nil {
		t.Fatal(err)
	}
	short := bitvec.New(4 * 20)
	for i := 3; i < short.Len(); i += 4 {
		short.Set(i, bitvec.One)
	}
	resShort, err := Compress(short, Config{Kind: Golomb})
	if err != nil {
		t.Fatal(err)
	}
	if resLong.Stats.ChosenM <= resShort.Stats.ChosenM {
		t.Fatalf("M(long runs)=%d <= M(short runs)=%d", resLong.Stats.ChosenM, resShort.Stats.ChosenM)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Kind: Golomb, M: 3}).Validate(); err == nil {
		t.Error("non-power-of-two M accepted")
	}
	if err := (Config{Kind: Golomb, M: 1}).Validate(); err == nil {
		t.Error("M=1 accepted")
	}
	if err := (Config{Kind: Kind(9)}).Validate(); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := (Config{Kind: FDR}).Validate(); err != nil {
		t.Errorf("FDR config rejected: %v", err)
	}
}

func TestDecompressErrors(t *testing.T) {
	if _, err := Decompress(nil, 0, Config{Kind: Golomb}, 4); err == nil {
		t.Error("Golomb decode without M accepted")
	}
	if _, err := Decompress(nil, 0, Config{Kind: Golomb, M: 4}, 4); err == nil {
		t.Error("empty stream accepted")
	}
}

// Property: both coders invert to the FillZero concretization for
// arbitrary cubes.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, useFDR bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(2000)
		v := bitvec.New(n)
		for i := 0; i < n; i++ {
			r := rng.Float64()
			switch {
			case r < 0.8: // X
			case r < 0.95:
				v.Set(i, bitvec.Zero)
			default:
				v.Set(i, bitvec.One)
			}
		}
		cfg := Config{Kind: Golomb}
		if useFDR {
			cfg.Kind = FDR
		}
		res, err := Compress(v, cfg)
		if err != nil {
			return false
		}
		dcfg := cfg
		dcfg.M = res.Stats.ChosenM
		out, err := Decompress(res.Data, res.BitLen, dcfg, n)
		if err != nil {
			return false
		}
		return v.Filled(bitvec.FillZero).Equal(out) && v.CompatibleWith(out) == (n > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: Golomb codeword length is r/M + 1 + log2(M).
func TestQuickGolombLength(t *testing.T) {
	f := func(r uint16, mExp uint8) bool {
		m := 1 << (uint(mExp)%9 + 1)
		var w writerShim
		encodeGolomb(&w.w, int(r), m)
		logM := 0
		for 1<<uint(logM) < m {
			logM++
		}
		return w.w.BitLen() == int(r)/m+1+logM
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGolomb(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1 << 16
	v := bitvec.New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.05 {
			v.Set(i, bitvec.One)
		}
	}
	b.SetBytes(int64(n / 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(v, Config{Kind: Golomb}); err != nil {
			b.Fatal(err)
		}
	}
}

// writerShim renders a bitio.Writer's content as a '0'/'1' string for
// codeword golden tests.
type writerShim struct{ w bitio.Writer }

func (s *writerShim) String() string {
	r := bitio.NewReader(s.w.Bytes(), s.w.BitLen())
	var sb strings.Builder
	for r.Remaining() > 0 {
		b, _ := r.ReadBit()
		sb.WriteByte('0' + byte(b))
	}
	return sb.String()
}

func TestAlternatingKnownStream(t *testing.T) {
	// 000 111 0 11 -> alternating runs 3,3,1,2 starting with a 0-run.
	v := bitvec.MustParse("000111011")
	runs, maxRun := extractAlternatingRuns(v.Filled(bitvec.FillRepeat))
	want := []int{3, 3, 1, 2}
	if len(runs) != len(want) || maxRun != 3 {
		t.Fatalf("runs = %v maxRun = %d", runs, maxRun)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Fatalf("runs = %v, want %v", runs, want)
		}
	}
	// Leading 1 forces an empty first 0-run.
	runs, _ = extractAlternatingRuns(bitvec.MustParse("110"))
	if len(runs) != 3 || runs[0] != 0 || runs[1] != 2 || runs[2] != 1 {
		t.Fatalf("leading-one runs = %v", runs)
	}
}

func TestAlternatingRoundTrip(t *testing.T) {
	for _, s := range []string{"1", "0", "000111011", "1111", "X0X1XX", "01010101", ""} {
		stream := bitvec.MustParse(s)
		res, err := Compress(stream, Config{Kind: Alternating})
		if err != nil {
			t.Fatal(err)
		}
		out, err := Decompress(res.Data, res.BitLen, Config{Kind: Alternating}, stream.Len())
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if !stream.Filled(bitvec.FillRepeat).Equal(out) {
			t.Fatalf("%q: got %q", s, out)
		}
	}
}

// Property: alternating code round-trips to the repeat-filled stream and
// respects care bits.
func TestQuickAlternatingRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(1500)
		v := bitvec.New(n)
		for i := 0; i < n; i++ {
			r := rng.Float64()
			switch {
			case r < 0.7: // X
			case r < 0.9:
				v.Set(i, bitvec.Zero)
			default:
				v.Set(i, bitvec.One)
			}
		}
		res, err := Compress(v, Config{Kind: Alternating})
		if err != nil {
			return false
		}
		out, err := Decompress(res.Data, res.BitLen, Config{Kind: Alternating}, n)
		if err != nil {
			return false
		}
		return v.Filled(bitvec.FillRepeat).Equal(out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
