package rle

import (
	"lzwtc/internal/bitio"
	"lzwtc/internal/bitvec"
)

// Alternating is the alternating run-length code of Chandra &
// Chakrabarty (DAC 2002 — the paper's reference [11]): the stream is
// viewed as alternating runs of 0s and 1s, each run length FDR-coded.
// Don't-cares are filled with the minimum-transition (repeat) policy, which
// maximizes run lengths for this code. The first run is a 0-run by
// convention and may have length zero.
const Alternating Kind = 2

// compressAlternating encodes the repeat-filled stream as alternating
// FDR-coded run lengths.
func compressAlternating(stream *bitvec.Vector, res *Result) {
	filled := stream.Filled(bitvec.FillRepeat)
	runs, maxRun := extractAlternatingRuns(filled)
	res.Stats.Runs = len(runs)
	res.Stats.MaxRun = maxRun
	var w bitio.Writer
	for _, r := range runs {
		encodeFDR(&w, r)
	}
	res.Data, res.BitLen = w.Bytes(), w.BitLen()
}

// extractAlternatingRuns splits a concrete stream into alternating run
// lengths, starting with a (possibly empty) 0-run.
func extractAlternatingRuns(v *bitvec.Vector) (runs []int, maxRun int) {
	cur := bitvec.Zero
	run := 0
	for i := 0; i < v.Len(); i++ {
		b := v.Get(i)
		if b == cur {
			run++
			continue
		}
		runs = append(runs, run)
		if run > maxRun {
			maxRun = run
		}
		cur = b
		run = 1
	}
	if v.Len() > 0 {
		runs = append(runs, run)
		if run > maxRun {
			maxRun = run
		}
	}
	return runs, maxRun
}

// decompressAlternating inverts compressAlternating.
func decompressAlternating(data []byte, bitLen, outBits int) (*bitvec.Vector, error) {
	rd := bitio.NewReader(data, bitLen)
	out := bitvec.New(outBits)
	pos := 0
	cur := bitvec.Zero
	for pos < outBits {
		r, err := decodeFDR(rd)
		if err != nil {
			return nil, err
		}
		for i := 0; i < r && pos < outBits; i++ {
			out.Set(pos, cur)
			pos++
		}
		cur ^= 1
	}
	return out, nil
}
