// Package rle implements the run-length-coding baselines the paper
// compares against in Table 1: Golomb-coded run lengths (Chandra &
// Chakrabarty, the paper's reference [10]) and FDR — frequency-directed
// run-length — codes (reference [11]).
//
// Both coders exploit don't-cares the way those papers do: X bits are
// filled with 0 (minimum-transition fill) so the stream becomes long runs
// of 0s punctuated by 1s, and each run length is entropy-coded.
package rle

import (
	"fmt"
	"math/bits"

	"lzwtc/internal/bitio"
	"lzwtc/internal/bitvec"
	"lzwtc/internal/invariant"
)

// Kind selects the run-length code.
type Kind uint8

// Run-length code families. A third family, Alternating (alternating
// 0/1 runs, FDR-coded — the paper's reference [11]), is defined in
// alternating.go.
const (
	Golomb Kind = iota // unary quotient + fixed remainder, parameter M
	FDR                // frequency-directed run-length groups
)

// String names the code family.
func (k Kind) String() string {
	switch k {
	case Golomb:
		return "golomb"
	case FDR:
		return "fdr"
	case Alternating:
		return "alternating"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Config selects the code and its parameter.
type Config struct {
	Kind Kind
	// M is the Golomb parameter (power of two). 0 selects the best M in
	// {2,4,...,1024} by trial encoding, which is how the comparison
	// papers tune it per test set. Ignored for FDR.
	M int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Kind != Golomb && c.Kind != FDR && c.Kind != Alternating {
		return fmt.Errorf("rle: unknown kind %d", c.Kind)
	}
	if c.Kind == Golomb && c.M != 0 {
		if c.M < 2 || c.M&(c.M-1) != 0 {
			return fmt.Errorf("rle: Golomb M %d must be a power of two >= 2", c.M)
		}
	}
	return nil
}

// Stats summarizes one compression run.
type Stats struct {
	InputBits      int
	CompressedBits int
	Runs           int
	MaxRun         int
	ChosenM        int // Golomb parameter actually used
}

// Ratio returns the compression ratio (1 - compressed/original).
func (s Stats) Ratio() float64 {
	if s.InputBits == 0 {
		return 0
	}
	return 1 - float64(s.CompressedBits)/float64(s.InputBits)
}

// Result is a compressed stream plus its statistics.
type Result struct {
	Cfg       Config
	Data      []byte
	BitLen    int
	InputBits int
	Stats     Stats
}

// Compress encodes a three-valued stream. For Golomb and FDR, X bits
// are 0-filled before run extraction, so the decoded stream is the
// FillZero concretization; Alternating uses the minimum-transition
// (repeat) fill.
func Compress(stream *bitvec.Vector, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &Result{Cfg: cfg, InputBits: stream.Len()}
	res.Stats.InputBits = stream.Len()
	if cfg.Kind == Alternating {
		compressAlternating(stream, res)
		res.Stats.CompressedBits = res.BitLen
		return res, nil
	}
	runs, maxRun := extractRuns(stream)
	res.Stats.Runs = len(runs)
	res.Stats.MaxRun = maxRun

	switch cfg.Kind {
	case Golomb:
		m := cfg.M
		if m == 0 {
			m = bestGolombM(runs)
		}
		res.Stats.ChosenM = m
		var w bitio.Writer
		for _, r := range runs {
			encodeGolomb(&w, r, m)
		}
		res.Data, res.BitLen = w.Bytes(), w.BitLen()
	case FDR:
		var w bitio.Writer
		for _, r := range runs {
			encodeFDR(&w, r)
		}
		res.Data, res.BitLen = w.Bytes(), w.BitLen()
	}
	res.Stats.CompressedBits = res.BitLen
	return res, nil
}

// extractRuns 0-fills the stream and splits it into runs of 0s, each
// terminated by a 1. A trailing run of 0s is emitted with a virtual
// terminator that the decoder truncates away.
func extractRuns(stream *bitvec.Vector) (runs []int, maxRun int) {
	run := 0
	for i := 0; i < stream.Len(); i++ {
		if stream.Get(i) == bitvec.One {
			runs = append(runs, run)
			if run > maxRun {
				maxRun = run
			}
			run = 0
		} else {
			run++
		}
	}
	if run > 0 {
		runs = append(runs, run)
		if run > maxRun {
			maxRun = run
		}
	}
	return runs, maxRun
}

// bestGolombM picks the power-of-two parameter minimizing the encoded
// size over the run-length distribution.
func bestGolombM(runs []int) int {
	bestM, bestBits := 2, int(^uint(0)>>1)
	for m := 2; m <= 1024; m *= 2 {
		total := 0
		logM := bits.Len(uint(m)) - 1
		for _, r := range runs {
			total += r/m + 1 + logM
		}
		if total < bestBits {
			bestM, bestBits = m, total
		}
	}
	return bestM
}

// encodeGolomb writes run length r: quotient r/M in unary (q ones then a
// zero) followed by the log2(M)-bit remainder. M is a power of two >= 2
// (enforced by Config.Validate and bestGolombM), so the remainder width
// log2(M) is in [1,63]; invariant.Width asserts that at run time for
// the bitwidth check.
func encodeGolomb(w *bitio.Writer, r, m int) {
	q := r / m
	for i := 0; i < q; i++ {
		w.WriteBit(1)
	}
	w.WriteBit(0)
	w.WriteBits(uint64(r%m), invariant.Width(bits.Len(uint(m))-1))
}

func decodeGolomb(rd *bitio.Reader, m int) (int, error) {
	q := 0
	for {
		b, err := rd.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 0 {
			break
		}
		q++
	}
	rem, err := rd.ReadBits(invariant.Width(bits.Len(uint(m)) - 1))
	if err != nil {
		return 0, err
	}
	return q*m + int(rem), nil
}

// encodeFDR writes run length r using the FDR group code: group A_k
// covers [2^k - 2, 2^(k+1) - 3] with a k-bit prefix ((k-1) ones then a
// zero) and a k-bit tail, 2k bits total.
func encodeFDR(w *bitio.Writer, r int) {
	k := fdrGroup(r)
	for i := 0; i < k-1; i++ {
		w.WriteBit(1)
	}
	w.WriteBit(0)
	base := 1<<uint(k) - 2
	// fdrGroup grows k only while 2^(k+1) <= r+3, so k < 63 for any
	// in-memory run length; Width asserts the bound at run time.
	w.WriteBits(uint64(r-base), invariant.Width(k))
}

func decodeFDR(rd *bitio.Reader) (int, error) {
	k := 1
	for {
		b, err := rd.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 0 {
			break
		}
		k++
		if k > 62 {
			// The unary prefix is attacker-controlled input; a group
			// index beyond 62 cannot come from a valid encoder and
			// would overflow the run-length arithmetic below.
			return 0, fmt.Errorf("rle: FDR group prefix exceeds 62")
		}
	}
	tail, err := rd.ReadBits(invariant.Width(k))
	if err != nil {
		return 0, err
	}
	return 1<<uint(k) - 2 + int(tail), nil
}

// fdrGroup returns the group index k whose range contains r.
func fdrGroup(r int) int {
	k := 1
	for r > 1<<uint(k+1)-3 {
		k++
	}
	return k
}

// Decompress inverts a compressed stream, returning the fully specified
// 0-filled output of length outBits.
func Decompress(data []byte, bitLen int, cfg Config, outBits int) (*bitvec.Vector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Kind == Alternating {
		return decompressAlternating(data, bitLen, outBits)
	}
	m := cfg.M
	if cfg.Kind == Golomb && m == 0 {
		return nil, fmt.Errorf("rle: Golomb decode requires an explicit M (use Stats.ChosenM)")
	}
	rd := bitio.NewReader(data, bitLen)
	out := bitvec.New(outBits)
	p := 0
	for p < outBits {
		var r int
		var err error
		switch cfg.Kind {
		case Golomb:
			r, err = decodeGolomb(rd, m)
		case FDR:
			r, err = decodeFDR(rd)
		}
		if err != nil {
			return nil, fmt.Errorf("rle: truncated stream at bit %d: %w", p, err)
		}
		for i := 0; i < r && p < outBits; i++ {
			out.Set(p, bitvec.Zero)
			p++
		}
		if p < outBits {
			out.Set(p, bitvec.One)
			p++
		}
		// A virtual terminator past outBits is silently dropped.
	}
	return out, nil
}
