package wire

import (
	"bytes"
	"io"
	"testing"

	"lzwtc/internal/core"
)

// FuzzWireDecode feeds arbitrary bytes to the container reader: it must
// return an error or a well-formed decode, never panic, and its
// allocations are bounded by the input length (the bounded-growth
// payload read), never by hostile length fields.
func FuzzWireDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("LZWW"))
	f.Add([]byte("LZWW\x01"))
	f.Add([]byte("not a container at all"))
	// A valid single-frame container as a mutation seed.
	cfg := core.Config{CharBits: 2, DictSize: 8, EntryBits: 8}
	cs := buildSet(1, 4, 6, 0.5)
	res, err := core.Compress(cs.SerializeAligned(cfg.CharBits), cfg)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Cfg: cfg, Width: 6})
	if err != nil {
		f.Fatal(err)
	}
	if err := w.WriteResult(res, len(cs.Cubes)); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		frames := 0
		for {
			fr, err := r.ReadFrame()
			if err == io.EOF {
				break
			}
			if err != nil {
				return
			}
			frames++
			// A frame the reader accepted satisfies the format bounds.
			if fr.Patterns <= 0 || fr.Patterns > MaxFramePatterns {
				t.Fatalf("accepted frame with pattern count %d", fr.Patterns)
			}
			if len(fr.Codes) > MaxFrameCodes {
				t.Fatalf("accepted frame with %d codes", len(fr.Codes))
			}
			for _, c := range fr.Codes {
				if int(c) >= r.Header().Cfg.DictSize {
					t.Fatalf("accepted out-of-dictionary code %d", c)
				}
			}
		}
		// A cleanly decoded container re-encodes to the same bytes: the
		// format has exactly one representation per logical content.
		// (Only reachable when the fuzzer constructs a fully valid
		// container, CRCs included.)
		_ = frames
	})
}

// FuzzWireRoundTrip builds a compression from fuzzed parameters, sends
// it through a full encode/decode cycle and requires exact equality —
// header, geometry and every code.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(2), uint8(0), uint8(0), uint8(0), uint8(6), uint8(8), uint8(50), uint8(1))
	f.Add(int64(2), uint8(4), uint8(3), uint8(1), uint8(1), uint8(1), uint8(10), uint8(16), uint8(80), uint8(3))
	f.Add(int64(3), uint8(7), uint8(4), uint8(2), uint8(2), uint8(0), uint8(12), uint8(21), uint8(90), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, charBits, dictShift, fill, tie, full, patterns, width, xPct, nFrames uint8) {
		cc := 1 + int(charBits)%8
		dictSize := (1 << cc) << (int(dictShift) % 4)
		cfg := core.Config{
			CharBits:  cc,
			DictSize:  dictSize,
			EntryBits: 4 * cc,
			Fill:      core.FillPolicy(fill % 3),
			Tie:       core.TieBreak(tie % 3),
			Full:      core.FullPolicy(full % 2),
		}
		if err := cfg.Validate(); err != nil {
			t.Skip()
		}
		np := 1 + int(patterns)%12
		wd := 1 + int(width)%24
		frames := 1 + int(nFrames)%3

		var want []*Frame
		var buf bytes.Buffer
		w, err := NewWriter(&buf, Header{Cfg: cfg, Width: wd})
		if err != nil {
			t.Fatal(err)
		}
		for fi := 0; fi < frames; fi++ {
			cs := buildSet(seed+int64(fi), np, wd, float64(xPct%101)/100)
			res, err := core.Compress(cs.SerializeAligned(cc), cfg)
			if err != nil {
				t.Fatal(err)
			}
			fr := &Frame{Patterns: np, InputBits: res.InputBits, Codes: res.Codes}
			if err := w.WriteResult(res, np); err != nil {
				t.Fatal(err)
			}
			want = append(want, fr)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		hdr, got, err := decodeContainer(buf.Bytes())
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if hdr.Cfg != cfg || hdr.Width != wd {
			t.Fatalf("header: got %+v/%d, want %+v/%d", hdr.Cfg, hdr.Width, cfg, wd)
		}
		if len(got) != len(want) {
			t.Fatalf("frames: got %d, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i].Patterns != want[i].Patterns || got[i].InputBits != want[i].InputBits {
				t.Fatalf("frame %d geometry: got %d/%d, want %d/%d",
					i, got[i].Patterns, got[i].InputBits, want[i].Patterns, want[i].InputBits)
			}
			if len(got[i].Codes) != len(want[i].Codes) {
				t.Fatalf("frame %d: got %d codes, want %d", i, len(got[i].Codes), len(want[i].Codes))
			}
			for j := range got[i].Codes {
				if got[i].Codes[j] != want[i].Codes[j] {
					t.Fatalf("frame %d code %d: got %d, want %d", i, j, got[i].Codes[j], want[i].Codes[j])
				}
			}
		}

		// Decoding the same bytes twice is deterministic and the
		// re-encoded container is byte-identical: one representation
		// per logical content.
		var buf2 bytes.Buffer
		w2, err := NewWriter(&buf2, hdr)
		if err != nil {
			t.Fatal(err)
		}
		for _, fr := range got {
			if err := w2.WriteFrame(fr); err != nil {
				t.Fatal(err)
			}
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("re-encoded container differs from original")
		}
	})
}
