package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"lzwtc/internal/bitvec"
	"lzwtc/internal/core"
)

// buildSet makes a deterministic three-valued cube set.
func buildSet(seed int64, patterns, width int, xDensity float64) *bitvec.CubeSet {
	rng := rand.New(rand.NewSource(seed))
	cs := bitvec.NewCubeSet(width)
	for p := 0; p < patterns; p++ {
		v := bitvec.New(width)
		for i := 0; i < width; i++ {
			if rng.Float64() >= xDensity {
				v.Set(i, bitvec.Bit(rng.Intn(2)))
			}
		}
		if err := cs.Add(v); err != nil {
			panic(err)
		}
	}
	return cs
}

// compressSet compresses the set under cfg, as the root API would.
func compressSet(t testing.TB, cs *bitvec.CubeSet, cfg core.Config) *core.Result {
	t.Helper()
	res, err := core.Compress(cs.SerializeAligned(cfg.CharBits), cfg)
	if err != nil {
		t.Fatalf("compress: %v", err)
	}
	return res
}

// encodeContainer writes a whole container: every (result, patterns)
// pair becomes one frame.
func encodeContainer(t testing.TB, hdr Header, frames ...*Frame) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, hdr)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for _, f := range frames {
		if err := w.WriteFrame(f); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

// decodeContainer reads a whole container back.
func decodeContainer(data []byte) (Header, []*Frame, error) {
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return Header{}, nil, err
	}
	var frames []*Frame
	for {
		f, err := r.ReadFrame()
		if err == io.EOF {
			return r.Header(), frames, nil
		}
		if err != nil {
			return Header{}, nil, err
		}
		frames = append(frames, f)
	}
}

var roundTripConfigs = []core.Config{
	{CharBits: 2, DictSize: 4, EntryBits: 8, Full: core.FullReset},
	{CharBits: 2, DictSize: 32, EntryBits: 8},
	{CharBits: 4, DictSize: 128, EntryBits: 16, Full: core.FullReset},
	{CharBits: 4, DictSize: 64, EntryBits: 16, Fill: core.FillOne, Tie: core.TieNewest},
	{CharBits: 4, DictSize: 64, EntryBits: 16, Fill: core.FillRepeat, Tie: core.TieWidest},
	{CharBits: 7, DictSize: 1024, EntryBits: 63},
	{CharBits: 8, DictSize: 256, EntryBits: 64, Full: core.FullReset},
}

func TestRoundTrip(t *testing.T) {
	for _, cfg := range roundTripConfigs {
		cs := buildSet(7, 16, 24, 0.7)
		res := compressSet(t, cs, cfg)
		data := encodeContainer(t, Header{Cfg: cfg, Width: cs.Width},
			&Frame{Patterns: len(cs.Cubes), InputBits: res.InputBits, Codes: res.Codes})

		hdr, frames, err := decodeContainer(data)
		if err != nil {
			t.Fatalf("cfg %+v: decode: %v", cfg, err)
		}
		if hdr.Cfg != cfg || hdr.Width != cs.Width {
			t.Fatalf("cfg %+v: header round trip: got %+v width %d", cfg, hdr.Cfg, hdr.Width)
		}
		if len(frames) != 1 {
			t.Fatalf("cfg %+v: got %d frames, want 1", cfg, len(frames))
		}
		f := frames[0]
		if f.Patterns != len(cs.Cubes) || f.InputBits != res.InputBits {
			t.Fatalf("cfg %+v: frame geometry %d/%d, want %d/%d",
				cfg, f.Patterns, f.InputBits, len(cs.Cubes), res.InputBits)
		}
		if len(f.Codes) != len(res.Codes) {
			t.Fatalf("cfg %+v: got %d codes, want %d", cfg, len(f.Codes), len(res.Codes))
		}
		for i := range f.Codes {
			if f.Codes[i] != res.Codes[i] {
				t.Fatalf("cfg %+v: code %d: got %d, want %d", cfg, i, f.Codes[i], res.Codes[i])
			}
		}
	}
}

func TestMultiFrameRoundTrip(t *testing.T) {
	cfg := core.Config{CharBits: 4, DictSize: 64, EntryBits: 16}
	var frames []*Frame
	want := 0
	for s := int64(0); s < 3; s++ {
		cs := buildSet(100+s, 6, 20, 0.6)
		res := compressSet(t, cs, cfg)
		frames = append(frames, &Frame{Patterns: len(cs.Cubes), InputBits: res.InputBits, Codes: res.Codes})
		want += len(cs.Cubes)
	}
	data := encodeContainer(t, Header{Cfg: cfg, Width: 20}, frames...)
	_, got, err := decodeContainer(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d frames, want 3", len(got))
	}
	total := 0
	for _, f := range got {
		total += f.Patterns
	}
	if total != want {
		t.Fatalf("total patterns %d, want %d", total, want)
	}
}

// container builds the canonical corpus container used by the
// corruption matrix: header + two frames + EOS.
func matrixContainer(t testing.TB) []byte {
	cfg := core.Config{CharBits: 4, DictSize: 64, EntryBits: 16}
	csA := buildSet(21, 8, 20, 0.7)
	csB := buildSet(22, 5, 20, 0.5)
	resA := compressSet(t, csA, cfg)
	resB := compressSet(t, csB, cfg)
	return encodeContainer(t, Header{Cfg: cfg, Width: 20},
		&Frame{Patterns: 8, InputBits: resA.InputBits, Codes: resA.Codes},
		&Frame{Patterns: 5, InputBits: resB.InputBits, Codes: resB.Codes})
}

// TestCorruptionTruncation truncates the container at every byte
// boundary: every proper prefix must fail to decode, and a clean cut
// between regions must read as ErrTruncated (the missing-EOS case).
func TestCorruptionTruncation(t *testing.T) {
	data := matrixContainer(t)
	for n := 0; n < len(data); n++ {
		_, _, err := decodeContainer(data[:n])
		if err == nil {
			t.Fatalf("truncation at byte %d of %d decoded cleanly", n, len(data))
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) &&
			!errors.Is(err, ErrChecksum) && !errors.Is(err, ErrVersion) {
			t.Fatalf("truncation at byte %d: untyped error %v", n, err)
		}
	}
	// A cut exactly between a complete frame and the EOS frame is the
	// subtle case: every CRC present is valid, only the EOS is missing.
	end := len(data) - eosLen(t, data)
	_, _, err := decodeContainer(data[:end])
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("missing EOS frame: got %v, want ErrTruncated", err)
	}
}

// eosLen computes the encoded EOS frame length for the container.
func eosLen(t testing.TB, data []byte) int {
	t.Helper()
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	frames, patterns := 0, 0
	for {
		f, err := r.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		frames++
		patterns += f.Patterns
	}
	return len(encodeEOS(frames, patterns))
}

// TestCorruptionBitFlips flips one bit in every byte of the container:
// each mutation must produce a typed error, never a silent success or
// a panic. This covers every CRC-protected region (header payload,
// frame metadata, frame payload, all CRCs themselves) plus the magic
// and version bytes.
func TestCorruptionBitFlips(t *testing.T) {
	data := matrixContainer(t)
	for pos := 0; pos < len(data); pos++ {
		for bit := 0; bit < 8; bit++ {
			mut := bytes.Clone(data)
			mut[pos] ^= 1 << bit
			_, _, err := decodeContainer(mut)
			if err == nil {
				t.Fatalf("bit flip at byte %d bit %d decoded cleanly", pos, bit)
			}
			switch {
			case errors.Is(err, ErrBadMagic), errors.Is(err, ErrVersion),
				errors.Is(err, ErrChecksum), errors.Is(err, ErrTruncated),
				errors.Is(err, ErrFrameType), errors.Is(err, ErrLimit),
				errors.Is(err, ErrDictFrame):
				// typed wire error: fine ('D' can appear from a marker flip)
			default:
				t.Fatalf("bit flip at byte %d bit %d: unexpected error class %v", pos, bit, err)
			}
		}
	}
}

// TestCorruptionHeaderFields rewrites each header field (with the CRC
// left stale) and asserts ErrChecksum: a mismatched Config can no
// longer slip through as silently garbage output.
func TestCorruptionHeaderFields(t *testing.T) {
	cfg := core.Config{CharBits: 4, DictSize: 64, EntryBits: 16}
	base := Header{Cfg: cfg, Width: 20}
	mutants := []Header{
		{Cfg: core.Config{CharBits: 5, DictSize: 64, EntryBits: 16}, Width: 20},
		{Cfg: core.Config{CharBits: 4, DictSize: 128, EntryBits: 16}, Width: 20},
		{Cfg: core.Config{CharBits: 4, DictSize: 64, EntryBits: 32}, Width: 20},
		{Cfg: core.Config{CharBits: 4, DictSize: 64, EntryBits: 16, Fill: core.FillOne}, Width: 20},
		{Cfg: core.Config{CharBits: 4, DictSize: 64, EntryBits: 16, Tie: core.TieNewest}, Width: 20},
		{Cfg: core.Config{CharBits: 4, DictSize: 64, EntryBits: 16, Full: core.FullReset}, Width: 20},
		{Cfg: cfg, Width: 21},
	}
	data := matrixContainer(t)
	baseHdr := EncodeHeader(base)
	for i, m := range mutants {
		mutHdr := EncodeHeader(m)
		if len(mutHdr) != len(baseHdr) {
			// Field widths changed under varint encoding; splice is not
			// byte-for-byte but the stale CRC must still fail.
			t.Logf("mutant %d: header length changed %d -> %d", i, len(baseHdr), len(mutHdr))
		}
		// Keep the mutated fields but restore the original (now stale) CRC.
		copy(mutHdr[len(mutHdr)-4:], baseHdr[len(baseHdr)-4:])
		mut := append(bytes.Clone(mutHdr), data[len(baseHdr):]...)
		_, _, err := decodeContainer(mut)
		if !errors.Is(err, ErrChecksum) {
			t.Fatalf("header mutant %d: got %v, want ErrChecksum", i, err)
		}
	}
}

// TestTypedErrors pins the first-byte failure classes.
func TestTypedErrors(t *testing.T) {
	data := matrixContainer(t)

	bad := bytes.Clone(data)
	bad[0] = 'X'
	if _, _, err := decodeContainer(bad); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("magic: got %v", err)
	}

	ver := bytes.Clone(data)
	ver[4] = Version + 1
	if _, _, err := decodeContainer(ver); !errors.Is(err, ErrVersion) {
		t.Fatalf("version: got %v", err)
	}

	if _, _, err := decodeContainer(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty: got %v", err)
	}
}

// TestWriterMisuse pins the writer's defensive checks.
func TestWriterMisuse(t *testing.T) {
	cfg := core.Config{CharBits: 4, DictSize: 64, EntryBits: 16}
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, Header{Cfg: core.Config{CharBits: 0}, Width: 8}); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := NewWriter(&buf, Header{Cfg: cfg, Width: 0}); err == nil {
		t.Fatal("zero width accepted")
	}
	w, err := NewWriter(&buf, Header{Cfg: cfg, Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFrame(&Frame{Patterns: 1, InputBits: 8, Codes: []core.Code{64}}); err == nil {
		t.Fatal("out-of-range code accepted")
	}
	if err := w.WriteFrame(&Frame{Patterns: 0, InputBits: 8}); err == nil {
		t.Fatal("zero-pattern frame accepted")
	}
	other := &core.Result{Cfg: core.Config{CharBits: 2, DictSize: 4}}
	if err := w.WriteResult(other, 1); err == nil {
		t.Fatal("config-mismatched result accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFrame(&Frame{Patterns: 1, InputBits: 4, Codes: []core.Code{1}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: got %v, want ErrClosed", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestPackUnpackCodes pins the bit packing against core.Result.Pack,
// the ATE bit order the hardware consumes.
func TestPackUnpackCodes(t *testing.T) {
	cfg := core.Config{CharBits: 4, DictSize: 64, EntryBits: 16}
	cs := buildSet(5, 10, 20, 0.6)
	res := compressSet(t, cs, cfg)
	packed := packCodes(res.Codes, cfg.CodeBits())
	if !bytes.Equal(packed, res.Pack()) {
		t.Fatal("wire packing differs from core.Result.Pack")
	}
	back, err := unpackCodes(packed, len(res.Codes), cfg.CodeBits())
	if err != nil {
		t.Fatalf("unpackCodes: %v", err)
	}
	for i := range back {
		if back[i] != res.Codes[i] {
			t.Fatalf("code %d: got %d, want %d", i, back[i], res.Codes[i])
		}
	}
}

// TestUnpackCodesHostileInputs pins the defensive bounds on the
// code-region decoder: attacker-controlled counts and widths must yield
// typed errors before any count-sized allocation happens, even if a
// future caller forgets the frame-level limits.
func TestUnpackCodesHostileInputs(t *testing.T) {
	data := make([]byte, 16)
	cases := []struct {
		name string
		n    int
		cb   int
		data []byte
		want error
	}{
		{"negative count", -1, 12, data, ErrLimit},
		{"count above MaxFrameCodes", MaxFrameCodes + 1, 12, data, ErrLimit},
		{"zero width", 4, 0, data, ErrLimit},
		{"negative width", 4, -8, data, ErrLimit},
		{"width above 64", 4, 65, data, ErrLimit},
		{"count larger than payload", 32, 12, data, ErrTruncated},
		{"huge count within limit, empty payload", MaxFrameCodes, 64, nil, ErrTruncated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			codes, err := unpackCodes(tc.data, tc.n, tc.cb)
			if !errors.Is(err, tc.want) {
				t.Fatalf("unpackCodes(len=%d, n=%d, cb=%d) err = %v, want %v",
					len(tc.data), tc.n, tc.cb, err, tc.want)
			}
			if codes != nil {
				t.Fatalf("hostile input returned %d codes alongside the error", len(codes))
			}
		})
	}
}
