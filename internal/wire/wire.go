// Package wire is the versioned on-the-wire representation of a
// compressed test stream: the format the ATE channel, the batch output
// files and the lzwtcd network service all speak.
//
// The paper's decompressor consumes a stream of fixed-width C_E-bit
// codes whose meaning depends entirely on the configurator parameters
// (C_C, N, C_MDATA, the fill/tie/reset policies): the same bits
// decompress to different scan data under a different Config, silently.
// A durable representation therefore pins the configuration next to the
// payload and makes every region tamper-evident:
//
//	header  magic "LZWW" | version u8 | uvarint config+geometry | CRC32C
//	dict    'D' | store key (32B) | blob digest (32B) | CRC32C   (optional, at most one)
//	frame   'F' | uvarint patterns, inputBits, nCodes | packed codes | CRC32C
//	...     (one frame per independently decompressible shard)
//	eos     'E' | uvarint frameCount, totalPatterns | CRC32C
//
// The optional dictionary-reference frame names a shared preloaded
// dictionary by content address: the SHA-256 store key identifies which
// dictionary to fetch, and the blob digest (SHA-256 of the canonical
// LZWD encoding) lets the resolver prove it fetched the exact
// dictionary the compressor used. When a 'D' frame is present, every
// data frame was compressed with that preload installed, and a frame
// boundary reinstalls it (FullReset configs therefore cannot carry a
// dictionary reference).
//
// All multi-byte CRCs are big-endian CRC32C (Castagnoli). Every frame
// is independently decompressible — a frame boundary is semantically a
// dictionary FullReset, exactly the shard boundary of the parallel
// engine — so a Reader can stream frames without buffering the file.
// The explicit EOS frame carries the frame and pattern totals, so
// truncation at any byte is always detectable: either a CRC fails, a
// read hits EOF mid-region (ErrTruncated), or the stream ends before
// the EOS frame (ErrTruncated).
//
// Decoding is hostile-input safe: arbitrary bytes produce a typed error
// (ErrBadMagic, ErrVersion, ErrChecksum, ErrTruncated, or a config
// validation error), never a panic, and allocation is bounded by the
// bytes actually read, not by attacker-controlled length fields.
package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"lzwtc/internal/core"
)

// Magic is the 4-byte container signature.
var Magic = [4]byte{'L', 'Z', 'W', 'W'}

// Version is the current format version. Readers reject anything newer.
const Version = 1

// Typed decode errors. Wrapped errors carry position detail; test with
// errors.Is.
var (
	// ErrBadMagic reports a stream that is not a wire container at all.
	ErrBadMagic = errors.New("wire: bad magic (not an LZWW container)")
	// ErrVersion reports a container from a newer (or zero) format version.
	ErrVersion = errors.New("wire: unsupported format version")
	// ErrChecksum reports a CRC32C mismatch in a header or frame.
	ErrChecksum = errors.New("wire: checksum mismatch")
	// ErrTruncated reports a stream that ended mid-region or before the
	// EOS frame.
	ErrTruncated = errors.New("wire: truncated stream")
	// ErrFrameType reports an unknown frame marker byte.
	ErrFrameType = errors.New("wire: unknown frame type")
	// ErrLimit reports a length field exceeding the format's hard bounds.
	ErrLimit = errors.New("wire: length field exceeds format limit")
	// ErrClosed reports a write to a closed Writer.
	ErrClosed = errors.New("wire: writer closed")
	// ErrDictFrame reports a misplaced or repeated dictionary-reference
	// frame, or one on a FullReset container (a frame boundary resets
	// the dictionary, so a preload reference is meaningless there).
	ErrDictFrame = errors.New("wire: invalid dictionary reference frame")
)

// Frame marker bytes.
const (
	frameData = 'F'
	frameEOS  = 'E'
	frameDict = 'D'
)

// DictRefLen is the byte length of each content address in a
// dictionary-reference frame (SHA-256).
const DictRefLen = 32

// DictRef names a shared preloaded dictionary by content address: Key
// locates it in a dictionary store, Digest (SHA-256 of the canonical
// LZWD blob) proves the resolved dictionary is the one the compressor
// used.
type DictRef struct {
	Key    [DictRefLen]byte
	Digest [DictRefLen]byte
}

// encodeDictRef renders the dictionary-reference region.
func encodeDictRef(ref DictRef) []byte {
	b := make([]byte, 0, 1+2*DictRefLen+4)
	b = append(b, frameDict)
	b = append(b, ref.Key[:]...)
	b = append(b, ref.Digest[:]...)
	return binary.BigEndian.AppendUint32(b, crc32.Checksum(b, crcTable))
}

// Format hard bounds: length fields beyond these are rejected before
// any allocation happens. They comfortably exceed every real workload
// (the paper's largest set is ~200k bits) while keeping a hostile
// header from requesting gigabytes.
const (
	// MaxWidth bounds the pattern width carried in the header.
	MaxWidth = 1 << 24
	// MaxFramePatterns bounds one frame's pattern count.
	MaxFramePatterns = 1 << 24
	// MaxFrameCodes bounds one frame's code count.
	MaxFrameCodes = 1 << 26
	// MaxFrameInputBits bounds one frame's unpadded input length.
	MaxFrameInputBits = 1 << 30
	// MaxFrames bounds the container's frame count.
	MaxFrames = 1 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Header is the container preamble: the full configurator state plus
// the original pattern width, everything a decompressor needs with no
// out-of-band knowledge.
type Header struct {
	Cfg   core.Config
	Width int
}

// Frame is one independently decompressible code block: a run of whole
// patterns compressed with a fresh dictionary (a frame boundary is a
// FullReset). Patterns and InputBits carry the original geometry so
// ratios and the decompressor's stop condition need no side channel.
type Frame struct {
	Patterns  int
	InputBits int
	Codes     []core.Code
}

// appendUvarint appends v as a uvarint.
func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

// EncodeHeader renders the header region: magic, version, uvarint
// config + width, CRC32C over all of it.
func EncodeHeader(h Header) []byte {
	b := make([]byte, 0, 32)
	b = append(b, Magic[:]...)
	b = append(b, Version)
	b = appendUvarint(b, uint64(h.Cfg.CharBits))
	b = appendUvarint(b, uint64(h.Cfg.DictSize))
	b = appendUvarint(b, uint64(h.Cfg.EntryBits))
	b = appendUvarint(b, uint64(h.Cfg.Fill))
	b = appendUvarint(b, uint64(h.Cfg.Tie))
	b = appendUvarint(b, uint64(h.Cfg.Full))
	b = appendUvarint(b, uint64(h.Width))
	return binary.BigEndian.AppendUint32(b, crc32.Checksum(b, crcTable))
}

// encodeFrame renders one data frame region.
func encodeFrame(f *Frame, cb int) []byte {
	payload := packCodes(f.Codes, cb)
	b := make([]byte, 0, len(payload)+24)
	b = append(b, frameData)
	b = appendUvarint(b, uint64(f.Patterns))
	b = appendUvarint(b, uint64(f.InputBits))
	b = appendUvarint(b, uint64(len(f.Codes)))
	b = append(b, payload...)
	return binary.BigEndian.AppendUint32(b, crc32.Checksum(b, crcTable))
}

// encodeEOS renders the end-of-stream frame.
func encodeEOS(frames, patterns int) []byte {
	b := make([]byte, 0, 16)
	b = append(b, frameEOS)
	b = appendUvarint(b, uint64(frames))
	b = appendUvarint(b, uint64(patterns))
	return binary.BigEndian.AppendUint32(b, crc32.Checksum(b, crcTable))
}

// packCodes packs fixed-width cb-bit codes MSB-first — the same bit
// order core.Result.Pack emits for the ATE channel.
func packCodes(codes []core.Code, cb int) []byte {
	out := make([]byte, (len(codes)*cb+7)/8)
	bitPos := 0
	for _, c := range codes {
		for i := cb - 1; i >= 0; i-- {
			if c>>uint(i)&1 != 0 {
				out[bitPos>>3] |= 1 << uint(7-bitPos&7)
			}
			bitPos++
		}
	}
	return out
}

// unpackCodes inverts packCodes; data must hold at least n cb-bit codes
// (plus zero padding to the byte boundary). n and cb arrive from the
// decoded stream, so the bounds are re-checked here — the function must
// stay safe even if a future caller forgets the frame-level limits: a
// hostile count must produce a typed error, never a giant allocation or
// an index panic.
func unpackCodes(data []byte, n, cb int) ([]core.Code, error) {
	if n < 0 || n > MaxFrameCodes {
		return nil, fmt.Errorf("%w: code count %d", ErrLimit, n)
	}
	if cb <= 0 || cb > 64 {
		return nil, fmt.Errorf("%w: code width %d", ErrLimit, cb)
	}
	if (n*cb+7)/8 > len(data) {
		return nil, fmt.Errorf("%w: %d %d-bit codes need %d bytes, have %d",
			ErrTruncated, n, cb, (n*cb+7)/8, len(data))
	}
	codes := make([]core.Code, n)
	bitPos := 0
	for i := range codes {
		var v core.Code
		for j := 0; j < cb; j++ {
			v <<= 1
			if data[bitPos>>3]>>uint(7-bitPos&7)&1 != 0 {
				v |= 1
			}
			bitPos++
		}
		codes[i] = v
	}
	return codes, nil
}

// Writer streams a container to an io.Writer: header up front, one
// region per WriteFrame, EOS on Close. Writer does not buffer beyond
// the frame being encoded, so arbitrarily many frames stream in
// constant memory.
type Writer struct {
	w         io.Writer
	hdr       Header
	cb        int
	frames    int
	patterns  int
	wroteDict bool
	closed    bool
	err       error
}

// NewWriter validates the header and writes it to w.
func NewWriter(w io.Writer, hdr Header) (*Writer, error) {
	if err := hdr.Cfg.Validate(); err != nil {
		return nil, err
	}
	if hdr.Width <= 0 || hdr.Width > MaxWidth {
		return nil, fmt.Errorf("wire: pattern width %d out of range [1,%d]", hdr.Width, MaxWidth)
	}
	if _, err := w.Write(EncodeHeader(hdr)); err != nil {
		return nil, err
	}
	return &Writer{w: w, hdr: hdr, cb: hdr.Cfg.CodeBits()}, nil
}

// Header returns the header the Writer was opened with.
func (w *Writer) Header() Header { return w.hdr }

// WriteDictRef writes the dictionary-reference frame. It must precede
// every data frame, may appear at most once, and is rejected on a
// FullReset container (frame boundaries reset the dictionary there, so
// data frames could never see the preload).
func (w *Writer) WriteDictRef(ref DictRef) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return ErrClosed
	}
	if w.wroteDict {
		return fmt.Errorf("%w: already written", ErrDictFrame)
	}
	if w.frames > 0 {
		return fmt.Errorf("%w: must precede data frames", ErrDictFrame)
	}
	if w.hdr.Cfg.Full == core.FullReset {
		return fmt.Errorf("%w: FullReset container cannot reference a dictionary", ErrDictFrame)
	}
	if _, err := w.w.Write(encodeDictRef(ref)); err != nil {
		w.err = err
		return err
	}
	w.wroteDict = true
	return nil
}

// WriteFrame appends one data frame. The frame's codes must fit the
// header's code width (guaranteed when they come from a compression
// under the same Config).
func (w *Writer) WriteFrame(f *Frame) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return ErrClosed
	}
	if f.Patterns <= 0 || f.Patterns > MaxFramePatterns {
		return fmt.Errorf("wire: frame pattern count %d out of range [1,%d]", f.Patterns, MaxFramePatterns)
	}
	if f.InputBits < 0 || f.InputBits > MaxFrameInputBits {
		return fmt.Errorf("wire: frame input bits %d out of range [0,%d]", f.InputBits, MaxFrameInputBits)
	}
	if len(f.Codes) > MaxFrameCodes {
		return fmt.Errorf("wire: frame code count %d exceeds %d", len(f.Codes), MaxFrameCodes)
	}
	if w.frames+1 > MaxFrames {
		return fmt.Errorf("wire: frame count exceeds %d", MaxFrames)
	}
	for i, c := range f.Codes {
		if int(c) >= w.hdr.Cfg.DictSize {
			return fmt.Errorf("wire: frame code %d = %d exceeds dictionary size %d", i, c, w.hdr.Cfg.DictSize)
		}
	}
	if _, err := w.w.Write(encodeFrame(f, w.cb)); err != nil {
		w.err = err
		return err
	}
	w.frames++
	w.patterns += f.Patterns
	return nil
}

// WriteResult appends one compressed stream as a frame, checking that
// it was produced under the Writer's configuration.
func (w *Writer) WriteResult(res *core.Result, patterns int) error {
	if res.Cfg != w.hdr.Cfg {
		return fmt.Errorf("wire: result config %+v differs from container config %+v", res.Cfg, w.hdr.Cfg)
	}
	return w.WriteFrame(&Frame{Patterns: patterns, InputBits: res.InputBits, Codes: res.Codes})
}

// Close writes the EOS frame. Further writes fail with ErrClosed;
// closing twice is a no-op.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	w.closed = true
	if _, err := w.w.Write(encodeEOS(w.frames, w.patterns)); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Reader streams a container from an io.Reader: the header is parsed
// and validated by NewReader, then ReadFrame yields data frames until
// the EOS frame, after which it returns io.EOF. A stream that ends
// before its EOS frame yields ErrTruncated.
type Reader struct {
	r        *bufio.Reader
	hdr      Header
	cb       int
	frames   int
	patterns int
	dictRef  *DictRef
	done     bool
	err      error
}

// NewReader reads and validates the container header.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	raw := make([]byte, 0, 32)

	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: magic: %v", truncErr(err), err)
	}
	if !bytes.Equal(magic, Magic[:]) {
		return nil, ErrBadMagic
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: version: %v", truncErr(err), err)
	}
	raw = append(raw, magic...)
	raw = append(raw, version)
	if version != Version {
		return nil, fmt.Errorf("%w: got %d, support <= %d", ErrVersion, version, Version)
	}

	var fields [7]uint64
	for i := range fields {
		v, consumed, err := readUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: header field %d: %v", truncErr(err), i, err)
		}
		fields[i] = v
		raw = append(raw, consumed...)
	}
	if err := checkCRC(br, raw, "header"); err != nil {
		return nil, err
	}

	hdr := Header{
		Cfg: core.Config{
			CharBits:  clampInt(fields[0]),
			DictSize:  clampInt(fields[1]),
			EntryBits: clampInt(fields[2]),
			Fill:      core.FillPolicy(fields[3]),
			Tie:       core.TieBreak(fields[4]),
			Full:      core.FullPolicy(fields[5]),
		},
		Width: clampInt(fields[6]),
	}
	if fields[3] > uint64(core.FillRepeat) || fields[4] > uint64(core.TieWidest) || fields[5] > uint64(core.FullReset) {
		return nil, fmt.Errorf("wire: unknown policy in header (fill=%d tie=%d full=%d)", fields[3], fields[4], fields[5])
	}
	if err := hdr.Cfg.Validate(); err != nil {
		return nil, err
	}
	if hdr.Width <= 0 || hdr.Width > MaxWidth {
		return nil, fmt.Errorf("%w: pattern width %d", ErrLimit, hdr.Width)
	}
	return &Reader{r: br, hdr: hdr, cb: hdr.Cfg.CodeBits()}, nil
}

// Header returns the parsed container header.
func (r *Reader) Header() Header { return r.hdr }

// DictRef returns the container's dictionary reference, if any. The
// 'D' frame precedes all data frames, so after the first ReadFrame the
// answer is final.
func (r *Reader) DictRef() (DictRef, bool) {
	if r.dictRef == nil {
		return DictRef{}, false
	}
	return *r.dictRef, true
}

// Frames returns the number of data frames read so far.
func (r *Reader) Frames() int { return r.frames }

// Patterns returns the total patterns across frames read so far.
func (r *Reader) Patterns() int { return r.patterns }

// ReadFrame returns the next data frame, or io.EOF after a valid EOS
// frame. Every other outcome is an error: ErrTruncated when the stream
// ends early, ErrChecksum on corruption, ErrFrameType on an unknown
// marker.
func (r *Reader) ReadFrame() (*Frame, error) {
	if r.err != nil {
		return nil, r.err
	}
	if r.done {
		return nil, io.EOF
	}
	f, err := r.readFrame()
	if err != nil && err != io.EOF {
		r.err = err
	}
	return f, err
}

func (r *Reader) readFrame() (*Frame, error) {
	marker, err := r.r.ReadByte()
	if err != nil {
		// EOF between frames still means truncation: a complete
		// container always ends with an EOS frame.
		return nil, fmt.Errorf("%w: stream ended before EOS frame", ErrTruncated)
	}
	raw := []byte{marker}
	switch marker {
	case frameData:
		return r.readDataFrame(raw)
	case frameEOS:
		return nil, r.readEOSFrame(raw)
	case frameDict:
		if err := r.readDictFrame(raw); err != nil {
			return nil, err
		}
		// The dictionary reference is metadata, not a data frame:
		// continue to whatever follows it.
		return r.readFrame()
	default:
		return nil, fmt.Errorf("%w: 0x%02x at frame %d", ErrFrameType, marker, r.frames)
	}
}

// readDictFrame parses and validates the dictionary-reference region.
func (r *Reader) readDictFrame(raw []byte) error {
	if r.dictRef != nil {
		return fmt.Errorf("%w: repeated", ErrDictFrame)
	}
	if r.frames > 0 {
		return fmt.Errorf("%w: after data frame %d", ErrDictFrame, r.frames-1)
	}
	if r.hdr.Cfg.Full == core.FullReset {
		return fmt.Errorf("%w: FullReset container cannot reference a dictionary", ErrDictFrame)
	}
	var body [2 * DictRefLen]byte
	if n, err := io.ReadFull(r.r, body[:]); err != nil {
		return fmt.Errorf("%w: dict frame body: got %d of %d bytes", ErrTruncated, n, len(body))
	}
	raw = append(raw, body[:]...)
	if err := checkCRC(r.r, raw, "dict frame"); err != nil {
		return err
	}
	ref := &DictRef{}
	copy(ref.Key[:], body[:DictRefLen])
	copy(ref.Digest[:], body[DictRefLen:])
	r.dictRef = ref
	return nil
}

func (r *Reader) readDataFrame(raw []byte) (*Frame, error) {
	if r.frames+1 > MaxFrames {
		return nil, fmt.Errorf("%w: more than %d frames", ErrLimit, MaxFrames)
	}
	var fields [3]uint64
	for i := range fields {
		v, consumed, err := readUvarint(r.r)
		if err != nil {
			return nil, fmt.Errorf("%w: frame %d field %d: %v", truncErr(err), r.frames, i, err)
		}
		fields[i] = v
		raw = append(raw, consumed...)
	}
	patterns, inputBits, nCodes := fields[0], fields[1], fields[2]
	if patterns == 0 || patterns > MaxFramePatterns {
		return nil, fmt.Errorf("%w: frame %d pattern count %d", ErrLimit, r.frames, patterns)
	}
	if inputBits > MaxFrameInputBits {
		return nil, fmt.Errorf("%w: frame %d input bits %d", ErrLimit, r.frames, inputBits)
	}
	if nCodes > MaxFrameCodes {
		return nil, fmt.Errorf("%w: frame %d code count %d", ErrLimit, r.frames, nCodes)
	}
	payloadLen := (int(nCodes)*r.cb + 7) / 8
	// Read the payload through a bounded-growth buffer: allocation
	// tracks bytes actually present in the stream, so a hostile nCodes
	// with a short body cannot force a giant up-front allocation.
	var payload bytes.Buffer
	if n, err := io.CopyN(&payload, r.r, int64(payloadLen)); err != nil {
		return nil, fmt.Errorf("%w: frame %d payload: got %d of %d bytes", ErrTruncated, r.frames, n, payloadLen)
	}
	raw = append(raw, payload.Bytes()...)
	if err := checkCRC(r.r, raw, fmt.Sprintf("frame %d", r.frames)); err != nil {
		return nil, err
	}
	codes, err := unpackCodes(payload.Bytes(), int(nCodes), r.cb)
	if err != nil {
		return nil, fmt.Errorf("frame %d: %w", r.frames, err)
	}
	f := &Frame{
		Patterns:  int(patterns),
		InputBits: int(inputBits),
		Codes:     codes,
	}
	for i, c := range f.Codes {
		if int(c) >= r.hdr.Cfg.DictSize {
			return nil, fmt.Errorf("wire: frame %d code %d = %d exceeds dictionary size %d", r.frames, i, c, r.hdr.Cfg.DictSize)
		}
	}
	r.frames++
	r.patterns += f.Patterns
	return f, nil
}

// readEOSFrame validates the EOS totals and returns io.EOF on success.
func (r *Reader) readEOSFrame(raw []byte) error {
	var fields [2]uint64
	for i := range fields {
		v, consumed, err := readUvarint(r.r)
		if err != nil {
			return fmt.Errorf("%w: EOS field %d: %v", truncErr(err), i, err)
		}
		fields[i] = v
		raw = append(raw, consumed...)
	}
	if err := checkCRC(r.r, raw, "EOS frame"); err != nil {
		return err
	}
	if int(fields[0]) != r.frames || int(fields[1]) != r.patterns {
		return fmt.Errorf("%w: EOS totals %d frames/%d patterns, read %d/%d",
			ErrTruncated, fields[0], fields[1], r.frames, r.patterns)
	}
	r.done = true
	return io.EOF
}

// checkCRC reads the 4-byte big-endian CRC32C that terminates a region
// and verifies it against the raw bytes read so far.
func checkCRC(r io.Reader, raw []byte, region string) error {
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return fmt.Errorf("%w: %s checksum: %v", truncErr(err), region, err)
	}
	want := binary.BigEndian.Uint32(sum[:])
	if got := crc32.Checksum(raw, crcTable); got != want {
		return fmt.Errorf("%w: %s: computed %08x, stored %08x", ErrChecksum, region, got, want)
	}
	return nil
}

// readUvarint reads a uvarint and also returns the exact bytes
// consumed, for CRC accumulation.
func readUvarint(r *bufio.Reader) (uint64, []byte, error) {
	var consumed []byte
	var v uint64
	var shift uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := r.ReadByte()
		if err != nil {
			return 0, nil, err
		}
		consumed = append(consumed, b)
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, nil, fmt.Errorf("uvarint overflows 64 bits")
			}
			return v | uint64(b)<<shift, consumed, nil
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, nil, fmt.Errorf("uvarint too long")
}

// truncErr maps read errors onto ErrTruncated: any EOF (or short read)
// while inside a region means the stream ended early.
func truncErr(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return ErrTruncated
	}
	return ErrTruncated // non-EOF read errors still surface via %v detail
}

// clampInt converts a header uvarint to int, saturating instead of
// wrapping on 32-bit overflow so validation sees an out-of-range value
// rather than a negative one.
func clampInt(v uint64) int {
	if v > 1<<31-1 {
		return 1<<31 - 1
	}
	return int(v)
}
