package experiments

// Published values, reconstructed from the paper. The available text of
// the paper is an OCR capture that systematically drops '0' digits
// ("8.69%" for "80.69%"); the values below are the documented
// reconstruction used as reproduction targets in EXPERIMENTS.md. They
// are reference points for the *shape* of each table, not exact-match
// goals: the workload substrate here is a calibrated generator, not the
// authors' TetraMAX vectors (see DESIGN.md section 5).

// PaperTable1 maps circuit -> [LZW, LZ77, RLE] compression ratios.
var PaperTable1 = map[string][3]float64{
	"s13207": {0.8069, 0.8045, 0.8030},
	"s15850": {0.7626, 0.6190, 0.6583},
	"s38417": {0.7060, 0.6056, 0.6055},
	"s38584": {0.7504, 0.5997, 0.6030},
	"s9234":  {0.7067, 0.3766, 0.4496},
}

// PaperTable2 maps circuit -> [4x, 8x, 10x] download improvements.
// The 4x column survives only as "about only 50%" in the prose; the 8x
// and 10x columns are legible.
var PaperTable2 = map[string][3]float64{
	"s13207": {0.50, 0.6769, 0.7085},
	"s15850": {0.50, 0.6279, 0.6570},
	"s38417": {0.50, 0.5546, 0.5799},
	"s38584": {0.50, 0.6083, 0.6308},
	"s9234":  {0.50, 0.5734, 0.5997},
}

// PaperTable3X maps circuit -> published don't-care density.
var PaperTable3X = map[string]float64{
	"s13207": 0.9350, "s15850": 0.8356, "s35932": 0.3530, "s38417": 0.6880,
	"s38584": 0.8228, "s5378": 0.7262, "s9234": 0.7300,
	"b14": 0.9240, "b15": 0.9080, "b17": 0.8240, "b20": 0.9200, "b22": 0.9060,
}

// PaperTable5 maps circuit -> compression at C_MDATA {63,127,255,511}.
var PaperTable5 = map[string][4]float64{
	"s13207": {0.7950, 0.8820, 0.9056, 0.9253},
	"s15850": {0.7479, 0.8089, 0.8160, 0.8160},
	"s38417": {0.6554, 0.6647, 0.6647, 0.6647},
	"s38584": {0.6480, 0.6526, 0.6526, 0.6526},
	"s9234":  {0.6944, 0.7354, 0.7388, 0.7388},
}

// PaperLongestString maps circuit -> the longest uncompressed string
// demand in bits. Only the s13207 value (483, from the Section 6 sizing
// example) survives the OCR unambiguously.
var PaperLongestString = map[string]int{
	"s13207": 483,
}
