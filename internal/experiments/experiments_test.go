package experiments

import (
	"fmt"
	"strings"
	"testing"

	"lzwtc/internal/bench"
)

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	if !strings.HasSuffix(s, "%") {
		t.Fatalf("not a percentage: %q", s)
	}
	var v float64
	if _, err := fmtSscanf(s, &v); err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v / 100
}

func fmtSscanf(s string, v *float64) (int, error) {
	return sscanf(s, v)
}

func TestTable1ShapeLZWWins(t *testing.T) {
	if testing.Short() {
		t.Skip("full workloads in -short mode")
	}
	tb, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		lzw := parsePct(t, row[1])
		l7 := parsePct(t, row[2])
		rl := parsePct(t, row[3])
		// The headline shape: LZW wins every row.
		if lzw <= l7 || lzw <= rl {
			t.Errorf("%s: LZW %.4f does not beat LZ77 %.4f / RLE %.4f", row[0], lzw, l7, rl)
		}
		// And lands in the published band (0.55..0.90 across circuits).
		if lzw < 0.55 || lzw > 0.90 {
			t.Errorf("%s: LZW %.4f outside plausible band", row[0], lzw)
		}
	}
}

func TestTable2ShapeImprovesWithClock(t *testing.T) {
	if testing.Short() {
		t.Skip("full workloads in -short mode")
	}
	tb, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		i4 := parsePct(t, row[2])
		i8 := parsePct(t, row[3])
		i10 := parsePct(t, row[4])
		if !(i4 < i8 && i8 < i10) {
			t.Errorf("%s: improvement not monotone: %.4f %.4f %.4f", row[0], i4, i8, i10)
		}
		if i10 <= 0 {
			t.Errorf("%s: no improvement at 10x", row[0])
		}
	}
}

func TestTable4ShapeCollapsesAtTen(t *testing.T) {
	if testing.Short() {
		t.Skip("full workloads in -short mode")
	}
	tb, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		c1 := parsePct(t, row[1])
		c7 := parsePct(t, row[3])
		c10 := parsePct(t, row[4])
		// With 2^10 literals filling the whole dictionary there are no
		// compressed codes left: the ratio collapses to ~0 (slightly
		// negative from per-pattern alignment padding).
		if c10 > 0.01 || c10 < -0.05 {
			t.Errorf("%s: C_C=10 with N=1024 should collapse to ~0, got %.4f", row[0], c10)
		}
		if c7 <= c1 {
			t.Errorf("%s: compression should improve from C_C=1 (%.4f) to 7 (%.4f)", row[0], c1, c7)
		}
	}
}

func TestTable5ShapeMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("full workloads in -short mode")
	}
	tb, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		prev := -1.0
		for _, cell := range row[1:] {
			v := parsePct(t, cell)
			if v+1e-9 < prev {
				t.Errorf("%s: compression fell with larger entries: %v", row[0], row)
				break
			}
			prev = v
		}
	}
}

func TestTable6LongestStringExplainsKnee(t *testing.T) {
	if testing.Short() {
		t.Skip("full workloads in -short mode")
	}
	tb, err := Table6()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		prev := -1.0
		for _, cell := range row[2:] {
			v := parsePct(t, cell)
			if v+1e-9 < prev {
				t.Errorf("%s: performance fell with larger entries: %v", row[0], row)
				break
			}
			prev = v
		}
	}
}

func TestFiguresRender(t *testing.T) {
	for _, name := range []string{"figure3", "figure4", "figure5", "figure6"} {
		tb, err := Run(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tb.Rows) == 0 {
			t.Fatalf("%s: empty", name)
		}
		if tb.String() == "" || tb.Markdown() == "" {
			t.Fatalf("%s: empty rendering", name)
		}
	}
}

func TestFigure4ReconstructsInput(t *testing.T) {
	tb, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.Note, "matches input: true") {
		t.Fatalf("figure 4 round trip failed: %s", tb.Note)
	}
}

func TestRunDispatch(t *testing.T) {
	if _, err := Run("table9"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if len(Names()) != 12 {
		t.Fatalf("Names = %v", Names())
	}
}

func TestConfigsMatchPaper(t *testing.T) {
	p, err := bench.ByName("s13207")
	if err != nil {
		t.Fatal(err)
	}
	cfg := LZWConfig(p)
	if cfg.CharBits != 7 || cfg.DictSize != 1024 || cfg.EntryBits != 63 {
		t.Fatalf("cfg = %+v", cfg)
	}
	l7 := LZ77Config(p)
	if l7.Window() < p.ScanLen {
		t.Fatalf("LZ77 window %d smaller than scan chain %d", l7.Window(), p.ScanLen)
	}
}

// sscanf parses "80.69%" into a fraction-less percentage value.
func sscanf(s string, v *float64) (int, error) {
	return fmt.Sscanf(strings.TrimSuffix(s, "%"), "%f", v)
}

// TestFigure3Trace pins the worked compression example step by step
// (the Figure 3 golden trace).
func TestFigure3Trace(t *testing.T) {
	tb, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{
		{"a)", "", "", "0", "0"},
		{"b)", "0", "2(00)", "0", "0"},
		{"c)", "0", "3(01)", "1", "1"},
		{"d)", "1", "4(10)", "0", "0"},
		{"e)", "", "", "2", "0"},
		{"f)", "2", "5(001)", "1", "1"},
		{"g)", "", "", "4", "0"},
		{"h)", "4", "6(100)", "0", "0"},
		{"i)", "", "", "3", "1"},
		{"j)", "3", "", "3", ""},
	}
	if len(tb.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d:\n%s", len(tb.Rows), len(want), tb)
	}
	for i, row := range want {
		for j, cell := range row {
			if tb.Rows[i][j] != cell {
				t.Fatalf("row %d col %d = %q, want %q\n%s", i, j, tb.Rows[i][j], cell, tb)
			}
		}
	}
}

// TestFigure4Trace pins the worked decompression example, including the
// dictionary build-up.
func TestFigure4Trace(t *testing.T) {
	tb, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{
		{"a)", "0", "", "", "0"},
		{"b)", "0", "2(00)", "0", "0"},
		{"c)", "1", "3(01)", "0", "1"},
		{"d)", "00", "4(10)", "1", "2"},
		{"e)", "10", "5(001)", "2", "4"},
		{"f)", "01", "6(100)", "4", "3"},
	}
	if len(tb.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d:\n%s", len(tb.Rows), len(want), tb)
	}
	for i, row := range want {
		for j, cell := range row {
			if tb.Rows[i][j] != cell {
				t.Fatalf("row %d col %d = %q, want %q\n%s", i, j, tb.Rows[i][j], cell, tb)
			}
		}
	}
}

func TestExtensionExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full workloads in -short mode")
	}
	tb, err := Baselines()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 12 || len(tb.Headers) != 7 {
		t.Fatalf("baselines shape: %d rows x %d cols", len(tb.Rows), len(tb.Headers))
	}
	// LZW must beat the baselines the paper compared against (LZ77 and
	// Golomb) on every circuit.
	for _, row := range tb.Rows {
		lzw := parsePct(t, row[1])
		if l7 := parsePct(t, row[2]); lzw <= l7 {
			t.Errorf("%s: LZW %.4f <= LZ77 %.4f", row[0], lzw, l7)
		}
		if gl := parsePct(t, row[3]); lzw <= gl {
			t.Errorf("%s: LZW %.4f <= Golomb %.4f", row[0], lzw, gl)
		}
	}
}

// TestTable1NearPaperValues asserts the measured LZW column lands near
// the reconstructed published values (the substituted workload justifies
// a generous tolerance; the shape tests above are the hard assertions).
func TestTable1NearPaperValues(t *testing.T) {
	if testing.Short() {
		t.Skip("full workloads in -short mode")
	}
	tb, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		paper, ok := PaperTable1[row[0]]
		if !ok {
			t.Fatalf("no paper row for %s", row[0])
		}
		lzw := parsePct(t, row[1])
		if diff := lzw - paper[0]; diff > 0.12 || diff < -0.12 {
			t.Errorf("%s: measured LZW %.4f vs paper %.4f (diff %.4f)", row[0], lzw, paper[0], diff)
		}
	}
}
