package experiments

import (
	"fmt"

	"lzwtc/internal/bitvec"
	"lzwtc/internal/core"
	"lzwtc/internal/decomp"
	"lzwtc/internal/mem"
	"lzwtc/internal/report"
)

// FigureExample is the worked example used for Figures 3-5: a 1-bit
// character stream, as in the paper's illustration, long enough to
// exercise dictionary creation, dictionary hits and the final flush.
const FigureExample = "001001001"

// figureConfig is the 1-bit-character dictionary of the worked example.
func figureConfig() core.Config {
	return core.Config{CharBits: 1, DictSize: 16, EntryBits: 8}
}

// Figure3 regenerates the LZW compression table representation: one row
// per step with the Buffer and Input registers, the compressed output
// and the dictionary entries as they are created.
func Figure3() (*report.Table, error) {
	t := &report.Table{
		Title:   fmt.Sprintf("Figure 3. LZW compression table representation (input %s, C_C=1)", FigureExample),
		Headers: []string{"Step", "Compressed Output", "Dictionary", "Buffer", "Input"},
		Note:    "Literal codes 0-1; dictionary codes from 2. Entries are written as code(bits).",
	}
	stream := bitvec.MustParse(FigureExample)
	var rows []core.TraceEvent
	_, err := core.CompressTrace(stream, figureConfig(), func(ev core.TraceEvent) {
		rows = append(rows, ev)
	})
	if err != nil {
		return nil, err
	}
	for i, ev := range rows {
		emitted, dict := "", ""
		if ev.Emitted != nil {
			emitted = fmt.Sprintf("%d", *ev.Emitted)
		}
		if ev.NewEntry != nil {
			dict = fmt.Sprintf("%d(%s)", ev.NewEntry.Code, ev.NewEntry.Str)
		}
		t.Add(stepLabel(i), emitted, dict, ev.Buffer, ev.Input)
	}
	return t, nil
}

// Figure4 regenerates the LZW decompression table representation,
// including the not-yet-defined-code case when the example exercises it.
func Figure4() (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 4. LZW decompression table representation",
		Headers: []string{"Step", "Uncompressed Output", "Dictionary", "Buffer", "Input"},
	}
	stream := bitvec.MustParse(FigureExample)
	cfg := figureConfig()
	res, err := core.Compress(stream, cfg)
	if err != nil {
		return nil, err
	}
	out, err := core.DecompressTrace(res.Codes, cfg, stream.Len(), func(ev core.DecompressTraceEvent) {
		dict := ""
		if ev.NewEntry != nil {
			dict = fmt.Sprintf("%d(%s)", ev.NewEntry.Code, ev.NewEntry.Str)
		}
		outStr := ev.Output
		if ev.Special {
			outStr += " (not-yet-defined code)"
		}
		t.Add(stepLabel(ev.Step), outStr, dict, ev.Buffer, fmt.Sprintf("%d", ev.Input))
	})
	if err != nil {
		return nil, err
	}
	t.Note = fmt.Sprintf("Reconstructed stream: %s (matches input: %v)", out, stream.CompatibleWith(out))
	return t, nil
}

// Figure5 narrates the hardware decompressor data path (Figure 5 of the
// paper) as a code-level cycle trace of the worked example at a 4x
// internal clock.
func Figure5() (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 5. LZW decompression architecture: cycle trace (worked example, 4x clock)",
		Headers: []string{"Internal Cycle", "Unit", "Action"},
	}
	stream := bitvec.MustParse(FigureExample)
	cfg := figureConfig()
	res, err := core.Compress(stream, cfg)
	if err != nil {
		return nil, err
	}
	words, width := decomp.MemoryGeometry(cfg)
	sh := mem.NewShared(mem.New(words, width))
	sh.Select(mem.SrcLZW)
	d, err := decomp.New(cfg, 4, sh)
	if err != nil {
		return nil, err
	}
	unit := map[string]string{
		"load":   "input shifter",
		"decode": "FSM + dictionary",
		"write":  "dictionary memory",
		"shift":  "output shifter",
	}
	d.SetTrace(func(ev decomp.Event) {
		t.Add(ev.Cycle, unit[ev.Kind], ev.Detail)
	})
	out, st, err := d.Run(res.Pack(), len(res.Codes), stream.Len())
	if err != nil {
		return nil, err
	}
	t.Note = fmt.Sprintf("Output %s in %d internal cycles (%d tester cycles; raw scan-in would take %d).",
		out, st.InternalCycles, st.TesterCycles, stream.Len())
	return t, nil
}

// Figure6 demonstrates the embedded-memory reuse of Figure 6: the same
// SRAM serves memory BIST and the LZW dictionary through one mux layer,
// and the BIST catches an injected cell fault that would corrupt
// decompression.
func Figure6() (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 6. LZW decompression memory utilization of the core memory blocks",
		Headers: []string{"Step", "Port Owner", "Result"},
	}
	cfg := core.Config{CharBits: 7, DictSize: 256, EntryBits: 63}
	words, width := decomp.MemoryGeometry(cfg)
	sh := mem.NewShared(mem.New(words, width))

	// 1. Functional mode: test logic locked out.
	if _, err := sh.Read(mem.SrcBIST, 0, nil); err != nil {
		t.Add("functional operation", sh.Owner().String(), "BIST and LZW accesses rejected")
	} else {
		return nil, fmt.Errorf("figure6: mux failed to isolate functional mode")
	}

	// 2. Memory BIST on the healthy array.
	sh.Select(mem.SrcBIST)
	r1, err := mem.MarchCMinus(sh)
	if err != nil {
		return nil, err
	}
	t.Add("March C- (healthy array)", "bist", r1.String())

	// 3. Inject a cell fault; BIST localizes it.
	sh.RAM().InjectStuckAt(37, 5, 1)
	r2, err := mem.MarchCMinus(sh)
	if err != nil {
		return nil, err
	}
	if r2.Pass {
		return nil, fmt.Errorf("figure6: BIST missed the injected fault")
	}
	t.Add("March C- (stuck-at injected)", "bist", r2.String())
	sh.RAM().ClearFaults()

	// 4. Same memory, now the LZW dictionary.
	sh.Select(mem.SrcLZW)
	stream := bitvec.MustParse("0101XX10XX0101XX10")
	res, err := core.Compress(stream, cfg)
	if err != nil {
		return nil, err
	}
	d, err := decomp.New(cfg, 8, sh)
	if err != nil {
		return nil, err
	}
	out, st, err := d.Run(res.Pack(), len(res.Codes), stream.Len())
	if err != nil {
		return nil, err
	}
	if !stream.CompatibleWith(out) {
		return nil, fmt.Errorf("figure6: decompression through shared memory corrupted the stream")
	}
	t.Add("LZW decompression", "lzw",
		fmt.Sprintf("%d codes decoded, %d dictionary writes, output verified", st.CodesDecoded, st.MemWrites))

	// 5. Back to functional mode.
	sh.Select(mem.SrcFunctional)
	t.Add("return to mission mode", sh.Owner().String(), "test circuitry isolated again")
	return t, nil
}

func stepLabel(i int) string {
	if i < 26 {
		return string(rune('a'+i)) + ")"
	}
	return fmt.Sprintf("%d)", i)
}
