package experiments

// Extension experiments beyond the paper's tables: a wider baseline
// sweep (adding FDR, alternating run-length and selective Huffman — the
// rest of the paper's related-work taxonomy) and a multi-scan-chain
// study backing the paper's Section 1.2 claim that the method is
// independent of the scan architecture.

import (
	"fmt"

	"lzwtc/internal/atpg"
	"lzwtc/internal/bench"
	"lzwtc/internal/circuit"
	"lzwtc/internal/core"
	"lzwtc/internal/huffman"
	"lzwtc/internal/lz77"
	"lzwtc/internal/report"
	"lzwtc/internal/rle"
	"lzwtc/internal/scan"
)

// Baselines compares LZW against the full related-work taxonomy of
// Section 1.1 on all twelve circuits: LZ77 (ref [8]), Golomb RLE (ref
// [10]), FDR and alternating run-length (ref [11]) and selective
// Huffman statistical coding (refs [5],[15]).
func Baselines() (*report.Table, error) {
	t := &report.Table{
		Title:   "Extension: full baseline comparison (Section 1.1 taxonomy)",
		Headers: []string{"Test", "LZW", "LZ77", "Golomb", "FDR", "Altern.", "Huffman"},
		Note:    "Huffman: selective coding, 8-bit blocks, 16 coded patterns, table cost included.",
	}
	for _, p := range bench.Profiles() {
		cfg := LZWConfig(p)
		_, lzwRatio, err := compressLZW(p, cfg)
		if err != nil {
			return nil, err
		}
		stream := p.Generate().Serialize()
		l7, err := lz77.Compress(stream, LZ77Config(p))
		if err != nil {
			return nil, err
		}
		ratios := []interface{}{p.Name, lzwRatio, l7.Stats.Ratio()}
		for _, kind := range []rle.Kind{rle.Golomb, rle.FDR, rle.Alternating} {
			r, err := rle.Compress(stream, rle.Config{Kind: kind})
			if err != nil {
				return nil, err
			}
			ratios = append(ratios, r.Stats.Ratio())
		}
		h, err := huffman.Compress(stream, huffman.DefaultConfig())
		if err != nil {
			return nil, err
		}
		ratios = append(ratios, h.Stats.Ratio())
		t.Add(ratios...)
	}
	return t, nil
}

// Multichain demonstrates scan-architecture independence: an ATPG cube
// set for a synthetic core is split over 1, 2 and 4 scan chains, each
// chain compressed with its own dictionary, and the aggregate ratio
// compared (the per-pattern alignment overhead grows with chain count;
// the dictionaries shrink with it).
func Multichain() (*report.Table, error) {
	t := &report.Table{
		Title:   "Extension: compression vs scan-chain count (synthetic core, PODEM cubes)",
		Headers: []string{"Chains", "Streams", "Aggregate bits", "Compressed", "Ratio"},
		Note:    "Each chain compressed independently (C_C=7, N=512, C_MDATA=63); PIs carried on chain 0's channel.",
	}
	gen, err := circuit.Generate(circuit.GenConfig{Name: "mc", Inputs: 16, Outputs: 8, DFFs: 64, Comb: 500, Seed: 77})
	if err != nil {
		return nil, err
	}
	for _, nChains := range []int{1, 2, 4} {
		design, err := scan.Insert(gen, nChains)
		if err != nil {
			return nil, err
		}
		ares, err := atpg.Run(design.Comb, atpg.Options{Collapse: true, Seed: 77, RandomPatterns: 16})
		if err != nil {
			return nil, err
		}
		chains, pis, err := design.ChainCubes(ares.Cubes)
		if err != nil {
			return nil, err
		}
		total, compressed := 0, 0
		streams := 0
		for _, cs := range append(chains, pis) {
			if cs.Width == 0 || len(cs.Cubes) == 0 {
				continue
			}
			streams++
			total += cs.TotalBits()
			cfg := core.Config{CharBits: 7, DictSize: 512, EntryBits: 63}
			res, err := core.Compress(cs.SerializeAligned(cfg.CharBits), cfg)
			if err != nil {
				return nil, err
			}
			compressed += res.Stats.CompressedBits
		}
		ratio := 1 - float64(compressed)/float64(total)
		t.Add(fmt.Sprintf("%d", nChains), streams, total, compressed, ratio)
	}
	return t, nil
}
