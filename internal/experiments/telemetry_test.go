package experiments

import (
	"testing"

	"lzwtc/internal/telemetry"
)

func TestRunObservedEmitsRowEvents(t *testing.T) {
	reg := telemetry.NewRegistry()
	var events []telemetry.Event
	rec := telemetry.New(reg, telemetry.SinkFunc(func(ev telemetry.Event) { events = append(events, ev) }))
	tbl, err := RunObserved("figure3", rec)
	if err != nil {
		t.Fatal(err)
	}
	var rows, spans int
	for _, ev := range events {
		switch ev.Kind {
		case EventRow:
			if exp, _ := ev.Field("experiment"); exp != "figure3" {
				t.Fatalf("row event experiment = %v", exp)
			}
			rows++
		case "span":
			name, _ := ev.Field("name")
			exp, _ := ev.Field("experiment")
			if name == SpanExperimentRun && exp == "figure3" {
				spans++
			}
		}
	}
	if rows != len(tbl.Rows) {
		t.Fatalf("row events = %d, want %d", rows, len(tbl.Rows))
	}
	if spans != 1 {
		t.Fatalf("experiment span events = %d, want 1", spans)
	}
	if got := reg.Counter(MetricRows, "").Value(); got != int64(len(tbl.Rows)) {
		t.Fatalf("rows counter = %d, want %d", got, len(tbl.Rows))
	}
}

func TestRunObservedNilRecorder(t *testing.T) {
	plain, err := Run("figure3")
	if err != nil {
		t.Fatal(err)
	}
	obs, err := RunObserved("figure3", nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.String() != obs.String() {
		t.Fatal("RunObserved(nil) differs from Run")
	}
}

func TestRunObservedUnknownName(t *testing.T) {
	if _, err := RunObserved("no-such-experiment", nil); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}
