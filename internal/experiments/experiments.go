// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6). Each runner returns a report.Table whose rows
// follow the paper's layout; cmd/experiments prints them and the root
// benchmark suite wraps them in testing.B benchmarks.
//
// Workloads come from the bench profiles; the LZW configuration for the
// headline tables matches the paper: 7-bit characters, a 64-bit
// dictionary entry (63 data bits) and the per-circuit dictionary sizes
// of Table 3. Compression ratios are always reported against the
// original (unpadded) test-set volume.
package experiments

import (
	"context"
	"fmt"
	"math/bits"

	"lzwtc/internal/ate"
	"lzwtc/internal/bench"
	"lzwtc/internal/core"
	"lzwtc/internal/decomp"
	"lzwtc/internal/lz77"
	"lzwtc/internal/mem"
	"lzwtc/internal/report"
	"lzwtc/internal/rle"
)

// LZWConfig returns the paper's Table 1/3 configuration for a circuit:
// C_C = 7, C_MDATA = 63 (a 64-bit dictionary entry) and the circuit's
// dictionary size. Circuits whose dictionary is too small to leave code
// space beyond the literals (s35932's N = 128) get a correspondingly
// smaller character size — Table 4 shows what happens otherwise.
func LZWConfig(p bench.Profile) core.Config {
	cc := 7
	for cc > 1 && 1<<uint(cc) >= p.DictSize {
		cc--
	}
	return core.Config{CharBits: cc, DictSize: p.DictSize, EntryBits: 63}
}

// LZ77Config returns the reference-[8]-faithful LZ77 geometry: the
// history window is the scan chain itself, so offsets address roughly
// one previous pattern.
func LZ77Config(p bench.Profile) lz77.Config {
	return lz77.Config{OffsetBits: bits.Len(uint(p.ScanLen - 1)), LenBits: 6, MinMatch: 10}
}

// compressLZW runs the full paper pipeline for one profile and returns
// the result plus the ratio against the unpadded volume.
func compressLZW(p bench.Profile, cfg core.Config) (*core.Result, float64, error) {
	stream := p.Generate().SerializeAligned(cfg.CharBits)
	res, err := core.Compress(stream, cfg)
	if err != nil {
		return nil, 0, err
	}
	return res, ratioVs(res, p.TotalBits()), nil
}

func ratioVs(res *core.Result, origBits int) float64 {
	if origBits == 0 {
		return 0
	}
	return 1 - float64(res.Stats.CompressedBits)/float64(origBits)
}

// Table1 reproduces "Compression Comparison Results": LZW vs LZ77 vs RLE
// on the five headline circuits.
func Table1() (*report.Table, error) {
	t := &report.Table{
		Title:   "Table 1. Compression Comparison Results",
		Headers: []string{"Test", "LZW", "LZ77", "RLE"},
		Note:    "LZW: C_C=7, 64-bit entries, N per Table 3. LZ77: ref-[8] scan-chain window. RLE: Golomb, best M.",
	}
	for _, name := range bench.Table1Names() {
		p, err := bench.ByName(name)
		if err != nil {
			return nil, err
		}
		cfg := LZWConfig(p)
		_, lzwRatio, err := compressLZW(p, cfg)
		if err != nil {
			return nil, err
		}
		stream := p.Generate().Serialize()
		l7, err := lz77.Compress(stream, LZ77Config(p))
		if err != nil {
			return nil, err
		}
		rg, err := rle.Compress(stream, rle.Config{Kind: rle.Golomb})
		if err != nil {
			return nil, err
		}
		t.Add(name, lzwRatio, l7.Stats.Ratio(), rg.Stats.Ratio())
	}
	return t, nil
}

// Table2 reproduces "Download Performance Improvement Results and Memory
// Sizes": improvement at 4x/8x/10x internal clock via the cycle-accurate
// decompressor.
func Table2() (*report.Table, error) {
	t := &report.Table{
		Title:   "Table 2. Download Performance Improvement Results and Memory Sizes",
		Headers: []string{"Test", "Dict. Size", "4x", "8x", "10x"},
		Note:    "Improvement = 1 - compressed download cycles / raw scan cycles, cycle-accurate decompressor model.",
	}
	for _, name := range bench.Table1Names() {
		p, err := bench.ByName(name)
		if err != nil {
			return nil, err
		}
		cfg := LZWConfig(p)
		res, _, err := compressLZW(p, cfg)
		if err != nil {
			return nil, err
		}
		words, width := decomp.MemoryGeometry(cfg)
		row := []interface{}{name, fmt.Sprintf("%dx%d", words, width)}
		for _, ratio := range []int{4, 8, 10} {
			imp, err := downloadImprovement(res, cfg, ratio, p.TotalBits())
			if err != nil {
				return nil, err
			}
			row = append(row, imp)
		}
		t.Add(row...)
	}
	return t, nil
}

func downloadImprovement(res *core.Result, cfg core.Config, ratio, rawBits int) (float64, error) {
	words, width := decomp.MemoryGeometry(cfg)
	sh := mem.NewShared(mem.New(words, width))
	sh.Select(mem.SrcLZW)
	d, err := decomp.New(cfg, ratio, sh)
	if err != nil {
		return 0, err
	}
	_, st, err := d.Run(res.Pack(), len(res.Codes), res.InputBits)
	if err != nil {
		return 0, err
	}
	return ate.Improvement(rawBits, st.TesterCycles), nil
}

// Table3 reproduces "ISCAS89 and ITC99 Benchmark Results": don't-care
// ratio, original size, compression and dictionary size for all twelve
// circuits.
func Table3() (*report.Table, error) {
	t := &report.Table{
		Title:   "Table 3. ISCAS89 and ITC99 Benchmark Results",
		Headers: []string{"Test", "Don't Cares", "Orig. Size", "Compression", "Dict. Size"},
	}
	for _, p := range bench.Profiles() {
		cs := p.Generate()
		cfg := LZWConfig(p)
		stream := cs.SerializeAligned(cfg.CharBits)
		res, err := core.Compress(stream, cfg)
		if err != nil {
			return nil, err
		}
		name := p.Name
		if p.Suite == "ITC99" {
			name = "itc " + p.Name
		}
		t.Add(name, cs.XDensity(), p.TotalBits(), ratioVs(res, p.TotalBits()), p.DictSize)
	}
	return t, nil
}

// Table4 reproduces "Compression versus LZW Character Size": C_C in
// {1, 4, 7, 10} with N = 1024 and C_MDATA = 63. At C_C = 10 the literal
// space fills the whole dictionary and compression collapses to zero.
// The grid runs on the batch pool (see sweep.go); output is identical
// to the sequential loop for any worker count.
func Table4() (*report.Table, error) {
	return Table4Ctx(context.Background(), 0)
}

// Table5 reproduces "Compression versus Entry Size": C_MDATA in
// {63, 127, 255, 511} with N = 1024 and C_C = 7. The grid runs on the
// batch pool (see sweep.go).
func Table5() (*report.Table, error) {
	return Table5Ctx(context.Background(), 0)
}

func entrySweep() []int { return []int{63, 127, 255, 511} }

// Table6 reproduces "Performance versus entry size": download improvement
// at a 10x internal clock across the Table 5 entry sizes, plus the
// longest uncompressed string each test set generates (the knee of the
// curve, 483 bits for s13207 in the paper's sizing example). The grid
// runs on the batch pool (see sweep.go).
func Table6() (*report.Table, error) {
	return Table6Ctx(context.Background(), 0)
}

// Names lists the runnable experiments: the paper's tables and figures
// plus the labeled extensions.
func Names() []string {
	return []string{"table1", "table2", "table3", "table4", "table5", "table6",
		"figure3", "figure4", "figure5", "figure6", "baselines", "multichain"}
}

// Run dispatches an experiment by name and returns its rendering.
func Run(name string) (*report.Table, error) {
	switch name {
	case "table1":
		return Table1()
	case "table2":
		return Table2()
	case "table3":
		return Table3()
	case "table4":
		return Table4()
	case "table5":
		return Table5()
	case "table6":
		return Table6()
	case "figure3":
		return Figure3()
	case "figure4":
		return Figure4()
	case "figure5":
		return Figure5()
	case "figure6":
		return Figure6()
	case "baselines":
		return Baselines()
	case "multichain":
		return Multichain()
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
}
