// Parameter-sweep tables run through the batch pool: Tables 4–6 are
// grids (circuit × configuration point) of independent compressions, so
// they fan out across internal/parallel instead of looping. Each
// circuit's test set is generated once and shared read-only by every
// job in its row; results land at fixed grid indices, so the rendered
// tables are byte-identical to the sequential drivers for any worker
// count.

package experiments

import (
	"context"
	"fmt"

	"lzwtc/internal/bench"
	"lzwtc/internal/bitvec"
	"lzwtc/internal/core"
	"lzwtc/internal/parallel"
	"lzwtc/internal/report"
)

// sweepSets generates each Table 1 circuit once, in order.
func sweepSets() ([]bench.Profile, []*bitvec.CubeSet, error) {
	names := bench.Table1Names()
	ps := make([]bench.Profile, len(names))
	sets := make([]*bitvec.CubeSet, len(names))
	for i, name := range names {
		p, err := bench.ByName(name)
		if err != nil {
			return nil, nil, err
		}
		ps[i] = p
		sets[i] = p.Generate()
	}
	return ps, sets, nil
}

// table4Config is the Table 4 configuration at one character size:
// N = 1024, C_MDATA = 63 — except C_C = 10, where a 63-bit entry cannot
// hold even one character, so the entry gets one character of room (the
// paper's point at C_C = 10 is the exhausted code space, not an invalid
// config).
func table4Config(cc int) core.Config {
	cfg := core.Config{CharBits: cc, DictSize: 1024, EntryBits: 63}
	if cc == 10 {
		cfg.EntryBits = 70
	}
	return cfg
}

// sweepGrid runs a circuit × config grid through the pool and renders
// one table row per circuit with one ratio column per config.
func sweepGrid(ctx context.Context, workers int, t *report.Table, cfgs []core.Config, label func(core.Config) string) (*report.Table, error) {
	ps, sets, err := sweepSets()
	if err != nil {
		return nil, err
	}
	jobs := make([]parallel.Job, 0, len(ps)*len(cfgs))
	for i, p := range ps {
		for _, cfg := range cfgs {
			jobs = append(jobs, parallel.Job{
				Name: fmt.Sprintf("%s/%s", p.Name, label(cfg)),
				Set:  sets[i],
				Cfg:  cfg,
			})
		}
	}
	results, err := parallel.CompressJobs(ctx, jobs, parallel.Options{Workers: workers})
	if err != nil {
		return nil, err
	}
	for i, p := range ps {
		row := []interface{}{p.Name}
		for j := range cfgs {
			r := results[i*len(cfgs)+j]
			if r.Err != nil {
				return nil, r.Err
			}
			row = append(row, r.Ratio())
		}
		t.Add(row...)
	}
	return t, nil
}

// Table4Ctx is Table 4 on the batch pool: the 5-circuit × C_C grid
// compressed concurrently. workers <= 0 means GOMAXPROCS.
func Table4Ctx(ctx context.Context, workers int) (*report.Table, error) {
	t := &report.Table{
		Title:   "Table 4. Compression versus LZW Character Size (N=1024, C_MDATA=63)",
		Headers: []string{"Test", "1", "4", "7", "10"},
	}
	var cfgs []core.Config
	for _, cc := range []int{1, 4, 7, 10} {
		cfgs = append(cfgs, table4Config(cc))
	}
	return sweepGrid(ctx, workers, t, cfgs, func(c core.Config) string {
		return fmt.Sprintf("cc=%d", c.CharBits)
	})
}

// Table5Ctx is Table 5 on the batch pool: the 5-circuit × C_MDATA grid
// compressed concurrently. workers <= 0 means GOMAXPROCS.
func Table5Ctx(ctx context.Context, workers int) (*report.Table, error) {
	t := &report.Table{
		Title:   "Table 5. Compression versus Entry Size (N=1024, C_C=7)",
		Headers: []string{"Test", "63", "127", "255", "511"},
	}
	var cfgs []core.Config
	for _, eb := range entrySweep() {
		cfgs = append(cfgs, core.Config{CharBits: 7, DictSize: 1024, EntryBits: eb})
	}
	return sweepGrid(ctx, workers, t, cfgs, func(c core.Config) string {
		return fmt.Sprintf("eb=%d", c.EntryBits)
	})
}

// t6cell is one Table 6 grid point: col -1 measures the longest
// uncompressed string (unbounded entries), cols >= 0 measure download
// improvement at the corresponding entry size.
type t6cell struct {
	circuit int
	col     int
	cfg     core.Config
}

// t6value is one computed Table 6 cell.
type t6value struct {
	longestBits int
	improvement float64
}

// Table6Ctx is Table 6 on the batch pool. Each cell needs a compression
// plus a cycle-accurate decompressor run, so the grid goes through
// parallel.Map directly rather than CompressJobs. workers <= 0 means
// GOMAXPROCS.
func Table6Ctx(ctx context.Context, workers int) (*report.Table, error) {
	t := &report.Table{
		Title:   "Table 6. Performance versus Entry Size (10x internal clock)",
		Headers: []string{"Test", "Longest String", "63", "127", "255", "511"},
	}
	ps, sets, err := sweepSets()
	if err != nil {
		return nil, err
	}
	// All Table 6 configs use C_C = 7: serialize each circuit once and
	// share the stream read-only across its row's cells.
	streams := make([]*bitvec.Vector, len(sets))
	for i, cs := range sets {
		streams[i] = cs.SerializeAligned(7)
	}
	ebs := entrySweep()
	cells := make([]t6cell, 0, len(ps)*(len(ebs)+1))
	for ci := range ps {
		cells = append(cells, t6cell{circuit: ci, col: -1,
			cfg: core.Config{CharBits: 7, DictSize: 1024, EntryBits: 0}})
		for col, eb := range ebs {
			cells = append(cells, t6cell{circuit: ci, col: col,
				cfg: core.Config{CharBits: 7, DictSize: 1024, EntryBits: eb}})
		}
	}
	outcomes, err := parallel.Map(ctx, cells, parallel.Options{Workers: workers},
		func(_ context.Context, _ int, c t6cell) (t6value, error) {
			res, err := core.Compress(streams[c.circuit], c.cfg)
			if err != nil {
				return t6value{}, err
			}
			if c.col < 0 {
				return t6value{longestBits: res.Stats.MaxEntryChars * 7}, nil
			}
			imp, err := downloadImprovement(res, c.cfg, 10, ps[c.circuit].TotalBits())
			if err != nil {
				return t6value{}, err
			}
			return t6value{improvement: imp}, nil
		})
	if err != nil {
		return nil, err
	}
	for ci, p := range ps {
		row := make([]interface{}, 2+len(ebs))
		row[0] = p.Name
		base := ci * (len(ebs) + 1)
		for k := 0; k <= len(ebs); k++ {
			o := outcomes[base+k]
			if o.Err != nil {
				return nil, o.Err
			}
			if cells[base+k].col < 0 {
				row[1] = o.Value.longestBits
			} else {
				row[2+cells[base+k].col] = o.Value.improvement
			}
		}
		t.Add(row...)
	}
	return t, nil
}

// RunCtx dispatches an experiment by name with context cancellation and
// a worker bound for the pool-backed sweeps. Experiments that are not
// grids run sequentially but still honor a pre-canceled context.
func RunCtx(ctx context.Context, name string, workers int) (*report.Table, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch name {
	case "table4":
		return Table4Ctx(ctx, workers)
	case "table5":
		return Table5Ctx(ctx, workers)
	case "table6":
		return Table6Ctx(ctx, workers)
	}
	return Run(name)
}
