package experiments

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// TestSweepWorkerCountInvariant: the pool-backed sweep tables render
// identically for every worker count — the differential property at the
// table level.
func TestSweepWorkerCountInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("full workloads in -short mode")
	}
	runners := map[string]func(context.Context, int) (interface{ String() string }, error){
		"table4": func(ctx context.Context, w int) (interface{ String() string }, error) {
			return Table4Ctx(ctx, w)
		},
		"table5": func(ctx context.Context, w int) (interface{ String() string }, error) {
			return Table5Ctx(ctx, w)
		},
	}
	for name, run := range runners {
		base, err := run(context.Background(), 1)
		if err != nil {
			t.Fatalf("%s workers=1: %v", name, err)
		}
		for _, w := range []int{2, 5} {
			got, err := run(context.Background(), w)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			if got.String() != base.String() {
				t.Fatalf("%s: workers=%d renders differently than workers=1:\n%s\nvs\n%s",
					name, w, got.String(), base.String())
			}
		}
	}
}

// TestRunCtxCanceled: a canceled context fails every experiment — the
// pool-backed grids and the sequential runners alike — without running
// any work.
func TestRunCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range Names() {
		if _, err := RunCtx(ctx, name, 2); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s under canceled context: err = %v, want context.Canceled", name, err)
		}
	}
}

// TestRunCtxDispatch: RunCtx serves the same experiment set as Run.
func TestRunCtxDispatch(t *testing.T) {
	if _, err := RunCtx(context.Background(), "no-such-table", 1); err == nil {
		t.Fatal("unknown experiment did not error")
	}
	if testing.Short() {
		t.Skip("full workloads in -short mode")
	}
	seq, err := Run("table6")
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunCtx(context.Background(), "table6", 3)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(par.Rows) != fmt.Sprint(seq.Rows) {
		t.Fatalf("table6 rows differ between Run and RunCtx:\n%v\nvs\n%v", par.Rows, seq.Rows)
	}
}
