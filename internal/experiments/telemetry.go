package experiments

import (
	"context"

	"lzwtc/internal/report"
	"lzwtc/internal/telemetry"
)

// EventRow is the per-row record RunObserved emits: one per table row,
// which for every experiment here means one per circuit.
const EventRow = "experiment.row"

// MetricRows counts table rows produced across all observed experiment
// runs.
const MetricRows = "lzwtc_experiment_rows_total"

// SpanExperimentRun is the span every observed experiment runs under;
// the experiment's name travels as an "experiment" field rather than in
// the span name, so the phase histogram stays one bounded series.
const SpanExperimentRun = "experiment.run"

// RunObserved is Run instrumented through a telemetry recorder: the
// whole experiment runs under a SpanExperimentRun span, and each
// produced row is emitted as an EventRow record keyed by the table's
// column headers. A nil recorder reduces to Run.
func RunObserved(name string, rec *telemetry.Recorder) (*report.Table, error) {
	return RunObservedCtx(context.Background(), name, 0, rec)
}

// RunObservedCtx is RunObserved with context cancellation and a worker
// bound for the pool-backed sweep tables (workers <= 0 means
// GOMAXPROCS).
func RunObservedCtx(ctx context.Context, name string, workers int, rec *telemetry.Recorder) (*report.Table, error) {
	sp := rec.Span(SpanExperimentRun)
	t, err := RunCtx(ctx, name, workers)
	if err != nil {
		sp.End(telemetry.F("experiment", name), telemetry.F("error", err.Error()))
		return nil, err
	}
	if reg := rec.Registry(); reg != nil {
		reg.Counter(MetricRows, "experiment table rows produced").Add(int64(len(t.Rows)))
	}
	for _, row := range t.Rows {
		fields := make([]telemetry.Field, 0, len(row)+1)
		fields = append(fields, telemetry.F("experiment", name))
		for i, cell := range row {
			key := "col"
			if i < len(t.Headers) {
				key = t.Headers[i]
			}
			fields = append(fields, telemetry.F(key, cell))
		}
		rec.Emit(EventRow, fields...)
	}
	sp.End(telemetry.F("experiment", name), telemetry.F("rows", len(t.Rows)))
	return t, nil
}
