package core

import (
	"context"
	"testing"

	"lzwtc/internal/telemetry"
)

// traceCtx is the worst-case disabled-tracing context: a span identity
// is present (so the ctx lookup is not trivially empty) but there is no
// recorder to consume it.
func traceCtx() context.Context {
	return telemetry.ContextWithSpan(context.Background(),
		telemetry.SpanContext{TraceID: 1, SpanID: 2})
}

// BenchmarkCompressTraceDisabled is the acceptance benchmark for the
// trace-instrumented disabled path: CompressObservedCtx with a span
// context in ctx and a nil recorder. scripts/check_trace_overhead.sh
// gates it against BenchmarkCompressTelemetryDisabled at <= 3%.
func BenchmarkCompressTraceDisabled(b *testing.B) {
	stream, cfg := overheadWorkload()
	ctx := traceCtx()
	b.SetBytes(int64(stream.Len() / 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompressObservedCtx(ctx, stream, cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// TestTraceDisabledAllocParity: with a nil recorder, the ctx-carrying
// entry point must allocate exactly as much as the plain one — the
// disabled trace path is a pointer check, not a span.
func TestTraceDisabledAllocParity(t *testing.T) {
	stream, cfg := overheadWorkload()
	ctx := traceCtx()
	// Warm the dict arena so both measurements recycle rather than
	// racing each other for the first fresh allocation.
	if _, err := CompressObserved(stream, cfg, nil); err != nil {
		t.Fatal(err)
	}
	base := testing.AllocsPerRun(10, func() {
		if _, err := CompressObserved(stream, cfg, nil); err != nil {
			t.Fatal(err)
		}
	})
	traced := testing.AllocsPerRun(10, func() {
		if _, err := CompressObservedCtx(ctx, stream, cfg, nil); err != nil {
			t.Fatal(err)
		}
	})
	// Averaging over runs absorbs a stray GC emptying the dict arena
	// mid-measurement; a real per-op span allocation would show as a
	// full +1.
	if traced > base+0.5 {
		t.Fatalf("disabled tracing allocates: %.1f allocs/op via ctx path, %.1f via plain path", traced, base)
	}
}
