package core

import (
	"math/bits"

	"lzwtc/internal/invariant"
)

// dict is the shared dictionary model used by both the compressor and the
// software decompressor. Codes below firstCode are literals; string codes
// record their parent code, last character and length, which is all either
// direction needs (the compressor walks forward through children, the
// decompressor materializes strings by walking parents).
//
// The child index is flat and allocation-free after construction: a
// first-child/next-sibling chain over per-code columns plus one open-
// addressed (parent, char) → child probe table in a single backing
// slice. A concrete-character lookup is one hash probe; an X-laden
// lookup either enumerates the ≤2^popcount(X-mask) candidate character
// values (Gosper-style subset iteration over the don't-care positions,
// one probe each) or walks the sibling chain with a mask filter,
// whichever touches fewer entries. Both paths rank candidates by the
// configured tie-break exactly as the historical per-node map scan did
// (see refMatcher, the retained reference oracle).
type dict struct {
	cfg       Config
	firstCode Code
	next      Code
	resets    int

	// Per-code metadata, indexed by code. Literal codes are implicit:
	// parent invalid, lastChar = code, length 1.
	parent    []Code
	lastChar  []uint64
	firstChar []uint64
	length    []int32

	// Flat child index. firstChild[c] heads c's child chain (noCode when
	// empty), nextSib[c] continues the chain c sits in, childCount[c]
	// ranks TieWidest. String-code slots are initialized by commitAdd
	// when their code is assigned, so reset never sweeps them.
	firstChild []Code
	nextSib    []Code
	childCount []int32

	// table is the (parent, char) → child probe table: open addressing,
	// linear probing, ≤50% load by construction (sized ≥ 2× the maximum
	// string-entry count). Cleared wholesale on reset.
	table []childSlot
	shift uint // 64 - log2(len(table)), for multiply-shift hashing

	// ref is the retained map-based matcher, maintained and cross-checked
	// against every lookup under the lzwtc_dictoracle build tag (nil
	// otherwise).
	ref *refMatcher
}

// childSlot is one probe-table entry. key 0 marks an empty slot; live
// keys are childKey values, which are always non-zero.
type childSlot struct {
	key   uint64
	child Code
}

const noCode = ^Code(0)

// hashMult is the multiply-shift constant (2^64/φ, the usual Fibonacci
// hashing multiplier).
const hashMult = 0x9E3779B97F4A7C15

// childKey packs a (parent, char) edge into a non-zero probe-table key.
// CharBits ≤ 16 bounds char below 2^16; the +1 keeps key 0 reserved for
// empty slots.
func childKey(parent Code, char uint64) uint64 {
	return (uint64(parent)+1)<<16 | char
}

// tableSizeFor returns the probe-table size for a configuration: a power
// of two at least twice the maximum number of string entries (every
// child edge corresponds to one string code), minimum 8.
func tableSizeFor(cfg Config) int {
	entries := cfg.DictSize - cfg.Literals()
	size := 8
	for size < 2*entries {
		size *= 2
	}
	return size
}

func newDict(cfg Config) *dict {
	n := cfg.DictSize
	ts := tableSizeFor(cfg)
	d := &dict{
		parent:     make([]Code, n),
		lastChar:   make([]uint64, n),
		firstChar:  make([]uint64, n),
		length:     make([]int32, n),
		firstChild: make([]Code, n),
		nextSib:    make([]Code, n),
		childCount: make([]int32, n),
		table:      make([]childSlot, ts),
	}
	d.reinit(cfg)
	return d
}

// fits reports whether d's backing storage can host cfg without
// reallocation (the arena recycle check).
func (d *dict) fits(cfg Config) bool {
	return cap(d.parent) >= cfg.DictSize && len(d.table) >= tableSizeFor(cfg)
}

// reinit re-derives every view and clears all state for cfg, reusing the
// existing backing arrays. newDict and the arena both funnel through it,
// so a recycled dictionary is indistinguishable from a fresh one.
func (d *dict) reinit(cfg Config) {
	n := cfg.DictSize
	d.cfg = cfg
	d.firstCode = Code(cfg.Literals())
	d.resets = 0
	d.parent = d.parent[:cap(d.parent)][:n]
	d.lastChar = d.lastChar[:cap(d.lastChar)][:n]
	d.firstChar = d.firstChar[:cap(d.firstChar)][:n]
	d.length = d.length[:cap(d.length)][:n]
	d.firstChild = d.firstChild[:cap(d.firstChild)][:n]
	d.nextSib = d.nextSib[:cap(d.nextSib)][:n]
	d.childCount = d.childCount[:cap(d.childCount)][:n]
	d.shift = uint(64 - bits.TrailingZeros(uint(len(d.table))))
	clearSlots(d.table)
	for c := 0; c < cfg.Literals(); c++ {
		d.parent[c] = noCode
		d.lastChar[c] = uint64(c)
		d.firstChar[c] = uint64(c)
		d.length[c] = 1
		d.firstChild[c] = noCode
		d.childCount[c] = 0
	}
	d.next = d.firstCode
	if dictOracle {
		d.ref = newRefMatcher(cfg)
	}
}

// clearSlots zeroes the probe table (compiled to a memclr).
func clearSlots(t []childSlot) {
	for i := range t {
		t[i] = childSlot{}
	}
}

// full reports whether every code has been assigned.
func (d *dict) full() bool { return int(d.next) >= d.cfg.DictSize }

// reset discards all string entries (FullReset policy). Only the literal
// chain heads and the probe table need sweeping: string-code index slots
// are re-initialized by commitAdd when their code is next assigned.
func (d *dict) reset() {
	for c := Code(0); c < d.firstCode; c++ {
		d.firstChild[c] = noCode
		d.childCount[c] = 0
	}
	clearSlots(d.table)
	d.next = d.firstCode
	d.resets++
	if dictOracle {
		d.ref.reset()
	}
}

// len returns the string length of code c in characters.
func (d *dict) len(c Code) int { return int(d.length[c]) }

// defined reports whether c currently names a literal or string entry.
// Literals occupy [0, firstCode) and string entries [firstCode, next),
// so the two ranges together are simply [0, next).
func (d *dict) defined(c Code) bool { return c < d.next }

// add attempts to register string(parent)+char under the next free code.
// It enforces the C_MDATA bound (no string longer than MaxChars) and the
// dictionary-full policy. It returns the new code and true when an entry
// was created.
func (d *dict) add(parent Code, char uint64) (Code, bool) {
	if !d.prepareAdd(parent) {
		return noCode, false
	}
	return d.commitAdd(parent, char), true
}

// prepareAdd applies the entry-length bound and the dictionary-full policy
// (including a FullReset reset) and reports whether an entry with the given
// parent can be created. The compressor calls it through add; the
// decompressor calls it *before* materializing the next code, because the
// compressor's corresponding add — and any reset it triggers — happened
// before that code was emitted.
func (d *dict) prepareAdd(parent Code) bool {
	if d.len(parent)+1 > d.cfg.MaxChars() {
		return false
	}
	if d.full() {
		if d.cfg.Full == FullFreeze {
			return false
		}
		if int(d.firstCode) >= d.cfg.DictSize {
			// DictSize == 2^C_C: every code is a literal and no string
			// entry can ever exist. Resetting cannot free a slot, so the
			// dictionary is permanently frozen regardless of policy.
			return false
		}
		d.reset()
		// After a reset the parent code may no longer be defined (it was a
		// string entry). The compressor and decompressor both skip the add
		// in that case, keeping the two sides in lockstep.
		if !d.defined(parent) {
			return false
		}
	}
	return true
}

// commitAdd registers string(parent)+char under the next free code after a
// successful prepareAdd.
func (d *dict) commitAdd(parent Code, char uint64) Code {
	c := d.next
	d.next++
	d.parent[c] = parent
	d.lastChar[c] = char
	d.firstChar[c] = d.firstChar[parent]
	d.length[c] = d.length[parent] + 1
	d.firstChild[c] = noCode
	d.childCount[c] = 0
	d.nextSib[c] = d.firstChild[parent]
	d.firstChild[parent] = c
	d.childCount[parent]++
	d.insertChild(parent, char, c)
	if dictOracle {
		d.ref.add(parent, char, c)
	}
	return c
}

// insertChild records the (parent, char) → child edge in the probe
// table. Callers never insert a duplicate edge: the compressor only adds
// after findChild failed, the decompressor replays the compressor, and
// preload checks explicitly.
func (d *dict) insertChild(parent Code, char uint64, child Code) {
	key := childKey(parent, char)
	mask := uint64(len(d.table) - 1)
	i := key * hashMult >> d.shift
	for d.table[i].key != 0 {
		i = (i + 1) & mask
	}
	d.table[i] = childSlot{key: key, child: child}
}

// lookupChild resolves a concrete (parent, char) edge: one multiply-shift
// hash and a short linear probe (load factor is ≤50%).
func (d *dict) lookupChild(parent Code, char uint64) (Code, bool) {
	key := childKey(parent, char)
	mask := uint64(len(d.table) - 1)
	i := key * hashMult >> d.shift
	for {
		s := d.table[i]
		if s.key == key {
			return s.child, true
		}
		if s.key == 0 {
			return noCode, false
		}
		i = (i + 1) & mask
	}
}

// findChild looks for a child of code whose character is compatible with
// the three-valued character (val, care): child & care == val. When the
// character is fully specified this is one probe; otherwise the
// candidate set is ranked by the configured tie-break. The second result
// reports whether a child was found.
func (d *dict) findChild(code Code, val, care, fullMask uint64) (Code, bool) {
	var c Code
	var ok bool
	if care == fullMask {
		c, ok = d.lookupChild(code, val)
	} else {
		c, ok = d.findChildMasked(code, val, care, fullMask)
	}
	if dictOracle {
		// The not-found code value is unspecified (the reference returns
		// the map zero value, the flat matcher noCode); only the found
		// flag, and the code when found, are part of the contract.
		rc, rok := d.ref.findChild(code, val, care, fullMask)
		invariant.Check(rok == ok && (!ok || rc == c),
			"core: flat matcher diverges from reference at code %d (val=%#x care=%#x): flat=(%d,%v) ref=(%d,%v)",
			code, val, care, c, ok, rc, rok)
	}
	return c, ok
}

// findChildMasked resolves an X-laden lookup. The compatible character
// values are exactly val | (subset of the X mask), so when that subset
// space is smaller than code's child list the matcher enumerates it —
// Gosper-style iteration, one probe per candidate — and otherwise walks
// the sibling chain with a mask filter. Either way every compatible
// child is considered, so the tie-break result is identical to the
// historical scan over all children.
func (d *dict) findChildMasked(code Code, val, care, fullMask uint64) (Code, bool) {
	nc := int(d.childCount[code])
	if nc == 0 || val&^care != 0 {
		// No children, or val carries bits outside its care mask (no
		// character can satisfy char&care == val).
		return noCode, false
	}
	xmask := fullMask &^ care
	k := bits.OnesCount64(xmask)
	best := noCode
	bestWidth := int32(-1)
	if k < 16 && 1<<uint(k) < nc {
		for sub := uint64(0); ; sub = (sub - xmask) & xmask {
			if child, ok := d.lookupChild(code, val|sub); ok {
				best, bestWidth = d.rank(child, best, bestWidth)
			}
			if sub == xmask {
				break
			}
		}
	} else {
		for child := d.firstChild[code]; child != noCode; child = d.nextSib[child] {
			if d.lastChar[child]&care == val {
				best, bestWidth = d.rank(child, best, bestWidth)
			}
		}
	}
	if best == noCode {
		return noCode, false
	}
	return best, true
}

// rank folds one compatible child into the running tie-break winner,
// reproducing the historical semantics: TieOldest keeps the lowest code,
// TieNewest the highest, TieWidest the child with the most children
// (ties to the lowest code).
func (d *dict) rank(child, best Code, bestWidth int32) (Code, int32) {
	switch d.cfg.Tie {
	case TieOldest:
		if best == noCode || child < best {
			return child, bestWidth
		}
	case TieNewest:
		if best == noCode || child > best {
			return child, bestWidth
		}
	case TieWidest:
		w := d.childCount[child]
		if w > bestWidth || (w == bestWidth && (best == noCode || child < best)) {
			return child, w
		}
	}
	return best, bestWidth
}

// stringOf materializes the uncompressed characters of code c, oldest
// character first. It appends into dst and returns the extended slice.
// The entry length is known up front, so characters are written directly
// into their final positions (no reversal pass) and a reused dst slice
// makes the walk allocation-free.
func (d *dict) stringOf(c Code, dst []uint64) []uint64 {
	n := int(d.length[c])
	start := len(dst)
	if tot := start + n; cap(dst) >= tot {
		dst = dst[:tot]
	} else {
		grown := make([]uint64, tot, 2*tot)
		copy(grown, dst)
		dst = grown
	}
	for cur, i := c, start+n-1; ; cur, i = d.parent[cur], i-1 {
		dst[i] = d.lastChar[cur]
		if d.parent[cur] == noCode {
			break
		}
	}
	return dst
}
