package core

import (
	"math/bits"

	"lzwtc/internal/invariant"
)

// dict is the shared dictionary model used by both the compressor and the
// software decompressor. Codes below firstCode are literals; string codes
// record their parent code, last character and length, which is all either
// direction needs (the compressor walks forward through children, the
// decompressor materializes strings by walking parents).
//
// The child index is flat and bit-sliced: a concrete (parent, char)
// lookup is one probe of an open-addressed table, and an X-laden lookup
// runs a word-parallel kernel over the parent's children. Children are
// batched, in creation (= ascending code) order, into 64-lane plane
// blocks — per-bit value and is-X planes plus a lane → code column — so
// "which of these 64 children is compatible with the query cube" is a
// couple of AND/ANDN/XOR word operations per cared query bit
// (bitvec.MatchLanes), and the TieOldest/TieNewest/TieWidest policies
// resolve over the surviving bitmask instead of per-candidate probes.
// The result is identical to the historical per-node map scan (see
// refMatcher, the retained reference oracle).
type dict struct {
	cfg       Config
	firstCode Code
	next      Code
	resets    int
	maxChars  int // cfg.MaxChars(), hoisted off the per-add path

	// Per-code metadata, indexed by code. Literal codes are implicit:
	// parent invalid, lastChar = code, length 1.
	parent    []Code
	lastChar  []uint64
	firstChar []uint64
	length    []int32

	// Bit-sliced child index. chain[c] bundles code c's child-chain
	// bookkeeping — first and last plane block plus population — into one
	// cache line per parent. count is the single source of truth for
	// "has children": head/tail are only read when it is non-zero and are
	// (re)written by the first append of each epoch, so neither reset nor
	// commitAdd sweeps them. String-code count slots are initialized by
	// commitAdd when their code is assigned.
	chain []chainHdr

	// Block arena backing every chain: block b owns lanes
	// blkCodes[64b : 64b+64] and plane words blkVal/blkX[cc·b : cc·b+cc]
	// (cc = CharBits, one word per character bit). Blocks are handed out
	// in order and recycled wholesale on reset; capacities are retained
	// across reinit, so a recycled dictionary re-slices rather than
	// reallocates (stride changes with CharBits are just a new view).
	//
	// Planes are transposed lazily: an append records only the lane's
	// child code, and the first masked lookup that touches the block
	// transposes the outstanding characters (syncPlanes). blkPlane tracks
	// how many lanes each block has transposed, so workloads that never
	// issue X-laden lookups — decompression, X-free compression — pay
	// nothing for plane maintenance.
	blkHdr   []blockHdr // per-block chain link + fill (one cache line)
	blkCodes []Code     // lane → child code
	blkVal   []uint64   // value planes, bit b of every lane's character
	blkX     []uint64   // is-X planes (all zero for concrete characters)
	nBlocks  int
	usedBlk  int

	// directBlocks pins parent p's first plane block to block index p
	// (DictSize ≤ maxDirectBlocks, which covers every practical
	// configuration). The match kernel can then compute a parent's plane
	// and lane-code addresses from the code alone — those loads issue in
	// parallel with the chain-header load instead of chained behind it,
	// removing one full memory-latency level from the per-character
	// lookup. Overflow blocks (chains past 64 children) come from the
	// arena region at overflowBase = DictSize. Larger dictionaries keep
	// the dense on-demand arena (overflowBase = 0) and the head-indexed
	// kernel.
	directBlocks bool
	overflowBase int

	// table is the (parent, char) → child probe table: open addressing,
	// linear probing, ≤50% load by construction (sized ≥ 2× the maximum
	// string-entry count). Cleared wholesale on reset.
	table []childSlot
	shift uint // 64 - log2(len(table)), for multiply-shift hashing

	// noChildIndex suspends child-index maintenance (lane appends, probe
	// table, oracle mirror) for dictionaries that will never be asked for
	// a child. The decompressor sets it: it only replays adds, so paying
	// for an index nobody queries would be pure overhead. reinit clears
	// it, so a recycled dictionary always starts indexed. findChild on a
	// noChildIndex dictionary is a caller bug.
	noChildIndex bool

	// anyMasked flips true on the first masked (X-laden) lookup and makes
	// commitAdd transpose its lane into the planes eagerly while the
	// block's header and character are still in registers. Without it the
	// planes go stale one lane per add and almost every masked query pays
	// a syncPlanes call that reloads what the add just had in cache. An
	// X-free workload never sets it and keeps the zero-maintenance lazy
	// path. reinit clears it; reset deliberately does not (the workload's
	// character doesn't change at a dictionary-full boundary).
	anyMasked bool

	// hasXLanes marks that some plane block carries a lane with is-X bits
	// set. Production dictionaries never do — the compressor concretizes
	// every character before adding and the decompressor replays those —
	// so the kernel skips the is-X plane load entirely (and the add path
	// skips zeroing it) unless a test has built three-valued lanes
	// directly and raised the flag.
	hasXLanes bool

	// tableLive is the probe table's counterpart to anyMasked: while
	// false the table's contents are garbage and commitAdd skips the
	// insert; the first exact lookup rebuilds the table from the live
	// codes and flips it. Masked-heavy workloads (exact queries need
	// every character bit cared) thus never pay the per-add insert or the
	// per-reset table sweep. reset and reinit clear it, so each epoch
	// re-decides lazily.
	tableLive bool

	// ref is the retained map-based matcher, maintained and cross-checked
	// against every lookup under the lzwtc_dictoracle build tag (nil
	// otherwise).
	ref *refMatcher
}

// childSlot is one probe-table entry. key 0 marks an empty slot; live
// keys are childKey values, which are always non-zero.
type childSlot struct {
	key   uint64
	child Code
}

// blockHdr is one plane block's bookkeeping, packed so an append or a
// chain hop touches a single cache line: the next block of the chain
// (noBlock at the tail), the lanes used, and the lanes transposed into
// the planes so far (≤ len; see syncPlanes).
type blockHdr struct {
	next  int32
	len   int32
	plane int32
}

// chainHdr is one code's child-chain bookkeeping: the first and last
// plane block of its chain, the number of children, and the oldest
// child's code. head, tail and first carry no sentinel — they are
// meaningful only while count is non-zero. first exists for the all-X
// TieOldest lookup (a large share of queries on X-dense streams), which
// it answers with this one header load instead of a dependent
// head-block → lane-0 chase.
type chainHdr struct {
	head  int32
	tail  int32
	count int32
	first Code
}

const noCode = ^Code(0)

// noBlock terminates a plane-block chain.
const noBlock = int32(-1)

// blockLanes is the plane-block width: one lane per child, one word per
// character bit-plane.
const blockLanes = 64

// maxPreallocBlocks caps the up-front plane-block reservation. Every
// configuration in practical use (DictSize ≤ a few thousand) fits its
// worst-case chain layout below the cap and is allocation-free after
// construction; pathological dictionaries (up to 2^24 codes) grow the
// arena on demand instead of reserving gigabytes.
const maxPreallocBlocks = 4096

// maxDirectBlocks bounds the code-indexed block layout (directBlocks):
// a dictionary this size or smaller reserves one first block per code —
// at the bound that is ~4096 × (256 B codes + C_C·8 B planes), still a
// ~1 MB-scale arena — and buys the kernel its parallel address
// computation. Beyond it the reservation would grow with DictSize into
// the gigabytes, so large dictionaries fall back to the dense arena.
const maxDirectBlocks = maxPreallocBlocks

// hashMult is the multiply-shift constant (2^64/φ, the usual Fibonacci
// hashing multiplier).
const hashMult = 0x9E3779B97F4A7C15

// childKey packs a (parent, char) edge into a non-zero probe-table key.
// CharBits ≤ 16 bounds char below 2^16; the +1 keeps key 0 reserved for
// empty slots.
func childKey(parent Code, char uint64) uint64 {
	return (uint64(parent)+1)<<16 | char
}

// tableSizeFor returns the probe-table size for a configuration: a power
// of two at least twice the maximum number of string entries (every
// child edge corresponds to one string code), minimum 8.
func tableSizeFor(cfg Config) int {
	entries := cfg.DictSize - cfg.Literals()
	size := 8
	for size < 2*entries {
		size *= 2
	}
	return size
}

// directLayout reports whether cfg uses the code-indexed block layout.
func directLayout(cfg Config) bool { return cfg.DictSize <= maxDirectBlocks }

// blocksTarget returns the plane-block reservation for a configuration.
// Under the direct layout every code owns its first block (index = code)
// and the overflow region holds the spill blocks (≤ entries/64, since a
// chain only spills past 64 children). The dense layout's worst case is
// one partially filled block per parent plus the full blocks (≤ entries
// + entries/64), clamped to maxPreallocBlocks.
func blocksTarget(cfg Config) int {
	entries := cfg.DictSize - cfg.Literals()
	if entries == 0 {
		return 0
	}
	if directLayout(cfg) {
		return cfg.DictSize + entries/blockLanes + 1
	}
	t := entries + entries/blockLanes + 1
	if t > maxPreallocBlocks {
		t = maxPreallocBlocks
	}
	return t
}

func newDict(cfg Config) *dict {
	n := cfg.DictSize
	ts := tableSizeFor(cfg)
	d := &dict{
		parent:    make([]Code, n),
		lastChar:  make([]uint64, n),
		firstChar: make([]uint64, n),
		length:    make([]int32, n),
		chain:     make([]chainHdr, n),
		table:     make([]childSlot, ts),
	}
	d.reinit(cfg)
	return d
}

// fits reports whether d's backing storage can host cfg without
// reallocating the per-code columns (the arena recycle check). The block
// arena adapts by re-slicing and grows on demand, so it never disqualifies
// a recycle.
func (d *dict) fits(cfg Config) bool {
	return cap(d.parent) >= cfg.DictSize && len(d.table) >= tableSizeFor(cfg)
}

// reinit re-derives every view and clears all state for cfg, reusing the
// existing backing arrays. newDict and the arena both funnel through it,
// so a recycled dictionary is indistinguishable from a fresh one.
func (d *dict) reinit(cfg Config) {
	n := cfg.DictSize
	d.cfg = cfg
	d.firstCode = Code(cfg.Literals())
	d.resets = 0
	d.parent = d.parent[:cap(d.parent)][:n]
	d.lastChar = d.lastChar[:cap(d.lastChar)][:n]
	d.firstChar = d.firstChar[:cap(d.firstChar)][:n]
	d.length = d.length[:cap(d.length)][:n]
	d.chain = d.chain[:cap(d.chain)][:n]
	d.shift = uint(64 - bits.TrailingZeros(uint(len(d.table))))
	d.directBlocks = directLayout(cfg)
	d.overflowBase = 0
	if d.directBlocks {
		d.overflowBase = n
	}
	d.usedBlk = d.overflowBase
	d.resliceBlocks()
	if t := blocksTarget(cfg); d.nBlocks < t {
		d.growBlocksTo(t)
	}
	for c := 0; c < cfg.Literals(); c++ {
		d.parent[c] = noCode
		d.lastChar[c] = uint64(c)
		d.firstChar[c] = uint64(c)
		d.length[c] = 1
		d.chain[c].count = 0
	}
	d.next = d.firstCode
	d.maxChars = cfg.MaxChars()
	d.noChildIndex = false
	d.anyMasked = false
	d.hasXLanes = false
	d.tableLive = false
	if dictOracle {
		d.ref = newRefMatcher(cfg)
	}
}

// resliceBlocks re-derives the block-arena capacity from the backing
// arrays under the current CharBits stride (a dictionary recycled at a
// different character width sees the same words through a new view).
func (d *dict) resliceBlocks() {
	cc := d.cfg.CharBits
	d.blkHdr = d.blkHdr[:cap(d.blkHdr)]
	d.blkCodes = d.blkCodes[:cap(d.blkCodes)]
	d.blkVal = d.blkVal[:cap(d.blkVal)]
	d.blkX = d.blkX[:cap(d.blkX)]
	n := len(d.blkHdr)
	if m := len(d.blkCodes) / blockLanes; m < n {
		n = m
	}
	if m := len(d.blkVal) / cc; m < n {
		n = m
	}
	if m := len(d.blkX) / cc; m < n {
		n = m
	}
	d.nBlocks = n
}

// growBlocksTo extends the block arena to at least n blocks, preserving
// the blocks already handed out. Growth only happens when a dictionary
// outruns its blocksTarget reservation (the maxPreallocBlocks clamp);
// the enlarged arrays stay with the dict through the arena, so steady
// state allocates nothing.
func (d *dict) growBlocksTo(n int) {
	cc := d.cfg.CharBits
	if cap(d.blkHdr) < n {
		nw := make([]blockHdr, n)
		copy(nw, d.blkHdr)
		d.blkHdr = nw
	}
	if cap(d.blkCodes) < n*blockLanes {
		nw := make([]Code, n*blockLanes)
		copy(nw, d.blkCodes)
		d.blkCodes = nw
	}
	if cap(d.blkVal) < n*cc {
		nw := make([]uint64, n*cc)
		copy(nw, d.blkVal)
		d.blkVal = nw
	}
	if cap(d.blkX) < n*cc {
		nw := make([]uint64, n*cc)
		copy(nw, d.blkX)
		d.blkX = nw
	}
	d.resliceBlocks()
}

// allocBlock hands out the next free plane block, unlinked and empty.
// The plane words are left dirty: plane = 0 marks them untransposed, and
// syncPlanes rebuilds them from scratch if a masked lookup ever touches
// the block, so recycling a block costs one header store.
func (d *dict) allocBlock() int32 {
	if d.usedBlk == d.nBlocks {
		t := 2 * d.nBlocks
		if t < 16 {
			t = 16
		}
		d.growBlocksTo(t)
	}
	b := int32(d.usedBlk)
	d.usedBlk++
	d.blkHdr[b] = blockHdr{next: noBlock}
	return b
}

// clearSlots zeroes the probe table (compiled to a memclr).
func clearSlots(t []childSlot) {
	for i := range t {
		t[i] = childSlot{}
	}
}

// full reports whether every code has been assigned.
func (d *dict) full() bool { return int(d.next) >= d.cfg.DictSize }

// reset discards all string entries (FullReset policy). Only the literal
// child counts need sweeping: string-code index slots are re-initialized
// by commitAdd when their code is next assigned, head/tail pointers by
// each chain's first append, plane blocks are recycled wholesale
// (usedBlk) with their planes rebuilt on first masked lookup, and the
// probe table goes back to lazy (rebuilt on the next exact lookup, if
// one ever comes).
func (d *dict) reset() {
	if !d.noChildIndex {
		for c := Code(0); c < d.firstCode; c++ {
			d.chain[c].count = 0
		}
		d.tableLive = false
		d.usedBlk = d.overflowBase
		if dictOracle {
			d.ref.reset()
		}
	}
	d.next = d.firstCode
	d.resets++
}

// len returns the string length of code c in characters.
func (d *dict) len(c Code) int { return int(d.length[c]) }

// defined reports whether c currently names a literal or string entry.
// Literals occupy [0, firstCode) and string entries [firstCode, next),
// so the two ranges together are simply [0, next).
func (d *dict) defined(c Code) bool { return c < d.next }

// add attempts to register string(parent)+char under the next free code.
// It enforces the C_MDATA bound (no string longer than MaxChars) and the
// dictionary-full policy. It returns the new code and true when an entry
// was created.
func (d *dict) add(parent Code, char uint64) (Code, bool) {
	if !d.prepareAdd(parent) {
		return noCode, false
	}
	return d.commitAdd(parent, char), true
}

// prepareAdd applies the entry-length bound and the dictionary-full policy
// (including a FullReset reset) and reports whether an entry with the given
// parent can be created. The compressor calls it through add; the
// decompressor calls it *before* materializing the next code, because the
// compressor's corresponding add — and any reset it triggers — happened
// before that code was emitted.
func (d *dict) prepareAdd(parent Code) bool {
	if d.len(parent)+1 > d.maxChars {
		return false
	}
	return d.prepareRoom(parent)
}

// prepareRoom is the dictionary-full half of prepareAdd: it makes room
// per the full policy (possibly resetting) and reports whether the add
// may proceed.
func (d *dict) prepareRoom(parent Code) bool {
	if d.full() {
		if d.cfg.Full == FullFreeze {
			return false
		}
		if int(d.firstCode) >= d.cfg.DictSize {
			// DictSize == 2^C_C: every code is a literal and no string
			// entry can ever exist. Resetting cannot free a slot, so the
			// dictionary is permanently frozen regardless of policy.
			return false
		}
		d.reset()
		// After a reset the parent code may no longer be defined (it was a
		// string entry). The compressor and decompressor both skip the add
		// in that case, keeping the two sides in lockstep.
		if !d.defined(parent) {
			return false
		}
	}
	return true
}

// addWithLen is add for a caller that already knows parent's string
// length (the compressor's match loop tracks it incrementally), sparing
// the length[parent] load on every add.
func (d *dict) addWithLen(parent Code, char uint64, plen int) (Code, bool) {
	if plen+1 > d.maxChars || !d.prepareRoom(parent) {
		return noCode, false
	}
	return d.commitAdd(parent, char), true
}

// commitAdd registers string(parent)+char under the next free code after
// a successful prepareAdd. The new code is appended to the next free
// lane of parent's plane-block chain; only the lane → code column is
// written — the character is transposed into the planes lazily by
// syncPlanes, so an add costs the same handful of stores as the old
// sibling-chain push. Codes grow monotonically between resets and reset
// recycles every block, so lanes within a block — and blocks along a
// chain — are always in ascending code order; the tie-break scans rely
// on that.
//
// chain[parent].tail may be stale from an earlier epoch, so it is only
// trusted when chain[parent].count is non-zero (growChain rewrites it on
// a chain's first append). The count check must therefore short-circuit
// before the block-header load.
func (d *dict) commitAdd(parent Code, char uint64) Code {
	c := d.next
	d.next++
	d.parent[c] = parent
	d.lastChar[c] = char
	d.firstChar[c] = d.firstChar[parent]
	d.length[c] = d.length[parent] + 1
	if d.noChildIndex {
		return c
	}
	d.chain[c].count = 0
	h := &d.chain[parent]
	tb := h.tail
	if h.count == 0 || d.blkHdr[tb].len == blockLanes {
		tb = d.growChain(parent, tb)
	}
	if h.count == 0 {
		h.first = c
	}
	hb := &d.blkHdr[tb]
	ln := hb.len
	d.blkCodes[int(tb)*blockLanes+int(ln)] = c
	hb.len = ln + 1
	if d.anyMasked && hb.plane == ln {
		// Masked queries are live and the block was fully transposed
		// before this append: extend the planes now, while the header and
		// character are in registers, instead of leaving the block one
		// lane stale for the next query's syncPlanes call. A recycled
		// block's first lane overwrites the full (dirty) words — the
		// single-lane analogue of the k==0 rebuild. The is-X words carry
		// no production traffic at all (see hasXLanes).
		base := int(tb) * d.cfg.CharBits
		if ln == 0 {
			for t := 0; t < d.cfg.CharBits; t++ {
				d.blkVal[base+t] = char >> uint(t) & 1
			}
			if d.hasXLanes {
				for t := 0; t < d.cfg.CharBits; t++ {
					d.blkX[base+t] = 0
				}
			}
		} else {
			bit := uint64(1) << uint(ln)
			for m := char; m != 0; m &= m - 1 {
				d.blkVal[base+bits.TrailingZeros64(m)] |= bit
			}
		}
		hb.plane = ln + 1
	}
	h.count++
	if d.tableLive {
		d.insertChild(parent, char, c)
	}
	if dictOracle {
		d.ref.add(parent, char, c)
	}
	return c
}

// growChain provides a block for parent's chain: the chain head when
// the parent has no children this epoch — under the direct layout that
// is block `parent` itself, re-initialized in place rather than handed
// out by the arena — otherwise an overflow link after tb (the current
// tail). Split from commitAdd so the append fast path stays short.
func (d *dict) growChain(parent Code, tb int32) int32 {
	h := &d.chain[parent]
	if h.count == 0 && d.directBlocks {
		nb := int32(parent)
		d.blkHdr[nb] = blockHdr{next: noBlock}
		h.head, h.tail = nb, nb
		return nb
	}
	nb := d.allocBlock()
	if h.count == 0 {
		h.head = nb
	} else {
		d.blkHdr[tb].next = nb
	}
	h.tail = nb
	return nb
}

// syncPlanes transposes the lanes appended since the block's last sync
// into its value/is-X planes. A block recycled by reset starts with
// dirty plane words (plane counter 0), so the first sync clears them;
// later syncs are OR-only appends. Dictionary characters are always
// concrete (the compressor adds the fill-concretized character, the
// decompressor replays it), so the lane's character is exactly
// lastChar[child] and its is-X plane bits stay zero — the is-X planes
// keep the kernel honest for three-valued lanes, which tests build
// directly.
func (d *dict) syncPlanes(b int32) {
	cc := d.cfg.CharBits
	base := int(b) * cc
	cb := int(b) * blockLanes
	k, n := int(d.blkHdr[b].plane), int(d.blkHdr[b].len)
	// The transposition is bitvec.AppendLane with a full care mask,
	// written out to avoid a call per lane. Characters are always below
	// 2^CharBits (the compressor concretizes within fullMask, the
	// decompressor and preload replay validated characters), so every
	// set bit indexes this block's own plane words.
	if k == 0 {
		// Full rebuild of a recycled block: accumulate the plane words on
		// the stack and overwrite, so the dirty words are never read and
		// never need a separate clear. The is-X words see no store at all
		// — production lanes are concrete (hasXLanes) and the kernel only
		// reads the words a test explicitly wrote.
		var acc [16]uint64 // cc ≤ 16
		for i := 0; i < n; i++ {
			bit := uint64(1) << uint(i)
			for m := d.lastChar[d.blkCodes[cb+i]]; m != 0; m &= m - 1 {
				acc[bits.TrailingZeros64(m)] |= bit
			}
		}
		for t := 0; t < cc; t++ {
			d.blkVal[base+t] = acc[t]
		}
		if d.hasXLanes {
			// Only dictionaries carrying test-built three-valued lanes ever
			// read the is-X words, and only they pay for clearing them.
			for t := 0; t < cc; t++ {
				d.blkX[base+t] = 0
			}
		}
		d.blkHdr[b].plane = int32(n)
		return
	}
	// Incremental append: lanes past the previous fill have clear plane
	// bits, so OR-only writes suffice.
	for i := k; i < n; i++ {
		bit := uint64(1) << uint(i)
		for m := d.lastChar[d.blkCodes[cb+i]]; m != 0; m &= m - 1 {
			d.blkVal[base+bits.TrailingZeros64(m)] |= bit
		}
	}
	d.blkHdr[b].plane = int32(n)
}

// syncAllPlanes brings every used block current. findChildMasked calls
// it exactly once per dictionary lifetime, on the first masked lookup:
// from then on commitAdd extends the planes eagerly with every append
// (anyMasked), so the match kernel can assume current planes and skip
// the per-block staleness check — and with it the whole block-header
// load on single-block chains.
func (d *dict) syncAllPlanes() {
	if d.directBlocks {
		// The direct region is indexed by code, not allocation order, and
		// blocks of parents with no children this epoch hold stale headers
		// (possibly pointing at lane codes from an earlier, larger
		// configuration) — walk the live chains instead of the region.
		for c := Code(0); c < d.next; c++ {
			if d.chain[c].count == 0 {
				continue
			}
			for b := d.chain[c].head; b != noBlock; b = d.blkHdr[b].next {
				if h := &d.blkHdr[b]; h.plane < h.len {
					d.syncPlanes(b)
				}
			}
		}
		return
	}
	for b := int32(0); int(b) < d.usedBlk; b++ {
		if h := &d.blkHdr[b]; h.plane < h.len {
			d.syncPlanes(b)
		}
	}
}

// insertChild records the (parent, char) → child edge in the probe
// table. Callers never insert a duplicate edge: the compressor only adds
// after findChild failed, the decompressor replays the compressor, and
// preload checks explicitly.
func (d *dict) insertChild(parent Code, char uint64, child Code) {
	key := childKey(parent, char)
	mask := uint64(len(d.table) - 1)
	i := key * hashMult >> d.shift
	for d.table[i].key != 0 {
		i = (i + 1) & mask
	}
	d.table[i] = childSlot{key: key, child: child}
}

// rebuildTable populates the probe table from scratch out of the live
// string codes (each code is exactly the (parent[c], lastChar[c]) → c
// edge). lookupChild calls it on the first exact lookup of an epoch;
// from then on commitAdd maintains the table incrementally.
func (d *dict) rebuildTable() {
	clearSlots(d.table)
	for c := d.firstCode; c < d.next; c++ {
		d.insertChild(d.parent[c], d.lastChar[c], c)
	}
	d.tableLive = true
}

// lookupChild resolves a concrete (parent, char) edge: one multiply-shift
// hash and a short linear probe (load factor is ≤50%).
func (d *dict) lookupChild(parent Code, char uint64) (Code, bool) {
	if !d.tableLive {
		d.rebuildTable()
	}
	key := childKey(parent, char)
	mask := uint64(len(d.table) - 1)
	i := key * hashMult >> d.shift
	for {
		s := d.table[i]
		if s.key == key {
			return s.child, true
		}
		if s.key == 0 {
			return noCode, false
		}
		i = (i + 1) & mask
	}
}

// findChild looks for a child of code whose character is compatible with
// the three-valued character (val, care): child & care == val. When the
// character is fully specified this is one probe; otherwise the
// bit-sliced kernel ranks the candidate set under the configured
// tie-break. The second result reports whether a child was found.
func (d *dict) findChild(code Code, val, care, fullMask uint64) (Code, bool) {
	if dictOracle {
		invariant.Check(!d.noChildIndex,
			"core: findChild on a noChildIndex dictionary at code %d", code)
	}
	var c Code
	var ok bool
	if care == fullMask {
		c, ok = d.lookupChild(code, val)
	} else {
		c, ok = d.findChildMasked(code, val, care, fullMask)
	}
	if dictOracle {
		// The not-found code value is unspecified (the reference returns
		// the map zero value, the flat matcher noCode); only the found
		// flag, and the code when found, are part of the contract.
		rc, rok := d.ref.findChild(code, val, care, fullMask)
		invariant.Check(rok == ok && (!ok || rc == c),
			"core: flat matcher diverges from reference at code %d (val=%#x care=%#x): flat=(%d,%v) ref=(%d,%v)",
			code, val, care, c, ok, rc, rok)
	}
	return c, ok
}

// findChildMasked resolves an X-laden lookup with the bit-sliced kernel:
// each 64-lane block of code's chain answers "which children are
// compatible with (val, care)" in popcount(care) word operations
// (bitvec.MatchLanes), and the tie-break is decided over the surviving
// bitmasks. Lanes ascend in code order, so TieOldest stops at the first
// surviving block's lowest lane, TieNewest keeps the last surviving
// block's highest lane, and TieWidest compares childCount across the
// surviving lanes (first strict maximum = lowest code, matching the
// historical scan). This replaced PR 4's two enumeration paths — the
// Gosper subset probes and the per-candidate sibling walk — which the
// kernel dominates on the shapes either one favored (see DESIGN.md §15
// for the audit numbers).
func (d *dict) findChildMasked(code Code, val, care, fullMask uint64) (Code, bool) {
	if !d.anyMasked {
		// First masked lookup of this dictionary's lifetime: bring every
		// used block current once. From here on commitAdd extends the
		// planes with each append, so the kernel below never re-checks
		// staleness — single-block chains run without touching a block
		// header at all.
		d.syncAllPlanes()
		d.anyMasked = true
	}
	ch := d.chain[code]
	if ch.count == 0 || val&^care != 0 || val&^fullMask != 0 {
		// No children; val carries bits outside its care mask (no
		// character can satisfy char&care == val); or val requires a set
		// bit above the character width, which no stored character has.
		return noCode, false
	}
	// Cared query bits above the character width can only demand zeros
	// (the val check above), which every stored character satisfies.
	care &= fullMask
	// All-X query: every child is compatible (val is 0 by the guard
	// above), so the tie resolves positionally with no kernel at all —
	// the oldest child is the header's cached first code and the newest
	// the tail block's last lane (non-tail blocks are always full, so
	// that lane is (count-1) mod 64). TieWidest still has to rank the
	// whole candidate set, so it falls through to the scan.
	if care == 0 {
		switch d.cfg.Tie {
		case TieOldest:
			return ch.first, true
		case TieNewest:
			return d.blkCodes[int(ch.tail)*blockLanes+int(ch.count-1)&63], true
		}
	}
	cc := d.cfg.CharBits
	// Each tie arm writes the per-block kernel out inline — base-indexed
	// plane loads instead of bitvec.MatchLanes over subslices — because
	// this is the hottest loop in the module and the call plus
	// slice-header construction measurably dominates the word operations
	// themselves. bitvec.MatchLanes remains the formula of record: the
	// bit-plane tests hold this path equivalent to it lane for lane.
	// growChain only opens a block once the tail is full, so every block
	// before the tail holds exactly 64 lanes and the per-block lane count
	// falls out of the running count — the block header is only loaded
	// for its next link when a chain actually spills past 64 children.
	switch d.cfg.Tie {
	case TieOldest:
		left := int(ch.count)
		for b := ch.head; ; {
			base := int(b) * cc
			lanes := ^uint64(0)
			if left < blockLanes {
				lanes >>= 64 - uint(left)
			}
			for m := care; m != 0 && lanes != 0; m &= m - 1 {
				t := bits.TrailingZeros64(m)
				bcast := -(val >> uint(t) & 1)
				mis := d.blkVal[base+t] ^ bcast
				if d.hasXLanes {
					mis &^= d.blkX[base+t]
				}
				lanes &^= mis
			}
			if lanes != 0 {
				return d.blkCodes[int(b)*blockLanes+bits.TrailingZeros64(lanes)], true
			}
			if left -= blockLanes; left <= 0 {
				return noCode, false
			}
			b = d.blkHdr[b].next
		}
	case TieNewest:
		best := noCode
		left := int(ch.count)
		for b := ch.head; ; {
			base := int(b) * cc
			lanes := ^uint64(0)
			if left < blockLanes {
				lanes >>= 64 - uint(left)
			}
			for m := care; m != 0 && lanes != 0; m &= m - 1 {
				t := bits.TrailingZeros64(m)
				bcast := -(val >> uint(t) & 1)
				mis := d.blkVal[base+t] ^ bcast
				if d.hasXLanes {
					mis &^= d.blkX[base+t]
				}
				lanes &^= mis
			}
			if lanes != 0 {
				best = d.blkCodes[int(b)*blockLanes+63-bits.LeadingZeros64(lanes)]
			}
			if left -= blockLanes; left <= 0 {
				break
			}
			b = d.blkHdr[b].next
		}
		if best != noCode {
			return best, true
		}
	case TieWidest:
		best := noCode
		bestWidth := int32(-1)
		left := int(ch.count)
		for b := ch.head; ; {
			base := int(b) * cc
			lanes := ^uint64(0)
			if left < blockLanes {
				lanes >>= 64 - uint(left)
			}
			for m := care; m != 0 && lanes != 0; m &= m - 1 {
				t := bits.TrailingZeros64(m)
				bcast := -(val >> uint(t) & 1)
				mis := d.blkVal[base+t] ^ bcast
				if d.hasXLanes {
					mis &^= d.blkX[base+t]
				}
				lanes &^= mis
			}
			for s := lanes; s != 0; s &= s - 1 {
				child := d.blkCodes[int(b)*blockLanes+bits.TrailingZeros64(s)]
				if w := d.chain[child].count; w > bestWidth {
					best, bestWidth = child, w
				}
			}
			if left -= blockLanes; left <= 0 {
				break
			}
			b = d.blkHdr[b].next
		}
		if best != noCode {
			return best, true
		}
	}
	return noCode, false
}

// stringOf materializes the uncompressed characters of code c, oldest
// character first. It appends into dst and returns the extended slice.
// The entry length is known up front, so characters are written directly
// into their final positions (no reversal pass) and a reused dst slice
// makes the walk allocation-free.
func (d *dict) stringOf(c Code, dst []uint64) []uint64 {
	n := int(d.length[c])
	start := len(dst)
	if tot := start + n; cap(dst) >= tot {
		dst = dst[:tot]
	} else {
		grown := make([]uint64, tot, 2*tot)
		copy(grown, dst)
		dst = grown
	}
	for cur, i := c, start+n-1; ; cur, i = d.parent[cur], i-1 {
		dst[i] = d.lastChar[cur]
		if d.parent[cur] == noCode {
			break
		}
	}
	return dst
}
