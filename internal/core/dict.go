package core

// dict is the shared dictionary model used by both the compressor and the
// software decompressor. Codes below firstCode are literals; string codes
// record their parent code, last character and length, which is all either
// direction needs (the compressor walks forward through children, the
// decompressor materializes strings by walking parents).
type dict struct {
	cfg       Config
	firstCode Code
	next      Code
	resets    int

	// Per-code metadata, indexed by code. Literal codes are implicit:
	// parent invalid, lastChar = code, length 1.
	parent    []Code
	lastChar  []uint64
	firstChar []uint64
	length    []int32

	// children[code] maps a concrete character value to the child code
	// representing string(code)+char. Allocated lazily.
	children []map[uint64]Code
}

const noCode = ^Code(0)

func newDict(cfg Config) *dict {
	n := cfg.DictSize
	d := &dict{
		cfg:       cfg,
		firstCode: Code(cfg.Literals()),
		parent:    make([]Code, n),
		lastChar:  make([]uint64, n),
		firstChar: make([]uint64, n),
		length:    make([]int32, n),
		children:  make([]map[uint64]Code, n),
	}
	for c := 0; c < cfg.Literals(); c++ {
		d.parent[c] = noCode
		d.lastChar[c] = uint64(c)
		d.firstChar[c] = uint64(c)
		d.length[c] = 1
	}
	d.next = d.firstCode
	return d
}

// full reports whether every code has been assigned.
func (d *dict) full() bool { return int(d.next) >= d.cfg.DictSize }

// reset discards all string entries (FullReset policy).
func (d *dict) reset() {
	for c := Code(0); c < d.next; c++ {
		d.children[c] = nil
	}
	d.next = d.firstCode
	d.resets++
}

// len returns the string length of code c in characters.
func (d *dict) len(c Code) int { return int(d.length[c]) }

// defined reports whether c currently names a literal or string entry.
func (d *dict) defined(c Code) bool {
	return c < d.firstCode || (c >= d.firstCode && c < d.next)
}

// add attempts to register string(parent)+char under the next free code.
// It enforces the C_MDATA bound (no string longer than MaxChars) and the
// dictionary-full policy. It returns the new code and true when an entry
// was created.
func (d *dict) add(parent Code, char uint64) (Code, bool) {
	if !d.prepareAdd(parent) {
		return noCode, false
	}
	return d.commitAdd(parent, char), true
}

// prepareAdd applies the entry-length bound and the dictionary-full policy
// (including a FullReset reset) and reports whether an entry with the given
// parent can be created. The compressor calls it through add; the
// decompressor calls it *before* materializing the next code, because the
// compressor's corresponding add — and any reset it triggers — happened
// before that code was emitted.
func (d *dict) prepareAdd(parent Code) bool {
	if d.len(parent)+1 > d.cfg.MaxChars() {
		return false
	}
	if d.full() {
		if d.cfg.Full == FullFreeze {
			return false
		}
		if int(d.firstCode) >= d.cfg.DictSize {
			// DictSize == 2^C_C: every code is a literal and no string
			// entry can ever exist. Resetting cannot free a slot, so the
			// dictionary is permanently frozen regardless of policy.
			return false
		}
		d.reset()
		// After a reset the parent code may no longer be defined (it was a
		// string entry). The compressor and decompressor both skip the add
		// in that case, keeping the two sides in lockstep.
		if !d.defined(parent) {
			return false
		}
	}
	return true
}

// commitAdd registers string(parent)+char under the next free code after a
// successful prepareAdd.
func (d *dict) commitAdd(parent Code, char uint64) Code {
	c := d.next
	d.next++
	d.parent[c] = parent
	d.lastChar[c] = char
	d.firstChar[c] = d.firstChar[parent]
	d.length[c] = d.length[parent] + 1
	if d.children[parent] == nil {
		d.children[parent] = make(map[uint64]Code)
	}
	d.children[parent][char] = c
	return c
}

// findChild looks for a child of code whose character is compatible with
// the three-valued character (val, care): child & care == val. When the
// character is fully specified this is a map lookup; otherwise candidates
// are ranked by the configured tie-break. The second result reports
// whether a child was found.
func (d *dict) findChild(code Code, val, care uint64, fullMask uint64) (Code, bool) {
	kids := d.children[code]
	if len(kids) == 0 {
		return noCode, false
	}
	if care == fullMask {
		c, ok := kids[val]
		return c, ok
	}
	best := noCode
	bestWidth := -1
	for char, child := range kids {
		if char&care != val {
			continue
		}
		switch d.cfg.Tie {
		case TieOldest:
			if best == noCode || child < best {
				best = child
			}
		case TieNewest:
			if best == noCode || child > best {
				best = child
			}
		case TieWidest:
			w := len(d.children[child])
			if w > bestWidth || (w == bestWidth && (best == noCode || child < best)) {
				best, bestWidth = child, w
			}
		}
	}
	if best == noCode {
		return noCode, false
	}
	return best, true
}

// stringOf materializes the uncompressed characters of code c, oldest
// character first. It appends into dst and returns the extended slice.
func (d *dict) stringOf(c Code, dst []uint64) []uint64 {
	start := len(dst)
	for cur := c; ; cur = d.parent[cur] {
		dst = append(dst, d.lastChar[cur])
		if d.parent[cur] == noCode {
			break
		}
	}
	// Reverse the appended tail: parents were walked newest-first.
	for i, j := start, len(dst)-1; i < j; i, j = i+1, j-1 {
		dst[i], dst[j] = dst[j], dst[i]
	}
	return dst
}
