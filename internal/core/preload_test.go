package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lzwtc/internal/bitvec"
)

func TestTrainProducesPrefixClosedStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	stream := randomCube(rng, 8000, 0.85)
	cfg := Config{CharBits: 4, DictSize: 256, EntryBits: 32}
	pre, err := Train(stream, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pre.Entries() == 0 {
		t.Fatal("training built nothing")
	}
	// Installing into a fresh dictionary must succeed (prefix closure).
	d := newDict(cfg)
	if err := d.preload(pre); err != nil {
		t.Fatal(err)
	}
	if int(d.next) != cfg.Literals()+pre.Entries() {
		t.Fatalf("next = %d after %d entries", d.next, pre.Entries())
	}
}

func TestTrainMaxEntries(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	stream := randomCube(rng, 8000, 0.85)
	cfg := Config{CharBits: 4, DictSize: 256, EntryBits: 32}
	pre, err := Train(stream, cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	if pre.Entries() != 10 {
		t.Fatalf("entries = %d", pre.Entries())
	}
}

func TestPreloadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	cfg := Config{CharBits: 4, DictSize: 512, EntryBits: 32}
	train := randomCube(rng, 12000, 0.85)
	pre, err := Train(train, cfg, 200)
	if err != nil {
		t.Fatal(err)
	}
	payload := randomCube(rng, 6000, 0.85)
	res, err := CompressWithPreload(payload, cfg, pre)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecompressWithPreload(res.Codes, cfg, pre, payload.Len())
	if err != nil {
		t.Fatal(err)
	}
	if !payload.CompatibleWith(out) {
		t.Fatal("preloaded round trip violates care bits")
	}
	// A cold decoder must NOT accept the warm stream (codes reference
	// preloaded entries).
	if cold, err := Decompress(res.Codes, cfg, payload.Len()); err == nil && payload.CompatibleWith(cold) {
		t.Fatal("cold decoder decoded a warm stream compatibly — preload had no effect")
	}
}

func TestPreloadImprovesSimilarPayload(t *testing.T) {
	// Training and payload drawn from the same generator: the warm
	// dictionary should compress the payload better than a cold start.
	rng := rand.New(rand.NewSource(31))
	cfg := Config{CharBits: 7, DictSize: 1024, EntryBits: 63}
	full := randomCube(rng, 60000, 0.9)
	// Same distribution: first half trains, second half is the payload.
	train := bitvec.New(30000)
	payload := bitvec.New(30000)
	for i := 0; i < 30000; i++ {
		if b := full.Get(i); b != bitvec.X {
			train.Set(i, b)
		}
		if b := full.Get(30000 + i); b != bitvec.X {
			payload.Set(i, b)
		}
	}
	pre, err := Train(train, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Compress(payload, cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := CompressWithPreload(payload, cfg, pre)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Ratio() <= cold.Stats.Ratio() {
		t.Fatalf("warm %.4f <= cold %.4f", warm.Stats.Ratio(), cold.Stats.Ratio())
	}
}

func TestPreloadErrors(t *testing.T) {
	cfg := Config{CharBits: 2, DictSize: 16, EntryBits: 8}
	cases := []*Preload{
		{Strings: [][]uint64{{1}}},             // too short
		{Strings: [][]uint64{{1, 2, 3, 0, 1}}}, // exceeds entry bound (4 max)
		{Strings: [][]uint64{{1, 2}, {1, 2}}},  // duplicate
		{Strings: [][]uint64{{1, 2, 3}}},       // not prefix-closed
		{Strings: [][]uint64{{7, 1}}},          // invalid leading literal
	}
	for i, pre := range cases {
		fresh := newDict(cfg)
		if err := fresh.preload(pre); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// FullReset incompatibility.
	rcfg := Config{CharBits: 2, DictSize: 16, EntryBits: 8, Full: FullReset}
	if _, err := Train(bitvec.MustParse("0101"), rcfg, 0); err == nil {
		t.Error("training with FullReset accepted")
	}
	pre := &Preload{Strings: [][]uint64{{1, 2}}}
	if _, err := CompressWithPreload(bitvec.MustParse("0101"), rcfg, pre); err == nil {
		t.Error("FullReset compress with preload accepted")
	}
	if _, err := DecompressWithPreload([]Code{1}, rcfg, pre, 2); err == nil {
		t.Error("FullReset decompress with preload accepted")
	}
}

// Property: warm compression/decompression round-trips for arbitrary
// training and payload streams.
func TestQuickPreloadRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{CharBits: 3, DictSize: 64, EntryBits: 12}
		train := randomCube(rng, rng.Intn(3000), 0.8)
		payload := randomCube(rng, rng.Intn(2000), 0.8)
		pre, err := Train(train, cfg, 0)
		if err != nil {
			return false
		}
		res, err := CompressWithPreload(payload, cfg, pre)
		if err != nil {
			return false
		}
		out, err := DecompressWithPreload(res.Codes, cfg, pre, payload.Len())
		if err != nil {
			return false
		}
		return payload.Len() == 0 || payload.CompatibleWith(out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
