package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// containerMagic identifies the self-describing compressed-file format
// produced by Encode. The trailing digit is the format version.
var containerMagic = []byte("LZWTC1")

// Encode serializes a Result into a self-describing byte container:
// magic, configuration, original bit length, code count, then the packed
// C_E-bit code stream. This is the on-disk/ATE-file format; the raw code
// stream alone is available via Pack.
func (r *Result) Encode() []byte {
	var buf bytes.Buffer
	buf.Write(containerMagic)
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	putUvarint(uint64(r.Cfg.CharBits))
	putUvarint(uint64(r.Cfg.DictSize))
	putUvarint(uint64(r.Cfg.EntryBits))
	putUvarint(uint64(r.Cfg.Fill))
	putUvarint(uint64(r.Cfg.Tie))
	putUvarint(uint64(r.Cfg.Full))
	putUvarint(uint64(r.InputBits))
	putUvarint(uint64(len(r.Codes)))
	buf.Write(r.Pack())
	return buf.Bytes()
}

// Decode parses a container produced by Encode. The returned Result has
// Codes, Cfg and InputBits populated; Stats is reconstructed from the
// stream dimensions only.
func Decode(data []byte) (*Result, error) {
	if !bytes.HasPrefix(data, containerMagic) {
		return nil, fmt.Errorf("core: not an LZWTC1 container")
	}
	rd := bytes.NewReader(data[len(containerMagic):])
	read := func() (uint64, error) { return binary.ReadUvarint(rd) }
	var fields [8]uint64
	for i := range fields {
		v, err := read()
		if err != nil {
			return nil, fmt.Errorf("core: truncated container header: %w", err)
		}
		fields[i] = v
	}
	cfg := Config{
		CharBits:  int(fields[0]),
		DictSize:  int(fields[1]),
		EntryBits: int(fields[2]),
		Fill:      FillPolicy(fields[3]),
		Tie:       TieBreak(fields[4]),
		Full:      FullPolicy(fields[5]),
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	inputBits := int(fields[6])
	nCodes := int(fields[7])
	rest := data[len(data)-rd.Len():]
	want := (nCodes*cfg.CodeBits() + 7) / 8
	if len(rest) < want {
		return nil, fmt.Errorf("core: container code stream truncated: have %d bytes, want %d", len(rest), want)
	}
	codes, err := UnpackCodes(rest, nCodes, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{Cfg: cfg, Codes: codes, InputBits: inputBits}
	res.Stats.InputBits = inputBits
	res.Stats.CodesEmitted = nCodes
	res.Stats.CompressedBits = nCodes * cfg.CodeBits()
	return res, nil
}
