package core

import (
	"context"
	"fmt"

	"lzwtc/internal/bitvec"
	"lzwtc/internal/telemetry"
)

// DecompressTraceEvent reports one decompressor step, mirroring the
// columns of the paper's Figure 4.
type DecompressTraceEvent struct {
	Step     int
	Input    Code   // compressed character consumed
	Buffer   string // previous code (Buffer register), "" on the first step
	Output   string // uncompressed bits appended to the output
	NewEntry *TraceEntry
	Special  bool // the not-yet-defined-code case (Figure 4f)
}

// Decompress inverts a code sequence produced by Compress under the same
// configuration. outBits is the original stream length; the decompressed
// stream is truncated to it (the final character may have been X-padded).
// The returned vector is fully specified.
func Decompress(codes []Code, cfg Config, outBits int) (*bitvec.Vector, error) {
	return DecompressTrace(codes, cfg, outBits, nil)
}

// DecompressObservedCtx is Decompress wrapped in a SpanDecode trace
// span: when ctx carries a span and rec has sinks, the frame's software
// decompression is recorded as a child span carrying the code count and
// output length. A nil recorder adds one pointer check.
func DecompressObservedCtx(ctx context.Context, codes []Code, cfg Config, outBits int, rec *telemetry.Recorder) (*bitvec.Vector, error) {
	_, sp := rec.StartSpan(ctx, SpanDecode)
	out, err := Decompress(codes, cfg, outBits)
	sp.End(telemetry.F("codes", len(codes)), telemetry.F("out_bits", outBits))
	return out, err
}

// DecompressTrace is Decompress with an optional per-step trace callback
// (used to regenerate the paper's Figure 4).
func DecompressTrace(codes []Code, cfg Config, outBits int, trace func(DecompressTraceEvent)) (*bitvec.Vector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return decompressWithDict(codes, cfg, outBits, trace, func() (*dict, error) { return acquireDict(cfg, nil), nil })
}

func decompressWithDict(codes []Code, cfg Config, outBits int, trace func(DecompressTraceEvent), mk func() (*dict, error)) (*bitvec.Vector, error) {
	if outBits < 0 {
		return nil, fmt.Errorf("core: negative output length %d", outBits)
	}
	out := bitvec.New(outBits)
	if len(codes) == 0 {
		if outBits != 0 {
			return nil, fmt.Errorf("core: empty code stream for %d output bits", outBits)
		}
		return out, nil
	}

	cc := cfg.CharBits
	d, err := mk()
	if err != nil {
		return nil, err
	}
	defer releaseDict(d)
	// The decompressor only replays adds — it never asks for a child —
	// so the dictionary can skip child-index maintenance entirely. Set
	// after mk(): a preload factory still installs its index (preload
	// verifies prefix-closure through lookupChild).
	d.noChildIndex = true
	pos := 0
	prev := noCode
	var scratch []uint64

	writeChars := func(chars []uint64) {
		for _, ch := range chars {
			out.SetChunk(pos, cc, ch)
			pos += cc
		}
	}

	for step, c := range codes {
		// Mirror the compressor's ordering: its dictionary-add attempt —
		// including any FullReset — happened after emitting the previous
		// code and before emitting this one, so the add must be prepared
		// before this code is interpreted.
		pending := false
		if prev != noCode {
			pending = d.prepareAdd(prev)
		}

		special := false
		scratch = scratch[:0]
		switch {
		case d.defined(c):
			scratch = d.stringOf(c, scratch)
		case pending && c == d.next:
			// Figure 4f: the code references the entry about to be created.
			// Its string is string(prev) + firstChar(prev).
			scratch = d.stringOf(prev, scratch)
			scratch = append(scratch, d.firstChar[prev])
			special = true
		default:
			return nil, fmt.Errorf("core: code %d at position %d is undefined (next free %d)", c, step, d.next)
		}

		var entry *TraceEntry
		if pending {
			nc := d.commitAdd(prev, scratch[0])
			if trace != nil {
				// The rendered entry string exists only for the trace; the
				// untraced hot path never materializes it.
				entry = &TraceEntry{Code: nc, Str: stringBits(d, nc, cc)}
			}
			if special && nc != c {
				return nil, fmt.Errorf("core: special-case entry mismatch: created %d, referenced %d", nc, c)
			}
		}

		if pos+len(scratch)*cc < pos { // overflow guard
			return nil, fmt.Errorf("core: output overflow")
		}
		if trace != nil {
			outStr := ""
			for _, ch := range scratch {
				outStr += charBits(ch, cc)
			}
			buf := ""
			if prev != noCode {
				buf = bufferLabel(d, prev, cc)
			}
			trace(DecompressTraceEvent{Step: step, Input: c, Buffer: buf, Output: outStr, NewEntry: entry, Special: special})
		}
		writeChars(scratch)
		prev = c
	}

	produced := pos
	if produced < outBits {
		return nil, fmt.Errorf("core: code stream produced %d bits, need %d", produced, outBits)
	}
	if produced-outBits >= cc {
		return nil, fmt.Errorf("core: code stream produced %d bits, more than a character beyond %d", produced, outBits)
	}
	return out, nil
}
