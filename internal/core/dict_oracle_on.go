//go:build lzwtc_dictoracle

package core

// dictOracle enables the differential oracle build: every dict maintains
// a shadow refMatcher (the historical map-based child index) and
// findChild panics through the invariant chokepoint if the flat matcher
// ever disagrees with it. `make dict-oracle` runs the core test suite —
// conformance corpus included — in this mode.
const dictOracle = true
