package core

import (
	"sync"
	"sync/atomic"

	"lzwtc/internal/telemetry"
)

// The dictionary arena: compression and decompression runs check their
// dict back in when they finish, and the next run — same goroutine or a
// different internal/parallel worker — reinitializes the backing arrays
// in place instead of reallocating seven columns plus the probe table.
// Per-shard and per-batch-job dictionary construction (the FullReset-
// equivalent boundaries of the sharded mode) therefore costs a memclr,
// not an allocation storm. A recycled dict whose arrays are too small
// for the requested configuration is dropped and a fresh one allocated
// (an arena miss).
var dictPool sync.Pool

// Global arena effectiveness counters. Runs without a telemetry
// recorder still count here, so ArenaStats always reflects the whole
// process; recorder-carrying runs additionally mirror the counts into
// their registry (MetricDictPoolRecycles / MetricDictPoolMisses).
var (
	arenaRecycles atomic.Int64
	arenaMisses   atomic.Int64
)

// ArenaStats reports process-lifetime dictionary arena counts: recycles
// (a pooled dict was reinitialized in place) and misses (a fresh dict
// was allocated).
func ArenaStats() (recycles, misses int64) {
	return arenaRecycles.Load(), arenaMisses.Load()
}

// acquireDict returns a ready dictionary for cfg, recycled from the
// arena when possible. rec (nil-safe) receives the recycle/miss counter
// increment when it carries a registry.
func acquireDict(cfg Config, rec *telemetry.Recorder) *dict {
	if v := dictPool.Get(); v != nil {
		d := v.(*dict)
		if d.fits(cfg) {
			d.reinit(cfg)
			countArena(rec, true)
			return d
		}
		// Too small for this configuration: let the GC have it and pay
		// for a fresh allocation.
	}
	countArena(rec, false)
	return newDict(cfg)
}

// releaseDict checks a dictionary back into the arena. Safe on nil. The
// dict must not be referenced by the caller afterwards; every acquire
// path reinitializes before use, so stale contents can never leak into
// a later run.
func releaseDict(d *dict) {
	if d == nil {
		return
	}
	dictPool.Put(d)
}

func countArena(rec *telemetry.Recorder, recycled bool) {
	if recycled {
		arenaRecycles.Add(1)
	} else {
		arenaMisses.Add(1)
	}
	reg := rec.Registry()
	if reg == nil {
		return
	}
	if recycled {
		reg.Counter(MetricDictPoolRecycles, "dictionaries recycled from the arena").Inc()
	} else {
		reg.Counter(MetricDictPoolMisses, "dictionaries freshly allocated (arena miss)").Inc()
	}
}
