package core

import (
	"math/rand"
	"testing"

	"lzwtc/internal/bitvec"
	"lzwtc/internal/telemetry"
)

// overheadWorkload builds the ~200k-bit, 80%-X stream used to measure
// telemetry overhead against the pre-instrumentation baseline. The
// shape (seed 42, 80/15/5 X/0/1 mix, DefaultConfig) must stay fixed so
// numbers remain comparable across revisions.
func overheadWorkload() (*bitvec.Vector, Config) {
	rng := rand.New(rand.NewSource(42))
	v := bitvec.New(200000)
	for i := 0; i < v.Len(); i++ {
		r := rng.Float64()
		switch {
		case r < 0.80:
			// X
		case r < 0.95:
			v.Set(i, bitvec.Zero)
		default:
			v.Set(i, bitvec.One)
		}
	}
	return v, DefaultConfig()
}

// BenchmarkCompressTelemetryDisabled is the acceptance benchmark for
// the instrumented-but-disabled hot path: it must stay within 2% of the
// uninstrumented seed compressor on the same workload.
func BenchmarkCompressTelemetryDisabled(b *testing.B) {
	stream, cfg := overheadWorkload()
	b.SetBytes(int64(stream.Len() / 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompressObserved(stream, cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompressTelemetryMetrics measures the metrics-only enabled
// path (registry histograms, no event sinks) for comparison.
func BenchmarkCompressTelemetryMetrics(b *testing.B) {
	stream, cfg := overheadWorkload()
	rec := telemetry.New(telemetry.NewRegistry())
	b.SetBytes(int64(stream.Len() / 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompressObserved(stream, cfg, rec); err != nil {
			b.Fatal(err)
		}
	}
}
