//go:build !lzwtc_dictoracle

package core

// dictOracle is off in normal builds: the flat matcher runs alone and
// the refMatcher shadow is never allocated. See dict_oracle_on.go.
const dictOracle = false
