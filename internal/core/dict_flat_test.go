package core

import (
	"math/rand"
	"testing"
)

// TestDefinedBoundaries pins down defined's ranges: literals are always
// defined, string codes only once assigned, and everything from next up
// is undefined.
func TestDefinedBoundaries(t *testing.T) {
	cfg := Config{CharBits: 2, DictSize: 8, Fill: FillRepeat, Tie: TieOldest, Full: FullFreeze}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	d := newDict(cfg)

	// Fresh dictionary: exactly the literals [0, 4) are defined.
	for c := Code(0); c < 4; c++ {
		if !d.defined(c) {
			t.Errorf("literal %d undefined in fresh dictionary", c)
		}
	}
	for c := Code(4); c < 10; c++ {
		if d.defined(c) {
			t.Errorf("code %d defined in fresh dictionary", c)
		}
	}

	// One string entry: code 4 becomes defined, 5 stays undefined.
	c, ok := d.add(1, 0)
	if !ok || c != 4 {
		t.Fatalf("add = (%d, %v), want (4, true)", c, ok)
	}
	if !d.defined(4) {
		t.Error("string code 4 undefined after add")
	}
	if d.defined(5) {
		t.Error("code 5 defined with only one string entry")
	}

	// Degenerate DictSize == 2^CharBits: every code is a literal, the
	// dictionary is born full, and no add can ever succeed.
	edge := Config{CharBits: 2, DictSize: 4, Fill: FillRepeat, Tie: TieOldest, Full: FullReset}
	if err := edge.Validate(); err != nil {
		t.Fatal(err)
	}
	de := newDict(edge)
	if !de.full() {
		t.Error("2^CharBits dictionary not full at birth")
	}
	if _, ok := de.add(0, 1); ok {
		t.Error("add succeeded in a literals-only dictionary")
	}
	if de.resets != 0 {
		t.Errorf("literals-only dictionary reset %d times; it is permanently frozen", de.resets)
	}
	for c := Code(0); c < 4; c++ {
		if !de.defined(c) {
			t.Errorf("literal %d undefined in literals-only dictionary", c)
		}
	}
	if de.defined(4) {
		t.Error("code 4 defined in literals-only dictionary")
	}
}

// refFill is the per-bit residual fill the branch-free encoder.fill
// replaced: walk the character's bits in stream order and substitute
// every X per policy, threading lastBit through FillRepeat.
func refFill(val, care uint64, cc int, policy FillPolicy, lastBit uint64) (out, last uint64) {
	last = lastBit
	for j := 0; j < cc; j++ {
		b := val >> uint(j) & 1
		if care>>uint(j)&1 == 0 {
			switch policy {
			case FillZero:
				b = 0
			case FillOne:
				b = 1
			default:
				b = last
			}
		}
		out |= b << uint(j)
		last = b
	}
	return out, out >> uint(cc-1) & 1
}

// TestFillMatchesPerBitReference drives the branch-free fill against the
// per-bit reference over every CharBits, policy and incoming lastBit,
// with exhaustive (val, care) coverage for narrow characters and random
// coverage for wide ones.
func TestFillMatchesPerBitReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	check := func(cc int, policy FillPolicy, lastBit, val, care uint64) {
		t.Helper()
		mask := uint64(1)<<uint(cc) - 1
		cfg := Config{CharBits: cc, DictSize: 1 << uint(cc), Fill: policy, Tie: TieOldest, Full: FullFreeze}
		e := &encoder{cfg: cfg, fullMask: mask, lastBit: lastBit}
		got := e.fill(val, care)
		want, wantLast := refFill(val, care, cc, policy, lastBit)
		if got != want || e.lastBit != wantLast {
			t.Fatalf("cc=%d %v lastBit=%d val=%0*b care=%0*b: fill=(%0*b, last %d), want (%0*b, last %d)",
				cc, policy, lastBit, cc, val, cc, care, cc, got, e.lastBit, cc, want, wantLast)
		}
	}
	for _, policy := range []FillPolicy{FillZero, FillOne, FillRepeat} {
		for lastBit := uint64(0); lastBit <= 1; lastBit++ {
			// Exhaustive for cc <= 6: every care mask times every val
			// within it (fill's contract: val is 0 where care is 0).
			for cc := 1; cc <= 6; cc++ {
				mask := uint64(1)<<uint(cc) - 1
				for care := uint64(0); care <= mask; care++ {
					for val := uint64(0); val <= mask; val++ {
						if val&^care != 0 {
							continue
						}
						check(cc, policy, lastBit, val, care)
					}
				}
			}
			// Random for the full CharBits range, X-heavy and X-light.
			for cc := 7; cc <= 16; cc++ {
				mask := uint64(1)<<uint(cc) - 1
				for trial := 0; trial < 200; trial++ {
					care := rng.Uint64() & mask
					if trial%2 == 0 {
						care &= rng.Uint64() // bias toward more X positions
					}
					check(cc, policy, lastBit, rng.Uint64()&care, care)
				}
			}
		}
	}
}

// FuzzFindChildEquivalence grows a dictionary from fuzzer-chosen adds and
// replays fuzzer-chosen (val, care) queries through both the flat matcher
// and the retained map-based reference, under all three tie-break
// policies. The reference shadow mirrors every add and every FullReset.
func FuzzFindChildEquivalence(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 0, 0}, []byte{0, 1, 2, 1, 0, 3, 0xff, 0x00})
	f.Add([]byte{2, 8, 0, 0, 1, 0}, []byte{0, 5, 1, 1, 9, 0, 1, 3, 0x05, 0x0a})
	f.Add([]byte{3, 0, 0, 0, 2, 1}, []byte{0, 1, 7, 0, 2, 6, 1, 0, 0xf0, 0xff})
	f.Add([]byte{1, 0, 0, 0, 0, 1}, []byte{})     // DictSize == 2^CharBits, FullReset
	f.Add([]byte{0, 0, 0, 0, 0, 0}, []byte{1, 1}) // DictSize == 2^CharBits, FullFreeze
	// Deep-chain seeds for the bit-sliced kernel: 70 children under one
	// literal parent cross the 64-lane block boundary, then all-X
	// (care = 0), single-bit and exact queries rank the multi-block
	// candidate set under every tie policy. The 64-add variant leaves the
	// tail block exactly full (TieNewest's lane arithmetic wraps).
	deep := func(adds int) []byte {
		ops := make([]byte, 0, 4*adds+16)
		for i := 0; i < adds; i++ {
			ops = append(ops, 0, 1, byte(i), 0) // add child i under literal 1
		}
		ops = append(ops,
			1, 1, 0, 0, // all-X query on the deep chain
			1, 1, 0x80, 0x80, // single cared bit
			1, 1, byte(adds-1), 0xff, // exact newest child
			1, 1, 0x05, 0x0f) // low-nibble cube
		return ops
	}
	f.Add([]byte{7, 200, 0, 0, 0, 0}, deep(70)) // cc8, chain past one block
	f.Add([]byte{7, 200, 0, 0, 1, 0}, deep(64)) // cc8, tail block exactly full

	f.Fuzz(func(t *testing.T, seed, ops []byte) {
		if len(seed) < 6 {
			return
		}
		// fuzzConfig covers CharBits 1..4 and dictionary sizes down to the
		// literals-only edge; widen CharBits to 8 for longer X masks.
		cfg := fuzzConfig(seed)
		cfg.CharBits = int(seed[0]%8) + 1
		cfg.DictSize = 1<<uint(cfg.CharBits) + int(seed[1])
		cfg.EntryBits = 0
		if err := cfg.Validate(); err != nil {
			t.Fatalf("derived config invalid: %v", err)
		}
		d := newDict(cfg)
		ref := newRefMatcher(cfg)
		fullMask := uint64(1)<<uint(cfg.CharBits) - 1

		for i := 0; i+3 < len(ops); i += 4 {
			b := ops[i : i+4]
			if b[0]%3 == 0 {
				// Add string(parent)+char; mirror resets and the add into
				// the reference in the same order the dictionary applies
				// them (a FullReset fires before the entry is created).
				parent := Code(uint64(b[1]) % uint64(d.next))
				char := uint64(b[2]) % uint64(cfg.Literals())
				if _, dup := d.lookupChild(parent, char); dup {
					continue
				}
				resets := d.resets
				c, ok := d.add(parent, char)
				if d.resets > resets {
					ref.reset()
				}
				if ok {
					ref.add(parent, char, c)
				}
				continue
			}
			// Query under every tie policy: construction is policy-
			// independent, so one dictionary serves all three.
			code := Code(uint64(b[1]) % uint64(d.next))
			val := uint64(b[2]) & fullMask
			care := uint64(b[3]) & fullMask
			for _, tie := range []TieBreak{TieOldest, TieNewest, TieWidest} {
				d.cfg.Tie = tie
				ref.cfg.Tie = tie
				if d.ref != nil {
					d.ref.cfg.Tie = tie // keep the build-tag oracle coherent
				}
				got, gok := d.findChild(code, val, care, fullMask)
				want, wok := ref.findChild(code, val, care, fullMask)
				if gok != wok || (gok && got != want) {
					t.Fatalf("tie=%v code=%d val=%#x care=%#x: flat=(%d,%v) ref=(%d,%v)",
						tie, code, val, care, got, gok, want, wok)
				}
			}
		}
	})
}
