package core

import (
	"context"
	"fmt"
	"math/bits"

	"lzwtc/internal/bitio"
	"lzwtc/internal/bitvec"
	"lzwtc/internal/telemetry"
)

// Stats summarizes one compression run.
type Stats struct {
	InputBits      int // uncompressed stream length (before char padding)
	Chars          int // characters consumed (ceil(InputBits/C_C))
	CodesEmitted   int // total codes in the output
	CompressedBits int // CodesEmitted * C_E
	LiteralCodes   int // emitted codes in the literal range
	StringCodes    int // emitted codes in the dictionary range
	DictEntries    int // string entries created (net of resets)
	DictResets     int // FullReset occurrences
	MaxMatchChars  int // longest emitted string, in characters
	MaxEntryChars  int // longest dictionary string created, in characters
	ResidualFills  int // characters concretized by the fill policy
	DynamicFills   int // X-laden characters concretized by a dictionary walk
}

// Ratio returns the compression ratio (1 - compressed/original) in [0,1].
// Negative values indicate expansion. Empty runs return 0; consumers
// that must distinguish "no compression" from "no input" check Empty
// (telemetry run records carry it as an explicit field).
func (s Stats) Ratio() float64 {
	if s.InputBits == 0 {
		return 0
	}
	return 1 - float64(s.CompressedBits)/float64(s.InputBits)
}

// Empty reports whether the run consumed no input, the case where
// Ratio's 0 means "nothing happened" rather than "no size change".
func (s Stats) Empty() bool { return s.InputBits == 0 }

// Result is a compressed test stream: the code sequence plus everything
// needed to invert it.
type Result struct {
	Cfg       Config
	Codes     []Code
	InputBits int
	Stats     Stats
}

// Pack serializes the code sequence as fixed-width C_E-bit codes, MSB
// first — exactly the bit stream the ATE would feed the decompressor.
func (r *Result) Pack() []byte {
	var w bitio.Writer
	cb := r.Cfg.CodeBits()
	for _, c := range r.Codes {
		w.WriteBits(uint64(c), cb)
	}
	return w.Bytes()
}

// UnpackCodes parses n fixed-width codes from a packed stream.
func UnpackCodes(data []byte, n int, cfg Config) ([]Code, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := bitio.NewReader(data, -1)
	cb := cfg.CodeBits()
	codes := make([]Code, 0, n)
	for i := 0; i < n; i++ {
		v, err := r.ReadBits(cb)
		if err != nil {
			return nil, fmt.Errorf("core: truncated code stream at code %d: %w", i, err)
		}
		codes = append(codes, Code(v))
	}
	return codes, nil
}

// TraceEntry describes a dictionary entry creation in a trace.
type TraceEntry struct {
	Code Code
	Str  string // the entry's uncompressed bits
}

// TraceEvent reports one compressor step, mirroring the columns of the
// paper's Figure 3 (Buffer, Input, Output, dictionary action).
type TraceEvent struct {
	Step      int
	Buffer    string // contents of the Buffer memory element ("2" or bits)
	BufferStr string // uncompressed bits the buffer represents
	Input     string // current input character after X assignment ("" at end)
	RawInput  string // current input character as read (may contain X)
	Emitted   *Code  // code appended to the compressed output, if any
	NewEntry  *TraceEntry
}

// String renders the event as one Figure 3 row, for human-readable
// event sinks (the JSONL sink marshals the struct itself).
func (ev TraceEvent) String() string {
	em, ne := "-", "-"
	if ev.Emitted != nil {
		em = fmt.Sprintf("%d", *ev.Emitted)
	}
	if ev.NewEntry != nil {
		ne = fmt.Sprintf("%d=%s", ev.NewEntry.Code, ev.NewEntry.Str)
	}
	return fmt.Sprintf("step=%d buffer=%s(%s) in=%s raw=%s out=%s new=%s",
		ev.Step, ev.Buffer, ev.BufferStr, ev.Input, ev.RawInput, em, ne)
}

// Compress compresses a three-valued stream under cfg.
func Compress(stream *bitvec.Vector, cfg Config) (*Result, error) {
	return CompressObserved(stream, cfg, nil)
}

// CompressObserved is Compress instrumented through a telemetry
// recorder: per-code match-length and dictionary-occupancy histograms
// into the recorder's registry, and a run record (EventCompressRun) to
// its sinks. A nil recorder is the production fast path — it costs one
// pointer check per emitted code.
func CompressObserved(stream *bitvec.Vector, cfg Config, rec *telemetry.Recorder) (*Result, error) {
	return CompressObservedCtx(context.Background(), stream, cfg, rec)
}

// CompressObservedCtx is CompressObserved threaded through a context:
// when ctx carries a trace span (and rec has sinks), the dictionary
// build and the match loop are recorded as child spans of it, so a
// request trace attributes compression time to its internal phases.
// With a nil recorder the context is never touched — the disabled path
// stays one pointer check and adds no allocations.
func CompressObservedCtx(ctx context.Context, stream *bitvec.Vector, cfg Config, rec *telemetry.Recorder) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return compressInternal(ctx, stream, cfg, rec, func() (*dict, error) { return acquireDict(cfg, rec), nil })
}

// CompressTrace is Compress with a per-step trace callback (used to
// regenerate the paper's Figure 3). The callback rides the telemetry
// event stream: each EventCompressStep event carries one TraceEvent,
// and the adapter sink below hands it to fn in emission order.
func CompressTrace(stream *bitvec.Vector, cfg Config, trace func(TraceEvent)) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return compressInternal(context.Background(), stream, cfg, traceRecorder(trace), func() (*dict, error) { return acquireDict(cfg, nil), nil })
}

// traceRecorder adapts a TraceEvent callback into an events-only
// telemetry recorder.
func traceRecorder(trace func(TraceEvent)) *telemetry.Recorder {
	if trace == nil {
		return nil
	}
	return telemetry.New(nil, telemetry.SinkFunc(func(ev telemetry.Event) {
		if te, ok := StepTraceEvent(ev); ok {
			trace(te)
		}
	}))
}

// compressWithDict is the preloaded-dictionary entry point.
func compressWithDict(stream *bitvec.Vector, cfg Config, mk func() (*dict, error)) (*Result, error) {
	return compressInternal(context.Background(), stream, cfg, nil, mk)
}

func compressInternal(ctx context.Context, stream *bitvec.Vector, cfg Config, rec *telemetry.Recorder, mk func() (*dict, error)) (*Result, error) {
	res := &Result{Cfg: cfg, InputBits: stream.Len()}
	res.Stats.InputBits = stream.Len()
	if stream.Len() == 0 {
		recordCompressRun(rec, res.Stats)
		return res, nil
	}

	cc := cfg.CharBits
	nChars := (stream.Len() + cc - 1) / cc
	fullMask := uint64(1)<<uint(cc) - 1
	// One code per character is the worst case (nothing ever matches);
	// reserving it up front keeps the emit path free of append growth —
	// at 4 bytes per character the transient overshoot is well under the
	// stream's own footprint.
	res.Codes = make([]Code, 0, nChars)
	_, dsp := rec.StartSpan(ctx, SpanDictBuild)
	d, err := mk()
	dsp.End()
	if err != nil {
		return nil, err
	}
	defer releaseDict(d)
	_, msp := rec.StartSpan(ctx, SpanMatchLoop)
	e := &encoder{cfg: cfg, d: d, res: res, stream: stream, rec: rec,
		m: newCompressMetrics(rec, cfg), tracing: rec.Tracing(), fullMask: fullMask}

	// Step a of Figure 3: the first message character initializes Buffer.
	val, care := stream.Chunk(0, cc)
	first := e.fill(val, care)
	if care != fullMask {
		res.Stats.ResidualFills++
	}
	buffer := Code(first)
	// bufLen mirrors d.len(buffer) without the dictionary load: a match
	// extends the string by one character, a miss restarts from a
	// one-character literal.
	bufLen := 1
	e.traceStep(buffer, 0, false, nil, nil)

	// The per-character chunk extraction is written out against the raw
	// plane words (same contract as stream.Chunk: bit pos+j at result
	// bit j, X past the end). Every iteration of the match loop pays it,
	// and the call + re-validation overhead of Chunk measurably shows
	// next to the bit-sliced child kernel. pos < Len() holds for every
	// character start, so only the high word needs a bounds check; a
	// shift by 64 when off == 0 drops out as zero in Go.
	valw, carew := stream.Planes()
	tieOldest := cfg.Tie == TieOldest
	// Loop-local mirrors of the result fields the hot path touches every
	// character: appending through res.Codes and bumping res.Stats fields
	// through the pointer defeats register allocation; these live in
	// registers and are written back once after the loop.
	codes := res.Codes
	var dynFills, resFills, dictEntries, maxEntry, maxMatch, litCodes, strCodes int
	resFills = res.Stats.ResidualFills // first char may have residual-filled
	maxChars, dictSize := d.maxChars, cfg.DictSize
	direct := d.directBlocks
	for i, pos := 1, cc; i < nChars; i, pos = i+1, pos+cc {
		w, off := pos>>6, uint(pos&63)
		val := valw[w] >> off & fullMask
		care := carew[w] >> off & fullMask
		if off+uint(cc) > 64 {
			// Straddling word boundary — never taken when cc divides 64.
			var hv, hc uint64
			if w+1 < len(valw) {
				hv, hc = valw[w+1], carew[w+1]
			}
			val |= hv << (64 - off) & fullMask
			care |= hc << (64 - off) & fullMask
		}
		// Dispatch straight to the matcher arm: findChild is only the
		// exact-vs-masked split plus the oracle cross-check, and its call
		// frame shows up at this loop's query rate. Oracle builds keep
		// going through findChild so every production lookup stays
		// cross-checked.
		var child Code
		var ok bool
		if dictOracle {
			child, ok = d.findChild(buffer, val, care, fullMask)
		} else if care == fullMask {
			child, ok = d.lookupChild(buffer, val)
		} else if tieOldest && !d.hasXLanes {
			// TieOldest fast arms, sharing one chain-header load. All-X
			// characters resolve positionally from the header alone and
			// don't flip the dictionary into eager plane maintenance;
			// single-block chains (the overwhelming shape) run the
			// bit-sliced kernel right here, skipping the call and the
			// is-X plane (production lanes are concrete). Longer chains
			// and pre-sync dictionaries take the full path.
			ch := d.chain[buffer]
			if ch.count == 0 || val&^care != 0 {
				// no children, or val demands bits outside its care mask
			} else if care == 0 {
				child, ok = ch.first, true
			} else if d.anyMasked && int(ch.count) <= 64 {
				// Under the direct block layout the plane and lane-code
				// addresses come from the code itself, so these loads issue
				// in parallel with the chain-header load above instead of
				// chained behind it; loading lane 0's code up front warms
				// its cache line while the kernel runs (TieOldest survivors
				// are biased to the low lanes).
				b := int(ch.head)
				if direct {
					b = int(buffer)
				}
				base := b * cc
				lanes := ^uint64(0) >> (64 - uint(ch.count))
				for m := care; m != 0 && lanes != 0; m &= m - 1 {
					t := bits.TrailingZeros64(m)
					lanes &^= d.blkVal[base+t] ^ (-(val >> uint(t) & 1))
				}
				if lanes != 0 {
					child, ok = d.blkCodes[b*64+bits.TrailingZeros64(lanes)], true
				}
			} else {
				child, ok = d.findChildMasked(buffer, val, care, fullMask)
			}
		} else {
			child, ok = d.findChildMasked(buffer, val, care, fullMask)
		}
		if ok {
			// Dynamic don't-care assignment: the X bits of this character
			// are bound to the child's character, extending the match.
			if care != fullMask {
				dynFills++
			}
			buffer = child
			bufLen++
			if e.tracing {
				e.traceStep(buffer, pos, false, nil, nil)
			}
			continue
		}
		// No continuation: emit Buffer, concretize the character residually,
		// record the new dictionary entry, restart from the literal.
		codes = append(codes, buffer)
		if bufLen > maxMatch {
			maxMatch = bufLen
		}
		if buffer < d.firstCode {
			litCodes++
		} else {
			strCodes++
		}
		if m := e.m; m != nil {
			m.observeEmit(bufLen, int(d.next-d.firstCode))
		}
		// FillRepeat's chain bit is the previous character's top bit, which
		// is always Buffer's last character's top bit (after a miss, Buffer
		// is the literal code of the concretized character, whose lastChar
		// is itself). Refreshing it here, once per emitted code, keeps the
		// matched fast path free of a cold lastChar load per character.
		e.lastBit = d.lastChar[buffer] >> uint(cc-1) & 1
		concrete := e.fill(val, care)
		if care != fullMask {
			resFills++
		}
		// Dispatch the add directly: an in-budget add into a non-full
		// dictionary (the overwhelming case between resets) goes straight
		// to commitAdd; the policy edges (length cap, FullFreeze, reset,
		// parent invalidation) stay behind addWithLen.
		var newCode Code
		added := false
		if bufLen < maxChars && int(d.next) < dictSize {
			newCode = d.commitAdd(buffer, concrete)
			added = true
		} else {
			newCode, added = d.addWithLen(buffer, concrete, bufLen)
		}
		var newEntry *TraceEntry
		if added {
			dictEntries++
			if n := bufLen + 1; n > maxEntry {
				maxEntry = n
			}
			if e.tracing {
				newEntry = &TraceEntry{Code: newCode, Str: stringBits(d, newCode, cc)}
			}
		}
		buffer = Code(concrete)
		bufLen = 1
		if e.tracing {
			// Taking the emitted code's address here would make it escape
			// into traceStep on every iteration; only traced runs pay it.
			emitted := codes[len(codes)-1]
			e.traceStep(buffer, pos, false, &emitted, newEntry)
		}
	}
	// Figure 3k: the final Buffer completes the compressed output.
	codes = append(codes, buffer)
	if bufLen > maxMatch {
		maxMatch = bufLen
	}
	if buffer < d.firstCode {
		litCodes++
	} else {
		strCodes++
	}
	if m := e.m; m != nil {
		m.observeEmit(bufLen, int(d.next-d.firstCode))
	}
	res.Codes = codes
	res.Stats.DynamicFills += dynFills
	res.Stats.ResidualFills = resFills
	res.Stats.DictEntries += dictEntries
	if maxEntry > res.Stats.MaxEntryChars {
		res.Stats.MaxEntryChars = maxEntry
	}
	if maxMatch > res.Stats.MaxMatchChars {
		res.Stats.MaxMatchChars = maxMatch
	}
	res.Stats.LiteralCodes += litCodes
	res.Stats.StringCodes += strCodes
	if e.tracing {
		last := codes[len(codes)-1]
		e.traceStep(buffer, 0, true, &last, nil)
	}

	res.Stats.Chars = nChars
	res.Stats.CodesEmitted = len(res.Codes)
	res.Stats.CompressedBits = len(res.Codes) * cfg.CodeBits()
	res.Stats.DictResets = d.resets
	msp.End(telemetry.F("chars", nChars), telemetry.F("codes", len(res.Codes)))
	recordCompressRun(rec, res.Stats)
	return res, nil
}

type encoder struct {
	cfg      Config
	d        *dict
	res      *Result
	stream   *bitvec.Vector
	rec      *telemetry.Recorder
	m        *compressMetrics
	tracing  bool
	fullMask uint64
	lastBit  uint64
	step     int
}

// fill concretizes a three-valued character per the residual fill policy,
// branch-free over the character's bits. Bit j of the character is stream
// bit pos+j, so ascending bit order is stream order — what FillRepeat's
// lastBit chain is defined over: each X bit copies the concretized bit
// below it, and lastBit always ends as the character's top bit.
//
// Chunk guarantees val is 0 wherever care is 0, so FillZero is val
// itself and FillOne just ORs in the X positions. FillRepeat is a
// carry-propagation smear: widen by one bit (a virtual cared position -1
// holding the incoming lastBit), then for each run of X positions above
// a cared bit, adding the cared bit's value into the run's ones either
// ripples them to zero (value 1 — re-set them via the OR with vp) or
// leaves them set (value 0 — cleared by the &^), yielding exactly
// "repeat the nearest specified bit below".
func (e *encoder) fill(val, care uint64) uint64 {
	cc := uint(e.cfg.CharBits)
	var out uint64
	switch e.cfg.Fill {
	case FillZero:
		out = val
	case FillOne:
		out = val | (e.fullMask &^ care)
	default: // FillRepeat
		wmask := e.fullMask<<1 | 1
		vp := val<<1 | e.lastBit
		gaps := ^(care<<1 | 1) & wmask
		spread := gaps &^ (gaps + vp<<1)
		out = (vp | spread) >> 1 & e.fullMask
	}
	e.lastBit = out >> (cc - 1) & 1
	return out
}

// traceStep emits one Figure 3 step as an EventCompressStep telemetry
// event. rawPos is the stream position of the character just consumed;
// atEnd marks the final flush step, which has no input character. The
// whole rendering — buffer labels, uncompressed strings, the raw
// three-valued character — is gated on tracing, so untraced runs never
// build a single step string.
func (e *encoder) traceStep(buffer Code, rawPos int, atEnd bool, emitted *Code, entry *TraceEntry) {
	if !e.tracing {
		return
	}
	cc := e.cfg.CharBits
	bufStr := stringBits(e.d, buffer, cc)
	ev := TraceEvent{
		Step:      e.step,
		Buffer:    bufferLabel(e.d, buffer, cc),
		BufferStr: bufStr,
		Emitted:   emitted,
		NewEntry:  entry,
	}
	if !atEnd {
		ev.RawInput = rawChar(e.stream, rawPos, cc)
		ev.Input = bufStr[len(bufStr)-cc:]
	}
	e.rec.Emit(EventCompressStep, telemetry.F("event", ev))
	e.step++
}

// charBits renders a character value as C_C bits in stream order
// (stream-earliest bit first).
func charBits(v uint64, cc int) string {
	b := make([]byte, cc)
	for j := 0; j < cc; j++ {
		b[j] = '0' + byte(v>>uint(j)&1)
	}
	return string(b)
}

// stringBits renders the uncompressed bits of a code in stream order.
func stringBits(d *dict, c Code, cc int) string {
	chars := d.stringOf(c, nil)
	out := make([]byte, 0, len(chars)*cc)
	for _, ch := range chars {
		out = append(out, charBits(ch, cc)...)
	}
	return string(out)
}

// bufferLabel renders a buffer for traces: literals as their bits,
// string codes as the decimal code, matching Figure 3's convention.
func bufferLabel(d *dict, c Code, cc int) string {
	if c < d.firstCode {
		return charBits(uint64(c), cc)
	}
	return fmt.Sprintf("%d", c)
}

// rawChar renders the three-valued character at stream position pos,
// one byte per trit straight from the value — no per-bit string.
func rawChar(v *bitvec.Vector, pos, cc int) string {
	b := make([]byte, cc)
	for j := 0; j < cc; j++ {
		if pos+j >= v.Len() {
			b[j] = 'X'
			continue
		}
		b[j] = v.Get(pos + j).Byte()
	}
	return string(b)
}
