package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"lzwtc/internal/bitvec"
	"lzwtc/internal/telemetry"
)

// formatTraceEvent renders a TraceEvent in the tuple form used by the
// golden below, captured from the pre-telemetry CompressTrace.
func formatTraceEvent(ev TraceEvent) string {
	em, ne := "-", "-"
	if ev.Emitted != nil {
		em = fmt.Sprintf("%d", *ev.Emitted)
	}
	if ev.NewEntry != nil {
		ne = fmt.Sprintf("%d=%s", ev.NewEntry.Code, ev.NewEntry.Str)
	}
	return fmt.Sprintf("{%d, %q, %q, %q, %q, %q, %q}",
		ev.Step, ev.Buffer, ev.BufferStr, ev.Input, ev.RawInput, em, ne)
}

// TestCompressTraceEventOrder pins the exact event sequence CompressTrace
// produced before the callback was rerouted through telemetry sinks: the
// rewire must not reorder, drop, or alter a single step.
func TestCompressTraceEventOrder(t *testing.T) {
	want := []string{
		`{0, "0", "0", "0", "0", "-", "-"}`,
		`{1, "1", "1", "1", "1", "0", "2=01"}`,
		`{2, "0", "0", "0", "X", "1", "3=10"}`,
		`{3, "2", "01", "1", "X", "-", "-"}`,
		`{4, "1", "1", "1", "1", "2", "4=011"}`,
		`{5, "3", "10", "0", "0", "-", "-"}`,
		`{6, "0", "0", "0", "X", "3", "5=100"}`,
		`{7, "2", "01", "1", "X", "-", "-"}`,
		`{8, "0", "0", "0", "0", "2", "6=010"}`,
		`{9, "2", "01", "1", "X", "-", "-"}`,
		`{10, "4", "011", "1", "1", "-", "-"}`,
		`{11, "1", "1", "1", "1", "4", "7=0111"}`,
		`{12, "3", "10", "0", "0", "-", "-"}`,
		`{13, "5", "100", "0", "X", "-", "-"}`,
		`{14, "0", "0", "0", "0", "5", "-"}`,
		`{15, "0", "0", "0", "0", "0", "-"}`,
		`{16, "0", "0", "", "", "0", "-"}`,
	}
	stream := bitvec.MustParse("01XX10XX0X110X00")
	cfg := Config{CharBits: 1, DictSize: 8, EntryBits: 0}
	var got []string
	if _, err := CompressTrace(stream, cfg, func(ev TraceEvent) {
		got = append(got, formatTraceEvent(ev))
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("trace produced %d events, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
}

// TestCompressStepEventsMatchTraceCallback runs the same stream through
// a JSONL sink and through the CompressTrace callback; both ride the
// same EventCompressStep stream, so the step counts must agree and the
// sink lines must carry the step payload.
func TestCompressStepEventsMatchTraceCallback(t *testing.T) {
	stream := bitvec.MustParse("01XX10XX0X110X00")
	cfg := Config{CharBits: 1, DictSize: 8, EntryBits: 0}

	var steps int
	if _, err := CompressTrace(stream, cfg, func(TraceEvent) { steps++ }); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	rec := telemetry.New(nil, telemetry.NewJSONLSink(&buf))
	if _, err := CompressObserved(stream, cfg, rec); err != nil {
		t.Fatal(err)
	}
	var sinkSteps int
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if strings.Contains(line, `"kind":"compress.step"`) {
			sinkSteps++
		}
	}
	if sinkSteps != steps {
		t.Fatalf("sink saw %d step events, trace callback saw %d", sinkSteps, steps)
	}
	if !strings.Contains(buf.String(), `"kind":"compress.run"`) {
		t.Fatalf("sink missing compress.run record:\n%s", buf.String())
	}
}

// TestCompressObservedMetrics checks the registry aggregates agree with
// the returned Stats, and that the per-code histograms saw one
// observation per emitted code.
func TestCompressObservedMetrics(t *testing.T) {
	stream := bitvec.MustParse("01XX10XX0X110X00" + "1X0X1X0X" + "00110011")
	cfg := Config{CharBits: 2, DictSize: 16, EntryBits: 0}
	reg := telemetry.NewRegistry()
	rec := telemetry.New(reg)
	res, err := CompressObserved(stream, cfg, rec)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	for _, tc := range []struct {
		metric string
		want   int
	}{
		{MetricCompressRuns, 1},
		{MetricCompressEmptyRuns, 0},
		{MetricCompressInputBits, st.InputBits},
		{MetricCompressChars, st.Chars},
		{MetricCompressCodes, st.CodesEmitted},
		{MetricCompressCompressed, st.CompressedBits},
		{MetricCompressLiteralCodes, st.LiteralCodes},
		{MetricCompressStringCodes, st.StringCodes},
		{MetricCompressDictEntries, st.DictEntries},
		{MetricCompressDictResets, st.DictResets},
		{MetricCompressResidualFills, st.ResidualFills},
		{MetricCompressDynamicFills, st.DynamicFills},
	} {
		if got := reg.Counter(tc.metric, "").Value(); got != int64(tc.want) {
			t.Errorf("%s = %d, want %d", tc.metric, got, tc.want)
		}
	}
	if got := reg.Gauge(MetricCompressRatio, "").Value(); got != st.Ratio() {
		t.Errorf("ratio gauge = %v, want %v", got, st.Ratio())
	}
	for _, name := range []string{MetricCompressMatchLen, MetricCompressOccupancy} {
		if got := reg.Histogram(name, "", nil).Count(); got != int64(st.CodesEmitted) {
			t.Errorf("%s count = %d, want %d (one observation per code)", name, got, st.CodesEmitted)
		}
	}
}

// TestCompressObservedEmptyRun: zero-input runs must be explicit in
// telemetry (empty=true event field plus the empty-runs counter), not
// hidden behind Stats.Ratio's silent 0.
func TestCompressObservedEmptyRun(t *testing.T) {
	reg := telemetry.NewRegistry()
	var events []telemetry.Event
	rec := telemetry.New(reg, telemetry.SinkFunc(func(ev telemetry.Event) { events = append(events, ev) }))
	res, err := CompressObserved(bitvec.New(0), DefaultConfig(), rec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Empty() {
		t.Fatal("Stats.Empty() = false for zero-input run")
	}
	if res.Stats.Ratio() != 0 {
		t.Fatalf("empty Ratio = %v, want 0", res.Stats.Ratio())
	}
	if got := reg.Counter(MetricCompressEmptyRuns, "").Value(); got != 1 {
		t.Fatalf("empty-runs counter = %d, want 1", got)
	}
	var run *telemetry.Event
	for i := range events {
		if events[i].Kind == EventCompressRun {
			run = &events[i]
		}
	}
	if run == nil {
		t.Fatalf("no %s event emitted; events: %+v", EventCompressRun, events)
	}
	if v, ok := run.Field("empty"); !ok || v != true {
		t.Fatalf("compress.run empty field = %v, %v; want true", v, ok)
	}
}

// TestCompressNilRecorderMatchesObserved: the nil-recorder path must
// produce byte-identical results to an instrumented run.
func TestCompressNilRecorderMatchesObserved(t *testing.T) {
	stream := bitvec.MustParse("01XX10XX0X110X001XX0")
	cfg := Config{CharBits: 2, DictSize: 16, EntryBits: 0}
	plain, err := Compress(stream, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.New(telemetry.NewRegistry(), telemetry.NewJSONLSink(&bytes.Buffer{}))
	obs, err := CompressObserved(stream, cfg, rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Codes) != len(obs.Codes) {
		t.Fatalf("code counts differ: %d vs %d", len(plain.Codes), len(obs.Codes))
	}
	for i := range plain.Codes {
		if plain.Codes[i] != obs.Codes[i] {
			t.Fatalf("code %d differs: %d vs %d", i, plain.Codes[i], obs.Codes[i])
		}
	}
	if plain.Stats != obs.Stats {
		t.Fatalf("stats differ:\nplain: %+v\nobs:   %+v", plain.Stats, obs.Stats)
	}
}
