// Package core implements the paper's primary contribution: LZW
// compression of scan test vectors with dynamic don't-care assignment.
//
// The input is a three-valued (0/1/X) bit stream (a serialized scan test
// set). The stream is consumed in characters of C_C bits. Don't-care bits
// inside a character are not pre-assigned; instead, while the LZW
// dictionary walk is in progress, an X-laden character is concretized to
// whichever value lets the walk continue along an existing dictionary
// string ("dynamic sliding window" assignment, Section 5 of the paper).
// Only when no dictionary continuation exists is a residual fill policy
// applied.
//
// The dictionary is bounded two ways, mirroring the hardware decompressor
// of Section 5.1: at most N codes (C_E = ceil(log2 N) bits per emitted
// code), and no dictionary string longer than C_MDATA bits, so each entry
// fits one embedded-memory word and decodes with a single memory read.
package core

import (
	"fmt"
	"math/bits"
)

// Code is a compressed LZW code. Codes 0..2^C_C-1 denote literal
// (uncompressed) characters; codes 2^C_C..N-1 denote dictionary strings.
type Code uint32

// TieBreak selects among multiple dictionary children compatible with an
// X-laden input character.
type TieBreak uint8

// Tie-break policies.
const (
	TieOldest TieBreak = iota // lowest code: the longest-lived continuation
	TieNewest                 // highest code: the most recently created
	TieWidest                 // child with the most grandchildren, then lowest code
)

// String names the policy.
func (t TieBreak) String() string {
	switch t {
	case TieOldest:
		return "oldest"
	case TieNewest:
		return "newest"
	case TieWidest:
		return "widest"
	default:
		return fmt.Sprintf("TieBreak(%d)", uint8(t))
	}
}

// FullPolicy selects behaviour once all N dictionary codes are assigned.
type FullPolicy uint8

// Dictionary-full policies.
const (
	FullFreeze FullPolicy = iota // stop adding entries (the paper's choice)
	FullReset                    // discard string entries and rebuild
)

// String names the policy.
func (p FullPolicy) String() string {
	switch p {
	case FullFreeze:
		return "freeze"
	case FullReset:
		return "reset"
	default:
		return fmt.Sprintf("FullPolicy(%d)", uint8(p))
	}
}

// FillPolicy selects how X bits are assigned when no dictionary
// continuation exists (the residual case of the dynamic assignment).
type FillPolicy uint8

// Residual fill policies.
const (
	FillZero   FillPolicy = iota // X -> 0
	FillOne                      // X -> 1
	FillRepeat                   // X -> previous stream bit
)

// String names the policy.
func (p FillPolicy) String() string {
	switch p {
	case FillZero:
		return "zero"
	case FillOne:
		return "one"
	case FillRepeat:
		return "repeat"
	default:
		return fmt.Sprintf("FillPolicy(%d)", uint8(p))
	}
}

// Config carries the LZW configurator parameters (Section 3: "the LZW
// configurator allows for the selection of the LZW dictionary size as well
// as the LZW character size"). Field names follow the paper.
type Config struct {
	// CharBits is C_C, the uncompressed character size in bits (1..16).
	CharBits int
	// DictSize is N, the total number of codes including the 2^C_C
	// literals. Must be at least 2^C_C. C_E = ceil(log2 N).
	DictSize int
	// EntryBits is C_MDATA, the per-entry uncompressed-data width of the
	// decompressor memory, bounding every dictionary string. 0 means
	// unbounded (software-only operation, no hardware correspondence).
	EntryBits int
	// Fill is the residual don't-care fill policy.
	Fill FillPolicy
	// Tie is the dictionary child tie-break policy.
	Tie TieBreak
	// Full is the dictionary-full policy.
	Full FullPolicy
}

// DefaultConfig returns the configuration used for the paper's headline
// results (Table 1): 7-bit characters, 1024-code dictionary and 64-bit
// dictionary entries (63 data bits = 9 characters).
func DefaultConfig() Config {
	return Config{CharBits: 7, DictSize: 1024, EntryBits: 63}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.CharBits < 1 || c.CharBits > 16 {
		return fmt.Errorf("core: CharBits %d out of range [1,16]", c.CharBits)
	}
	if c.DictSize < 1<<uint(c.CharBits) {
		return fmt.Errorf("core: DictSize %d smaller than literal space 2^%d", c.DictSize, c.CharBits)
	}
	if c.DictSize > 1<<24 {
		return fmt.Errorf("core: DictSize %d exceeds 2^24", c.DictSize)
	}
	if c.EntryBits != 0 && c.EntryBits < c.CharBits {
		return fmt.Errorf("core: EntryBits %d smaller than CharBits %d", c.EntryBits, c.CharBits)
	}
	return nil
}

// CodeBits returns C_E, the width in bits of each emitted code.
func (c Config) CodeBits() int {
	return bits.Len(uint(c.DictSize - 1))
}

// Literals returns the number of literal codes, 2^C_C.
func (c Config) Literals() int { return 1 << uint(c.CharBits) }

// MaxChars returns the maximum dictionary string length in characters
// implied by EntryBits (C_MDATA / C_C), or a practically unbounded value
// when EntryBits is 0.
func (c Config) MaxChars() int {
	if c.EntryBits == 0 {
		return 1 << 30
	}
	return c.EntryBits / c.CharBits
}

// LenBits returns C_MLEN, the width of the per-entry length field of the
// decompressor memory: enough to count 1..MaxChars characters.
func (c Config) LenBits() int {
	return bits.Len(uint(c.MaxChars()))
}

// MemoryBits returns the decompressor dictionary memory size in bits,
// N x (C_MLEN + C_MDATA) — the Section 6 sizing metric (for s13207 the
// paper quotes 1024 x 490). Unbounded configurations have no hardware
// realization and return 0.
func (c Config) MemoryBits() int {
	if c.EntryBits == 0 {
		return 0
	}
	return c.DictSize * (c.LenBits() + c.EntryBits)
}
