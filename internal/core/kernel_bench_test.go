package core

import "testing"

// Microbenchmarks for the bit-sliced child-match kernel, shaped after
// the two enumeration strategies it replaced (see DESIGN.md §15): the
// Gosper subset probes liked few X bits over any chain, the sibling
// walk liked short chains under any mask. The kernel is measured on
// both favored shapes plus the all-X positional path and the TieWidest
// rank scan, so a regression on any historical strong point shows up
// here before it shows up in the grid gate (`make bench-gate`).

// benchChainDict builds a dictionary whose literal parent 1 has
// `children` children with consecutive characters, planes synced (one
// masked query flips the dictionary into eager plane maintenance).
func benchChainDict(b *testing.B, tie TieBreak, children int) (*dict, uint64) {
	b.Helper()
	cfg := Config{CharBits: 8, DictSize: 1024, Fill: FillRepeat, Tie: tie, Full: FullFreeze}
	if err := cfg.Validate(); err != nil {
		b.Fatal(err)
	}
	d := newDict(cfg)
	for i := 0; i < children; i++ {
		if _, ok := d.add(1, uint64(i)); !ok {
			b.Fatalf("add %d failed", i)
		}
	}
	fullMask := uint64(1)<<uint(cfg.CharBits) - 1
	d.findChildMasked(1, 0, 1, fullMask) // sync planes, flip anyMasked
	return d, fullMask
}

// Gosper-favored shape: only two X bits (the old path enumerated 4
// subset probes), chain of 48 lanes in one block.
func BenchmarkFindChildMaskedGosper(b *testing.B) {
	d, fullMask := benchChainDict(b, TieOldest, 48)
	care := fullMask &^ 0b11 // bits 0-1 X
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.findChildMasked(1, uint64(i)&care&0x3f, care, fullMask)
	}
}

// Chain-favored shape: a deep 200-lane chain (four blocks) under a
// sparse mask — the old sibling walk scanned every candidate, the
// kernel runs three word ops per block.
func BenchmarkFindChildMaskedChain(b *testing.B) {
	d, fullMask := benchChainDict(b, TieOldest, 200)
	const care = uint64(0x80) // only the top bit cared
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.findChildMasked(1, uint64(i)&care, care, fullMask)
	}
}

// All-X query: resolved positionally from the chain header, no kernel.
func BenchmarkFindChildMaskedAllX(b *testing.B) {
	d, fullMask := benchChainDict(b, TieOldest, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.findChildMasked(1, 0, 0, fullMask)
	}
}

// TieWidest ranks every surviving lane by child count instead of
// stopping at the first survivor — the kernel's worst policy.
func BenchmarkFindChildMaskedWidest(b *testing.B) {
	d, fullMask := benchChainDict(b, TieWidest, 200)
	const care = uint64(0x01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.findChildMasked(1, uint64(i)&care, care, fullMask)
	}
}
