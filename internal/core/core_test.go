package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"lzwtc/internal/bitvec"
)

func cfg1bit(n int) Config {
	return Config{CharBits: 1, DictSize: n}
}

func TestHandWorkedExample(t *testing.T) {
	// 1-bit characters, 16-code dictionary. Hand-simulated LZW:
	// input 0 0 1 0 0 1 0 0 1 -> codes 0,0,1,2,4,3 building entries
	// 2=(0,0) 3=(0,1) 4=(1,0) 5=(2,1) 6=(4,0).
	stream := bitvec.MustParse("001001001")
	res, err := Compress(stream, cfg1bit(16))
	if err != nil {
		t.Fatal(err)
	}
	want := []Code{0, 0, 1, 2, 4, 3}
	if !reflect.DeepEqual(res.Codes, want) {
		t.Fatalf("codes = %v, want %v", res.Codes, want)
	}
	out, err := Decompress(res.Codes, res.Cfg, stream.Len())
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "001001001" {
		t.Fatalf("decompressed %q", out.String())
	}
	if res.Stats.DictEntries != 5 || res.Stats.MaxEntryChars != 3 {
		t.Fatalf("stats = %+v", res.Stats)
	}
}

func TestSpecialCaseCode(t *testing.T) {
	// "000": encoder emits code 2 immediately after creating it, so the
	// decoder sees a code one ahead of its dictionary (Figure 4f).
	stream := bitvec.MustParse("000")
	res, err := Compress(stream, cfg1bit(8))
	if err != nil {
		t.Fatal(err)
	}
	if want := []Code{0, 2}; !reflect.DeepEqual(res.Codes, want) {
		t.Fatalf("codes = %v, want %v", res.Codes, want)
	}
	sawSpecial := false
	out, err := DecompressTrace(res.Codes, res.Cfg, 3, func(ev DecompressTraceEvent) {
		if ev.Special {
			sawSpecial = true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "000" {
		t.Fatalf("decompressed %q", out.String())
	}
	if !sawSpecial {
		t.Fatal("special case not exercised")
	}
}

func TestDynamicAssignmentFollowsDictionary(t *testing.T) {
	// After "0101" trains entries, an all-X tail must be assigned to ride
	// existing dictionary strings, not fall back to the fill policy.
	stream := bitvec.MustParse("0101XXXXXX")
	res, err := Compress(stream, Config{CharBits: 1, DictSize: 32, Fill: FillOne})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DynamicFills == 0 {
		t.Fatalf("expected dynamic fills, stats %+v", res.Stats)
	}
	out, err := Decompress(res.Codes, res.Cfg, stream.Len())
	if err != nil {
		t.Fatal(err)
	}
	if !stream.CompatibleWith(out) {
		t.Fatalf("output %q incompatible with cube %q", out, stream)
	}
}

func TestXHeavyStreamCompressesWell(t *testing.T) {
	// 90% X with clustered care bits: the dynamic assignment should push
	// the ratio far above what literal emission alone would allow.
	rng := rand.New(rand.NewSource(7))
	stream := randomCube(rng, 20000, 0.9)
	res, err := Compress(stream, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r := res.Stats.Ratio(); r < 0.5 {
		t.Fatalf("ratio = %.3f, want > 0.5 on 90%% X stream", r)
	}
	out, err := Decompress(res.Codes, res.Cfg, stream.Len())
	if err != nil {
		t.Fatal(err)
	}
	if !stream.CompatibleWith(out) {
		t.Fatal("decompressed stream violates care bits")
	}
}

func TestDegenerateNoStringCodes(t *testing.T) {
	// DictSize == 2^C_C leaves no compressed codes: every character is a
	// literal and the ratio is exactly 0 (Table 4's collapse column).
	rng := rand.New(rand.NewSource(3))
	stream := randomCube(rng, 7000, 0.8)
	res, err := Compress(stream, Config{CharBits: 7, DictSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.StringCodes != 0 {
		t.Fatalf("got %d string codes from an empty code space", res.Stats.StringCodes)
	}
	if r := res.Stats.Ratio(); r != 0 {
		t.Fatalf("ratio = %v, want 0", r)
	}
}

func TestEntryBoundRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	stream := randomCube(rng, 15000, 0.85)
	cfg := Config{CharBits: 4, DictSize: 512, EntryBits: 12} // max 3 chars
	res, err := Compress(stream, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MaxEntryChars > 3 || res.Stats.MaxMatchChars > 3 {
		t.Fatalf("bound violated: %+v", res.Stats)
	}
	out, err := Decompress(res.Codes, cfg, stream.Len())
	if err != nil {
		t.Fatal(err)
	}
	if !stream.CompatibleWith(out) {
		t.Fatal("bounded-entry round trip violates care bits")
	}
}

func TestLargerEntriesNeverHurt(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	stream := randomCube(rng, 30000, 0.9)
	prev := -1.0
	for _, eb := range []int{63, 127, 255, 511} {
		res, err := Compress(stream, Config{CharBits: 7, DictSize: 1024, EntryBits: eb})
		if err != nil {
			t.Fatal(err)
		}
		r := res.Stats.Ratio()
		if r+1e-9 < prev {
			t.Fatalf("ratio decreased from %.4f to %.4f at EntryBits=%d", prev, r, eb)
		}
		prev = r
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{CharBits: 0, DictSize: 2},
		{CharBits: 17, DictSize: 1 << 17},
		{CharBits: 7, DictSize: 100},                // < 2^7
		{CharBits: 1, DictSize: 1 << 25},            // too large
		{CharBits: 7, DictSize: 1024, EntryBits: 3}, // entry < char
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d (%+v) validated", i, c)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestConfigDerived(t *testing.T) {
	c := DefaultConfig() // C_C=7, N=1024, C_MDATA=63
	if c.CodeBits() != 10 {
		t.Errorf("CodeBits = %d, want 10", c.CodeBits())
	}
	if c.Literals() != 128 {
		t.Errorf("Literals = %d", c.Literals())
	}
	if c.MaxChars() != 9 {
		t.Errorf("MaxChars = %d, want 9", c.MaxChars())
	}
	if c.LenBits() != 4 {
		t.Errorf("LenBits = %d, want 4", c.LenBits())
	}
	if got := c.MemoryBits(); got != 1024*(4+63) {
		t.Errorf("MemoryBits = %d", got)
	}
	// The paper's s13207 sizing example: N=1024, C_C=7, C_MDATA=483
	// needs a 1024 x 490 memory.
	s := Config{CharBits: 7, DictSize: 1024, EntryBits: 483}
	if s.MemoryBits() != 1024*490 {
		t.Errorf("s13207 memory = %d bits, want %d", s.MemoryBits(), 1024*490)
	}
}

func TestEmptyAndTinyStreams(t *testing.T) {
	res, err := Compress(bitvec.New(0), cfg1bit(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Codes) != 0 {
		t.Fatalf("codes = %v", res.Codes)
	}
	out, err := Decompress(nil, cfg1bit(4), 0)
	if err != nil || out.Len() != 0 {
		t.Fatalf("empty decompress: %v %v", out, err)
	}
	// Single character.
	res, err = Compress(bitvec.MustParse("1"), cfg1bit(4))
	if err != nil {
		t.Fatal(err)
	}
	if want := []Code{1}; !reflect.DeepEqual(res.Codes, want) {
		t.Fatalf("codes = %v", res.Codes)
	}
}

func TestDecompressErrors(t *testing.T) {
	cfg := cfg1bit(8)
	if _, err := Decompress(nil, cfg, 5); err == nil {
		t.Error("empty codes for nonzero output accepted")
	}
	if _, err := Decompress([]Code{5}, cfg, 1); err == nil {
		t.Error("undefined leading code accepted")
	}
	if _, err := Decompress([]Code{0, 7}, cfg, 3); err == nil {
		t.Error("far-future code accepted")
	}
	if _, err := Decompress([]Code{0}, cfg, 9); err == nil {
		t.Error("short stream accepted")
	}
	if _, err := Decompress([]Code{0, 0, 0}, cfg, 1); err == nil {
		t.Error("overlong stream accepted")
	}
}

func TestCharPadding(t *testing.T) {
	// 10 bits at C_C=7 pads the second character with 4 X bits; the
	// decompressed stream must truncate back to 10.
	stream := bitvec.MustParse("1010101010")
	res, err := Compress(stream, Config{CharBits: 7, DictSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decompress(res.Codes, res.Cfg, stream.Len())
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 10 || !stream.CompatibleWith(out) {
		t.Fatalf("padded round trip: %q", out)
	}
}

func TestPackUnpack(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	stream := randomCube(rng, 5000, 0.7)
	res, err := Compress(stream, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	packed := res.Pack()
	if got, want := len(packed), (len(res.Codes)*res.Cfg.CodeBits()+7)/8; got != want {
		t.Fatalf("packed %d bytes, want %d", got, want)
	}
	codes, err := UnpackCodes(packed, len(res.Codes), res.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(codes, res.Codes) {
		t.Fatal("unpacked codes differ")
	}
	if _, err := UnpackCodes(packed[:1], len(res.Codes), res.Cfg); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestContainerRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	stream := randomCube(rng, 4000, 0.8)
	cfg := Config{CharBits: 5, DictSize: 300, EntryBits: 40, Fill: FillRepeat, Tie: TieNewest, Full: FullReset}
	res, err := Compress(stream, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(res.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Cfg != cfg || dec.InputBits != stream.Len() || !reflect.DeepEqual(dec.Codes, res.Codes) {
		t.Fatal("container round trip mismatch")
	}
	out, err := Decompress(dec.Codes, dec.Cfg, dec.InputBits)
	if err != nil {
		t.Fatal(err)
	}
	if !stream.CompatibleWith(out) {
		t.Fatal("container output violates care bits")
	}
	if _, err := Decode([]byte("not a container")); err == nil {
		t.Error("bad magic accepted")
	}
	enc := res.Encode()
	if _, err := Decode(enc[:len(enc)-2]); err == nil {
		t.Error("truncated container accepted")
	}
}

func TestDeterminism(t *testing.T) {
	// Map iteration order must not leak into code selection for any
	// tie-break policy.
	rng := rand.New(rand.NewSource(21))
	stream := randomCube(rng, 8000, 0.92)
	for _, tie := range []TieBreak{TieOldest, TieNewest, TieWidest} {
		cfg := Config{CharBits: 7, DictSize: 512, EntryBits: 63, Tie: tie}
		a, err := Compress(stream, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for run := 0; run < 3; run++ {
			b, err := Compress(stream, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.Codes, b.Codes) {
				t.Fatalf("tie=%v nondeterministic", tie)
			}
		}
	}
}

// Property: for arbitrary cubes and configurations, decompression yields a
// fully specified stream compatible with every care bit.
func TestQuickRoundTripCompatibility(t *testing.T) {
	f := func(seed int64, pick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cfgs := []Config{
			{CharBits: 1, DictSize: 16},
			{CharBits: 2, DictSize: 32, EntryBits: 8},
			{CharBits: 4, DictSize: 64, Fill: FillOne},
			{CharBits: 7, DictSize: 256, EntryBits: 63, Fill: FillRepeat},
			{CharBits: 7, DictSize: 1024, EntryBits: 63, Tie: TieNewest},
			{CharBits: 3, DictSize: 16, EntryBits: 9, Full: FullReset},
			{CharBits: 5, DictSize: 40, EntryBits: 20, Full: FullReset, Tie: TieWidest},
			{CharBits: 8, DictSize: 512},
		}
		cfg := cfgs[int(pick)%len(cfgs)]
		stream := randomCube(rng, rng.Intn(3000), rng.Float64())
		res, err := Compress(stream, cfg)
		if err != nil {
			return false
		}
		out, err := Decompress(res.Codes, cfg, stream.Len())
		if err != nil {
			return false
		}
		return stream.CompatibleWith(out) || stream.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: a fully specified stream round-trips exactly (classic LZW
// losslessness), for every policy combination.
func TestQuickLosslessOnConcreteStreams(t *testing.T) {
	f := func(seed int64, pick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			CharBits:  []int{1, 2, 3, 7}[int(pick)%4],
			DictSize:  1 << uint(4+int(pick)%4*2),
			EntryBits: 0,
			Full:      FullPolicy(int(pick) % 2),
		}
		if cfg.DictSize < cfg.Literals() {
			cfg.DictSize = cfg.Literals() * 4
		}
		n := rng.Intn(2000)
		stream := bitvec.New(n)
		for i := 0; i < n; i++ {
			stream.Set(i, bitvec.Bit(rng.Intn(2)))
		}
		res, err := Compress(stream, cfg)
		if err != nil {
			return false
		}
		out, err := Decompress(res.Codes, cfg, n)
		if err != nil {
			return false
		}
		return stream.Equal(out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: compressed size equals CodesEmitted * C_E and stats are
// internally consistent.
func TestQuickStatsConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stream := randomCube(rng, rng.Intn(4000)+1, 0.8)
		cfg := Config{CharBits: 7, DictSize: 512, EntryBits: 63}
		res, err := Compress(stream, cfg)
		if err != nil {
			return false
		}
		s := res.Stats
		return s.CompressedBits == len(res.Codes)*cfg.CodeBits() &&
			s.LiteralCodes+s.StringCodes == s.CodesEmitted &&
			s.CodesEmitted == len(res.Codes) &&
			s.Chars == (stream.Len()+6)/7 &&
			s.MaxEntryChars <= cfg.MaxChars() &&
			s.MaxMatchChars <= cfg.MaxChars()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// randomCube builds a test-cube-like stream: clustered care bits over an
// X background, with some repeated structure across "patterns".
func randomCube(rng *rand.Rand, n int, xDensity float64) *bitvec.Vector {
	v := bitvec.New(n)
	if n == 0 {
		return v
	}
	carePerCluster := 6
	clusters := int(float64(n) * (1 - xDensity) / float64(carePerCluster))
	for c := 0; c < clusters; c++ {
		start := rng.Intn(n)
		for j := 0; j < carePerCluster && start+j < n; j++ {
			v.Set(start+j, bitvec.Bit(rng.Intn(2)))
		}
	}
	return v
}

func BenchmarkCompress90X(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	stream := randomCube(rng, 1<<17, 0.9)
	cfg := DefaultConfig()
	b.SetBytes(int64(stream.Len() / 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(stream, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	stream := randomCube(rng, 1<<17, 0.9)
	res, err := Compress(stream, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(stream.Len() / 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(res.Codes, res.Cfg, stream.Len()); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	cases := map[string]string{
		FillZero.String(): "zero", FillOne.String(): "one", FillRepeat.String(): "repeat",
		TieOldest.String(): "oldest", TieNewest.String(): "newest", TieWidest.String(): "widest",
		FullFreeze.String(): "freeze", FullReset.String(): "reset",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("policy string %q != %q", got, want)
		}
	}
	if FillPolicy(9).String() == "" || TieBreak(9).String() == "" || FullPolicy(9).String() == "" {
		t.Error("unknown policies must still render")
	}
}

func TestFillPoliciesAtCharLevel(t *testing.T) {
	// All-X stream: the first character is concretized by the residual
	// policy; FillOne must produce ones, FillRepeat propagates the last
	// concrete bit.
	stream := bitvec.MustParse("1XXXXXXX")
	res, err := Compress(stream, Config{CharBits: 8, DictSize: 512, Fill: FillRepeat})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decompress(res.Codes, res.Cfg, stream.Len())
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "11111111" {
		t.Fatalf("FillRepeat = %q", out)
	}
	res, err = Compress(bitvec.MustParse("0XXXXXXX"), Config{CharBits: 8, DictSize: 512, Fill: FillOne})
	if err != nil {
		t.Fatal(err)
	}
	out, err = Decompress(res.Codes, res.Cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "01111111" {
		t.Fatalf("FillOne = %q", out)
	}
}

func TestCompressTraceEventCount(t *testing.T) {
	stream := bitvec.MustParse("001001001")
	n := 0
	if _, err := CompressTrace(stream, cfg1bit(16), func(TraceEvent) { n++ }); err != nil {
		t.Fatal(err)
	}
	// One event per character plus the final flush.
	if n != 10 {
		t.Fatalf("events = %d, want 10", n)
	}
}

func TestFullResetStatsCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	stream := randomCube(rng, 6000, 0.5)
	res, err := Compress(stream, Config{CharBits: 2, DictSize: 8, Full: FullReset})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DictResets == 0 {
		t.Fatalf("tiny dictionary never reset: %+v", res.Stats)
	}
	out, err := Decompress(res.Codes, res.Cfg, stream.Len())
	if err != nil {
		t.Fatal(err)
	}
	if !stream.CompatibleWith(out) {
		t.Fatal("reset round trip violates care bits")
	}
}

func TestLiteralOnlyDictResetRoundTrip(t *testing.T) {
	// DictSize == 2^CharBits leaves no string slots at all; with the
	// FullReset policy this used to overrun the dictionary arrays on
	// the first add attempt (found by FuzzRoundTrip). The stream must
	// instead round-trip as pure literal codes.
	cfg := Config{CharBits: 2, DictSize: 4, Full: FullReset}
	stream := bitvec.MustParse("0110XX010110")
	res, err := Compress(stream, cfg)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	if res.Stats.DictEntries != 0 || res.Stats.StringCodes != 0 {
		t.Fatalf("literal-only dictionary produced string entries: %+v", res.Stats)
	}
	out, err := Decompress(res.Codes, cfg, res.InputBits)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if !stream.CompatibleWith(out) {
		t.Fatal("round trip violates a care bit")
	}
}
