package core

import "lzwtc/internal/telemetry"

// Event kinds the compressor and software decompressor emit through a
// telemetry recorder. Per-step events carry their paper-figure payload
// under the "event" field; run events summarize a whole stream.
const (
	EventCompressStep   = "compress.step"   // one TraceEvent per Figure 3 step
	EventCompressRun    = "compress.run"    // one summary record per compression run
	EventDecompressStep = "decompress.step" // one DecompressTraceEvent per Figure 4 step
)

// Registry metric names for the compressor. Counters aggregate across
// runs; the histograms observe per-code quantities (the raw material of
// the paper's Tables 1 and 5: how long the emitted strings get, and how
// quickly the N-code dictionary fills).
const (
	MetricCompressRuns          = "lzwtc_compress_runs_total"
	MetricCompressEmptyRuns     = "lzwtc_compress_empty_runs_total"
	MetricCompressInputBits     = "lzwtc_compress_input_bits_total"
	MetricCompressChars         = "lzwtc_compress_chars_total"
	MetricCompressCodes         = "lzwtc_compress_codes_total"
	MetricCompressCompressed    = "lzwtc_compress_compressed_bits_total"
	MetricCompressLiteralCodes  = "lzwtc_compress_literal_codes_total"
	MetricCompressStringCodes   = "lzwtc_compress_string_codes_total"
	MetricCompressDictEntries   = "lzwtc_compress_dict_entries_total"
	MetricCompressDictResets    = "lzwtc_compress_dict_resets_total"
	MetricCompressResidualFills = "lzwtc_compress_residual_fills_total"
	MetricCompressDynamicFills  = "lzwtc_compress_dynamic_fills_total"
	MetricCompressMatchLen      = "lzwtc_compress_match_len_chars"
	MetricCompressOccupancy     = "lzwtc_compress_dict_occupancy"
	MetricCompressRatio         = "lzwtc_compress_ratio"
)

// Trace span names for the core phases. These appear as span records in
// request traces and (via telemetry.PhaseMetricName) as phase-duration
// histograms, so the compressor's internal cost structure is visible
// per request: how long dictionary construction took versus the match
// loop itself.
const (
	SpanSerialize = "core.serialize"  // cube-set serialization into the stream
	SpanDictBuild = "core.dict_build" // dictionary acquisition/preload
	SpanMatchLoop = "core.match_loop" // the Figure 3 compression loop
	SpanDecode    = "core.decode"     // one frame's software decompression
)

// Dictionary arena metrics: how often a run reused a pooled dictionary
// versus allocating fresh (see arena.go). High recycle-to-miss ratios
// mean the batch/shard pipelines are running allocation-free.
const (
	MetricDictPoolRecycles = "lzwtc_dict_pool_recycles_total"
	MetricDictPoolMisses   = "lzwtc_dict_pool_misses_total"
)

// MatchLenBuckets returns the histogram bounds for emitted-string
// lengths, in characters. The paper's C_MDATA sweep (Table 5) spans
// 9–73 characters per entry at C_C=7, so the tail buckets cover it.
func MatchLenBuckets() []float64 {
	return []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96}
}

// OccupancyBuckets returns the histogram bounds for dictionary
// occupancy, as the filled fraction of the N−2^C_C string-code space.
func OccupancyBuckets() []float64 {
	return []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1}
}

// compressMetrics holds the per-code hot-loop instruments, resolved
// once per run so the loop never touches the registry by name. A nil
// *compressMetrics is the disabled path: one pointer check per emitted
// code.
type compressMetrics struct {
	matchLen    *telemetry.Histogram
	occupancy   *telemetry.Histogram
	stringSpace float64 // N − 2^C_C, the occupancy denominator
}

func newCompressMetrics(rec *telemetry.Recorder, cfg Config) *compressMetrics {
	reg := rec.Registry()
	if reg == nil {
		return nil
	}
	return &compressMetrics{
		matchLen:    reg.Histogram(MetricCompressMatchLen, "emitted string length in characters", MatchLenBuckets()),
		occupancy:   reg.Histogram(MetricCompressOccupancy, "dictionary occupancy fraction at each code emission", OccupancyBuckets()),
		stringSpace: float64(cfg.DictSize - cfg.Literals()),
	}
}

// observeEmit records one code emission: its match length and the
// dictionary occupancy at that moment. used is the current string-entry
// count.
func (m *compressMetrics) observeEmit(matchChars, used int) {
	m.matchLen.Observe(float64(matchChars))
	occ := 1.0
	if m.stringSpace > 0 {
		occ = float64(used) / m.stringSpace
	}
	m.occupancy.Observe(occ)
}

// recordCompressRun folds a finished run's Stats into the recorder:
// aggregate counters, the last-run ratio gauge, and one EventCompressRun
// event. Zero-input runs are explicit — the event carries empty=true
// and the empty-runs counter increments — rather than hiding behind
// Stats.Ratio's silent 0.
func recordCompressRun(rec *telemetry.Recorder, st Stats) {
	if !rec.Enabled() {
		return
	}
	if reg := rec.Registry(); reg != nil {
		reg.Counter(MetricCompressRuns, "compression runs").Inc()
		if st.InputBits == 0 {
			reg.Counter(MetricCompressEmptyRuns, "zero-input compression runs").Inc()
		}
		reg.Counter(MetricCompressInputBits, "uncompressed input bits").Add(int64(st.InputBits))
		reg.Counter(MetricCompressChars, "characters consumed").Add(int64(st.Chars))
		reg.Counter(MetricCompressCodes, "codes emitted").Add(int64(st.CodesEmitted))
		reg.Counter(MetricCompressCompressed, "compressed output bits").Add(int64(st.CompressedBits))
		reg.Counter(MetricCompressLiteralCodes, "codes in the literal range").Add(int64(st.LiteralCodes))
		reg.Counter(MetricCompressStringCodes, "codes in the dictionary range").Add(int64(st.StringCodes))
		reg.Counter(MetricCompressDictEntries, "dictionary entries created").Add(int64(st.DictEntries))
		reg.Counter(MetricCompressDictResets, "FullReset occurrences").Add(int64(st.DictResets))
		reg.Counter(MetricCompressResidualFills, "characters concretized by the fill policy").Add(int64(st.ResidualFills))
		reg.Counter(MetricCompressDynamicFills, "X-laden characters concretized by a dictionary walk").Add(int64(st.DynamicFills))
		reg.Gauge(MetricCompressRatio, "last run compression ratio").Set(st.Ratio())
	}
	rec.Emit(EventCompressRun,
		telemetry.F("empty", st.Empty()),
		telemetry.F("ratio", st.Ratio()),
		telemetry.F("stats", st),
	)
}

// StepTraceEvent extracts the Figure 3 TraceEvent payload from an
// EventCompressStep telemetry event. The CompressTrace callback API is
// rebuilt from exactly this, so a JSONL sink and a trace callback see
// the same step stream.
func StepTraceEvent(ev telemetry.Event) (TraceEvent, bool) {
	if ev.Kind != EventCompressStep {
		return TraceEvent{}, false
	}
	v, ok := ev.Field("event")
	if !ok {
		return TraceEvent{}, false
	}
	te, ok := v.(TraceEvent)
	return te, ok
}
