package core

import (
	"context"
	"fmt"

	"lzwtc/internal/bitvec"
	"lzwtc/internal/telemetry"
)

// Preload is a static warm-start dictionary: concrete character strings
// installed into the dictionary before compression or decompression
// begins. The paper's conclusion suggests amortizing the decompressor by
// making it "part of normal operation"; a preloaded dictionary is the
// natural next step — the ATE (or the BIST controller, through the
// Figure 6 port) writes a trained dictionary into the embedded memory
// once, and every subsequent test session starts warm.
//
// Strings must be prefix-closed in order: each string is inserted by
// walking existing entries and must extend the dictionary by exactly its
// last character (Train produces exactly this form).
type Preload struct {
	Strings [][]uint64
}

// Entries returns the number of preloaded strings.
func (p *Preload) Entries() int {
	if p == nil {
		return 0
	}
	return len(p.Strings)
}

// preload installs the strings into a fresh dictionary.
func (d *dict) preload(p *Preload) error {
	if p == nil {
		return nil
	}
	maxChars := d.cfg.MaxChars()
	for i, s := range p.Strings {
		if len(s) < 2 {
			return fmt.Errorf("core: preload string %d has %d chars; literals are implicit", i, len(s))
		}
		if len(s) > maxChars {
			return fmt.Errorf("core: preload string %d has %d chars, entry bound is %d", i, len(s), maxChars)
		}
		if d.full() {
			return fmt.Errorf("core: preload overflows the dictionary at string %d", i)
		}
		// Every character must be a valid C_C-bit value: the flat child
		// index packs characters into 16-bit key fields, and an
		// out-of-range character could never decompress anyway.
		for k, ch := range s {
			if ch >= uint64(d.cfg.Literals()) {
				return fmt.Errorf("core: preload string %d has invalid character %d at position %d", i, ch, k)
			}
		}
		// Walk the prefix; it must already exist.
		cur := Code(s[0])
		for k := 1; k < len(s)-1; k++ {
			child, ok := d.lookupChild(cur, s[k])
			if !ok {
				return fmt.Errorf("core: preload string %d is not prefix-closed at char %d", i, k)
			}
			cur = child
		}
		last := s[len(s)-1]
		if _, dup := d.lookupChild(cur, last); dup {
			return fmt.Errorf("core: preload string %d duplicates an entry", i)
		}
		d.commitAdd(cur, last)
	}
	return nil
}

// Train builds a preload dictionary from a training stream: it compresses
// the stream under cfg and keeps the first maxEntries dictionary strings
// in creation order, which is prefix-closed by construction. maxEntries
// of 0 keeps everything the training run built.
func Train(stream *bitvec.Vector, cfg Config, maxEntries int) (*Preload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Full == FullReset {
		return nil, fmt.Errorf("core: training with FullReset would not be prefix-closed")
	}
	d := newDict(cfg)
	// Compress the training stream, then replay its code sequence: the
	// decoder-side rebuild yields the same dictionary deterministically.
	res, err := Compress(stream, cfg)
	if err != nil {
		return nil, err
	}
	if _, err := replayInto(d, res.Codes); err != nil {
		return nil, err
	}
	n := int(d.next) - cfg.Literals()
	if maxEntries > 0 && maxEntries < n {
		n = maxEntries
	}
	p := &Preload{Strings: make([][]uint64, 0, n)}
	for i := 0; i < n; i++ {
		c := Code(cfg.Literals() + i)
		p.Strings = append(p.Strings, d.stringOf(c, nil))
	}
	return p, nil
}

// replayInto rebuilds the decoder-side dictionary for a code sequence.
func replayInto(d *dict, codes []Code) (int, error) {
	prev := noCode
	var scratch []uint64
	for i, c := range codes {
		pending := false
		if prev != noCode {
			pending = d.prepareAdd(prev)
		}
		scratch = scratch[:0]
		switch {
		case d.defined(c):
			scratch = d.stringOf(c, scratch)
		case pending && c == d.next:
			scratch = d.stringOf(prev, scratch)
			scratch = append(scratch, d.firstChar[prev])
		default:
			return 0, fmt.Errorf("core: replay hit undefined code %d at %d", c, i)
		}
		if pending {
			d.commitAdd(prev, scratch[0])
		}
		prev = c
	}
	return int(d.next), nil
}

// CompressWithPreload is Compress starting from a warm dictionary. The
// decompressor must be given the same preload.
func CompressWithPreload(stream *bitvec.Vector, cfg Config, pre *Preload) (*Result, error) {
	return CompressWithPreloadObservedCtx(context.Background(), stream, cfg, pre, nil)
}

// CompressWithPreloadObservedCtx is CompressWithPreload instrumented
// through a telemetry recorder and a trace context, mirroring
// CompressObservedCtx: the shared-dictionary service path uses it so a
// dictionary-warmed request still attributes its compression phases.
func CompressWithPreloadObservedCtx(ctx context.Context, stream *bitvec.Vector, cfg Config, pre *Preload, rec *telemetry.Recorder) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if pre.Entries() == 0 {
		return CompressObservedCtx(ctx, stream, cfg, rec)
	}
	if cfg.Full == FullReset {
		return nil, fmt.Errorf("core: FullReset would discard the preloaded dictionary inconsistently")
	}
	// Compress via the normal path but with a preloaded dictionary: the
	// implementation mirrors CompressTrace with a custom dict factory.
	return compressInternal(ctx, stream, cfg, rec, func() (*dict, error) {
		d := acquireDict(cfg, rec)
		if err := d.preload(pre); err != nil {
			releaseDict(d)
			return nil, err
		}
		return d, nil
	})
}

// DecompressWithPreloadObservedCtx is DecompressWithPreload under a
// SpanDecode trace span, mirroring DecompressObservedCtx for the
// dictionary-warmed service path.
func DecompressWithPreloadObservedCtx(ctx context.Context, codes []Code, cfg Config, pre *Preload, outBits int, rec *telemetry.Recorder) (*bitvec.Vector, error) {
	_, sp := rec.StartSpan(ctx, SpanDecode)
	out, err := DecompressWithPreload(codes, cfg, pre, outBits)
	sp.End(telemetry.F("codes", len(codes)), telemetry.F("out_bits", outBits))
	return out, err
}

// DecompressWithPreload inverts CompressWithPreload.
func DecompressWithPreload(codes []Code, cfg Config, pre *Preload, outBits int) (*bitvec.Vector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if pre.Entries() == 0 {
		return Decompress(codes, cfg, outBits)
	}
	if cfg.Full == FullReset {
		return nil, fmt.Errorf("core: FullReset would discard the preloaded dictionary inconsistently")
	}
	return decompressWithDict(codes, cfg, outBits, nil, func() (*dict, error) {
		d := acquireDict(cfg, nil)
		if err := d.preload(pre); err != nil {
			releaseDict(d)
			return nil, err
		}
		return d, nil
	})
}
