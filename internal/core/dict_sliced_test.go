package core

import (
	"math/bits"
	"math/rand"
	"testing"
)

// Edge-case coverage for the bit-sliced child index: chain lengths
// around the 64-lane block boundary, all-X and zero-X cubes, the
// direct vs dense block layouts, reinit stride reuse across CharBits,
// and synthetic three-valued lanes (hasXLanes), which only tests build.
// The map-based refMatcher is the behavioral reference throughout.

// slicedCfg is the common shape: cc8 so chains can exceed 64 children.
func slicedCfg(dictSize int, tie TieBreak) Config {
	return Config{CharBits: 8, DictSize: dictSize, Fill: FillRepeat, Tie: tie, Full: FullFreeze}
}

// mirroredDict builds a dict and its refMatcher shadow with `children`
// consecutive-character children under literal parent 1.
func mirroredDict(t *testing.T, cfg Config, children int) (*dict, *refMatcher) {
	t.Helper()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	d := newDict(cfg)
	ref := newRefMatcher(cfg)
	for i := 0; i < children; i++ {
		c, ok := d.add(1, uint64(i))
		if !ok {
			t.Fatalf("add child %d failed", i)
		}
		ref.add(1, uint64(i), c)
	}
	return d, ref
}

// TestChainBlockBoundaries drives chains whose lane counts straddle the
// 64-lane block width — including exact multiples, where the tail block
// is full and TieNewest's (count-1) mod 64 lane arithmetic wraps — and
// checks every tie policy against the reference over a query sweep.
func TestChainBlockBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{1, 2, 63, 64, 65, 127, 128, 200} {
		for _, tie := range []TieBreak{TieOldest, TieNewest, TieWidest} {
			d, ref := mirroredDict(t, slicedCfg(1024, tie), n)
			fullMask := uint64(0xff)
			queries := [][2]uint64{
				{0, 0},                     // all-X
				{0, 0xff},                  // exact zero
				{uint64(n-1) & 0xff, 0xff}, // exact last child
				{0, 0x80},                  // single cared bit, zero
				{0x80, 0x80},               // single cared bit, one
				{0x01, 0x0f},               // low nibble cared
				{0x40, 0xc0},               // cared bits demand a miss for small chains
			}
			for i := 0; i < 64; i++ {
				care := rng.Uint64() & 0xff
				queries = append(queries, [2]uint64{rng.Uint64() & care, care})
			}
			for _, q := range queries {
				val, care := q[0], q[1]
				got, gok := d.findChild(1, val, care, fullMask)
				want, wok := ref.findChild(1, val, care, fullMask)
				if gok != wok || (gok && got != want) {
					t.Fatalf("n=%d tie=%v val=%#x care=%#x: flat=(%d,%v) ref=(%d,%v)",
						n, tie, val, care, got, gok, want, wok)
				}
			}
			// Childless parent and literal without children: clean misses.
			if _, ok := d.findChild(2, 0, 0, fullMask); ok {
				t.Fatalf("n=%d tie=%v: childless parent matched", n, tie)
			}
		}
	}
}

// TestAllXAndZeroXCubes pins the two degenerate query masks: care == 0
// must resolve positionally per policy (oldest child, newest child,
// widest child) and care == fullMask must agree with the exact probe
// table, both across block boundaries.
func TestAllXAndZeroXCubes(t *testing.T) {
	for _, n := range []int{1, 64, 65, 130} {
		for _, tie := range []TieBreak{TieOldest, TieNewest, TieWidest} {
			d, ref := mirroredDict(t, slicedCfg(1024, tie), n)
			fullMask := uint64(0xff)
			got, gok := d.findChild(1, 0, 0, fullMask)
			want, wok := ref.findChild(1, 0, 0, fullMask)
			if gok != wok || got != want {
				t.Fatalf("n=%d tie=%v all-X: flat=(%d,%v) ref=(%d,%v)", n, tie, got, gok, want, wok)
			}
			for i := 0; i < n; i++ {
				ec, eok := d.findChild(1, uint64(i), fullMask, fullMask)
				mc, mok := d.findChildMasked(1, uint64(i), fullMask, fullMask)
				if !eok || !mok || ec != mc {
					t.Fatalf("n=%d tie=%v zero-X char %d: exact=(%d,%v) masked=(%d,%v)",
						n, tie, i, ec, eok, mc, mok)
				}
			}
		}
	}
}

// TestLiteralsOnlyDictionaryMasked covers DictSize == 2^CharBits for the
// masked path: the dictionary is born full and permanently frozen, and a
// masked lookup must miss cleanly (no plane blocks exist to sync).
func TestLiteralsOnlyDictionaryMasked(t *testing.T) {
	cfg := Config{CharBits: 4, DictSize: 16, Fill: FillRepeat, Tie: TieOldest, Full: FullReset}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	d := newDict(cfg)
	for _, q := range [][2]uint64{{0, 0}, {3, 0xf}, {1, 0x3}} {
		if c, ok := d.findChildMasked(5, q[0], q[1], 0xf); ok {
			t.Fatalf("masked lookup (%#x,%#x) found %d in a literals-only dictionary", q[0], q[1], c)
		}
	}
	if d.resets != 0 {
		t.Fatalf("literals-only dictionary reset %d times", d.resets)
	}
}

// TestDenseLayoutEquivalence repeats the boundary sweep on a dictionary
// past maxDirectBlocks, where first blocks come from the on-demand
// arena instead of the code-indexed region.
func TestDenseLayoutEquivalence(t *testing.T) {
	cfg := slicedCfg(2*maxDirectBlocks, TieOldest)
	if directLayout(cfg) {
		t.Fatalf("DictSize %d unexpectedly uses the direct layout", cfg.DictSize)
	}
	rng := rand.New(rand.NewSource(7))
	for _, tie := range []TieBreak{TieOldest, TieNewest, TieWidest} {
		cfg.Tie = tie
		d, ref := mirroredDict(t, cfg, 150)
		for i := 0; i < 200; i++ {
			care := rng.Uint64() & 0xff
			val := rng.Uint64() & care
			got, gok := d.findChild(1, val, care, 0xff)
			want, wok := ref.findChild(1, val, care, 0xff)
			if gok != wok || (gok && got != want) {
				t.Fatalf("dense tie=%v val=%#x care=%#x: flat=(%d,%v) ref=(%d,%v)",
					tie, val, care, got, gok, want, wok)
			}
		}
	}
}

// TestReinitStrideReuse recycles one dict through CharBits and DictSize
// changes — including direct → dense → direct transitions, which leave
// stale headers and stale lane codes in the arenas — and checks the
// recycled dictionary against a fresh reference each time.
func TestReinitStrideReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	// Largest first: reinit reuses backing arrays and cannot grow them
	// (the arena checks fits() before recycling), so the sequence shrinks
	// — dense cc8 → direct cc8 → direct cc4 → direct cc8 — leaving stale
	// headers and stale lane codes from the bigger epochs in the arenas.
	cfgs := []Config{
		slicedCfg(2*maxDirectBlocks, TieOldest),                                         // dense, cc8
		slicedCfg(1024, TieOldest),                                                      // direct, cc8 (shrunk)
		{CharBits: 4, DictSize: 64, Fill: FillRepeat, Tie: TieNewest, Full: FullFreeze}, // direct, cc4
		slicedCfg(1024, TieWidest),                                                      // direct, cc8 again
	}
	var d *dict
	for ci, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		if d == nil {
			d = newDict(cfg)
		} else {
			if !d.fits(cfg) {
				t.Fatalf("cfg %d does not fit the recycled dictionary", ci)
			}
			d.reinit(cfg)
		}
		ref := newRefMatcher(cfg)
		fullMask := uint64(1)<<uint(cfg.CharBits) - 1
		lits := uint64(cfg.Literals())
		for i := 0; i < 120; i++ {
			parent := Code(rng.Intn(int(d.next)))
			char := uint64(rng.Intn(int(lits)))
			if _, dup := d.lookupChild(parent, char); dup {
				continue
			}
			if c, ok := d.add(parent, char); ok {
				ref.add(parent, char, c)
			}
		}
		for i := 0; i < 300; i++ {
			code := Code(rng.Intn(int(d.next)))
			care := rng.Uint64() & fullMask
			val := rng.Uint64() & care
			got, gok := d.findChild(code, val, care, fullMask)
			want, wok := ref.findChild(code, val, care, fullMask)
			if gok != wok || (gok && got != want) {
				t.Fatalf("cfg %d code=%d val=%#x care=%#x: flat=(%d,%v) ref=(%d,%v)",
					ci, code, val, care, got, gok, want, wok)
			}
		}
	}
}

// xLaneRef is the per-lane reference for three-valued lanes: a lane is
// compatible when every cared query bit is either a don't-care in the
// lane or equal to the lane's stored bit.
func xLaneRef(val, care uint64, chars, xmasks []uint64) int {
	for i := range chars {
		ok := true
		for m := care; m != 0; m &= m - 1 {
			b := m & -m
			if xmasks[i]&b == 0 && (chars[i]^val)&b != 0 {
				ok = false
				break
			}
		}
		if ok {
			return i
		}
	}
	return -1
}

// TestSyntheticXLanes builds three-valued lanes directly in the planes
// (production dictionaries never do — the compressor concretizes every
// add) and checks the kernel honors the is-X planes under hasXLanes.
// The lanes are written over a live chain so the planes-always-current
// invariant (plane == len) holds.
func TestSyntheticXLanes(t *testing.T) {
	for _, n := range []int{3, 64, 70} {
		d, _ := mirroredDict(t, slicedCfg(1024, TieOldest), n)
		fullMask := uint64(0xff)
		// Flip into masked mode so the planes are synced and current.
		d.findChildMasked(1, 0, 1, fullMask)

		// Rebuild every lane of parent 1's chain as a three-valued
		// character: char i with bits (i%3==1 ? low nibble : top bit) X.
		chars := make([]uint64, n)
		xmasks := make([]uint64, n)
		for i := range chars {
			chars[i] = uint64(i) & 0xff
			if i%3 == 1 {
				xmasks[i] = 0x0f
			} else if i%3 == 2 {
				xmasks[i] = 0x80
			}
		}
		d.hasXLanes = true
		cc := d.cfg.CharBits
		lane := 0
		for b := d.chain[1].head; b != noBlock; b = d.blkHdr[b].next {
			base := int(b) * cc
			for tbit := 0; tbit < cc; tbit++ {
				d.blkVal[base+tbit] = 0
				d.blkX[base+tbit] = 0
			}
			ln := int(d.blkHdr[b].len)
			for i := 0; i < ln; i++ {
				care := fullMask &^ xmasks[lane]
				for m := chars[lane] & care; m != 0; m &= m - 1 {
					d.blkVal[base+bits.TrailingZeros64(m)] |= 1 << uint(i)
				}
				for m := xmasks[lane]; m != 0; m &= m - 1 {
					d.blkX[base+bits.TrailingZeros64(m)] |= 1 << uint(i)
				}
				lane++
			}
		}
		if lane != n {
			t.Fatalf("rebuilt %d lanes, want %d", lane, n)
		}

		rng := rand.New(rand.NewSource(int64(n)))
		for trial := 0; trial < 400; trial++ {
			care := rng.Uint64() & fullMask
			val := rng.Uint64() & care
			got, gok := d.findChildMasked(1, val, care, fullMask)
			wantLane := xLaneRef(val, care, chars, xmasks)
			if (wantLane >= 0) != gok {
				t.Fatalf("n=%d val=%#x care=%#x: kernel found=%v, reference lane=%d", n, val, care, gok, wantLane)
			}
			if gok {
				// TieOldest: the kernel must return the oldest compatible
				// lane, which is exactly the reference's first hit.
				wantCode := d.blkCodes[chainLaneIndex(d, 1, wantLane)]
				if got != wantCode {
					t.Fatalf("n=%d val=%#x care=%#x: kernel=%d, want lane %d = code %d",
						n, val, care, got, wantLane, wantCode)
				}
			}
		}
	}
}

// chainLaneIndex resolves chain lane i of parent p to its blkCodes
// index, hopping blocks as needed.
func chainLaneIndex(d *dict, p Code, i int) int {
	b := d.chain[p].head
	for i >= blockLanes {
		i -= blockLanes
		b = d.blkHdr[b].next
	}
	return int(b)*blockLanes + i
}
