package core

import (
	"bytes"
	"testing"

	"lzwtc/internal/bitio"
	"lzwtc/internal/bitvec"
)

// fuzzConfig derives a valid Config from six seed bytes, covering every
// fill/tie/full policy, bounded and unbounded entries, and dictionary
// sizes from the literal minimum up to minimum+255.
func fuzzConfig(seed []byte) Config {
	var b [6]byte
	copy(b[:], seed)
	cc := int(b[0]%4) + 1
	cfg := Config{
		CharBits: cc,
		DictSize: 1<<uint(cc) + int(b[1]),
		Fill:     FillPolicy(b[3] % 3),
		Tie:      TieBreak(b[4] % 3),
		Full:     FullPolicy(b[5] % 2),
	}
	if b[2]%2 == 1 {
		// Bounded decompressor memory: C_MDATA a small multiple of C_C.
		cfg.EntryBits = cc * (2 + int(b[2]%8))
	}
	return cfg
}

// fuzzStream decodes the remaining input as a three-valued stream, two
// bits per symbol: 00 -> 0, 01 -> 1, anything else -> X. 0xff bytes
// therefore decode to all-X cubes, the case the paper's dynamic
// assignment exists for.
func fuzzStream(data []byte) *bitvec.Vector {
	const maxBits = 2048
	n := 4 * len(data)
	if n > maxBits {
		n = maxBits
	}
	v := bitvec.New(n)
	for i := 0; i < n; i++ {
		switch data[i/4] >> uint(2*(i%4)) & 3 {
		case 0:
			v.Set(i, bitvec.Zero)
		case 1:
			v.Set(i, bitvec.One)
		default:
			v.Set(i, bitvec.X)
		}
	}
	return v
}

// FuzzRoundTrip checks the full pipeline on arbitrary streams and
// configurations: Compress -> Pack -> UnpackCodes must reproduce the
// code sequence bit-exactly, and Decompress must yield a fully
// specified stream compatible with every care bit of the input.
func FuzzRoundTrip(f *testing.F) {
	cfgPrefix := func(b ...byte) []byte { return b }
	f.Add(append(cfgPrefix(1, 0, 0, 0, 0, 0), 0x00, 0x11, 0x44, 0x00)) // 2-bit chars, fully specified
	f.Add(append(cfgPrefix(2, 8, 3, 1, 1, 1), bytes.Repeat([]byte{0xff}, 32)...) /* all-X cubes */)
	f.Add(append(cfgPrefix(3, 255, 0, 2, 2, 0), bytes.Repeat([]byte{0x1b}, 64)...))     // repeating pattern, big dict
	f.Add(append(cfgPrefix(0, 1, 1, 0, 0, 1), 0xf0, 0x0f, 0xcc, 0x33, 0x55))            // mixed X and care
	f.Add(append(cfgPrefix(3, 0, 5, 1, 0, 1), bytes.Repeat([]byte{0x44, 0xff}, 40)...)) // reset-prone
	f.Add(cfgPrefix(1, 2, 3, 4, 5, 6))                                                  // empty stream

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 6 {
			return
		}
		cfg := fuzzConfig(data[:6])
		if err := cfg.Validate(); err != nil {
			t.Fatalf("derived config invalid: %v", err)
		}
		stream := fuzzStream(data[6:])

		res, err := Compress(stream, cfg)
		if err != nil {
			t.Fatalf("Compress: %v", err)
		}

		packed := res.Pack()
		codes, err := UnpackCodes(packed, len(res.Codes), cfg)
		if err != nil {
			t.Fatalf("UnpackCodes: %v", err)
		}
		if len(codes) != len(res.Codes) {
			t.Fatalf("UnpackCodes returned %d codes, want %d", len(codes), len(res.Codes))
		}
		for i := range codes {
			if codes[i] != res.Codes[i] {
				t.Fatalf("code %d: packed round trip gave %d, want %d", i, codes[i], res.Codes[i])
			}
		}

		out, err := Decompress(res.Codes, cfg, res.InputBits)
		if err != nil {
			t.Fatalf("Decompress: %v", err)
		}
		if out.Len() != stream.Len() {
			t.Fatalf("Decompress length %d, want %d", out.Len(), stream.Len())
		}
		if !stream.CompatibleWith(out) {
			t.Fatalf("decompressed stream violates a care bit of the input")
		}
	})
}

// FuzzUnpackCodes feeds arbitrary bytes to the code-stream parser: it
// must never panic, and whenever it succeeds, re-packing the parsed
// codes must reproduce the consumed prefix of the input bit-exactly.
func FuzzUnpackCodes(f *testing.F) {
	f.Add([]byte{}, uint16(0), byte(0))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, uint16(4), byte(3))     // max-width all-ones codes
	f.Add([]byte{0x00, 0x00, 0x00, 0x00}, uint16(7), byte(1))     // all-zero codes
	f.Add(bytes.Repeat([]byte{0xa5}, 16), uint16(12), byte(255))  // patterned stream
	f.Add([]byte{0x12}, uint16(9), byte(2))                       // truncated stream
	f.Add(bytes.Repeat([]byte{0xff}, 64), uint16(500), byte(129)) // long all-X-shaped input

	f.Fuzz(func(t *testing.T, data []byte, n uint16, seed byte) {
		cfg := fuzzConfig([]byte{seed, seed >> 3, 0, 0, 0, 0})
		if err := cfg.Validate(); err != nil {
			t.Fatalf("derived config invalid: %v", err)
		}
		want := int(n) % 1024
		codes, err := UnpackCodes(data, want, cfg)
		if err != nil {
			return // truncated input: rejection is the correct outcome
		}
		if len(codes) != want {
			t.Fatalf("UnpackCodes returned %d codes, want %d", len(codes), want)
		}
		repacked := (&Result{Cfg: cfg, Codes: codes}).Pack()
		nbits := want * cfg.CodeBits()
		a := bitio.NewReader(data, nbits)
		b := bitio.NewReader(repacked, nbits)
		for off := 0; off < nbits; off += 64 {
			w := nbits - off
			if w > 64 {
				w = 64
			}
			av, aerr := a.ReadBits(w)
			bv, berr := b.ReadBits(w)
			if aerr != nil || berr != nil {
				t.Fatalf("re-read at bit %d: %v / %v", off, aerr, berr)
			}
			if av != bv {
				t.Fatalf("re-packed stream diverges at bit %d: %#x != %#x", off, bv, av)
			}
		}
	})
}
