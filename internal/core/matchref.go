package core

// refMatcher is the historical per-node map child index, retained
// verbatim as a differential oracle for the flat matcher in dict.go. It
// is exercised two ways: FuzzFindChildEquivalence drives both matchers
// over random dictionaries and queries, and under the lzwtc_dictoracle
// build tag every dict maintains a refMatcher shadow and cross-checks
// every findChild in production code paths (see dict_oracle_on.go).
type refMatcher struct {
	cfg      Config
	children []map[uint64]Code
}

func newRefMatcher(cfg Config) *refMatcher {
	return &refMatcher{cfg: cfg, children: make([]map[uint64]Code, cfg.DictSize)}
}

// add mirrors commitAdd: register child as string(parent)+char.
func (m *refMatcher) add(parent Code, char uint64, child Code) {
	if m.children[parent] == nil {
		m.children[parent] = make(map[uint64]Code)
	}
	m.children[parent][char] = child
}

// reset mirrors dict.reset: discard every child edge.
func (m *refMatcher) reset() {
	for c := range m.children {
		m.children[c] = nil
	}
}

// findChild is the pre-flat-index matcher, byte for byte: a map lookup
// for concrete characters, a full scan over every child with tie-break
// ranking for X-laden ones.
func (m *refMatcher) findChild(code Code, val, care, fullMask uint64) (Code, bool) {
	kids := m.children[code]
	if len(kids) == 0 {
		return noCode, false
	}
	if care == fullMask {
		c, ok := kids[val]
		return c, ok
	}
	best := noCode
	bestWidth := -1
	for char, child := range kids {
		if char&care != val {
			continue
		}
		switch m.cfg.Tie {
		case TieOldest:
			if best == noCode || child < best {
				best = child
			}
		case TieNewest:
			if best == noCode || child > best {
				best = child
			}
		case TieWidest:
			w := len(m.children[child])
			if w > bestWidth || (w == bestWidth && (best == noCode || child < best)) {
				best, bestWidth = child, w
			}
		}
	}
	if best == noCode {
		return noCode, false
	}
	return best, true
}
