package decomp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lzwtc/internal/ate"
	"lzwtc/internal/bitvec"
	"lzwtc/internal/core"
	"lzwtc/internal/mem"
)

func build(t *testing.T, cfg core.Config, ratio int) (*Decompressor, *mem.Shared) {
	t.Helper()
	words, width := MemoryGeometry(cfg)
	sh := mem.NewShared(mem.New(words, width))
	sh.Select(mem.SrcLZW)
	d, err := New(cfg, ratio, sh)
	if err != nil {
		t.Fatal(err)
	}
	return d, sh
}

func randomCube(rng *rand.Rand, n int, xDensity float64) *bitvec.Vector {
	v := bitvec.New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < xDensity {
			continue
		}
		v.Set(i, bitvec.Bit(rng.Intn(2)))
	}
	return v
}

func TestMatchesSoftwareDecompressor(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := core.Config{CharBits: 7, DictSize: 512, EntryBits: 63}
	stream := randomCube(rng, 20000, 0.85)
	res, err := core.Compress(stream, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Decompress(res.Codes, cfg, stream.Len())
	if err != nil {
		t.Fatal(err)
	}
	d, _ := build(t, cfg, 8)
	got, st, err := d.Run(res.Pack(), len(res.Codes), stream.Len())
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Fatal("hardware output differs from software decompressor")
	}
	if st.CodesDecoded != len(res.Codes) {
		t.Fatalf("decoded %d codes, want %d", st.CodesDecoded, len(res.Codes))
	}
	if !stream.CompatibleWith(got) {
		t.Fatal("hardware output violates cube care bits")
	}
}

func TestSpecialCaseViaCMLAST(t *testing.T) {
	// "000" at 1-bit chars forces the not-yet-written-code merge path.
	cfg := core.Config{CharBits: 1, DictSize: 8, EntryBits: 4}
	stream := bitvec.MustParse("000")
	res, err := core.Compress(stream, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := build(t, cfg, 4)
	sawMerge := false
	d.SetTrace(func(ev Event) {
		if ev.Kind == "decode" && len(ev.Detail) > 5 && ev.Detail[:5] == "merge" {
			sawMerge = true
		}
	})
	got, _, err := d.Run(res.Pack(), len(res.Codes), 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "000" {
		t.Fatalf("output %q", got)
	}
	if !sawMerge {
		t.Fatal("C_MLAST merge path not exercised")
	}
}

func TestImprovementGrowsWithClockRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := core.Config{CharBits: 7, DictSize: 1024, EntryBits: 63}
	stream := randomCube(rng, 40000, 0.9)
	res, err := core.Compress(stream, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, ratio := range []int{1, 4, 8, 10, 1000} {
		d, _ := build(t, cfg, ratio)
		_, st, err := d.Run(res.Pack(), len(res.Codes), stream.Len())
		if err != nil {
			t.Fatal(err)
		}
		imp := ate.Improvement(stream.Len(), st.TesterCycles)
		if imp < prev {
			t.Fatalf("improvement fell from %.4f to %.4f at ratio %d", prev, imp, ratio)
		}
		prev = imp
	}
	// At an extreme ratio, download time approaches the compressed volume:
	// the improvement converges to the compression ratio (Section 6).
	if diff := res.Stats.Ratio() - prev; diff > 0.02 || diff < -0.02 {
		t.Fatalf("ratio %.4f vs limit improvement %.4f", res.Stats.Ratio(), prev)
	}
}

func TestCycleAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := core.Config{CharBits: 4, DictSize: 64, EntryBits: 16}
	stream := randomCube(rng, 2000, 0.7)
	res, err := core.Compress(stream, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := build(t, cfg, 4)
	_, st, err := d.Run(res.Pack(), len(res.Codes), stream.Len())
	if err != nil {
		t.Fatal(err)
	}
	if st.InternalCycles != st.LoadStalls+st.DecodeCycles+st.WriteCycles+st.ShiftCycles {
		t.Fatalf("cycle ledger does not balance: %+v", st)
	}
	if st.ShiftCycles != st.CodesDecoded*0+st.ShiftCycles || st.ShiftCycles < stream.Len() {
		t.Fatalf("shift cycles %d < output bits %d", st.ShiftCycles, stream.Len())
	}
	if st.TesterCycles != (st.InternalCycles+3)/4 {
		t.Fatalf("tester cycles %d vs internal %d", st.TesterCycles, st.InternalCycles)
	}
	if st.MemWrites == 0 || st.MemReads == 0 {
		t.Fatalf("dictionary unused: %+v", st)
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	good := core.Config{CharBits: 4, DictSize: 64, EntryBits: 16}
	words, width := MemoryGeometry(good)
	sh := mem.NewShared(mem.New(words, width))

	if _, err := New(core.Config{CharBits: 4, DictSize: 64}, 4, sh); err == nil {
		t.Error("unbounded entries accepted")
	}
	if _, err := New(core.Config{CharBits: 4, DictSize: 64, EntryBits: 16, Full: core.FullReset}, 4, sh); err == nil {
		t.Error("reset policy accepted")
	}
	if _, err := New(good, 0, sh); err == nil {
		t.Error("zero clock ratio accepted")
	}
	small := mem.NewShared(mem.New(words-1, width))
	if _, err := New(good, 4, small); err == nil {
		t.Error("undersized memory (words) accepted")
	}
	narrow := mem.NewShared(mem.New(words, width-1))
	if _, err := New(good, 4, narrow); err == nil {
		t.Error("undersized memory (width) accepted")
	}
}

func TestPortOwnershipEnforced(t *testing.T) {
	cfg := core.Config{CharBits: 1, DictSize: 8, EntryBits: 4}
	words, width := MemoryGeometry(cfg)
	sh := mem.NewShared(mem.New(words, width)) // functional owns the port
	d, err := New(cfg, 4, sh)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Compress(bitvec.MustParse("010101"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Run(res.Pack(), len(res.Codes), 6); err == nil {
		t.Fatal("dictionary access allowed without port ownership")
	}
}

func TestRunErrors(t *testing.T) {
	cfg := core.Config{CharBits: 1, DictSize: 8, EntryBits: 4}
	d, _ := build(t, cfg, 4)
	// Garbage stream: code 7 is undefined at position 0.
	if _, _, err := d.Run([]byte{0xFF}, 1, 1); err == nil {
		t.Fatal("undefined code accepted")
	}
	d2, _ := build(t, cfg, 4)
	if _, _, err := d2.Run(nil, 1, 1); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

// Property: for arbitrary cubes and ratios, the hardware model emits
// exactly what the software decompressor emits, and the care bits hold.
func TestQuickHardwareEquivalence(t *testing.T) {
	f := func(seed int64, r uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := core.Config{CharBits: 3, DictSize: 32, EntryBits: 12}
		ratio := int(r%16) + 1
		stream := randomCube(rng, rng.Intn(1500)+1, 0.8)
		res, err := core.Compress(stream, cfg)
		if err != nil {
			return false
		}
		want, err := core.Decompress(res.Codes, cfg, stream.Len())
		if err != nil {
			return false
		}
		words, width := MemoryGeometry(cfg)
		sh := mem.NewShared(mem.New(words, width))
		sh.Select(mem.SrcLZW)
		d, err := New(cfg, ratio, sh)
		if err != nil {
			return false
		}
		got, st, err := d.Run(res.Pack(), len(res.Codes), stream.Len())
		if err != nil {
			return false
		}
		return want.Equal(got) && st.TesterCycles > 0 && stream.CompatibleWith(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFieldPacking(t *testing.T) {
	word := make([]uint64, 3)
	setField(word, 60, 10, 0x2AB) // crosses the first limb boundary
	if got := getField(word, 60, 10); got != 0x2AB {
		t.Fatalf("cross-limb field = %#x", got)
	}
	setField(word, 0, 7, 0x55)
	setField(word, 7, 7, 0x2A)
	if getField(word, 0, 7) != 0x55 || getField(word, 7, 7) != 0x2A {
		t.Fatal("adjacent fields interfere")
	}
	// Overwrite must clear old bits.
	setField(word, 7, 7, 0)
	if getField(word, 7, 7) != 0 || getField(word, 0, 7) != 0x55 {
		t.Fatal("overwrite leaked bits")
	}
}

func BenchmarkHardwareRun(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cfg := core.Config{CharBits: 7, DictSize: 1024, EntryBits: 63}
	stream := randomCube(rng, 1<<16, 0.9)
	res, err := core.Compress(stream, cfg)
	if err != nil {
		b.Fatal(err)
	}
	packed := res.Pack()
	words, width := MemoryGeometry(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh := mem.NewShared(mem.New(words, width))
		sh.Select(mem.SrcLZW)
		d, _ := New(cfg, 10, sh)
		if _, _, err := d.Run(packed, len(res.Codes), stream.Len()); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: the closed-form Predict agrees exactly with the cycle-level
// simulation across configurations and clock ratios.
func TestQuickPredictMatchesSimulation(t *testing.T) {
	f := func(seed int64, r uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := core.Config{CharBits: 3, DictSize: 64, EntryBits: 15}
		ratio := int(r%12) + 1
		stream := randomCube(rng, rng.Intn(2000)+1, 0.8)
		res, err := core.Compress(stream, cfg)
		if err != nil {
			return false
		}
		words, width := MemoryGeometry(cfg)
		sh := mem.NewShared(mem.New(words, width))
		sh.Select(mem.SrcLZW)
		d, err := New(cfg, ratio, sh)
		if err != nil {
			return false
		}
		_, st, err := d.Run(res.Pack(), len(res.Codes), stream.Len())
		if err != nil {
			return false
		}
		tc, ic, err := Predict(res.Codes, cfg, ratio)
		if err != nil {
			return false
		}
		return tc == st.TesterCycles && ic == st.InternalCycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictErrors(t *testing.T) {
	if _, _, err := Predict(nil, core.Config{CharBits: 1, DictSize: 8}, 4); err == nil {
		t.Error("unbounded config accepted")
	}
	if _, _, err := Predict(nil, core.Config{CharBits: 1, DictSize: 8, EntryBits: 4}, 0); err == nil {
		t.Error("zero ratio accepted")
	}
	if _, _, err := Predict([]core.Code{7}, core.Config{CharBits: 1, DictSize: 8, EntryBits: 4}, 4); err == nil {
		t.Error("undefined code accepted")
	}
}

func TestHardwarePreloadMatchesSoftware(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	cfg := core.Config{CharBits: 4, DictSize: 128, EntryBits: 32}
	train := randomCube(rng, 6000, 0.85)
	payload := randomCube(rng, 4000, 0.85)
	pre, err := core.Train(train, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.CompressWithPreload(payload, cfg, pre)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.DecompressWithPreload(res.Codes, cfg, pre, payload.Len())
	if err != nil {
		t.Fatal(err)
	}
	d, _ := build(t, cfg, 8)
	if err := d.Preload(pre); err != nil {
		t.Fatal(err)
	}
	got, _, err := d.Run(res.Pack(), len(res.Codes), payload.Len())
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Fatal("warm hardware output differs from warm software decompressor")
	}
	if !payload.CompatibleWith(got) {
		t.Fatal("warm hardware output violates care bits")
	}
}

func TestPreloadOrderingEnforced(t *testing.T) {
	cfg := core.Config{CharBits: 1, DictSize: 8, EntryBits: 4}
	stream := bitvec.MustParse("0101")
	res, err := core.Compress(stream, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := build(t, cfg, 4)
	if _, _, err := d.Run(res.Pack(), len(res.Codes), 4); err != nil {
		t.Fatal(err)
	}
	if err := d.Preload(&core.Preload{Strings: [][]uint64{{0, 1}}}); err == nil {
		t.Fatal("Preload after Run accepted")
	}
	d2, _ := build(t, cfg, 4)
	if err := d2.Preload(&core.Preload{Strings: [][]uint64{{0, 1, 0, 1, 0}}}); err == nil {
		t.Fatal("overlong preload string accepted")
	}
}
