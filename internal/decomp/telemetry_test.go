package decomp

import (
	"math/rand"
	"testing"

	"lzwtc/internal/core"
	"lzwtc/internal/telemetry"
)

func TestRunRecordsTelemetry(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := core.Config{CharBits: 7, DictSize: 512, EntryBits: 63}
	const width, patterns = 700, 12
	stream := randomCube(rng, width*patterns, 0.85)
	res, err := core.Compress(stream, cfg)
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	var events []telemetry.Event
	rec := telemetry.New(reg, telemetry.SinkFunc(func(ev telemetry.Event) { events = append(events, ev) }))
	d, _ := build(t, cfg, 8)
	d.SetRecorder(rec)
	d.SetPatternBits(width)
	_, st, err := d.Run(res.Pack(), len(res.Codes), stream.Len())
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		metric string
		want   int
	}{
		{MetricRuns, 1},
		{MetricEmptyRuns, 0},
		{MetricInternalCycles, st.InternalCycles},
		{MetricTesterCycles, st.TesterCycles},
		{MetricLoadStalls, st.LoadStalls},
		{MetricDecodeCycles, st.DecodeCycles},
		{MetricWriteCycles, st.WriteCycles},
		{MetricShiftCycles, st.ShiftCycles},
		{MetricMemReads, st.MemReads},
		{MetricMemWrites, st.MemWrites},
		{MetricCodesDecoded, st.CodesDecoded},
		{MetricOutputBits, st.OutputBits},
	} {
		if got := reg.Counter(tc.metric, "").Value(); got != int64(tc.want) {
			t.Errorf("%s = %d, want %d", tc.metric, got, tc.want)
		}
	}
	if got := reg.Gauge(MetricUtilization, "").Value(); got != st.Utilization() {
		t.Errorf("utilization gauge = %v, want %v", got, st.Utilization())
	}
	if st.Utilization() <= 0 || st.Utilization() > 1 {
		t.Errorf("utilization = %v, want in (0,1]", st.Utilization())
	}

	// Per-pattern records: every full pattern accounted, cycles summing
	// to no more than the run total, memory reads conserved.
	var patternEvents, cycleSum, readSum int
	var runSeen bool
	for _, ev := range events {
		switch ev.Kind {
		case EventPattern:
			if idx, _ := ev.Field("index"); idx != patternEvents {
				t.Fatalf("pattern events out of order: got index %v at position %d", idx, patternEvents)
			}
			c, _ := ev.Field("internal_cycles")
			cycleSum += c.(int)
			r, _ := ev.Field("mem_reads")
			readSum += r.(int)
			patternEvents++
		case EventRun:
			runSeen = true
			if empty, _ := ev.Field("empty"); empty != false {
				t.Fatalf("run record empty = %v, want false", empty)
			}
		}
	}
	if patternEvents != patterns {
		t.Fatalf("pattern events = %d, want %d", patternEvents, patterns)
	}
	if !runSeen {
		t.Fatal("no decomp.run record emitted")
	}
	if cycleSum > st.InternalCycles {
		t.Fatalf("per-pattern cycles %d exceed run total %d", cycleSum, st.InternalCycles)
	}
	if readSum > st.MemReads {
		t.Fatalf("per-pattern reads %d exceed run total %d", readSum, st.MemReads)
	}
	if h := reg.Histogram(MetricPatternCycles, "", nil); h.Count() != int64(patterns) {
		t.Fatalf("pattern-cycles histogram count = %d, want %d", h.Count(), patterns)
	}
}

func TestRunEmptyTelemetry(t *testing.T) {
	cfg := core.Config{CharBits: 1, DictSize: 8, EntryBits: 4}
	reg := telemetry.NewRegistry()
	var events []telemetry.Event
	rec := telemetry.New(reg, telemetry.SinkFunc(func(ev telemetry.Event) { events = append(events, ev) }))
	d, _ := build(t, cfg, 4)
	d.SetRecorder(rec)
	_, st, err := d.Run(nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Empty() {
		t.Fatal("Stats.Empty() = false for zero-input run")
	}
	if st.Utilization() != 0 {
		t.Fatalf("empty Utilization = %v, want 0", st.Utilization())
	}
	if got := reg.Counter(MetricEmptyRuns, "").Value(); got != 1 {
		t.Fatalf("empty-runs counter = %d, want 1", got)
	}
	found := false
	for _, ev := range events {
		if ev.Kind == EventRun {
			found = true
			if empty, ok := ev.Field("empty"); !ok || empty != true {
				t.Fatalf("run record empty field = %v, %v; want true", empty, ok)
			}
		}
	}
	if !found {
		t.Fatal("no decomp.run record emitted for empty run")
	}
}

func TestRunNilRecorderUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := core.Config{CharBits: 7, DictSize: 512, EntryBits: 63}
	stream := randomCube(rng, 5000, 0.85)
	res, err := core.Compress(stream, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := build(t, cfg, 8)
	outPlain, stPlain, err := plain.Run(res.Pack(), len(res.Codes), stream.Len())
	if err != nil {
		t.Fatal(err)
	}
	obs, _ := build(t, cfg, 8)
	obs.SetRecorder(telemetry.New(telemetry.NewRegistry()))
	obs.SetPatternBits(500)
	outObs, stObs, err := obs.Run(res.Pack(), len(res.Codes), stream.Len())
	if err != nil {
		t.Fatal(err)
	}
	if !outPlain.Equal(outObs) {
		t.Fatal("instrumented run produced different output")
	}
	if *stPlain != *stObs {
		t.Fatalf("instrumented run changed stats:\nplain: %+v\nobs:   %+v", *stPlain, *stObs)
	}
}
