package decomp

import "lzwtc/internal/telemetry"

// Event kinds the decompressor model emits through a telemetry
// recorder.
const (
	EventRun     = "decomp.run"     // one summary record per Run
	EventPattern = "decomp.pattern" // one record per completed scan pattern
)

// Registry metric names for the hardware decompressor model. The cycle
// counters are the raw material of the paper's Tables 2 and 6 (download
// time vs. clock ratio); the utilization gauge is the fraction of
// internal cycles spent actually shifting scan bits.
const (
	MetricRuns           = "lzwtc_decomp_runs_total"
	MetricEmptyRuns      = "lzwtc_decomp_empty_runs_total"
	MetricInternalCycles = "lzwtc_decomp_internal_cycles_total"
	MetricTesterCycles   = "lzwtc_decomp_tester_cycles_total"
	MetricLoadStalls     = "lzwtc_decomp_load_stalls_total"
	MetricDecodeCycles   = "lzwtc_decomp_decode_cycles_total"
	MetricWriteCycles    = "lzwtc_decomp_write_cycles_total"
	MetricShiftCycles    = "lzwtc_decomp_shift_cycles_total"
	MetricMemReads       = "lzwtc_decomp_mem_reads_total"
	MetricMemWrites      = "lzwtc_decomp_mem_writes_total"
	MetricCodesDecoded   = "lzwtc_decomp_codes_decoded_total"
	MetricOutputBits     = "lzwtc_decomp_output_bits_total"
	MetricUtilization    = "lzwtc_decomp_utilization"
	MetricPatternCycles  = "lzwtc_decomp_pattern_cycles"
)

// PatternCycleBuckets returns histogram bounds for internal cycles per
// scan pattern. Spans the regimes of Table 2: a well-compressed pattern
// costs about its width in shift cycles; a stall-bound one costs
// C_E·ratio per code.
func PatternCycleBuckets() []float64 {
	return []float64{64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 65536}
}

// Utilization returns the fraction of internal cycles spent shifting
// scan bits — the useful-work ratio at the chosen ATE clock ratio
// (1 means the output shifter never waited on loads or dictionary
// traffic). Empty runs return 0; check Empty to distinguish "no work"
// from "all stall".
func (s Stats) Utilization() float64 {
	if s.InternalCycles == 0 {
		return 0
	}
	return float64(s.ShiftCycles) / float64(s.InternalCycles)
}

// Empty reports whether the run decoded nothing, the case where the
// cycle counters' zeros mean "nothing happened" rather than "free".
func (s Stats) Empty() bool { return s.CodesDecoded == 0 && s.InternalCycles == 0 }

// recordRun folds a finished run's Stats into the recorder: aggregate
// counters, the utilization gauge, and one EventRun record. Zero-input
// runs are explicit — empty=true plus the empty-runs counter — rather
// than hiding behind Utilization's silent 0.
func recordRun(rec *telemetry.Recorder, ratio int, st Stats) {
	if !rec.Enabled() {
		return
	}
	if reg := rec.Registry(); reg != nil {
		reg.Counter(MetricRuns, "decompression runs").Inc()
		if st.Empty() {
			reg.Counter(MetricEmptyRuns, "zero-input decompression runs").Inc()
		}
		reg.Counter(MetricInternalCycles, "internal clock cycles").Add(int64(st.InternalCycles))
		reg.Counter(MetricTesterCycles, "tester clock cycles").Add(int64(st.TesterCycles))
		reg.Counter(MetricLoadStalls, "cycles stalled on compressed input").Add(int64(st.LoadStalls))
		reg.Counter(MetricDecodeCycles, "decode cycles").Add(int64(st.DecodeCycles))
		reg.Counter(MetricWriteCycles, "dictionary write cycles").Add(int64(st.WriteCycles))
		reg.Counter(MetricShiftCycles, "scan-bit shift cycles").Add(int64(st.ShiftCycles))
		reg.Counter(MetricMemReads, "dictionary memory reads").Add(int64(st.MemReads))
		reg.Counter(MetricMemWrites, "dictionary memory writes").Add(int64(st.MemWrites))
		reg.Counter(MetricCodesDecoded, "codes decoded").Add(int64(st.CodesDecoded))
		reg.Counter(MetricOutputBits, "scan bits emitted").Add(int64(st.OutputBits))
		reg.Gauge(MetricUtilization, "shift cycles / internal cycles, last run").Set(st.Utilization())
	}
	rec.Emit(EventRun,
		telemetry.F("empty", st.Empty()),
		telemetry.F("clock_ratio", ratio),
		telemetry.F("utilization", st.Utilization()),
		telemetry.F("stats", st),
	)
}

// patternMeter tracks per-pattern cycle and memory-read accounting
// during Run. A nil *patternMeter is the disabled path: one pointer
// check per decoded code.
type patternMeter struct {
	rec        *telemetry.Recorder
	hist       *telemetry.Histogram
	bits       int // scan bits per pattern
	done       int // patterns fully emitted
	lastCycle  int
	lastReads  int
	lastStalls int
}

func newPatternMeter(rec *telemetry.Recorder, patternBits int) *patternMeter {
	if !rec.Enabled() || patternBits <= 0 {
		return nil
	}
	var hist *telemetry.Histogram
	if reg := rec.Registry(); reg != nil {
		hist = reg.Histogram(MetricPatternCycles, "internal cycles per scan pattern", PatternCycleBuckets())
	}
	return &patternMeter{rec: rec, hist: hist, bits: patternBits}
}

// observe emits one EventPattern record per pattern boundary crossed by
// the output position, charging each pattern the cycles and memory
// reads accumulated since the previous boundary.
func (p *patternMeter) observe(pos, cycle int, st *Stats) {
	if p == nil {
		return
	}
	for p.done < pos/p.bits {
		cycles := cycle - p.lastCycle
		p.hist.Observe(float64(cycles))
		p.rec.Emit(EventPattern,
			telemetry.F("index", p.done),
			telemetry.F("internal_cycles", cycles),
			telemetry.F("mem_reads", st.MemReads-p.lastReads),
			telemetry.F("load_stalls", st.LoadStalls-p.lastStalls),
		)
		p.done++
		p.lastCycle = cycle
		p.lastReads = st.MemReads
		p.lastStalls = st.LoadStalls
	}
}
