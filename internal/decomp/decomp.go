// Package decomp is a cycle-accurate model of the paper's hardware LZW
// decompressor (Section 5.1, Figure 5).
//
// Structure, mirroring the figure:
//
//   - a C_E-bit input shifter fed one compressed bit per *tester* cycle,
//   - a finite state machine clocked by the faster *internal* clock
//     (an integer multiple of the tester clock),
//   - the dictionary memory — N words of C_MLEN+C_MDATA bits, each entry
//     holding its complete uncompressed string so any code decodes with a
//     single memory read (the paper's answer to the stack-based software
//     scheme of reference [24]),
//   - the C_MLAST register holding the previously decoded string, used to
//     build new entries and to resolve the not-yet-written-code case, and
//   - a C_D output shifter driving the scan chain one bit per internal
//     cycle.
//
// The model charges one internal cycle per FSM state transition, one per
// dictionary read or write, and one per output bit shifted. The input
// shifter is single-buffered: the next code's bits arrive only while the
// FSM is back in its LOAD state, so the per-code download cost is
// C_E tester cycles plus (string length + constants)/ratio — the
// behaviour behind Tables 2 and 6, where improvement approaches the
// compression ratio from below as the internal clock speeds up.
package decomp

import (
	"fmt"

	"lzwtc/internal/bitio"
	"lzwtc/internal/bitvec"
	"lzwtc/internal/core"
	"lzwtc/internal/mem"
	"lzwtc/internal/telemetry"
)

// Stats reports the cycle accounting of one decompression run.
type Stats struct {
	InternalCycles int // total internal clock cycles to the last scan bit
	TesterCycles   int // ceil(InternalCycles / ClockRatio)
	LoadStalls     int // cycles the FSM waited for compressed input
	DecodeCycles   int
	WriteCycles    int
	ShiftCycles    int // one per scan bit emitted
	MemReads       int
	MemWrites      int
	OutputBits     int
	CodesDecoded   int
}

// Event is a code-level trace record (used to regenerate Figure 5's
// data path narrative).
type Event struct {
	Cycle  int    // internal cycle at which the event completed
	Kind   string // "load", "decode", "write", "shift"
	Detail string
}

// Decompressor is the hardware model. Create one per run with New.
type Decompressor struct {
	cfg         core.Config
	ratio       int
	shared      *mem.Shared
	trace       func(Event)
	rec         *telemetry.Recorder
	patternBits int

	// registers
	next      core.Code // next free dictionary location
	cmlast    []uint64  // chars of the previously decoded string
	cmlastLen int
	haveLast  bool

	stats Stats
}

// New builds a decompressor clocked ratio times faster than the tester,
// with its dictionary in the given shared memory (the Figure 6 reuse).
// The configuration must be hardware-realizable: bounded entries and the
// freeze dictionary-full policy.
func New(cfg core.Config, ratio int, shared *mem.Shared) (*Decompressor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.EntryBits == 0 {
		return nil, fmt.Errorf("decomp: unbounded entries have no hardware realization (set EntryBits)")
	}
	if cfg.Full != core.FullFreeze {
		return nil, fmt.Errorf("decomp: hardware dictionary supports only the freeze policy")
	}
	if ratio < 1 {
		return nil, fmt.Errorf("decomp: clock ratio %d must be >= 1", ratio)
	}
	ram := shared.RAM()
	if ram.Words() < cfg.DictSize {
		return nil, fmt.Errorf("decomp: memory has %d words, dictionary needs %d", ram.Words(), cfg.DictSize)
	}
	if ram.Width() < cfg.LenBits()+cfg.EntryBits {
		return nil, fmt.Errorf("decomp: memory word %d bits, entry needs %d", ram.Width(), cfg.LenBits()+cfg.EntryBits)
	}
	return &Decompressor{
		cfg:    cfg,
		ratio:  ratio,
		shared: shared,
		next:   core.Code(cfg.Literals()),
		cmlast: make([]uint64, cfg.MaxChars()),
	}, nil
}

// SetTrace installs a code-level trace callback.
func (d *Decompressor) SetTrace(f func(Event)) { d.trace = f }

// SetRecorder installs a telemetry recorder: Run folds its Stats into
// the recorder's registry and emits run (and, with SetPatternBits,
// per-pattern) event records. A nil recorder — the default — keeps the
// cycle loop on the uninstrumented path.
func (d *Decompressor) SetRecorder(rec *telemetry.Recorder) { d.rec = rec }

// SetPatternBits sets the scan-pattern width so Run can charge internal
// cycles, memory reads, and load stalls to individual patterns
// (EventPattern records plus the pattern-cycles histogram). Zero — the
// default — disables per-pattern accounting.
func (d *Decompressor) SetPatternBits(w int) { d.patternBits = w }

// Preload writes a warm-start dictionary into the embedded memory
// through the LZW port before decompression begins — the amortization
// the paper's conclusion hints at (the dictionary written once, every
// later session starting warm). The compressor must have used the same
// preload (core.CompressWithPreload). Must be called before Run.
func (d *Decompressor) Preload(pre *core.Preload) error {
	if d.stats.CodesDecoded != 0 || d.haveLast {
		return fmt.Errorf("decomp: Preload must precede Run")
	}
	cc := d.cfg.CharBits
	maxChars := d.cfg.MaxChars()
	for i, s := range pre.Strings {
		if len(s) < 2 || len(s) > maxChars {
			return fmt.Errorf("decomp: preload string %d has %d chars (bound %d)", i, len(s), maxChars)
		}
		if int(d.next) >= d.cfg.DictSize {
			return fmt.Errorf("decomp: preload overflows the dictionary at string %d", i)
		}
		word := make([]uint64, (d.cfg.LenBits()+d.cfg.EntryBits+63)/64)
		setField(word, 0, d.cfg.LenBits(), uint64(len(s)))
		for k, ch := range s {
			setField(word, d.cfg.LenBits()+k*cc, cc, ch)
		}
		if err := d.shared.Write(mem.SrcLZW, int(d.next), word); err != nil {
			return err
		}
		d.stats.MemWrites++
		d.next++
	}
	return nil
}

// MemoryGeometry returns the dictionary geometry (words x width) a
// configuration needs, for provisioning the shared memory. It is a
// pure sizing helper: it touches no bit streams, and New re-validates
// the same configuration before any memory traffic happens.
//
//lzwtcvet:ignore configbeforeuse sizing helper; New validates before use
func MemoryGeometry(cfg core.Config) (words, width int) {
	return cfg.DictSize, cfg.LenBits() + cfg.EntryBits
}

// Run decompresses a packed code stream (as produced by core's
// Result.Pack) of nCodes codes, emitting outBits scan bits. The shared
// memory port must already be selected for the LZW source.
//
// It returns the fully specified scan stream and the cycle statistics.
func (d *Decompressor) Run(packed []byte, nCodes, outBits int) (*bitvec.Vector, *Stats, error) {
	rd := bitio.NewReader(packed, -1)
	cc := d.cfg.CharBits
	ce := d.cfg.CodeBits()
	maxChars := d.cfg.MaxChars()
	out := bitvec.New(outBits)

	// Input shifter state: bits become available on tester edges.
	totalInBits := nCodes * ce
	delivered := 0 // bits moved from the ATE into the input shifter
	avail := 0     // bits currently latched and unconsumed

	cycle := 0
	pos := 0 // output write position (bits)
	var scratch []uint64
	meter := newPatternMeter(d.rec, d.patternBits)

	// The input shifter is single-buffered, exactly as Figure 5 draws it:
	// "the process starts when C_E is fully loaded into its input
	// shifter". Compressed bits arrive on tester edges only while the FSM
	// is in the LOAD state; decode, dictionary and output-shift cycles do
	// not overlap the next code's delivery. This is what gives Table 2
	// its shape — improvement ≈ compression ratio − 1/clockRatio — rather
	// than saturating at the compression ratio.
	loading := false

	// tick advances one internal cycle, delivering input on tester edges
	// while the input shifter owns the stream.
	tick := func() {
		if loading && cycle%d.ratio == 0 && delivered < totalInBits {
			delivered++
			avail++
		}
		cycle++
	}

	emit := func(kind, detail string) {
		if d.trace != nil {
			d.trace(Event{Cycle: cycle, Kind: kind, Detail: detail})
		}
	}

	for codeIdx := 0; codeIdx < nCodes; codeIdx++ {
		// LOAD: wait until C_E bits are in the input shifter.
		loading = true
		for avail < ce {
			d.stats.LoadStalls++
			tick()
		}
		loading = false
		v, err := rd.ReadBits(ce)
		if err != nil {
			return nil, nil, fmt.Errorf("decomp: truncated code stream at code %d: %w", codeIdx, err)
		}
		avail -= ce
		code := core.Code(v)
		emit("load", fmt.Sprintf("code %d latched", code))

		// Mirror the software decoder: decide whether an entry will be
		// written before interpreting the code (freeze policy only, so
		// the decision is a pure predicate).
		pending := d.haveLast && d.cmlastLen+1 <= maxChars && int(d.next) < d.cfg.DictSize

		// DECODE: one cycle; a dictionary code costs one memory read.
		var chars []uint64
		switch {
		case int(code) < d.cfg.Literals():
			chars = append(scratch[:0], uint64(code))
		case code < d.next:
			word, err := d.shared.Read(mem.SrcLZW, int(code), nil)
			if err != nil {
				return nil, nil, err
			}
			d.stats.MemReads++
			n := int(getField(word, 0, d.cfg.LenBits()))
			if n < 1 || n > maxChars {
				return nil, nil, fmt.Errorf("decomp: corrupt entry length %d at code %d", n, code)
			}
			chars = scratch[:0]
			for k := 0; k < n; k++ {
				chars = append(chars, getField(word, d.cfg.LenBits()+k*cc, cc))
			}
			emit("decode", fmt.Sprintf("dictionary read %d: %d chars", code, n))
		case code == d.next && pending:
			// Figure 4f in hardware: the entry is not in memory yet; the
			// data-merging mux assembles it from C_MLAST and its own
			// first character.
			chars = append(append(scratch[:0], d.cmlast[:d.cmlastLen]...), d.cmlast[0])
			emit("decode", fmt.Sprintf("merge C_MLAST for not-yet-written code %d", code))
		default:
			return nil, nil, fmt.Errorf("decomp: undefined code %d at position %d (next free %d)", code, codeIdx, d.next)
		}
		scratch = chars
		d.stats.DecodeCycles++
		tick()

		// WRITE: append C_MLAST + first char of the current string to the
		// dictionary (one memory write).
		if pending {
			word := make([]uint64, (d.cfg.LenBits()+d.cfg.EntryBits+63)/64)
			setField(word, 0, d.cfg.LenBits(), uint64(d.cmlastLen+1))
			for k := 0; k < d.cmlastLen; k++ {
				setField(word, d.cfg.LenBits()+k*cc, cc, d.cmlast[k])
			}
			setField(word, d.cfg.LenBits()+d.cmlastLen*cc, cc, chars[0])
			if err := d.shared.Write(mem.SrcLZW, int(d.next), word); err != nil {
				return nil, nil, err
			}
			d.stats.MemWrites++
			d.stats.WriteCycles++
			emit("write", fmt.Sprintf("entry %d <- C_MLAST(%d chars)+first", d.next, d.cmlastLen))
			d.next++
			tick()
		}

		// SHIFT: one scan bit per internal cycle through the C_D output
		// shifter.
		for _, ch := range chars {
			for b := 0; b < cc; b++ {
				if pos < outBits {
					out.Set(pos, bitvec.Bit(ch>>uint(b)&1))
				}
				pos++
				d.stats.ShiftCycles++
				tick()
			}
		}
		emit("shift", fmt.Sprintf("%d bits to scan chain", len(chars)*cc))

		// Update C_MLAST.
		d.cmlastLen = copy(d.cmlast[:cap(d.cmlast)], chars)
		d.cmlast = d.cmlast[:cap(d.cmlast)]
		d.haveLast = true
		d.stats.CodesDecoded++
		meter.observe(pos, cycle, &d.stats)
	}

	if pos < outBits {
		return nil, nil, fmt.Errorf("decomp: stream produced %d bits, need %d", pos, outBits)
	}
	if pos-outBits >= cc {
		return nil, nil, fmt.Errorf("decomp: stream produced %d bits, more than a character beyond %d", pos, outBits)
	}
	d.stats.InternalCycles = cycle
	d.stats.TesterCycles = (cycle + d.ratio - 1) / d.ratio
	d.stats.OutputBits = outBits
	st := d.stats
	recordRun(d.rec, d.ratio, st)
	return out, &st, nil
}

// getField extracts width bits starting at bit off from a little-endian
// limb array.
func getField(word []uint64, off, width int) uint64 {
	limb, sh := off/64, uint(off%64)
	v := word[limb] >> sh
	if sh != 0 && limb+1 < len(word) {
		v |= word[limb+1] << (64 - sh)
	}
	if width < 64 {
		v &= 1<<uint(width) - 1
	}
	return v
}

// setField stores width bits of val at bit off in a little-endian limb
// array.
func setField(word []uint64, off, width int, val uint64) {
	if width < 64 {
		val &= 1<<uint(width) - 1
	}
	limb, sh := off/64, uint(off%64)
	word[limb] = word[limb]&^(((1<<uint(width))-1)<<sh) | val<<sh
	if sh != 0 && width > 64-int(sh) {
		hi := width - (64 - int(sh))
		word[limb+1] = word[limb+1]&^((1<<uint(hi))-1) | val>>(64-sh)
	}
}
