package decomp

import (
	"fmt"

	"lzwtc/internal/core"
)

// Predict computes, in closed form, the download time the cycle-accurate
// model measures: per code, the input shifter collects C_E bits on
// tester edges, then the FSM spends one decode cycle, one optional
// dictionary-write cycle and one cycle per output bit. It replays only
// the dictionary's *length* bookkeeping, so it runs in O(codes) instead
// of O(cycles) — used by the experiment sweeps and as an independent
// check on the simulator (they must agree exactly; see the tests).
func Predict(codes []core.Code, cfg core.Config, ratio int) (testerCycles, internalCycles int, err error) {
	if err := cfg.Validate(); err != nil {
		return 0, 0, err
	}
	if cfg.EntryBits == 0 || cfg.Full != core.FullFreeze {
		return 0, 0, fmt.Errorf("decomp: Predict models the hardware configuration only")
	}
	if ratio < 1 {
		return 0, 0, fmt.Errorf("decomp: clock ratio %d must be >= 1", ratio)
	}
	cc := cfg.CharBits
	ce := cfg.CodeBits()
	maxChars := cfg.MaxChars()
	literals := core.Code(cfg.Literals())

	// Length bookkeeping replica of the decoder dictionary.
	lens := make([]int, cfg.DictSize)
	for i := 0; i < cfg.Literals(); i++ {
		lens[i] = 1
	}
	next := literals
	prevLen := 0
	havePrev := false

	cycle := 0
	for idx, c := range codes {
		// LOAD: the input shifter needs C_E fresh bits; deliveries land on
		// internal cycles that are multiples of the clock ratio, starting
		// at or after the current cycle, and the FSM leaves LOAD on the
		// cycle after the last delivery.
		first := (cycle + ratio - 1) / ratio * ratio
		cycle = first + (ce-1)*ratio + 1

		pending := havePrev && prevLen+1 <= maxChars && int(next) < cfg.DictSize

		var l int
		switch {
		case c < literals:
			l = 1
		case c < next:
			l = lens[c]
		case pending && c == next:
			l = prevLen + 1
		default:
			return 0, 0, fmt.Errorf("decomp: undefined code %d at position %d", c, idx)
		}

		cycle++ // DECODE
		if pending {
			lens[next] = prevLen + 1
			next++
			cycle++ // WRITE
		}
		cycle += l * cc // SHIFT

		prevLen = l
		havePrev = true
	}
	return (cycle + ratio - 1) / ratio, cycle, nil
}
