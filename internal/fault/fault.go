// Package fault models single stuck-at faults on gate terminals, the
// fault universe ATPG and fault simulation work against.
package fault

import (
	"fmt"

	"lzwtc/internal/bitvec"
	"lzwtc/internal/circuit"
	"lzwtc/internal/sim"
)

// Fault is a single stuck-at fault. Pin -1 places it on the gate's
// output stem; 0..len(Fanin)-1 on an input branch.
type Fault struct {
	Gate int
	Pin  int
	SA   bitvec.Bit // Zero or One
}

// String renders "g12/out s-a-1" or "g12/in0 s-a-0".
func (f Fault) String() string {
	loc := "out"
	if f.Pin >= 0 {
		loc = fmt.Sprintf("in%d", f.Pin)
	}
	return fmt.Sprintf("#%d/%s s-a-%v", f.Gate, loc, f.SA)
}

// Name renders the fault with the gate's netlist name.
func (f Fault) Name(c *circuit.Circuit) string {
	loc := "out"
	if f.Pin >= 0 {
		loc = fmt.Sprintf("in%d", f.Pin)
	}
	return fmt.Sprintf("%s/%s s-a-%v", c.Gates[f.Gate].Name, loc, f.SA)
}

// All enumerates the standard structural fault list: stuck-at-0/1 on
// every gate output (stem), plus stuck-at-0/1 on every input branch
// whose driving net fans out to more than one sink (single-fanout
// connections are equivalent to the driver's stem faults).
func All(c *circuit.Circuit) []Fault {
	fanout := c.Fanout()
	var fs []Fault
	for id, g := range c.Gates {
		fs = append(fs, Fault{Gate: id, Pin: -1, SA: bitvec.Zero}, Fault{Gate: id, Pin: -1, SA: bitvec.One})
		if g.Type == circuit.Input {
			continue
		}
		for pin, drv := range g.Fanin {
			if len(fanout[drv]) > 1 {
				fs = append(fs, Fault{Gate: id, Pin: pin, SA: bitvec.Zero}, Fault{Gate: id, Pin: pin, SA: bitvec.One})
			}
		}
	}
	return fs
}

// Collapse removes structurally equivalent faults from the list using
// gate-local equivalence:
//
//	AND:  input s-a-0 ≡ output s-a-0     NAND: input s-a-0 ≡ output s-a-1
//	OR:   input s-a-1 ≡ output s-a-1     NOR:  input s-a-1 ≡ output s-a-0
//	BUF/NOT/DFF: both input faults ≡ the corresponding output faults
//
// Only the representative (the output-side fault) is kept.
func Collapse(c *circuit.Circuit, fs []Fault) []Fault {
	out := fs[:0:0]
	for _, f := range fs {
		if f.Pin < 0 {
			out = append(out, f)
			continue
		}
		g := c.Gates[f.Gate]
		drop := false
		switch g.Type {
		case circuit.And, circuit.Nand:
			drop = f.SA == bitvec.Zero
		case circuit.Or, circuit.Nor:
			drop = f.SA == bitvec.One
		case circuit.Buf, circuit.Not, circuit.DFF:
			drop = true
		}
		if !drop {
			out = append(out, f)
		}
	}
	return out
}

// SiteGate returns the gate whose output value the fault perturbs: the
// gate itself for both stem and input-branch faults (a branch fault
// changes how this gate evaluates).
func (f Fault) SiteGate() int { return f.Gate }

// Injector returns a function for sim.State.ApplyFaulty that applies
// this fault during evaluation.
//
// For a stem fault the gate's computed output is replaced by the stuck
// value. For an input-branch fault, the gate is re-evaluated with the
// faulty pin forced; this keeps injection independent of evaluation
// order.
func (f Fault) Injector(c *circuit.Circuit, get func(id int) bitvec.Bit) func(id int, val bitvec.Bit) bitvec.Bit {
	if f.Pin < 0 {
		return func(id int, val bitvec.Bit) bitvec.Bit {
			if id == f.Gate {
				return f.SA
			}
			return val
		}
	}
	g := c.Gates[f.Gate]
	in := make([]bitvec.Bit, len(g.Fanin))
	return func(id int, val bitvec.Bit) bitvec.Bit {
		if id != f.Gate {
			return val
		}
		for k, d := range g.Fanin {
			in[k] = get(d)
		}
		in[f.Pin] = f.SA
		return sim.Eval(g.Type, in)
	}
}
