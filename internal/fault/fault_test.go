package fault

import (
	"testing"

	"lzwtc/internal/bitvec"
	"lzwtc/internal/circuit"
	"lzwtc/internal/sim"
)

func TestAllFaultsC17(t *testing.T) {
	c := circuit.C17()
	fs := All(c)
	// 11 gates -> 22 stem faults. Fanout stems: N3 (N10,N11), N11
	// (N16,N19), N16 (N22,N23) -> 6 branch pins -> 12 branch faults.
	if len(fs) != 22+12 {
		t.Fatalf("fault count = %d, want 34", len(fs))
	}
	branches := 0
	for _, f := range fs {
		if f.Pin >= 0 {
			branches++
		}
	}
	if branches != 12 {
		t.Fatalf("branch faults = %d", branches)
	}
}

func TestCollapseC17(t *testing.T) {
	c := circuit.C17()
	fs := Collapse(c, All(c))
	// All gates are NANDs: input s-a-0 collapses into output s-a-1,
	// removing 6 of the 12 branch faults.
	if len(fs) != 34-6 {
		t.Fatalf("collapsed count = %d, want 28", len(fs))
	}
	for _, f := range fs {
		if f.Pin >= 0 && f.SA == bitvec.Zero && c.Gates[f.Gate].Type == circuit.Nand {
			t.Fatalf("NAND input s-a-0 survived collapsing: %v", f)
		}
	}
}

func TestCollapseInverterChain(t *testing.T) {
	c := circuit.New("inv")
	a, _ := c.AddGate("a", circuit.Input)
	b, _ := c.AddGate("b", circuit.Input)
	n1, _ := c.AddGate("n1", circuit.Not, a)
	n2, _ := c.AddGate("o", circuit.Or, n1, b)
	// Give n1 fanout 2 so its branch faults exist before collapsing.
	n3, _ := c.AddGate("n3", circuit.Buf, n1)
	c.MarkOutput(n2)
	c.MarkOutput(n3)
	fs := All(c)
	cl := Collapse(c, fs)
	for _, f := range cl {
		if f.Pin >= 0 {
			g := c.Gates[f.Gate]
			if g.Type == circuit.Not || g.Type == circuit.Buf {
				t.Fatalf("inverter/buffer input fault survived: %v", f)
			}
			if g.Type == circuit.Or && f.SA == bitvec.One {
				t.Fatalf("OR input s-a-1 survived: %v", f)
			}
		}
	}
}

func TestStringAndName(t *testing.T) {
	c := circuit.C17()
	f := Fault{Gate: 5, Pin: -1, SA: bitvec.One}
	if f.String() == "" || f.Name(c) == "" {
		t.Fatal("empty rendering")
	}
	f2 := Fault{Gate: 5, Pin: 1, SA: bitvec.Zero}
	if f2.String() == f.String() {
		t.Fatal("pin fault renders like stem fault")
	}
}

func TestInjectorStem(t *testing.T) {
	cb, _ := circuit.NewComb(circuit.C17())
	st := sim.NewState(cb)
	id, _ := cb.C.ByName("N10")
	f := Fault{Gate: id, Pin: -1, SA: bitvec.Zero}
	inj := f.Injector(cb.C, st.Get)
	if err := st.ApplyFaulty(bitvec.MustParse("00000"), inj); err != nil {
		t.Fatal(err)
	}
	if st.Get(id) != bitvec.Zero {
		t.Fatalf("stem fault not injected: N10 = %v", st.Get(id))
	}
	// Good value would be 1 (NAND of 0,0); downstream N22 = NAND(N10,N16):
	// faulty N10=0 forces N22=1.
	n22, _ := cb.C.ByName("N22")
	if st.Get(n22) != bitvec.One {
		t.Fatalf("fault effect not propagated: N22 = %v", st.Get(n22))
	}
}

func TestInjectorPin(t *testing.T) {
	cb, _ := circuit.NewComb(circuit.C17())
	st := sim.NewState(cb)
	n16, _ := cb.C.ByName("N16")
	// N16 = NAND(N2, N11); fault pin 0 (N2 side) s-a-1.
	f := Fault{Gate: n16, Pin: 0, SA: bitvec.One}
	inj := f.Injector(cb.C, st.Get)
	// N2=0, N3=1, N6=1 -> N11 = 0 -> good N16 = 1 regardless. Choose
	// N3=1,N6=0 so N11=1: good N16 = NAND(0,1) = 1, faulty = NAND(1,1)=0.
	if err := st.ApplyFaulty(bitvec.MustParse("00100"), inj); err != nil {
		t.Fatal(err)
	}
	if st.Get(n16) != bitvec.Zero {
		t.Fatalf("pin fault value: N16 = %v, want 0", st.Get(n16))
	}
}
