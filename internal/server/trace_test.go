// Tracing, SLO accounting, request-ID echo and introspection-endpoint
// tests: the observability surface the client and dashboards contract
// on, driven end to end through a hosted service.
package server_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"lzwtc"
	"lzwtc/client"
	"lzwtc/internal/core"
	"lzwtc/internal/parallel"
	"lzwtc/internal/server"
	"lzwtc/internal/telemetry"
)

// traceCapture collects client-side span records concurrently.
type traceCapture struct {
	mu    sync.Mutex
	spans []telemetry.SpanRecord
}

func (c *traceCapture) Emit(ev telemetry.Event) {
	if rec, ok := telemetry.SpanRecordFromEvent(ev); ok {
		c.mu.Lock()
		c.spans = append(c.spans, rec)
		c.mu.Unlock()
	}
}

func (c *traceCapture) snapshot() []telemetry.SpanRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]telemetry.SpanRecord(nil), c.spans...)
}

// startTracedService hosts a service and returns a traced client, the
// client-side capture, the server, and the base URL for raw requests.
func startTracedService(t *testing.T, cfg server.Config) (*client.Client, *traceCapture, *server.Server, string) {
	t.Helper()
	srv := server.New(cfg)
	t.Cleanup(srv.Close)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	cap := &traceCapture{}
	rec := telemetry.New(telemetry.NewRegistry(), cap)
	return client.New(hs.URL, client.Options{Retries: 0, Recorder: rec}), cap, srv, hs.URL
}

// serverSpans drains the server ring buffer into a flat record list,
// waiting briefly: the handler's span ends in a deferred func that can
// still be running when the client has the full response.
func serverSpans(t *testing.T, srv *server.Server, want int) []telemetry.SpanRecord {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		var out []telemetry.SpanRecord
		for _, tr := range srv.Traces().Recent(100) {
			out = append(out, tr.Spans...)
		}
		if len(out) >= want || time.Now().After(deadline) {
			return out
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServiceEndToEndTrace is the acceptance path: one remote compress
// through an instrumented client yields ONE trace whose tree spans the
// client request, the server handler, the pool job, and the core
// phases.
func TestServiceEndToEndTrace(t *testing.T) {
	c, cap, srv, _ := startTracedService(t, server.Config{})
	ctx := telemetry.ContextWithRequestID(context.Background(), "trace-e2e-1")
	ts := readCorpusSet(t, "cc4-freeze")
	cfg := corpusCases()["cc4-freeze"]

	container, err := c.Compress(ctx, ts, cfg, client.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}

	recs := append(cap.snapshot(), serverSpans(t, srv, 5)...)
	traces := telemetry.CollectTraces(recs)
	if len(traces) != 1 {
		ids := make([]string, 0, len(traces))
		for _, tr := range traces {
			ids = append(ids, tr.TraceID)
		}
		t.Fatalf("client+server spans split into %d traces (%v), want 1", len(traces), ids)
	}
	tr := traces[0]
	spans := tr.Spans()
	if len(spans) < 6 {
		t.Fatalf("trace has %d spans, want >= 6: %+v", len(spans), names(spans))
	}
	if len(tr.Roots) != 1 || tr.Roots[0].Name != client.SpanClientRequest {
		t.Fatalf("trace root = %+v, want single %s root", names(tr.Roots), client.SpanClientRequest)
	}
	byName := map[string]int{}
	for _, s := range spans {
		byName[s.Name]++
	}
	for _, want := range []string{
		client.SpanClientRequest, server.SpanCompress, parallel.EventJob,
		core.SpanSerialize, core.SpanDictBuild, core.SpanMatchLoop,
	} {
		if byName[want] == 0 {
			t.Fatalf("trace missing %q span; got %v", want, names(spans))
		}
	}
	// The request ID travels with the trace: every server-side span is
	// stamped with the ID the client supplied.
	for _, s := range spans {
		if s.Process == "lzwtcd" && s.RequestID != "trace-e2e-1" {
			t.Fatalf("server span %s carries request_id %q, want trace-e2e-1", s.Name, s.RequestID)
		}
	}
	// The critical path descends from the client request into the
	// server handler.
	path := tr.CriticalPath()
	if len(path) < 2 || path[0].Name != client.SpanClientRequest || path[1].Name != server.SpanCompress {
		t.Fatalf("critical path = %v", names(path))
	}

	// Decompress joins its own trace through the server span too.
	if _, err := c.Decompress(context.Background(), container); err != nil {
		t.Fatal(err)
	}
	var sawDecompress bool
	for _, s := range serverSpans(t, srv, len(recs)+1) {
		if s.Name == server.SpanDecompress {
			sawDecompress = true
		}
	}
	if !sawDecompress {
		t.Fatalf("no %s span after remote decompress", server.SpanDecompress)
	}
}

func names(spans []*telemetry.SpanNode) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}

// TestServiceSLOAccounting drives success and failure traffic through
// both data-plane endpoints and pins every SLO histogram series —
// first-byte and completion, per outcome — to exact counts.
func TestServiceSLOAccounting(t *testing.T) {
	c, _, srv, base := startTracedService(t, server.Config{})
	ctx := context.Background()
	ts := readCorpusSet(t, "cc2-freeze")
	cfg := corpusCases()["cc2-freeze"]

	var container []byte
	for i := 0; i < 2; i++ {
		var err error
		container, err = c.Compress(ctx, ts, cfg, client.CompressOptions{})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Decompress(ctx, container); err != nil {
		t.Fatal(err)
	}
	// One failed compress: an invalid geometry rejected at parse time.
	resp, err := http.Post(base+server.PathCompress+"?char=99", "text/plain", strings.NewReader("01\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad compress: status %d, want 400", resp.StatusCode)
	}
	// One failed decompress: garbage container.
	if _, err := c.Decompress(ctx, []byte("not a container")); err == nil {
		t.Fatal("garbage decompress succeeded")
	}

	snap := srv.Registry().Snapshot()
	for name, want := range map[string]int64{
		server.MetricSLOCompressFirstByteOK:    2,
		server.MetricSLOCompressDoneOK:         2,
		server.MetricSLOCompressFirstByteErr:   1,
		server.MetricSLOCompressDoneErr:        1,
		server.MetricSLODecompressFirstByteOK:  1,
		server.MetricSLODecompressDoneOK:       1,
		server.MetricSLODecompressFirstByteErr: 1,
		server.MetricSLODecompressDoneErr:      1,
	} {
		h, ok := snap.HistogramNamed(name)
		if !ok {
			t.Fatalf("SLO histogram %s not registered", name)
		}
		if h.Count != want {
			t.Fatalf("%s count = %d, want %d", name, h.Count, want)
		}
	}

	// The trace endpoint has its own request counter.
	tresp, err := http.Get(base + server.PathTraceRecent)
	if err != nil {
		t.Fatal(err)
	}
	tresp.Body.Close()
	var traceReqs int64 = -1
	for _, cs := range srv.Registry().Snapshot().Counters {
		if cs.Name == server.MetricTraceRequests {
			traceReqs = cs.Value
		}
	}
	if traceReqs != 1 {
		t.Fatalf("%s = %d, want 1", server.MetricTraceRequests, traceReqs)
	}
}

// TestServiceRequestIDEcho: a well-formed caller ID is echoed
// verbatim; a malformed one is replaced with a server-assigned ID; the
// error envelope carries the ID either way.
func TestServiceRequestIDEcho(t *testing.T) {
	_, _, _, base := startTracedService(t, server.Config{})

	get := func(id string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, base+server.PathHealth, nil)
		if err != nil {
			t.Fatal(err)
		}
		if id != "" {
			req.Header.Set(server.HeaderRequestID, id)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if got := get("req_A-1.z").Header.Get(server.HeaderRequestID); got != "req_A-1.z" {
		t.Fatalf("valid request ID echoed as %q", got)
	}
	for _, bad := range []string{"has space", "semi;colon", strings.Repeat("x", 65)} {
		got := get(bad).Header.Get(server.HeaderRequestID)
		if got == bad || len(got) != 16 {
			t.Fatalf("malformed ID %q answered with %q, want a fresh 16-hex ID", bad, got)
		}
	}
	if got := get("").Header.Get(server.HeaderRequestID); len(got) != 16 {
		t.Fatalf("absent ID answered with %q, want a generated one", got)
	}

	// Error envelopes carry the request ID, so a failing request can be
	// joined to its server-side trace from the error alone.
	req, err := http.NewRequest(http.MethodPost, base+server.PathDecompress, strings.NewReader("junk"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(server.HeaderRequestID, "fail-join-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var envelope server.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error.RequestID != "fail-join-1" {
		t.Fatalf("error envelope request_id = %q, want fail-join-1", envelope.Error.RequestID)
	}
}

// TestServiceTraceRecentEndpoint pins the introspection endpoint's
// contract: bounds-checked ?n, GET only, and content that names the
// server spans.
func TestServiceTraceRecentEndpoint(t *testing.T) {
	c, _, srv, base := startTracedService(t, server.Config{TraceCapacity: 8})
	ctx := context.Background()
	ts := readCorpusSet(t, "cc2-freeze")
	if _, err := c.Compress(ctx, ts, corpusCases()["cc2-freeze"], client.CompressOptions{}); err != nil {
		t.Fatal(err)
	}
	serverSpans(t, srv, 1)

	for _, q := range []string{"?n=0", "?n=-3", "?n=1001", "?n=x"} {
		resp, err := http.Get(base + server.PathTraceRecent + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s: status %d, want 400", q, resp.StatusCode)
		}
	}
	resp, err := http.Post(base+server.PathTraceRecent, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST: status %d, want 405", resp.StatusCode)
	}

	decode := func(resp *http.Response) server.TraceRecentResponse {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var doc server.TraceRecentResponse
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}
	resp, err = http.Get(base + server.PathTraceRecent + "?n=5")
	if err != nil {
		t.Fatal(err)
	}
	doc := decode(resp)
	if len(doc.Traces) == 0 {
		t.Fatal("no traces in ring buffer after a compress")
	}
	var found bool
	for _, s := range doc.Traces[0].Spans {
		if s.Name == server.SpanCompress {
			found = true
		}
	}
	if !found {
		t.Fatalf("newest trace has no %s span: %+v", server.SpanCompress, doc.Traces[0])
	}

	// The standalone handler (debug listener mount) serves the same
	// document.
	rw := httptest.NewRecorder()
	srv.TraceHandler().ServeHTTP(rw, httptest.NewRequest(http.MethodGet, server.PathTraceRecent, nil))
	if rw.Code != http.StatusOK {
		t.Fatalf("standalone trace handler: status %d", rw.Code)
	}
	var standalone server.TraceRecentResponse
	if err := json.Unmarshal(rw.Body.Bytes(), &standalone); err != nil {
		t.Fatal(err)
	}
	if len(standalone.Traces) != len(doc.Traces) {
		t.Fatalf("standalone handler returned %d traces, mux returned %d", len(standalone.Traces), len(doc.Traces))
	}
}

// jsonKeys returns the JSON field names of a struct type, with
// options (",omitempty") stripped.
func jsonKeys(t reflect.Type) map[string]bool {
	keys := map[string]bool{}
	for i := 0; i < t.NumField(); i++ {
		tag := t.Field(i).Tag.Get("json")
		if tag == "" || tag == "-" {
			continue
		}
		keys[strings.SplitN(tag, ",", 2)[0]] = true
	}
	return keys
}

// TestStatsArenaKeyParity pins the /v1/stats dict-arena keys to the
// CompressRecord keys from `lzwtc stats` run records: scripts join the
// two views by name, so the names must not drift apart.
func TestStatsArenaKeyParity(t *testing.T) {
	arenaKeys := []string{"dict_pool_recycles", "dict_pool_misses"}
	statsKeys := jsonKeys(reflect.TypeOf(server.StatsResponse{}))
	recordKeys := jsonKeys(reflect.TypeOf(lzwtc.CompressRecord{}))
	for _, k := range arenaKeys {
		if !statsKeys[k] {
			t.Errorf("StatsResponse lost arena key %q", k)
		}
		if !recordKeys[k] {
			t.Errorf("CompressRecord lost arena key %q", k)
		}
	}

	// And the live values move: the first request warms the arena
	// (misses), repeats recycle it.
	c, _, _, _ := startTracedService(t, server.Config{})
	ctx := context.Background()
	ts := readCorpusSet(t, "cc2-freeze")
	cfg := corpusCases()["cc2-freeze"]
	for i := 0; i < 3; i++ {
		if _, err := c.Compress(ctx, ts, cfg, client.CompressOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The dict arena is a process-global sync.Pool, so whether the
	// first acquire misses depends on what earlier tests left behind;
	// the acquire total and the repeat-recycles do not.
	if total := stats.DictPoolRecycles + stats.DictPoolMisses; total < 3 {
		t.Fatalf("arena acquires = %d after 3 compresses, want >= 3", total)
	}
	if stats.DictPoolRecycles < 1 {
		t.Fatalf("dict_pool_recycles = %d after repeated compresses, want >= 1", stats.DictPoolRecycles)
	}
}
